#include "fault/fault_plan.h"

#include <algorithm>

#include "common/check.h"
#include "fault/degradation_ledger.h"

namespace locktune {

FaultPlan::FaultPlan(const FaultPlanSpec& spec, const SimClock* clock)
    : spec_(spec), clock_(clock), armed_(!spec.empty()), rng_(spec.seed) {
  LOCKTUNE_CHECK(clock != nullptr);
  for (const FaultWindowSpec& w : spec_.windows) {
    LOCKTUNE_CHECK(w.from >= 0 && w.until >= w.from);
    LOCKTUNE_CHECK(w.probability >= 0.0 && w.probability <= 1.0);
    LOCKTUNE_CHECK(w.kind != FaultKind::kSqueezeOverflow || w.amount > 0);
  }
  std::sort(spec_.kills.begin(), spec_.kills.end(),
            [](const FaultKillSpec& a, const FaultKillSpec& b) {
              return a.at != b.at ? a.at < b.at : a.app < b.app;
            });
  for (const FaultKillSpec& k : spec_.kills) {
    LOCKTUNE_CHECK(k.at >= 0 && k.app >= 1);
  }
}

Status FaultPlan::OnHeapGrow(const std::string& heap, Bytes delta,
                             Bytes available_overflow) {
  const TimeMs now = clock_->now();
  for (const FaultWindowSpec& w : spec_.windows) {
    if (now < w.from || now >= w.until) continue;
    if (w.kind == FaultKind::kDenyHeapGrowth) {
      if (w.heap != "*" && w.heap != heap) continue;
      if (w.probability < 1.0 && !rng_.NextBool(w.probability)) continue;
      ++denials_injected_;
      if (ledger_ != nullptr) {
        ledger_->RecordInjection("deny_heap_growth", heap);
      }
      return Status::ResourceExhausted("fault injection: growth of heap " +
                                       heap + " denied");
    }
  }
  // Squeeze windows only bite when the *withheld* reserve is what the
  // growth needed: a genuinely sufficient overflow minus the squeeze.
  const Bytes squeezed = overflow_squeeze_bytes();
  if (squeezed > 0 && delta > available_overflow - squeezed) {
    ++denials_injected_;
    if (ledger_ != nullptr) {
      ledger_->RecordInjection("squeeze_overflow", heap);
    }
    return Status::ResourceExhausted(
        "fault injection: overflow squeezed, growth of heap " + heap +
        " denied");
  }
  return Status::Ok();
}

Bytes FaultPlan::overflow_squeeze_bytes() const {
  const TimeMs now = clock_->now();
  Bytes squeezed = 0;
  for (const FaultWindowSpec& w : spec_.windows) {
    if (w.kind != FaultKind::kSqueezeOverflow) continue;
    if (now < w.from || now >= w.until) continue;
    squeezed += w.amount;
  }
  return squeezed;
}

std::vector<int32_t> FaultPlan::TakeDueKills() {
  std::vector<int32_t> due;
  const TimeMs now = clock_->now();
  while (next_kill_ < spec_.kills.size() && spec_.kills[next_kill_].at <= now) {
    due.push_back(spec_.kills[next_kill_].app);
    ++kills_delivered_;
    if (ledger_ != nullptr) {
      ledger_->RecordInjection("kill_app",
                               "app " + std::to_string(
                                            spec_.kills[next_kill_].app));
    }
    ++next_kill_;
  }
  return due;
}

}  // namespace locktune
