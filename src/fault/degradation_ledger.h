// The degradation ledger: one auditable record of every fault the system
// absorbed and every recovery back to normal service.
//
// Three event classes:
//  * injection — a FaultPlan window/kill actually fired (the cause);
//  * absorbed  — a subsystem met a denial with a degraded-but-correct
//    response: the lock manager escalated instead of failing the
//    transaction, the STMM controller backed off instead of thrashing;
//  * recovery  — a degraded path returned to normal (growth resumed after
//    the denial window closed).
//
// Counters register with the MetricsRegistry as `locktune_fault_*` and
// every event appends a decision-trace record, so a chaos run's `db2pd`
// inspection and JSONL trace tell the same story. The ledger only exists
// when a scenario carries a fault plan; fault-free runs register nothing
// and their metric exports stay byte-identical.
#ifndef LOCKTUNE_FAULT_DEGRADATION_LEDGER_H_
#define LOCKTUNE_FAULT_DEGRADATION_LEDGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/sim_clock.h"
#include "common/status.h"

namespace locktune {

class MetricsRegistry;
class TraceSink;

class DegradationLedger {
 public:
  // `clock` is borrowed and must outlive the ledger (trace timestamps).
  explicit DegradationLedger(const SimClock* clock);

  DegradationLedger(const DegradationLedger&) = delete;
  DegradationLedger& operator=(const DegradationLedger&) = delete;

  // Decision-trace sink. Borrowed; null disables tracing.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

  // An injected fault fired at `site` (e.g. "deny_heap_growth").
  void RecordInjection(std::string_view site, std::string_view detail);
  // A subsystem absorbed a denial gracefully (e.g. "sync_lock_growth").
  void RecordAbsorbed(std::string_view site, std::string_view detail);
  // A degraded path returned to normal service.
  void RecordRecovery(std::string_view site, std::string_view detail);

  int64_t injections() const { return injections_; }
  int64_t absorbed() const { return absorbed_; }
  int64_t recoveries() const { return recoveries_; }
  // Per-site injection counts, ordered by site name (deterministic).
  const std::map<std::string, int64_t>& injections_by_site() const {
    return by_site_;
  }

  // Registers the `locktune_fault_*` counter family.
  void RegisterMetrics(MetricsRegistry* registry);

  // Ledger invariants (paranoid mode): counts are non-negative and the
  // per-site breakdown sums to the injection total.
  [[nodiscard]] Status CheckConsistency() const;

 private:
  void Trace(const char* kind, std::string_view site,
             std::string_view detail);

  const SimClock* clock_;
  TraceSink* trace_ = nullptr;
  int64_t injections_ = 0;
  int64_t absorbed_ = 0;
  int64_t recoveries_ = 0;
  std::map<std::string, int64_t> by_site_;
};

}  // namespace locktune

#endif  // LOCKTUNE_FAULT_DEGRADATION_LEDGER_H_
