#include "fault/degradation_ledger.h"

#include "common/check.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace locktune {

DegradationLedger::DegradationLedger(const SimClock* clock) : clock_(clock) {
  LOCKTUNE_CHECK(clock != nullptr);
}

void DegradationLedger::RecordInjection(std::string_view site,
                                        std::string_view detail) {
  ++injections_;
  ++by_site_[std::string(site)];
  FlightRecord(FlightEventKind::kFaultInjection, clock_->now(), 0, 0,
               injections_);
  Trace("fault_injected", site, detail);
}

void DegradationLedger::RecordAbsorbed(std::string_view site,
                                       std::string_view detail) {
  ++absorbed_;
  FlightRecord(FlightEventKind::kFaultAbsorbed, clock_->now(), 0, 0,
               absorbed_);
  Trace("fault_absorbed", site, detail);
}

void DegradationLedger::RecordRecovery(std::string_view site,
                                       std::string_view detail) {
  ++recoveries_;
  FlightRecord(FlightEventKind::kFaultRecovery, clock_->now(), 0, 0,
               recoveries_);
  Trace("fault_recovered", site, detail);
}

void DegradationLedger::Trace(const char* kind, std::string_view site,
                              std::string_view detail) {
  if (trace_ == nullptr) return;
  TraceRecord rec(clock_->now(), kind);
  rec.Str("site", site).Str("detail", detail);
  trace_->Append(rec);
}

void DegradationLedger::RegisterMetrics(MetricsRegistry* registry) {
  registry->AddCallbackCounter(
      "locktune_fault_injections_total", "faults the FaultPlan delivered",
      [this] { return injections_; });
  registry->AddCallbackCounter(
      "locktune_fault_absorbed_total",
      "denials met with degraded-but-correct handling",
      [this] { return absorbed_; });
  registry->AddCallbackCounter(
      "locktune_fault_recoveries_total",
      "degraded paths returned to normal service",
      [this] { return recoveries_; });
}

Status DegradationLedger::CheckConsistency() const {
  if (injections_ < 0 || absorbed_ < 0 || recoveries_ < 0) {
    return Status::Internal("negative degradation-ledger counter");
  }
  int64_t site_sum = 0;
  for (const auto& [site, count] : by_site_) {
    if (count < 0) {
      return Status::Internal("negative injection count for site " + site);
    }
    site_sum += count;
  }
  if (site_sum != injections_) {
    return Status::Internal(
        "per-site injection counts do not sum to the injection total");
  }
  return Status::Ok();
}

}  // namespace locktune
