// Deterministic fault-injection plans (chaos layer).
//
// A FaultPlan schedules injectable faults over *virtual* time: heap-growth
// denials (memory-pressure storms, forced STMM resize denials),
// overflow-memory exhaustion windows, and mid-transaction application
// kills. Everything is driven by the SimClock and a seeded Rng — no wall
// clock, no global state — so a chaos scenario replays byte-identically.
//
// Injection sites live in the memory/lock hot paths and therefore must be
// behaviorally inert when no plan is armed: callers gate every query on
// `plan != nullptr && plan->Armed()` (enforced mechanically by locklint
// rule LL008). A disarmed or absent plan never consumes randomness and
// never changes observable output, which is what keeps the fig6/fig9
// goldens byte-identical.
#ifndef LOCKTUNE_FAULT_FAULT_PLAN_H_
#define LOCKTUNE_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/units.h"

namespace locktune {

class DegradationLedger;

enum class FaultKind {
  // Refuse DatabaseMemory::GrowHeap for a matching heap inside the window.
  // Covers both the synchronous lock-growth path (GrantSynchronousGrowth)
  // and asynchronous STMM resizes of the same heap.
  kDenyHeapGrowth,
  // Withhold `amount` bytes of overflow memory inside the window: growth
  // that would need the withheld reserve is refused, modelling competing
  // consumers exhausting the on-demand area.
  kSqueezeOverflow,
};

// One scheduled fault window over [from, until) virtual time.
struct FaultWindowSpec {
  FaultKind kind = FaultKind::kDenyHeapGrowth;
  std::string heap;          // kDenyHeapGrowth: heap name; "*" matches all
  Bytes amount = 0;          // kSqueezeOverflow: bytes withheld
  TimeMs from = 0;
  TimeMs until = 0;
  // kDenyHeapGrowth: chance each matching grow is refused. Draws come from
  // the plan's seeded Rng, so the refusal pattern is reproducible.
  double probability = 1.0;
};

// One scheduled mid-transaction kill: application `app` (1-based scenario
// index) is killed at virtual time `at`, forcing its rollback path.
struct FaultKillSpec {
  TimeMs at = 0;
  int32_t app = 0;
};

struct FaultPlanSpec {
  std::vector<FaultWindowSpec> windows;
  std::vector<FaultKillSpec> kills;
  uint64_t seed = 0;

  bool empty() const { return windows.empty() && kills.empty(); }
};

class FaultPlan {
 public:
  // `clock` is borrowed and must outlive the plan. Kills are sorted by
  // (time, app) so consumption order is deterministic.
  FaultPlan(const FaultPlanSpec& spec, const SimClock* clock);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // Fast-path guard: false when the plan can never fire (empty spec). Every
  // injection site checks this before any other plan call (LL008).
  bool Armed() const { return armed_; }

  // Injection hook for DatabaseMemory::GrowHeap, called after the real
  // bounds checks pass (a genuine exhaustion outranks an injected one).
  // Returns RESOURCE_EXHAUSTED when an active window refuses the growth,
  // OK otherwise. Records every refusal in the ledger.
  [[nodiscard]] Status OnHeapGrow(const std::string& heap, Bytes delta,
                                  Bytes available_overflow);

  // Overflow bytes withheld by active squeeze windows at the current time.
  Bytes overflow_squeeze_bytes() const;

  // Kills due at or before the current time, each returned exactly once,
  // in (time, app) order. The scenario runner drives the actual kill.
  std::vector<int32_t> TakeDueKills();

  // Ledger for injected-fault telemetry. Borrowed; null disables.
  void set_ledger(DegradationLedger* ledger) { ledger_ = ledger; }

  const FaultPlanSpec& spec() const { return spec_; }
  // Total injected refusals so far (tests / inspector).
  int64_t denials_injected() const { return denials_injected_; }
  int64_t kills_delivered() const { return kills_delivered_; }

 private:
  FaultPlanSpec spec_;
  const SimClock* clock_;
  bool armed_ = false;
  Rng rng_;
  size_t next_kill_ = 0;  // index into the sorted kill schedule
  int64_t denials_injected_ = 0;
  int64_t kills_delivered_ = 0;
  DegradationLedger* ledger_ = nullptr;
};

}  // namespace locktune

#endif  // LOCKTUNE_FAULT_FAULT_PLAN_H_
