// Database memory heaps (paper §2.1).
//
// STMM divides memory consumers into performance-related consumers (PMCs:
// buffer pools, sort, hash join, package cache — more memory means faster)
// and functional consumers (FMCs: memory without which operations fail).
// Lock memory is modelled as an FMC because lock escalation behaves like a
// denial of service.
#ifndef LOCKTUNE_MEMORY_MEMORY_HEAP_H_
#define LOCKTUNE_MEMORY_MEMORY_HEAP_H_

#include <string>

#include "common/units.h"

namespace locktune {

enum class ConsumerClass {
  kPerformance,  // PMC: tuned by cost-benefit
  kFunctional,   // FMC: tuned deterministically (lock memory)
};

// Size accounting for one heap inside the database shared memory set.
// Heaps are created and resized only through DatabaseMemory, which enforces
// the total-memory and overflow invariants.
class MemoryHeap {
 public:
  const std::string& name() const { return name_; }
  ConsumerClass consumer_class() const { return consumer_class_; }
  Bytes size() const { return size_; }
  Bytes min_size() const { return min_size_; }
  Bytes max_size() const { return max_size_; }

  // Updates the bounds; `size()` is not clamped retroactively — the next
  // resize through DatabaseMemory enforces them.
  void set_min_size(Bytes min_size) { min_size_ = min_size; }
  void set_max_size(Bytes max_size) { max_size_ = max_size; }

 private:
  friend class DatabaseMemory;

  MemoryHeap(std::string name, ConsumerClass consumer_class, Bytes size,
             Bytes min_size, Bytes max_size)
      : name_(std::move(name)),
        consumer_class_(consumer_class),
        size_(size),
        min_size_(min_size),
        max_size_(max_size) {}

  std::string name_;
  ConsumerClass consumer_class_;
  Bytes size_;
  Bytes min_size_;
  Bytes max_size_;
};

}  // namespace locktune

#endif  // LOCKTUNE_MEMORY_MEMORY_HEAP_H_
