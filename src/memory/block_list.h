// DB2's lock memory block list (paper §2.2).
//
// Lock structures are allocated from the first block on the active list.
// When the head block's slots are exhausted, it moves to the exhausted list
// and the next block becomes the head. When a lock allocated from an
// exhausted block is freed, that block returns to the *head* of the active
// list, so subsequent requests are satisfied from it again.
//
// This discipline concentrates usage at the front of the list: if locking
// demand needs only part of the allocated memory, blocks toward the end of
// the list stay entirely free, which makes shrink requests cheap to satisfy.
//
// Shrinking scans from the end of the list, setting aside blocks with no
// outstanding lock structures. If enough freeable blocks are found they are
// deallocated and the request succeeds; otherwise the set-aside blocks are
// reintegrated and the request fails (all-or-nothing, as in DB2).
#ifndef LOCKTUNE_MEMORY_BLOCK_LIST_H_
#define LOCKTUNE_MEMORY_BLOCK_LIST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "memory/lock_block.h"

namespace locktune {

class BlockList {
 public:
  BlockList() = default;

  BlockList(const BlockList&) = delete;
  BlockList& operator=(const BlockList&) = delete;

  // Appends one new (entirely free) block to the end of the active list.
  // Returns the new block.
  LockBlock* AddBlock();

  // Allocates one lock structure slot from the head block. Returns the block
  // the slot came from (the caller keeps it to free the slot later), or
  // RESOURCE_EXHAUSTED when every slot in every block is in use.
  [[nodiscard]] Result<LockBlock*> AllocateSlot();

  // Frees one slot previously obtained from AllocateSlot on `block`.
  // If the block was on the exhausted list it returns to the head of the
  // active list.
  void FreeSlot(LockBlock* block);

  // Attempts to remove exactly `count` blocks, scanning from the end of the
  // active list for blocks with no outstanding lock structures. All-or-
  // nothing: on failure no block is removed and FAILED_PRECONDITION is
  // returned.
  [[nodiscard]] Status TryRemoveBlocks(int64_t count);

  // --- accounting ---
  // The aggregate counters are atomics so the parallel fast path can read a
  // consistent-enough memory picture without the allocation mutex; mutation
  // still happens only under the caller's serialization (see lock_manager.h).
  int64_t block_count() const {
    return active_count_.load(std::memory_order_relaxed) +
           exhausted_count_.load(std::memory_order_relaxed);
  }
  Bytes allocated_bytes() const { return block_count() * kLockBlockSize; }
  int64_t capacity_slots() const { return block_count() * kLocksPerBlock; }
  int64_t slots_in_use() const {
    return slots_in_use_.load(std::memory_order_relaxed);
  }
  int64_t free_slots() const { return capacity_slots() - slots_in_use(); }
  Bytes used_bytes() const { return slots_in_use() * kLockStructSize; }
  // Blocks with no outstanding lock structures (candidates for shrink).
  int64_t entirely_free_blocks() const;
  // Lifetime churn: blocks ever added / ever removed (telemetry).
  int64_t blocks_added() const {
    return blocks_added_.load(std::memory_order_relaxed);
  }
  int64_t blocks_removed() const {
    return blocks_removed_.load(std::memory_order_relaxed);
  }

  // Verifies internal invariants; used by tests. Returns OK or INTERNAL
  // with a description of the violated invariant.
  [[nodiscard]] Status CheckConsistency() const;

 private:
  using BlockPtr = std::unique_ptr<LockBlock>;

  // One intrusive doubly-linked list threaded through LockBlock::prev_/
  // next_. Links and unlinks are O(1); FreeSlot on an exhausted block no
  // longer scans the exhausted list to find itself.
  struct IntrusiveList {
    LockBlock* head = nullptr;
    LockBlock* tail = nullptr;

    void PushFront(LockBlock* block);
    void PushBack(LockBlock* block);
    void Unlink(LockBlock* block);
    bool empty() const { return head == nullptr; }
  };

  // Removes `block` from the ownership store, destroying it.
  void Destroy(LockBlock* block);

  std::vector<BlockPtr> blocks_;  // ownership, unordered
  IntrusiveList active_;          // head = allocation target
  IntrusiveList exhausted_;       // blocks with zero free slots
  std::atomic<int64_t> active_count_{0};
  std::atomic<int64_t> exhausted_count_{0};
  std::atomic<int64_t> slots_in_use_{0};
  int64_t next_block_id_ = 0;
  std::atomic<int64_t> blocks_added_{0};
  std::atomic<int64_t> blocks_removed_{0};
};

}  // namespace locktune

#endif  // LOCKTUNE_MEMORY_BLOCK_LIST_H_
