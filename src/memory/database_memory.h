// The database shared memory set with overflow memory (paper §2.1).
//
// `databaseMemory` is a fixed total. Registered heaps partition part of it;
// whatever is not owned by a heap is the *overflow* area — "memory allocated
// to the database but not yet in use by a memory consumer". Heaps grow into
// overflow on demand, first come first served; STMM steers overflow back
// toward its goal at each tuning interval by shrinking other heaps.
#ifndef LOCKTUNE_MEMORY_DATABASE_MEMORY_H_
#define LOCKTUNE_MEMORY_DATABASE_MEMORY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "memory/memory_heap.h"

namespace locktune {

class FaultPlan;
class MetricsRegistry;

class DatabaseMemory {
 public:
  // `total` is databaseMemory; `overflow_goal` is the amount STMM tries to
  // keep unowned as the on-demand reserve.
  DatabaseMemory(Bytes total, Bytes overflow_goal);

  DatabaseMemory(const DatabaseMemory&) = delete;
  DatabaseMemory& operator=(const DatabaseMemory&) = delete;

  // Creates a heap carved out of overflow memory. Fails if `initial` exceeds
  // the available overflow or violates the bounds. The returned pointer is
  // owned by DatabaseMemory and valid for its lifetime.
  [[nodiscard]] Result<MemoryHeap*> RegisterHeap(const std::string& name,
                                   ConsumerClass consumer_class,
                                   Bytes initial, Bytes min_size,
                                   Bytes max_size);

  // Grows `heap` by `delta` bytes taken from overflow. Fails with
  // RESOURCE_EXHAUSTED when overflow is insufficient, OUT_OF_RANGE when the
  // heap's max would be exceeded.
  [[nodiscard]] Status GrowHeap(MemoryHeap* heap, Bytes delta);

  // Grows `heap` like GrowHeap but bypasses the chaos fault hook: real
  // bounds (overflow reserve, heap max) are still enforced. This is the
  // cold-start borrow path — the STMM controller may take a *bounded* LMO
  // debt against overflow before its first tuning pass even while a fault
  // window is refusing ordinary growth (docs/ROBUSTNESS.md). Not for
  // general use; every steady-state grow must stay faultable.
  [[nodiscard]] Status GrowHeapUnfaulted(MemoryHeap* heap, Bytes delta);

  // Shrinks `heap` by `delta` bytes, returning them to overflow. Fails with
  // OUT_OF_RANGE when the heap would fall below its min or below zero.
  [[nodiscard]] Status ShrinkHeap(MemoryHeap* heap, Bytes delta);

  // Moves `delta` bytes directly from one heap to another (STMM heap-to-heap
  // redistribution that bypasses the overflow goal).
  [[nodiscard]] Status Transfer(MemoryHeap* from, MemoryHeap* to,
                                Bytes delta);

  MemoryHeap* FindHeap(const std::string& name) const;

  Bytes total() const { return total_; }
  Bytes overflow_goal() const { return overflow_goal_; }
  // Memory not owned by any heap: the on-demand reserve.
  Bytes overflow_bytes() const;
  // Sum of all heap sizes.
  Bytes heap_bytes() const;

  const std::vector<std::unique_ptr<MemoryHeap>>& heaps() const {
    return heaps_;
  }

  // Budget-conservation validation (paranoid mode / tests): heap sizes are
  // non-negative, unique by name, and sum to no more than total — i.e. the
  // derived overflow area is a real, non-negative reserve. Returns OK or
  // INTERNAL naming the violated invariant.
  [[nodiscard]] Status CheckConsistency() const;

  // Registers callback gauges for the memory set (total, overflow, and one
  // `locktune_memory_heap_bytes{heap="..."}` gauge per registered heap).
  // Call after all heaps are registered; later heaps are not picked up.
  void RegisterMetrics(MetricsRegistry* registry);

  // Chaos layer: an armed FaultPlan may refuse GrowHeap (allocation
  // refusals, overflow-squeeze windows) with RESOURCE_EXHAUSTED. Borrowed;
  // null (the default) leaves every path byte-identical to a fault-free
  // build. Accounting is never touched by a refusal — the grow simply does
  // not happen.
  void set_fault_plan(FaultPlan* fault) { fault_ = fault; }

 private:
  [[nodiscard]] Status CheckOwned(const MemoryHeap* heap) const;
  // `faultable` gates the chaos hook: internal rollback grows (Transfer)
  // must succeed even inside an injection window.
  [[nodiscard]] Status GrowHeapImpl(MemoryHeap* heap, Bytes delta,
                                    bool faultable);

  Bytes total_;
  Bytes overflow_goal_;
  std::vector<std::unique_ptr<MemoryHeap>> heaps_;
  FaultPlan* fault_ = nullptr;  // borrowed chaos hook, may be null
};

}  // namespace locktune

#endif  // LOCKTUNE_MEMORY_DATABASE_MEMORY_H_
