#include "memory/lock_block.h"

#include "common/check.h"

namespace locktune {

void LockBlock::TakeSlot() {
  LOCKTUNE_DCHECK(!full());
  ++in_use_;
}

void LockBlock::ReturnSlot() {
  LOCKTUNE_DCHECK(in_use_ > 0);
  --in_use_;
}

}  // namespace locktune
