#include "memory/lock_block.h"

#include <cassert>

namespace locktune {

void LockBlock::TakeSlot() {
  assert(!full());
  ++in_use_;
}

void LockBlock::ReturnSlot() {
  assert(in_use_ > 0);
  --in_use_;
}

}  // namespace locktune
