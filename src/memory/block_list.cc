#include "memory/block_list.h"

#include <cassert>
#include <vector>

namespace locktune {

LockBlock* BlockList::AddBlock() {
  active_.push_back(std::make_unique<LockBlock>(next_block_id_++));
  ++blocks_added_;
  return active_.back().get();
}

Result<LockBlock*> BlockList::AllocateSlot() {
  if (active_.empty()) {
    return Status::ResourceExhausted("no free lock structures");
  }
  LockBlock* head = active_.front().get();
  head->TakeSlot();
  ++slots_in_use_;
  if (head->full()) {
    // The head block is exhausted; park it until one of its locks frees.
    exhausted_.splice(exhausted_.end(), active_, active_.begin());
  }
  return head;
}

void BlockList::FreeSlot(LockBlock* block) {
  assert(block != nullptr);
  const bool was_exhausted = block->full();
  block->ReturnSlot();
  --slots_in_use_;
  if (was_exhausted) {
    // Returns to the head of the active list so the next request is
    // satisfied from this block again (paper §2.2).
    auto it = Find(exhausted_, block);
    active_.splice(active_.begin(), exhausted_, it);
  }
}

Status BlockList::TryRemoveBlocks(int64_t count) {
  if (count <= 0) return Status::Ok();
  // Scan from the end of the active list, setting aside entirely free
  // blocks. (Exhausted blocks are by definition not freeable.)
  std::vector<std::list<BlockPtr>::iterator> set_aside;
  for (auto it = active_.end(); it != active_.begin();) {
    --it;
    if ((*it)->empty()) {
      set_aside.push_back(it);
      if (static_cast<int64_t>(set_aside.size()) == count) break;
    }
  }
  if (static_cast<int64_t>(set_aside.size()) < count) {
    // Not enough freeable blocks: reintegrate (a no-op here, since blocks
    // were only marked) and fail the request, as DB2 does.
    return Status::FailedPrecondition("not enough freeable lock blocks");
  }
  for (auto it : set_aside) active_.erase(it);
  blocks_removed_ += count;
  return Status::Ok();
}

int64_t BlockList::entirely_free_blocks() const {
  int64_t n = 0;
  for (const auto& b : active_) {
    if (b->empty()) ++n;
  }
  return n;
}

Status BlockList::CheckConsistency() const {
  int64_t in_use = 0;
  for (const auto& b : active_) {
    if (b->full()) return Status::Internal("full block on active list");
    in_use += b->in_use();
  }
  for (const auto& b : exhausted_) {
    if (!b->full()) {
      return Status::Internal("non-full block on exhausted list");
    }
    in_use += b->in_use();
  }
  if (in_use != slots_in_use_) {
    return Status::Internal("slots_in_use_ does not match per-block sums");
  }
  return Status::Ok();
}

std::list<BlockList::BlockPtr>::iterator BlockList::Find(
    std::list<BlockPtr>& from, const LockBlock* block) {
  for (auto it = from.begin(); it != from.end(); ++it) {
    if (it->get() == block) return it;
  }
  assert(false && "block not found on expected list");
  return from.end();
}

}  // namespace locktune
