#include "memory/block_list.h"

#include "common/check.h"

namespace locktune {

void BlockList::IntrusiveList::PushFront(LockBlock* block) {
  block->prev_ = nullptr;
  block->next_ = head;
  if (head != nullptr) head->prev_ = block;
  head = block;
  if (tail == nullptr) tail = block;
}

void BlockList::IntrusiveList::PushBack(LockBlock* block) {
  block->next_ = nullptr;
  block->prev_ = tail;
  if (tail != nullptr) tail->next_ = block;
  tail = block;
  if (head == nullptr) head = block;
}

void BlockList::IntrusiveList::Unlink(LockBlock* block) {
  if (block->prev_ != nullptr) block->prev_->next_ = block->next_;
  if (block->next_ != nullptr) block->next_->prev_ = block->prev_;
  if (head == block) head = block->next_;
  if (tail == block) tail = block->prev_;
  block->prev_ = nullptr;
  block->next_ = nullptr;
}

LockBlock* BlockList::AddBlock() {
  blocks_.push_back(std::make_unique<LockBlock>(next_block_id_++));
  LockBlock* block = blocks_.back().get();
  active_.PushBack(block);
  ++active_count_;
  ++blocks_added_;
  return block;
}

Result<LockBlock*> BlockList::AllocateSlot() {
  if (active_.empty()) {
    return Status::ResourceExhausted("no free lock structures");
  }
  LockBlock* head = active_.head;
  head->TakeSlot();
  slots_in_use_.fetch_add(1, std::memory_order_relaxed);
  if (head->full()) {
    // The head block is exhausted; park it until one of its locks frees.
    active_.Unlink(head);
    active_count_.fetch_sub(1, std::memory_order_relaxed);
    exhausted_.PushBack(head);
    exhausted_count_.fetch_add(1, std::memory_order_relaxed);
  }
  return head;
}

void BlockList::FreeSlot(LockBlock* block) {
  LOCKTUNE_DCHECK(block != nullptr);
  const bool was_exhausted = block->full();
  block->ReturnSlot();
  slots_in_use_.fetch_sub(1, std::memory_order_relaxed);
  if (was_exhausted) {
    // Returns to the head of the active list so the next request is
    // satisfied from this block again (paper §2.2).
    exhausted_.Unlink(block);
    exhausted_count_.fetch_sub(1, std::memory_order_relaxed);
    active_.PushFront(block);
    active_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

Status BlockList::TryRemoveBlocks(int64_t count) {
  if (count <= 0) return Status::Ok();
  // Scan from the end of the active list, setting aside entirely free
  // blocks. (Exhausted blocks are by definition not freeable.)
  std::vector<LockBlock*> set_aside;
  for (LockBlock* block = active_.tail; block != nullptr;
       block = block->prev_) {
    if (block->empty()) {
      set_aside.push_back(block);
      if (static_cast<int64_t>(set_aside.size()) == count) break;
    }
  }
  if (static_cast<int64_t>(set_aside.size()) < count) {
    // Not enough freeable blocks: reintegrate (a no-op here, since blocks
    // were only marked) and fail the request, as DB2 does.
    return Status::FailedPrecondition("not enough freeable lock blocks");
  }
  for (LockBlock* block : set_aside) {
    active_.Unlink(block);
    --active_count_;
    Destroy(block);
  }
  blocks_removed_ += count;
  return Status::Ok();
}

void BlockList::Destroy(LockBlock* block) {
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (it->get() == block) {
      blocks_.erase(it);
      return;
    }
  }
  LOCKTUNE_DCHECK(false && "block not found in ownership store");
}

int64_t BlockList::entirely_free_blocks() const {
  int64_t n = 0;
  for (const LockBlock* b = active_.head; b != nullptr; b = b->next_) {
    if (b->empty()) ++n;
  }
  return n;
}

Status BlockList::CheckConsistency() const {
  int64_t in_use = 0;
  int64_t active_seen = 0;
  for (const LockBlock* b = active_.head; b != nullptr; b = b->next_) {
    if (b->full()) return Status::Internal("full block on active list");
    in_use += b->in_use();
    ++active_seen;
  }
  int64_t exhausted_seen = 0;
  for (const LockBlock* b = exhausted_.head; b != nullptr; b = b->next_) {
    if (!b->full()) {
      return Status::Internal("non-full block on exhausted list");
    }
    in_use += b->in_use();
    ++exhausted_seen;
  }
  if (active_seen != active_count_ || exhausted_seen != exhausted_count_) {
    return Status::Internal("list counts do not match linked blocks");
  }
  if (active_seen + exhausted_seen != static_cast<int64_t>(blocks_.size())) {
    return Status::Internal("owned blocks do not all appear on a list");
  }
  if (in_use != slots_in_use_) {
    return Status::Internal("slots_in_use_ does not match per-block sums");
  }
  return Status::Ok();
}

}  // namespace locktune
