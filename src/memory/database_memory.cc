#include "memory/database_memory.h"

#include "common/check.h"
#include "fault/fault_plan.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"

namespace locktune {

DatabaseMemory::DatabaseMemory(Bytes total, Bytes overflow_goal)
    : total_(total), overflow_goal_(overflow_goal) {
  LOCKTUNE_CHECK(total > 0);
  LOCKTUNE_CHECK(overflow_goal >= 0 && overflow_goal <= total);
}

Result<MemoryHeap*> DatabaseMemory::RegisterHeap(const std::string& name,
                                                 ConsumerClass consumer_class,
                                                 Bytes initial, Bytes min_size,
                                                 Bytes max_size) {
  if (initial < 0 || min_size < 0 || max_size < min_size) {
    return Status::InvalidArgument("invalid heap bounds for " + name);
  }
  if (initial < min_size || initial > max_size) {
    return Status::InvalidArgument("initial size outside bounds for " + name);
  }
  if (FindHeap(name) != nullptr) {
    return Status::AlreadyExists("heap " + name + " already registered");
  }
  if (initial > overflow_bytes()) {
    return Status::ResourceExhausted("not enough free database memory for " +
                                     name);
  }
  // locklint: alloc-ok(MemoryHeap's constructor is private to this friend;
  // make_unique cannot reach it, and registration is a cold startup path)
  heaps_.emplace_back(new MemoryHeap(name, consumer_class, initial, min_size,
                                     max_size));
  return heaps_.back().get();
}

Status DatabaseMemory::GrowHeap(MemoryHeap* heap, Bytes delta) {
  return GrowHeapImpl(heap, delta, /*faultable=*/true);
}

Status DatabaseMemory::GrowHeapUnfaulted(MemoryHeap* heap, Bytes delta) {
  return GrowHeapImpl(heap, delta, /*faultable=*/false);
}

Status DatabaseMemory::GrowHeapImpl(MemoryHeap* heap, Bytes delta,
                                    bool faultable) {
  if (Status s = CheckOwned(heap); !s.ok()) return s;
  if (delta < 0) return Status::InvalidArgument("negative growth");
  if (delta == 0) return Status::Ok();
  if (heap->size_ + delta > heap->max_size_) {
    return Status::OutOfRange("heap " + heap->name_ + " would exceed max");
  }
  if (delta > overflow_bytes()) {
    return Status::ResourceExhausted("overflow memory exhausted");
  }
  // Chaos hook, after the real bounds checks: a genuine exhaustion outranks
  // an injected one, and a refusal leaves the accounting untouched.
  if (faultable && fault_ != nullptr && fault_->Armed()) {
    if (Status s = fault_->OnHeapGrow(heap->name_, delta, overflow_bytes());
        !s.ok()) {
      return s;
    }
  }
  heap->size_ += delta;
  return Status::Ok();
}

Status DatabaseMemory::ShrinkHeap(MemoryHeap* heap, Bytes delta) {
  if (Status s = CheckOwned(heap); !s.ok()) return s;
  if (delta < 0) return Status::InvalidArgument("negative shrink");
  if (delta == 0) return Status::Ok();
  if (heap->size_ - delta < heap->min_size_ || heap->size_ - delta < 0) {
    return Status::OutOfRange("heap " + heap->name_ +
                              " would fall below min");
  }
  heap->size_ -= delta;
  return Status::Ok();
}

Status DatabaseMemory::Transfer(MemoryHeap* from, MemoryHeap* to,
                                Bytes delta) {
  if (Status s = ShrinkHeap(from, delta); !s.ok()) return s;
  if (Status s = GrowHeap(to, delta); !s.ok()) {
    // Roll back the shrink so the call is atomic. The rollback bypasses
    // fault injection (an injected refusal here would break atomicity and
    // lose bytes), and the bytes just left `from`, so it cannot fail.
    LOCKTUNE_CHECK_OK(GrowHeapImpl(from, delta, /*faultable=*/false));
    return s;
  }
  return Status::Ok();
}

MemoryHeap* DatabaseMemory::FindHeap(const std::string& name) const {
  for (const auto& h : heaps_) {
    if (h->name() == name) return h.get();
  }
  return nullptr;
}

Bytes DatabaseMemory::overflow_bytes() const { return total_ - heap_bytes(); }

Bytes DatabaseMemory::heap_bytes() const {
  Bytes sum = 0;
  for (const auto& h : heaps_) sum += h->size();
  return sum;
}

Status DatabaseMemory::CheckConsistency() const {
  Bytes sum = 0;
  for (size_t i = 0; i < heaps_.size(); ++i) {
    const MemoryHeap& heap = *heaps_[i];
    if (heap.size() < 0) {
      return Status::Internal("heap " + heap.name() + " has negative size");
    }
    if (heap.min_size() < 0 || heap.max_size() < heap.min_size()) {
      return Status::Internal("heap " + heap.name() + " has inverted bounds");
    }
    for (size_t j = i + 1; j < heaps_.size(); ++j) {
      if (heaps_[j]->name() == heap.name()) {
        return Status::Internal("duplicate heap name " + heap.name());
      }
    }
    sum += heap.size();
  }
  // sum == heap_bytes() by construction; the conservation law is that the
  // consumers never overcommit the fixed databaseMemory total.
  if (sum > total_) {
    return Status::Internal("heap sizes exceed databaseMemory (overflow < 0)");
  }
  return Status::Ok();
}

void DatabaseMemory::RegisterMetrics(MetricsRegistry* registry) {
  registry->AddCallbackGauge(
      "locktune_memory_total_bytes", "databaseMemory total",
      [this] { return static_cast<double>(total_); });
  registry->AddCallbackGauge(
      "locktune_memory_overflow_bytes",
      "memory not owned by any heap (the on-demand reserve)",
      [this] { return static_cast<double>(overflow_bytes()); });
  registry->AddCallbackGauge(
      "locktune_memory_overflow_goal_bytes",
      "overflow size STMM steers toward",
      [this] { return static_cast<double>(overflow_goal_); });
  registry->AddCallbackGauge(
      "locktune_memory_heap_total_bytes", "sum of all heap sizes",
      [this] { return static_cast<double>(heap_bytes()); });
  for (const auto& heap : heaps_) {
    // Heap names come from configuration; escape them so a quote or
    // backslash cannot corrupt the label syntax in exports.
    registry->AddCallbackGauge(
        "locktune_memory_heap_bytes{heap=\"" +
            PrometheusLabelValue(heap->name()) + "\"}",
        "per-heap size",
        [h = heap.get()] { return static_cast<double>(h->size()); });
  }
}

Status DatabaseMemory::CheckOwned(const MemoryHeap* heap) const {
  for (const auto& h : heaps_) {
    if (h.get() == heap) return Status::Ok();
  }
  return Status::InvalidArgument("heap not owned by this DatabaseMemory");
}

}  // namespace locktune
