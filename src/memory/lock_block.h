// A single 128 KB lock memory block (paper §2.2).
//
// Blocks are accounting objects: each tracks how many of its 2048 lock
// structure slots are in use. The lock manager allocates lock structures
// from blocks through BlockList, which implements DB2's list discipline.
#ifndef LOCKTUNE_MEMORY_LOCK_BLOCK_H_
#define LOCKTUNE_MEMORY_LOCK_BLOCK_H_

#include <cstdint>

#include "common/units.h"

namespace locktune {

class LockBlock {
 public:
  explicit LockBlock(int64_t id) : id_(id) {}

  LockBlock(const LockBlock&) = delete;
  LockBlock& operator=(const LockBlock&) = delete;

  int64_t id() const { return id_; }
  int capacity() const { return kLocksPerBlock; }
  int in_use() const { return in_use_; }
  int free_slots() const { return kLocksPerBlock - in_use_; }
  bool full() const { return in_use_ == kLocksPerBlock; }
  bool empty() const { return in_use_ == 0; }

  // Takes one lock structure slot. Precondition: !full().
  void TakeSlot();
  // Returns one lock structure slot. Precondition: in_use() > 0.
  void ReturnSlot();

 private:
  friend class BlockList;

  int64_t id_;
  int in_use_ = 0;
  // Intrusive links for BlockList's active/exhausted lists: moving a block
  // between lists (every exhaust/unexhaust transition) is pointer surgery,
  // never a search or an allocation.
  LockBlock* prev_ = nullptr;
  LockBlock* next_ = nullptr;
};

}  // namespace locktune

#endif  // LOCKTUNE_MEMORY_LOCK_BLOCK_H_
