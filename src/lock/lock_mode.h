// Lock modes, compatibility, and the conversion lattice.
//
// locktune implements the standard System R / DB2 multigranularity modes:
// intent share (IS), intent exclusive (IX), share (S), share with intent
// exclusive (SIX), update (U) and exclusive (X). Row locks use S/U/X; table
// locks use the full set. Escalation converts an application's intent table
// lock to S or X and releases its row locks (paper §1, §2.2).
#ifndef LOCKTUNE_LOCK_LOCK_MODE_H_
#define LOCKTUNE_LOCK_LOCK_MODE_H_

#include <cstdint>
#include <string_view>

namespace locktune {

enum class LockMode : uint8_t {
  kNone = 0,
  kIS = 1,
  kIX = 2,
  kS = 3,
  kSIX = 4,
  kU = 5,
  kX = 6,
};

inline constexpr int kNumLockModes = 7;

// True when a resource may be held in `a` and `b` by different applications
// simultaneously. kNone is compatible with everything.
bool Compatible(LockMode a, LockMode b);

// Least upper bound in the conversion lattice: the weakest single mode that
// grants both `a` and `b` (e.g. sup(S, IX) = SIX, sup(U, IX) = X).
LockMode Supremum(LockMode a, LockMode b);

// True when holding `held` already confers all privileges of `wanted`
// (i.e. Supremum(held, wanted) == held).
bool Covers(LockMode held, LockMode wanted);

// The intent mode a table must be held in before taking a row lock in
// `row_mode`: IS for S, IX for U and X.
LockMode IntentModeFor(LockMode row_mode);

// Stable short name, e.g. "SIX".
std::string_view ModeName(LockMode mode);

}  // namespace locktune

#endif  // LOCKTUNE_LOCK_LOCK_MODE_H_
