#include "lock/lock_manager.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "telemetry/metrics.h"

namespace locktune {

LockManager::LockManager(LockManagerOptions options)
    : options_(std::move(options)), max_lock_memory_(options_.max_lock_memory) {
  assert(options_.policy != nullptr && "an escalation policy is required");
  for (int64_t i = 0; i < options_.initial_blocks; ++i) blocks_.AddBlock();
}

LockResult LockManager::Lock(AppId app, const ResourceId& resource,
                             LockMode mode) {
  std::lock_guard<std::mutex> guard(mu_);
  ++stats_.lock_requests;
  options_.policy->OnLockRequest();
  assert(!GetApp(app).waiting &&
         "application issued a request while blocked");

  bool escalated = false;
  const AcquireOutcome outcome = TryAcquire(app, resource, mode, &escalated);
  DrainWorkList();

  LockResult result;
  result.escalated = escalated;
  switch (outcome) {
    case AcquireOutcome::kDone:
      result.outcome = LockOutcome::kGranted;
      break;
    case AcquireOutcome::kBlocked:
      result.outcome = LockOutcome::kWaiting;
      break;
    case AcquireOutcome::kNoMemory:
      result.outcome = LockOutcome::kOutOfMemory;
      ++stats_.out_of_memory_failures;
      Emit(LockEventKind::kOutOfLockMemory, app, resource, mode, 0);
      break;
  }
  return result;
}

LockManager::AcquireOutcome LockManager::TryAcquire(AppId app,
                                                    const ResourceId& resource,
                                                    LockMode mode,
                                                    bool* escalated) {
  if (resource.kind == ResourceKind::kRow) {
    // A table lock covering the row mode makes the row lock unnecessary —
    // this is what keeps an escalated application from re-consuming lock
    // memory on the same table.
    const LockMode table_mode =
        HeldModeLockedInternal(app, TableResource(resource.table));
    if (Covers(table_mode, mode)) {
      ++stats_.grants;
      return AcquireOutcome::kDone;
    }
    // Multigranularity: intent lock on the table first.
    const LockMode intent = IntentModeFor(mode);
    if (!Covers(table_mode, intent)) {
      const AcquireOutcome io =
          AcquireOne(app, TableResource(resource.table), intent, escalated);
      if (io == AcquireOutcome::kBlocked) {
        // Resume the full row request once the intent (or escalation)
        // wait is granted.
        GetApp(app).continuation = Continuation{resource, mode};
        return io;
      }
      if (io == AcquireOutcome::kNoMemory) return io;
      // The intent acquisition may itself have escalated this table to
      // S or X; re-check coverage before taking the row lock.
      if (Covers(HeldModeLockedInternal(app, TableResource(resource.table)),
                 mode)) {
        ++stats_.grants;
        return AcquireOutcome::kDone;
      }
    }
  }
  const AcquireOutcome out = AcquireOne(app, resource, mode, escalated);
  if (out == AcquireOutcome::kBlocked) {
    AppState& state = GetApp(app);
    if (state.wait_is_escalation) {
      // Blocked on an escalation conversion, not on the request itself:
      // re-run the request after the escalation completes.
      state.continuation = Continuation{resource, mode};
    }
  }
  return out;
}

LockManager::AcquireOutcome LockManager::AcquireOne(AppId app,
                                                    const ResourceId& resource,
                                                    LockMode mode,
                                                    bool* escalated) {
  AppState& state = GetApp(app);
  // Do not create the head until a holder or waiter is actually added:
  // early-return paths below must not leave empty heads behind.
  if (LockHead* head = FindHead(resource); head != nullptr) {
    if (LockRequest* holder = head->FindHolder(app); holder != nullptr) {
      if (Covers(holder->mode, mode)) {
        ++stats_.grants;
        return AcquireOutcome::kDone;
      }
      const LockMode target = Supremum(holder->mode, mode);
      if (head->CanGrantConversion(app, target)) {
        holder->mode = target;
        ++stats_.grants;
        return AcquireOutcome::kDone;
      }
      WaitingRequest w;
      w.app = app;
      w.mode = target;
      w.is_conversion = true;
      head->EnqueueConversion(w);
      state.waiting = true;
      state.wait_resource = resource;
      state.wait_mode = target;
      state.wait_is_conversion = true;
      state.wait_is_escalation = false;
      MarkWaitStart(app, state);
      ++stats_.lock_waits;
      return AcquireOutcome::kBlocked;
    }
  }

  // New request: enforce the per-application quota before consuming another
  // lock structure (paper §3.5). Escalation replaces row locks with one
  // table lock; afterwards the request proceeds.
  const LockMemoryState mem = MemoryStateLocked();
  const int64_t limit = options_.policy->MaxStructuresPerApp(mem);
  const bool over_quota = state.held_structures + 1 > limit;
  const bool memory_forced = options_.policy->ForcesMemoryEscalation(mem);
  if (over_quota || memory_forced) {
    const AcquireOutcome esc = EscalateApp(app);
    if (esc == AcquireOutcome::kDone) *escalated = true;
    if (esc == AcquireOutcome::kBlocked) {
      *escalated = true;
      return AcquireOutcome::kBlocked;  // caller sets the continuation
    }
    // kNoMemory: nothing to escalate (no row locks); proceed regardless —
    // the hard memory limit below still applies.
    // The escalation may have covered the requested resource entirely.
    if (resource.kind == ResourceKind::kRow &&
        Covers(HeldModeLockedInternal(app, TableResource(resource.table)),
               mode)) {
      ++stats_.grants;
      return AcquireOutcome::kDone;
    }
    // The escalation released this app's row locks; if `resource` was one
    // of them the holder is gone, which is consistent: re-acquire below.
  }

  const AllocResult alloc = AllocateStructure(app, escalated);
  if (alloc.blocked) return AcquireOutcome::kBlocked;
  if (alloc.slot == nullptr) {
    // Escalation of some application may have covered the request.
    if (resource.kind == ResourceKind::kRow &&
        Covers(HeldModeLockedInternal(app, TableResource(resource.table)),
               mode)) {
      ++stats_.grants;
      return AcquireOutcome::kDone;
    }
    return AcquireOutcome::kNoMemory;
  }
  ++state.held_structures;

  // The head is created here, when a holder or waiter is guaranteed to be
  // added. (AllocateStructure may have escalated another application, which
  // can erase row heads — resolving late also side-steps that.)
  LockHead& head2 = table_[resource];
  if (head2.CanGrantNew(mode)) {
    LockRequest r;
    r.app = app;
    r.mode = mode;
    r.slot = alloc.slot;
    head2.AddHolder(r);
    state.held.push_back(resource);
    if (resource.kind == ResourceKind::kRow) {
      ++state.row_locks_per_table[resource.table];
    }
    ++stats_.grants;
    return AcquireOutcome::kDone;
  }

  WaitingRequest w;
  w.app = app;
  w.mode = mode;
  w.is_conversion = false;
  w.slot = alloc.slot;
  head2.EnqueueNew(w);
  state.waiting = true;
  state.wait_resource = resource;
  state.wait_mode = mode;
  state.wait_is_conversion = false;
  state.wait_is_escalation = false;
  MarkWaitStart(app, state);
  ++stats_.lock_waits;
  return AcquireOutcome::kBlocked;
}

LockManager::AllocResult LockManager::AllocateStructure(AppId requester,
                                                        bool* escalated) {
  AllocResult out;
  Result<LockBlock*> slot = blocks_.AllocateSlot();
  if (slot.ok()) {
    out.slot = slot.value();
    return out;
  }

  // §6.1 selective escalation: applications that prefer escalation over
  // growth trade their own row locks for a table lock before any new
  // memory is consumed.
  if (escalation_preferred_.count(requester) > 0) {
    const AcquireOutcome esc = EscalateApp(requester);
    if (esc == AcquireOutcome::kDone) {
      *escalated = true;
      ++stats_.preferred_escalations;
      slot = blocks_.AllocateSlot();
      if (slot.ok()) {
        out.slot = slot.value();
        return out;
      }
    } else if (esc == AcquireOutcome::kBlocked) {
      *escalated = true;
      ++stats_.preferred_escalations;
      out.blocked = true;
      return out;
    }
    // kNoMemory: nothing to escalate; fall through to normal growth.
  }

  // Synchronous growth from database overflow memory (paper §3.3).
  if (options_.grow_callback && options_.grow_callback(1)) {
    blocks_.AddBlock();
    ++stats_.sync_growth_blocks;
    options_.policy->OnResize();
    Emit(LockEventKind::kSynchronousGrowth, requester, ResourceId{},
         LockMode::kNone, 1);
    slot = blocks_.AllocateSlot();
    assert(slot.ok());
    out.slot = slot.value();
    return out;
  }

  // Growth denied: escalate the heaviest row-lock holders until a structure
  // frees up. Applications other than the requester are only escalated when
  // the table conversion can be granted immediately — we cannot block an
  // application that is not inside a lock request.
  for (int attempt = 0; attempt < 3; ++attempt) {
    AppId victim = -1;
    int64_t victim_rows = 0;
    for (const auto& [id, st] : apps_) {
      if (st.waiting || id == requester) continue;
      int64_t rows = 0;
      for (const auto& [tbl, n] : st.row_locks_per_table) rows += n;
      if (rows > victim_rows) {
        victim_rows = rows;
        victim = id;
      }
    }
    if (victim < 0) break;
    if (EscalateApp(victim, /*only_if_immediate=*/true) !=
        AcquireOutcome::kDone) {
      break;  // conflicting table traffic; fall through to self-escalation
    }
    *escalated = true;
    slot = blocks_.AllocateSlot();
    if (slot.ok()) {
      out.slot = slot.value();
      return out;
    }
  }

  // Last resort: the requester escalates its own row locks, waiting for the
  // table lock if it must. This blocking escalation is what devastates
  // concurrency under an undersized static LOCKLIST (Figure 8).
  switch (EscalateApp(requester)) {
    case AcquireOutcome::kDone: {
      *escalated = true;
      slot = blocks_.AllocateSlot();
      if (slot.ok()) out.slot = slot.value();
      return out;
    }
    case AcquireOutcome::kBlocked:
      *escalated = true;
      out.blocked = true;
      return out;
    case AcquireOutcome::kNoMemory:
      return out;  // nothing anywhere to escalate: hard failure
  }
  return out;
}

LockManager::AcquireOutcome LockManager::EscalateApp(AppId app,
                                                     bool only_if_immediate) {
  ++stats_.escalation_attempts;
  AppState& state = GetApp(app);

  // Pick the table with the most row locks held by this application.
  TableId victim_table = -1;
  int64_t most_rows = 0;
  for (const auto& [tbl, n] : state.row_locks_per_table) {
    if (n > most_rows) {
      most_rows = n;
      victim_table = tbl;
    }
  }
  if (victim_table < 0) return AcquireOutcome::kNoMemory;

  // Escalate to X when any row lock is U or X, otherwise S.
  LockMode target = LockMode::kS;
  for (const ResourceId& res : state.held) {
    if (res.kind != ResourceKind::kRow || res.table != victim_table) continue;
    const LockHead* h = FindHead(res);
    assert(h != nullptr);
    const LockRequest* r = h->FindHolder(app);
    assert(r != nullptr);
    if (r->mode == LockMode::kU || r->mode == LockMode::kX) {
      target = LockMode::kX;
      break;
    }
  }

  const ResourceId table_res = TableResource(victim_table);
  LockHead& head = table_[table_res];
  LockRequest* holder = head.FindHolder(app);
  assert(holder != nullptr && "row locks imply an intent table lock");
  const LockMode new_mode = Supremum(holder->mode, target);

  if (Covers(holder->mode, new_mode) ||
      head.CanGrantConversion(app, new_mode)) {
    holder->mode = new_mode;
    ++stats_.escalations;
    if (target == LockMode::kX) ++stats_.exclusive_escalations;
    ReleaseRowLocksOnTable(app, victim_table);
    Emit(LockEventKind::kEscalation, app, table_res, new_mode, most_rows);
    return AcquireOutcome::kDone;
  }
  if (only_if_immediate) return AcquireOutcome::kNoMemory;

  WaitingRequest w;
  w.app = app;
  w.mode = new_mode;
  w.is_conversion = true;
  head.EnqueueConversion(w);
  state.waiting = true;
  state.wait_resource = table_res;
  state.wait_mode = new_mode;
  state.wait_is_conversion = true;
  state.wait_is_escalation = true;
  MarkWaitStart(app, state);
  ++stats_.lock_waits;
  return AcquireOutcome::kBlocked;
}

void LockManager::ReleaseRowLocksOnTable(AppId app, TableId table) {
  AppState& state = GetApp(app);
  std::vector<ResourceId> keep;
  keep.reserve(state.held.size());
  for (const ResourceId& res : state.held) {
    if (res.kind == ResourceKind::kRow && res.table == table) {
      LockHead* head = FindHead(res);
      assert(head != nullptr);
      LockBlock* slot = head->RemoveHolder(app);
      assert(slot != nullptr);
      blocks_.FreeSlot(slot);
      --state.held_structures;
      work_list_.push_back(res);
    } else {
      keep.push_back(res);
    }
  }
  state.held.swap(keep);
  state.row_locks_per_table.erase(table);
}

void LockManager::ReleaseAll(AppId app) {
  std::lock_guard<std::mutex> guard(mu_);
  AppState& state = GetApp(app);

  if (state.waiting) {
    if (LockHead* head = FindHead(state.wait_resource); head != nullptr) {
      bool removed = false;
      LockBlock* slot = head->RemoveWaiter(app, &removed);
      if (removed) {
        if (slot != nullptr) {
          blocks_.FreeSlot(slot);
          --state.held_structures;
        }
        // Removing a waiter can unblock those queued behind it.
        work_list_.push_back(state.wait_resource);
      }
    }
    state.waiting = false;
    state.wait_is_conversion = false;
    state.wait_is_escalation = false;
  }
  state.continuation.reset();

  std::vector<ResourceId> held;
  held.swap(state.held);
  for (const ResourceId& res : held) {
    LockHead* head = FindHead(res);
    assert(head != nullptr);
    LockBlock* slot = head->RemoveHolder(app);
    assert(slot != nullptr);
    blocks_.FreeSlot(slot);
    --state.held_structures;
    work_list_.push_back(res);
  }
  state.row_locks_per_table.clear();
  assert(state.held_structures == 0);

  DrainWorkList();
}

Status LockManager::Release(AppId app, const ResourceId& resource) {
  std::lock_guard<std::mutex> guard(mu_);
  AppState& state = GetApp(app);
  LockHead* head = FindHead(resource);
  if (head == nullptr || head->FindHolder(app) == nullptr) {
    return Status::NotFound("application does not hold " +
                            resource.ToString());
  }
  LockBlock* slot = head->RemoveHolder(app);
  blocks_.FreeSlot(slot);
  --state.held_structures;
  EraseHeldEntry(state, resource);
  if (resource.kind == ResourceKind::kRow) {
    auto it = state.row_locks_per_table.find(resource.table);
    if (it != state.row_locks_per_table.end() && --it->second == 0) {
      state.row_locks_per_table.erase(it);
    }
  }
  work_list_.push_back(resource);
  DrainWorkList();
  return Status::Ok();
}

bool LockManager::IsBlocked(AppId app) const {
  std::lock_guard<std::mutex> guard(mu_);
  const auto it = apps_.find(app);
  return it != apps_.end() && it->second.waiting;
}

void LockManager::ProcessQueue(const ResourceId& resource) {
  auto it = table_.find(resource);
  if (it == table_.end()) return;
  LockHead& head = it->second;

  while (!head.waiters().empty()) {
    const WaitingRequest& w = head.FrontWaiter();
    if (w.is_conversion) {
      LockRequest* holder = head.FindHolder(w.app);
      assert(holder != nullptr);
      if (!head.CanGrantConversion(w.app, w.mode)) break;
      const WaitingRequest granted = head.PopFrontWaiter();
      holder->mode = granted.mode;
      ++stats_.grants;
      OnWaitGranted(granted.app, resource);
    } else {
      if (!Compatible(head.GrantedGroupMode(), w.mode)) break;
      const WaitingRequest granted = head.PopFrontWaiter();
      LockRequest r;
      r.app = granted.app;
      r.mode = granted.mode;
      r.slot = granted.slot;
      head.AddHolder(r);
      AppState& state = GetApp(granted.app);
      state.held.push_back(resource);
      if (resource.kind == ResourceKind::kRow) {
        ++state.row_locks_per_table[resource.table];
      }
      ++stats_.grants;
      OnWaitGranted(granted.app, resource);
    }
  }

  // The head reference stays valid across OnWaitGranted (unordered_map
  // preserves references on insert); re-find before erasing in case the
  // cascade already erased it.
  auto again = table_.find(resource);
  if (again != table_.end() && again->second.empty()) table_.erase(again);
}

void LockManager::OnWaitGranted(AppId app, const ResourceId& resource) {
  AppState& state = GetApp(app);
  assert(state.waiting);
  const bool was_escalation = state.wait_is_escalation;
  const LockMode granted_mode = state.wait_mode;
  if (options_.clock != nullptr) {
    wait_times_.Add(
        static_cast<double>(options_.clock->now() - state.wait_since));
  }
  Emit(LockEventKind::kWaitEnd, app, resource, granted_mode,
       options_.clock != nullptr ? options_.clock->now() - state.wait_since
                                 : 0);
  state.waiting = false;
  state.wait_is_conversion = false;
  state.wait_is_escalation = false;

  if (was_escalation) {
    ++stats_.escalations;
    if (granted_mode == LockMode::kX) ++stats_.exclusive_escalations;
    assert(resource.kind == ResourceKind::kTable);
    const int64_t rows_before =
        state.row_locks_per_table.count(resource.table) > 0
            ? state.row_locks_per_table[resource.table]
            : 0;
    ReleaseRowLocksOnTable(app, resource.table);
    Emit(LockEventKind::kEscalation, app, resource, granted_mode,
         rows_before);
  }

  if (state.continuation.has_value()) {
    const Continuation c = *state.continuation;
    state.continuation.reset();
    bool escalated = false;
    const AcquireOutcome out = TryAcquire(app, c.resource, c.mode, &escalated);
    if (out == AcquireOutcome::kNoMemory) {
      // The resumed request could not get a lock structure. The application
      // is unblocked; the failure is visible in the counters (engines treat
      // it like a statement error).
      ++stats_.out_of_memory_failures;
    }
  }
}

std::vector<AppId> LockManager::DetectDeadlocks() {
  std::lock_guard<std::mutex> guard(mu_);

  // Build the waits-for graph. A conversion waits for every *other* holder
  // whose granted mode conflicts with the target. A new request waits for
  // conflicting holders and for every waiter queued ahead of it (strict
  // FIFO: it cannot overtake).
  std::unordered_map<AppId, std::vector<AppId>> edges;
  for (const auto& [app, state] : apps_) {
    if (!state.waiting) continue;
    const LockHead* head = FindHead(state.wait_resource);
    if (head == nullptr) continue;
    std::vector<AppId>& out = edges[app];
    if (state.wait_is_conversion) {
      for (const LockRequest& h : head->holders()) {
        if (h.app != app && !Compatible(h.mode, state.wait_mode)) {
          out.push_back(h.app);
        }
      }
    } else {
      for (const LockRequest& h : head->holders()) {
        if (h.app != app && !Compatible(h.mode, state.wait_mode)) {
          out.push_back(h.app);
        }
      }
      for (const WaitingRequest& w : head->waiters()) {
        if (w.app == app) break;
        out.push_back(w.app);
      }
    }
  }

  // Iterative DFS cycle detection with victim selection per cycle.
  std::vector<AppId> victims;
  std::unordered_map<AppId, int> color;  // 0 white, 1 grey, 2 black
  std::vector<AppId> stack;
  for (const auto& [start, unused] : edges) {
    if (color[start] != 0) continue;
    // Path-tracking DFS.
    std::vector<std::pair<AppId, size_t>> frames;
    frames.push_back({start, 0});
    color[start] = 1;
    stack.push_back(start);
    while (!frames.empty()) {
      auto& [node, next] = frames.back();
      const auto eit = edges.find(node);
      const std::vector<AppId>* adj =
          eit == edges.end() ? nullptr : &eit->second;
      if (adj != nullptr && next < adj->size()) {
        const AppId succ = (*adj)[next++];
        if (color[succ] == 1) {
          // Cycle found: victim = member with fewest held structures.
          AppId victim = succ;
          int64_t fewest = GetApp(succ).held_structures;
          for (auto rit = stack.rbegin(); rit != stack.rend(); ++rit) {
            const int64_t held = GetApp(*rit).held_structures;
            if (held < fewest) {
              fewest = held;
              victim = *rit;
            }
            if (*rit == succ) break;
          }
          if (std::find(victims.begin(), victims.end(), victim) ==
              victims.end()) {
            victims.push_back(victim);
          }
        } else if (color[succ] == 0) {
          color[succ] = 1;
          stack.push_back(succ);
          frames.push_back({succ, 0});
        }
      } else {
        color[node] = 2;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
  stats_.deadlock_victims += static_cast<int64_t>(victims.size());
  for (AppId victim : victims) {
    const AppState& state = GetApp(victim);
    Emit(LockEventKind::kDeadlockVictim, victim, state.wait_resource,
         state.wait_mode, state.held_structures);
  }
  return victims;
}

void LockManager::AddBlocks(int64_t count) {
  std::lock_guard<std::mutex> guard(mu_);
  for (int64_t i = 0; i < count; ++i) blocks_.AddBlock();
  if (count > 0) options_.policy->OnResize();
}

Status LockManager::TryRemoveBlocks(int64_t count) {
  std::lock_guard<std::mutex> guard(mu_);
  Status s = blocks_.TryRemoveBlocks(count);
  if (s.ok() && count > 0) options_.policy->OnResize();
  return s;
}

void LockManager::set_max_lock_memory(Bytes bytes) {
  std::lock_guard<std::mutex> guard(mu_);
  max_lock_memory_ = bytes;
  options_.policy->OnResize();
}

LockMemoryState LockManager::MemoryState() const {
  std::lock_guard<std::mutex> guard(mu_);
  return MemoryStateLocked();
}

Bytes LockManager::allocated_bytes() const {
  std::lock_guard<std::mutex> guard(mu_);
  return blocks_.allocated_bytes();
}

Bytes LockManager::used_bytes() const {
  std::lock_guard<std::mutex> guard(mu_);
  return blocks_.used_bytes();
}

int64_t LockManager::block_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return blocks_.block_count();
}

int64_t LockManager::entirely_free_blocks() const {
  std::lock_guard<std::mutex> guard(mu_);
  return blocks_.entirely_free_blocks();
}

double LockManager::CurrentMaxlocksPercent() const {
  std::lock_guard<std::mutex> guard(mu_);
  return options_.policy->CurrentPercent(MemoryStateLocked());
}

int64_t LockManager::HeldStructures(AppId app) const {
  std::lock_guard<std::mutex> guard(mu_);
  const auto it = apps_.find(app);
  return it == apps_.end() ? 0 : it->second.held_structures;
}

LockMode LockManager::HeldMode(AppId app, const ResourceId& resource) const {
  std::lock_guard<std::mutex> guard(mu_);
  return HeldModeLockedInternal(app, resource);
}

int64_t LockManager::waiting_app_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  int64_t n = 0;
  for (const auto& [app, state] : apps_) {
    if (state.waiting) ++n;
  }
  return n;
}

Status LockManager::CheckConsistency() const {
  std::lock_guard<std::mutex> guard(mu_);
  if (Status s = blocks_.CheckConsistency(); !s.ok()) return s;
  int64_t slots = 0;
  for (const auto& [app, state] : apps_) {
    slots += state.held_structures;
    for (const ResourceId& res : state.held) {
      const auto it = table_.find(res);
      if (it == table_.end() || it->second.FindHolder(app) == nullptr) {
        return Status::Internal("held list references a missing grant");
      }
    }
  }
  if (slots != blocks_.slots_in_use()) {
    return Status::Internal("per-app structure counts do not sum to slots");
  }
  for (const auto& [res, head] : table_) {
    if (head.empty()) return Status::Internal("empty lock head retained");
  }
  return Status::Ok();
}

std::vector<AppId> LockManager::ExpireTimedOutWaiters() {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<AppId> expired;
  if (options_.clock == nullptr || options_.lock_timeout < 0) return expired;
  const TimeMs now = options_.clock->now();
  for (const auto& [app, state] : apps_) {
    if (state.waiting && now - state.wait_since >= options_.lock_timeout) {
      expired.push_back(app);
      Emit(LockEventKind::kTimeout, app, state.wait_resource,
           state.wait_mode, now - state.wait_since);
    }
  }
  stats_.lock_timeouts += static_cast<int64_t>(expired.size());
  return expired;
}

void LockManager::SetEscalationPreferred(AppId app, bool preferred) {
  std::lock_guard<std::mutex> guard(mu_);
  if (preferred) {
    escalation_preferred_.insert(app);
  } else {
    escalation_preferred_.erase(app);
  }
}

bool LockManager::IsEscalationPreferred(AppId app) const {
  std::lock_guard<std::mutex> guard(mu_);
  return escalation_preferred_.count(app) > 0;
}

void LockManager::MarkWaitStart(AppId app, AppState& state) {
  state.wait_since = options_.clock != nullptr ? options_.clock->now() : 0;
  Emit(LockEventKind::kWaitBegin, app, state.wait_resource, state.wait_mode,
       0);
}

void LockManager::Emit(LockEventKind kind, AppId app,
                       const ResourceId& resource, LockMode mode,
                       int64_t value) {
  if (options_.monitor == nullptr) return;
  LockEvent event;
  event.kind = kind;
  event.time = options_.clock != nullptr ? options_.clock->now() : 0;
  event.app = app;
  event.resource = resource;
  event.mode = mode;
  event.value = value;
  options_.monitor->OnLockEvent(event);
}

LockManager::AppState& LockManager::GetApp(AppId app) { return apps_[app]; }

LockHead* LockManager::FindHead(const ResourceId& resource) {
  const auto it = table_.find(resource);
  return it == table_.end() ? nullptr : &it->second;
}

const LockHead* LockManager::FindHead(const ResourceId& resource) const {
  const auto it = table_.find(resource);
  return it == table_.end() ? nullptr : &it->second;
}

LockMode LockManager::HeldModeLockedInternal(AppId app,
                                             const ResourceId& resource)
    const {
  const LockHead* head = FindHead(resource);
  if (head == nullptr) return LockMode::kNone;
  const LockRequest* r = head->FindHolder(app);
  return r == nullptr ? LockMode::kNone : r->mode;
}

LockMemoryState LockManager::MemoryStateLocked() const {
  LockMemoryState s;
  s.allocated = blocks_.allocated_bytes();
  s.used = blocks_.used_bytes();
  s.capacity_slots = blocks_.capacity_slots();
  s.slots_in_use = blocks_.slots_in_use();
  s.max_lock_memory = max_lock_memory_;
  s.database_memory = options_.database_memory;
  return s;
}

void LockManager::DrainWorkList() {
  if (draining_) return;  // the outer drain loop will pick new entries up
  draining_ = true;
  while (!work_list_.empty()) {
    const ResourceId res = work_list_.front();
    work_list_.pop_front();
    ProcessQueue(res);
  }
  draining_ = false;
}

void LockManager::EraseHeldEntry(AppState& state, const ResourceId& resource) {
  const auto it = std::find(state.held.begin(), state.held.end(), resource);
  if (it != state.held.end()) state.held.erase(it);
}

void LockManager::RegisterMetrics(MetricsRegistry* registry) {
  const auto counter = [&](const char* name, const char* help,
                           std::function<int64_t()> fn) {
    registry->AddCallbackCounter(name, help, std::move(fn));
  };
  counter("locktune_lock_requests_total", "lock requests issued",
          [this] { return stats().lock_requests; });
  counter("locktune_lock_grants_total", "lock requests granted",
          [this] { return stats().grants; });
  counter("locktune_lock_waits_total", "lock requests that blocked",
          [this] { return stats().lock_waits; });
  counter("locktune_lock_escalations_total", "completed lock escalations",
          [this] { return stats().escalations; });
  counter("locktune_lock_escalations_exclusive_total",
          "escalations that took an X table lock",
          [this] { return stats().exclusive_escalations; });
  counter("locktune_lock_escalation_attempts_total",
          "escalations attempted (completed or not)",
          [this] { return stats().escalation_attempts; });
  counter("locktune_lock_escalations_preferred_total",
          "escalations taken because the app prefers them over growth",
          [this] { return stats().preferred_escalations; });
  counter("locktune_lock_deadlock_victims_total",
          "applications chosen to break deadlock cycles",
          [this] { return stats().deadlock_victims; });
  counter("locktune_lock_timeouts_total", "lock waits past LOCKTIMEOUT",
          [this] { return stats().lock_timeouts; });
  counter("locktune_lock_oom_failures_total",
          "requests failed for lack of lock memory",
          [this] { return stats().out_of_memory_failures; });
  counter("locktune_lock_sync_growth_blocks_total",
          "blocks added synchronously on the request path",
          [this] { return stats().sync_growth_blocks; });
  counter("locktune_lock_blocks_added_total",
          "lock memory blocks ever added",
          [this] { return blocks_.blocks_added(); });
  counter("locktune_lock_blocks_removed_total",
          "lock memory blocks ever removed (shrink)",
          [this] { return blocks_.blocks_removed(); });

  registry->AddCallbackGauge(
      "locktune_lock_memory_allocated_bytes", "lock memory owned",
      [this] { return static_cast<double>(allocated_bytes()); });
  registry->AddCallbackGauge(
      "locktune_lock_memory_used_bytes", "lock structures in use x 64 B",
      [this] { return static_cast<double>(used_bytes()); });
  registry->AddCallbackGauge(
      "locktune_lock_memory_max_bytes", "maxLockMemory bound",
      [this] { return static_cast<double>(max_lock_memory()); });
  registry->AddCallbackGauge(
      "locktune_lock_blocks", "blocks on the list",
      [this] { return static_cast<double>(block_count()); });
  registry->AddCallbackGauge(
      "locktune_lock_blocks_free", "entirely free blocks (shrinkable)",
      [this] { return static_cast<double>(entirely_free_blocks()); });
  registry->AddCallbackGauge(
      "locktune_lock_waiting_apps", "applications currently blocked",
      [this] { return static_cast<double>(waiting_app_count()); });
  registry->AddCallbackGauge(
      "locktune_lock_maxlocks_percent",
      "current lockPercentPerApplication",
      [this] { return CurrentMaxlocksPercent(); });

  registry->AddCallbackHistogram(
      "locktune_lock_wait_time_ms", "completed lock-wait durations",
      [this] {
        std::lock_guard<std::mutex> lock(mu_);
        return SnapshotOf(wait_times_);
      });
}

}  // namespace locktune
