#include "lock/lock_manager.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/lock_profiler.h"
#include "telemetry/metrics.h"

namespace locktune {

namespace {
// Source of per-manager epochs for the FastGetApp thread-local cache.
// Monotone and never reused, so a cache entry keyed by an epoch can only
// ever match the manager instance that minted it.
std::atomic<uint64_t> g_manager_epoch{0};
}  // namespace

LockManager::LockManager(LockManagerOptions options)
    : options_(std::move(options)),
      max_lock_memory_(options_.max_lock_memory),
      manager_epoch_(g_manager_epoch.fetch_add(1, std::memory_order_relaxed) +
                     1),
      table_(options_.table_shards) {
  LOCKTUNE_DCHECK(options_.policy != nullptr && "an escalation policy is required");
  for (int64_t i = 0; i < options_.initial_blocks; ++i) blocks_.AddBlock();
}

// Holds the write latch of at most one lock-table shard at a time.
// Acquire() for the shard already held is free — that is the batching win:
// consecutive grants hashing to the same shard pay one latch acquisition.
// A different shard releases the held latch first; shard latches share one
// lock rank (common/lock_rank_table.h), so the lease never nests two.
class LockManager::ShardLease {
 public:
  ShardLease(LockTable& table, ProfileSite site) : table_(table), site_(site) {}
  ShardLease(const ShardLease&) = delete;
  ShardLease& operator=(const ShardLease&) = delete;

  // True when this lease already holds the latch of shard `shard`.
  bool Holds(int shard) const { return guard_.has_value() && shard_ == shard; }

  // Acquires (or keeps) the write latch of the shard `hash` maps to.
  void Acquire(uint64_t hash) {
    const int shard = table_.ShardIndex(hash);
    if (Holds(shard)) return;
    guard_.reset();
    guard_.emplace(table_.ShardLatch(hash), site_, shard);
    shard_ = shard;
  }

 private:
  LockTable& table_;
  const ProfileSite site_;
  int shard_ = -1;
  // The guard is non-movable; optional gives it deferred construction and
  // release-then-reacquire. The capability annotations on its constructor
  // and destructor fire inside std::optional (unanalyzed), which is fine:
  // the lease's single-latch invariant is what the rank checks enforce.
  std::optional<OptLatchWriteGuard> guard_;
};

LockResult LockManager::Lock(AppId app, const ResourceId& resource,
                             LockMode mode) {
  if (parallel_mode_.load(std::memory_order_relaxed)) {
    if (std::optional<LockResult> fast = FastLock(app, resource, mode)) {
      ProfileNoteFastGrant();
      return *fast;
    }
    // The fast path counted the request before bailing; finish on the
    // exclusive path without double counting.
    ProfileNoteFastBail();
    ProfiledExclusiveGuard guard(mu_, ProfileSite::kExclusive);
    return LockExclusive(app, resource, mode, /*counted=*/true);
  }
  ProfiledExclusiveGuard guard(mu_, ProfileSite::kExclusive);
  return LockExclusive(app, resource, mode, /*counted=*/false);
}

LockResult LockManager::LockExclusive(AppId app, const ResourceId& resource,
                                      LockMode mode, bool counted) {
  if (!counted) {
    Bump(stats_.lock_requests);
    options_.policy->OnLockRequest();
  }
  AppState& state = GetApp(app);
  LOCKTUNE_DCHECK(!state.waiting && "application issued a request while blocked");

  bool escalated = false;
  const AcquireOutcome outcome =
      TryAcquire(app, state, resource, mode, &escalated);
  DrainWorkList();

  LockResult result;
  result.escalated = escalated;
  switch (outcome) {
    case AcquireOutcome::kDone:
      result.outcome = LockOutcome::kGranted;
      break;
    case AcquireOutcome::kBlocked:
      result.outcome = LockOutcome::kWaiting;
      break;
    case AcquireOutcome::kNoMemory:
      result.outcome = LockOutcome::kOutOfMemory;
      Bump(stats_.out_of_memory_failures);
      Emit(LockEventKind::kOutOfLockMemory, app, resource, mode, 0);
      break;
  }
  return result;
}

BatchResult LockManager::AcquireBatch(AppId app, LockRequestSource& source) {
  BatchResult result;
  if (!parallel_mode_.load(std::memory_order_relaxed)) {
    // Serial: one exclusive acquire amortized over the batch; each item
    // then runs the identical classic path a Lock() call would, in the
    // identical order (the source draws lazily), so the deterministic
    // golden contract is untouched.
    ProfiledExclusiveGuard guard(mu_, ProfileSite::kExclusive);
    while (std::optional<BatchItem> item = source.Next()) {
      const LockResult r =
          LockExclusive(app, item->resource, item->mode, /*counted=*/false);
      result.escalated |= r.escalated;
      result.outcome = r.outcome;
      if (r.outcome != LockOutcome::kGranted) return result;
      ++result.granted;
    }
    return result;
  }
  // Parallel: drain the source on the fast path (one shared hold, one
  // shard lease); an item that bails is retried on the exclusive path and,
  // when granted there, the fast section resumes with the rest.
  std::optional<BatchItem> pending;
  for (;;) {
    if (FastAcquireBatch(app, source, pending, result)) return result;
    ProfileNoteFastBail();
    LockResult r;
    {
      ProfiledExclusiveGuard guard(mu_, ProfileSite::kExclusive);
      // The fast section counted the item when it drew it.
      r = LockExclusive(app, pending->resource, pending->mode,
                        /*counted=*/true);
    }
    result.escalated |= r.escalated;
    result.outcome = r.outcome;
    if (r.outcome != LockOutcome::kGranted) return result;
    ++result.granted;
    pending.reset();
  }
}

bool LockManager::FastAcquireBatch(AppId app, LockRequestSource& source,
                                   std::optional<BatchItem>& pending,
                                   BatchResult& result) {
  ProfiledSharedGuard shared(mu_, ProfileSite::kFastShared);
  AppState& state = FastGetApp(app);
  LOCKTUNE_DCHECK(!state.waiting && "application issued a request while blocked");
  ShardLease lease(table_, ProfileSite::kShardBatch);
  for (;;) {
    if (!pending.has_value()) {
      pending = source.Next();
      if (!pending.has_value()) return true;  // batch exhausted
      Bump(stats_.lock_requests);
      options_.policy->OnLockRequest();
    }
    if (FastTryOne(app, state, pending->resource, pending->mode, lease) ==
        FastOutcome::kBail) {
      return false;  // pending stays set for the exclusive retry
    }
    ProfileNoteFastGrant();
    ++result.granted;
    pending.reset();
  }
}

std::optional<LockResult> LockManager::FastLock(AppId app,
                                                const ResourceId& resource,
                                                LockMode mode) {
  ProfiledSharedGuard shared(mu_, ProfileSite::kFastShared);
  Bump(stats_.lock_requests);
  options_.policy->OnLockRequest();
  AppState& state = FastGetApp(app);
  LOCKTUNE_DCHECK(!state.waiting && "application issued a request while blocked");

  // Single-request leases attribute to the classic per-shard site; only
  // batches report under kShardBatch.
  ShardLease lease(table_, ProfileSite::kQueuedWrite);
  if (FastTryOne(app, state, resource, mode, lease) == FastOutcome::kBail) {
    return std::nullopt;
  }
  return LockResult{};  // kGranted, escalated=false
}

LockManager::FastOutcome LockManager::FastTryOne(AppId app, AppState& state,
                                                 const ResourceId& resource,
                                                 LockMode mode,
                                                 ShardLease& lease) {
  if (resource.kind == ResourceKind::kRow) {
    const LockMode table_mode = FastTableMode(state, resource.table);
    if (Covers(table_mode, mode)) {
      Bump(stats_.grants);
      return FastOutcome::kGranted;
    }
    const LockMode intent = IntentModeFor(mode);
    if (!Covers(table_mode, intent)) {
      if (FastAcquireOne(app, state, TableResource(resource.table), intent,
                         lease) == FastOutcome::kBail) {
        return FastOutcome::kBail;
      }
      // The intent grant refreshed the table-mode cache; a covering grant
      // cannot have appeared (only this thread changes this app's holds).
      LOCKTUNE_DCHECK(!Covers(FastTableMode(state, resource.table), mode));
    }
  }
  return FastAcquireOne(app, state, resource, mode, lease);
}

LockManager::FastOutcome LockManager::FastAcquireOne(
    AppId app, AppState& state, const ResourceId& resource, LockMode mode,
    ShardLease& lease) {
  const uint64_t hash = ResourceIdHash{}(resource);
  // Already held? Resolved thread-locally: held_index membership and the
  // HeldSlot mode mirror are owner-thread state, so the dominant re-request
  // case never touches the shard.
  if (const uint32_t* idx = state.held_index.Find(resource, hash);
      idx != nullptr) {
    HeldSlot& held = state.held[*idx];
    if (Covers(held.mode, mode)) {
      Bump(stats_.grants);
      return FastOutcome::kGranted;
    }
    // In-place conversion attempt: needs the latched view of the other
    // holders.
    const LockMode target = Supremum(held.mode, mode);
    lease.Acquire(hash);
    LockHead* head = held.head;
    LockRequest* holder = head->FindHolder(app);
    LOCKTUNE_DCHECK(holder != nullptr && "held slot without holder entry");
    if (!head->CanGrantConversion(app, target)) {
      return FastOutcome::kBail;  // the conversion must queue
    }
    head->SetHolderMode(holder, target);
    held.mode = target;
    if (resource.kind == ResourceKind::kTable) {
      NoteTableMode(state, resource.table, target);
    }
    Bump(stats_.grants);
    return FastOutcome::kGranted;
  }
  // Optimistic pre-flight (docs/LATCHES.md): a version-validated probe of
  // the directory plus the head's summary word decides "would this new
  // request have to wait?" without the latch. A wait means queueing — the
  // classic path's business — so bailing here skips the latch acquisition
  // entirely on the contended-resource pattern that used to collapse the
  // hot shard. Validation failures retry, then pessimize to the latched
  // path below, which decides authoritatively. Skipped when the lease
  // already holds this shard's latch: we are the writer Busy() would flag,
  // and the latched re-check below is authoritative and already paid for.
  if (!lease.Holds(table_.ShardIndex(hash))) {
    OptLatch& latch = table_.ShardLatch(hash);
    for (int attempt = 0;; ++attempt) {
      if (attempt == OptLatch::kOptReadRetries) {
        ProfileNoteOptPessimize();
        break;
      }
      if (latch.Busy()) continue;  // writer in flight; burn an attempt
      const LockTable::OptProbeResult probe = table_.OptProbe(resource, hash);
      if (!probe.valid) {
        ProfileNoteOptValidationFail();
        continue;
      }
      ProfileNoteOptRead();
      if (probe.found) {
        const uint32_t s = probe.summary;
        if (LockHead::SummaryHasWaiters(s) ||
            !Compatible(LockHead::SummaryMode(s), mode)) {
          return FastOutcome::kBail;  // would wait: queueing is exclusive-only
        }
      }
      break;  // absent or grantable: fall through to the latched grant
    }
  }
  // Quota and memory pressure mirror the classic path; anything that needs
  // escalation or growth is the classic path's business.
  const LockMemoryState mem = MemoryStateLocked();
  if (state.held_structures + 1 > options_.policy->MaxStructuresPerApp(mem) ||
      options_.policy->ForcesMemoryEscalation(mem)) {
    return FastOutcome::kBail;
  }
  lease.Acquire(hash);
  LockHead* found = table_.Find(resource, hash);
  // The optimistic verdict is advisory; re-check under the latch before
  // mutating (the probe may have pessimized or gone stale).
  if (found != nullptr && !found->CanGrantNew(mode)) return FastOutcome::kBail;
  LockBlock* slot = nullptr;
  {
    // Ordering: shard latch, then alloc_mu_ — never the reverse. The
    // latch is held through the lease (its guard lives behind a
    // std::optional the lexical scan cannot see), so the edge is recorded
    // structurally:
    // locklint: lock-edge(LockTable::shard_latch -> LockManager::alloc_mu_)
    ProfiledMutexGuard alloc_guard(alloc_mu_, ProfileSite::kAlloc);
    Result<LockBlock*> r = blocks_.AllocateSlot();
    if (!r.ok()) return FastOutcome::kBail;  // exhausted: growth/escalation
    slot = r.value();
  }
  LockHead& head = found != nullptr ? *found : table_.Create(resource, hash);
  LockRequest request;
  request.app = app;
  request.mode = mode;
  request.slot = slot;
  head.AddHolder(request);
  AddHeldEntry(state, resource, hash, &head, mode);
  if (resource.kind == ResourceKind::kRow) {
    BumpRowCount(state, resource.table);
  } else {
    NoteTableMode(state, resource.table, mode);
  }
  ++state.held_structures;
  Bump(stats_.grants);
  return FastOutcome::kGranted;
}

LockMode LockManager::FastTableMode(AppState& state, TableId table) {
  if (state.table_cache_valid && state.cached_table == table) {
    return state.cached_table_mode;
  }
  // held_index is the authoritative owner-thread record of this app's
  // grants (a live slot exists iff a holder entry exists), so the miss path
  // is thread-local too — the shard is never probed for our own mode.
  const ResourceId resource = TableResource(table);
  const uint64_t hash = ResourceIdHash{}(resource);
  LockMode mode = LockMode::kNone;
  if (const uint32_t* idx = state.held_index.Find(resource, hash);
      idx != nullptr) {
    mode = state.held[*idx].mode;
  }
  NoteTableMode(state, table, mode);
  return mode;
}

LockManager::AppState& LockManager::FastGetApp(AppId app) {
  // Thread-local pointer cache: apps_ entries are never erased and
  // unordered_map element pointers are stable, so a resolved AppState* is
  // good for the manager's lifetime. The epoch (unique per manager ever
  // constructed) keeps a cache built against a destroyed manager — or a new
  // manager reusing this address — from ever serving a stale pointer. Only
  // a thread's first touch of an app pays for apps_mu_.
  struct TlsAppCache {
    uint64_t epoch = 0;
    std::unordered_map<AppId, AppState*> by_app;
  };
  static thread_local TlsAppCache tls;
  if (tls.epoch != manager_epoch_) {
    tls.epoch = manager_epoch_;
    tls.by_app.clear();
  }
  if (const auto it = tls.by_app.find(app); it != tls.by_app.end()) {
    return *it->second;
  }
  AppState* statep = nullptr;
  {
    ProfiledMutexGuard guard(apps_mu_, ProfileSite::kAppsMap);
    statep = &apps_[app];
  }
  tls.by_app.emplace(app, statep);
  return *statep;
}

LockManager::AcquireOutcome LockManager::TryAcquire(AppId app,
                                                    AppState& state,
                                                    const ResourceId& resource,
                                                    LockMode mode,
                                                    bool* escalated) {
  if (resource.kind == ResourceKind::kRow) {
    // A table lock covering the row mode makes the row lock unnecessary —
    // this is what keeps an escalated application from re-consuming lock
    // memory on the same table.
    const LockMode table_mode = CachedTableMode(app, state, resource.table);
    if (Covers(table_mode, mode)) {
      Bump(stats_.grants);
      return AcquireOutcome::kDone;
    }
    // Multigranularity: intent lock on the table first.
    const LockMode intent = IntentModeFor(mode);
    if (!Covers(table_mode, intent)) {
      const AcquireOutcome io = AcquireOne(
          app, state, TableResource(resource.table), intent, escalated);
      if (io == AcquireOutcome::kBlocked) {
        // Resume the full row request once the intent (or escalation)
        // wait is granted.
        state.continuation = Continuation{resource, mode};
        return io;
      }
      if (io == AcquireOutcome::kNoMemory) return io;
      // The intent acquisition may itself have escalated this table to
      // S or X; re-check coverage before taking the row lock.
      if (Covers(CachedTableMode(app, state, resource.table), mode)) {
        Bump(stats_.grants);
        return AcquireOutcome::kDone;
      }
    }
  }
  const AcquireOutcome out = AcquireOne(app, state, resource, mode, escalated);
  if (out == AcquireOutcome::kBlocked) {
    if (state.wait_is_escalation) {
      // Blocked on an escalation conversion, not on the request itself:
      // re-run the request after the escalation completes.
      state.continuation = Continuation{resource, mode};
    }
  }
  return out;
}

LockManager::AcquireOutcome LockManager::AcquireOne(AppId app,
                                                    AppState& state,
                                                    const ResourceId& resource,
                                                    LockMode mode,
                                                    bool* escalated) {
  // One hash serves every table touch this request makes (find, create,
  // held-index insert).
  const uint64_t hash = ResourceIdHash{}(resource);
  // Do not create the head until a holder or waiter is actually added:
  // early-return paths below must not leave empty heads behind.
  LockHead* found = table_.Find(resource, hash);
  if (found != nullptr) {
    if (LockRequest* holder = found->FindHolder(app); holder != nullptr) {
      if (Covers(holder->mode, mode)) {
        Bump(stats_.grants);
        return AcquireOutcome::kDone;
      }
      const LockMode target = Supremum(holder->mode, mode);
      if (found->CanGrantConversion(app, target)) {
        found->SetHolderMode(holder, target);
        NoteHeldMode(state, resource, hash, target);
        if (resource.kind == ResourceKind::kTable) {
          NoteTableMode(state, resource.table, target);
        }
        Bump(stats_.grants);
        return AcquireOutcome::kDone;
      }
      WaitingRequest w;
      w.app = app;
      w.mode = target;
      w.is_conversion = true;
      found->EnqueueConversion(w);
      state.waiting = true;
      state.wait_resource = resource;
      state.wait_mode = target;
      state.wait_is_conversion = true;
      state.wait_is_escalation = false;
      MarkWaitStart(app, state);
      Bump(stats_.lock_waits);
      return AcquireOutcome::kBlocked;
    }
  }

  // New request: enforce the per-application quota before consuming another
  // lock structure (paper §3.5). Escalation replaces row locks with one
  // table lock; afterwards the request proceeds.
  bool table_stable = true;  // `found` still valid / absence still holds
  const LockMemoryState mem = MemoryStateLocked();
  const int64_t limit = options_.policy->MaxStructuresPerApp(mem);
  const bool over_quota = state.held_structures + 1 > limit;
  const bool memory_forced = options_.policy->ForcesMemoryEscalation(mem);
  if (over_quota || memory_forced) {
    table_stable = false;
    const AcquireOutcome esc = EscalateApp(app);
    if (esc == AcquireOutcome::kDone) *escalated = true;
    if (esc == AcquireOutcome::kBlocked) {
      *escalated = true;
      return AcquireOutcome::kBlocked;  // caller sets the continuation
    }
    // kNoMemory: nothing to escalate (no row locks); proceed regardless —
    // the hard memory limit below still applies.
    // The escalation may have covered the requested resource entirely.
    if (resource.kind == ResourceKind::kRow &&
        Covers(CachedTableMode(app, state, resource.table), mode)) {
      Bump(stats_.grants);
      return AcquireOutcome::kDone;
    }
    // The escalation released this app's row locks; if `resource` was one
    // of them the holder is gone, which is consistent: re-acquire below.
  }

  const AllocResult alloc = AllocateStructure(app, escalated);
  if (alloc.table_may_have_changed) table_stable = false;
  if (alloc.blocked) return AcquireOutcome::kBlocked;
  if (alloc.slot == nullptr) {
    // Escalation of some application may have covered the request.
    if (resource.kind == ResourceKind::kRow &&
        Covers(CachedTableMode(app, state, resource.table), mode)) {
      Bump(stats_.grants);
      return AcquireOutcome::kDone;
    }
    return AcquireOutcome::kNoMemory;
  }
  ++state.held_structures;

  // The head is created here, when a holder or waiter is guaranteed to be
  // added. While the table is stable the earlier probe is still good: a
  // found head's node address cannot have changed and an absent key is
  // still absent, so the re-find inside GetOrCreate is skipped. Any
  // escalation above (which can create table heads and erase row heads)
  // invalidates both and forces the full look-up.
  LockHead& head2 = !table_stable ? table_.GetOrCreate(resource, hash)
                    : found != nullptr ? *found
                                       : table_.Create(resource, hash);
  if (head2.CanGrantNew(mode)) {
    LockRequest r;
    r.app = app;
    r.mode = mode;
    r.slot = alloc.slot;
    head2.AddHolder(r);
    AddHeldEntry(state, resource, hash, &head2, mode);
    if (resource.kind == ResourceKind::kRow) {
      BumpRowCount(state, resource.table);
    } else {
      NoteTableMode(state, resource.table, mode);
    }
    Bump(stats_.grants);
    return AcquireOutcome::kDone;
  }

  WaitingRequest w;
  w.app = app;
  w.mode = mode;
  w.is_conversion = false;
  w.slot = alloc.slot;
  head2.EnqueueNew(w);
  state.waiting = true;
  state.wait_resource = resource;
  state.wait_mode = mode;
  state.wait_is_conversion = false;
  state.wait_is_escalation = false;
  MarkWaitStart(app, state);
  Bump(stats_.lock_waits);
  return AcquireOutcome::kBlocked;
}

LockManager::AllocResult LockManager::AllocateStructure(AppId requester,
                                                        bool* escalated) {
  AllocResult out;
  Result<LockBlock*> slot = blocks_.AllocateSlot();
  if (slot.ok()) {
    out.slot = slot.value();
    return out;
  }

  // Past this point growth or escalation may create/erase lock-table heads.
  out.table_may_have_changed = true;

  // §6.1 selective escalation: applications that prefer escalation over
  // growth trade their own row locks for a table lock before any new
  // memory is consumed.
  if (escalation_preferred_.count(requester) > 0) {
    const AcquireOutcome esc = EscalateApp(requester);
    if (esc == AcquireOutcome::kDone) {
      *escalated = true;
      Bump(stats_.preferred_escalations);
      slot = blocks_.AllocateSlot();
      if (slot.ok()) {
        out.slot = slot.value();
        return out;
      }
    } else if (esc == AcquireOutcome::kBlocked) {
      *escalated = true;
      Bump(stats_.preferred_escalations);
      out.blocked = true;
      return out;
    }
    // kNoMemory: nothing to escalate; fall through to normal growth.
  }

  // Synchronous growth from database overflow memory (paper §3.3).
  if (options_.grow_callback && options_.grow_callback(1)) {
    blocks_.AddBlock();
    Bump(stats_.sync_growth_blocks);
    options_.policy->OnResize();
    Emit(LockEventKind::kSynchronousGrowth, requester, ResourceId{},
         LockMode::kNone, 1);
    slot = blocks_.AllocateSlot();
    LOCKTUNE_DCHECK(slot.ok());
    out.slot = slot.value();
    return out;
  }

  // Growth denied: escalate the heaviest row-lock holders until a structure
  // frees up. Applications other than the requester are only escalated when
  // the table conversion can be granted immediately — we cannot block an
  // application that is not inside a lock request.
  //
  // Two-phase scan. Phase 1 is the legacy scan over non-waiting holders.
  // Phase 2 widens to *waiting* holders, but only when phase 1 found
  // nobody: in the escalation-convoy shape (docs/FUZZING.md) every heavy
  // holder is blocked converting on the same table, and skipping them all
  // turns a reclaimable locklist into a hard OUT_OF_LOCK_MEMORY. A waiting
  // victim's row locks on tables *other than its wait table* are fair
  // game — EscalateApp never touches the table its wait rides on, and
  // only_if_immediate means no second wait is ever enqueued.
  for (int attempt = 0; attempt < 3; ++attempt) {
    AppId victim = -1;
    int64_t victim_rows = 0;
    bool waiting_phase = false;
    // locklint: ordered-ok(max scan; ties broken by legacy hash order, which
    // the golden suite locks in)
    for (const auto& [id, st] : apps_) {
      if (st.waiting || id == requester) continue;
      if (st.total_row_locks > victim_rows) {
        victim_rows = st.total_row_locks;
        victim = id;
      }
    }
    if (victim < 0) {
      waiting_phase = true;
      // Weigh a waiting victim by the row locks EscalateApp could actually
      // reclaim — everything outside its wait table. A convoy member whose
      // rows all sit on the table it is converting on is not a victim at
      // all, so the probe (and its attempts counter) never fires for it.
      // locklint: ordered-ok(max scan; ties broken by legacy hash order,
      // which the golden suite locks in)
      for (const auto& [id, st] : apps_) {
        if (!st.waiting || id == requester) continue;
        int64_t reclaimable = st.total_row_locks;
        const auto it = st.row_locks_per_table.find(st.wait_resource.table);
        if (it != st.row_locks_per_table.end()) reclaimable -= it->second;
        if (reclaimable > victim_rows) {
          victim_rows = reclaimable;
          victim = id;
        }
      }
    }
    if (victim < 0) break;
    if (EscalateApp(victim, /*only_if_immediate=*/true,
                    /*silent_probe=*/waiting_phase) !=
        AcquireOutcome::kDone) {
      break;  // conflicting table traffic; fall through to self-escalation
    }
    *escalated = true;
    slot = blocks_.AllocateSlot();
    if (slot.ok()) {
      out.slot = slot.value();
      return out;
    }
  }

  // Last resort: the requester escalates its own row locks, waiting for the
  // table lock if it must. This blocking escalation is what devastates
  // concurrency under an undersized static LOCKLIST (Figure 8).
  switch (EscalateApp(requester)) {
    case AcquireOutcome::kDone: {
      *escalated = true;
      slot = blocks_.AllocateSlot();
      if (slot.ok()) out.slot = slot.value();
      return out;
    }
    case AcquireOutcome::kBlocked:
      *escalated = true;
      out.blocked = true;
      return out;
    case AcquireOutcome::kNoMemory:
      return out;  // nothing anywhere to escalate: hard failure
  }
  return out;
}

LockManager::AcquireOutcome LockManager::EscalateApp(AppId app,
                                                     bool only_if_immediate,
                                                     bool silent_probe) {
  if (!silent_probe) Bump(stats_.escalation_attempts);
  AppState& state = GetApp(app);

  // Pick the table with the most row locks held by this application. A
  // waiting application's wait table is off limits: it has a conversion
  // entry enqueued there (or is mid-request on one of its rows), and
  // escalating would mutate the very holder entry that conversion is
  // keyed on. The two-phase victim scan relies on this to safely escalate
  // waiting victims' *other* tables.
  TableId victim_table = -1;
  int64_t most_rows = 0;
  // locklint: ordered-ok(max scan; ties broken by legacy hash order, which
  // the golden suite locks in)
  for (const auto& [tbl, n] : state.row_locks_per_table) {
    if (state.waiting && state.wait_resource.table == tbl) continue;
    if (n > most_rows) {
      most_rows = n;
      victim_table = tbl;
    }
  }
  if (victim_table < 0) return AcquireOutcome::kNoMemory;

  // Escalate to X when any row lock is U or X, otherwise S.
  LockMode target = LockMode::kS;
  for (const HeldSlot& slot : state.held) {
    if (!slot.live) continue;
    const ResourceId& res = slot.res;
    if (res.kind != ResourceKind::kRow || res.table != victim_table) continue;
    const LockHead* h = slot.head;
    LOCKTUNE_DCHECK(h != nullptr);
    const LockRequest* r = h->FindHolder(app);
    LOCKTUNE_DCHECK(r != nullptr);
    if (r->mode == LockMode::kU || r->mode == LockMode::kX) {
      target = LockMode::kX;
      break;
    }
  }

  const ResourceId table_res = TableResource(victim_table);
  const uint64_t table_hash = ResourceIdHash{}(table_res);
  LockHead& head = table_.GetOrCreate(table_res, table_hash);
  LockRequest* holder = head.FindHolder(app);
  LOCKTUNE_DCHECK(holder != nullptr && "row locks imply an intent table lock");
  const LockMode new_mode = Supremum(holder->mode, target);

  if (Covers(holder->mode, new_mode) ||
      head.CanGrantConversion(app, new_mode)) {
    head.SetHolderMode(holder, new_mode);
    NoteHeldMode(state, table_res, table_hash, new_mode);
    NoteTableMode(state, victim_table, new_mode);
    // A probe that lands is a real attempt; only failures stay silent.
    if (silent_probe) Bump(stats_.escalation_attempts);
    Bump(stats_.escalations);
    if (target == LockMode::kX) Bump(stats_.exclusive_escalations);
    ReleaseRowLocksOnTable(app, victim_table);
    Emit(LockEventKind::kEscalation, app, table_res, new_mode, most_rows);
    return AcquireOutcome::kDone;
  }
  if (only_if_immediate) return AcquireOutcome::kNoMemory;

  WaitingRequest w;
  w.app = app;
  w.mode = new_mode;
  w.is_conversion = true;
  head.EnqueueConversion(w);
  state.waiting = true;
  state.wait_resource = table_res;
  state.wait_mode = new_mode;
  state.wait_is_conversion = true;
  state.wait_is_escalation = true;
  MarkWaitStart(app, state);
  Bump(stats_.lock_waits);
  return AcquireOutcome::kBlocked;
}

void LockManager::ReleaseRowLocksOnTable(AppId app, TableId table) {
  AppState& state = GetApp(app);
  for (HeldSlot& slot : state.held) {
    if (!slot.live) continue;
    const ResourceId& res = slot.res;
    if (res.kind != ResourceKind::kRow || res.table != table) continue;
    const uint64_t hash = ResourceIdHash{}(res);
    LockHead* head = slot.head;
    LOCKTUNE_DCHECK(head != nullptr);
    LockBlock* block = head->RemoveHolder(app);
    LOCKTUNE_DCHECK(block != nullptr);
    blocks_.FreeSlot(block);
    --state.held_structures;
    if (head->waiters().empty()) {
      if (!head->HasHolders()) table_.EraseIfEmpty(res, hash);
    } else {
      work_list_.push_back(res);
    }
    slot.live = false;
    ++state.held_dead;
    state.held_index.Erase(res, hash);
  }
  const auto it = state.row_locks_per_table.find(table);
  if (it != state.row_locks_per_table.end()) {
    state.total_row_locks -= it->second;
    state.row_locks_per_table.erase(it);
    state.row_cache_count = nullptr;
  }
  CompactHeld(state);
}

void LockManager::ReleaseAll(AppId app) {
  if (parallel_mode_.load(std::memory_order_relaxed)) {
    if (FastReleaseAll(app)) return;
    ProfileNoteReleaseBail();
  }
  ProfiledExclusiveGuard guard(mu_, ProfileSite::kExclusive);
  AppState& state = GetApp(app);

  if (state.waiting) {
    if (LockHead* head = FindHead(state.wait_resource); head != nullptr) {
      bool removed = false;
      LockBlock* slot = head->RemoveWaiter(app, &removed);
      if (removed) {
        if (slot != nullptr) {
          blocks_.FreeSlot(slot);
          --state.held_structures;
        }
        // Removing a waiter can unblock those queued behind it.
        work_list_.push_back(state.wait_resource);
      }
    }
    state.waiting = false;
    state.wait_is_conversion = false;
    state.wait_is_escalation = false;
    --blocked_count_;
    // The queued timeout entry (if any) is now stale.
    NoteWaitEnded(state);
  }
  state.continuation.reset();

  for (const HeldSlot& slot : state.held) {
    if (!slot.live) continue;
    LockHead* head = slot.head;
    LOCKTUNE_DCHECK(head != nullptr);
    LockBlock* block = head->RemoveHolder(app);
    LOCKTUNE_DCHECK(block != nullptr);
    blocks_.FreeSlot(block);
    --state.held_structures;
    // Queue the resource only when waiters can actually be granted;
    // ProcessQueue on a waiterless head would only re-probe and erase, so
    // do the erase here and skip the work-list round trip.
    if (head->waiters().empty()) {
      if (!head->HasHolders()) {
        table_.EraseIfEmpty(slot.res, ResourceIdHash{}(slot.res));
      }
    } else {
      work_list_.push_back(slot.res);
    }
  }
  // Clear() (one pass over the slot array, no tombstones) beats per-entry
  // erases here: those leave tombstone runs that force rehash allocations
  // on the next transaction's inserts.
  state.held.clear();  // keeps capacity for the next transaction
  state.held_index.Clear();
  state.held_dead = 0;
  state.row_locks_per_table.clear();
  state.total_row_locks = 0;
  state.table_cache_valid = false;
  state.row_cache_count = nullptr;
  LOCKTUNE_DCHECK(state.held_structures == 0);

  DrainWorkList();
}

bool LockManager::FastReleaseAll(AppId app) {
  ProfiledSharedGuard shared(mu_, ProfileSite::kFastShared);
  AppState* statep = nullptr;
  {
    ProfiledMutexGuard guard(apps_mu_, ProfileSite::kAppsMap);
    const auto it = apps_.find(app);
    if (it == apps_.end()) return true;  // never held anything
    statep = &it->second;
  }
  AppState& state = *statep;
  if (state.waiting || state.continuation.has_value()) return false;
  // Pass 1: any waiter behind a held lock means releasing must run the
  // grant cascade — exclusive business. Latch-free: the waiters bit of the
  // head's summary word is only ever set under the exclusive lock, which
  // our shared hold excludes, so a clear bit observed here stays clear for
  // the whole release. Concurrent fast threads do refresh the summary
  // (holder changes under their shard latch), but the word is atomic and
  // they never set the waiters bit.
  for (const HeldSlot& slot : state.held) {
    if (!slot.live) continue;
    if (LockHead::SummaryHasWaiters(slot.head->opt_summary())) return false;
  }
  // Pass 2: remove our holder entries and recycle. Other fast threads may
  // add holders to the same heads concurrently; our holder entry keeps each
  // head non-empty until we remove it, so no other thread can erase it.
  for (const HeldSlot& slot : state.held) {
    if (!slot.live) continue;
    const uint64_t hash = ResourceIdHash{}(slot.res);
    LockBlock* block = nullptr;
    {
      OptLatchWriteGuard shard_guard(table_.ShardLatch(hash),
                                     ProfileSite::kQueuedWrite,
                                     table_.ShardIndex(hash));
      block = slot.head->RemoveHolder(app);
      LOCKTUNE_DCHECK(block != nullptr);
      if (!slot.head->HasHolders()) {
        table_.EraseIfEmpty(slot.res, hash);
      }
    }
    {
      ProfiledMutexGuard alloc_guard(alloc_mu_, ProfileSite::kAlloc);
      blocks_.FreeSlot(block);
    }
    --state.held_structures;
  }
  state.held.clear();
  state.held_index.Clear();
  state.held_dead = 0;
  state.row_locks_per_table.clear();
  state.total_row_locks = 0;
  state.table_cache_valid = false;
  state.row_cache_count = nullptr;
  LOCKTUNE_DCHECK(state.held_structures == 0);
  return true;
}

Status LockManager::Release(AppId app, const ResourceId& resource) {
  WriterLock guard(mu_);
  AppState& state = GetApp(app);
  const uint64_t hash = ResourceIdHash{}(resource);
  LockHead* head = table_.Find(resource, hash);
  if (head == nullptr || head->FindHolder(app) == nullptr) {
    return Status::NotFound("application does not hold " +
                            resource.ToString());
  }
  LockBlock* slot = head->RemoveHolder(app);
  blocks_.FreeSlot(slot);
  --state.held_structures;
  EraseHeldEntry(state, resource);
  if (resource.kind == ResourceKind::kRow) {
    auto it = state.row_locks_per_table.find(resource.table);
    if (it != state.row_locks_per_table.end()) {
      --state.total_row_locks;
      if (--it->second == 0) {
        state.row_locks_per_table.erase(it);
        state.row_cache_count = nullptr;
      }
    }
  } else {
    NoteTableMode(state, resource.table, LockMode::kNone);
  }
  if (head->waiters().empty()) {
    if (!head->HasHolders()) table_.EraseIfEmpty(resource, hash);
  } else {
    work_list_.push_back(resource);
    DrainWorkList();
  }
  return Status::Ok();
}

bool LockManager::IsBlocked(AppId app) const {
  // Shared: wait flags only change under the exclusive lock, and apps_
  // lookups race only with fast-path insertion (guarded by apps_mu_).
  ReaderLock shared(mu_);
  MutexLock guard(apps_mu_);
  const auto it = apps_.find(app);
  return it != apps_.end() && it->second.waiting;
}

void LockManager::ProcessQueue(const ResourceId& resource) {
  const uint64_t hash = ResourceIdHash{}(resource);
  LockHead* headp = table_.Find(resource, hash);
  if (headp == nullptr) return;
  LockHead& head = *headp;

  while (!head.waiters().empty()) {
    const WaitingRequest& w = head.FrontWaiter();
    if (w.is_conversion) {
      LockRequest* holder = head.FindHolder(w.app);
      LOCKTUNE_DCHECK(holder != nullptr);
      if (!head.CanGrantConversion(w.app, w.mode)) break;
      const WaitingRequest granted = head.PopFrontWaiter();
      head.SetHolderMode(holder, granted.mode);
      AppState& conv_state = GetApp(granted.app);
      NoteHeldMode(conv_state, resource, hash, granted.mode);
      if (resource.kind == ResourceKind::kTable) {
        NoteTableMode(conv_state, resource.table, granted.mode);
      }
      Bump(stats_.grants);
      OnWaitGranted(granted.app, resource);
    } else {
      if (!Compatible(head.GrantedGroupMode(), w.mode)) break;
      const WaitingRequest granted = head.PopFrontWaiter();
      LockRequest r;
      r.app = granted.app;
      r.mode = granted.mode;
      r.slot = granted.slot;
      head.AddHolder(r);
      AppState& state = GetApp(granted.app);
      AddHeldEntry(state, resource, hash, &head, granted.mode);
      if (resource.kind == ResourceKind::kRow) {
        BumpRowCount(state, resource.table);
      } else {
        NoteTableMode(state, resource.table, granted.mode);
      }
      Bump(stats_.grants);
      OnWaitGranted(granted.app, resource);
    }
  }

  // The head node's address is stable across OnWaitGranted (pooled nodes
  // never move); re-look-up before erasing in case the cascade already
  // emptied and erased it.
  table_.EraseIfEmpty(resource, hash);
}

void LockManager::OnWaitGranted(AppId app, const ResourceId& resource) {
  AppState& state = GetApp(app);
  LOCKTUNE_DCHECK(state.waiting);
  const bool was_escalation = state.wait_is_escalation;
  const LockMode granted_mode = state.wait_mode;
  if (options_.clock != nullptr) {
    wait_times_.Add(
        static_cast<double>(options_.clock->now() - state.wait_since));
  }
  Emit(LockEventKind::kWaitEnd, app, resource, granted_mode,
       options_.clock != nullptr ? options_.clock->now() - state.wait_since
                                 : 0);
  state.waiting = false;
  state.wait_is_conversion = false;
  state.wait_is_escalation = false;
  --blocked_count_;
  // The queued timeout entry for this wait is now stale.
  NoteWaitEnded(state);

  if (was_escalation) {
    Bump(stats_.escalations);
    if (granted_mode == LockMode::kX) Bump(stats_.exclusive_escalations);
    LOCKTUNE_DCHECK(resource.kind == ResourceKind::kTable);
    const int64_t rows_before =
        state.row_locks_per_table.count(resource.table) > 0
            ? state.row_locks_per_table[resource.table]
            : 0;
    ReleaseRowLocksOnTable(app, resource.table);
    Emit(LockEventKind::kEscalation, app, resource, granted_mode,
         rows_before);
  }

  if (state.continuation.has_value()) {
    const Continuation c = *state.continuation;
    state.continuation.reset();
    bool escalated = false;
    const AcquireOutcome out =
        TryAcquire(app, state, c.resource, c.mode, &escalated);
    if (out == AcquireOutcome::kNoMemory) {
      // The resumed request could not get a lock structure. The application
      // is unblocked; the failure is visible in the counters (engines treat
      // it like a statement error).
      Bump(stats_.out_of_memory_failures);
    }
  }
}

std::vector<AppId> LockManager::DetectDeadlocks() {
  WriterLock guard(mu_);
  // Nothing waits, so no edge exists: the common idle tick costs one
  // counter read instead of an O(apps) scan.
  if (blocked_count_ == 0) return {};

  // Build the waits-for graph. A conversion waits for every *other* holder
  // whose granted mode conflicts with the target. A new request waits for
  // conflicting holders and for every waiter queued ahead of it (strict
  // FIFO: it cannot overtake).
  std::unordered_map<AppId, std::vector<AppId>> edges;
  // locklint: ordered-ok(edge-set construction; per-node out-edges come from
  // the ordered wait queue, and the map fill order is not observable)
  for (const auto& [app, state] : apps_) {
    if (!state.waiting) continue;
    const LockHead* head = FindHead(state.wait_resource);
    if (head == nullptr) continue;
    std::vector<AppId>& out = edges[app];
    if (state.wait_is_conversion) {
      for (const LockRequest& h : head->holders()) {
        if (h.app != app && !Compatible(h.mode, state.wait_mode)) {
          out.push_back(h.app);
        }
      }
    } else {
      for (const LockRequest& h : head->holders()) {
        if (h.app != app && !Compatible(h.mode, state.wait_mode)) {
          out.push_back(h.app);
        }
      }
      for (const WaitingRequest& w : head->waiters()) {
        if (w.app == app) break;
        out.push_back(w.app);
      }
    }
  }

  // Iterative DFS cycle detection with victim selection per cycle.
  std::vector<AppId> victims;
  std::unordered_set<AppId> victim_set;  // O(1) duplicate check
  std::unordered_map<AppId, int> color;  // 0 white, 1 grey, 2 black
  std::vector<AppId> stack;
  // locklint: ordered-ok(DFS start order follows legacy hash order; victim
  // choice on overlapping cycles is golden-locked to it)
  for (const auto& [start, unused] : edges) {
    if (color[start] != 0) continue;
    // Path-tracking DFS.
    std::vector<std::pair<AppId, size_t>> frames;
    frames.push_back({start, 0});
    color[start] = 1;
    stack.push_back(start);
    while (!frames.empty()) {
      auto& [node, next] = frames.back();
      const auto eit = edges.find(node);
      const std::vector<AppId>* adj =
          eit == edges.end() ? nullptr : &eit->second;
      if (adj != nullptr && next < adj->size()) {
        const AppId succ = (*adj)[next++];
        if (color[succ] == 1) {
          // Cycle found: victim = member with fewest held structures.
          AppId victim = succ;
          int64_t fewest = GetApp(succ).held_structures;
          for (auto rit = stack.rbegin(); rit != stack.rend(); ++rit) {
            const int64_t held = GetApp(*rit).held_structures;
            if (held < fewest) {
              fewest = held;
              victim = *rit;
            }
            if (*rit == succ) break;
          }
          if (victim_set.insert(victim).second) victims.push_back(victim);
        } else if (color[succ] == 0) {
          color[succ] = 1;
          stack.push_back(succ);
          frames.push_back({succ, 0});
        }
      } else {
        color[node] = 2;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
  Bump(stats_.deadlock_victims, static_cast<int64_t>(victims.size()));
  for (AppId victim : victims) {
    const AppState& state = GetApp(victim);
    Emit(LockEventKind::kDeadlockVictim, victim, state.wait_resource,
         state.wait_mode, state.held_structures);
  }
  // When armed (--flight-dump / paranoid), the first victim selection dumps
  // the event history that led to the cycle — once per process, since
  // victims are routine in contention scenarios.
  if (!victims.empty() && TakeVictimDumpBudget()) {
    std::fprintf(stderr, "deadlock victim selected; dumping flight recorder\n");
    DumpFlightRecorder(stderr);
  }
  return victims;
}

void LockManager::AddBlocks(int64_t count) {
  WriterLock guard(mu_);
  for (int64_t i = 0; i < count; ++i) blocks_.AddBlock();
  if (count > 0) options_.policy->OnResize();
}

Status LockManager::TryRemoveBlocks(int64_t count) {
  WriterLock guard(mu_);
  Status s = blocks_.TryRemoveBlocks(count);
  if (s.ok() && count > 0) options_.policy->OnResize();
  return s;
}

void LockManager::set_max_lock_memory(Bytes bytes) {
  WriterLock guard(mu_);
  max_lock_memory_ = bytes;
  options_.policy->OnResize();
}

LockMemoryState LockManager::MemoryState() const {
  WriterLock guard(mu_);
  return MemoryStateLocked();
}

LockManagerStats LockManager::stats() const {
  // Atomic counters: no lock needed; each field is a relaxed load.
  LockManagerStats s;
  s.lock_requests = stats_.lock_requests.load(std::memory_order_relaxed);
  s.grants = stats_.grants.load(std::memory_order_relaxed);
  s.lock_waits = stats_.lock_waits.load(std::memory_order_relaxed);
  s.escalations = stats_.escalations.load(std::memory_order_relaxed);
  s.exclusive_escalations =
      stats_.exclusive_escalations.load(std::memory_order_relaxed);
  s.escalation_attempts =
      stats_.escalation_attempts.load(std::memory_order_relaxed);
  s.deadlock_victims = stats_.deadlock_victims.load(std::memory_order_relaxed);
  s.lock_timeouts = stats_.lock_timeouts.load(std::memory_order_relaxed);
  s.out_of_memory_failures =
      stats_.out_of_memory_failures.load(std::memory_order_relaxed);
  s.sync_growth_blocks =
      stats_.sync_growth_blocks.load(std::memory_order_relaxed);
  s.preferred_escalations =
      stats_.preferred_escalations.load(std::memory_order_relaxed);
  return s;
}

void LockManager::SetParallelMode(bool enabled) {
  // Exclusive: flips only while no fast path can be in flight.
  WriterLock guard(mu_);
  parallel_mode_.store(enabled, std::memory_order_relaxed);
}

Bytes LockManager::allocated_bytes() const {
  WriterLock guard(mu_);
  return blocks_.allocated_bytes();
}

Bytes LockManager::used_bytes() const {
  WriterLock guard(mu_);
  return blocks_.used_bytes();
}

int64_t LockManager::block_count() const {
  WriterLock guard(mu_);
  return blocks_.block_count();
}

int64_t LockManager::entirely_free_blocks() const {
  WriterLock guard(mu_);
  return blocks_.entirely_free_blocks();
}

double LockManager::CurrentMaxlocksPercent() const {
  WriterLock guard(mu_);
  return options_.policy->CurrentPercent(MemoryStateLocked());
}

int64_t LockManager::HeldStructures(AppId app) const {
  WriterLock guard(mu_);
  const auto it = apps_.find(app);
  return it == apps_.end() ? 0 : it->second.held_structures;
}

int64_t LockManager::MaxHeldStructures() const {
  WriterLock guard(mu_);
  int64_t max_held = 0;
  // locklint: ordered-ok(max over a commutative scan, no output)
  for (const auto& [app, state] : apps_) {
    max_held = std::max(max_held, state.held_structures);
  }
  return max_held;
}

std::vector<AppLockUsage> LockManager::TopLockHolders(int max_app_id,
                                                      int top_n) const {
  WriterLock guard(mu_);
  std::vector<AppLockUsage> holders;
  // locklint: ordered-ok(collected unordered, deterministically sorted below)
  for (const auto& [app, state] : apps_) {
    if (app < 1 || app > max_app_id) continue;
    if (state.held_structures > 0 || state.waiting) {
      holders.push_back({app, state.held_structures, state.waiting});
    }
  }
  std::sort(holders.begin(), holders.end(),
            [](const AppLockUsage& a, const AppLockUsage& b) {
              if (a.held_structures != b.held_structures) {
                return a.held_structures > b.held_structures;
              }
              return a.app < b.app;
            });
  if (static_cast<int>(holders.size()) > top_n && top_n >= 0) {
    holders.resize(static_cast<size_t>(top_n));
  }
  return holders;
}

LockMode LockManager::HeldMode(AppId app, const ResourceId& resource) const {
  WriterLock guard(mu_);
  return HeldModeLockedInternal(app, resource);
}

int64_t LockManager::waiting_app_count() const {
  WriterLock guard(mu_);
  return blocked_count_;
}

Status LockManager::CheckConsistency() const {
  WriterLock guard(mu_);
  if (Status s = blocks_.CheckConsistency(); !s.ok()) return s;
  if (Status s = table_.CheckConsistency(); !s.ok()) return s;
  int64_t slots = 0;
  int64_t blocked = 0;
  // locklint: ordered-ok(validation only; commutative sums, no output)
  for (const auto& [app, state] : apps_) {
    slots += state.held_structures;
    if (state.waiting) ++blocked;
    int64_t dead = 0;
    int64_t live_rows = 0;
    for (size_t i = 0; i < state.held.size(); ++i) {
      const HeldSlot& slot = state.held[i];
      if (!slot.live) {
        ++dead;
        continue;
      }
      const LockHead* head = FindHead(slot.res);
      const LockRequest* holder =
          head == nullptr ? nullptr : head->FindHolder(app);
      if (holder == nullptr) {
        return Status::Internal("held list references a missing grant");
      }
      if (slot.head != head) {
        return Status::Internal("held slot head pointer is stale");
      }
      if (slot.mode != holder->mode) {
        return Status::Internal("held slot mode mirror is stale");
      }
      const uint32_t* idx =
          state.held_index.Find(slot.res, ResourceIdHash{}(slot.res));
      if (idx == nullptr || *idx != i) {
        return Status::Internal("held_index does not point at its slot");
      }
      if (slot.res.kind == ResourceKind::kRow) ++live_rows;
    }
    if (dead != state.held_dead) {
      return Status::Internal("held_dead does not match tombstone count");
    }
    if (static_cast<int64_t>(state.held.size()) - dead !=
        state.held_index.size()) {
      return Status::Internal("held_index size does not match live slots");
    }
    int64_t per_table = 0;
    // locklint: ordered-ok(validation only; commutative sum, no output)
    for (const auto& [tbl, n] : state.row_locks_per_table) per_table += n;
    if (live_rows != state.total_row_locks ||
        per_table != state.total_row_locks) {
      return Status::Internal("row-lock counters do not match held rows");
    }
    if (state.table_cache_valid &&
        state.cached_table_mode !=
            HeldModeLockedInternal(app, TableResource(state.cached_table))) {
      return Status::Internal("table-mode cache is stale");
    }
    if (state.row_cache_count != nullptr) {
      const auto rit = state.row_locks_per_table.find(state.row_cache_table);
      if (rit == state.row_locks_per_table.end() ||
          &rit->second != state.row_cache_count) {
        return Status::Internal("row-count cache points at a missing entry");
      }
    }
  }
  if (blocked != blocked_count_) {
    return Status::Internal("blocked_count_ does not match waiting apps");
  }
  if (slots != blocks_.slots_in_use()) {
    return Status::Internal("per-app structure counts do not sum to slots");
  }
  // Timeout queue: deadline-ordered; every entry is either live (matches an
  // in-progress wait) or accounted stale; a waiting application has exactly
  // one live entry when timeouts are configured. A connection kill or grant
  // must never leave a live-looking entry behind.
  {
    const bool timeouts_enabled =
        options_.clock != nullptr && options_.lock_timeout >= 0;
    int64_t stale = 0;
    TimeMs last_deadline = 0;
    std::unordered_map<AppId, int64_t> live_entries;
    bool first = true;
    for (const TimeoutEntry& entry : timeout_queue_) {
      if (!first && entry.deadline < last_deadline) {
        return Status::Internal("timeout queue deadlines are not monotone");
      }
      first = false;
      last_deadline = entry.deadline;
      const auto it = apps_.find(entry.app);
      if (it != apps_.end() && it->second.waiting &&
          it->second.wait_epoch == entry.epoch) {
        ++live_entries[entry.app];
      } else {
        ++stale;
      }
    }
    if (stale != timeout_stale_) {
      return Status::Internal("timeout_stale_ does not match queue contents");
    }
    // locklint: ordered-ok(validation only; no output, early-exit on error)
    for (const auto& [app, count] : live_entries) {
      if (count > 1) {
        return Status::Internal("waiting app has several live timeouts");
      }
    }
    if (timeouts_enabled) {
      // locklint: ordered-ok(validation only; no output, early-exit on error)
      for (const auto& [app, state] : apps_) {
        if (state.waiting && live_entries[app] != 1) {
          return Status::Internal("waiting app lacks its live timeout entry");
        }
      }
    }
  }
  Status head_status = Status::Ok();
  table_.ForEach([&head_status](const ResourceId& res, const LockHead& head) {
    (void)res;
    if (head.empty()) head_status = Status::Internal("empty lock head retained");
  });
  return head_status;
}

std::vector<AppId> LockManager::ExpireTimedOutWaiters() {
  WriterLock guard(mu_);
  std::vector<AppId> expired;
  if (options_.clock == nullptr || options_.lock_timeout < 0) return expired;
  if (blocked_count_ == 0) {
    // Every queued deadline is stale; drop them and make the idle tick O(1).
    timeout_queue_.clear();
    timeout_stale_ = 0;
    return expired;
  }
  const TimeMs now = options_.clock->now();
  // Deadlines are monotone (fixed lock_timeout), so expired entries form a
  // prefix of the queue. Entries whose epoch no longer matches belong to a
  // wait that already ended and are dropped.
  std::vector<TimeoutEntry> still_waiting;
  while (!timeout_queue_.empty() && timeout_queue_.front().deadline <= now) {
    const TimeoutEntry entry = timeout_queue_.front();
    timeout_queue_.pop_front();
    const auto it = apps_.find(entry.app);
    if (it == apps_.end()) {
      --timeout_stale_;
      continue;
    }
    const AppState& state = it->second;
    if (!state.waiting || state.wait_epoch != entry.epoch) {
      // A wait that ended early (grant, rollback, connection kill) left
      // this entry behind; NoteWaitEnded counted it.
      --timeout_stale_;
      continue;
    }
    expired.push_back(entry.app);
    Emit(LockEventKind::kTimeout, entry.app, state.wait_resource,
         state.wait_mode, now - state.wait_since);
    still_waiting.push_back(entry);
  }
  // Victims are only reported; until the caller rolls them back a repeated
  // call must report (and count) them again, so re-queue at the front.
  for (auto rit = still_waiting.rbegin(); rit != still_waiting.rend(); ++rit) {
    timeout_queue_.push_front(*rit);
  }
  Bump(stats_.lock_timeouts, static_cast<int64_t>(expired.size()));
  LOCKTUNE_DCHECK(timeout_stale_ >= 0);
  return expired;
}

void LockManager::SetEscalationPreferred(AppId app, bool preferred) {
  WriterLock guard(mu_);
  if (preferred) {
    escalation_preferred_.insert(app);
  } else {
    escalation_preferred_.erase(app);
  }
}

bool LockManager::IsEscalationPreferred(AppId app) const {
  WriterLock guard(mu_);
  return escalation_preferred_.count(app) > 0;
}

void LockManager::MarkWaitStart(AppId app, AppState& state) {
  state.wait_since = options_.clock != nullptr ? options_.clock->now() : 0;
  ++state.wait_epoch;
  ++blocked_count_;
  if (options_.clock != nullptr && options_.lock_timeout >= 0) {
    timeout_queue_.push_back(TimeoutEntry{
        state.wait_since + options_.lock_timeout, app, state.wait_epoch});
  }
  Emit(LockEventKind::kWaitBegin, app, state.wait_resource, state.wait_mode,
       0);
}

void LockManager::NoteWaitEnded(AppState& state) {
  // Invalidate the queued timeout entry for the wait that just ended. The
  // epoch bump makes it stale even though it stays queued; the stale count
  // lets expiry and compaction account for it exactly.
  ++state.wait_epoch;
  if (options_.clock != nullptr && options_.lock_timeout >= 0) {
    // MarkWaitStart queued exactly one entry for this wait under the same
    // condition; it is still in the queue (expiry re-queues reported
    // victims) and is stale as of the bump above.
    ++timeout_stale_;
    MaybeCompactTimeouts();
  }
}

void LockManager::MaybeCompactTimeouts() {
  // Rebuild once stale entries are ≥16 and the majority: each surviving
  // entry is copied at most once per halving, so the cost amortizes to O(1)
  // per ended wait, and a kill storm cannot leave an unbounded queue.
  if (timeout_stale_ < 16 ||
      2 * timeout_stale_ < static_cast<int64_t>(timeout_queue_.size())) {
    return;
  }
  std::deque<TimeoutEntry> live;
  for (const TimeoutEntry& entry : timeout_queue_) {
    const auto it = apps_.find(entry.app);
    if (it == apps_.end()) continue;
    if (it->second.waiting && it->second.wait_epoch == entry.epoch) {
      live.push_back(entry);  // deadline order is preserved
    }
  }
  timeout_queue_.swap(live);
  timeout_stale_ = 0;
}

namespace {

FlightEventKind ToFlightKind(LockEventKind kind) {
  switch (kind) {
    case LockEventKind::kWaitBegin:
      return FlightEventKind::kWaitBegin;
    case LockEventKind::kWaitEnd:
      return FlightEventKind::kWaitEnd;
    case LockEventKind::kEscalation:
      return FlightEventKind::kEscalation;
    case LockEventKind::kTimeout:
      return FlightEventKind::kTimeout;
    case LockEventKind::kDeadlockVictim:
      return FlightEventKind::kDeadlockVictim;
    case LockEventKind::kOutOfLockMemory:
      return FlightEventKind::kOutOfLockMemory;
    case LockEventKind::kSynchronousGrowth:
      return FlightEventKind::kSynchronousGrowth;
  }
  return FlightEventKind::kWaitBegin;
}

// Wait begin/end pairs fire for every blocked request — too hot for the
// trace timeline. The structural events are rare and worth a pin.
bool IsColdLockEvent(LockEventKind kind) {
  return kind != LockEventKind::kWaitBegin && kind != LockEventKind::kWaitEnd;
}

}  // namespace

void LockManager::Emit(LockEventKind kind, AppId app,
                       const ResourceId& resource, LockMode mode,
                       int64_t value) {
  const int64_t now = options_.clock != nullptr ? options_.clock->now() : 0;
  // The flight recorder and trace collector see events even when no monitor
  // is installed (benches, parallel runs without a sampler).
  FlightRecord(ToFlightKind(kind), now, app, resource.table, value);
  if (IsColdLockEvent(kind)) {
    if (ChromeTraceCollector* trace = GlobalTraceCollector()) {
      trace->Instant(std::string(LockEventKindName(kind)), kTracePidSim,
                     kTraceTidLockEvents, SimTimeToTraceUs(now),
                     "{\"app\":" + std::to_string(app) +
                         ",\"table\":" + std::to_string(resource.table) +
                         ",\"value\":" + std::to_string(value) + "}");
    }
  }
  if (options_.monitor == nullptr) return;
  LockEvent event;
  event.kind = kind;
  event.time = now;
  event.app = app;
  event.resource = resource;
  event.mode = mode;
  event.value = value;
  options_.monitor->OnLockEvent(event);
}

LockManager::AppState& LockManager::GetApp(AppId app) { return apps_[app]; }

LockHead* LockManager::FindHead(const ResourceId& resource) {
  return table_.Find(resource);
}

const LockHead* LockManager::FindHead(const ResourceId& resource) const {
  return table_.Find(resource);
}

LockMode LockManager::HeldModeLockedInternal(AppId app,
                                             const ResourceId& resource)
    const {
  const LockHead* head = FindHead(resource);
  if (head == nullptr) return LockMode::kNone;
  const LockRequest* r = head->FindHolder(app);
  return r == nullptr ? LockMode::kNone : r->mode;
}

LockMode LockManager::CachedTableMode(AppId app, AppState& state,
                                      TableId table) const {
  if (state.table_cache_valid && state.cached_table == table) {
    return state.cached_table_mode;
  }
  const LockMode mode = HeldModeLockedInternal(app, TableResource(table));
  NoteTableMode(state, table, mode);
  return mode;
}

LockMemoryState LockManager::MemoryStateLocked() const {
  LockMemoryState s;
  s.allocated = blocks_.allocated_bytes();
  s.used = blocks_.used_bytes();
  s.capacity_slots = blocks_.capacity_slots();
  s.slots_in_use = blocks_.slots_in_use();
  s.max_lock_memory = max_lock_memory_;
  s.database_memory = options_.database_memory;
  return s;
}

void LockManager::DrainWorkList() {
  if (draining_) return;  // the outer drain loop will pick new entries up
  draining_ = true;
  while (!work_list_.empty()) {
    const ResourceId res = work_list_.front();
    work_list_.pop_front();
    ProcessQueue(res);
  }
  draining_ = false;
}

void LockManager::AddHeldEntry(AppState& state, const ResourceId& resource,
                               uint64_t hash, LockHead* head, LockMode mode) {
  state.held_index.Insert(resource, hash,
                          static_cast<uint32_t>(state.held.size()));
  state.held.push_back(HeldSlot{resource, head, mode, true});
}

void LockManager::EraseHeldEntry(AppState& state, const ResourceId& resource) {
  const uint64_t hash = ResourceIdHash{}(resource);
  const uint32_t* idx = state.held_index.Find(resource, hash);
  if (idx == nullptr) return;
  state.held[*idx].live = false;
  ++state.held_dead;
  state.held_index.Erase(resource, hash);
  CompactHeld(state);
}

void LockManager::CompactHeld(AppState& state) {
  // Compact only when tombstones dominate, so the amortized cost per erase
  // stays O(1) and surviving entries keep their relative (grant) order.
  if (state.held_dead < 16 ||
      2 * static_cast<size_t>(state.held_dead) < state.held.size()) {
    return;
  }
  uint32_t out = 0;
  for (uint32_t i = 0; i < state.held.size(); ++i) {
    if (!state.held[i].live) continue;
    if (out != i) state.held[out] = state.held[i];
    uint32_t* idx = state.held_index.Find(
        state.held[out].res, ResourceIdHash{}(state.held[out].res));
    LOCKTUNE_DCHECK(idx != nullptr);
    *idx = out;
    ++out;
  }
  state.held.resize(out);
  state.held_dead = 0;
}

void LockManager::RegisterMetrics(MetricsRegistry* registry) {
  const auto counter = [&](const char* name, const char* help,
                           std::function<int64_t()> fn) {
    registry->AddCallbackCounter(name, help, std::move(fn));
  };
  counter("locktune_lock_requests_total", "lock requests issued",
          [this] { return stats().lock_requests; });
  counter("locktune_lock_grants_total", "lock requests granted",
          [this] { return stats().grants; });
  counter("locktune_lock_waits_total", "lock requests that blocked",
          [this] { return stats().lock_waits; });
  counter("locktune_lock_escalations_total", "completed lock escalations",
          [this] { return stats().escalations; });
  counter("locktune_lock_escalations_exclusive_total",
          "escalations that took an X table lock",
          [this] { return stats().exclusive_escalations; });
  counter("locktune_lock_escalation_attempts_total",
          "escalations attempted (completed or not)",
          [this] { return stats().escalation_attempts; });
  counter("locktune_lock_escalations_preferred_total",
          "escalations taken because the app prefers them over growth",
          [this] { return stats().preferred_escalations; });
  counter("locktune_lock_deadlock_victims_total",
          "applications chosen to break deadlock cycles",
          [this] { return stats().deadlock_victims; });
  counter("locktune_lock_timeouts_total", "lock waits past LOCKTIMEOUT",
          [this] { return stats().lock_timeouts; });
  counter("locktune_lock_oom_failures_total",
          "requests failed for lack of lock memory",
          [this] { return stats().out_of_memory_failures; });
  counter("locktune_lock_sync_growth_blocks_total",
          "blocks added synchronously on the request path",
          [this] { return stats().sync_growth_blocks; });
  counter("locktune_lock_blocks_added_total",
          "lock memory blocks ever added",
          [this] { return blocks_.blocks_added(); });
  counter("locktune_lock_blocks_removed_total",
          "lock memory blocks ever removed (shrink)",
          [this] { return blocks_.blocks_removed(); });

  registry->AddCallbackGauge(
      "locktune_lock_memory_allocated_bytes", "lock memory owned",
      [this] { return static_cast<double>(allocated_bytes()); });
  registry->AddCallbackGauge(
      "locktune_lock_memory_used_bytes", "lock structures in use x 64 B",
      [this] { return static_cast<double>(used_bytes()); });
  registry->AddCallbackGauge(
      "locktune_lock_memory_max_bytes", "maxLockMemory bound",
      [this] { return static_cast<double>(max_lock_memory()); });
  registry->AddCallbackGauge(
      "locktune_lock_blocks", "blocks on the list",
      [this] { return static_cast<double>(block_count()); });
  registry->AddCallbackGauge(
      "locktune_lock_blocks_free", "entirely free blocks (shrinkable)",
      [this] { return static_cast<double>(entirely_free_blocks()); });
  registry->AddCallbackGauge(
      "locktune_lock_waiting_apps", "applications currently blocked",
      [this] { return static_cast<double>(waiting_app_count()); });
  registry->AddCallbackGauge(
      "locktune_lock_maxlocks_percent",
      "current lockPercentPerApplication",
      [this] { return CurrentMaxlocksPercent(); });

  // MetricsRegistry::Collect() evaluates every callback registered here
  // while holding the registry lock, and the callbacks take the manager
  // mutex — the edge that forces the registry lock to be OUTERMOST
  // (rank 0). std::function is opaque to locklint, so it is declared:
  // locklint: lock-edge(MetricsRegistry::mu_ -> LockManager::mu_)
  registry->AddCallbackHistogram(
      "locktune_lock_wait_time_ms", "completed lock-wait durations",
      [this] {
        WriterLock lock(mu_);
        return SnapshotOf(wait_times_);
      });
}

int64_t LockManager::lock_table_size() const {
  WriterLock guard(mu_);
  return table_.size();
}

int64_t LockManager::lock_table_max_shard_size() const {
  WriterLock guard(mu_);
  return table_.MaxShardSize();
}

int LockManager::lock_table_shard_count() const {
  return table_.shard_count();  // fixed at construction, no lock needed
}

std::vector<int64_t> LockManager::lock_table_shard_sizes() const {
  WriterLock guard(mu_);
  return table_.ShardSizes();
}

int64_t LockManager::head_pool_free_nodes() const {
  WriterLock guard(mu_);
  return table_.pool_free_nodes();
}

int64_t LockManager::head_pool_slab_count() const {
  WriterLock guard(mu_);
  return table_.slab_count();
}

void LockManager::RegisterInternalMetrics(MetricsRegistry* registry) {
  registry->AddCallbackGauge(
      "locktune_lock_table_heads", "lock heads resident in the lock table",
      [this] { return static_cast<double>(lock_table_size()); });
  registry->AddCallbackGauge(
      "locktune_lock_table_shards", "lock table partitions",
      [this] { return static_cast<double>(table_.shard_count()); });
  registry->AddCallbackGauge(
      "locktune_lock_table_shard_max_heads",
      "heads in the most loaded shard (occupancy skew)",
      [this] { return static_cast<double>(lock_table_max_shard_size()); });
  registry->AddCallbackGauge(
      "locktune_lock_head_pool_free", "recycled lock-head nodes available",
      [this] { return static_cast<double>(head_pool_free_nodes()); });
  registry->AddCallbackGauge(
      "locktune_lock_head_pool_slabs", "lock-head slabs ever allocated",
      [this] { return static_cast<double>(head_pool_slab_count()); });
  registry->AddCallbackGauge(
      "locktune_lock_blocked_apps", "applications blocked on a lock wait",
      [this] { return static_cast<double>(waiting_app_count()); });
  // Per-shard occupancy, one gauge per shard id so the inspector (and any
  // Prometheus scrape of an --inspect run) can tell the shards apart.
  // Zero-padded ids keep registry order lexicographic.
  for (int i = 0; i < table_.shard_count(); ++i) {
    char name[64];
    std::snprintf(name, sizeof(name),
                  "locktune_lock_table_shard_heads{shard=\"%02d\"}", i);
    registry->AddCallbackGauge(
        name, "lock heads resident in this shard", [this, i] {
          return static_cast<double>(lock_table_shard_sizes()[i]);
        });
  }
}

}  // namespace locktune
