// Open-addressing hash map keyed by ResourceId (linear probing, tombstone
// deletion), used on the lock-request hot path where std::unordered_map's
// node-per-entry heap churn is too expensive.
//
// Properties the lock path relies on:
//  * values are stored inline in a flat slot array — one cache line probe in
//    the common case, no allocation per insert;
//  * the slot array grows to its high-water mark and is then reused, so
//    steady-state insert/erase cycles do not touch the heap (an erase whose
//    successor slot is empty is reverted to empty immediately, which keeps
//    tombstones from accumulating in low-occupancy tables);
//  * rehashing (growth or tombstone purge) is the only allocating operation
//    and is amortized over at least capacity/4 mutations.
//
// `hash_shift` lets a sharded owner reuse one precomputed hash for both the
// shard select (low bits) and the in-shard probe (bits above the shift).
#ifndef LOCKTUNE_LOCK_RESOURCE_MAP_H_
#define LOCKTUNE_LOCK_RESOURCE_MAP_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "lock/resource.h"

namespace locktune {

template <typename V>
class ResourceHashMap {
 public:
  explicit ResourceHashMap(int hash_shift = 0) : shift_(hash_shift) {}

  int64_t size() const { return size_; }
  int64_t capacity() const { return static_cast<int64_t>(slots_.size()); }
  bool empty() const { return size_ == 0; }

  // Value for `key`, or nullptr. `hash` must be ResourceIdHash{}(key).
  V* Find(const ResourceId& key, uint64_t hash) {
    if (slots_.empty()) return nullptr;
    const size_t mask = slots_.size() - 1;
    size_t i = (hash >> shift_) & mask;
    while (slots_[i].state != SlotState::kEmpty) {
      if (slots_[i].state == SlotState::kFull && slots_[i].key == key) {
        return &slots_[i].value;
      }
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  const V* Find(const ResourceId& key, uint64_t hash) const {
    return const_cast<ResourceHashMap*>(this)->Find(key, hash);
  }

  // Inserts `key`; must not already be present.
  void Insert(const ResourceId& key, uint64_t hash, V value) {
    if (slots_.empty() || (size_ + tombstones_ + 1) * 4 >
                              static_cast<int64_t>(slots_.size()) * 3) {
      Rehash();
    }
    const size_t mask = slots_.size() - 1;
    size_t i = (hash >> shift_) & mask;
    while (slots_[i].state == SlotState::kFull) {
      LOCKTUNE_DCHECK(!(slots_[i].key == key) && "duplicate ResourceHashMap insert");
      i = (i + 1) & mask;
    }
    if (slots_[i].state == SlotState::kTombstone) --tombstones_;
    slots_[i].state = SlotState::kFull;
    slots_[i].key = key;
    slots_[i].value = value;
    ++size_;
  }

  static constexpr size_t kNpos = ~static_cast<size_t>(0);

  // Slot index of `key`, or kNpos. Lets a caller that must first inspect
  // the value erase it without paying a second probe (EraseIndex).
  size_t FindIndex(const ResourceId& key, uint64_t hash) const {
    if (slots_.empty()) return kNpos;
    const size_t mask = slots_.size() - 1;
    size_t i = (hash >> shift_) & mask;
    while (slots_[i].state != SlotState::kEmpty) {
      if (slots_[i].state == SlotState::kFull && slots_[i].key == key) {
        return i;
      }
      i = (i + 1) & mask;
    }
    return kNpos;
  }

  V& ValueAt(size_t index) { return slots_[index].value; }

  // Removes the (full) slot at `index`, as returned by FindIndex.
  void EraseIndex(size_t index) {
    LOCKTUNE_DCHECK(slots_[index].state == SlotState::kFull);
    const size_t mask = slots_.size() - 1;
    --size_;
    if (slots_[(index + 1) & mask].state == SlotState::kEmpty) {
      // No probe chain continues past this slot: revert it (and any
      // tombstone run ending here) straight to empty.
      slots_[index].state = SlotState::kEmpty;
      size_t back = (index + mask) & mask;
      while (slots_[back].state == SlotState::kTombstone) {
        slots_[back].state = SlotState::kEmpty;
        --tombstones_;
        back = (back + mask) & mask;
      }
    } else {
      slots_[index].state = SlotState::kTombstone;
      ++tombstones_;
    }
  }

  // Removes `key` if present. Returns true when an entry was removed.
  bool Erase(const ResourceId& key, uint64_t hash) {
    const size_t i = FindIndex(key, hash);
    if (i == kNpos) return false;
    EraseIndex(i);
    return true;
  }

  // Drops every entry but keeps the slot array (steady-state reuse).
  void Clear() {
    for (Slot& s : slots_) s.state = SlotState::kEmpty;
    size_ = 0;
    tombstones_ = 0;
  }

  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Slot& s : slots_) {
      if (s.state == SlotState::kFull) fn(s.key, s.value);
    }
  }

 private:
  enum class SlotState : uint8_t { kEmpty = 0, kFull, kTombstone };

  struct Slot {
    ResourceId key;
    V value;
    SlotState state = SlotState::kEmpty;
  };

  static size_t NextPow2(size_t n) {
    size_t p = 16;
    while (p < n) p <<= 1;
    return p;
  }

  void Rehash() {
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(NextPow2(static_cast<size_t>(size_ + 1) * 2));
    size_ = 0;
    tombstones_ = 0;
    for (const Slot& s : old) {
      if (s.state == SlotState::kFull) {
        Insert(s.key, ResourceIdHash{}(s.key), s.value);
      }
    }
  }

  std::vector<Slot> slots_;
  int64_t size_ = 0;
  int64_t tombstones_ = 0;
  int shift_ = 0;
};

}  // namespace locktune

#endif  // LOCKTUNE_LOCK_RESOURCE_MAP_H_
