#include "lock/opt_latch.h"

#include <thread>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace locktune {

namespace {

// Direct futex plumbing. std::atomic::wait/notify is NOT used here: on
// libstdc++ 12 its notify path consults a shared waiter-pool count that can
// race a waiter registering late and skip the FUTEX_WAKE outright — a lost
// wakeup we hit in the wild (queue head asleep on a free latch, every
// other writer parked behind it). The raw syscall has no such bookkeeping:
// the kernel compares the word against `expected` under the futex bucket
// lock, so "change the word, then wake" can never strand a sleeper.
// std::atomic<uint32_t> is lock-free and standard-layout here, so its
// address is the value's address.

void FutexWait(std::atomic<uint32_t>& word, uint32_t expected) {
#if defined(__linux__)
  syscall(SYS_futex, reinterpret_cast<uint32_t*>(&word), FUTEX_WAIT_PRIVATE,
          expected, nullptr, nullptr, 0);
#else
  word.wait(expected, std::memory_order_acquire);
#endif
}

void FutexWakeOne(std::atomic<uint32_t>& word) {
#if defined(__linux__)
  syscall(SYS_futex, reinterpret_cast<uint32_t*>(&word), FUTEX_WAKE_PRIVATE,
          1, nullptr, nullptr, 0);
#else
  word.notify_one();
#endif
}

// Spinning only helps when the latch holder can make progress on another
// core; on a single-CPU host every pause burns the holder's only chance to
// run, so waiters go straight to the scheduler. Sampled once per process.
int SpinRounds() {
  static const int rounds =
      std::thread::hardware_concurrency() > 1 ? OptLatch::kWriterSpinRounds
                                              : 0;
  return rounds;
}

}  // namespace

// locklint: seqlock-writer(contended writer entry: the version CAS is the synchronization point; queue/park token traffic carries its own acquire-release or seq_cst pairs, and the counter bump is advisory)
void OptLatch::LockQueued(McsNode& node) {
  enqueue_count_.fetch_add(1, std::memory_order_relaxed);
  const int spin_rounds = SpinRounds();
  McsNode* prev = tail_.exchange(&node, std::memory_order_acq_rel);
  if (prev != nullptr) {
    prev->next.store(&node, std::memory_order_release);
    // Wait for queue-head promotion. Bounded spin with proportional
    // backoff: each unsuccessful round doubles the pause (capped), so a
    // near-front waiter reacts fast while a deep waiter backs off the
    // notification line instead of hammering it. Past the bound, park on
    // the node flag; the predecessor flips it on its own acquisition (flip
    // first, then wake — the kernel's compare closes the window).
    int round = 0;
    while (node.ready.load(std::memory_order_acquire) == 0) {
      if (round < spin_rounds) {
        const int pause = 1 << (round < 6 ? round : 6);
        for (int i = 0; i < pause; ++i) CpuRelax();
        ++round;
      } else {
        FutexWait(node.ready, 0);
      }
    }
  }
  // Queue head: contend for the version word against barging threads. Spin
  // with the same proportional backoff; past the bound, park until a
  // holder's exit bumps wake_seq_.
  int round = 0;
  bool armed = false;
  for (;;) {
    uint64_t v = version_.load(std::memory_order_relaxed);
    if ((v & 1) == 0) {
      if (version_.compare_exchange_weak(v, v + 1, std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
        // Retire a token no releaser claimed (we woke via the re-check,
        // not a wake) so the next unlock skips the futex syscall.
        if (armed) parked_.store(0, std::memory_order_relaxed);
        break;
      }
      continue;  // lost the CAS to a barger that just entered; re-check
    }
    if (round < spin_rounds) {
      const int pause = 1 << (round < 6 ? round : 6);
      for (int i = 0; i < pause; ++i) CpuRelax();
      ++round;
    } else {
      // Park. Order matters, all seq_cst: (1) arm the token, (2) snapshot
      // wake_seq_, (3) re-check the version is still odd, (4) sleep while
      // wake_seq_ holds the snapshot. The Dekker pair with Unlock
      // guarantees the exiting writer sees the token (and bumps + wakes)
      // or we see the even version here and never block; the kernel's
      // atomic compare of wake_seq_ against the snapshot covers a bump
      // that lands between (3) and (4).
      parked_.store(1, std::memory_order_seq_cst);
      armed = true;
      const uint32_t seq = wake_seq_.load(std::memory_order_seq_cst);
      if ((version_.load(std::memory_order_seq_cst) & 1) != 0) {
        FutexWait(wake_seq_, seq);
      }
    }
  }
  std::atomic_thread_fence(std::memory_order_release);  // seqlock entry
  LockRankOnAcquire(kLockRankShardLatch, "LockTable::shard_latch");
  // Pass queue-head status on (or retire the queue) BEFORE the critical
  // section runs: the successor overlaps its wakeup latency with our hold
  // and is already spinning when we release.
  McsNode* succ = node.next.load(std::memory_order_acquire);
  if (succ == nullptr) {
    McsNode* expected = &node;
    if (tail_.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      return;  // no successor: queue is empty again
    }
    // A successor won the tail exchange but has not linked yet; its store
    // to node.next is imminent.
    while ((succ = node.next.load(std::memory_order_acquire)) == nullptr) {
      CpuRelax();
    }
  }
  succ->ready.store(1, std::memory_order_release);
  FutexWakeOne(succ->ready);
}

// locklint: seqlock-writer(unlock cold path: the token claim needs no ordering — the seq_cst wake_seq_ bump below is the Dekker synchronization point)
void OptLatch::WakeParked() {
  // Claim the token: exactly one releaser pays the wake for one parked
  // episode. Bump BEFORE waking — a contender between its version re-check
  // and its sleep sees the moved sequence and returns without blocking.
  if (parked_.exchange(0, std::memory_order_relaxed) == 0) return;
  wake_seq_.fetch_add(1, std::memory_order_seq_cst);
  FutexWakeOne(wake_seq_);
}

#if defined(LOCKTUNE_PROFILE)

namespace profile_internal {

// noinline for the same reason as ObserveAcquire: this is the cold
// 1-in-kProfileSamplePeriod path and must stay out of the guard's inline
// body.
__attribute__((noinline)) void ObserveOptLatchAcquire(ProfileSlab& slab,
                                                      OptLatch& latch,
                                                      McsNode& node,
                                                      ProfileSite site,
                                                      int shard) {
  RecordAcquire(slab, site, shard, kProfileSamplePeriod);
  if (!latch.TryLock(node)) {
    const uint64_t t0 = NowNs();
    latch.Lock(node);
    RecordContended(slab, site, shard, kProfileSamplePeriod);
    RecordWait(slab, site, shard, NowNs() - t0, kProfileSamplePeriod);
  }
}

}  // namespace profile_internal

#endif  // LOCKTUNE_PROFILE

}  // namespace locktune
