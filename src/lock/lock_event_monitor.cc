#include "lock/lock_event_monitor.h"

#include <cstdio>

#include "common/check.h"

namespace locktune {

std::string_view LockEventKindName(LockEventKind kind) {
  switch (kind) {
    case LockEventKind::kWaitBegin:
      return "WAIT_BEGIN";
    case LockEventKind::kWaitEnd:
      return "WAIT_END";
    case LockEventKind::kEscalation:
      return "ESCALATION";
    case LockEventKind::kTimeout:
      return "TIMEOUT";
    case LockEventKind::kDeadlockVictim:
      return "DEADLOCK_VICTIM";
    case LockEventKind::kOutOfLockMemory:
      return "OUT_OF_LOCK_MEMORY";
    case LockEventKind::kSynchronousGrowth:
      return "SYNC_GROWTH";
  }
  return "?";
}

std::string LockEvent::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "t=%.1fs %s app=%d %s %s value=%lld",
                static_cast<double>(time) / 1000.0,
                std::string(LockEventKindName(kind)).c_str(), app,
                resource.ToString().c_str(),
                std::string(ModeName(mode)).c_str(),
                static_cast<long long>(value));
  return buf;
}

RingBufferEventMonitor::RingBufferEventMonitor(size_t capacity)
    : capacity_(capacity) {
  LOCKTUNE_CHECK(capacity > 0);
  ring_.reserve(capacity);
}

void RingBufferEventMonitor::OnLockEvent(const LockEvent& event) {
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<LockEvent> RingBufferEventMonitor::Events() const {
  std::vector<LockEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::string RingBufferEventMonitor::Dump() const {
  std::string out;
  for (const LockEvent& e : Events()) {
    out += e.ToString();
    out += '\n';
  }
  return out;
}

void CountingEventMonitor::OnLockEvent(const LockEvent& event) {
  ++counts_[static_cast<size_t>(event.kind)];
}

int64_t CountingEventMonitor::total() const {
  int64_t sum = 0;
  for (int64_t c : counts_) sum += c;
  return sum;
}

TeeEventMonitor::TeeEventMonitor(std::vector<LockEventMonitor*> sinks)
    : sinks_(std::move(sinks)) {
  for (LockEventMonitor* sink : sinks_) {
    LOCKTUNE_CHECK(sink != nullptr);
    (void)sink;
  }
}

void TeeEventMonitor::OnLockEvent(const LockEvent& event) {
  for (LockEventMonitor* sink : sinks_) sink->OnLockEvent(event);
}

}  // namespace locktune
