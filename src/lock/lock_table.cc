#include "lock/lock_table.h"

#include "common/check.h"

namespace locktune {

namespace {
int ShardBits(int shard_count) {
  int bits = 0;
  while ((1 << bits) < shard_count) ++bits;
  return bits;
}

size_t NextPow2(size_t n) {
  size_t p = LockTable::kInitialDirSlots;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

LockTable::LockTable(int shard_count) {
  LOCKTUNE_DCHECK(shard_count > 0 && (shard_count & (shard_count - 1)) == 0 &&
         "shard count must be a power of two");
  shard_mask_ = shard_count - 1;
  const int bits = ShardBits(shard_count);
  for (int i = 0; i < shard_count; ++i) {
    shards_.emplace_back(/*hash_shift=*/bits);
  }
}

// locklint: seqlock-writer(probe helper for the write side: callers hold the shard latch; OptProbe runs its own probe inside a ReadBegin/ReadValidate section)
size_t LockTable::ProbeFind(const Dir& dir, int shift, const ResourceId& key,
                            uint64_t hash) {
  const size_t mask = dir.mask;
  size_t i = (hash >> shift) & mask;
  for (;;) {
    const DirSlot& slot = dir.slots[i];
    const uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    if (MetaState(meta) == kSlotEmpty) return kNpos;
    if (SlotMatches(slot, meta, key)) return i;
    i = (i + 1) & mask;
  }
}

// locklint: seqlock-writer(callers hold the shard latch write side or the manager exclusive lock; the latch version bump publishes)
LockHead* LockTable::Find(const ResourceId& resource, uint64_t hash) {
  Shard& shard = ShardFor(hash);
  const Dir& dir = *shard.dir.load(std::memory_order_relaxed);
  const size_t i = ProbeFind(dir, shard.shift, resource, hash);
  if (i == kNpos) return nullptr;
  return &dir.slots[i].node.load(std::memory_order_relaxed)->head;
}

LockHead& LockTable::GetOrCreate(const ResourceId& resource, uint64_t hash) {
  if (LockHead* head = Find(resource, hash); head != nullptr) return *head;
  return Create(resource, hash);
}

LockHead& LockTable::Create(const ResourceId& resource, uint64_t hash) {
  Shard& shard = ShardFor(hash);
  Node* node = AllocateNode(shard);
  DirInsert(shard, resource, hash, node);
  ++shard.live;
  return node->head;
}

// locklint: seqlock-writer(mutator; callers hold the shard latch write side, whose version bump publishes the relaxed slot stores)
bool LockTable::EraseIfEmpty(const ResourceId& resource, uint64_t hash) {
  Shard& shard = ShardFor(hash);
  const Dir& dir = *shard.dir.load(std::memory_order_relaxed);
  const size_t index = ProbeFind(dir, shard.shift, resource, hash);
  if (index == kNpos) return false;
  Node* node = dir.slots[index].node.load(std::memory_order_relaxed);
  if (!node->head.empty()) return false;
  DirEraseIndex(shard, index);
  RecycleNode(shard, node);
  --shard.live;
  return true;
}

LockTable::OptProbeResult LockTable::OptProbe(const ResourceId& resource,
                                              uint64_t hash) const {
  const Shard& shard = shards_[hash & shard_mask_];
  OptProbeResult out;
  const uint64_t version = shard.latch.ReadBegin();
  if ((version & 1) != 0) return out;  // writer still active: pessimize
  // One acquire load pins mask and slots to a single array; a rehash
  // publishing a newer directory mid-probe leaves this one mapped (retired)
  // and fails the validation below.
  const Dir& dir = *shard.dir.load(std::memory_order_acquire);
  const size_t i = ProbeFind(dir, shard.shift, resource, hash);
  bool found = false;
  uint32_t summary = 0;
  if (i != kNpos) {
    const Node* node = dir.slots[i].node.load(std::memory_order_relaxed);
    if (node == nullptr) return out;  // torn insert: validation would fail
    found = true;
    summary = node->head.opt_summary();
  }
  if (!shard.latch.ReadValidate(version)) return out;
  out.valid = true;
  out.found = found;
  out.summary = summary;
  return out;
}

// locklint: seqlock-writer(mutator; callers hold the shard latch write side, whose version bump publishes the relaxed slot stores)
void LockTable::DirInsert(Shard& shard, const ResourceId& key, uint64_t hash,
                          Node* node) {
  if ((shard.dir_size + shard.dir_tombstones + 1) * 4 >
      static_cast<int64_t>(
          shard.dir.load(std::memory_order_relaxed)->mask + 1) *
          3) {
    DirRehash(shard);
  }
  const Dir& dir = *shard.dir.load(std::memory_order_relaxed);
  const size_t mask = dir.mask;
  size_t i = (hash >> shard.shift) & mask;
  for (;;) {
    DirSlot& slot = dir.slots[i];
    const uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    if (MetaState(meta) != kSlotFull) {
      if (MetaState(meta) == kSlotTombstone) --shard.dir_tombstones;
      // Key fields before the full-state meta: an optimistic reader that
      // sees the full meta but a torn row/node fails its validation anyway,
      // but a null node must never look like a live entry.
      slot.row.store(key.row, std::memory_order_relaxed);
      slot.node.store(node, std::memory_order_relaxed);
      slot.meta.store(PackMeta(kSlotFull, key), std::memory_order_relaxed);
      ++shard.dir_size;
      return;
    }
    LOCKTUNE_DCHECK(!SlotMatches(slot, meta, key) &&
                    "duplicate lock-table insert");
    i = (i + 1) & mask;
  }
}

// locklint: seqlock-writer(mutator; callers hold the shard latch write side, whose version bump publishes the relaxed slot stores)
void LockTable::DirEraseIndex(Shard& shard, size_t index) {
  const Dir& dir = *shard.dir.load(std::memory_order_relaxed);
  const size_t mask = dir.mask;
  LOCKTUNE_DCHECK(
      MetaState(dir.slots[index].meta.load(std::memory_order_relaxed)) ==
      kSlotFull);
  --shard.dir_size;
  const auto set_state = [&dir](size_t i, uint64_t state) {
    dir.slots[i].meta.store(state << 48, std::memory_order_relaxed);
    dir.slots[i].node.store(nullptr, std::memory_order_relaxed);
  };
  if (MetaState(dir.slots[(index + 1) & mask].meta.load(
          std::memory_order_relaxed)) == kSlotEmpty) {
    // No probe chain continues past this slot: revert it (and any tombstone
    // run ending here) straight to empty.
    set_state(index, kSlotEmpty);
    size_t back = (index + mask) & mask;
    while (MetaState(dir.slots[back].meta.load(std::memory_order_relaxed)) ==
           kSlotTombstone) {
      set_state(back, kSlotEmpty);
      --shard.dir_tombstones;
      back = (back + mask) & mask;
    }
  } else {
    set_state(index, kSlotTombstone);
    ++shard.dir_tombstones;
  }
}

// locklint: seqlock-writer(mutator; callers hold the shard latch write side, whose version bump publishes the relaxed slot stores)
void LockTable::DirRehash(Shard& shard) {
  const Dir& old = *shard.dir.load(std::memory_order_relaxed);
  shard.dir_store.push_back(std::make_unique<Dir>(
      NextPow2(static_cast<size_t>(shard.dir_size + 1) * 2)));
  Dir& fresh = *shard.dir_store.back();
  const size_t fresh_mask = fresh.mask;
  for (size_t i = 0; i <= old.mask; ++i) {
    const DirSlot& slot = old.slots[i];
    if (MetaState(slot.meta.load(std::memory_order_relaxed)) != kSlotFull) {
      continue;
    }
    const ResourceId key = SlotKey(slot);
    const uint64_t hash = ResourceIdHash{}(key);
    size_t j = (hash >> shard.shift) & fresh_mask;
    while (MetaState(fresh.slots[j].meta.load(std::memory_order_relaxed)) ==
           kSlotFull) {
      j = (j + 1) & fresh_mask;
    }
    fresh.slots[j].row.store(key.row, std::memory_order_relaxed);
    fresh.slots[j].node.store(slot.node.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
    fresh.slots[j].meta.store(PackMeta(kSlotFull, key),
                              std::memory_order_relaxed);
  }
  shard.dir_tombstones = 0;
  // Release-publish so an optimistic reader's acquire load sees the fully
  // built array. The old directory stays in dir_store for stale readers.
  shard.dir.store(&fresh, std::memory_order_release);
}

int64_t LockTable::size() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) total += shard.live;
  return total;
}

int64_t LockTable::MaxShardSize() const {
  int64_t max_size = 0;
  for (const Shard& shard : shards_) {
    if (shard.dir_size > max_size) max_size = shard.dir_size;
  }
  return max_size;
}

std::vector<int64_t> LockTable::ShardSizes() const {
  std::vector<int64_t> sizes;
  sizes.reserve(shards_.size());
  for (const Shard& shard : shards_) sizes.push_back(shard.live);
  return sizes;
}

int64_t LockTable::pool_free_nodes() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) total += shard.pool_free;
  return total;
}

int64_t LockTable::pool_total_nodes() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += static_cast<int64_t>(shard.slabs.size()) * kSlabNodes;
  }
  return total;
}

int64_t LockTable::slab_count() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += static_cast<int64_t>(shard.slabs.size());
  }
  return total;
}

int64_t LockTable::retired_dir_count() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += static_cast<int64_t>(shard.dir_store.size()) - 1;
  }
  return total;
}

// locklint: seqlock-writer(paranoid/test validator; runs in serial regions with no concurrent writer)
Status LockTable::CheckConsistency() const {
  for (const Shard& shard : shards_) {
    if (shard.dir_size != shard.live) {
      return Status::Internal("shard live count does not match its directory");
    }
    const Dir& dir = *shard.dir.load(std::memory_order_relaxed);
    if (shard.dir_store.empty() || shard.dir_store.back().get() != &dir) {
      return Status::Internal("current directory is not the latest retained");
    }
    int64_t full = 0;
    int64_t tombstones = 0;
    for (size_t i = 0; i <= dir.mask; ++i) {
      const DirSlot& slot = dir.slots[i];
      const uint64_t state =
          MetaState(slot.meta.load(std::memory_order_relaxed));
      if (state == kSlotTombstone) ++tombstones;
      if (state != kSlotFull) continue;
      ++full;
      const Node* node = slot.node.load(std::memory_order_relaxed);
      if (node == nullptr) {
        return Status::Internal("full directory slot has no node");
      }
      if (!node->head.SummaryConsistent()) {
        return Status::Internal("head summary does not match its vectors");
      }
      const ResourceId key = SlotKey(slot);
      if (ProbeFind(dir, shard.shift, key, ResourceIdHash{}(key)) != i) {
        return Status::Internal("directory probe does not find its own slot");
      }
    }
    if (full != shard.live) {
      return Status::Internal("directory iteration does not visit every head");
    }
    if (tombstones != shard.dir_tombstones) {
      return Status::Internal("dir_tombstones does not match the directory");
    }
    const int64_t shard_nodes =
        static_cast<int64_t>(shard.slabs.size()) * kSlabNodes;
    int64_t free_nodes = 0;
    for (const Node* node = shard.free_list; node != nullptr;
         node = node->next_free) {
      if (!node->head.empty()) {
        return Status::Internal("free-list node holds a non-empty head");
      }
      if (++free_nodes > shard_nodes) {
        return Status::Internal("free list is cyclic or over-long");
      }
    }
    if (free_nodes != shard.pool_free) {
      return Status::Internal("pool_free does not match the free list");
    }
    // Conservation: every slab node is either live in the shard or free.
    if (shard.live + shard.pool_free != shard_nodes) {
      return Status::Internal("live + free nodes do not cover the slabs");
    }
  }
  return Status::Ok();
}

LockTable::Node* LockTable::AllocateNode(Shard& shard) {
  if (shard.free_list == nullptr) {
    shard.slabs.push_back(std::make_unique<Node[]>(kSlabNodes));
    Node* slab = shard.slabs.back().get();
    for (int i = kSlabNodes - 1; i >= 0; --i) {
      slab[i].next_free = shard.free_list;
      shard.free_list = &slab[i];
    }
    shard.pool_free += kSlabNodes;
  }
  Node* node = shard.free_list;
  shard.free_list = node->next_free;
  node->next_free = nullptr;
  --shard.pool_free;
  LOCKTUNE_DCHECK(node->head.empty() && "recycled head must be clear");
  return node;
}

void LockTable::RecycleNode(Shard& shard, Node* node) {
  node->head.Clear();
  node->next_free = shard.free_list;
  shard.free_list = node;
  ++shard.pool_free;
}

}  // namespace locktune
