#include "lock/lock_table.h"

#include "common/check.h"

namespace locktune {

namespace {
int ShardBits(int shard_count) {
  int bits = 0;
  while ((1 << bits) < shard_count) ++bits;
  return bits;
}
}  // namespace

LockTable::LockTable(int shard_count) {
  LOCKTUNE_DCHECK(shard_count > 0 && (shard_count & (shard_count - 1)) == 0 &&
         "shard count must be a power of two");
  shard_mask_ = shard_count - 1;
  const int bits = ShardBits(shard_count);
  shards_.reserve(static_cast<size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    shards_.emplace_back(/*hash_shift=*/bits);
  }
}

LockHead* LockTable::Find(const ResourceId& resource, uint64_t hash) {
  Node** node = shards_[hash & shard_mask_].Find(resource, hash);
  return node == nullptr ? nullptr : &(*node)->head;
}

LockHead& LockTable::GetOrCreate(const ResourceId& resource, uint64_t hash) {
  ResourceHashMap<Node*>& shard = shards_[hash & shard_mask_];
  if (Node** node = shard.Find(resource, hash); node != nullptr) {
    return (*node)->head;
  }
  return Create(resource, hash);
}

LockHead& LockTable::Create(const ResourceId& resource, uint64_t hash) {
  Node* node = AllocateNode();
  shards_[hash & shard_mask_].Insert(resource, hash, node);
  ++size_;
  return node->head;
}

bool LockTable::EraseIfEmpty(const ResourceId& resource, uint64_t hash) {
  ResourceHashMap<Node*>& shard = shards_[hash & shard_mask_];
  const size_t index = shard.FindIndex(resource, hash);
  if (index == ResourceHashMap<Node*>::kNpos) return false;
  Node* node = shard.ValueAt(index);
  if (!node->head.empty()) return false;
  shard.EraseIndex(index);
  RecycleNode(node);
  --size_;
  return true;
}

int64_t LockTable::MaxShardSize() const {
  int64_t max_size = 0;
  for (const auto& shard : shards_) {
    if (shard.size() > max_size) max_size = shard.size();
  }
  return max_size;
}

Status LockTable::CheckConsistency() const {
  int64_t shard_sum = 0;
  int64_t iterated = 0;
  for (const auto& shard : shards_) {
    shard_sum += shard.size();
    shard.ForEach([&iterated](const ResourceId&, const Node* node) {
      if (node != nullptr) ++iterated;
    });
  }
  if (shard_sum != size_) {
    return Status::Internal("shard sizes do not sum to the table size");
  }
  if (iterated != size_) {
    return Status::Internal("shard iteration does not visit every head");
  }
  int64_t free_nodes = 0;
  for (const Node* node = free_list_; node != nullptr;
       node = node->next_free) {
    if (!node->head.empty()) {
      return Status::Internal("free-list node holds a non-empty head");
    }
    if (++free_nodes > pool_total_nodes()) {
      return Status::Internal("free list is cyclic or over-long");
    }
  }
  if (free_nodes != pool_free_) {
    return Status::Internal("pool_free_ does not match the free list");
  }
  // Conservation: every slab node is either live in a shard or free.
  if (size_ + pool_free_ != pool_total_nodes()) {
    return Status::Internal("live + free nodes do not cover the slabs");
  }
  return Status::Ok();
}

LockTable::Node* LockTable::AllocateNode() {
  if (free_list_ == nullptr) {
    slabs_.push_back(std::make_unique<Node[]>(kSlabNodes));
    Node* slab = slabs_.back().get();
    for (int i = kSlabNodes - 1; i >= 0; --i) {
      slab[i].next_free = free_list_;
      free_list_ = &slab[i];
    }
    pool_free_ += kSlabNodes;
  }
  Node* node = free_list_;
  free_list_ = node->next_free;
  node->next_free = nullptr;
  --pool_free_;
  LOCKTUNE_DCHECK(node->head.empty() && "recycled head must be clear");
  return node;
}

void LockTable::RecycleNode(Node* node) {
  node->head.Clear();
  node->next_free = free_list_;
  free_list_ = node;
  ++pool_free_;
}

}  // namespace locktune
