#include "lock/lock_table.h"

#include "common/check.h"

namespace locktune {

namespace {
int ShardBits(int shard_count) {
  int bits = 0;
  while ((1 << bits) < shard_count) ++bits;
  return bits;
}
}  // namespace

LockTable::LockTable(int shard_count) {
  LOCKTUNE_DCHECK(shard_count > 0 && (shard_count & (shard_count - 1)) == 0 &&
         "shard count must be a power of two");
  shard_mask_ = shard_count - 1;
  const int bits = ShardBits(shard_count);
  for (int i = 0; i < shard_count; ++i) {
    shards_.emplace_back(/*hash_shift=*/bits);
  }
}

LockHead* LockTable::Find(const ResourceId& resource, uint64_t hash) {
  Node** node = ShardFor(hash).map.Find(resource, hash);
  return node == nullptr ? nullptr : &(*node)->head;
}

LockHead& LockTable::GetOrCreate(const ResourceId& resource, uint64_t hash) {
  Shard& shard = ShardFor(hash);
  if (Node** node = shard.map.Find(resource, hash); node != nullptr) {
    return (*node)->head;
  }
  return Create(resource, hash);
}

LockHead& LockTable::Create(const ResourceId& resource, uint64_t hash) {
  Shard& shard = ShardFor(hash);
  Node* node = AllocateNode(shard);
  shard.map.Insert(resource, hash, node);
  ++shard.live;
  return node->head;
}

bool LockTable::EraseIfEmpty(const ResourceId& resource, uint64_t hash) {
  Shard& shard = ShardFor(hash);
  const size_t index = shard.map.FindIndex(resource, hash);
  if (index == ResourceHashMap<Node*>::kNpos) return false;
  Node* node = shard.map.ValueAt(index);
  if (!node->head.empty()) return false;
  shard.map.EraseIndex(index);
  RecycleNode(shard, node);
  --shard.live;
  return true;
}

int64_t LockTable::size() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) total += shard.live;
  return total;
}

int64_t LockTable::MaxShardSize() const {
  int64_t max_size = 0;
  for (const Shard& shard : shards_) {
    if (shard.map.size() > max_size) max_size = shard.map.size();
  }
  return max_size;
}

std::vector<int64_t> LockTable::ShardSizes() const {
  std::vector<int64_t> sizes;
  sizes.reserve(shards_.size());
  for (const Shard& shard : shards_) sizes.push_back(shard.live);
  return sizes;
}

int64_t LockTable::pool_free_nodes() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) total += shard.pool_free;
  return total;
}

int64_t LockTable::pool_total_nodes() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += static_cast<int64_t>(shard.slabs.size()) * kSlabNodes;
  }
  return total;
}

int64_t LockTable::slab_count() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += static_cast<int64_t>(shard.slabs.size());
  }
  return total;
}

Status LockTable::CheckConsistency() const {
  for (const Shard& shard : shards_) {
    if (shard.map.size() != shard.live) {
      return Status::Internal("shard live count does not match its map");
    }
    int64_t iterated = 0;
    shard.map.ForEach([&iterated](const ResourceId&, const Node* node) {
      if (node != nullptr) ++iterated;
    });
    if (iterated != shard.live) {
      return Status::Internal("shard iteration does not visit every head");
    }
    const int64_t shard_nodes =
        static_cast<int64_t>(shard.slabs.size()) * kSlabNodes;
    int64_t free_nodes = 0;
    for (const Node* node = shard.free_list; node != nullptr;
         node = node->next_free) {
      if (!node->head.empty()) {
        return Status::Internal("free-list node holds a non-empty head");
      }
      if (++free_nodes > shard_nodes) {
        return Status::Internal("free list is cyclic or over-long");
      }
    }
    if (free_nodes != shard.pool_free) {
      return Status::Internal("pool_free does not match the free list");
    }
    // Conservation: every slab node is either live in the shard or free.
    if (shard.live + shard.pool_free != shard_nodes) {
      return Status::Internal("live + free nodes do not cover the slabs");
    }
  }
  return Status::Ok();
}

LockTable::Node* LockTable::AllocateNode(Shard& shard) {
  if (shard.free_list == nullptr) {
    shard.slabs.push_back(std::make_unique<Node[]>(kSlabNodes));
    Node* slab = shard.slabs.back().get();
    for (int i = kSlabNodes - 1; i >= 0; --i) {
      slab[i].next_free = shard.free_list;
      shard.free_list = &slab[i];
    }
    shard.pool_free += kSlabNodes;
  }
  Node* node = shard.free_list;
  shard.free_list = node->next_free;
  node->next_free = nullptr;
  --shard.pool_free;
  LOCKTUNE_DCHECK(node->head.empty() && "recycled head must be clear");
  return node;
}

void LockTable::RecycleNode(Shard& shard, Node* node) {
  node->head.Clear();
  node->next_free = shard.free_list;
  shard.free_list = node;
  ++shard.pool_free;
}

}  // namespace locktune
