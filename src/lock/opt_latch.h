// OptLatch: a sequence-versioned shard latch with optimistic readers and
// MCS-style queued writers (docs/LATCHES.md has the full protocol).
//
// The latch replaces the per-shard std::mutex on the lock manager's
// parallel fast path. Two access modes:
//
//  * Optimistic read (ReadBegin/ReadValidate): a reader samples the version
//    word, probes shard state through relaxed atomics, and re-reads the
//    version. An unchanged, even version proves no writer ran during the
//    probe, so the reads form a consistent snapshot. A changed version means
//    the probe raced a writer; the caller retries a bounded number of times
//    and then pessimizes (takes the write latch or bails to the exclusive
//    path). Readers never write shared cache lines — the scalability point
//    of OptiQL-style optimistic lock coupling.
//
//  * Queued write (Lock/Unlock with a caller-owned McsNode): the version
//    word's parity IS the write lock — a writer acquires by CAS-ing the
//    version from even to odd, and any running thread may do so the moment
//    the latch is free (barging). Writers that find the latch taken form an
//    MCS queue; each waiter spins on its *own* queue node with proportional
//    backoff for a bounded number of rounds, then parks on the node flag
//    (a direct futex wait). The queue orders waiters FIFO for the right to
//    *contend*: the releasing writer frees the latch and wakes the queue
//    head, which then competes with bargers for the CAS. Direct ownership
//    handoff (classic MCS) is deliberately NOT used — on an oversubscribed
//    host, handing the latch to a parked thread forces a context switch per
//    critical section and convoys the whole shard; freeing first lets the
//    running thread batch work for its entire timeslice, which is why a
//    futex mutex never collapses there. Queueing still bounds spin traffic
//    under contention to one contender on the version word at a time.
//
// Memory-ordering contract (Boehm's seqlock treatment):
//  * writer entry:  version CAS v -> v+1 (acq_rel); fence(release); writes...
//  * writer exit:   version.fetch_add(1, seq_cst)   (v+2: even again)
//  * reader begin:  v = version.load(acquire); v must be even
//  * reader end:    reads...; fence(acquire); version.load(relaxed) == v
// All optimistically-readable shard state must itself be relaxed atomics:
// version validation discards torn snapshots but does not pacify a data
// race on a plain field, and the TSan CI leg enforces exactly that.
// The writer-exit RMW is seq_cst (not just release) because it forms a
// Dekker pair with the parked-contender counter: the exiting writer must
// see the contender's park registration, or the contender must see the new
// version — otherwise a wakeup could be lost.
#ifndef LOCKTUNE_LOCK_OPT_LATCH_H_
#define LOCKTUNE_LOCK_OPT_LATCH_H_

#include <atomic>
#include <cstdint>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"
#include "telemetry/lock_profiler.h"

namespace locktune {

// One writer's queue position. Lives in the acquiring scope (the write
// guard's frame) and must stay alive from Lock()/TryLock() until the
// matching Unlock() — classic MCS node ownership.
struct McsNode {
  std::atomic<McsNode*> next{nullptr};
  // 0 = waiting; 1 = promoted to queue head (may now contend for the
  // version CAS). Parked waiters futex-wait directly on this word.
  std::atomic<uint32_t> ready{0};
};

class LT_CAPABILITY("latch") OptLatch {
 public:
  OptLatch() = default;
  OptLatch(const OptLatch&) = delete;
  OptLatch& operator=(const OptLatch&) = delete;

  // Spin rounds a queued writer burns (with proportional backoff) before
  // parking on its node flag. Small: a waiter that does not get the latch
  // within a few handoff windows is better off off-CPU.
  static constexpr int kWriterSpinRounds = 24;
  // Bounded wait for an in-flight writer to finish before ReadBegin gives
  // up and reports busy (odd version) to the caller.
  static constexpr int kReadBeginSpins = 64;
  // Optimistic probe attempts before a caller should pessimize. Callers own
  // the retry loop; this is the contract constant they share.
  static constexpr int kOptReadRetries = 3;

  // --- optimistic read side ---

  // Samples the version, briefly waiting out an in-flight writer. An odd
  // return means a writer is still active and the caller should pessimize
  // immediately; an even return opens an optimistic read section.
  uint64_t ReadBegin() const {
    uint64_t v = version_.load(std::memory_order_acquire);
    for (int i = 0; (v & 1) != 0 && i < kReadBeginSpins; ++i) {
      CpuRelax();
      v = version_.load(std::memory_order_acquire);
    }
    return v;
  }

  // Closes the section opened by ReadBegin: true iff no writer ran, i.e.
  // every relaxed read in between belongs to one consistent snapshot.
  bool ReadValidate(uint64_t begin_version) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    // order: relaxed-ok(the acquire fence above orders this load after
    // every read in the section; ReadBegin's acquire load closes the pair)
    return version_.load(std::memory_order_relaxed) == begin_version;
  }

  // --- queued write side ---

  // True when a writer is inside the latch right now. One relaxed load;
  // the fast path uses it to gate the optimistic pre-flight probe.
  bool Busy() const {
    // order: relaxed-ok(advisory pre-flight hint only; any decision taken
    // on it is re-validated by the version protocol)
    return (version_.load(std::memory_order_relaxed) & 1) != 0;
  }

  // Acquires the latch. Free latch: one CAS (barging — a running thread
  // wins even if waiters are queued). Taken: queue FIFO behind the current
  // waiters for the right to contend. `node` must outlive the critical
  // section (guard-owned).
  void Lock(McsNode& node) LT_ACQUIRE() {
    if (!TryAcquire()) [[unlikely]] {
      LockQueued(node);
    }
  }

  // Single-attempt acquisition: succeeds only when the latch is free.
  // `node` is unused (ownership lives in the version word) but kept so
  // Try/Lock/Unlock share one calling convention.
  bool TryLock(McsNode& node) LT_TRY_ACQUIRE(true) {
    (void)node;
    return TryAcquire();
  }

  void Unlock(McsNode& node) LT_RELEASE() {
    (void)node;
    LockRankOnRelease(kLockRankShardLatch);
    // Free the latch BEFORE waking anyone: whoever runs next — the woken
    // queue head or a barging running thread — can take it without a
    // handoff context switch.
    version_.fetch_add(1, std::memory_order_seq_cst);
    // Dekker pair with the contender's parked_ store (both seq_cst):
    // either we see the park token and wake the contender, or it sees the
    // new even version and never blocks. WakeParked CLAIMS the token, so
    // one parked episode costs one futex wake even if this thread barges
    // through many more critical sections before the woken contender gets
    // a timeslice; the contender re-arms the token if it must park again.
    if (parked_.load(std::memory_order_seq_cst) != 0) [[unlikely]] {
      WakeParked();
    }
  }

  // --- introspection (tests, benches) ---

  // Even while free; odd while a writer is inside. Strictly monotonic
  // across write sections.
  uint64_t version() const {
    // order: relaxed-ok(test/bench introspection, not a synchronization
    // point)
    return version_.load(std::memory_order_relaxed);
  }

  // Writers that found the latch taken and queued behind another node
  // (the contended slow path). Exact.
  uint64_t enqueue_count() const {
    // order: relaxed-ok(monotonic statistic read after workers join)
    return enqueue_count_.load(std::memory_order_relaxed);
  }

  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  }

 private:
  // Contended path: enqueue FIFO, wait for queue-head promotion, then
  // contend for the version CAS (spin with proportional backoff, park past
  // the bound). Out of line — it only runs when the latch is taken.
  void LockQueued(McsNode& node) LT_ACQUIRE();

  // Cold half of Unlock: claims the park token, bumps wake_seq_, and
  // futex-wakes the parked queue head. Out of line so the syscall plumbing
  // stays off the inline unlock path.
  void WakeParked();

  // Writer entry: flip the version odd iff it is even right now. The
  // trailing release fence orders the version store before the critical
  // section's relaxed data writes, per the seqlock contract above.
  // locklint: seqlock-writer(the acq_rel CAS is the synchronization point; a stale relaxed pre-read only fails the CAS)
  bool TryAcquire() LT_TRY_ACQUIRE(true) {
    uint64_t v = version_.load(std::memory_order_relaxed);
    if ((v & 1) != 0) return false;
    if (!version_.compare_exchange_strong(v, v + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      return false;
    }
    std::atomic_thread_fence(std::memory_order_release);
    // Every OptLatch is a shard latch in the documented hierarchy; the
    // equal-rank/strict-increase rule is what enforces "never hold two
    // shard latches" at runtime in paranoid mode.
    LockRankOnAcquire(kLockRankShardLatch, "LockTable::shard_latch");
    return true;
  }

  std::atomic<uint64_t> version_{0};
  // FIFO queue of writers waiting for contention rights; does NOT include
  // the holder. Non-null does not imply the latch is taken (the queue head
  // may still be waking up while a barger runs).
  std::atomic<McsNode*> tail_{nullptr};
  // Park token: 1 while the queue-head contender is (about to be) parked,
  // claimed back to 0 by the releaser that takes responsibility for the
  // wake. Gates the futex wake in Unlock so the uncontended path never
  // pays a syscall, and bounds a parked episode to one wake. Only the
  // queue head ever parks, so a single token suffices.
  std::atomic<uint32_t> parked_{0};
  // The word the queue-head contender actually sleeps on. 32-bit so the
  // park is a DIRECT futex on this address — the 64-bit version word would
  // route through libstdc++'s proxy waiter pool, whose waiter-count check
  // can race a late registration and skip the wake (observed as a lost
  // wakeup under load on libstdc++ 12). Protocol: the contender snapshots
  // wake_seq_, re-checks the version is still odd, then sleeps while
  // wake_seq_ holds the snapshot; WakeParked bumps it BEFORE the wake, and
  // the kernel's atomic compare-and-block closes the remaining window.
  std::atomic<uint32_t> wake_seq_{0};
  std::atomic<uint64_t> enqueue_count_{0};
};

// RAII write guard (unprofiled): tests, serial regions, and the bench's
// raw-latch legs.
class LT_SCOPED_CAPABILITY OptLatchGuard {
 public:
  explicit OptLatchGuard(OptLatch& latch) LT_ACQUIRE(latch) : latch_(latch) {
    latch_.Lock(node_);
  }
  ~OptLatchGuard() LT_RELEASE() { latch_.Unlock(node_); }
  OptLatchGuard(const OptLatchGuard&) = delete;
  OptLatchGuard& operator=(const OptLatchGuard&) = delete;

 private:
  OptLatch& latch_;
  McsNode node_;
};

#if defined(LOCKTUNE_PROFILE)

namespace profile_internal {
// Cold sampled observation of a queued-write acquisition (defined in
// opt_latch.cc): counts the acquire, probes contention with TryLock, and
// times the queued Lock when the probe fails — the OptLatch analogue of
// ObserveAcquire.
void ObserveOptLatchAcquire(ProfileSlab& slab, OptLatch& latch,
                            McsNode& node, ProfileSite site, int shard)
    LT_ACQUIRE(latch);
}  // namespace profile_internal

// Profiled queued-write acquisition; drop-in for the former
// ProfiledMutexGuard on shard state, attributing to ProfileSite::
// kQueuedWrite plus the shard id. Sampling mirrors ProfiledMutexGuard:
// 1 in kProfileSamplePeriod acquisitions is observed, the rest pay one TLS
// tick and exactly a plain Lock().
class LT_SCOPED_CAPABILITY OptLatchWriteGuard {
 public:
  OptLatchWriteGuard(OptLatch& latch, ProfileSite site,
                     int shard = kProfileNoShard) LT_ACQUIRE(latch)
      : latch_(latch), site_(site) {
    using namespace profile_internal;
    ProfileSlab& slab = Tls();
    const uint64_t tick = slab.sample_tick++;
    if (SampleWait(tick)) [[unlikely]] {
      ObserveOptLatchAcquire(slab, latch_, node_, site_, shard);
    } else {
      latch_.Lock(node_);
    }
    if (SampleHold(tick)) [[unlikely]] hold_t0_ = NowNs();
  }
  ~OptLatchWriteGuard() LT_RELEASE() {
    if (hold_t0_ != 0) [[unlikely]] {
      const uint64_t held = profile_internal::NowNs() - hold_t0_;
      latch_.Unlock(node_);
      profile_internal::ObserveHold(site_, held);
    } else {
      latch_.Unlock(node_);
    }
  }
  OptLatchWriteGuard(const OptLatchWriteGuard&) = delete;
  OptLatchWriteGuard& operator=(const OptLatchWriteGuard&) = delete;

 private:
  OptLatch& latch_;
  ProfileSite site_;
  McsNode node_;
  uint64_t hold_t0_ = 0;
};

#else  // !LOCKTUNE_PROFILE

class LT_SCOPED_CAPABILITY OptLatchWriteGuard {
 public:
  OptLatchWriteGuard(OptLatch& latch, ProfileSite, int = kProfileNoShard)
      LT_ACQUIRE(latch)
      : latch_(latch) {
    latch_.Lock(node_);
  }
  ~OptLatchWriteGuard() LT_RELEASE() { latch_.Unlock(node_); }
  OptLatchWriteGuard(const OptLatchWriteGuard&) = delete;
  OptLatchWriteGuard& operator=(const OptLatchWriteGuard&) = delete;

 private:
  OptLatch& latch_;
  McsNode node_;
};

#endif  // LOCKTUNE_PROFILE

}  // namespace locktune

#endif  // LOCKTUNE_LOCK_OPT_LATCH_H_
