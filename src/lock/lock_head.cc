#include "lock/lock_head.h"

#include <algorithm>

#include "common/check.h"

namespace locktune {

const LockRequest* LockHead::FindHolder(AppId app) const {
  for (const LockRequest& r : holders_) {
    if (r.app == app) return &r;
  }
  return nullptr;
}

LockRequest* LockHead::FindHolder(AppId app) {
  for (LockRequest& r : holders_) {
    if (r.app == app) return &r;
  }
  return nullptr;
}

LockMode LockHead::GrantedGroupMode(AppId except) const {
  LockMode group = LockMode::kNone;
  for (const LockRequest& r : holders_) {
    if (r.app == except) continue;
    group = Supremum(group, r.mode);
  }
  return group;
}

bool LockHead::CanGrantNew(LockMode mode) const {
  if (!waiters_.empty()) return false;
  return Compatible(GrantedGroupMode(), mode);
}

bool LockHead::CanGrantConversion(AppId app, LockMode mode) const {
  return Compatible(GrantedGroupMode(app), mode);
}

LockBlock* LockHead::RemoveHolder(AppId app) {
  for (auto it = holders_.begin(); it != holders_.end(); ++it) {
    if (it->app == app) {
      LockBlock* slot = it->slot;
      holders_.erase(it);
      RefreshSummary();
      return slot;
    }
  }
  return nullptr;
}

void LockHead::EnqueueConversion(const WaitingRequest& w) {
  LOCKTUNE_DCHECK(w.is_conversion);
  // After any already-queued conversions, ahead of all new requests.
  auto it = waiters_.begin();
  while (it != waiters_.end() && it->is_conversion) ++it;
  waiters_.insert(it, w);
  RefreshSummary();
}

void LockHead::EnqueueNew(const WaitingRequest& w) {
  LOCKTUNE_DCHECK(!w.is_conversion);
  waiters_.push_back(w);
  RefreshSummary();
}

LockBlock* LockHead::RemoveWaiter(AppId app, bool* removed) {
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    if (it->app == app) {
      LockBlock* slot = it->slot;
      waiters_.erase(it);
      RefreshSummary();
      if (removed != nullptr) *removed = true;
      return slot;
    }
  }
  if (removed != nullptr) *removed = false;
  return nullptr;
}

bool LockHead::HasWaiter(AppId app) const {
  return std::any_of(waiters_.begin(), waiters_.end(),
                     [app](const WaitingRequest& w) { return w.app == app; });
}

WaitingRequest LockHead::PopFrontWaiter() {
  LOCKTUNE_DCHECK(!waiters_.empty());
  WaitingRequest w = waiters_.front();
  waiters_.erase(waiters_.begin());
  RefreshSummary();
  return w;
}

bool LockHead::SummaryConsistent() const {
  const uint32_t summary = opt_summary();
  return SummaryMode(summary) == GrantedGroupMode() &&
         SummaryHasWaiters(summary) == !waiters_.empty() &&
         SummaryHolderCount(summary) == holders_.size();
}

}  // namespace locktune
