#include "lock/lock_head.h"

#include <algorithm>

#include "common/check.h"

namespace locktune {

const LockRequest* LockHead::FindHolder(AppId app) const {
  if (indexed_) {
    const auto it = index_.find(app);
    return it == index_.end() ? nullptr : &holders_[it->second];
  }
  for (const LockRequest& r : holders_) {
    if (r.app == app) return &r;
  }
  return nullptr;
}

LockRequest* LockHead::FindHolder(AppId app) {
  return const_cast<LockRequest*>(
      static_cast<const LockHead*>(this)->FindHolder(app));
}

LockMode LockHead::GrantedGroupMode(AppId except) const {
  // Fold the per-mode counts instead of the holder vector: the supremum is
  // a commutative lattice join, so count order gives the same answer as
  // arrival order at O(modes) instead of O(holders).
  size_t except_mode = kNumLockModes;
  if (except != -1) {
    if (const LockRequest* r = FindHolder(except); r != nullptr) {
      except_mode = static_cast<size_t>(r->mode);
    }
  }
  LockMode group = LockMode::kNone;
  for (size_t m = 1; m < kNumLockModes; ++m) {
    const uint32_t count = mode_counts_[m] - (m == except_mode ? 1u : 0u);
    if (count > 0) group = Supremum(group, static_cast<LockMode>(m));
  }
  return group;
}

void LockHead::AddHolder(const LockRequest& request) {
  LOCKTUNE_DCHECK(request.app != kDeadHolder);
  holders_.push_back(request);
  ++live_holders_;
  ++mode_counts_[static_cast<size_t>(request.mode)];
  if (indexed_) {
    index_[request.app] = static_cast<uint32_t>(holders_.size() - 1);
  } else if (live_holders_ > kHolderIndexThreshold) {
    BuildIndex();
  }
  RefreshSummary();
}

void LockHead::BuildIndex() {
  index_.clear();
  index_.reserve(live_holders_);
  for (size_t i = 0; i < holders_.size(); ++i) {
    if (holders_[i].app != kDeadHolder) {
      index_[holders_[i].app] = static_cast<uint32_t>(i);
    }
  }
  indexed_ = true;
}

void LockHead::CompactHolders() {
  size_t out = 0;
  for (size_t i = 0; i < holders_.size(); ++i) {
    if (holders_[i].app == kDeadHolder) continue;
    if (out != i) holders_[out] = holders_[i];
    ++out;
  }
  holders_.resize(out);
  dead_holders_ = 0;
  if (indexed_) BuildIndex();
}

bool LockHead::CanGrantNew(LockMode mode) const {
  if (!waiters_.empty()) return false;
  return Compatible(GrantedGroupMode(), mode);
}

bool LockHead::CanGrantConversion(AppId app, LockMode mode) const {
  return Compatible(GrantedGroupMode(app), mode);
}

LockBlock* LockHead::RemoveHolder(AppId app) {
  size_t pos;
  if (indexed_) {
    const auto it = index_.find(app);
    if (it == index_.end()) return nullptr;
    pos = it->second;
    index_.erase(it);
  } else {
    // A tombstone's kDeadHolder app can never match, so no explicit skip.
    pos = 0;
    while (pos < holders_.size() && holders_[pos].app != app) ++pos;
    if (pos == holders_.size()) return nullptr;
  }
  LockRequest& dead = holders_[pos];
  LockBlock* slot = dead.slot;
  --mode_counts_[static_cast<size_t>(dead.mode)];
  --live_holders_;
  ++dead_holders_;
  // Tombstone, not erase: arrival order of the survivors is observable
  // (see holders()), and a stable erase would cost O(holders) per removal.
  dead.app = kDeadHolder;
  dead.mode = LockMode::kNone;
  dead.slot = nullptr;
  if (dead_holders_ > live_holders_ && dead_holders_ > kHolderIndexThreshold) {
    CompactHolders();
  } else if (live_holders_ == 0) {
    holders_.clear();
    dead_holders_ = 0;
    if (indexed_) index_.clear();
  }
  RefreshSummary();
  return slot;
}

void LockHead::EnqueueConversion(const WaitingRequest& w) {
  LOCKTUNE_DCHECK(w.is_conversion);
  // After any already-queued conversions, ahead of all new requests.
  auto it = waiters_.begin();
  while (it != waiters_.end() && it->is_conversion) ++it;
  waiters_.insert(it, w);
  RefreshSummary();
}

void LockHead::EnqueueNew(const WaitingRequest& w) {
  LOCKTUNE_DCHECK(!w.is_conversion);
  waiters_.push_back(w);
  RefreshSummary();
}

LockBlock* LockHead::RemoveWaiter(AppId app, bool* removed) {
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    if (it->app == app) {
      LockBlock* slot = it->slot;
      waiters_.erase(it);
      RefreshSummary();
      if (removed != nullptr) *removed = true;
      return slot;
    }
  }
  if (removed != nullptr) *removed = false;
  return nullptr;
}

bool LockHead::HasWaiter(AppId app) const {
  return std::any_of(waiters_.begin(), waiters_.end(),
                     [app](const WaitingRequest& w) { return w.app == app; });
}

WaitingRequest LockHead::PopFrontWaiter() {
  LOCKTUNE_DCHECK(!waiters_.empty());
  WaitingRequest w = waiters_.front();
  waiters_.erase(waiters_.begin());
  RefreshSummary();
  return w;
}

bool LockHead::SummaryConsistent() const {
  // The incremental aggregates first: recompute the per-mode counts, the
  // live/dead split, and the app → slot index from the holder vector and
  // compare, so a missed maintenance path fails here (paranoid mode /
  // tests) rather than granting against a stale group mode.
  std::array<uint32_t, kNumLockModes> counts{};
  uint32_t live = 0;
  uint32_t dead = 0;
  for (const LockRequest& r : holders_) {
    if (r.app == kDeadHolder) {
      if (r.mode != LockMode::kNone || r.slot != nullptr) return false;
      ++dead;
      continue;
    }
    ++counts[static_cast<size_t>(r.mode)];
    ++live;
  }
  if (counts != mode_counts_ || live != live_holders_ ||
      dead != dead_holders_) {
    return false;
  }
  if (indexed_) {
    if (index_.size() != live) return false;
    for (size_t i = 0; i < holders_.size(); ++i) {
      if (holders_[i].app == kDeadHolder) continue;
      const auto it = index_.find(holders_[i].app);
      if (it == index_.end() || it->second != i) return false;
    }
  }
  const uint32_t summary = opt_summary();
  return SummaryMode(summary) == GrantedGroupMode() &&
         SummaryHasWaiters(summary) == !waiters_.empty() &&
         SummaryHolderCount(summary) == live_holders_;
}

}  // namespace locktune
