// Per-resource lock state (Figure 3 of the paper).
//
// Compatible requests share the granted group; incompatible requests form a
// FIFO chain behind it, serviced in arrival order when holders release
// ("post" discipline — requesters are serviced in the order in which they
// request locks, unlike Oracle's sleep-wake-check polling which can jump the
// queue, §2.3). Conversion requests from an existing holder queue ahead of
// new requests, the standard treatment that avoids conversion starvation.
#ifndef LOCKTUNE_LOCK_LOCK_HEAD_H_
#define LOCKTUNE_LOCK_LOCK_HEAD_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "lock/lock_mode.h"
#include "lock/resource.h"

namespace locktune {

// Application (connection) identifier; the unit the paper's per-application
// lock limit applies to.
using AppId = int32_t;

class LockBlock;

// One lock structure: an application's granted or waiting interest in a
// resource. Consumes one 64 B slot of lock memory while it exists.
// locklint: hot-column
struct LockRequest {
  AppId app = 0;
  LockMode mode = LockMode::kNone;        // granted mode
  LockMode convert_to = LockMode::kNone;  // pending conversion target
  LockBlock* slot = nullptr;              // lock memory slot backing this
};
static_assert(std::is_trivially_copyable_v<LockRequest>,
              "holder rows are tombstoned and compacted byte-wise");

// Waiting (not yet granted) request.
struct WaitingRequest {
  AppId app = 0;
  LockMode mode = LockMode::kNone;
  bool is_conversion = false;  // app already holds this resource
  LockBlock* slot = nullptr;   // only for new requests (conversions reuse)
};

class LockHead {
 public:
  LockHead() = default;
  // Not copyable: heads live in pooled, pointer-stable nodes; the atomic
  // summary word must never be duplicated.
  LockHead(const LockHead&) = delete;
  LockHead& operator=(const LockHead&) = delete;

  // --- optimistic summary (docs/LATCHES.md) ---
  //
  // A packed snapshot of the grant-check inputs, readable without the shard
  // latch: bits [0..3] the granted-group supremum mode, bit [4] whether any
  // waiter is queued, bits [5..] the holder count. Every mutator below
  // refreshes it (all mutations run under the shard latch's write side or
  // the manager's exclusive lock), so an optimistic reader that validates
  // its latch version saw a summary consistent with the vectors. CanGrantNew
  // is exactly derivable from it: !HasWaiters && Compatible(Mode, mode).
  uint32_t opt_summary() const {
    // order: relaxed-ok(callers read this inside a ReadBegin/ReadValidate
    // section of the shard latch; the version protocol rejects torn reads)
    return opt_summary_.load(std::memory_order_relaxed);
  }
  static LockMode SummaryMode(uint32_t summary) {
    return static_cast<LockMode>(summary & 0xF);
  }
  static bool SummaryHasWaiters(uint32_t summary) {
    return (summary & 0x10) != 0;
  }
  static uint32_t SummaryHolderCount(uint32_t summary) {
    return summary >> 5;
  }

  // --- granted group ---
  //
  // Live holders appear in arrival order, interleaved with tombstones:
  // RemoveHolder marks the slot dead (app = kDeadHolder, mode = kNone)
  // instead of erasing it, and the vector is compacted — stably, so
  // arrival order is preserved — once tombstones outnumber live entries.
  // Arrival order is observable (the deadlock detector builds waits-for
  // edges in it, and victim selection on overlapping cycles is
  // golden-locked to the resulting traversal), which is why removal cannot
  // swap-erase. Iterating callers need no tombstone check in practice: a
  // dead slot's app matches no real application and its kNone mode is
  // compatible with everything, so conflict scans skip it naturally.
  //
  // Every aggregate the grant check needs is maintained incrementally —
  // per-mode holder counts make GrantedGroupMode O(modes) instead of
  // O(holders), and once the group outgrows kHolderIndexThreshold an
  // app → slot index makes FindHolder / RemoveHolder O(1). Table intent
  // heads are why: with 10^5 concurrent transactions every row lock
  // probes its table's intent head, and a linear holder scan there made
  // the whole lock path O(holders) per request (docs/SCALE.md).
  const std::vector<LockRequest>& holders() const { return holders_; }

  // Granted (live) holders; holders().size() also counts tombstones.
  uint32_t live_holder_count() const { return live_holders_; }
  bool HasHolders() const { return live_holders_ != 0; }

  // `app` of a tombstoned holder slot. Never a real application id.
  static constexpr AppId kDeadHolder = INT32_MIN;

  // Live-group size at which the app → slot index is built. Row heads (a
  // handful of holders) never pay the hash-map overhead; table intent
  // heads cross it once and stay indexed until recycled.
  static constexpr size_t kHolderIndexThreshold = 16;

  // Granted request of `app`, or nullptr.
  const LockRequest* FindHolder(AppId app) const;
  LockRequest* FindHolder(AppId app);

  // Supremum of granted modes, optionally ignoring `except` (used to test
  // whether a conversion by `except` is compatible with everyone else).
  LockMode GrantedGroupMode(AppId except = -1) const;

  // True when a *new* request in `mode` can be granted now: it must be
  // compatible with the granted group AND no incompatible waiter may be
  // queued ahead (FIFO fairness — a compatible newcomer must not overtake).
  bool CanGrantNew(LockMode mode) const;

  // True when `app`'s conversion to `mode` is compatible with all other
  // holders (conversions do not queue behind new waiters).
  bool CanGrantConversion(AppId app, LockMode mode) const;

  // Appends a granted request.
  void AddHolder(const LockRequest& request);

  // Changes `holder`'s granted mode (conversion grant, escalation). The
  // only sanctioned way to change a granted mode — a plain `holder->mode =`
  // through FindHolder would leave the optimistic summary and the mode
  // counts stale (locklint LL010 polices the raw form on shard state).
  void SetHolderMode(LockRequest* holder, LockMode mode) {
    --mode_counts_[static_cast<size_t>(holder->mode)];
    ++mode_counts_[static_cast<size_t>(mode)];
    holder->mode = mode;
    RefreshSummary();
  }

  // Removes `app`'s granted request, returning its lock memory slot
  // (nullptr if the app held nothing here).
  LockBlock* RemoveHolder(AppId app);

  // --- wait queue ---
  const std::vector<WaitingRequest>& waiters() const { return waiters_; }

  // Conversions enter at the front (after other conversions); new requests
  // at the back.
  void EnqueueConversion(const WaitingRequest& w);
  void EnqueueNew(const WaitingRequest& w);

  // Removes app's waiting entry if present, returning its slot (nullptr if
  // it was a conversion or absent). Used when a waiter aborts.
  LockBlock* RemoveWaiter(AppId app, bool* removed);

  bool HasWaiter(AppId app) const;

  bool empty() const { return live_holders_ == 0 && waiters_.empty(); }

  // Drops all holders and waiters but keeps vector capacity — called when a
  // pooled head node is recycled, so a reused node re-enters service
  // allocation-free.
  // locklint: seqlock-writer(mutator; runs under the shard latch write side or the manager exclusive lock, whose version bump publishes the store)
  void Clear() {
    holders_.clear();
    waiters_.clear();
    mode_counts_.fill(0);
    index_.clear();  // keeps the bucket array for the node's next life
    indexed_ = false;
    live_holders_ = 0;
    dead_holders_ = 0;
    opt_summary_.store(0, std::memory_order_relaxed);
  }

  // True when the summary word matches a fresh recomputation (paranoid
  // checks / tests).
  bool SummaryConsistent() const;

  // Pops the front waiter. Precondition: !waiters().empty().
  WaitingRequest PopFrontWaiter();
  const WaitingRequest& FrontWaiter() const { return waiters_.front(); }

 private:
  // Recomputed after every mutation. O(modes): the group supremum folds
  // the per-mode counts, never the holder vector, so refreshing a table
  // intent head with 10^4 holders costs the same as a row head with one.
  // locklint: seqlock-writer(every caller is a mutator under the shard latch write side or the manager exclusive lock; the latch version bump publishes)
  void RefreshSummary() {
    const uint32_t packed = static_cast<uint32_t>(GrantedGroupMode()) |
                            (waiters_.empty() ? 0u : 0x10u) |
                            (live_holders_ << 5);
    opt_summary_.store(packed, std::memory_order_relaxed);
  }

  // Builds the app → slot index over the current live holders (crossing
  // kHolderIndexThreshold). Once built it is maintained incrementally
  // until Clear().
  void BuildIndex();

  // Stably removes tombstones (arrival order of live entries preserved)
  // and rebuilds the index. Called when tombstones outnumber live
  // holders, so its O(slots) cost amortizes to O(1) per removal.
  void CompactHolders();

  std::vector<LockRequest> holders_;     // arrival order + tombstones
  std::vector<WaitingRequest> waiters_;  // front = next to service
  // Live holders per granted mode; GrantedGroupMode folds these.
  std::array<uint32_t, kNumLockModes> mode_counts_{};
  uint32_t live_holders_ = 0;
  uint32_t dead_holders_ = 0;
  // App → holders_ slot for live entries; valid iff indexed_. clear()
  // keeps the bucket array, so a pooled node that crossed the threshold
  // once re-enters service without rehashing.
  std::unordered_map<AppId, uint32_t> index_;
  bool indexed_ = false;
  // Relaxed atomic: read by optimistic probes without the shard latch.
  std::atomic<uint32_t> opt_summary_{0};
};

}  // namespace locktune

#endif  // LOCKTUNE_LOCK_LOCK_HEAD_H_
