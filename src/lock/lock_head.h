// Per-resource lock state (Figure 3 of the paper).
//
// Compatible requests share the granted group; incompatible requests form a
// FIFO chain behind it, serviced in arrival order when holders release
// ("post" discipline — requesters are serviced in the order in which they
// request locks, unlike Oracle's sleep-wake-check polling which can jump the
// queue, §2.3). Conversion requests from an existing holder queue ahead of
// new requests, the standard treatment that avoids conversion starvation.
#ifndef LOCKTUNE_LOCK_LOCK_HEAD_H_
#define LOCKTUNE_LOCK_LOCK_HEAD_H_

#include <cstdint>
#include <vector>

#include "lock/lock_mode.h"
#include "lock/resource.h"

namespace locktune {

// Application (connection) identifier; the unit the paper's per-application
// lock limit applies to.
using AppId = int32_t;

class LockBlock;

// One lock structure: an application's granted or waiting interest in a
// resource. Consumes one 64 B slot of lock memory while it exists.
struct LockRequest {
  AppId app = 0;
  LockMode mode = LockMode::kNone;        // granted mode
  LockMode convert_to = LockMode::kNone;  // pending conversion target
  LockBlock* slot = nullptr;              // lock memory slot backing this
};

// Waiting (not yet granted) request.
struct WaitingRequest {
  AppId app = 0;
  LockMode mode = LockMode::kNone;
  bool is_conversion = false;  // app already holds this resource
  LockBlock* slot = nullptr;   // only for new requests (conversions reuse)
};

class LockHead {
 public:
  // --- granted group ---
  const std::vector<LockRequest>& holders() const { return holders_; }
  std::vector<LockRequest>& holders() { return holders_; }

  // Granted request of `app`, or nullptr.
  const LockRequest* FindHolder(AppId app) const;
  LockRequest* FindHolder(AppId app);

  // Supremum of granted modes, optionally ignoring `except` (used to test
  // whether a conversion by `except` is compatible with everyone else).
  LockMode GrantedGroupMode(AppId except = -1) const;

  // True when a *new* request in `mode` can be granted now: it must be
  // compatible with the granted group AND no incompatible waiter may be
  // queued ahead (FIFO fairness — a compatible newcomer must not overtake).
  bool CanGrantNew(LockMode mode) const;

  // True when `app`'s conversion to `mode` is compatible with all other
  // holders (conversions do not queue behind new waiters).
  bool CanGrantConversion(AppId app, LockMode mode) const;

  // Appends a granted request.
  void AddHolder(const LockRequest& request) { holders_.push_back(request); }

  // Removes `app`'s granted request, returning its lock memory slot
  // (nullptr if the app held nothing here).
  LockBlock* RemoveHolder(AppId app);

  // --- wait queue ---
  const std::vector<WaitingRequest>& waiters() const { return waiters_; }

  // Conversions enter at the front (after other conversions); new requests
  // at the back.
  void EnqueueConversion(const WaitingRequest& w);
  void EnqueueNew(const WaitingRequest& w);

  // Removes app's waiting entry if present, returning its slot (nullptr if
  // it was a conversion or absent). Used when a waiter aborts.
  LockBlock* RemoveWaiter(AppId app, bool* removed);

  bool HasWaiter(AppId app) const;

  bool empty() const { return holders_.empty() && waiters_.empty(); }

  // Drops all holders and waiters but keeps vector capacity — called when a
  // pooled head node is recycled, so a reused node re-enters service
  // allocation-free.
  void Clear() {
    holders_.clear();
    waiters_.clear();
  }

  // Pops the front waiter. Precondition: !waiters().empty().
  WaitingRequest PopFrontWaiter();
  const WaitingRequest& FrontWaiter() const { return waiters_.front(); }

 private:
  std::vector<LockRequest> holders_;
  std::vector<WaitingRequest> waiters_;  // front = next to service
};

}  // namespace locktune

#endif  // LOCKTUNE_LOCK_LOCK_HEAD_H_
