// Per-resource lock state (Figure 3 of the paper).
//
// Compatible requests share the granted group; incompatible requests form a
// FIFO chain behind it, serviced in arrival order when holders release
// ("post" discipline — requesters are serviced in the order in which they
// request locks, unlike Oracle's sleep-wake-check polling which can jump the
// queue, §2.3). Conversion requests from an existing holder queue ahead of
// new requests, the standard treatment that avoids conversion starvation.
#ifndef LOCKTUNE_LOCK_LOCK_HEAD_H_
#define LOCKTUNE_LOCK_LOCK_HEAD_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "lock/lock_mode.h"
#include "lock/resource.h"

namespace locktune {

// Application (connection) identifier; the unit the paper's per-application
// lock limit applies to.
using AppId = int32_t;

class LockBlock;

// One lock structure: an application's granted or waiting interest in a
// resource. Consumes one 64 B slot of lock memory while it exists.
struct LockRequest {
  AppId app = 0;
  LockMode mode = LockMode::kNone;        // granted mode
  LockMode convert_to = LockMode::kNone;  // pending conversion target
  LockBlock* slot = nullptr;              // lock memory slot backing this
};

// Waiting (not yet granted) request.
struct WaitingRequest {
  AppId app = 0;
  LockMode mode = LockMode::kNone;
  bool is_conversion = false;  // app already holds this resource
  LockBlock* slot = nullptr;   // only for new requests (conversions reuse)
};

class LockHead {
 public:
  LockHead() = default;
  // Not copyable: heads live in pooled, pointer-stable nodes; the atomic
  // summary word must never be duplicated.
  LockHead(const LockHead&) = delete;
  LockHead& operator=(const LockHead&) = delete;

  // --- optimistic summary (docs/LATCHES.md) ---
  //
  // A packed snapshot of the grant-check inputs, readable without the shard
  // latch: bits [0..3] the granted-group supremum mode, bit [4] whether any
  // waiter is queued, bits [5..] the holder count. Every mutator below
  // refreshes it (all mutations run under the shard latch's write side or
  // the manager's exclusive lock), so an optimistic reader that validates
  // its latch version saw a summary consistent with the vectors. CanGrantNew
  // is exactly derivable from it: !HasWaiters && Compatible(Mode, mode).
  uint32_t opt_summary() const {
    // order: relaxed-ok(callers read this inside a ReadBegin/ReadValidate
    // section of the shard latch; the version protocol rejects torn reads)
    return opt_summary_.load(std::memory_order_relaxed);
  }
  static LockMode SummaryMode(uint32_t summary) {
    return static_cast<LockMode>(summary & 0xF);
  }
  static bool SummaryHasWaiters(uint32_t summary) {
    return (summary & 0x10) != 0;
  }
  static uint32_t SummaryHolderCount(uint32_t summary) {
    return summary >> 5;
  }

  // --- granted group ---
  const std::vector<LockRequest>& holders() const { return holders_; }
  std::vector<LockRequest>& holders() { return holders_; }

  // Granted request of `app`, or nullptr.
  const LockRequest* FindHolder(AppId app) const;
  LockRequest* FindHolder(AppId app);

  // Supremum of granted modes, optionally ignoring `except` (used to test
  // whether a conversion by `except` is compatible with everyone else).
  LockMode GrantedGroupMode(AppId except = -1) const;

  // True when a *new* request in `mode` can be granted now: it must be
  // compatible with the granted group AND no incompatible waiter may be
  // queued ahead (FIFO fairness — a compatible newcomer must not overtake).
  bool CanGrantNew(LockMode mode) const;

  // True when `app`'s conversion to `mode` is compatible with all other
  // holders (conversions do not queue behind new waiters).
  bool CanGrantConversion(AppId app, LockMode mode) const;

  // Appends a granted request.
  void AddHolder(const LockRequest& request) {
    holders_.push_back(request);
    RefreshSummary();
  }

  // Changes `holder`'s granted mode (conversion grant, escalation). The
  // only sanctioned way to change a granted mode — a plain `holder->mode =`
  // through FindHolder would leave the optimistic summary stale (locklint
  // LL010 polices the raw form on shard state).
  void SetHolderMode(LockRequest* holder, LockMode mode) {
    holder->mode = mode;
    RefreshSummary();
  }

  // Removes `app`'s granted request, returning its lock memory slot
  // (nullptr if the app held nothing here).
  LockBlock* RemoveHolder(AppId app);

  // --- wait queue ---
  const std::vector<WaitingRequest>& waiters() const { return waiters_; }

  // Conversions enter at the front (after other conversions); new requests
  // at the back.
  void EnqueueConversion(const WaitingRequest& w);
  void EnqueueNew(const WaitingRequest& w);

  // Removes app's waiting entry if present, returning its slot (nullptr if
  // it was a conversion or absent). Used when a waiter aborts.
  LockBlock* RemoveWaiter(AppId app, bool* removed);

  bool HasWaiter(AppId app) const;

  bool empty() const { return holders_.empty() && waiters_.empty(); }

  // Drops all holders and waiters but keeps vector capacity — called when a
  // pooled head node is recycled, so a reused node re-enters service
  // allocation-free.
  // locklint: seqlock-writer(mutator; runs under the shard latch write side or the manager exclusive lock, whose version bump publishes the store)
  void Clear() {
    holders_.clear();
    waiters_.clear();
    opt_summary_.store(0, std::memory_order_relaxed);
  }

  // True when the summary word matches a fresh recomputation (paranoid
  // checks / tests).
  bool SummaryConsistent() const;

  // Pops the front waiter. Precondition: !waiters().empty().
  WaitingRequest PopFrontWaiter();
  const WaitingRequest& FrontWaiter() const { return waiters_.front(); }

 private:
  // Recomputed after every mutation. O(holders), which stays small (the
  // compatible-mode fan-in on one resource); the mutators that call it are
  // already O(holders) probes or vector edits.
  // locklint: seqlock-writer(every caller is a mutator under the shard latch write side or the manager exclusive lock; the latch version bump publishes)
  void RefreshSummary() {
    const uint32_t packed =
        static_cast<uint32_t>(GrantedGroupMode()) |
        (waiters_.empty() ? 0u : 0x10u) |
        (static_cast<uint32_t>(holders_.size()) << 5);
    opt_summary_.store(packed, std::memory_order_relaxed);
  }

  std::vector<LockRequest> holders_;
  std::vector<WaitingRequest> waiters_;  // front = next to service
  // Relaxed atomic: read by optimistic probes without the shard latch.
  std::atomic<uint32_t> opt_summary_{0};
};

}  // namespace locktune

#endif  // LOCKTUNE_LOCK_LOCK_HEAD_H_
