// Escalation policies: when must an application's row locks escalate?
//
// DB2 escalates when an application exceeds its share of the lock list
// (MAXLOCKS) or when lock memory is exhausted and cannot grow. The policy
// object answers "how many lock structures may one application hold right
// now" and "does overall memory pressure force escalation", so the same
// LockManager can run the paper's adaptive scheme, the pre-STMM fixed
// percentage, or the SQL Server 2005-style rules (§2.3).
#ifndef LOCKTUNE_LOCK_ESCALATION_POLICY_H_
#define LOCKTUNE_LOCK_ESCALATION_POLICY_H_

#include <cstdint>
#include <memory>

#include "common/units.h"
#include "lock/maxlocks_curve.h"

namespace locktune {

// Snapshot of lock memory passed to policy decisions.
struct LockMemoryState {
  Bytes allocated = 0;         // lock memory owned (blocks × 128 KB)
  Bytes used = 0;              // lock structures in use × 64 B
  int64_t capacity_slots = 0;  // total lock structure slots
  int64_t slots_in_use = 0;
  Bytes max_lock_memory = 0;   // upper bound lock memory may ever reach
  Bytes database_memory = 0;   // total database shared memory

  double used_percent_of_max() const {
    if (max_lock_memory <= 0) return 100.0;
    return 100.0 * static_cast<double>(used) /
           static_cast<double>(max_lock_memory);
  }
};

class EscalationPolicy {
 public:
  virtual ~EscalationPolicy() = default;

  // Maximum number of lock structures a single application may hold before
  // it must escalate.
  virtual int64_t MaxStructuresPerApp(const LockMemoryState& state) = 0;

  // The externalized lockPercentPerApplication equivalent (for metrics).
  virtual double CurrentPercent(const LockMemoryState& state) = 0;

  // True when global memory pressure alone forces escalation (SQL Server's
  // 40 %-of-engine-memory rule). DB2's policies return false: DB2 grows the
  // lock memory instead and escalates only on allocation failure.
  virtual bool ForcesMemoryEscalation(const LockMemoryState& state) {
    (void)state;
    return false;
  }

  // Bookkeeping hooks (refresh-period handling for the adaptive curve).
  virtual void OnLockRequest() {}
  virtual void OnResize() {}
};

// Paper §3.5: lockPercentPerApplication = 98·(1−(x/100)³), recomputed on
// resize and every 0x80 lock requests.
class AdaptiveMaxlocksPolicy : public EscalationPolicy {
 public:
  explicit AdaptiveMaxlocksPolicy(MaxlocksCurve curve = MaxlocksCurve());

  int64_t MaxStructuresPerApp(const LockMemoryState& state) override;
  double CurrentPercent(const LockMemoryState& state) override;
  void OnLockRequest() override;
  void OnResize() override;

  const MaxlocksCurve& curve() const { return curve_; }

 private:
  MaxlocksCurve curve_;
};

// Pre-STMM DB2: a fixed MAXLOCKS percentage of the lock list (the previous
// product default was 10 %).
class FixedMaxlocksPolicy : public EscalationPolicy {
 public:
  explicit FixedMaxlocksPolicy(double percent);

  int64_t MaxStructuresPerApp(const LockMemoryState& state) override;
  double CurrentPercent(const LockMemoryState& state) override;

 private:
  double percent_;
};

// SQL Server 2005-style rules (paper §2.3): escalate any application that
// acquires 5000 row locks regardless of available memory, and escalate when
// lock memory reaches 40 % of total engine memory. Neither is configurable
// in the original.
class SqlServerLockPolicy : public EscalationPolicy {
 public:
  static constexpr int64_t kRowLockLimit = 5000;
  static constexpr double kMemoryEscalationFraction = 0.40;

  int64_t MaxStructuresPerApp(const LockMemoryState& state) override;
  double CurrentPercent(const LockMemoryState& state) override;
  bool ForcesMemoryEscalation(const LockMemoryState& state) override;
};

}  // namespace locktune

#endif  // LOCKTUNE_LOCK_ESCALATION_POLICY_H_
