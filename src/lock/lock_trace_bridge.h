// Bridges LockEventMonitor events into the structured trace stream, so a
// JSONL trace interleaves tuning-pass decisions with the lock events (waits,
// escalations, timeouts) that motivated them.
#ifndef LOCKTUNE_LOCK_LOCK_TRACE_BRIDGE_H_
#define LOCKTUNE_LOCK_LOCK_TRACE_BRIDGE_H_

#include "lock/lock_event_monitor.h"
#include "telemetry/trace.h"

namespace locktune {

// A LockEventMonitor that renders each event as a `kind:"lock_event"` trace
// record. The sink is borrowed and settable after construction; with no
// sink installed the bridge is a no-op, so it can be wired unconditionally.
class TraceEventMonitor : public LockEventMonitor {
 public:
  explicit TraceEventMonitor(TraceSink* sink = nullptr) : sink_(sink) {}

  void set_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }

  void OnLockEvent(const LockEvent& event) override;

 private:
  TraceSink* sink_;
};

}  // namespace locktune

#endif  // LOCKTUNE_LOCK_LOCK_TRACE_BRIDGE_H_
