// The adaptive lockPercentPerApplication curve (paper §3.5, Table 1).
//
//   lockPercentPerApplication(x) = P · (1 − (x/100)^e)
//
// where x is the percentage of maxLockMemory currently in use, P = 98 and
// e = 3. The curve leaves a single application nearly unconstrained (98 %)
// while lock memory is ample and attenuates aggressively once lock memory is
// more than ~75 % used, reaching the floor of 1 % at x = 100.
//
// The value is recomputed every time lock memory is resized, and every
// refreshPeriodForAppPercent (0x80 = 128) lock structure requests — roughly
// the same interval on which new memory blocks can be allocated. The request
// counter measures requests since the last *actual* recomputation: a
// resize-triggered refresh restarts the cadence, so every interval between
// recomputations is exactly refresh_period requests (an earlier version reset
// the counter at the period boundary instead, so a resize or the initial
// computation left a partial count behind and the next refresh fired early).
//
// Thread safety: the cached view (OnLockRequest / Invalidate / Current) is
// safe to call concurrently; the counter, dirty flag, and cached percent are
// atomics. Under concurrent callers a reader may observe a value that is at
// most one refresh stale — acceptable for a quota heuristic, and exact in the
// single-threaded deterministic mode.
#ifndef LOCKTUNE_LOCK_MAXLOCKS_CURVE_H_
#define LOCKTUNE_LOCK_MAXLOCKS_CURVE_H_

#include <atomic>
#include <cstdint>

namespace locktune {

class MaxlocksCurve {
 public:
  // `p_max` is the unconstrained ceiling (paper: 98), `exponent` the
  // attenuation power (paper: 3), `refresh_period` the number of lock
  // structure requests between recomputations (paper: 0x80).
  MaxlocksCurve(double p_max = 98.0, double exponent = 3.0,
                int refresh_period = 0x80);

  // Copyable so policies can take the curve by value (atomics are copied as
  // plain loads; copying while another thread mutates is not supported).
  MaxlocksCurve(const MaxlocksCurve& other);
  MaxlocksCurve& operator=(const MaxlocksCurve& other);

  double p_max() const { return p_max_; }
  double exponent() const { return exponent_; }
  int refresh_period() const { return refresh_period_; }

  // Pure curve evaluation: percent of lock memory one application may hold
  // when `used_percent_of_max` (= 100·used/maxLockMemory) is consumed.
  // Clamped to [1, p_max].
  double Evaluate(double used_percent_of_max) const;

  // --- cached, refresh-period-driven view (what the lock manager uses) ---

  // Notes one lock structure request; returns true when the cached value is
  // due for recomputation. The refresh becomes due on the refresh_period-th
  // request after the last recomputation (exactly 0x80 with defaults).
  bool OnLockRequest();

  // Forces recomputation at the next read (called on lock memory resize).
  // The resize-triggered recomputation restarts the request cadence.
  void Invalidate() { dirty_.store(true, std::memory_order_release); }

  // Returns the cached percent, recomputing from `used_percent_of_max` if
  // due. This is the externally visible lockPercentPerApplication.
  double Current(double used_percent_of_max);

  // Requests observed since the last recomputation (test/inspection hook).
  int requests_since_refresh() const {
    return requests_since_refresh_.load(std::memory_order_relaxed);
  }

 private:
  double p_max_;
  double exponent_;
  int refresh_period_;
  std::atomic<int> requests_since_refresh_{0};
  std::atomic<bool> dirty_{true};
  std::atomic<double> cached_percent_{0.0};
};

}  // namespace locktune

#endif  // LOCKTUNE_LOCK_MAXLOCKS_CURVE_H_
