#include "lock/lock_trace_bridge.h"

namespace locktune {

void TraceEventMonitor::OnLockEvent(const LockEvent& event) {
  if (sink_ == nullptr) return;
  TraceRecord rec(event.time, "lock_event");
  rec.Str("event", LockEventKindName(event.kind))
      .Int("app", event.app)
      .Str("resource", event.resource.ToString())
      .Str("mode", ModeName(event.mode));
  switch (event.kind) {
    case LockEventKind::kWaitEnd:
      rec.Int("wait_ms", event.value);
      break;
    case LockEventKind::kEscalation:
      rec.Int("rows_released", event.value);
      break;
    default:
      if (event.value != 0) rec.Int("value", event.value);
      break;
  }
  // The manager fires lock events while holding its outer mutex, and the
  // sink's Append takes its own leaf lock. The virtual call is opaque to
  // locklint's call resolution, so both sink edges are declared here.
  // locklint: lock-edge(LockManager::mu_ -> JsonlTraceWriter::mu_)
  // locklint: lock-edge(LockManager::mu_ -> MemoryTraceSink::mu_)
  sink_->Append(rec);
}

}  // namespace locktune
