// Lock event monitoring (the analogue of DB2's lock event monitor /
// db2pd -locks diagnostics).
//
// A LockEventMonitor observes the lock manager's interesting transitions:
// waits beginning and ending, escalations, timeouts, deadlock victims, and
// out-of-lock-memory failures. Monitors are how operators diagnose the
// exact situations this paper is about — "why did my workload escalate?" —
// so the library ships a bounded ring-buffer recorder and a counting
// aggregator, plus the observer interface for custom sinks.
//
// Events are delivered synchronously under the lock manager's mutex:
// implementations must be fast and must not call back into the manager.
#ifndef LOCKTUNE_LOCK_LOCK_EVENT_MONITOR_H_
#define LOCKTUNE_LOCK_LOCK_EVENT_MONITOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "lock/lock_head.h"
#include "lock/lock_mode.h"
#include "lock/resource.h"

namespace locktune {

enum class LockEventKind : uint8_t {
  kWaitBegin = 0,      // a request queued behind incompatible holders
  kWaitEnd,            // a queued request was granted
  kEscalation,         // row locks collapsed into a table lock
  kTimeout,            // a waiter exceeded LOCKTIMEOUT
  kDeadlockVictim,     // chosen to break a cycle
  kOutOfLockMemory,    // no structure available and nothing to escalate
  kSynchronousGrowth,  // a block was added on the request path
};

inline constexpr int kNumLockEventKinds = 7;

std::string_view LockEventKindName(LockEventKind kind);

struct LockEvent {
  LockEventKind kind = LockEventKind::kWaitBegin;
  TimeMs time = 0;
  AppId app = 0;
  ResourceId resource;            // subject resource (table for escalation)
  LockMode mode = LockMode::kNone;  // requested / escalated-to mode
  // kWaitEnd: how long the wait lasted. kEscalation: row locks released.
  int64_t value = 0;

  // One-line rendering, e.g. "t=12.3s ESCALATION app=7 tab(3) X rows=2048".
  std::string ToString() const;
};

class LockEventMonitor {
 public:
  virtual ~LockEventMonitor() = default;
  virtual void OnLockEvent(const LockEvent& event) = 0;
};

// Keeps the last `capacity` events in a ring (the flight recorder).
class RingBufferEventMonitor : public LockEventMonitor {
 public:
  explicit RingBufferEventMonitor(size_t capacity = 1024);

  void OnLockEvent(const LockEvent& event) override;

  // Events in arrival order, oldest first.
  std::vector<LockEvent> Events() const;
  int64_t total_events() const { return total_; }
  size_t capacity() const { return capacity_; }

  // Renders the buffered events, one per line.
  std::string Dump() const;

 private:
  size_t capacity_;
  std::vector<LockEvent> ring_;
  size_t next_ = 0;
  int64_t total_ = 0;
};

// Counts events by kind (cheap always-on aggregation).
class CountingEventMonitor : public LockEventMonitor {
 public:
  void OnLockEvent(const LockEvent& event) override;

  int64_t count(LockEventKind kind) const {
    return counts_[static_cast<size_t>(kind)];
  }
  int64_t total() const;

 private:
  std::array<int64_t, kNumLockEventKinds> counts_{};
};

// Fans one event stream out to several monitors.
class TeeEventMonitor : public LockEventMonitor {
 public:
  // Monitors are borrowed and must outlive the tee.
  explicit TeeEventMonitor(std::vector<LockEventMonitor*> sinks);

  void OnLockEvent(const LockEvent& event) override;

 private:
  std::vector<LockEventMonitor*> sinks_;
};

}  // namespace locktune

#endif  // LOCKTUNE_LOCK_LOCK_EVENT_MONITOR_H_
