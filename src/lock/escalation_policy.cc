#include "lock/escalation_policy.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace locktune {

AdaptiveMaxlocksPolicy::AdaptiveMaxlocksPolicy(MaxlocksCurve curve)
    : curve_(curve) {}

int64_t AdaptiveMaxlocksPolicy::MaxStructuresPerApp(
    const LockMemoryState& state) {
  const double percent = curve_.Current(state.used_percent_of_max());
  // The adaptive limit is a share of the lock memory the system may grow to
  // (maxLockMemory), not of the instantaneous allocation: §5.3 requires a
  // single application to dominate consumption while total lock memory is
  // far from the allowable maximum, even though synchronous growth keeps the
  // instantaneous allocation close to what is in use.
  const auto max_slots = state.max_lock_memory / kLockStructSize;
  const auto limit =
      static_cast<int64_t>(percent / 100.0 * static_cast<double>(max_slots));
  return std::max<int64_t>(limit, 1);
}

double AdaptiveMaxlocksPolicy::CurrentPercent(const LockMemoryState& state) {
  return curve_.Current(state.used_percent_of_max());
}

void AdaptiveMaxlocksPolicy::OnLockRequest() { curve_.OnLockRequest(); }

void AdaptiveMaxlocksPolicy::OnResize() { curve_.Invalidate(); }

FixedMaxlocksPolicy::FixedMaxlocksPolicy(double percent) : percent_(percent) {
  LOCKTUNE_CHECK(percent > 0.0 && percent <= 100.0);
}

int64_t FixedMaxlocksPolicy::MaxStructuresPerApp(
    const LockMemoryState& state) {
  const auto limit = static_cast<int64_t>(
      percent_ / 100.0 * static_cast<double>(state.capacity_slots));
  return std::max<int64_t>(limit, 1);
}

double FixedMaxlocksPolicy::CurrentPercent(const LockMemoryState&) {
  return percent_;
}

int64_t SqlServerLockPolicy::MaxStructuresPerApp(const LockMemoryState&) {
  return kRowLockLimit;
}

double SqlServerLockPolicy::CurrentPercent(const LockMemoryState& state) {
  if (state.capacity_slots <= 0) return 0.0;
  return 100.0 * static_cast<double>(kRowLockLimit) /
         static_cast<double>(state.capacity_slots);
}

bool SqlServerLockPolicy::ForcesMemoryEscalation(
    const LockMemoryState& state) {
  return static_cast<double>(state.used) >=
         kMemoryEscalationFraction * static_cast<double>(state.database_memory);
}

}  // namespace locktune
