#include "lock/lock_mode.h"

#include "common/check.h"

namespace locktune {

namespace {

constexpr int Idx(LockMode m) { return static_cast<int>(m); }

// Rows/columns ordered: kNone, kIS, kIX, kS, kSIX, kU, kX.
// U is compatible with S and IS but not with another U, which gives update
// locks their lost-update protection.
constexpr bool kCompatible[kNumLockModes][kNumLockModes] = {
    //           None   IS     IX     S      SIX    U      X
    /* None */ {true,  true,  true,  true,  true,  true,  true},
    /* IS  */  {true,  true,  true,  true,  true,  true,  false},
    /* IX  */  {true,  true,  true,  false, false, false, false},
    /* S   */  {true,  true,  false, true,  false, true,  false},
    /* SIX */  {true,  true,  false, false, false, false, false},
    /* U   */  {true,  true,  false, true,  false, false, false},
    /* X   */  {true,  false, false, false, false, false, false},
};

// Conversion lattice (least upper bound). Symmetric by construction.
constexpr LockMode kSup[kNumLockModes][kNumLockModes] = {
    //          None           IS             IX             S              SIX            U              X
    /* None */ {LockMode::kNone, LockMode::kIS, LockMode::kIX, LockMode::kS, LockMode::kSIX, LockMode::kU, LockMode::kX},
    /* IS  */  {LockMode::kIS,  LockMode::kIS,  LockMode::kIX,  LockMode::kS,   LockMode::kSIX, LockMode::kU,   LockMode::kX},
    /* IX  */  {LockMode::kIX,  LockMode::kIX,  LockMode::kIX,  LockMode::kSIX, LockMode::kSIX, LockMode::kX,   LockMode::kX},
    /* S   */  {LockMode::kS,   LockMode::kS,   LockMode::kSIX, LockMode::kS,   LockMode::kSIX, LockMode::kU,   LockMode::kX},
    /* SIX */  {LockMode::kSIX, LockMode::kSIX, LockMode::kSIX, LockMode::kSIX, LockMode::kSIX, LockMode::kSIX, LockMode::kX},
    /* U   */  {LockMode::kU,   LockMode::kU,   LockMode::kX,   LockMode::kU,   LockMode::kSIX, LockMode::kU,   LockMode::kX},
    /* X   */  {LockMode::kX,   LockMode::kX,   LockMode::kX,   LockMode::kX,   LockMode::kX,   LockMode::kX,   LockMode::kX},
};

}  // namespace

bool Compatible(LockMode a, LockMode b) {
  return kCompatible[Idx(a)][Idx(b)];
}

LockMode Supremum(LockMode a, LockMode b) { return kSup[Idx(a)][Idx(b)]; }

bool Covers(LockMode held, LockMode wanted) {
  return Supremum(held, wanted) == held;
}

LockMode IntentModeFor(LockMode row_mode) {
  switch (row_mode) {
    case LockMode::kS:
      return LockMode::kIS;
    case LockMode::kU:
    case LockMode::kX:
      return LockMode::kIX;
    default:
      LOCKTUNE_DCHECK(false && "row locks must be S, U or X");
      return LockMode::kIS;
  }
}

std::string_view ModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kNone:
      return "NONE";
    case LockMode::kIS:
      return "IS";
    case LockMode::kIX:
      return "IX";
    case LockMode::kS:
      return "S";
    case LockMode::kSIX:
      return "SIX";
    case LockMode::kU:
      return "U";
    case LockMode::kX:
      return "X";
  }
  return "?";
}

}  // namespace locktune
