// Lockable resource identifiers.
//
// locktune locks at two granularities: tables and rows (DB2 LUW does not use
// page locks for data). A row resource is (table, row) so escalation can
// find all of an application's row locks on one table.
#ifndef LOCKTUNE_LOCK_RESOURCE_H_
#define LOCKTUNE_LOCK_RESOURCE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace locktune {

using TableId = int32_t;

enum class ResourceKind : uint8_t {
  kTable = 0,
  kRow = 1,
};

struct ResourceId {
  ResourceKind kind = ResourceKind::kTable;
  TableId table = 0;
  int64_t row = 0;  // 0 for table resources

  friend bool operator==(const ResourceId& a, const ResourceId& b) {
    return a.kind == b.kind && a.table == b.table && a.row == b.row;
  }

  // Debug form, e.g. "tab(3)" / "row(3,17)".
  std::string ToString() const;
};

inline ResourceId TableResource(TableId table) {
  return ResourceId{ResourceKind::kTable, table, 0};
}

inline ResourceId RowResource(TableId table, int64_t row) {
  return ResourceId{ResourceKind::kRow, table, row};
}

struct ResourceIdHash {
  size_t operator()(const ResourceId& r) const {
    // 64-bit mix of (kind, table, row); splitmix-style finalizer.
    uint64_t h = static_cast<uint64_t>(r.row) * 0x9E3779B97F4A7C15ULL;
    h ^= (static_cast<uint64_t>(static_cast<uint32_t>(r.table)) << 1) |
         static_cast<uint64_t>(r.kind);
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<size_t>(h ^ (h >> 31));
  }
};

}  // namespace locktune

#endif  // LOCKTUNE_LOCK_RESOURCE_H_
