#include "lock/maxlocks_curve.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace locktune {

MaxlocksCurve::MaxlocksCurve(double p_max, double exponent,
                             int refresh_period)
    : p_max_(p_max), exponent_(exponent), refresh_period_(refresh_period) {
  LOCKTUNE_CHECK(p_max > 0.0 && p_max <= 100.0);
  LOCKTUNE_CHECK(exponent > 0.0);
  LOCKTUNE_CHECK(refresh_period > 0);
}

double MaxlocksCurve::Evaluate(double used_percent_of_max) const {
  const double x = std::clamp(used_percent_of_max, 0.0, 100.0);
  const double value = p_max_ * (1.0 - std::pow(x / 100.0, exponent_));
  // The paper drops lockPercentPerApplication "down to 1 when lock memory is
  // 100% of its maximum size": 1 % is the floor.
  return std::clamp(value, 1.0, p_max_);
}

bool MaxlocksCurve::OnLockRequest() {
  if (++requests_since_refresh_ >= refresh_period_) {
    requests_since_refresh_ = 0;
    dirty_ = true;
  }
  return dirty_;
}

double MaxlocksCurve::Current(double used_percent_of_max) {
  if (dirty_) {
    cached_percent_ = Evaluate(used_percent_of_max);
    dirty_ = false;
  }
  return cached_percent_;
}

}  // namespace locktune
