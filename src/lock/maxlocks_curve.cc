#include "lock/maxlocks_curve.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace locktune {

MaxlocksCurve::MaxlocksCurve(double p_max, double exponent,
                             int refresh_period)
    : p_max_(p_max), exponent_(exponent), refresh_period_(refresh_period) {
  LOCKTUNE_CHECK(p_max > 0.0 && p_max <= 100.0);
  LOCKTUNE_CHECK(exponent > 0.0);
  LOCKTUNE_CHECK(refresh_period > 0);
}

MaxlocksCurve::MaxlocksCurve(const MaxlocksCurve& other)
    : p_max_(other.p_max_),
      exponent_(other.exponent_),
      refresh_period_(other.refresh_period_),
      requests_since_refresh_(other.requests_since_refresh()),
      dirty_(other.dirty_.load(std::memory_order_relaxed)),
      cached_percent_(other.cached_percent_.load(std::memory_order_relaxed)) {}

MaxlocksCurve& MaxlocksCurve::operator=(const MaxlocksCurve& other) {
  p_max_ = other.p_max_;
  exponent_ = other.exponent_;
  refresh_period_ = other.refresh_period_;
  requests_since_refresh_.store(other.requests_since_refresh(),
                                std::memory_order_relaxed);
  dirty_.store(other.dirty_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  cached_percent_.store(other.cached_percent_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  return *this;
}

double MaxlocksCurve::Evaluate(double used_percent_of_max) const {
  const double x = std::clamp(used_percent_of_max, 0.0, 100.0);
  const double value = p_max_ * (1.0 - std::pow(x / 100.0, exponent_));
  // The paper drops lockPercentPerApplication "down to 1 when lock memory is
  // 100% of its maximum size": 1 % is the floor.
  return std::clamp(value, 1.0, p_max_);
}

bool MaxlocksCurve::OnLockRequest() {
  const int n =
      requests_since_refresh_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n >= refresh_period_) dirty_.store(true, std::memory_order_release);
  return dirty_.load(std::memory_order_acquire);
}

double MaxlocksCurve::Current(double used_percent_of_max) {
  // exchange() so exactly one concurrent caller performs the recomputation;
  // the counter reset here (not in OnLockRequest) is what keeps every
  // refresh interval exactly refresh_period_ requests long, including after
  // an Invalidate() or the initial computation.
  if (dirty_.load(std::memory_order_acquire) &&
      dirty_.exchange(false, std::memory_order_acq_rel)) {
    requests_since_refresh_.store(0, std::memory_order_relaxed);
    cached_percent_.store(Evaluate(used_percent_of_max),
                          std::memory_order_release);
  }
  return cached_percent_.load(std::memory_order_acquire);
}

}  // namespace locktune
