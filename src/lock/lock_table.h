// Sharded, pooled resource → LockHead table (the lock manager's `table_`).
//
// Two structural decisions keep the grant/release hot path off the heap
// (the shapes main-memory engines use for lock/latch state; cf. Larson et
// al., "High-Performance Concurrency Control Mechanisms for Main-Memory
// Databases" and the OptiQL lock-queue design):
//
//  * Sharding: the table is split into a power-of-two number of partitions
//    selected by the low bits of ResourceIdHash; each shard is a flat
//    open-addressing map (ResourceHashMap) probing on the bits above the
//    shard select. Shards keep individual probe arrays small and are the
//    unit a future per-shard latch would protect.
//
//  * Pooling: LockHead nodes live in slab-allocated arrays and are recycled
//    through a free list. A recycled head keeps its holder/waiter vector
//    capacity, so steady-state lock/unlock traffic allocates nothing; node
//    addresses are stable for the node's lifetime, which the lock manager
//    relies on while draining grant cascades.
//
// Not thread-safe; the owning LockManager serializes access.
#ifndef LOCKTUNE_LOCK_LOCK_TABLE_H_
#define LOCKTUNE_LOCK_LOCK_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "lock/lock_head.h"
#include "lock/resource.h"
#include "lock/resource_map.h"

namespace locktune {

class LockTable {
 public:
  // `shard_count` must be a power of two.
  explicit LockTable(int shard_count = kDefaultShards);

  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  static constexpr int kDefaultShards = 16;
  // Nodes per slab; slabs are never returned to the heap.
  static constexpr int kSlabNodes = 256;

  // Head for `resource`, or nullptr. Pointers stay valid until Erase.
  // The `hash` overloads take a precomputed ResourceIdHash so one request
  // that touches the table several times hashes its key once.
  LockHead* Find(const ResourceId& resource) {
    return Find(resource, ResourceIdHash{}(resource));
  }
  const LockHead* Find(const ResourceId& resource) const {
    return const_cast<LockTable*>(this)->Find(resource,
                                              ResourceIdHash{}(resource));
  }
  LockHead* Find(const ResourceId& resource, uint64_t hash);

  // Head for `resource`, creating an empty one (from the pool) if absent.
  LockHead& GetOrCreate(const ResourceId& resource) {
    return GetOrCreate(resource, ResourceIdHash{}(resource));
  }
  LockHead& GetOrCreate(const ResourceId& resource, uint64_t hash);

  // Inserts a fresh head for `resource`, which the caller has already
  // established is absent (skips the find GetOrCreate would repeat).
  LockHead& Create(const ResourceId& resource, uint64_t hash);

  // Removes `resource`'s head if present and empty, recycling the node.
  // Returns true when a head was removed. Single probe.
  bool EraseIfEmpty(const ResourceId& resource) {
    return EraseIfEmpty(resource, ResourceIdHash{}(resource));
  }
  bool EraseIfEmpty(const ResourceId& resource, uint64_t hash);

  // Calls fn(const ResourceId&, const LockHead&) for every head. Iteration
  // order is unspecified (shard/slot order).
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const auto& shard : shards_) {
      shard.ForEach([&fn](const ResourceId& res, const Node* node) {
        fn(res, node->head);
      });
    }
  }

  // Full-structure validation (paranoid mode / tests): shard occupancy sums
  // to size(), and every pooled node is either live in a shard or on the
  // free list (slab/pool conservation). O(total slots); returns OK or
  // INTERNAL naming the violated invariant.
  [[nodiscard]] Status CheckConsistency() const;

  // --- introspection (pool/shard gauges) ---
  int64_t size() const { return size_; }
  int shard_count() const { return static_cast<int>(shards_.size()); }
  // Heads in the most loaded shard (occupancy skew indicator).
  int64_t MaxShardSize() const;
  int64_t pool_free_nodes() const { return pool_free_; }
  int64_t pool_total_nodes() const {
    return static_cast<int64_t>(slabs_.size()) * kSlabNodes;
  }
  int64_t slab_count() const { return static_cast<int64_t>(slabs_.size()); }

 private:
  struct Node {
    LockHead head;
    Node* next_free = nullptr;
  };

  Node* AllocateNode();
  void RecycleNode(Node* node);

  std::vector<ResourceHashMap<Node*>> shards_;
  int shard_mask_ = 0;
  int64_t size_ = 0;

  std::vector<std::unique_ptr<Node[]>> slabs_;
  Node* free_list_ = nullptr;
  int64_t pool_free_ = 0;
};

}  // namespace locktune

#endif  // LOCKTUNE_LOCK_LOCK_TABLE_H_
