// Sharded, pooled resource → LockHead table (the lock manager's `table_`).
//
// Structural decisions that keep the grant/release hot path off the heap
// and make the shards independent units of concurrency (the shapes
// main-memory engines use for lock/latch state; cf. Larson et al.,
// "High-Performance Concurrency Control Mechanisms for Main-Memory
// Databases" and the OptiQL lock-queue design):
//
//  * Sharding: the table is split into a power-of-two number of partitions
//    selected by the low bits of ResourceIdHash; each shard is a flat
//    open-addressing directory probing on the bits above the shard select.
//    Shards keep individual probe arrays small and carry the per-shard
//    OptLatch the parallel execution mode acquires per resource.
//
//  * Atomic directory: each shard's resource → node map is an array of
//    atomic slots (packed key metadata, row, node pointer). Writers mutate
//    it under the shard latch's write side with the same linear-probe /
//    tombstone / backshift-to-empty algorithm as ResourceHashMap; optimistic
//    readers probe it with relaxed loads inside a ReadBegin/ReadValidate
//    section (OptProbe) and never take the latch. Rehashed-out arrays are
//    retired, not freed, until the table is destroyed, so a reader holding a
//    stale directory pointer reads stale-but-mapped memory and its version
//    validation discards the result (docs/LATCHES.md).
//
//  * Pooling: LockHead nodes live in slab-allocated arrays and are recycled
//    through a free list. A recycled head keeps its holder/waiter vector
//    capacity, so steady-state lock/unlock traffic allocates nothing; node
//    addresses are stable for the node's lifetime (and slabs outlive every
//    optimistic probe), which the lock manager relies on while draining
//    grant cascades.
//
//  * Per-shard pools: slabs and free lists are shard-local, so allocating or
//    recycling a node never touches state outside the shard being mutated —
//    holding ShardLatch(hash) is sufficient for every table operation on
//    that resource.
//
// Thread safety: the table itself takes no latches. In the default
// single-threaded mode the owning LockManager serializes all access. In
// parallel mode the manager holds ShardLatch(hash)'s write side around any
// mutating call touching that resource's shard, and uses OptProbe for
// latch-free reads; the cross-shard introspection calls (size,
// MaxShardSize, pool gauges, ForEach, CheckConsistency) are only legal in a
// serial region (under the manager's exclusive lock).
#ifndef LOCKTUNE_LOCK_LOCK_TABLE_H_
#define LOCKTUNE_LOCK_LOCK_TABLE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/status.h"
#include "lock/lock_head.h"
#include "lock/opt_latch.h"
#include "lock/resource.h"

namespace locktune {

class LockTable {
 public:
  // `shard_count` must be a power of two.
  explicit LockTable(int shard_count = kDefaultShards);

  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  static constexpr int kDefaultShards = 16;
  // Nodes per slab; slabs are never returned to the heap.
  static constexpr int kSlabNodes = 256;
  // Initial directory slots per shard (power of two).
  static constexpr size_t kInitialDirSlots = 16;

  // Head for `resource`, or nullptr. Pointers stay valid until Erase.
  // The `hash` overloads take a precomputed ResourceIdHash so one request
  // that touches the table several times hashes its key once.
  LockHead* Find(const ResourceId& resource) {
    return Find(resource, ResourceIdHash{}(resource));
  }
  const LockHead* Find(const ResourceId& resource) const {
    return const_cast<LockTable*>(this)->Find(resource,
                                              ResourceIdHash{}(resource));
  }
  LockHead* Find(const ResourceId& resource, uint64_t hash);

  // Head for `resource`, creating an empty one (from the pool) if absent.
  LockHead& GetOrCreate(const ResourceId& resource) {
    return GetOrCreate(resource, ResourceIdHash{}(resource));
  }
  LockHead& GetOrCreate(const ResourceId& resource, uint64_t hash);

  // Inserts a fresh head for `resource`, which the caller has already
  // established is absent (skips the find GetOrCreate would repeat).
  LockHead& Create(const ResourceId& resource, uint64_t hash);

  // Removes `resource`'s head if present and empty, recycling the node.
  // Returns true when a head was removed. Single probe.
  bool EraseIfEmpty(const ResourceId& resource) {
    return EraseIfEmpty(resource, ResourceIdHash{}(resource));
  }
  bool EraseIfEmpty(const ResourceId& resource, uint64_t hash);

  // The OptLatch striping `hash`'s shard. Parallel-mode callers hold its
  // write side (OptLatchWriteGuard) around any mutating
  // Find/GetOrCreate/Create/EraseIfEmpty on the resource, and use OptProbe
  // for latch-free reads. Lock ordering: never hold two shard latches at
  // once.
  OptLatch& ShardLatch(uint64_t hash) const {
    return shards_[hash & shard_mask_].latch;
  }

  // Which shard `hash` selects (the index ShardLatch guards). The profiler
  // uses this to attribute contention to individual shards.
  int ShardIndex(uint64_t hash) const {
    return static_cast<int>(hash & shard_mask_);
  }

  // One optimistic, latch-free probe of `resource`'s shard (docs/
  // LATCHES.md): sample the shard latch version, walk the atomic directory
  // with relaxed loads, snapshot the head's summary word, re-validate.
  // `valid` is false when a writer was active or ran during the probe — the
  // contents are then meaningless and the caller retries or pessimizes.
  struct OptProbeResult {
    bool valid = false;    // version validated; `found`/`summary` are real
    bool found = false;    // a head for `resource` exists
    uint32_t summary = 0;  // LockHead::opt_summary() snapshot when found
  };
  OptProbeResult OptProbe(const ResourceId& resource, uint64_t hash) const;

  // Calls fn(const ResourceId&, const LockHead&) for every head. Iteration
  // order is unspecified (shard/slot order). Serial regions only.
  // locklint: seqlock-writer(serial regions only per the contract above — no concurrent writer exists, so the relaxed loads cannot race)
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Shard& shard : shards_) {
      const Dir* dir = shard.dir.load(std::memory_order_relaxed);
      for (size_t i = 0; i <= dir->mask; ++i) {
        const DirSlot& slot = dir->slots[i];
        const uint64_t meta = slot.meta.load(std::memory_order_relaxed);
        if (MetaState(meta) != kSlotFull) continue;
        fn(SlotKey(slot),
           slot.node.load(std::memory_order_relaxed)->head);
      }
    }
  }

  // Full-structure validation (paranoid mode / tests): shard occupancy sums
  // to size(), every pooled node is either live in its shard or on that
  // shard's free list (per-shard slab/pool conservation), and every live
  // head's optimistic summary matches a recomputation. O(total slots);
  // returns OK or INTERNAL naming the violated invariant.
  [[nodiscard]] Status CheckConsistency() const;

  // --- introspection (pool/shard gauges; serial regions only) ---
  int64_t size() const;
  int shard_count() const { return static_cast<int>(shards_.size()); }
  // Heads in the most loaded shard (occupancy skew indicator).
  int64_t MaxShardSize() const;
  // Live-head count per shard, indexed by ShardIndex (heatmap input).
  std::vector<int64_t> ShardSizes() const;
  int64_t pool_free_nodes() const;
  int64_t pool_total_nodes() const;
  int64_t slab_count() const;
  // Directory arrays retired by rehashes and kept mapped for optimistic
  // readers (bounded: one per rehash, geometric capacities).
  int64_t retired_dir_count() const;

 private:
  struct Node {
    LockHead head;
    Node* next_free = nullptr;
  };

  // Slot states, packed into the meta word's top bits.
  static constexpr uint64_t kSlotEmpty = 0;
  static constexpr uint64_t kSlotTombstone = 1;
  static constexpr uint64_t kSlotFull = 2;

  // One directory slot. Every field is a relaxed atomic because optimistic
  // readers probe concurrently with a latched writer; version validation
  // discards torn multi-field snapshots, but each individual load must be
  // race-free. meta packs state(2) | kind(8) | table(32); zero-initialized
  // memory is an empty slot.
  struct DirSlot {
    std::atomic<uint64_t> meta{0};
    std::atomic<int64_t> row{0};
    std::atomic<Node*> node{nullptr};
  };

  static constexpr uint64_t PackMeta(uint64_t state, const ResourceId& key) {
    return (state << 48) |
           (static_cast<uint64_t>(static_cast<uint8_t>(key.kind)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(key.table));
  }
  static constexpr uint64_t MetaState(uint64_t meta) { return meta >> 48; }

  // locklint: seqlock-writer(helper called either under the shard latch write side or inside the caller's ReadBegin/ReadValidate section, which supplies the ordering)
  static bool SlotMatches(const DirSlot& slot, uint64_t meta,
                          const ResourceId& key) {
    return meta == PackMeta(kSlotFull, key) &&
           slot.row.load(std::memory_order_relaxed) == key.row;
  }

  // locklint: seqlock-writer(helper called either under the shard latch write side or inside the caller's ReadBegin/ReadValidate section, which supplies the ordering)
  static ResourceId SlotKey(const DirSlot& slot) {
    const uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    ResourceId key;
    key.kind = static_cast<ResourceKind>((meta >> 32) & 0xFF);
    key.table = static_cast<TableId>(static_cast<int32_t>(
        static_cast<uint32_t>(meta & 0xFFFFFFFFu)));
    key.row = slot.row.load(std::memory_order_relaxed);
    return key;
  }

  // A probe array. mask/slots are immutable after construction; the array
  // is retired (kept in dir_store) when a rehash replaces it, so readers
  // holding a stale pointer stay within mapped memory.
  struct Dir {
    explicit Dir(size_t capacity)
        : mask(capacity - 1), slots(std::make_unique<DirSlot[]>(capacity)) {}
    const size_t mask;
    const std::unique_ptr<DirSlot[]> slots;
  };

  // A shard owns its directory, its node pool, and the OptLatch striping
  // it. Slabs and free list are shard-local so every mutation is covered by
  // `latch`.
  struct Shard {
    // locklint: seqlock-writer(construction is single-threaded; the table is published to workers only afterwards, by the thread that starts them)
    explicit Shard(int hash_shift) : shift(hash_shift) {
      dir_store.push_back(std::make_unique<Dir>(kInitialDirSlots));
      dir.store(dir_store.back().get(), std::memory_order_relaxed);
    }

    // Current directory; readers load it once (acquire) per probe so mask
    // and slots always come from one array.
    std::atomic<Dir*> dir{nullptr};
    // Every directory ever created, current last. Rehashed-out arrays stay
    // here until destruction (optimistic readers may still be probing
    // them); total retired memory is a geometric series over the current
    // capacity.
    std::vector<std::unique_ptr<Dir>> dir_store;
    int64_t dir_size = 0;        // full slots
    int64_t dir_tombstones = 0;  // tombstoned slots
    const int shift;             // hash bits consumed by the shard select
    std::vector<std::unique_ptr<Node[]>> slabs;
    Node* free_list = nullptr;
    int64_t pool_free = 0;
    int64_t live = 0;  // heads currently in the directory
    mutable OptLatch latch;
  };

  static Node* AllocateNode(Shard& shard);
  static void RecycleNode(Shard& shard, Node* node);

  static constexpr size_t kNpos = ~static_cast<size_t>(0);
  // Writer-side probes (caller holds the latch's write side or is serial).
  static size_t ProbeFind(const Dir& dir, int shift, const ResourceId& key,
                          uint64_t hash);
  static void DirInsert(Shard& shard, const ResourceId& key, uint64_t hash,
                        Node* node);
  static void DirEraseIndex(Shard& shard, size_t index);
  static void DirRehash(Shard& shard);

  Shard& ShardFor(uint64_t hash) { return shards_[hash & shard_mask_]; }

  // deque: Shard is immovable (atomic/latch members) and needs stable
  // storage.
  std::deque<Shard> shards_;
  int shard_mask_ = 0;
};

}  // namespace locktune

#endif  // LOCKTUNE_LOCK_LOCK_TABLE_H_
