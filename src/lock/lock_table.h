// Sharded, pooled resource → LockHead table (the lock manager's `table_`).
//
// Three structural decisions keep the grant/release hot path off the heap
// and make the shards independent units of concurrency (the shapes
// main-memory engines use for lock/latch state; cf. Larson et al.,
// "High-Performance Concurrency Control Mechanisms for Main-Memory
// Databases" and the OptiQL lock-queue design):
//
//  * Sharding: the table is split into a power-of-two number of partitions
//    selected by the low bits of ResourceIdHash; each shard is a flat
//    open-addressing map (ResourceHashMap) probing on the bits above the
//    shard select. Shards keep individual probe arrays small and carry the
//    striped mutex the parallel execution mode locks per resource.
//
//  * Pooling: LockHead nodes live in slab-allocated arrays and are recycled
//    through a free list. A recycled head keeps its holder/waiter vector
//    capacity, so steady-state lock/unlock traffic allocates nothing; node
//    addresses are stable for the node's lifetime, which the lock manager
//    relies on while draining grant cascades.
//
//  * Per-shard pools: slabs and free lists are shard-local, so allocating or
//    recycling a node never touches state outside the shard being mutated —
//    holding ShardMutex(hash) is sufficient for every table operation on
//    that resource.
//
// Thread safety: the table itself performs no locking. In the default
// single-threaded mode the owning LockManager serializes all access. In
// parallel mode the manager holds ShardMutex(hash) around any call touching
// that resource's shard; the cross-shard introspection calls (size,
// MaxShardSize, pool gauges, ForEach, CheckConsistency) are only legal in a
// serial region (under the manager's exclusive lock).
#ifndef LOCKTUNE_LOCK_LOCK_TABLE_H_
#define LOCKTUNE_LOCK_LOCK_TABLE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "lock/lock_head.h"
#include "lock/resource.h"
#include "lock/resource_map.h"

namespace locktune {

class LockTable {
 public:
  // `shard_count` must be a power of two.
  explicit LockTable(int shard_count = kDefaultShards);

  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  static constexpr int kDefaultShards = 16;
  // Nodes per slab; slabs are never returned to the heap.
  static constexpr int kSlabNodes = 256;

  // Head for `resource`, or nullptr. Pointers stay valid until Erase.
  // The `hash` overloads take a precomputed ResourceIdHash so one request
  // that touches the table several times hashes its key once.
  LockHead* Find(const ResourceId& resource) {
    return Find(resource, ResourceIdHash{}(resource));
  }
  const LockHead* Find(const ResourceId& resource) const {
    return const_cast<LockTable*>(this)->Find(resource,
                                              ResourceIdHash{}(resource));
  }
  LockHead* Find(const ResourceId& resource, uint64_t hash);

  // Head for `resource`, creating an empty one (from the pool) if absent.
  LockHead& GetOrCreate(const ResourceId& resource) {
    return GetOrCreate(resource, ResourceIdHash{}(resource));
  }
  LockHead& GetOrCreate(const ResourceId& resource, uint64_t hash);

  // Inserts a fresh head for `resource`, which the caller has already
  // established is absent (skips the find GetOrCreate would repeat).
  LockHead& Create(const ResourceId& resource, uint64_t hash);

  // Removes `resource`'s head if present and empty, recycling the node.
  // Returns true when a head was removed. Single probe.
  bool EraseIfEmpty(const ResourceId& resource) {
    return EraseIfEmpty(resource, ResourceIdHash{}(resource));
  }
  bool EraseIfEmpty(const ResourceId& resource, uint64_t hash);

  // The striped mutex protecting `hash`'s shard. Parallel-mode callers hold
  // this around any Find/GetOrCreate/Create/EraseIfEmpty on the resource.
  // Lock ordering: never hold two shard mutexes at once.
  std::mutex& ShardMutex(uint64_t hash) const {
    return shards_[hash & shard_mask_].mu;
  }

  // Which shard `hash` selects (the index ShardMutex locks). The profiler
  // uses this to attribute contention to individual shards.
  int ShardIndex(uint64_t hash) const {
    return static_cast<int>(hash & shard_mask_);
  }

  // Calls fn(const ResourceId&, const LockHead&) for every head. Iteration
  // order is unspecified (shard/slot order). Serial regions only.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Shard& shard : shards_) {
      shard.map.ForEach([&fn](const ResourceId& res, const Node* node) {
        fn(res, node->head);
      });
    }
  }

  // Full-structure validation (paranoid mode / tests): shard occupancy sums
  // to size(), and every pooled node is either live in its shard or on that
  // shard's free list (per-shard slab/pool conservation). O(total slots);
  // returns OK or INTERNAL naming the violated invariant.
  [[nodiscard]] Status CheckConsistency() const;

  // --- introspection (pool/shard gauges; serial regions only) ---
  int64_t size() const;
  int shard_count() const { return static_cast<int>(shards_.size()); }
  // Heads in the most loaded shard (occupancy skew indicator).
  int64_t MaxShardSize() const;
  // Live-head count per shard, indexed by ShardIndex (heatmap input).
  std::vector<int64_t> ShardSizes() const;
  int64_t pool_free_nodes() const;
  int64_t pool_total_nodes() const;
  int64_t slab_count() const;

 private:
  struct Node {
    LockHead head;
    Node* next_free = nullptr;
  };

  // A shard owns its map, its node pool, and the mutex striping it. Slabs
  // and free list are shard-local so every mutation is covered by `mu`.
  struct Shard {
    explicit Shard(int hash_shift) : map(hash_shift) {}

    ResourceHashMap<Node*> map;
    std::vector<std::unique_ptr<Node[]>> slabs;
    Node* free_list = nullptr;
    int64_t pool_free = 0;
    int64_t live = 0;  // heads currently in `map`
    mutable std::mutex mu;
  };

  static Node* AllocateNode(Shard& shard);
  static void RecycleNode(Shard& shard, Node* node);

  Shard& ShardFor(uint64_t hash) { return shards_[hash & shard_mask_]; }

  // deque: Shard is immovable (std::mutex member) and needs stable storage.
  std::deque<Shard> shards_;
  int shard_mask_ = 0;
};

}  // namespace locktune

#endif  // LOCKTUNE_LOCK_LOCK_TABLE_H_
