// The lock manager: multigranularity locking with escalation and
// memory-aware growth (paper §2.2, §3.3, §3.5).
//
// Responsibilities:
//  * grant/queue table and row locks with the System R compatibility rules,
//    taking the required intent table lock before any row lock;
//  * account every granted or waiting request as one 64 B lock structure
//    allocated from the 128 KB block list;
//  * when the block list is exhausted, grow synchronously through a caller-
//    supplied callback (wired to database overflow memory by the engine);
//  * when an application exceeds its policy quota, or memory cannot grow,
//    escalate: convert the application's intent table lock on its most
//    row-locked table to S or X and release those row locks;
//  * maintain a FIFO "post" wait discipline (Figure 3) and detect deadlocks
//    through the waits-for graph.
//
// Thread safety: two-level locking (docs/CONCURRENCY.md). All classic logic
// runs under an exclusive hold of a reader-writer lock, exactly as the
// previous single-mutex design did. When parallel mode is enabled
// (SetParallelMode), Lock/ReleaseAll first try an opt-in fast path under a
// *shared* hold plus the per-shard LockTable OptLatch for the touched
// resource: grant-feasibility is pre-flighted with an optimistic
// version-validated probe (no latch), and only the mutating tail of a grant
// takes the latch's queued write side (docs/LATCHES.md); anything
// complicated — waits, conversions that queue, escalation, memory growth,
// grant cascades — bails out and retries on the exclusive path. Because
// shared and exclusive holds exclude each other, all pre-existing state
// remains race-free; only the state the fast path itself mutates (stats
// counters, block-list aggregates, lock-table shards, the curve cache) is
// atomic or latch-striped.
#ifndef LOCKTUNE_LOCK_LOCK_MANAGER_H_
#define LOCKTUNE_LOCK_LOCK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/sim_clock.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/units.h"
#include "lock/escalation_policy.h"
#include "lock/lock_event_monitor.h"
#include "lock/lock_head.h"
#include "lock/lock_mode.h"
#include "lock/lock_table.h"
#include "lock/resource.h"
#include "lock/resource_map.h"
#include "memory/block_list.h"

namespace locktune {

class MetricsRegistry;

// Outcome of a Lock() call, from the requesting application's viewpoint.
enum class LockOutcome {
  kGranted,      // the request (and any implied intent lock) is granted
  kWaiting,      // the application is blocked; poll IsBlocked()
  kOutOfMemory,  // no lock structure available and escalation freed nothing
};

struct LockResult {
  LockOutcome outcome = LockOutcome::kGranted;
  // True when this request triggered a lock escalation (completed or
  // initiated) somewhere in the system.
  bool escalated = false;
};

// One request in a batch (AcquireBatch).
// locklint: hot-column
struct BatchItem {
  ResourceId resource;
  LockMode mode = LockMode::kS;
};
static_assert(std::is_trivially_copyable_v<BatchItem>,
              "batch items are staged by value across the shard lease");

// Pull-source of a batch's lock requests. AcquireBatch consumes it lazily:
// Next() is called only after every previous item was granted, so a source
// backed by a workload RNG draws exactly the requests the equivalent
// one-Lock()-per-request loop would have drawn — a blocked or failed item
// ends the batch with no further draws.
class LockRequestSource {
 public:
  virtual ~LockRequestSource() = default;
  // The next request, or nullopt when the batch is exhausted.
  virtual std::optional<BatchItem> Next() = 0;
};

// Outcome of an AcquireBatch call. `outcome` describes the last item
// attempted: kGranted means the source was exhausted with every item
// granted; kWaiting/kOutOfMemory mean that item blocked/failed and the
// batch stopped there (`granted` counts the items granted before it).
struct BatchResult {
  int64_t granted = 0;
  LockOutcome outcome = LockOutcome::kGranted;
  bool escalated = false;
};

// One application's lock footprint, as reported by TopLockHolders.
struct AppLockUsage {
  AppId app = 0;
  int64_t held_structures = 0;
  bool blocked = false;
};

// Monotonic counters, readable at any time (stats() returns a snapshot).
struct LockManagerStats {
  int64_t lock_requests = 0;
  int64_t grants = 0;
  int64_t lock_waits = 0;             // requests that blocked
  int64_t escalations = 0;            // completed escalations
  int64_t exclusive_escalations = 0;  // escalated to an X table lock
  int64_t escalation_attempts = 0;
  int64_t deadlock_victims = 0;
  int64_t lock_timeouts = 0;  // waiters expired by ExpireTimedOutWaiters
  int64_t out_of_memory_failures = 0;
  int64_t sync_growth_blocks = 0;  // blocks added on the request path
  // Escalations taken because the application prefers escalation over lock
  // memory growth (§6.1 selective escalation).
  int64_t preferred_escalations = 0;
};

struct LockManagerOptions {
  // Initial lock memory (the LOCKLIST configuration), in 128 KB blocks.
  int64_t initial_blocks = 16;
  // Upper bound the lock memory may ever reach (maxLockMemory). The tuner
  // may update it later via set_max_lock_memory().
  Bytes max_lock_memory = 0;
  // Total database memory (used by SQL Server-style policies).
  Bytes database_memory = 0;
  // Synchronous growth: invoked with a block count when the lock list is
  // exhausted. Must return true and account the memory (e.g. take it from
  // database overflow) to permit growth. Null means no growth (static
  // configuration).
  std::function<bool(int64_t blocks)> grow_callback;
  // Escalation policy. Not owned; must outlive the manager. Required.
  EscalationPolicy* policy = nullptr;
  // Virtual clock for lock-wait timing. Optional; without it, timeouts and
  // the wait-time histogram are disabled.
  const SimClock* clock = nullptr;
  // DB2 LOCKTIMEOUT: how long a request may wait before the caller is told
  // to roll back. Negative = wait forever (the DB2 default).
  DurationMs lock_timeout = -1;
  // Optional lock event monitor (waits, escalations, timeouts, ...).
  // Borrowed; invoked under the manager's mutex — must be fast and must
  // not call back into the manager.
  LockEventMonitor* monitor = nullptr;
  // Lock table partitions (power of two). Shards bound probe-array size and
  // are the unit a future per-shard latch would protect.
  int table_shards = LockTable::kDefaultShards;
};

class LockManager {
 public:
  explicit LockManager(LockManagerOptions options);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Requests `mode` on `resource` for `app`. Row requests implicitly take
  // the intent table lock first. Re-requests by a holder are no-ops or
  // conversions. An application must not issue requests while blocked.
  LockResult Lock(AppId app, const ResourceId& resource, LockMode mode);

  // Requests every item `source` yields for `app`, in order, with the
  // per-item semantics of Lock() but the synchronization amortized over
  // the batch: the serial path takes the manager lock once for all items;
  // the parallel fast path takes the outer shared hold once and keeps the
  // per-shard write latch across consecutive same-shard grants (profiler
  // site kShardBatch). An item the fast path cannot grant is retried on
  // the exclusive path and, when granted there, the batch resumes.
  BatchResult AcquireBatch(AppId app, LockRequestSource& source);

  // Releases everything `app` holds or waits for (commit/abort under strict
  // two-phase locking), granting unblocked waiters.
  void ReleaseAll(AppId app);

  // Releases one granted resource (used by tests and internal escalation).
  [[nodiscard]] Status Release(AppId app, const ResourceId& resource);

  // True while `app` has a waiting request (possibly an escalation
  // conversion) that has not been granted.
  bool IsBlocked(AppId app) const;

  // Runs waits-for cycle detection; for each cycle picks the application
  // holding the fewest lock structures as victim. Victims are *reported*,
  // not aborted: the caller must ReleaseAll() each (and roll back its
  // transaction). Repeated calls without intervening ReleaseAll return the
  // same victims.
  std::vector<AppId> DetectDeadlocks();

  // Reports applications whose wait has exceeded the configured
  // lock_timeout (DB2's SQL0911N RC 68). Like deadlock victims they are
  // only reported; the caller rolls them back with ReleaseAll(). Requires
  // a clock and a non-negative lock_timeout; returns empty otherwise.
  std::vector<AppId> ExpireTimedOutWaiters();

  // Enables/disables the parallel fast path. Off by default: the manager
  // then behaves exactly like the single-threaded build (the deterministic
  // golden contract). ScenarioRunner turns it on for --threads > 1.
  void SetParallelMode(bool enabled);
  bool parallel_mode() const {
    return parallel_mode_.load(std::memory_order_relaxed);
  }

  // §6.1 selective escalation: applications marked escalation-preferred
  // escalate instead of growing lock memory when the lock list is full,
  // conserving memory for caching and sorting.
  void SetEscalationPreferred(AppId app, bool preferred);
  bool IsEscalationPreferred(AppId app) const;

  // --- tuning interface (used by the STMM lock memory tuner) ---

  // Adds `count` blocks of lock memory. The caller is responsible for the
  // memory accounting.
  void AddBlocks(int64_t count);

  // Removes `count` entirely-free blocks from the end of the list;
  // all-or-nothing (paper §2.2). FAILED_PRECONDITION when fewer than
  // `count` blocks are freeable.
  [[nodiscard]] Status TryRemoveBlocks(int64_t count);

  void set_max_lock_memory(Bytes bytes);
  Bytes max_lock_memory() const { return max_lock_memory_; }

  // --- introspection ---
  LockMemoryState MemoryState() const;
  // Snapshot of the monotonic counters (fields are atomics internally so
  // both execution modes share one accounting path).
  LockManagerStats stats() const;
  Bytes allocated_bytes() const;
  Bytes used_bytes() const;
  int64_t block_count() const;
  int64_t entirely_free_blocks() const;
  // Current lockPercentPerApplication as externalized by the policy.
  double CurrentMaxlocksPercent() const;
  // Lock structures held (granted + waiting) by `app`.
  int64_t HeldStructures(AppId app) const;
  // Most lock structures held by any one application, in one pass under
  // one guard (metric exports used to call HeldStructures per client,
  // which re-locked the manager once per application).
  int64_t MaxHeldStructures() const;
  // The `top_n` applications in [1, max_app_id] holding the most lock
  // structures (ties broken by ascending app id), including blocked
  // zero-holders. One pass under one guard: the snapshot probe used to
  // call HeldStructures + IsBlocked per client, which re-locked the
  // manager two to three times per application — a full stall at 10^6
  // connected applications (docs/SCALE.md).
  std::vector<AppLockUsage> TopLockHolders(int max_app_id, int top_n) const;
  // Granted mode of `app` on `resource` (kNone when not held).
  LockMode HeldMode(AppId app, const ResourceId& resource) const;
  int64_t waiting_app_count() const;
  // Distribution of completed lock-wait durations (ms). Only populated
  // when a clock was supplied. Unsynchronized view for serial regions
  // (tests, end-of-run reporting), hence outside the capability analysis.
  const Histogram& wait_time_histogram() const LT_NO_THREAD_SAFETY_ANALYSIS {
    return wait_times_;
  }
  // Verifies block list and per-app accounting invariants (for tests).
  [[nodiscard]] Status CheckConsistency() const;

  // Registers the lock metric family (`locktune_lock_*`): request/grant/
  // wait/escalation counters, memory and block-churn gauges, and the
  // wait-time histogram. Callback-based — the hot path is untouched; values
  // are read (under the manager mutex where needed) at Collect() time.
  void RegisterMetrics(MetricsRegistry* registry);

  // Registers the hot-path structure gauges (`locktune_lock_table_*`,
  // `locktune_lock_head_pool_*`, `locktune_lock_blocked_apps`): shard
  // occupancy, head-pool slab/free counts, and the blocked-application
  // count. Kept separate from RegisterMetrics so default runs keep the
  // pre-existing metric set (and byte-identical exports); the inspector
  // (`locktune_sim --inspect`) opts in.
  void RegisterInternalMetrics(MetricsRegistry* registry);

  // --- introspection into the table/pool (tests and gauges) ---
  int64_t lock_table_size() const;
  int64_t lock_table_max_shard_size() const;
  int lock_table_shard_count() const;
  // Live heads per shard, indexed by shard id. Serial regions only.
  std::vector<int64_t> lock_table_shard_sizes() const;
  int64_t head_pool_free_nodes() const;
  int64_t head_pool_slab_count() const;

 private:
  struct Continuation {
    ResourceId resource;
    LockMode mode;
  };

  // One granted resource in an application's held list. Erasing tombstones
  // the slot (O(1) through held_index) instead of shifting the vector;
  // grant order — which drives commit-time release order and therefore the
  // grant cascade — is preserved for the surviving entries.
  //
  // `head` back-references the resource's lock head (DB2 chains lock
  // requests to their lock block the same way): pooled head nodes are
  // pointer-stable and a head cannot be erased while this application still
  // holds it, so release and escalation sweeps skip the table probe.
  //
  // `mode` mirrors the granted mode of this application's holder entry
  // (kept in sync by NoteHeldMode at every conversion/escalation site).
  // AppState is owner-thread-confined, so the fast path answers "do I
  // already hold this, and does it cover the request?" without touching the
  // shard — the dominant re-request case costs zero shared memory.
  struct HeldSlot {
    ResourceId res;
    LockHead* head = nullptr;
    LockMode mode = LockMode::kNone;
    bool live = true;
  };

  struct AppState {
    std::vector<HeldSlot> held;  // granted resources in grant order, unique
    ResourceHashMap<uint32_t> held_index;  // resource -> index into held
    int32_t held_dead = 0;                 // tombstoned entries in held
    int64_t held_structures = 0;           // granted + waiting slots
    int64_t total_row_locks = 0;  // sum over row_locks_per_table
    std::unordered_map<TableId, int64_t> row_locks_per_table;
    bool waiting = false;
    ResourceId wait_resource;
    LockMode wait_mode = LockMode::kNone;
    bool wait_is_conversion = false;
    bool wait_is_escalation = false;  // complete escalation when granted
    TimeMs wait_since = 0;
    // Bumped on every wait start; timeout-queue entries referencing an
    // older epoch are stale and skipped.
    uint64_t wait_epoch = 0;
    std::optional<Continuation> continuation;
    // Single-entry cache of this application's granted table-lock mode
    // (kNone = known not held), so the per-row coverage check does not
    // re-probe the lock table on every request. Refreshed wherever this
    // application's table-lock holder entry changes; invalidated wholesale
    // by ReleaseAll.
    TableId cached_table = 0;
    LockMode cached_table_mode = LockMode::kNone;
    bool table_cache_valid = false;
    // MRU pointer into row_locks_per_table (values are pointer-stable until
    // their entry is erased), so the per-row-grant count bump skips the map
    // look-up when consecutive grants hit the same table. Nulled whenever
    // any entry may be erased.
    TableId row_cache_table = 0;
    int64_t* row_cache_count = nullptr;
  };

  // Pending LOCKTIMEOUT expiry, queued at wait start. Deadlines are
  // monotone (fixed lock_timeout), so the queue is deadline-ordered by
  // construction and expiry never scans non-expired waiters. Entries whose
  // wait ended early (grant, rollback, connection kill) are invalidated by
  // the wait_epoch bump at wait end, counted in timeout_stale_, and dropped
  // lazily — or eagerly when stale entries dominate (MaybeCompactTimeouts).
  struct TimeoutEntry {
    TimeMs deadline = 0;
    AppId app = 0;
    uint64_t epoch = 0;
  };

  // Mirror of LockManagerStats with atomic fields: the parallel fast path
  // bumps counters under a shared lock, concurrently with other fast
  // threads. Relaxed ordering — they are monotonic event counts, not
  // synchronization.
  struct AtomicStats {
    std::atomic<int64_t> lock_requests{0};
    std::atomic<int64_t> grants{0};
    std::atomic<int64_t> lock_waits{0};
    std::atomic<int64_t> escalations{0};
    std::atomic<int64_t> exclusive_escalations{0};
    std::atomic<int64_t> escalation_attempts{0};
    std::atomic<int64_t> deadlock_victims{0};
    std::atomic<int64_t> lock_timeouts{0};
    std::atomic<int64_t> out_of_memory_failures{0};
    std::atomic<int64_t> sync_growth_blocks{0};
    std::atomic<int64_t> preferred_escalations{0};
  };

  static void Bump(std::atomic<int64_t>& counter, int64_t n = 1) {
    counter.fetch_add(n, std::memory_order_relaxed);
  }

  enum class AcquireOutcome { kDone, kBlocked, kNoMemory };

  enum class FastOutcome { kGranted, kBail };

  struct AllocResult {
    LockBlock* slot = nullptr;
    // The requester is waiting on its own escalation conversion; the
    // request resumes as a continuation when it completes.
    bool blocked = false;
    // The allocation went beyond the free-list fast path (growth or victim
    // escalation), so lock-table heads may have been created or erased and
    // pointers obtained before the call are suspect.
    bool table_may_have_changed = false;
  };

  // Classic request path; runs under an exclusive hold of mu_. `counted` is
  // true when a bailed fast path already counted the request.
  LockResult LockExclusive(AppId app, const ResourceId& resource,
                           LockMode mode, bool counted) LT_REQUIRES(mu_);

  // --- parallel fast path (shared hold of mu_ + per-shard table mutexes).
  // Every function bails (nullopt / kBail) before mutating anything the
  // classic path would then redo; on a bail the caller retries exclusively.

  // RAII lease over at most one shard's write latch, letting a batch keep
  // the latch across consecutive grants that hash to the same shard.
  // Defined in lock_manager.cc.
  class ShardLease;

  // Uncontended grant attempt. Counts the request (the exclusive retry must
  // not count again). nullopt = bail to the classic path.
  std::optional<LockResult> FastLock(AppId app, const ResourceId& resource,
                                     LockMode mode) LT_EXCLUDES(mu_);

  // Runs the fast section of AcquireBatch under one shared hold of mu_ and
  // one ShardLease: drains `source` (via `pending`) until exhausted (true)
  // or an item bails (false; the item stays in `pending`, already counted,
  // for the caller's exclusive retry). Grants are accumulated in `result`.
  bool FastAcquireBatch(AppId app, LockRequestSource& source,
                        std::optional<BatchItem>& pending, BatchResult& result)
      LT_EXCLUDES(mu_);

  // One full fast-path request: row coverage check, intent-lock chain, then
  // the resource itself — FastLock and FastAcquireBatch share it. The lease
  // carries the shard latch between the intent and row grants (and across
  // batch items).
  FastOutcome FastTryOne(AppId app, AppState& state,
                         const ResourceId& resource, LockMode mode,
                         ShardLease& lease) LT_REQUIRES_SHARED(mu_);

  // Grant/convert `mode` on one resource. An already-held resource resolves
  // thread-locally through held_index/HeldSlot::mode; a new request is
  // pre-flighted with an optimistic probe (retry-then-pessimize) and only
  // the mutating grant takes the shard latch's write side — through
  // `lease`, so a latch already held for this shard is reused (and the
  // probe skipped: the latched re-check is authoritative). Bails on
  // anything that must queue, escalate, or grow memory.
  FastOutcome FastAcquireOne(AppId app, AppState& state,
                             const ResourceId& resource, LockMode mode,
                             ShardLease& lease) LT_REQUIRES_SHARED(mu_);

  // Granted table-lock mode via the AppState cache. Pure thread-local:
  // held_index membership plus HeldSlot::mode answer it without probing the
  // shared table.
  LockMode FastTableMode(AppState& state, TableId table)
      LT_REQUIRES_SHARED(mu_);

  // App state lookup/creation. A thread-local pointer cache (keyed by a
  // per-manager epoch) makes repeat lookups latch-free; only a thread's
  // first touch of an app takes apps_mu_. AppState pointers are stable
  // (apps_ entries are never erased).
  AppState& FastGetApp(AppId app) LT_REQUIRES_SHARED(mu_);

  // Commit/abort release when the app has no waiters behind any held lock
  // and no wait of its own; false = bail to the classic path. Waiters are
  // only enqueued under the exclusive lock, so the waiter sets observed
  // under the shared hold are frozen and the check-then-release is sound.
  bool FastReleaseAll(AppId app) LT_EXCLUDES(mu_);

  // Full acquisition chain for one request; may recurse for intent locks
  // and set wait state. `state` is GetApp(app); `escalated` reports any
  // escalation triggered.
  AcquireOutcome TryAcquire(AppId app, AppState& state,
                            const ResourceId& resource, LockMode mode,
                            bool* escalated) LT_REQUIRES(mu_);

  // Acquires `mode` on a single resource (no intent-chain handling).
  AcquireOutcome AcquireOne(AppId app, AppState& state,
                            const ResourceId& resource, LockMode mode,
                            bool* escalated) LT_REQUIRES(mu_);

  // Allocates one lock structure: from the block list, else by synchronous
  // growth, else by escalating the heaviest row-lock holders (immediately
  // when possible, otherwise by blocking the requester on its own
  // escalation).
  AllocResult AllocateStructure(AppId requester, bool* escalated)
      LT_REQUIRES(mu_);

  // Escalates `app`: converts its intent lock on the most row-locked table
  // to S or X and releases those row locks (a waiting app's wait table is
  // never selected — its conversion entry there must stay untouched).
  // Returns kDone when completed, kBlocked when the conversion had to
  // wait, kNoMemory when the app has no row locks to escalate. With
  // `only_if_immediate`, never blocks: returns kNoMemory instead (used
  // for victims other than the requester). With `silent_probe`, a failed
  // attempt is not counted in stats — the phase-2 convoy widening probes
  // waiting victims on every allocation failure, and charging each
  // hopeless probe would swamp `escalation_attempts` with retries of a
  // case the scan already knows is contended.
  AcquireOutcome EscalateApp(AppId app, bool only_if_immediate = false,
                             bool silent_probe = false)
      LT_REQUIRES(mu_);

  // Releases all of `app`'s row locks on `table` (escalation completion).
  void ReleaseRowLocksOnTable(AppId app, TableId table) LT_REQUIRES(mu_);

  // Grants eligible waiters on `resource` (and on any resources unlocked as
  // a consequence), processing the cascade to fixpoint.
  void ProcessQueue(const ResourceId& resource) LT_REQUIRES(mu_);

  // Called when `app`'s waiting request was granted: clears wait state,
  // completes escalation, and issues any continuation.
  void OnWaitGranted(AppId app, const ResourceId& resource) LT_REQUIRES(mu_);

  // Appends `resource` (whose lock head is `head`, granted in `mode`) to
  // the held list and indexes it. `hash` is the caller's precomputed
  // ResourceIdHash of `resource`.
  void AddHeldEntry(AppState& state, const ResourceId& resource,
                    uint64_t hash, LockHead* head, LockMode mode)
      LT_REQUIRES_SHARED(mu_);

  // Records `mode` as the held-slot mirror of `resource`'s granted mode.
  // Must accompany every SetHolderMode on a resource the app has in its
  // held list (conversion grants, escalation).
  static void NoteHeldMode(AppState& state, const ResourceId& resource,
                           uint64_t hash, LockMode mode) {
    uint32_t* idx = state.held_index.Find(resource, hash);
    LOCKTUNE_DCHECK(idx != nullptr && "converted resource not in held list");
    state.held[*idx].mode = mode;
  }

  // Tombstones `resource` in the held list (O(1) via held_index),
  // compacting when tombstones dominate.
  void EraseHeldEntry(AppState& state, const ResourceId& resource);

  void CompactHeld(AppState& state);

  AppState& GetApp(AppId app) LT_REQUIRES(mu_);

  LockHead* FindHead(const ResourceId& resource) LT_REQUIRES_SHARED(mu_);
  const LockHead* FindHead(const ResourceId& resource) const
      LT_REQUIRES_SHARED(mu_);

  // Granted mode of `app` on `resource` (kNone when not held); assumes the
  // mutex is held.
  LockMode HeldModeLockedInternal(AppId app, const ResourceId& resource) const
      LT_REQUIRES_SHARED(mu_);

  // Granted table-lock mode of `app` on `table`, served from the AppState
  // single-entry cache when possible.
  LockMode CachedTableMode(AppId app, AppState& state, TableId table) const
      LT_REQUIRES(mu_);

  // Records `mode` as `state`'s granted table-lock mode on `table` (call at
  // every site that grants, converts, or releases a table lock).
  static void NoteTableMode(AppState& state, TableId table, LockMode mode) {
    state.cached_table = table;
    state.cached_table_mode = mode;
    state.table_cache_valid = true;
  }

  // Counts one granted row lock on `table`, through the MRU entry pointer.
  static void BumpRowCount(AppState& state, TableId table) {
    if (state.row_cache_count != nullptr && state.row_cache_table == table) {
      ++*state.row_cache_count;
    } else {
      int64_t& count = state.row_locks_per_table[table];
      ++count;
      state.row_cache_table = table;
      state.row_cache_count = &count;
    }
    ++state.total_row_locks;
  }

  LockMemoryState MemoryStateLocked() const LT_REQUIRES_SHARED(mu_);

  void DrainWorkList() LT_REQUIRES(mu_);

  LockManagerOptions options_;
  Bytes max_lock_memory_;

  // Stamps wait-state entry, records it with the monitor.
  void MarkWaitStart(AppId app, AppState& state) LT_REQUIRES(mu_);

  // Ends `state`'s wait for timeout-queue purposes: bumps wait_epoch so any
  // queued entry is stale, and counts/compacts the staleness.
  void NoteWaitEnded(AppState& state) LT_REQUIRES(mu_);

  // Rebuilds the timeout queue without stale entries once they dominate
  // (amortized O(1) per ended wait).
  void MaybeCompactTimeouts() LT_REQUIRES(mu_);

  // Delivers an event to the configured monitor (no-op without one).
  void Emit(LockEventKind kind, AppId app, const ResourceId& resource,
            LockMode mode, int64_t value) LT_REQUIRES(mu_);

  // Reader-writer lock: exclusive for the classic path and every structural
  // mutation; shared for the parallel fast path. Rank: below the metrics
  // registry (whose Collect callbacks take this), above everything else in
  // the manager (common/lock_rank_table.h).
  mutable SharedMutex mu_{kLockRankManagerOuter, "LockManager::mu_"};
  // Serializes block-list slot alloc/free on the fast path. Ordering: a
  // shard latch may be held when taking alloc_mu_, never the reverse —
  // which is exactly what rank kLockRankAlloc > kLockRankShardLatch says.
  Mutex alloc_mu_{kLockRankAlloc, "LockManager::alloc_mu_"};
  // Guards apps_ map insertion/lookup between fast threads (element
  // pointers are stable; AppState itself is owner-thread-confined). Repeat
  // lookups bypass it through FastGetApp's thread-local cache. Never nested
  // with a shard latch (they share a rank, so nesting would abort in
  // paranoid mode).
  mutable Mutex apps_mu_{kLockRankAppsMap, "LockManager::apps_mu_"};
  // Unique per manager instance ever constructed; keys FastGetApp's
  // thread-local cache so a pointer cached against a destroyed manager (or
  // a new manager reusing the address) can never be served.
  const uint64_t manager_epoch_;
  std::atomic<bool> parallel_mode_{false};
  BlockList blocks_;
  LockTable table_;
  // apps_, blocks_, and table_ are OR-guarded: exclusive mu_ on the classic
  // path, or shared mu_ plus apps_mu_ / alloc_mu_ / the shard latch on the
  // fast path. Clang's capability analysis cannot express an either-or
  // guard, so they stay unannotated; locklint's lock-order pass and the
  // paranoid runtime rank checks still cover their locks.
  std::unordered_map<AppId, AppState> apps_;
  std::unordered_set<AppId> escalation_preferred_ LT_GUARDED_BY(mu_);
  std::deque<ResourceId> work_list_ LT_GUARDED_BY(mu_);
  bool draining_ LT_GUARDED_BY(mu_) = false;
  // Applications currently blocked on a wait. Maintained at wait start/end
  // so the per-tick deadlock/timeout checks are O(1) when nothing waits.
  int64_t blocked_count_ LT_GUARDED_BY(mu_) = 0;
  // Deadline-ordered pending timeouts (lazy deletion via wait_epoch).
  std::deque<TimeoutEntry> timeout_queue_ LT_GUARDED_BY(mu_);
  // Queue entries invalidated by an early wait end (grant, rollback, kill).
  int64_t timeout_stale_ LT_GUARDED_BY(mu_) = 0;
  AtomicStats stats_;
  Histogram wait_times_ LT_GUARDED_BY(mu_){{1, 10, 100, 1000, 10'000, 100'000}};
};

}  // namespace locktune

#endif  // LOCKTUNE_LOCK_LOCK_MANAGER_H_
