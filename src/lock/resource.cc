#include "lock/resource.h"

namespace locktune {

std::string ResourceId::ToString() const {
  if (kind == ResourceKind::kTable) {
    return "tab(" + std::to_string(table) + ")";
  }
  return "row(" + std::to_string(table) + "," + std::to_string(row) + ")";
}

}  // namespace locktune
