// Flight recorder: fixed-size per-thread ring buffers of recent lock,
// tuner, and fault events, dumped post-mortem when an invariant trips.
//
// Every recording thread owns a 256-event ring (registered on first use,
// like the profiler's slabs); a Record() is two index ops and a 40-byte
// struct store, cheap enough to leave on everywhere the profiler is
// compiled in (LOCKTUNE_PROFILE). Rings are dumped to stderr:
//
//   * automatically on any LOCKTUNE_CHECK / LOCKTUNE_CHECK_OK failure
//     (including paranoid-mode invariant violations), via the check-failure
//     hooks in common/check.h — every chaos/TSan failure comes with the
//     recent event history that led up to it;
//   * on deadlock-victim selection, at most once per process, when armed
//     (--flight-dump or runtime paranoid mode) — victims are routine in
//     contention scenarios, so unarmed runs stay quiet;
//   * on demand at end of run via locktune_sim --flight-dump.
//
// Times are virtual (SimClock ms): the recorder explains simulated
// behavior, so it speaks the simulation's clock. The dump path reads other
// threads' rings without synchronization — acceptable by design, since it
// only runs when the process is already aborting (or in a serial region).
#ifndef LOCKTUNE_TELEMETRY_FLIGHT_RECORDER_H_
#define LOCKTUNE_TELEMETRY_FLIGHT_RECORDER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace locktune {

// Kept layer-clean: telemetry cannot see lock/ or fault/ types, so events
// carry generic integer payloads. Producers map their enums here.
enum class FlightEventKind : uint8_t {
  kWaitBegin = 0,
  kWaitEnd,
  kEscalation,
  kDeadlockVictim,
  kTimeout,
  kOutOfLockMemory,
  kSynchronousGrowth,
  kTunerPass,
  kFaultInjection,
  kFaultAbsorbed,
  kFaultRecovery,
};
const char* FlightEventKindName(FlightEventKind kind);

struct FlightEvent {
  int64_t time_ms = 0;  // virtual time
  FlightEventKind kind = FlightEventKind::kWaitBegin;
  int32_t app = 0;
  int64_t a = 0;  // kind-specific (table id, tuner action, ...)
  int64_t b = 0;  // kind-specific (row id, value, ...)

  std::string ToString() const;
};

inline constexpr int kFlightRingCapacity = 256;

#if defined(LOCKTUNE_PROFILE)

// Appends to the calling thread's ring. Installs the check-failure dump
// hook on the first call process-wide.
void FlightRecord(FlightEventKind kind, int64_t time_ms, int32_t app,
                  int64_t a, int64_t b);

// Writes every thread's ring (oldest surviving event first) to `out`.
void DumpFlightRecorder(std::FILE* out);

// Arms the once-per-process automatic dump on deadlock-victim selection.
void ArmFlightDumpOnVictim(bool armed);
bool FlightDumpOnVictimArmed();

// True exactly once: the victim-dump rate limiter. The lock manager calls
// this when it selects victims; a true return means "dump now".
bool TakeVictimDumpBudget();

// Test hooks: the calling thread's surviving events in record order, and
// the total ever recorded by that thread (wraparound checks).
std::vector<FlightEvent> FlightEventsForTesting();
uint64_t FlightTotalForTesting();
void ResetFlightRecorderForTesting();

#else  // !LOCKTUNE_PROFILE — recording compiles to nothing.

inline void FlightRecord(FlightEventKind, int64_t, int32_t, int64_t,
                         int64_t) {}
inline void DumpFlightRecorder(std::FILE* out) {
  std::fprintf(out, "flight recorder: unavailable (LOCKTUNE_PROFILE off)\n");
}
inline void ArmFlightDumpOnVictim(bool) {}
inline bool FlightDumpOnVictimArmed() { return false; }
inline bool TakeVictimDumpBudget() { return false; }
inline std::vector<FlightEvent> FlightEventsForTesting() { return {}; }
inline uint64_t FlightTotalForTesting() { return 0; }
inline void ResetFlightRecorderForTesting() {}

#endif  // LOCKTUNE_PROFILE

}  // namespace locktune

#endif  // LOCKTUNE_TELEMETRY_FLIGHT_RECORDER_H_
