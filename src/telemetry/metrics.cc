#include "telemetry/metrics.h"

#include <algorithm>

namespace locktune {

double SnapshotQuantile(const HistogramSnapshot& snapshot, double q) {
  if (snapshot.total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(snapshot.total);
  int64_t cumulative = 0;
  for (size_t i = 0; i < snapshot.counts.size(); ++i) {
    const int64_t next = cumulative + snapshot.counts[i];
    if (static_cast<double>(next) >= target && snapshot.counts[i] > 0) {
      const double lo = i == 0 ? 0.0 : snapshot.upper_bounds[i - 1];
      const double hi = i < snapshot.upper_bounds.size()
                            ? snapshot.upper_bounds[i]
                            : lo * 2.0 + 1.0;
      const double frac = (target - static_cast<double>(cumulative)) /
                          static_cast<double>(snapshot.counts[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return snapshot.upper_bounds.empty() ? 0.0 : snapshot.upper_bounds.back();
}

HistogramSnapshot HistogramMetric::Snapshot() const {
  MutexLock guard(mu_);
  HistogramSnapshot out;
  out.upper_bounds = hist_.upper_bounds();
  out.counts = hist_.counts();
  out.total = hist_.total_count();
  out.sum = sum_;
  return out;
}

HistogramSnapshot SnapshotOf(const Histogram& hist) {
  HistogramSnapshot out;
  out.upper_bounds = hist.upper_bounds();
  out.counts = hist.counts();
  out.total = hist.total_count();
  // Estimate the sum from bucket midpoints; the overflow bucket contributes
  // at its lower bound.
  for (size_t i = 0; i < out.counts.size(); ++i) {
    if (out.counts[i] == 0) continue;
    const double lo = i == 0 ? 0.0 : out.upper_bounds[i - 1];
    const double hi =
        i < out.upper_bounds.size() ? out.upper_bounds[i] : lo;
    out.sum += static_cast<double>(out.counts[i]) * (lo + hi) / 2.0;
  }
  return out;
}

Counter* MetricsRegistry::AddCounter(const std::string& name,
                                     const std::string& help) {
  MutexLock guard(mu_);
  Entry& e = entries_[name];
  e = Entry{};
  e.help = help;
  e.kind = MetricKind::kCounter;
  e.counter = std::make_unique<Counter>();
  return e.counter.get();
}

Gauge* MetricsRegistry::AddGauge(const std::string& name,
                                 const std::string& help) {
  MutexLock guard(mu_);
  Entry& e = entries_[name];
  e = Entry{};
  e.help = help;
  e.kind = MetricKind::kGauge;
  e.gauge = std::make_unique<Gauge>();
  return e.gauge.get();
}

HistogramMetric* MetricsRegistry::AddHistogram(
    const std::string& name, const std::string& help,
    std::vector<double> upper_bounds) {
  MutexLock guard(mu_);
  Entry& e = entries_[name];
  e = Entry{};
  e.help = help;
  e.kind = MetricKind::kHistogram;
  e.histogram = std::make_unique<HistogramMetric>(std::move(upper_bounds));
  return e.histogram.get();
}

void MetricsRegistry::AddCallbackCounter(const std::string& name,
                                         const std::string& help,
                                         std::function<int64_t()> fn) {
  MutexLock guard(mu_);
  Entry& e = entries_[name];
  e = Entry{};
  e.help = help;
  e.kind = MetricKind::kCounter;
  e.counter_fn = std::move(fn);
}

void MetricsRegistry::AddCallbackGauge(const std::string& name,
                                       const std::string& help,
                                       std::function<double()> fn) {
  MutexLock guard(mu_);
  Entry& e = entries_[name];
  e = Entry{};
  e.help = help;
  e.kind = MetricKind::kGauge;
  e.gauge_fn = std::move(fn);
}

void MetricsRegistry::AddCallbackHistogram(
    const std::string& name, const std::string& help,
    std::function<HistogramSnapshot()> fn) {
  MutexLock guard(mu_);
  Entry& e = entries_[name];
  e = Entry{};
  e.help = help;
  e.kind = MetricKind::kHistogram;
  e.histogram_fn = std::move(fn);
}

bool MetricsRegistry::Has(const std::string& name) const {
  MutexLock guard(mu_);
  return entries_.count(name) != 0;
}

std::vector<MetricSample> MetricsRegistry::Collect() const {
  MutexLock guard(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricSample s;
    s.name = name;
    s.help = e.help;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(e.counter ? e.counter->value()
                                                : e.counter_fn());
        break;
      case MetricKind::kGauge:
        s.value = e.gauge ? e.gauge->value() : e.gauge_fn();
        break;
      case MetricKind::kHistogram:
        s.histogram = e.histogram ? e.histogram->Snapshot() : e.histogram_fn();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricFamily(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

}  // namespace locktune
