#include "telemetry/exporters.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace locktune {

namespace {

// Prometheus sample values: integers print without an exponent, other
// values with enough precision to round-trip sensibly.
std::string FormatValue(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string FormatBound(double b) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", b);
  return buf;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

std::string HistogramDigest(const HistogramSnapshot& h) {
  char buf[160];
  const double mean =
      h.total > 0 ? h.sum / static_cast<double>(h.total) : 0.0;
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.2f p50=%.2f p95=%.2f p99=%.2f",
                static_cast<long long>(h.total), mean,
                SnapshotQuantile(h, 0.50), SnapshotQuantile(h, 0.95),
                SnapshotQuantile(h, 0.99));
  return buf;
}

// HELP text escaping per the Prometheus exposition format: only backslash
// and newline are special on comment lines.
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

// Splits `name` into its family and an optional label body ("a=\"b\"",
// brace-free). Prometheus histogram series splice `le` into the existing
// label set, so `fam{site="x"}` becomes `fam_bucket{site="x",le="1"}`.
struct NameParts {
  std::string family;
  std::string labels;  // empty when the name carries no labels
};

NameParts SplitName(const std::string& name) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    return {name, ""};
  }
  return {name.substr(0, brace),
          name.substr(brace + 1, name.size() - brace - 2)};
}

std::string BucketSeries(const NameParts& parts, const std::string& le) {
  if (parts.labels.empty()) {
    return parts.family + "_bucket{le=\"" + le + "\"}";
  }
  return parts.family + "_bucket{" + parts.labels + ",le=\"" + le + "\"}";
}

std::string SuffixSeries(const NameParts& parts, const char* suffix) {
  if (parts.labels.empty()) return parts.family + suffix;
  return parts.family + suffix + "{" + parts.labels + "}";
}

}  // namespace

std::string CsvField(const std::string& field) {
  if (field.find_first_of(",\r\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string PrometheusLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

void WritePrometheus(const MetricsRegistry& registry, std::ostream& os) {
  std::string last_family;
  for (const MetricSample& s : registry.Collect()) {
    const std::string family = MetricFamily(s.name);
    if (family != last_family) {
      if (!s.help.empty()) {
        os << "# HELP " << family << " " << EscapeHelp(s.help) << "\n";
      }
      os << "# TYPE " << family << " " << KindName(s.kind) << "\n";
      last_family = family;
    }
    if (s.kind == MetricKind::kHistogram) {
      // Labeled histogram names (`fam{site="x"}`) splice `le` into the
      // label set; unlabeled names keep the historical byte-exact shape.
      const NameParts parts = SplitName(s.name);
      const HistogramSnapshot& h = s.histogram;
      int64_t cumulative = 0;
      for (size_t i = 0; i < h.counts.size(); ++i) {
        cumulative += h.counts[i];
        const std::string le = i < h.upper_bounds.size()
                                   ? FormatBound(h.upper_bounds[i])
                                   : "+Inf";
        os << BucketSeries(parts, le) << " " << cumulative << "\n";
      }
      os << SuffixSeries(parts, "_sum") << " " << FormatValue(h.sum) << "\n";
      os << SuffixSeries(parts, "_count") << " " << h.total << "\n";
    } else {
      os << s.name << " " << FormatValue(s.value) << "\n";
    }
  }
}

void WriteMetricsCsv(const MetricsRegistry& registry, std::ostream& os) {
  os << "metric,value\n";
  for (const MetricSample& s : registry.Collect()) {
    // Names can carry `{label="value"}` suffixes built from free-form
    // strings, so the name column gets RFC 4180 quoting; values are always
    // rendered numbers and never need it.
    if (s.kind == MetricKind::kHistogram) {
      const HistogramSnapshot& h = s.histogram;
      os << CsvField(s.name + "_count") << "," << h.total << "\n";
      os << CsvField(s.name + "_sum") << "," << FormatValue(h.sum) << "\n";
      os << CsvField(s.name + "_p50") << ","
         << FormatValue(SnapshotQuantile(h, 0.50)) << "\n";
      os << CsvField(s.name + "_p95") << ","
         << FormatValue(SnapshotQuantile(h, 0.95)) << "\n";
      os << CsvField(s.name + "_p99") << ","
         << FormatValue(SnapshotQuantile(h, 0.99)) << "\n";
    } else {
      os << CsvField(s.name) << "," << FormatValue(s.value) << "\n";
    }
  }
}

std::string RenderRegistryTable(const MetricsRegistry& registry) {
  const std::vector<MetricSample> samples = registry.Collect();
  size_t width = 0;
  for (const MetricSample& s : samples) {
    width = std::max(width, s.name.size());
  }
  std::ostringstream os;
  os << "Metrics registry (" << samples.size() << " metrics):\n";
  for (const MetricSample& s : samples) {
    os << "  " << s.name << std::string(width - s.name.size() + 2, ' ');
    if (s.kind == MetricKind::kHistogram) {
      os << HistogramDigest(s.histogram);
    } else {
      os << FormatValue(s.value);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace locktune
