// Crash attribution for tools: on an otherwise-silent fatal path — an
// unhandled exception (std::terminate) or a fatal signal (SIGSEGV, SIGBUS,
// SIGFPE, SIGILL, SIGABRT) — dump the flight-recorder rings to stderr and
// die with the default disposition, so the supervising process still sees
// the real signal (and ASan et al. still get their turn).
//
// This is the fuzzer's attribution contract: any crash a generated
// scenario provokes leaves the recent lock/tuner/fault event history on
// stderr instead of a bare "Segmentation fault". LOCKTUNE_CHECK failures
// already dump via the check-failure hooks (common/check.h); the handler
// coordinates with them so an abort after a CHECK does not dump twice.
#ifndef LOCKTUNE_TELEMETRY_CRASH_HANDLER_H_
#define LOCKTUNE_TELEMETRY_CRASH_HANDLER_H_

namespace locktune {

// Installs the terminate handler and fatal-signal handlers. Idempotent;
// call once from a tool's main() before running scenarios. Never installed
// implicitly by the library: tests that *expect* clean aborts (death
// tests) should not inherit it.
void InstallCrashAttribution();

}  // namespace locktune

#endif  // LOCKTUNE_TELEMETRY_CRASH_HANDLER_H_
