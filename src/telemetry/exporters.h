// Registry exporters: Prometheus text format, CSV, and an aligned
// operator-facing table (the inspector's registry section).
#ifndef LOCKTUNE_TELEMETRY_EXPORTERS_H_
#define LOCKTUNE_TELEMETRY_EXPORTERS_H_

#include <ostream>
#include <string>

#include "telemetry/metrics.h"

namespace locktune {

// Prometheus text exposition format: `# HELP` / `# TYPE` per family, then
// one sample line per metric; histograms expand to `_bucket{le=...}`,
// `_sum`, and `_count` series. Histogram metric names must not carry label
// suffixes.
void WritePrometheus(const MetricsRegistry& registry, std::ostream& os);

// `metric,value` CSV rows (header included), in registry order — the same
// comma-separated shape the bench plotting scripts consume. Histograms
// expand to `_count`, `_sum`, `_p50`, `_p95`, and `_p99` rows.
void WriteMetricsCsv(const MetricsRegistry& registry, std::ostream& os);

// Aligned `name  value` table for humans (db2pd-style). Histograms render
// as a one-line digest (count/mean/p50/p95/p99).
std::string RenderRegistryTable(const MetricsRegistry& registry);

}  // namespace locktune

#endif  // LOCKTUNE_TELEMETRY_EXPORTERS_H_
