// Registry exporters: Prometheus text format, CSV, and an aligned
// operator-facing table (the inspector's registry section).
#ifndef LOCKTUNE_TELEMETRY_EXPORTERS_H_
#define LOCKTUNE_TELEMETRY_EXPORTERS_H_

#include <ostream>
#include <string>
#include <string_view>

#include "telemetry/metrics.h"

namespace locktune {

// Minimally-quoted RFC 4180 CSV field: wrapped in double quotes (internal
// quotes doubled) only when the field contains a comma, CR, or LF — the
// characters that would corrupt row structure. A field with embedded quotes
// but no delimiter stays verbatim (it does not start with a quote, so RFC
// parsers read it literally); this keeps historical exports, whose metric
// names carry `{label="value"}` suffixes, byte-identical.
std::string CsvField(const std::string& field);

// Prometheus text-format label value escaping: backslash, double quote, and
// newline become \\, \", and \n. Producers building `name{label="value"}`
// metric names from free-form strings (heap names, config identifiers) must
// pass the value through this before splicing it into the name.
std::string PrometheusLabelValue(std::string_view value);

// Prometheus text exposition format: `# HELP` / `# TYPE` per family, then
// one sample line per metric; histograms expand to cumulative
// `_bucket{le=...}`, `_sum`, and `_count` series. Histogram names may
// carry `{label="value"}` suffixes: `fam{site="x"}` exports as
// `fam_bucket{site="x",le="..."}` / `fam_sum{site="x"}` /
// `fam_count{site="x"}`.
void WritePrometheus(const MetricsRegistry& registry, std::ostream& os);

// `metric,value` CSV rows (header included), in registry order — the same
// comma-separated shape the bench plotting scripts consume. Histograms
// expand to `_count`, `_sum`, `_p50`, `_p95`, and `_p99` rows.
void WriteMetricsCsv(const MetricsRegistry& registry, std::ostream& os);

// Aligned `name  value` table for humans (db2pd-style). Histograms render
// as a one-line digest (count/mean/p50/p95/p99).
std::string RenderRegistryTable(const MetricsRegistry& registry);

}  // namespace locktune

#endif  // LOCKTUNE_TELEMETRY_EXPORTERS_H_
