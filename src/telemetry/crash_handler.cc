#include "telemetry/crash_handler.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>

#include "common/check.h"
#include "telemetry/flight_recorder.h"

namespace locktune {

namespace {

// One dump per process: set by whichever fatal path fires first. The
// check-failure hook below sets it too, so a LOCKTUNE_CHECK abort (which
// already dumped through common/check.h) does not dump a second time when
// its SIGABRT reaches the signal handler. Plain sig_atomic_t, not a mutex:
// every reader is on the dying path.
volatile std::sig_atomic_t dumped = 0;

void DumpOnce(const char* why) {
  if (dumped != 0) return;
  dumped = 1;
  std::fprintf(stderr, "locktune: fatal: %s — flight recorder follows\n",
               why);
  // Not async-signal-safe in the strict sense (fprintf, ring walks), but
  // the process is already dying and the alternative is no attribution at
  // all; the flight recorder's dump path is documented to accept exactly
  // this trade (flight_recorder.h).
  DumpFlightRecorder(stderr);
}

void MarkDumpedByCheckFailure() {
  // common/check.h just ran the flight-recorder dump hook; suppress ours.
  dumped = 1;
}

[[noreturn]] void TerminateHandler() {
  const char* what = "std::terminate";
  if (std::exception_ptr eptr = std::current_exception()) {
    try {
      std::rethrow_exception(eptr);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "locktune: unhandled exception: %s\n", e.what());
      what = "unhandled exception";
    } catch (...) {
      what = "unhandled exception (non-std type)";
    }
  }
  DumpOnce(what);
  std::abort();
}

void FatalSignalHandler(int signo) {
  char why[64];
  std::snprintf(why, sizeof(why), "signal %d (%s)", signo,
                strsignal(signo));
  DumpOnce(why);
  // Restore the default disposition and re-raise so the process dies with
  // the true signal: wait(2) status, core dumps, and sanitizer reports all
  // behave as if we were never here.
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

}  // namespace

void InstallCrashAttribution() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  AddCheckFailureHook(&MarkDumpedByCheckFailure);
  std::set_terminate(&TerminateHandler);
  for (int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    std::signal(signo, &FatalSignalHandler);
  }
}

}  // namespace locktune
