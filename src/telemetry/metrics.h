// The unified metrics registry — locktune's telemetry spine.
//
// Every subsystem (lock manager, database memory, STMM controller, workload
// drivers) registers named counters, gauges, and histograms here, and the
// exporters (Prometheus text, CSV, inspector table) walk the registry to
// externalize them. Two registration styles are supported:
//
//  * owned metrics: the registry allocates the Counter/Gauge/HistogramMetric
//    and hands back a stable pointer the producer updates on its hot path;
//  * callback metrics: the producer registers a lambda that reads live state
//    (e.g. LockManager::allocated_bytes) — evaluated only at Collect() time,
//    so the instrumented path pays nothing.
//
// Metric names follow the Prometheus convention (`locktune_<area>_<what>`
// with `_total` for counters and `_bytes`/`_ms` unit suffixes). A name may
// carry a `{label="value"}` suffix (e.g. per-heap sizes); the exporters
// treat the part before `{` as the metric family.
//
// Registering a name twice replaces the earlier entry (last wins); callers
// holding pointers to a replaced owned metric must not use them afterwards.
#ifndef LOCKTUNE_TELEMETRY_METRICS_H_
#define LOCKTUNE_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/stats.h"
#include "common/thread_annotations.h"

namespace locktune {

// Monotonically increasing event count. Lock-free: producers on concurrent
// worker threads bump it with relaxed atomics (it is a statistic, not a
// synchronization point).
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Instantaneous value that can move both ways. Lock-free like Counter
// (atomic<double>::fetch_add is C++20).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Point-in-time copy of a histogram, as exporters consume it. `counts` has
// `upper_bounds.size() + 1` entries; the last is the overflow bucket.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  std::vector<int64_t> counts;
  int64_t total = 0;
  double sum = 0.0;
};

// Linear-interpolated quantile over a snapshot (same estimate as
// Histogram::Quantile). q is clamped to [0, 1]; empty snapshots yield 0.
double SnapshotQuantile(const HistogramSnapshot& snapshot, double q);

// A bucketed distribution plus a running sum (for Prometheus `_sum`).
// Observe/Snapshot are serialized by an internal mutex so concurrent
// producers cannot tear the bucket array against the running sum.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> upper_bounds)
      : hist_(std::move(upper_bounds)) {}

  void Observe(double x) {
    MutexLock guard(mu_);
    hist_.Add(x);
    sum_ += x;
  }

  int64_t total_count() const {
    MutexLock guard(mu_);
    return hist_.total_count();
  }
  // Unsynchronized view for single-threaded readers (tests, inspector after
  // the run); concurrent contexts must use Snapshot(). Deliberately outside
  // the capability analysis: the caller's serial phase, not mu_, is the
  // synchronization.
  const Histogram& histogram() const LT_NO_THREAD_SAFETY_ANALYSIS {
    return hist_;
  }
  HistogramSnapshot Snapshot() const;

 private:
  // Leaf rank: Observe runs under the manager lock (wait_times_) and under
  // the registry lock (Collect callbacks); it must take nothing else.
  mutable Mutex mu_{kLockRankLeaf, "HistogramMetric::mu_"};
  Histogram hist_ LT_GUARDED_BY(mu_);
  double sum_ LT_GUARDED_BY(mu_) = 0.0;
};

// Builds a HistogramSnapshot from a bare Histogram (no sum tracked: the sum
// is estimated from bucket midpoints, which is what a scraper would infer).
HistogramSnapshot SnapshotOf(const Histogram& hist);

enum class MetricKind { kCounter, kGauge, kHistogram };

// One evaluated metric, as returned by MetricsRegistry::Collect().
struct MetricSample {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kGauge;
  double value = 0.0;           // counters and gauges
  HistogramSnapshot histogram;  // kHistogram only
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Owned metrics: the returned pointer stays valid until the registry is
  // destroyed or the name is re-registered.
  Counter* AddCounter(const std::string& name, const std::string& help);
  Gauge* AddGauge(const std::string& name, const std::string& help);
  HistogramMetric* AddHistogram(const std::string& name,
                                const std::string& help,
                                std::vector<double> upper_bounds);

  // Callback metrics: evaluated at Collect() time.
  void AddCallbackCounter(const std::string& name, const std::string& help,
                          std::function<int64_t()> fn);
  void AddCallbackGauge(const std::string& name, const std::string& help,
                        std::function<double()> fn);
  void AddCallbackHistogram(const std::string& name, const std::string& help,
                            std::function<HistogramSnapshot()> fn);

  bool Has(const std::string& name) const;
  size_t size() const {
    MutexLock guard(mu_);
    return entries_.size();
  }

  // Evaluates every metric (callbacks included), ordered by name. Label
  // variants of one family (`name{...}`) sort adjacently. Callbacks run
  // under mu_ and may take subsystem locks (the lock manager's gauges take
  // its manager lock), which is why the registry lock is the OUTERMOST
  // rank in the hierarchy (common/lock_rank_table.h): callers must hold
  // nothing when collecting.
  std::vector<MetricSample> Collect() const LT_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string help;
    MetricKind kind = MetricKind::kGauge;
    // Exactly one of the owned pointers or callbacks is set.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
    std::function<int64_t()> counter_fn;
    std::function<double()> gauge_fn;
    std::function<HistogramSnapshot()> histogram_fn;
  };

  // Guards the entry map itself (registration vs. Collect). The metric
  // objects are individually thread-safe, and callbacks run under this
  // mutex — they must not re-enter the registry.
  mutable Mutex mu_{kLockRankMetricsRegistry, "MetricsRegistry::mu_"};
  std::map<std::string, Entry> entries_ LT_GUARDED_BY(mu_);
};

// The metric family: the name up to a `{label}` suffix, if any.
std::string MetricFamily(const std::string& name);

}  // namespace locktune

#endif  // LOCKTUNE_TELEMETRY_METRICS_H_
