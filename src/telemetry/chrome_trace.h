// Chrome trace-event JSON exporter (ui.perfetto.dev / chrome://tracing).
//
// The collector records complete ("X") and instant ("i") events on two
// synthetic processes:
//
//   pid 1  "sim (virtual time)"  — timestamps are SimClock milliseconds
//          converted to trace microseconds: tick spans, STMM tuning
//          passes, escalation/victim/timeout instants. Deterministic.
//   pid 2  "profiler (real time)" — timestamps are steady_clock
//          microseconds since the collector was armed: per-tick worker
//          spans in parallel mode, showing real load imbalance.
//
// Arming is a process-global pointer (SetGlobalTraceCollector): emission
// sites are per-tick or per-tuning-pass — cold — and guard themselves
// with a single relaxed pointer load, so an unarmed run pays one branch
// per site. The collector itself is unconditional code (no LOCKTUNE_PROFILE
// gate): it only runs when a sink was explicitly requested
// (locktune_sim --trace-profile).
#ifndef LOCKTUNE_TELEMETRY_CHROME_TRACE_H_
#define LOCKTUNE_TELEMETRY_CHROME_TRACE_H_

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace locktune {

inline constexpr int kTracePidSim = 1;
inline constexpr int kTracePidReal = 2;

// Well-known tids on the sim process.
inline constexpr int kTraceTidTicks = 0;
inline constexpr int kTraceTidStmm = 1;
inline constexpr int kTraceTidLockEvents = 2;

struct ChromeTraceEvent {
  std::string name;
  char ph = 'X';  // 'X' complete, 'i' instant, 'M' metadata
  int64_t ts_us = 0;
  int64_t dur_us = 0;     // 'X' only
  int pid = kTracePidSim;
  int tid = 0;
  std::string args_json;  // preformatted {"k":v,...} body, may be empty
};

class ChromeTraceCollector {
 public:
  ChromeTraceCollector();

  void Span(const std::string& name, int pid, int tid, int64_t ts_us,
            int64_t dur_us, const std::string& args_json = "");
  void Instant(const std::string& name, int pid, int tid, int64_t ts_us,
               const std::string& args_json = "");

  // Microseconds of real time since construction (the pid-2 clock).
  int64_t RealNowUs() const;

  size_t event_count() const;

  // The full trace-event JSON object ({"traceEvents": [...], ...}),
  // including process/thread-name metadata. Events keep emission order.
  void WriteJson(std::ostream& os) const;

 private:
  // Leaf rank: Span/Instant are called from tick loops and workers that
  // may hold subsystem locks above; the collector takes nothing else.
  mutable Mutex mu_{kLockRankLeaf, "ChromeTraceCollector::mu_"};
  std::vector<ChromeTraceEvent> events_ LT_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point t0_;
};

// Global arming. The caller owns the collector and must disarm (set
// nullptr) before destroying it.
void SetGlobalTraceCollector(ChromeTraceCollector* collector);
ChromeTraceCollector* GlobalTraceCollector();

// SimClock ms → trace us.
inline int64_t SimTimeToTraceUs(int64_t time_ms) { return time_ms * 1000; }

}  // namespace locktune

#endif  // LOCKTUNE_TELEMETRY_CHROME_TRACE_H_
