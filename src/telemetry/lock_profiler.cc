#include "telemetry/lock_profiler.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "telemetry/metrics.h"

namespace locktune {

const char* ProfileSiteName(ProfileSite site) {
  switch (site) {
    case ProfileSite::kFastShared:
      return "fast_shared";
    case ProfileSite::kOptRead:
      return "opt_read";
    case ProfileSite::kQueuedWrite:
      return "queued_write";
    case ProfileSite::kShardBatch:
      return "shard_batch";
    case ProfileSite::kExclusive:
      return "exclusive";
    case ProfileSite::kAlloc:
      return "alloc";
    case ProfileSite::kAppsMap:
      return "apps_map";
    case ProfileSite::kTickBarrier:
      return "tick_barrier";
  }
  return "unknown";
}

HistogramSnapshot ToHistogramSnapshot(const ProfileHistogramData& h) {
  HistogramSnapshot out;
  out.upper_bounds.reserve(kProfileHistBuckets - 1);
  out.counts.reserve(kProfileHistBuckets);
  // Bucket i's upper bound is 256·2^i ns; the last slab bucket doubles as
  // the snapshot's overflow bucket, so it contributes no bound.
  for (int i = 0; i < kProfileHistBuckets - 1; ++i) {
    out.upper_bounds.push_back(static_cast<double>(256ULL << i) / 1e6);
  }
  for (int i = 0; i < kProfileHistBuckets; ++i) {
    out.counts.push_back(static_cast<int64_t>(h.counts[i]));
  }
  out.total = static_cast<int64_t>(h.total);
  out.sum = static_cast<double>(h.sum_ns) / 1e6;
  return out;
}

#if defined(LOCKTUNE_PROFILE)

namespace profile_internal {

void ProfileHistogramSlab::Record(uint64_t ns, uint64_t weight) {
  // bit_width(ns) <= 8 → < 256 ns → bucket 0; each further bit doubles the
  // bucket's range. Values past the last bucket clamp into it (overflow).
  // `weight` scales a sampled observation back to population terms.
  const int width = std::bit_width(ns);
  const int bucket =
      width <= 8 ? 0 : std::min(width - 8, kProfileHistBuckets - 1);
  Bump(counts[bucket], weight);
  Bump(total, weight);
  Bump(sum_ns, ns * weight);
}

namespace {

// Slabs are owned here and never freed: a worker thread's counts must
// survive its exit (bench reps join their pools between measurements).
// Zero-initialized via value-init of the atomics' containing struct.
struct SlabRegistry {
  Mutex mu{kLockRankLeaf, "lock_profiler::mu"};
  std::vector<std::unique_ptr<ProfileSlab>> slabs LT_GUARDED_BY(mu);
};

SlabRegistry& Registry() {
  static SlabRegistry* registry = new SlabRegistry();
  return *registry;
}

}  // namespace

ProfileSlab* RegisterTlsSlab() {
  auto owned = std::make_unique<ProfileSlab>();
  ProfileSlab* raw = owned.get();
  SlabRegistry& reg = Registry();
  MutexLock guard(reg.mu);
  reg.slabs.push_back(std::move(owned));
  return raw;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// noinline: these are the cold 1-in-kProfileSamplePeriod paths; see the
// declaration comment in lock_profiler.h.
__attribute__((noinline)) void ObserveAcquire(ProfileSlab& slab, Mutex& mu,
                                              ProfileSite site, int shard) {
  RecordAcquire(slab, site, shard, kProfileSamplePeriod);
  if (!mu.TryLock()) {
    const uint64_t t0 = NowNs();
    mu.Lock();
    RecordContended(slab, site, shard, kProfileSamplePeriod);
    RecordWait(slab, site, shard, NowNs() - t0, kProfileSamplePeriod);
  }
}

__attribute__((noinline)) void ObserveAcquireShared(ProfileSlab& slab,
                                                    SharedMutex& mu,
                                                    ProfileSite site) {
  RecordAcquire(slab, site, kProfileNoShard, kProfileSamplePeriod);
  if (!mu.TryLockShared()) {
    const uint64_t t0 = NowNs();
    mu.LockShared();
    RecordContended(slab, site, kProfileNoShard, kProfileSamplePeriod);
    RecordWait(slab, site, kProfileNoShard, NowNs() - t0,
               kProfileSamplePeriod);
  }
}

__attribute__((noinline)) void ObserveAcquireExclusive(ProfileSlab& slab,
                                                       SharedMutex& mu,
                                                       ProfileSite site) {
  RecordAcquire(slab, site, kProfileNoShard, kProfileSamplePeriod);
  if (!mu.TryLock()) {
    const uint64_t t0 = NowNs();
    mu.Lock();
    RecordContended(slab, site, kProfileNoShard, kProfileSamplePeriod);
    RecordWait(slab, site, kProfileNoShard, NowNs() - t0,
               kProfileSamplePeriod);
  }
}

__attribute__((noinline)) void ObserveHold(ProfileSite site,
                                           uint64_t held_ns) {
  Tls().sites[static_cast<int>(site)].hold.Record(held_ns, 1);
}

}  // namespace profile_internal

namespace {

using profile_internal::ProfileHistogramSlab;
using profile_internal::ProfileSlab;
using profile_internal::Registry;

void Accumulate(ProfileHistogramData& into, const ProfileHistogramSlab& h) {
  for (int i = 0; i < kProfileHistBuckets; ++i) {
    into.counts[i] += h.counts[i].load(std::memory_order_relaxed);
  }
  into.total += h.total.load(std::memory_order_relaxed);
  into.sum_ns += h.sum_ns.load(std::memory_order_relaxed);
}

}  // namespace

ProfileSnapshot CaptureProfile() {
  ProfileSnapshot snap;
  snap.compiled_in = true;
  snap.shards.resize(kMaxProfiledShards);
  auto& reg = Registry();
  MutexLock guard(reg.mu);
  for (const auto& slab : reg.slabs) {
    for (int s = 0; s < kProfileSiteCount; ++s) {
      const auto& site = slab->sites[s];
      snap.sites[s].acquires += site.acquires.load(std::memory_order_relaxed);
      snap.sites[s].contended +=
          site.contended.load(std::memory_order_relaxed);
      Accumulate(snap.sites[s].wait, site.wait);
      Accumulate(snap.sites[s].hold, site.hold);
    }
    for (int s = 0; s < kMaxProfiledShards; ++s) {
      const auto& shard = slab->shards[s];
      snap.shards[s].acquires +=
          shard.acquires.load(std::memory_order_relaxed);
      snap.shards[s].contended +=
          shard.contended.load(std::memory_order_relaxed);
      snap.shards[s].wait_ns += shard.wait_ns.load(std::memory_order_relaxed);
    }
    snap.fast_grants += slab->fast_grants.load(std::memory_order_relaxed);
    snap.fast_bails += slab->fast_bails.load(std::memory_order_relaxed);
    snap.release_bails +=
        slab->release_bails.load(std::memory_order_relaxed);
    snap.opt_validation_fails +=
        slab->opt_validation_fails.load(std::memory_order_relaxed);
    snap.opt_pessimizes +=
        slab->opt_pessimizes.load(std::memory_order_relaxed);
  }
  return snap;
}

void ResetProfileForTesting() {
  auto& reg = Registry();
  MutexLock guard(reg.mu);
  for (const auto& slab : reg.slabs) {
    for (auto& site : slab->sites) {
      site.acquires.store(0, std::memory_order_relaxed);
      site.contended.store(0, std::memory_order_relaxed);
      for (auto* h : {&site.wait, &site.hold}) {
        for (auto& c : h->counts) c.store(0, std::memory_order_relaxed);
        h->total.store(0, std::memory_order_relaxed);
        h->sum_ns.store(0, std::memory_order_relaxed);
      }
    }
    for (auto& shard : slab->shards) {
      shard.acquires.store(0, std::memory_order_relaxed);
      shard.contended.store(0, std::memory_order_relaxed);
      shard.wait_ns.store(0, std::memory_order_relaxed);
    }
    slab->fast_grants.store(0, std::memory_order_relaxed);
    slab->fast_bails.store(0, std::memory_order_relaxed);
    slab->release_bails.store(0, std::memory_order_relaxed);
    slab->opt_validation_fails.store(0, std::memory_order_relaxed);
    slab->opt_pessimizes.store(0, std::memory_order_relaxed);
  }
}

void RegisterProfileMetrics(MetricsRegistry* registry, int shards) {
  for (int s = 0; s < kProfileSiteCount; ++s) {
    const ProfileSite site = static_cast<ProfileSite>(s);
    const std::string label =
        std::string("{site=\"") + ProfileSiteName(site) + "\"}";
    registry->AddCallbackCounter(
        "locktune_profile_acquires_total" + label,
        "latch acquisitions through this site",
        [s] {
          return static_cast<int64_t>(CaptureProfile().sites[s].acquires);
        });
    registry->AddCallbackCounter(
        "locktune_profile_contended_total" + label,
        "latch acquisitions that had to wait (sampled estimate)",
        [s] {
          return static_cast<int64_t>(CaptureProfile().sites[s].contended);
        });
    registry->AddCallbackHistogram(
        "locktune_profile_wait_ms" + label,
        "contended latch acquire-wait durations (sampled)",
        [s] { return ToHistogramSnapshot(CaptureProfile().sites[s].wait); });
    registry->AddCallbackHistogram(
        "locktune_profile_hold_ms" + label,
        "latch hold durations (sampled)",
        [s] { return ToHistogramSnapshot(CaptureProfile().sites[s].hold); });
  }
  registry->AddCallbackCounter(
      "locktune_profile_fast_grants_total",
      "Lock() requests served entirely on the parallel fast path",
      [] { return static_cast<int64_t>(CaptureProfile().fast_grants); });
  registry->AddCallbackCounter(
      "locktune_profile_fast_bails_total",
      "fast-path requests that bailed to the exclusive path",
      [] { return static_cast<int64_t>(CaptureProfile().fast_bails); });
  registry->AddCallbackCounter(
      "locktune_profile_release_bails_total",
      "FastReleaseAll calls that bailed to the classic release",
      [] { return static_cast<int64_t>(CaptureProfile().release_bails); });
  registry->AddCallbackCounter(
      "locktune_profile_opt_validation_fails_total",
      "optimistic shard probes whose version validation failed",
      [] {
        return static_cast<int64_t>(CaptureProfile().opt_validation_fails);
      });
  registry->AddCallbackCounter(
      "locktune_profile_opt_pessimizes_total",
      "optimistic shard probes abandoned after the retry budget",
      [] { return static_cast<int64_t>(CaptureProfile().opt_pessimizes); });
  const int capped = std::min(shards, kMaxProfiledShards);
  for (int s = 0; s < capped; ++s) {
    // Two-digit shard ids keep label variants of the family in numeric
    // order under the registry's lexicographic collection.
    char label[32];
    std::snprintf(label, sizeof(label), "{shard=\"%02d\"}", s);
    registry->AddCallbackCounter(
        std::string("locktune_profile_shard_acquires_total") + label,
        "shard-latch write acquisitions attributed to this shard",
        [s] {
          return static_cast<int64_t>(CaptureProfile().shards[s].acquires);
        });
    registry->AddCallbackCounter(
        std::string("locktune_profile_shard_contended_total") + label,
        "contended shard-latch acquisitions on this shard (sampled estimate)",
        [s] {
          return static_cast<int64_t>(CaptureProfile().shards[s].contended);
        });
    registry->AddCallbackGauge(
        std::string("locktune_profile_shard_wait_ms_total") + label,
        "estimated contended wait on this shard's latch",
        [s] {
          return static_cast<double>(CaptureProfile().shards[s].wait_ns) /
                 1e6;
        });
  }
}

#else  // !LOCKTUNE_PROFILE

ProfileSnapshot CaptureProfile() {
  ProfileSnapshot snap;
  snap.shards.resize(kMaxProfiledShards);
  return snap;
}

void ResetProfileForTesting() {}

void RegisterProfileMetrics(MetricsRegistry*, int) {}

#endif  // LOCKTUNE_PROFILE

}  // namespace locktune
