// Lock-path contention profiler: per-site and per-shard attribution of
// where latch time goes (acquire waits, hold times, fast-path bails).
//
// Design (docs/OBSERVABILITY.md has the full rationale):
//
//  * Compile-gated by LOCKTUNE_PROFILE (a CMake option, ON by default).
//    When OFF every guard below degrades to the plain std guard it wraps
//    and every counter call inlines to nothing — the hot paths carry zero
//    instrumentation, which the CI profile-smoke job proves by byte-
//    comparing goldens across both builds.
//
//  * Thread-local accumulation. Each thread owns a ProfileSlab (registered
//    once, on first use, under a mutex); all hot-path updates are relaxed
//    atomic stores into that slab, so instrumentation never contends on
//    shared cache lines. Aggregation (CaptureProfile) walks the slab list
//    in a serial region — the tick barrier's serial phase, after a bench's
//    workers joined, or at inspect time.
//
//  * Everything is sampled. 1 in kProfileSamplePeriod guard acquisitions
//    is observed: the acquire is counted, a try_lock-first probe detects
//    contention, and a contended probe times the blocking lock() with two
//    steady_clock reads — all recorded at the sample period's weight, so
//    every profile counter is a population-scale estimate. The other 255
//    of 256 acquisitions execute a TLS load, one tick increment, a
//    predictable branch, and then *exactly* a plain lock(): no counter
//    traffic, no clock read, and no second CAS on a hot mutex line (a
//    failed try_lock steals the line in exclusive state, slowing the
//    holder's unlock). Sampled bumps land before the acquisition, outside
//    the critical section, where a saturated shard would pay them once
//    per op globally. Hold times ride the same wheel at an offset phase;
//    fast-path notes (one TLS bump) and ProfileTimer stay exact.
//
//  * Single-writer slabs use plain load+store bumps, not fetch_add: a
//    relaxed fetch_add still compiles to a locked RMW on x86 (~20 cycles),
//    which at several bumps per acquire was the dominant instrumentation
//    cost. The owning thread is the only writer, so load+1+store is safe
//    and compiles to a plain add; concurrent aggregation reads are
//    slightly stale statistics, which is fine.
//
// The profiler is process-global: multiple LockManagers in one process
// (tests, benches) share it. That is the right shape for attribution — the
// question is "where does this process's wall-clock go" — and tests that
// need isolation call ResetProfileForTesting().
#ifndef LOCKTUNE_TELEMETRY_LOCK_PROFILER_H_
#define LOCKTUNE_TELEMETRY_LOCK_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace locktune {

class MetricsRegistry;
struct HistogramSnapshot;

// Instrumented latch-acquisition contexts. The names track the lock
// manager's concurrency design (docs/CONCURRENCY.md, docs/LATCHES.md):
// kFastShared is the outer shared_mutex taken shared on the parallel fast
// path, kExclusive is the same mutex taken exclusively (classic path and
// bail-to-exclusive retries), kOptRead the optimistic version-validated
// shard probes (acquires = probes, contended = validation failures),
// kQueuedWrite the per-shard OptLatch write acquisitions, kShardBatch the
// same latches when acquired by the batched request path (AcquireBatch's
// shard lease, amortized over consecutive same-shard grants), kAlloc the
// block-list slot guard, kAppsMap the app-state map guard, and
// kTickBarrier the scenario runner's per-tick worker barriers.
enum class ProfileSite : uint8_t {
  kFastShared = 0,
  kOptRead,
  kQueuedWrite,
  kShardBatch,
  kExclusive,
  kAlloc,
  kAppsMap,
  kTickBarrier,
};
inline constexpr int kProfileSiteCount = 8;
const char* ProfileSiteName(ProfileSite site);

// Shards above this fold into the last slot (the default table has 16).
inline constexpr int kMaxProfiledShards = 64;
inline constexpr int kProfileNoShard = -1;

// Power-of-two nanosecond buckets: bucket 0 is < 256 ns, bucket i covers
// [256·2^(i-1), 256·2^i), and the last bucket is the overflow (~>1 s).
inline constexpr int kProfileHistBuckets = 24;

// 1 in this many guard acquisitions is observed (acquire count, contention
// probe, wait timing); observations are recorded with this weight so all
// profile counters, sums, and histogram totals estimate the full
// population. Power of two, shared with hold sampling (one wheel, offset
// phases). Fast-path notes and ProfileTimer stay exact.
inline constexpr uint64_t kProfileSamplePeriod = 256;

// --- aggregated (read-side) view; compiled in every build so renderers
// and exporters build against one shape ---

struct ProfileHistogramData {
  uint64_t counts[kProfileHistBuckets] = {};
  uint64_t total = 0;
  uint64_t sum_ns = 0;
};

// Counters are sampled, weight-compensated estimates (multiples of
// kProfileSamplePeriod); ProfileTimer sites are exact. `contended` can
// overshoot `acquires` only through weight granularity at tiny counts.
struct SiteProfile {
  uint64_t acquires = 0;
  uint64_t contended = 0;
  ProfileHistogramData wait;  // contended acquire-wait durations (sampled)
  ProfileHistogramData hold;  // sampled critical-section holds
};

// Sampled, weight-compensated estimates, like SiteProfile.
struct ShardProfile {
  uint64_t acquires = 0;
  uint64_t contended = 0;
  uint64_t wait_ns = 0;
};

struct ProfileSnapshot {
  bool compiled_in = false;  // false in LOCKTUNE_PROFILE=OFF builds
  SiteProfile sites[kProfileSiteCount];
  std::vector<ShardProfile> shards;  // kMaxProfiledShards entries
  uint64_t fast_grants = 0;    // Lock() served entirely on the fast path
  uint64_t fast_bails = 0;     // fast path bailed to the exclusive path
  uint64_t release_bails = 0;  // FastReleaseAll bailed to the classic path
  // OptLatch optimistic-read outcomes (exact, like the fast-path notes):
  // probes whose version validation failed (a writer ran during the probe),
  // and probes abandoned after kOptReadRetries failures (the caller
  // pessimized to the write latch or the exclusive path).
  uint64_t opt_validation_fails = 0;
  uint64_t opt_pessimizes = 0;
};

// Walks all thread slabs (including those of exited threads). Callers must
// be in a serial region relative to the writers they want a consistent
// view of; concurrent capture is safe but reads a moving target.
ProfileSnapshot CaptureProfile();

// Zeroes every slab. Tests and bench reps only; racing writers tolerated
// (their in-flight increments land in the fresh epoch).
void ResetProfileForTesting();

constexpr bool ProfileCompiledIn() {
#if defined(LOCKTUNE_PROFILE)
  return true;
#else
  return false;
#endif
}

// Converts a profile histogram to the registry snapshot shape, bounds in
// milliseconds (256 ns = 0.000256 ms up through ~1 s, then overflow).
HistogramSnapshot ToHistogramSnapshot(const ProfileHistogramData& h);

// Registers the locktune_profile_* family: per-site acquire/contended
// counters, wait/hold histograms, fast-path grant/bail counters, and
// per-shard attribution for `shards` shard ids. Opt-in (the sim's
// --profile-metrics / --inspect flags): registering changes the export,
// and default --metrics-out runs must stay byte-identical. No-op when the
// profiler is compiled out.
void RegisterProfileMetrics(MetricsRegistry* registry, int shards);

#if defined(LOCKTUNE_PROFILE)

namespace profile_internal {

// One thread's accumulator. Fields are relaxed atomics: the owning thread
// is the only writer, aggregation is the only concurrent reader, and the
// values are statistics, not synchronization.
// Single-writer increment: plain add, no locked RMW (see header comment).
inline void Bump(std::atomic<uint64_t>& c, uint64_t n = 1) {
  c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}

struct ProfileHistogramSlab {
  std::atomic<uint64_t> counts[kProfileHistBuckets];
  std::atomic<uint64_t> total;
  std::atomic<uint64_t> sum_ns;
  void Record(uint64_t ns, uint64_t weight);
};

struct SiteSlab {
  std::atomic<uint64_t> acquires;
  std::atomic<uint64_t> contended;
  ProfileHistogramSlab wait;
  ProfileHistogramSlab hold;
};

struct ShardSlab {
  std::atomic<uint64_t> acquires;
  std::atomic<uint64_t> contended;
  std::atomic<uint64_t> wait_ns;
};

struct ProfileSlab {
  SiteSlab sites[kProfileSiteCount];
  ShardSlab shards[kMaxProfiledShards];
  std::atomic<uint64_t> fast_grants;
  std::atomic<uint64_t> fast_bails;
  std::atomic<uint64_t> release_bails;
  std::atomic<uint64_t> opt_validation_fails;
  std::atomic<uint64_t> opt_pessimizes;
  // Sampling wheel: owner-thread only, no atomicity needed. One counter
  // drives both wait probing (phase 0) and hold timing (phase 32) so a
  // guard pays a single increment.
  uint64_t sample_tick = 0;
};

// Allocates and registers the calling thread's slab (cold, first use).
ProfileSlab* RegisterTlsSlab();

// The calling thread's slab. Inline so every guard compiles down to a
// TLS load instead of an out-of-line call.
inline ProfileSlab& Tls() {
  thread_local ProfileSlab* slab = RegisterTlsSlab();
  return *slab;
}

uint64_t NowNs();

inline bool SampleWait(uint64_t tick) {
  return (tick & (kProfileSamplePeriod - 1)) == 0;
}

inline bool SampleHold(uint64_t tick) {
  return (tick & (kProfileSamplePeriod - 1)) ==
         kProfileSamplePeriod / 2;
}

inline void RecordContended(ProfileSlab& slab, ProfileSite site, int shard,
                            uint64_t weight) {
  Bump(slab.sites[static_cast<int>(site)].contended, weight);
  if (shard != kProfileNoShard) {
    Bump(slab.shards[shard & (kMaxProfiledShards - 1)].contended, weight);
  }
}

// A sampled (weighted) wait observation; the matching RecordContended is
// the caller's responsibility.
inline void RecordWait(ProfileSlab& slab, ProfileSite site, int shard,
                       uint64_t wait_ns, uint64_t weight) {
  slab.sites[static_cast<int>(site)].wait.Record(wait_ns, weight);
  if (shard != kProfileNoShard) {
    Bump(slab.shards[shard & (kMaxProfiledShards - 1)].wait_ns,
         wait_ns * weight);
  }
}

inline void RecordAcquire(ProfileSlab& slab, ProfileSite site, int shard,
                          uint64_t weight) {
  Bump(slab.sites[static_cast<int>(site)].acquires, weight);
  if (shard != kProfileNoShard) {
    Bump(slab.shards[shard & (kMaxProfiledShards - 1)].acquires, weight);
  }
}

// Cold out-of-line observers (defined in lock_profiler.cc, marked
// noinline there): the sampled 1-in-kProfileSamplePeriod observation —
// acquire count, try_lock contention probe, timed blocking lock — and
// the sampled hold recording. Keeping these out of line keeps the guard
// inline path down to a TLS load, a tick increment, and two predictable
// branches; inlining the probe at every call site bloats the lock
// manager's hot functions enough to show up as real overhead.
void ObserveAcquire(ProfileSlab& slab, Mutex& mu, ProfileSite site,
                    int shard) LT_ACQUIRE(mu);
void ObserveAcquireShared(ProfileSlab& slab, SharedMutex& mu,
                          ProfileSite site) LT_ACQUIRE_SHARED(mu);
void ObserveAcquireExclusive(ProfileSlab& slab, SharedMutex& mu,
                             ProfileSite site) LT_ACQUIRE(mu);
void ObserveHold(ProfileSite site, uint64_t held_ns);

}  // namespace profile_internal

// RAII guard over locktune::Mutex with wait/hold attribution. Drop-in
// for MutexLock at instrumented sites; `shard` additionally routes the
// wait into per-shard attribution.
class LT_SCOPED_CAPABILITY ProfiledMutexGuard {
 public:
  ProfiledMutexGuard(Mutex& mu, ProfileSite site,
                     int shard = kProfileNoShard) LT_ACQUIRE(mu)
      : mu_(mu), site_(site), shard_(shard) {
    using namespace profile_internal;
    ProfileSlab& slab = Tls();
    const uint64_t tick = slab.sample_tick++;
    if (SampleWait(tick)) [[unlikely]] {
      ObserveAcquire(slab, mu_, site_, shard_);
    } else {
      mu_.Lock();
    }
    if (SampleHold(tick)) [[unlikely]] hold_t0_ = NowNs();
  }
  ~ProfiledMutexGuard() LT_RELEASE() {
    if (hold_t0_ != 0) [[unlikely]] {
      const uint64_t held = profile_internal::NowNs() - hold_t0_;
      mu_.Unlock();
      profile_internal::ObserveHold(site_, held);
    } else {
      mu_.Unlock();
    }
  }
  ProfiledMutexGuard(const ProfiledMutexGuard&) = delete;
  ProfiledMutexGuard& operator=(const ProfiledMutexGuard&) = delete;

 private:
  Mutex& mu_;
  ProfileSite site_;
  int shard_;
  uint64_t hold_t0_ = 0;
};

// Shared (reader) acquisition of a locktune::SharedMutex.
class LT_SCOPED_CAPABILITY ProfiledSharedGuard {
 public:
  ProfiledSharedGuard(SharedMutex& mu, ProfileSite site) LT_ACQUIRE_SHARED(mu)
      : mu_(mu), site_(site) {
    using namespace profile_internal;
    ProfileSlab& slab = Tls();
    const uint64_t tick = slab.sample_tick++;
    if (SampleWait(tick)) [[unlikely]] {
      ObserveAcquireShared(slab, mu_, site_);
    } else {
      mu_.LockShared();
    }
    if (SampleHold(tick)) [[unlikely]] hold_t0_ = NowNs();
  }
  ~ProfiledSharedGuard() LT_RELEASE_GENERIC() {
    if (hold_t0_ != 0) [[unlikely]] {
      const uint64_t held = profile_internal::NowNs() - hold_t0_;
      mu_.UnlockShared();
      profile_internal::ObserveHold(site_, held);
    } else {
      mu_.UnlockShared();
    }
  }
  ProfiledSharedGuard(const ProfiledSharedGuard&) = delete;
  ProfiledSharedGuard& operator=(const ProfiledSharedGuard&) = delete;

 private:
  SharedMutex& mu_;
  ProfileSite site_;
  uint64_t hold_t0_ = 0;
};

// Exclusive (writer) acquisition of a locktune::SharedMutex.
class LT_SCOPED_CAPABILITY ProfiledExclusiveGuard {
 public:
  ProfiledExclusiveGuard(SharedMutex& mu, ProfileSite site) LT_ACQUIRE(mu)
      : mu_(mu), site_(site) {
    using namespace profile_internal;
    ProfileSlab& slab = Tls();
    const uint64_t tick = slab.sample_tick++;
    if (SampleWait(tick)) [[unlikely]] {
      ObserveAcquireExclusive(slab, mu_, site_);
    } else {
      mu_.Lock();
    }
    if (SampleHold(tick)) [[unlikely]] hold_t0_ = NowNs();
  }
  ~ProfiledExclusiveGuard() LT_RELEASE() {
    if (hold_t0_ != 0) [[unlikely]] {
      const uint64_t held = profile_internal::NowNs() - hold_t0_;
      mu_.Unlock();
      profile_internal::ObserveHold(site_, held);
    } else {
      mu_.Unlock();
    }
  }
  ProfiledExclusiveGuard(const ProfiledExclusiveGuard&) = delete;
  ProfiledExclusiveGuard& operator=(const ProfiledExclusiveGuard&) = delete;

 private:
  SharedMutex& mu_;
  ProfileSite site_;
  uint64_t hold_t0_ = 0;
};

// Times an arbitrary region (barrier waits) into a site's wait histogram;
// every timed region counts as a contended acquire of that site.
class ProfileTimer {
 public:
  explicit ProfileTimer(ProfileSite site)
      : site_(site), t0_(profile_internal::NowNs()) {}
  ~ProfileTimer() {
    using namespace profile_internal;
    ProfileSlab& slab = Tls();
    // Barrier waits are cold (per tick), so they are counted and timed
    // exactly (weight 1), unlike the sampled guard probes.
    RecordAcquire(slab, site_, kProfileNoShard, 1);
    RecordContended(slab, site_, kProfileNoShard, 1);
    RecordWait(slab, site_, kProfileNoShard, NowNs() - t0_, 1);
  }
  ProfileTimer(const ProfileTimer&) = delete;
  ProfileTimer& operator=(const ProfileTimer&) = delete;

 private:
  ProfileSite site_;
  uint64_t t0_;
};

inline void ProfileNoteFastGrant() {
  profile_internal::Bump(profile_internal::Tls().fast_grants);
}
inline void ProfileNoteFastBail() {
  profile_internal::Bump(profile_internal::Tls().fast_bails);
}
inline void ProfileNoteReleaseBail() {
  profile_internal::Bump(profile_internal::Tls().release_bails);
}

// Optimistic-read notes (exact, one TLS bump each — the probe itself is a
// handful of relaxed loads, so sampled observation would cost more than it
// saves). A probe counts one kOptRead acquire; a validation failure
// additionally counts as a contended kOptRead acquire; a pessimize marks
// the retry budget running out.
inline void ProfileNoteOptRead() {
  profile_internal::ProfileSlab& slab = profile_internal::Tls();
  profile_internal::Bump(
      slab.sites[static_cast<int>(ProfileSite::kOptRead)].acquires);
}
inline void ProfileNoteOptValidationFail() {
  profile_internal::ProfileSlab& slab = profile_internal::Tls();
  profile_internal::Bump(
      slab.sites[static_cast<int>(ProfileSite::kOptRead)].contended);
  profile_internal::Bump(slab.opt_validation_fails);
}
inline void ProfileNoteOptPessimize() {
  profile_internal::Bump(profile_internal::Tls().opt_pessimizes);
}

#else  // !LOCKTUNE_PROFILE — every guard is the plain lock it wraps,
       // every counter a no-op; no clock is ever read.

class LT_SCOPED_CAPABILITY ProfiledMutexGuard {
 public:
  ProfiledMutexGuard(Mutex& mu, ProfileSite, int = kProfileNoShard)
      LT_ACQUIRE(mu)
      : mu_(mu) {
    mu_.Lock();
  }
  ~ProfiledMutexGuard() LT_RELEASE() { mu_.Unlock(); }
  ProfiledMutexGuard(const ProfiledMutexGuard&) = delete;
  ProfiledMutexGuard& operator=(const ProfiledMutexGuard&) = delete;

 private:
  Mutex& mu_;
};

class LT_SCOPED_CAPABILITY ProfiledSharedGuard {
 public:
  ProfiledSharedGuard(SharedMutex& mu, ProfileSite) LT_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ProfiledSharedGuard() LT_RELEASE_GENERIC() { mu_.UnlockShared(); }
  ProfiledSharedGuard(const ProfiledSharedGuard&) = delete;
  ProfiledSharedGuard& operator=(const ProfiledSharedGuard&) = delete;

 private:
  SharedMutex& mu_;
};

class LT_SCOPED_CAPABILITY ProfiledExclusiveGuard {
 public:
  ProfiledExclusiveGuard(SharedMutex& mu, ProfileSite) LT_ACQUIRE(mu)
      : mu_(mu) {
    mu_.Lock();
  }
  ~ProfiledExclusiveGuard() LT_RELEASE() { mu_.Unlock(); }
  ProfiledExclusiveGuard(const ProfiledExclusiveGuard&) = delete;
  ProfiledExclusiveGuard& operator=(const ProfiledExclusiveGuard&) = delete;

 private:
  SharedMutex& mu_;
};

class ProfileTimer {
 public:
  explicit ProfileTimer(ProfileSite) {}
};

inline void ProfileNoteFastGrant() {}
inline void ProfileNoteFastBail() {}
inline void ProfileNoteReleaseBail() {}
inline void ProfileNoteOptRead() {}
inline void ProfileNoteOptValidationFail() {}
inline void ProfileNoteOptPessimize() {}

#endif  // LOCKTUNE_PROFILE

}  // namespace locktune

#endif  // LOCKTUNE_TELEMETRY_LOCK_PROFILER_H_
