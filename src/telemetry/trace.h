// Structured decision traces — the machine-readable `db2pd -stmm` analogue.
//
// A TraceRecord is one timestamped event (a tuning pass, a lock event, a
// scenario milestone) with typed key/value fields, rendered as one JSON
// object per line (JSONL). The STMM controller emits one record per tuning
// pass capturing its inputs, the chosen action, and a human-readable *why*;
// the lock manager's events are bridged in via TraceEventMonitor
// (lock/lock_trace_bridge.h). Timestamps are SimClock virtual time, so
// traces line up with the sampled series and the stderr log.
#ifndef LOCKTUNE_TELEMETRY_TRACE_H_
#define LOCKTUNE_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/sim_clock.h"
#include "common/thread_annotations.h"

namespace locktune {

// Escapes `s` for inclusion inside a JSON string literal (quotes not
// included).
std::string JsonEscape(std::string_view s);

// One trace event. Fields keep insertion order; values are rendered to
// their JSON form as they are added.
class TraceRecord {
 public:
  TraceRecord(TimeMs time, std::string kind)
      : time_ms_(time), kind_(std::move(kind)) {}

  TraceRecord& Str(std::string key, std::string_view value);
  TraceRecord& Int(std::string key, int64_t value);
  TraceRecord& Real(std::string key, double value);
  TraceRecord& Bool(std::string key, bool value);

  TimeMs time_ms() const { return time_ms_; }
  const std::string& kind() const { return kind_; }

  // Rendered JSON value of `key` (e.g. `"GROW"` or `42`), or nullptr when
  // absent. Intended for tests and the inspector.
  const std::string* Find(std::string_view key) const;

  // `{"t_ms":1234,"kind":"tuning_pass",...}`.
  std::string ToJson() const;

 private:
  struct Field {
    std::string key;
    std::string json_value;
  };

  TimeMs time_ms_ = 0;
  std::string kind_;
  std::vector<Field> fields_;
};

// Receives trace records. Implementations must tolerate records arriving
// from under the lock manager's mutex: be fast, never call back into the
// producing subsystem. In parallel mode records can arrive from several
// worker threads; Append must be thread-safe (both implementations below
// serialize internally).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Append(const TraceRecord& record) = 0;
  virtual void Flush() {}
};

// Writes one JSON object per line to a stream (borrowed).
class JsonlTraceWriter : public TraceSink {
 public:
  explicit JsonlTraceWriter(std::ostream* os) : os_(os) {}

  void Append(const TraceRecord& record) override;
  void Flush() override;

  int64_t records_written() const {
    return records_.load(std::memory_order_relaxed);
  }

 private:
  // Leaf rank: Append runs from under the lock manager's mutex (the trace
  // bridge) and must take nothing underneath.
  Mutex mu_{kLockRankLeaf, "JsonlTraceWriter::mu_"};
  std::ostream* os_ LT_PT_GUARDED_BY(mu_);
  std::atomic<int64_t> records_{0};
};

// Buffers records in memory (tests, inspector).
class MemoryTraceSink : public TraceSink {
 public:
  void Append(const TraceRecord& record) override {
    MutexLock guard(mu_);
    records_.push_back(record);
  }

  // Unsynchronized view: read only after producers have quiesced (end of
  // run / end of tick) — the serial phase, not mu_, is the
  // synchronization, so this stays outside the capability analysis.
  const std::vector<TraceRecord>& records() const
      LT_NO_THREAD_SAFETY_ANALYSIS {
    return records_;
  }

 private:
  Mutex mu_{kLockRankLeaf, "MemoryTraceSink::mu_"};
  std::vector<TraceRecord> records_ LT_GUARDED_BY(mu_);
};

}  // namespace locktune

#endif  // LOCKTUNE_TELEMETRY_TRACE_H_
