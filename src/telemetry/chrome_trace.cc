#include "telemetry/chrome_trace.h"

#include <atomic>
#include <cstdio>

#include "common/mutex.h"

namespace locktune {

namespace {

std::atomic<ChromeTraceCollector*> g_collector{nullptr};

// JSON string escaping for event names (the args body is caller-built from
// trusted constant keys and numeric values).
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

ChromeTraceCollector::ChromeTraceCollector()
    : t0_(std::chrono::steady_clock::now()) {}

void ChromeTraceCollector::Span(const std::string& name, int pid, int tid,
                                int64_t ts_us, int64_t dur_us,
                                const std::string& args_json) {
  MutexLock guard(mu_);
  events_.push_back({name, 'X', ts_us, dur_us, pid, tid, args_json});
}

void ChromeTraceCollector::Instant(const std::string& name, int pid, int tid,
                                   int64_t ts_us,
                                   const std::string& args_json) {
  MutexLock guard(mu_);
  events_.push_back({name, 'i', ts_us, 0, pid, tid, args_json});
}

int64_t ChromeTraceCollector::RealNowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

size_t ChromeTraceCollector::event_count() const {
  MutexLock guard(mu_);
  return events_.size();
}

void ChromeTraceCollector::WriteJson(std::ostream& os) const {
  MutexLock guard(mu_);
  std::vector<std::string> lines;
  lines.reserve(events_.size() + 5);
  const auto meta = [&lines](int pid, int tid, const char* which,
                             const std::string& name) {
    lines.push_back("{\"name\":\"" + std::string(which) +
                    "\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
                    ",\"tid\":" + std::to_string(tid) +
                    ",\"args\":{\"name\":" + JsonString(name) + "}}");
  };
  meta(kTracePidSim, 0, "process_name", "sim (virtual time)");
  meta(kTracePidReal, 0, "process_name", "profiler (real time)");
  meta(kTracePidSim, kTraceTidTicks, "thread_name", "ticks");
  meta(kTracePidSim, kTraceTidStmm, "thread_name", "stmm");
  meta(kTracePidSim, kTraceTidLockEvents, "thread_name", "lock events");
  for (const ChromeTraceEvent& e : events_) {
    std::string line = "{\"name\":" + JsonString(e.name) + ",\"ph\":\"" +
                       e.ph + std::string("\",\"ts\":") +
                       std::to_string(e.ts_us);
    if (e.ph == 'X') line += ",\"dur\":" + std::to_string(e.dur_us);
    if (e.ph == 'i') line += ",\"s\":\"t\"";
    line += ",\"pid\":" + std::to_string(e.pid) +
            ",\"tid\":" + std::to_string(e.tid);
    if (!e.args_json.empty()) line += ",\"args\":" + e.args_json;
    line += "}";
    lines.push_back(std::move(line));
  }
  os << "{\"traceEvents\":[\n";
  for (size_t i = 0; i < lines.size(); ++i) {
    os << lines[i] << (i + 1 < lines.size() ? ",\n" : "\n");
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void SetGlobalTraceCollector(ChromeTraceCollector* collector) {
  g_collector.store(collector, std::memory_order_release);
}

ChromeTraceCollector* GlobalTraceCollector() {
  return g_collector.load(std::memory_order_acquire);
}

}  // namespace locktune
