#include "telemetry/trace.h"

#include <cmath>
#include <cstdio>

namespace locktune {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string RenderDouble(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

TraceRecord& TraceRecord::Str(std::string key, std::string_view value) {
  fields_.push_back({std::move(key), "\"" + JsonEscape(value) + "\""});
  return *this;
}

TraceRecord& TraceRecord::Int(std::string key, int64_t value) {
  fields_.push_back({std::move(key), std::to_string(value)});
  return *this;
}

TraceRecord& TraceRecord::Real(std::string key, double value) {
  fields_.push_back({std::move(key), RenderDouble(value)});
  return *this;
}

TraceRecord& TraceRecord::Bool(std::string key, bool value) {
  fields_.push_back({std::move(key), value ? "true" : "false"});
  return *this;
}

const std::string* TraceRecord::Find(std::string_view key) const {
  for (const Field& f : fields_) {
    if (f.key == key) return &f.json_value;
  }
  return nullptr;
}

std::string TraceRecord::ToJson() const {
  std::string out = "{\"t_ms\":" + std::to_string(time_ms_) +
                    ",\"kind\":\"" + JsonEscape(kind_) + "\"";
  for (const Field& f : fields_) {
    out += ",\"" + JsonEscape(f.key) + "\":" + f.json_value;
  }
  out += "}";
  return out;
}

void JsonlTraceWriter::Append(const TraceRecord& record) {
  if (os_ == nullptr) return;
  const std::string line = record.ToJson();  // render outside the lock
  MutexLock guard(mu_);
  *os_ << line << '\n';
  records_.fetch_add(1, std::memory_order_relaxed);
}

void JsonlTraceWriter::Flush() {
  MutexLock guard(mu_);
  if (os_ != nullptr) os_->flush();
}

}  // namespace locktune
