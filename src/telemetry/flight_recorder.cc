#include "telemetry/flight_recorder.h"

#include <atomic>
#include <memory>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace locktune {

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kWaitBegin:
      return "wait_begin";
    case FlightEventKind::kWaitEnd:
      return "wait_end";
    case FlightEventKind::kEscalation:
      return "escalation";
    case FlightEventKind::kDeadlockVictim:
      return "deadlock_victim";
    case FlightEventKind::kTimeout:
      return "timeout";
    case FlightEventKind::kOutOfLockMemory:
      return "out_of_lock_memory";
    case FlightEventKind::kSynchronousGrowth:
      return "sync_growth";
    case FlightEventKind::kTunerPass:
      return "tuner_pass";
    case FlightEventKind::kFaultInjection:
      return "fault_injection";
    case FlightEventKind::kFaultAbsorbed:
      return "fault_absorbed";
    case FlightEventKind::kFaultRecovery:
      return "fault_recovery";
  }
  return "unknown";
}

std::string FlightEvent::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "t=%lldms %-18s app=%d a=%lld b=%lld",
                static_cast<long long>(time_ms), FlightEventKindName(kind),
                app, static_cast<long long>(a), static_cast<long long>(b));
  return buf;
}

#if defined(LOCKTUNE_PROFILE)

namespace {

struct FlightRing {
  FlightEvent events[kFlightRingCapacity];
  // Monotonic write cursor; events[next % capacity] is the next slot. The
  // owner thread is the only writer; dump-time cross-thread reads are
  // unsynchronized by design (abort path / serial regions only).
  std::atomic<uint64_t> next{0};
  int thread_index = 0;
};

struct RingRegistry {
  Mutex mu{kLockRankLeaf, "flight_recorder::mu"};
  // Guards registration only; the abort-path dump reads it lock-free by
  // design (see DumpFlightRecorder).
  std::vector<std::unique_ptr<FlightRing>> rings LT_GUARDED_BY(mu);
};

RingRegistry& Registry() {
  static RingRegistry* registry = new RingRegistry();
  return *registry;
}

std::atomic<bool> g_victim_dump_armed{false};
std::atomic<bool> g_victim_dump_spent{false};

void DumpHook() { DumpFlightRecorder(stderr); }

FlightRing& Ring() {
  thread_local FlightRing* ring = [] {
    auto owned = std::make_unique<FlightRing>();
    FlightRing* raw = owned.get();
    RingRegistry& reg = Registry();
    MutexLock guard(reg.mu);
    raw->thread_index = static_cast<int>(reg.rings.size());
    reg.rings.push_back(std::move(owned));
    if (raw->thread_index == 0) AddCheckFailureHook(&DumpHook);
    return raw;
  }();
  return *ring;
}

}  // namespace

void FlightRecord(FlightEventKind kind, int64_t time_ms, int32_t app,
                  int64_t a, int64_t b) {
  FlightRing& ring = Ring();
  const uint64_t n = ring.next.load(std::memory_order_relaxed);
  FlightEvent& slot = ring.events[n % kFlightRingCapacity];
  slot.time_ms = time_ms;
  slot.kind = kind;
  slot.app = app;
  slot.a = a;
  slot.b = b;
  ring.next.store(n + 1, std::memory_order_release);
}

// Outside the capability analysis: the dump runs on the abort path where
// the failing thread may already hold the registry lock.
void DumpFlightRecorder(std::FILE* out) LT_NO_THREAD_SAFETY_ANALYSIS {
  RingRegistry& reg = Registry();
  // No registry lock: the dump runs on the abort path, where the failing
  // thread may already hold it (it only guards registration, so the worst
  // case is missing a ring registered mid-dump).
  std::fprintf(out, "flight recorder dump (%zu thread rings):\n",
               reg.rings.size());
  for (const auto& ring : reg.rings) {
    const uint64_t next = ring->next.load(std::memory_order_acquire);
    const uint64_t count =
        next < kFlightRingCapacity ? next : kFlightRingCapacity;
    std::fprintf(out,
                 "  thread ring %d: %llu events recorded, last %llu:\n",
                 ring->thread_index, static_cast<unsigned long long>(next),
                 static_cast<unsigned long long>(count));
    for (uint64_t i = next - count; i < next; ++i) {
      std::fprintf(out, "    %s\n",
                   ring->events[i % kFlightRingCapacity].ToString().c_str());
    }
  }
}

void ArmFlightDumpOnVictim(bool armed) {
  g_victim_dump_armed.store(armed, std::memory_order_relaxed);
}

bool FlightDumpOnVictimArmed() {
  return g_victim_dump_armed.load(std::memory_order_relaxed);
}

bool TakeVictimDumpBudget() {
  if (!FlightDumpOnVictimArmed()) return false;
  return !g_victim_dump_spent.exchange(true, std::memory_order_relaxed);
}

std::vector<FlightEvent> FlightEventsForTesting() {
  FlightRing& ring = Ring();
  const uint64_t next = ring.next.load(std::memory_order_relaxed);
  const uint64_t count =
      next < kFlightRingCapacity ? next : kFlightRingCapacity;
  std::vector<FlightEvent> out;
  out.reserve(count);
  for (uint64_t i = next - count; i < next; ++i) {
    out.push_back(ring.events[i % kFlightRingCapacity]);
  }
  return out;
}

uint64_t FlightTotalForTesting() {
  return Ring().next.load(std::memory_order_relaxed);
}

void ResetFlightRecorderForTesting() {
  RingRegistry& reg = Registry();
  MutexLock guard(reg.mu);
  for (const auto& ring : reg.rings) {
    ring->next.store(0, std::memory_order_relaxed);
  }
  g_victim_dump_spent.store(false, std::memory_order_relaxed);
}

#endif  // LOCKTUNE_PROFILE

}  // namespace locktune
