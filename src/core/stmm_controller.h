// The STMM controller: executes the combined synchronous/asynchronous
// self-tuning of lock memory (paper §3).
//
// Synchronous path (request time): the lock manager's growth callback lands
// in GrantSynchronousGrowth(), which allows lock memory to expand into
// database overflow memory block by block, bounded by maxLockMemory and by
// LMOmax = C1 · (overflow + LMO). Memory taken this way (LMO) is a
// transient debt against the overflow area.
//
// Asynchronous path (every tuning interval): RunTuningPass() asks the
// LockMemoryTuner for a new target, resizes the lock memory toward it —
// shrinking performance consumers when overflow cannot cover growth, and
// donating freed lock memory back — restores the overflow area to its goal,
// and externalizes the new on-disk configuration value (LMOC).
#ifndef LOCKTUNE_CORE_STMM_CONTROLLER_H_
#define LOCKTUNE_CORE_STMM_CONTROLLER_H_

#include <functional>
#include <vector>

#include "common/sim_clock.h"
#include "common/units.h"
#include "core/config.h"
#include "core/lock_memory_tuner.h"
#include "core/pmc_model.h"
#include "lock/lock_manager.h"
#include "memory/database_memory.h"

namespace locktune {

class Counter;
class DegradationLedger;
class HistogramMetric;
class MetricsRegistry;
class TraceSink;

// What one tuning pass saw and did (history entry for experiments).
struct StmmIntervalRecord {
  TimeMs time = 0;
  Bytes lock_allocated = 0;  // after the pass
  Bytes lock_used = 0;
  Bytes lmoc = 0;
  Bytes overflow = 0;
  double maxlocks_percent = 0.0;
  int64_t escalations_delta = 0;
  LockTunerAction action = LockTunerAction::kNone;
  DurationMs next_interval = 0;  // interval chosen for the next pass
};

class StmmController {
 public:
  // All pointers are borrowed and must outlive the controller. `lock_heap`
  // is the heap that mirrors the lock manager's block list;
  // `num_applications` reports currently connected applications (the
  // paper's num_applications in minLockMemory).
  StmmController(const TuningParams& params, const SimClock* clock,
                 DatabaseMemory* memory, MemoryHeap* lock_heap,
                 LockManager* locks, PmcModel* pmcs,
                 std::function<int()> num_applications);

  StmmController(const StmmController&) = delete;
  StmmController& operator=(const StmmController&) = delete;

  // Runs one tuning pass per tuning interval elapsed on the clock. Call
  // once per simulation tick.
  void Poll();

  // One asynchronous tuning pass, immediately.
  void RunTuningPass();

  // Lock manager growth callback: grants `blocks` 128 KB blocks from
  // database overflow memory, subject to maxLockMemory and LMOmax. Returns
  // false (and remembers the constraint for the doubling rule) when denied.
  bool GrantSynchronousGrowth(int64_t blocks);

  // §3.6: the stable lock memory view given to the SQL compiler —
  // 10 % of databaseMemory regardless of the instantaneous allocation.
  Bytes CompilerLockMemoryView() const {
    return params_.CompilerLockMemory();
  }

  // The on-disk configured lock memory (LOCKLIST as externalized).
  Bytes lmoc() const { return lmoc_; }
  // Lock memory currently borrowed from overflow (transient).
  Bytes lmo() const { return lmo_; }
  // Bytes of LMO taken through the cold-start borrow path — growth granted
  // past an injected denial before the first tuning pass, bounded by
  // MinLockMemory (docs/ROBUSTNESS.md). Monotone; repaid like any LMO.
  Bytes cold_borrow_bytes() const { return cold_borrow_; }
  bool growth_was_constrained() const { return growth_constrained_; }

  const TuningParams& params() const { return params_; }
  const std::vector<StmmIntervalRecord>& history() const { return history_; }
  // The current (possibly adapted) tuning interval.
  DurationMs tuning_interval() const { return timer_.period(); }

  // Decision tracing: each tuning pass appends one `kind:"tuning_pass"`
  // record (inputs, chosen action, human-readable why). Borrowed; null
  // disables tracing.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }
  TraceSink* trace_sink() const { return trace_; }

  // Chaos layer: absorbed denials and recoveries are recorded here.
  // Borrowed; null (the default) disables the bookkeeping, not the backoff.
  void set_degradation_ledger(DegradationLedger* ledger) { ledger_ = ledger; }

  // Backoff-on-denial state (tests / inspector). A streak counts
  // consecutive tuning passes whose asynchronous grow was refused by the
  // memory set; while holdoff passes remain the controller does not
  // re-request the same grow.
  int grow_denial_streak() const { return grow_denial_streak_; }
  int grow_holdoff_passes() const { return grow_holdoff_; }

  // Cross-subsystem budget conservation (paranoid mode / tests): the lock
  // heap's committed size equals the lock manager's block-list allocation
  // (the two accountings of the same memory), sizes are block-granular, and
  // the externalized LMOC plus the transient overflow debt LMO cover the
  // committed size. Returns OK or INTERNAL naming the violated invariant.
  [[nodiscard]] Status CheckConsistency() const;

  // Registers the tuner metric family (`locktune_stmm_*`): per-action pass
  // counters, lmoc/lmo/interval gauges, the free-band position, and a
  // resize-magnitude histogram.
  void RegisterMetrics(MetricsRegistry* registry);

 private:
  // Grows lock memory by up to `want` bytes (block multiple), shrinking
  // PMCs when overflow is short. Returns bytes actually added.
  Bytes GrowLockMemory(Bytes want);
  // Shrinks lock memory by up to `want` bytes of entirely free blocks.
  Bytes ShrinkLockMemory(Bytes want);
  // Moves overflow toward its goal by shrinking or growing PMCs.
  void RestoreOverflowGoal();

  TuningParams params_;
  const SimClock* clock_;
  DatabaseMemory* memory_;
  MemoryHeap* lock_heap_;
  LockManager* locks_;
  PmcModel* pmcs_;
  std::function<int()> num_applications_;

  // Shortens/lengthens the tuning interval per the pass outcome.
  void AdaptInterval(LockTunerAction action);

  LockMemoryTuner tuner_;
  PeriodicTimer timer_;
  Bytes lmoc_;
  Bytes lmo_ = 0;
  Bytes cold_borrow_ = 0;
  bool growth_constrained_ = false;
  int64_t last_escalations_ = 0;
  int quiet_passes_ = 0;
  // Attenuated retry after denied asynchronous growth: set by
  // GrowLockMemory when DatabaseMemory::GrowHeap refuses (never on a mere
  // clamp-to-zero), consumed by RunTuningPass to hold off re-requests.
  bool grow_denied_ = false;
  int grow_denial_streak_ = 0;
  int grow_holdoff_ = 0;
  std::vector<StmmIntervalRecord> history_;

  DegradationLedger* ledger_ = nullptr;
  TraceSink* trace_ = nullptr;
  // Owned by the registry; null until RegisterMetrics. Indexed by
  // LockTunerAction.
  Counter* action_passes_[5] = {};
  HistogramMetric* resize_hist_ = nullptr;
};

}  // namespace locktune

#endif  // LOCKTUNE_CORE_STMM_CONTROLLER_H_
