#include "core/pmc_model.h"

#include <limits>

#include "common/check.h"

namespace locktune {

void PmcModel::AddConsumer(MemoryHeap* heap, double benefit_constant) {
  LOCKTUNE_CHECK(heap != nullptr);
  LOCKTUNE_CHECK(heap->consumer_class() == ConsumerClass::kPerformance);
  consumers_.push_back({heap, benefit_constant});
}

double PmcModel::Marginal(const Consumer& c) {
  const double size = static_cast<double>(c.heap->size()) + 1.0;
  return c.benefit_constant / (size * size);
}

double PmcModel::MarginalBenefit(const MemoryHeap* heap) const {
  for (const Consumer& c : consumers_) {
    if (c.heap == heap) return Marginal(c);
  }
  return 0.0;
}

Bytes PmcModel::TakeFrom(DatabaseMemory& memory, Bytes amount) {
  Bytes taken = 0;
  while (taken < amount) {
    // Donor: smallest marginal benefit among heaps that can still shrink.
    Consumer* donor = nullptr;
    double donor_benefit = std::numeric_limits<double>::infinity();
    for (Consumer& c : consumers_) {
      if (c.heap->size() - kChunk < c.heap->min_size()) continue;
      const double b = Marginal(c);
      if (b < donor_benefit) {
        donor_benefit = b;
        donor = &c;
      }
    }
    if (donor == nullptr) break;
    if (!memory.ShrinkHeap(donor->heap, kChunk).ok()) break;
    taken += kChunk;
  }
  return taken;
}

Bytes PmcModel::GiveTo(DatabaseMemory& memory, Bytes amount) {
  Bytes given = 0;
  while (given + kChunk <= amount) {
    Consumer* recipient = nullptr;
    double best = -1.0;
    for (Consumer& c : consumers_) {
      if (c.heap->size() + kChunk > c.heap->max_size()) continue;
      const double b = Marginal(c);
      if (b > best) {
        best = b;
        recipient = &c;
      }
    }
    if (recipient == nullptr) break;
    if (!memory.GrowHeap(recipient->heap, kChunk).ok()) break;
    given += kChunk;
  }
  return given;
}

}  // namespace locktune
