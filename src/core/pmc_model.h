// Performance memory consumers (paper §2.1).
//
// STMM tunes PMCs (buffer pools, sort, package cache ...) by cost-benefit:
// each consumer reports the marginal benefit of its next byte, and memory
// flows from the least- to the most-beneficial consumer. locktune models
// each PMC with a synthetic diminishing-returns curve
//
//     benefit'(size) = benefit_constant / size²
//
// (the derivative of a 1/size miss-rate curve), which is enough to give the
// controller realistic donors ("the least needy consumer", §4 T2) and
// recipients ("the most beneficial heaps", §4 T6) without simulating page
// caches. The lock memory heap is deliberately NOT part of this model: it is
// a functional consumer tuned deterministically by LockMemoryTuner.
#ifndef LOCKTUNE_CORE_PMC_MODEL_H_
#define LOCKTUNE_CORE_PMC_MODEL_H_

#include <string>
#include <vector>

#include "common/units.h"
#include "memory/database_memory.h"

namespace locktune {

class PmcModel {
 public:
  // Chunk size for greedy redistribution; one lock block keeps the
  // granularities aligned.
  static constexpr Bytes kChunk = kLockBlockSize;

  // Registers a PMC heap. `benefit_constant` scales its marginal-benefit
  // curve; a larger constant makes the heap needier at equal size.
  void AddConsumer(MemoryHeap* heap, double benefit_constant);

  // Shrinks PMC heaps (least marginal benefit first) until `amount` bytes
  // have been released to overflow or no heap can shrink further. Returns
  // the bytes actually released.
  Bytes TakeFrom(DatabaseMemory& memory, Bytes amount);

  // Grows PMC heaps (most marginal benefit first) by up to `amount` bytes
  // from overflow. Returns the bytes actually consumed.
  Bytes GiveTo(DatabaseMemory& memory, Bytes amount);

  // Marginal benefit of `heap`'s next chunk (for tests/metrics).
  double MarginalBenefit(const MemoryHeap* heap) const;

  int consumer_count() const { return static_cast<int>(consumers_.size()); }

 private:
  struct Consumer {
    MemoryHeap* heap;
    double benefit_constant;
  };

  static double Marginal(const Consumer& c);

  std::vector<Consumer> consumers_;
};

}  // namespace locktune

#endif  // LOCKTUNE_CORE_PMC_MODEL_H_
