#include "core/stmm_controller.h"

#include <algorithm>
#include <cstdlib>

#include "common/check.h"
#include "common/logging.h"
#include "core/stmm_report.h"
#include "fault/degradation_ledger.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace locktune {

StmmController::StmmController(const TuningParams& params,
                               const SimClock* clock, DatabaseMemory* memory,
                               MemoryHeap* lock_heap, LockManager* locks,
                               PmcModel* pmcs,
                               std::function<int()> num_applications)
    : params_(params),
      clock_(clock),
      memory_(memory),
      lock_heap_(lock_heap),
      locks_(locks),
      pmcs_(pmcs),
      num_applications_(std::move(num_applications)),
      tuner_(params),
      timer_(clock, params.tuning_interval),
      lmoc_(params.InitialLockMemory()) {
  LOCKTUNE_CHECK(params.Validate().ok());
  tuner_.set_previous_target(lock_heap_->size());
  lmoc_ = lock_heap_->size();
}

void StmmController::Poll() {
  const int due = timer_.DuePeriods();
  for (int i = 0; i < due; ++i) RunTuningPass();
}

bool StmmController::GrantSynchronousGrowth(int64_t blocks) {
  const Bytes delta = BlocksToBytes(blocks);
  if (lock_heap_->size() + delta > params_.MaxLockMemory()) {
    growth_constrained_ = true;
    return false;
  }
  // LMOmax = C1 · (database overflow memory including LMO), §3.2.
  const Bytes lmo_max = static_cast<Bytes>(
      params_.overflow_cap_c1 *
      static_cast<double>(memory_->overflow_bytes() + lmo_));
  if (lmo_ + delta > lmo_max) {
    growth_constrained_ = true;
    return false;
  }
  if (Status s = memory_->GrowHeap(lock_heap_, delta); !s.ok()) {
    // Cold-start borrow: before the first tuning pass the locklist is still
    // the raw initial_locklist_pages allocation — it has never been sized
    // against the actual population, so an injected denial here can strand
    // one-lock transactions behind an escalation convoy (the fuzzer's
    // 6-line repro in docs/FUZZING.md). Until the first pass, take the LMO
    // debt anyway, bounded by the minimum the first pass would configure;
    // GrowHeapUnfaulted still enforces the real overflow/max bounds, so a
    // genuine exhaustion (not an injected one) stays a denial.
    if (history_.empty()) {
      const Bytes borrow_cap = params_.MinLockMemory(num_applications_());
      if (cold_borrow_ + delta <= borrow_cap &&
          memory_->GrowHeapUnfaulted(lock_heap_, delta).ok()) {
        cold_borrow_ += delta;
        lmo_ += delta;
        if (ledger_ != nullptr) {
          ledger_->RecordAbsorbed("cold_lock_borrow", s.message());
        }
        return true;
      }
    }
    growth_constrained_ = true;
    // The lock manager falls back to escalation; record the absorbed
    // denial so the degradation ledger can pair it with the recovery.
    if (ledger_ != nullptr) {
      ledger_->RecordAbsorbed("sync_lock_growth", s.message());
    }
    return false;
  }
  lmo_ += delta;
  return true;
}

void StmmController::RunTuningPass() {
  const int napps = num_applications_();

  // §3.2: the minimum is re-evaluated at each tuning interval.
  const Bytes min_lock = params_.MinLockMemory(napps);
  lock_heap_->set_min_size(std::min(min_lock, lock_heap_->size()));

  const LockManagerStats& stats = locks_->stats();
  const int64_t esc_delta = stats.escalations - last_escalations_;
  last_escalations_ = stats.escalations;

  LockTunerInputs inputs;
  inputs.allocated = locks_->allocated_bytes();
  inputs.used = locks_->used_bytes();
  inputs.escalations_in_interval = esc_delta;
  inputs.growth_was_constrained = growth_constrained_;
  inputs.num_applications = napps;
  LOCKTUNE_CHECK(inputs.allocated == lock_heap_->size());

  const LockTunerDecision decision = tuner_.Tune(inputs);
  const bool was_constrained = growth_constrained_;

  if (decision.target > inputs.allocated) {
    if (grow_holdoff_ > 0) {
      // Backoff-on-denial: a recent pass had its grow refused outright by
      // the memory set. Re-requesting the same grow every interval would
      // hammer a denying allocator, so the controller sits out a
      // geometrically growing number of passes instead.
      --grow_holdoff_;
      if (trace_ != nullptr) {
        TraceRecord backoff(clock_->now(), "grow_backoff");
        backoff.Str("action", "suppress")
            .Int("denial_streak", grow_denial_streak_)
            .Int("holdoff_remaining", grow_holdoff_)
            .Int("wanted_bytes", decision.target - inputs.allocated);
        trace_->Append(backoff);
      }
    } else {
      grow_denied_ = false;
      const Bytes grown = GrowLockMemory(decision.target - inputs.allocated);
      if (grow_denied_) {
        grow_denial_streak_ = std::min(grow_denial_streak_ + 1, 16);
        grow_holdoff_ =
            std::min(8, 1 << std::min(grow_denial_streak_, 3));
        if (trace_ != nullptr) {
          TraceRecord backoff(clock_->now(), "grow_backoff");
          backoff.Str("action", "engage")
              .Int("denial_streak", grow_denial_streak_)
              .Int("holdoff_passes", grow_holdoff_)
              .Int("wanted_bytes", decision.target - inputs.allocated);
          trace_->Append(backoff);
        }
      } else if (grown > 0 && grow_denial_streak_ > 0) {
        grow_denial_streak_ = 0;
        if (ledger_ != nullptr) {
          ledger_->RecordRecovery("async_grow", "asynchronous growth resumed");
        }
        if (trace_ != nullptr) {
          TraceRecord backoff(clock_->now(), "grow_backoff");
          backoff.Str("action", "recover").Int("grown_bytes", grown);
          trace_->Append(backoff);
        }
      }
    }
  } else if (decision.target < inputs.allocated) {
    ShrinkLockMemory(inputs.allocated - decision.target);
  }

  RestoreOverflowGoal();

  // Externalize the new configuration; memory borrowed synchronously is
  // regularized into the configured size.
  lmoc_ = decision.target;
  lmo_ = std::max<Bytes>(0, lock_heap_->size() - lmoc_);
  growth_constrained_ = false;

  AdaptInterval(decision.action);

  StmmIntervalRecord rec;
  rec.time = clock_->now();
  rec.lock_allocated = lock_heap_->size();
  rec.lock_used = locks_->used_bytes();
  rec.lmoc = lmoc_;
  rec.overflow = memory_->overflow_bytes();
  rec.maxlocks_percent = locks_->CurrentMaxlocksPercent();
  rec.escalations_delta = esc_delta;
  rec.action = decision.action;
  rec.next_interval = timer_.period();
  history_.push_back(rec);

  // Flight-recorder + trace-timeline copies of the pass: a = action, b =
  // resulting configured size, so a post-mortem dump shows what the tuner
  // was doing when an invariant tripped.
  FlightRecord(FlightEventKind::kTunerPass, rec.time, 0,
               static_cast<int64_t>(decision.action), lmoc_);
  if (ChromeTraceCollector* chrome = GlobalTraceCollector()) {
    chrome->Instant(
        "stmm_pass: " + std::string(TunerActionName(decision.action)),
        kTracePidSim, kTraceTidStmm, SimTimeToTraceUs(rec.time),
        "{\"pass\":" + std::to_string(history_.size()) +
            ",\"lmoc_bytes\":" + std::to_string(lmoc_) +
            ",\"escalations_delta\":" + std::to_string(esc_delta) + "}");
  }

  LOCKTUNE_LOG(kDebug) << "tuning pass " << history_.size() << ": "
                       << TunerActionName(decision.action) << " — "
                       << ExplainDecision(inputs, decision, params_);

  if (Counter* c = action_passes_[static_cast<size_t>(decision.action)]) {
    c->Increment();
  }
  if (resize_hist_ != nullptr) {
    resize_hist_->Observe(static_cast<double>(
        std::abs(rec.lock_allocated - inputs.allocated)));
  }
  if (trace_ != nullptr) {
    const double free_frac =
        inputs.allocated > 0
            ? static_cast<double>(inputs.allocated - inputs.used) /
                  static_cast<double>(inputs.allocated)
            : 0.0;
    // One record per pass: the inputs the tuner saw, the decision it made,
    // the state the pass left behind, and the narrative why.
    TraceRecord trace_rec(clock_->now(), "tuning_pass");
    trace_rec.Int("pass", static_cast<int64_t>(history_.size()))
        .Str("action", TunerActionName(decision.action))
        .Int("allocated_before_bytes", inputs.allocated)
        .Int("used_bytes", inputs.used)
        .Real("free_fraction", free_frac)
        .Int("escalations_delta", esc_delta)
        .Bool("growth_constrained", was_constrained)
        .Int("num_applications", inputs.num_applications)
        .Int("target_bytes", decision.target)
        .Int("allocated_after_bytes", rec.lock_allocated)
        .Int("lmoc_bytes", lmoc_)
        .Int("lmo_bytes", lmo_)
        .Int("overflow_bytes", rec.overflow)
        .Real("maxlocks_percent", rec.maxlocks_percent)
        .Int("next_interval_ms", rec.next_interval)
        .Str("why", ExplainDecision(inputs, decision, params_));
    trace_->Append(trace_rec);
  }
}

Status StmmController::CheckConsistency() const {
  // The same bytes accounted twice: the heap view (DatabaseMemory) and the
  // block-list view (LockManager) must agree at all times.
  if (lock_heap_->size() != locks_->allocated_bytes()) {
    return Status::Internal(
        "lock heap size and lock manager allocation disagree");
  }
  if (lock_heap_->size() % kLockBlockSize != 0) {
    return Status::Internal("lock heap size is not block-granular");
  }
  if (lmo_ < 0 || lmoc_ < 0) {
    return Status::Internal("negative LMO/LMOC accounting");
  }
  // RunTuningPass leaves lmo_ == max(0, size - lmoc_); synchronous growth
  // bumps size and lmo_ together, so the debt always covers the part of the
  // allocation beyond the externalized configuration.
  if (lmoc_ + lmo_ < lock_heap_->size()) {
    return Status::Internal("LMOC + LMO do not cover the lock allocation");
  }
  return Status::Ok();
}

void StmmController::RegisterMetrics(MetricsRegistry* registry) {
  registry->AddCallbackCounter(
      "locktune_stmm_passes_total", "asynchronous tuning passes run",
      [this] { return static_cast<int64_t>(history_.size()); });
  for (int a = 0; a < 5; ++a) {
    const LockTunerAction action = static_cast<LockTunerAction>(a);
    action_passes_[a] = registry->AddCounter(
        std::string("locktune_stmm_pass_actions_total{action=\"") +
            std::string(TunerActionName(action)) + "\"}",
        "tuning passes by chosen action");
  }
  registry->AddCallbackGauge(
      "locktune_stmm_lmoc_bytes", "externalized on-disk lock memory config",
      [this] { return static_cast<double>(lmoc_); });
  registry->AddCallbackGauge(
      "locktune_stmm_lmo_bytes",
      "lock memory currently borrowed from overflow",
      [this] { return static_cast<double>(lmo_); });
  registry->AddCallbackGauge(
      "locktune_stmm_tuning_interval_ms", "current tuning interval",
      [this] { return static_cast<double>(timer_.period()); });
  registry->AddCallbackGauge(
      "locktune_stmm_free_fraction",
      "free share of lock memory, against the [minFree, maxFree] band",
      [this] {
        const Bytes alloc = lock_heap_->size();
        if (alloc <= 0) return 0.0;
        return static_cast<double>(alloc - locks_->used_bytes()) /
               static_cast<double>(alloc);
      });
  registry->AddCallbackGauge(
      "locktune_stmm_min_free_fraction", "minFreeLockMemory band edge",
      [this] { return params_.min_free_fraction; });
  registry->AddCallbackGauge(
      "locktune_stmm_max_free_fraction", "maxFreeLockMemory band edge",
      [this] { return params_.max_free_fraction; });
  resize_hist_ = registry->AddHistogram(
      "locktune_stmm_resize_bytes",
      "per-pass lock memory resize magnitude",
      {0.0, 128.0 * 1024, 512.0 * 1024, 1024.0 * 1024, 4096.0 * 1024,
       16384.0 * 1024, 65536.0 * 1024});
}

void StmmController::AdaptInterval(LockTunerAction action) {
  if (!params_.adaptive_interval) return;
  if (action == LockTunerAction::kNone) {
    if (++quiet_passes_ >= params_.quiet_passes_to_lengthen) {
      quiet_passes_ = 0;
      timer_.set_period(
          std::min(params_.tuning_interval_max, timer_.period() * 2));
    }
  } else {
    quiet_passes_ = 0;
    timer_.set_period(
        std::max(params_.tuning_interval_min, timer_.period() / 2));
  }
}

Bytes StmmController::GrowLockMemory(Bytes want) {
  LOCKTUNE_CHECK(want % kLockBlockSize == 0);
  // The lock memory objective outranks PMC comfort: shrink PMCs when
  // overflow cannot cover the growth (§4 T2: "making decreases in sort
  // memory (the least needy consumer)").
  if (memory_->overflow_bytes() < want) {
    pmcs_->TakeFrom(*memory_, want - memory_->overflow_bytes());
  }
  Bytes grow = std::min(want, memory_->overflow_bytes());
  grow -= grow % kLockBlockSize;
  // Never beyond maxLockMemory (heap max also enforces this).
  grow = std::min(grow, params_.MaxLockMemory() - lock_heap_->size());
  if (grow <= 0) return 0;
  const Status s = memory_->GrowHeap(lock_heap_, grow);
  if (!s.ok()) {
    // A refusal here (not a clamp-to-zero above) is what arms the backoff:
    // fault-free runs never reach this branch because `grow` was clamped to
    // both the available overflow and the heap max.
    grow_denied_ = true;
    if (ledger_ != nullptr) {
      ledger_->RecordAbsorbed("async_grow", s.message());
    }
    LOCKTUNE_LOG(kWarning) << "async lock growth failed: " << s.ToString();
    return 0;
  }
  locks_->AddBlocks(BytesToBlocks(grow));
  return grow;
}

Bytes StmmController::ShrinkLockMemory(Bytes want) {
  LOCKTUNE_CHECK(want % kLockBlockSize == 0);
  int64_t blocks = BytesToBlocks(want);
  // DB2's shrink request is all-or-nothing against the block list; if the
  // full request is not satisfiable the controller settles for the largest
  // request that is (the tuner will continue next interval).
  if (!locks_->TryRemoveBlocks(blocks).ok()) {
    blocks = std::min(blocks, locks_->entirely_free_blocks());
    if (blocks <= 0 || !locks_->TryRemoveBlocks(blocks).ok()) return 0;
  }
  const Bytes freed = BlocksToBytes(blocks);
  const Status s = memory_->ShrinkHeap(lock_heap_, freed);
  if (!s.ok()) {
    // Respect the heap minimum: put the blocks back.
    locks_->AddBlocks(blocks);
    return 0;
  }
  return freed;
}

void StmmController::RestoreOverflowGoal() {
  const Bytes goal = params_.OverflowGoal();
  const Bytes overflow = memory_->overflow_bytes();
  if (overflow < goal) {
    // Heaps grew into the reserve during the interval; rebuild it from the
    // least needy consumers.
    pmcs_->TakeFrom(*memory_, goal - overflow);
  } else if (overflow > goal) {
    // Surplus (e.g. freed lock memory) goes to the most beneficial heaps.
    pmcs_->GiveTo(*memory_, overflow - goal);
  }
}

}  // namespace locktune
