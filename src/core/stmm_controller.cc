#include "core/stmm_controller.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace locktune {

StmmController::StmmController(const TuningParams& params,
                               const SimClock* clock, DatabaseMemory* memory,
                               MemoryHeap* lock_heap, LockManager* locks,
                               PmcModel* pmcs,
                               std::function<int()> num_applications)
    : params_(params),
      clock_(clock),
      memory_(memory),
      lock_heap_(lock_heap),
      locks_(locks),
      pmcs_(pmcs),
      num_applications_(std::move(num_applications)),
      tuner_(params),
      timer_(clock, params.tuning_interval),
      lmoc_(params.InitialLockMemory()) {
  assert(params.Validate().ok());
  tuner_.set_previous_target(lock_heap_->size());
  lmoc_ = lock_heap_->size();
}

void StmmController::Poll() {
  const int due = timer_.DuePeriods();
  for (int i = 0; i < due; ++i) RunTuningPass();
}

bool StmmController::GrantSynchronousGrowth(int64_t blocks) {
  const Bytes delta = BlocksToBytes(blocks);
  if (lock_heap_->size() + delta > params_.MaxLockMemory()) {
    growth_constrained_ = true;
    return false;
  }
  // LMOmax = C1 · (database overflow memory including LMO), §3.2.
  const Bytes lmo_max = static_cast<Bytes>(
      params_.overflow_cap_c1 *
      static_cast<double>(memory_->overflow_bytes() + lmo_));
  if (lmo_ + delta > lmo_max) {
    growth_constrained_ = true;
    return false;
  }
  if (!memory_->GrowHeap(lock_heap_, delta).ok()) {
    growth_constrained_ = true;
    return false;
  }
  lmo_ += delta;
  return true;
}

void StmmController::RunTuningPass() {
  const int napps = num_applications_();

  // §3.2: the minimum is re-evaluated at each tuning interval.
  const Bytes min_lock = params_.MinLockMemory(napps);
  lock_heap_->set_min_size(std::min(min_lock, lock_heap_->size()));

  const LockManagerStats& stats = locks_->stats();
  const int64_t esc_delta = stats.escalations - last_escalations_;
  last_escalations_ = stats.escalations;

  LockTunerInputs inputs;
  inputs.allocated = locks_->allocated_bytes();
  inputs.used = locks_->used_bytes();
  inputs.escalations_in_interval = esc_delta;
  inputs.growth_was_constrained = growth_constrained_;
  inputs.num_applications = napps;
  assert(inputs.allocated == lock_heap_->size());

  const LockTunerDecision decision = tuner_.Tune(inputs);

  if (decision.target > inputs.allocated) {
    GrowLockMemory(decision.target - inputs.allocated);
  } else if (decision.target < inputs.allocated) {
    ShrinkLockMemory(inputs.allocated - decision.target);
  }

  RestoreOverflowGoal();

  // Externalize the new configuration; memory borrowed synchronously is
  // regularized into the configured size.
  lmoc_ = decision.target;
  lmo_ = std::max<Bytes>(0, lock_heap_->size() - lmoc_);
  growth_constrained_ = false;

  AdaptInterval(decision.action);

  StmmIntervalRecord rec;
  rec.time = clock_->now();
  rec.lock_allocated = lock_heap_->size();
  rec.lock_used = locks_->used_bytes();
  rec.lmoc = lmoc_;
  rec.overflow = memory_->overflow_bytes();
  rec.maxlocks_percent = locks_->CurrentMaxlocksPercent();
  rec.escalations_delta = esc_delta;
  rec.action = decision.action;
  rec.next_interval = timer_.period();
  history_.push_back(rec);
}

void StmmController::AdaptInterval(LockTunerAction action) {
  if (!params_.adaptive_interval) return;
  if (action == LockTunerAction::kNone) {
    if (++quiet_passes_ >= params_.quiet_passes_to_lengthen) {
      quiet_passes_ = 0;
      timer_.set_period(
          std::min(params_.tuning_interval_max, timer_.period() * 2));
    }
  } else {
    quiet_passes_ = 0;
    timer_.set_period(
        std::max(params_.tuning_interval_min, timer_.period() / 2));
  }
}

Bytes StmmController::GrowLockMemory(Bytes want) {
  assert(want % kLockBlockSize == 0);
  // The lock memory objective outranks PMC comfort: shrink PMCs when
  // overflow cannot cover the growth (§4 T2: "making decreases in sort
  // memory (the least needy consumer)").
  if (memory_->overflow_bytes() < want) {
    pmcs_->TakeFrom(*memory_, want - memory_->overflow_bytes());
  }
  Bytes grow = std::min(want, memory_->overflow_bytes());
  grow -= grow % kLockBlockSize;
  // Never beyond maxLockMemory (heap max also enforces this).
  grow = std::min(grow, params_.MaxLockMemory() - lock_heap_->size());
  if (grow <= 0) return 0;
  const Status s = memory_->GrowHeap(lock_heap_, grow);
  if (!s.ok()) {
    LOCKTUNE_LOG(kWarning) << "async lock growth failed: " << s.ToString();
    return 0;
  }
  locks_->AddBlocks(BytesToBlocks(grow));
  return grow;
}

Bytes StmmController::ShrinkLockMemory(Bytes want) {
  assert(want % kLockBlockSize == 0);
  int64_t blocks = BytesToBlocks(want);
  // DB2's shrink request is all-or-nothing against the block list; if the
  // full request is not satisfiable the controller settles for the largest
  // request that is (the tuner will continue next interval).
  if (!locks_->TryRemoveBlocks(blocks).ok()) {
    blocks = std::min(blocks, locks_->entirely_free_blocks());
    if (blocks <= 0 || !locks_->TryRemoveBlocks(blocks).ok()) return 0;
  }
  const Bytes freed = BlocksToBytes(blocks);
  const Status s = memory_->ShrinkHeap(lock_heap_, freed);
  if (!s.ok()) {
    // Respect the heap minimum: put the blocks back.
    locks_->AddBlocks(blocks);
    return 0;
  }
  return freed;
}

void StmmController::RestoreOverflowGoal() {
  const Bytes goal = params_.OverflowGoal();
  const Bytes overflow = memory_->overflow_bytes();
  if (overflow < goal) {
    // Heaps grew into the reserve during the interval; rebuild it from the
    // least needy consumers.
    pmcs_->TakeFrom(*memory_, goal - overflow);
  } else if (overflow > goal) {
    // Surplus (e.g. freed lock memory) goes to the most beneficial heaps.
    pmcs_->GiveTo(*memory_, overflow - goal);
  }
}

}  // namespace locktune
