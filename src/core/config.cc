#include "core/config.h"

#include <algorithm>

namespace locktune {

Bytes TuningParams::MinLockMemory(int num_applications) const {
  const Bytes per_app = min_structures_per_app * kLockStructSize *
                        static_cast<Bytes>(std::max(num_applications, 0));
  return RoundUpToBlocks(std::max(min_lock_memory_floor, per_app));
}

Status TuningParams::Validate() const {
  if (database_memory <= 0) {
    return Status::InvalidArgument("database_memory must be positive");
  }
  if (overflow_goal_fraction < 0.0 || overflow_goal_fraction >= 1.0) {
    return Status::InvalidArgument("overflow_goal_fraction outside [0,1)");
  }
  if (tuning_interval <= 0) {
    return Status::InvalidArgument("tuning_interval must be positive");
  }
  if (tuning_interval_min <= 0 || tuning_interval_max < tuning_interval_min) {
    return Status::InvalidArgument("invalid adaptive tuning interval bounds");
  }
  if (adaptive_interval && (tuning_interval < tuning_interval_min ||
                            tuning_interval > tuning_interval_max)) {
    return Status::InvalidArgument(
        "tuning_interval outside [tuning_interval_min, tuning_interval_max]");
  }
  if (quiet_passes_to_lengthen <= 0) {
    return Status::InvalidArgument(
        "quiet_passes_to_lengthen must be positive");
  }
  if (max_lock_memory_fraction <= 0.0 || max_lock_memory_fraction > 1.0) {
    return Status::InvalidArgument("max_lock_memory_fraction outside (0,1]");
  }
  if (compiler_view_fraction <= 0.0 || compiler_view_fraction > 1.0) {
    return Status::InvalidArgument("compiler_view_fraction outside (0,1]");
  }
  if (overflow_cap_c1 <= 0.0 || overflow_cap_c1 > 1.0) {
    return Status::InvalidArgument("overflow_cap_c1 outside (0,1]");
  }
  if (min_free_fraction <= 0.0 || min_free_fraction >= 1.0) {
    return Status::InvalidArgument("min_free_fraction outside (0,1)");
  }
  if (max_free_fraction <= min_free_fraction || max_free_fraction >= 1.0) {
    return Status::InvalidArgument(
        "max_free_fraction must lie in (min_free_fraction, 1)");
  }
  if (delta_reduce <= 0.0 || delta_reduce >= 1.0) {
    return Status::InvalidArgument("delta_reduce outside (0,1)");
  }
  if (min_lock_memory_floor < kLockBlockSize) {
    return Status::InvalidArgument(
        "min_lock_memory_floor below one lock block");
  }
  if (min_structures_per_app < 0) {
    return Status::InvalidArgument("min_structures_per_app negative");
  }
  if (maxlocks_p <= 0.0 || maxlocks_p > 100.0) {
    return Status::InvalidArgument("maxlocks_p outside (0,100]");
  }
  if (maxlocks_exponent <= 0.0) {
    return Status::InvalidArgument("maxlocks_exponent must be positive");
  }
  if (maxlocks_refresh_period <= 0) {
    return Status::InvalidArgument("maxlocks_refresh_period must be positive");
  }
  if (initial_locklist_pages <= 0) {
    return Status::InvalidArgument("initial_locklist_pages must be positive");
  }
  if (MaxLockMemory() < MinLockMemory(0)) {
    return Status::InvalidArgument("maxLockMemory below minLockMemory floor");
  }
  return Status::Ok();
}

}  // namespace locktune
