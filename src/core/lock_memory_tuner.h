// The asynchronous lock memory tuning decision (paper §3.2–§3.4).
//
// At each STMM tuning interval the tuner looks at the lock memory allocation
// and usage and decides the new target size (which also becomes the on-disk
// configured value, LMOC):
//
//  * escalations occurred while overflow was constrained → double the lock
//    memory ("lock memory will double each tuning interval while
//    escalations are continuing", §3.3);
//  * free fraction below minFreeLockMemory (50 %) → grow so that minFree of
//    the new size is free;
//  * free fraction above maxFreeLockMemory (60 %) → shrink by δ_reduce
//    (5 % of current size, block-rounded) per interval, but never past the
//    size at which maxFree would be free;
//  * otherwise → keep the previous target (the dead band that avoids
//    constant resizing).
//
// Every decision is clamped to [minLockMemory(num_applications),
// maxLockMemory] and rounded to whole 128 KB blocks.
//
// The tuner is a pure decision object: the StmmController executes the
// decision against DatabaseMemory and the LockManager.
#ifndef LOCKTUNE_CORE_LOCK_MEMORY_TUNER_H_
#define LOCKTUNE_CORE_LOCK_MEMORY_TUNER_H_

#include <cstdint>
#include <string>

#include "common/units.h"
#include "core/config.h"

namespace locktune {

struct LockTunerInputs {
  Bytes allocated = 0;  // lock memory currently owned (block multiple)
  Bytes used = 0;       // lock structures in use × 64 B
  int64_t escalations_in_interval = 0;
  // Escalations only drive doubling when growth was actually constrained
  // (database overflow exhausted / LMOmax hit) — a quota escalation under
  // ample memory must not inflate the heap.
  bool growth_was_constrained = false;
  int num_applications = 0;
};

enum class LockTunerAction {
  kNone,    // inside the dead band
  kGrow,    // restore the minFree objective
  kShrink,  // δ_reduce decay toward the maxFree objective
  kDouble,  // escalations under constrained overflow
  kClamp,   // only the min/max bound moved the target
};

struct LockTunerDecision {
  Bytes target = 0;  // desired allocated size, block multiple
  LockTunerAction action = LockTunerAction::kNone;
};

// Human-readable rationale for a decision — the narrative the paper's
// Figure 6 worked example (and DB2's `db2pd -stmm`) tells: which rule
// fired, the observed free fraction against the [minFree, maxFree] band,
// and the resulting target. Used by the decision-trace records.
std::string ExplainDecision(const LockTunerInputs& inputs,
                            const LockTunerDecision& decision,
                            const TuningParams& params);

class LockMemoryTuner {
 public:
  explicit LockMemoryTuner(const TuningParams& params);

  // Computes the new target; also updates the remembered previous target
  // (the paper's LMOC follows it).
  LockTunerDecision Tune(const LockTunerInputs& inputs);

  // The remembered target from the last Tune() (initially the configured
  // initial LOCKLIST).
  Bytes previous_target() const { return previous_target_; }
  void set_previous_target(Bytes target) { previous_target_ = target; }

  const TuningParams& params() const { return params_; }

 private:
  Bytes Clamp(Bytes target, int num_applications, bool* clamped) const;

  TuningParams params_;
  Bytes previous_target_;
};

}  // namespace locktune

#endif  // LOCKTUNE_CORE_LOCK_MEMORY_TUNER_H_
