// Tuning parameters — the paper's Table 1 plus simulation-level knobs.
#ifndef LOCKTUNE_CORE_CONFIG_H_
#define LOCKTUNE_CORE_CONFIG_H_

#include "common/sim_clock.h"
#include "common/status.h"
#include "common/units.h"

namespace locktune {

struct TuningParams {
  // Total shared memory allocated to the database (databaseMemory).
  // The paper's testbed used 5.11 GB; the default here is scaled down so
  // experiments stay laptop-sized — every threshold below is a ratio, so
  // behaviour is scale-free (see DESIGN.md).
  Bytes database_memory = 512 * kMiB;

  // Share of databaseMemory STMM keeps unowned as the on-demand overflow
  // reserve (the worked example of §4 uses 10 %).
  double overflow_goal_fraction = 0.10;

  // Time between asynchronous tuning passes; "generally between 0.5 min and
  // 10 min", fixed at 30 s for all the paper's experiments (§5).
  DurationMs tuning_interval = 30 * kSecond;

  // STMM also "determines the tuning interval" (§2.1): with
  // adaptive_interval on, the controller halves the interval (down to
  // tuning_interval_min) whenever a pass resized the lock memory and
  // doubles it (up to tuning_interval_max) after several quiet passes.
  bool adaptive_interval = false;
  DurationMs tuning_interval_min = 30 * kSecond;
  DurationMs tuning_interval_max = 10 * kMinute;
  int quiet_passes_to_lengthen = 3;

  // maxLockMemory = max_lock_memory_fraction · databaseMemory (Table 1).
  double max_lock_memory_fraction = 0.20;

  // sqlCompilerLockMem = compiler_view_fraction · databaseMemory (§3.6).
  double compiler_view_fraction = 0.10;

  // C1: lock memory may take at most this share of the overflow area
  // (LMOmax, §3.2).
  double overflow_cap_c1 = 0.65;

  // minFreeLockMemory / maxFreeLockMemory: the free-fraction dead band
  // (§3.3). Growth restores min_free; shrinking stops at max_free.
  double min_free_fraction = 0.50;
  double max_free_fraction = 0.60;

  // δ_reduce: asynchronous shrink rate per tuning interval (§3.4).
  double delta_reduce = 0.05;

  // minLockMemory = MAX(floor, per_app · locksize · num_applications).
  Bytes min_lock_memory_floor = 2 * kMiB;
  int64_t min_structures_per_app = 500;

  // lockPercentPerApplication curve: P·(1−(x/100)^e), refreshed every
  // `maxlocks_refresh_period` lock requests (Table 1: 98, 3, 0x80).
  double maxlocks_p = 98.0;
  double maxlocks_exponent = 3.0;
  int maxlocks_refresh_period = 0x80;

  // Initial LOCKLIST configuration, in 4 KB pages (the starting point the
  // tuner converges away from).
  int64_t initial_locklist_pages = 128;

  // ---- derived values ----
  Bytes MaxLockMemory() const {
    return RoundToBlocks(static_cast<Bytes>(
        max_lock_memory_fraction * static_cast<double>(database_memory)));
  }
  Bytes CompilerLockMemory() const {
    return static_cast<Bytes>(compiler_view_fraction *
                              static_cast<double>(database_memory));
  }
  Bytes OverflowGoal() const {
    return static_cast<Bytes>(overflow_goal_fraction *
                              static_cast<double>(database_memory));
  }
  // minLockMemory for `num_applications` connections (§3.2), block-rounded
  // upward so the floor is reachable by block-unit resizing.
  Bytes MinLockMemory(int num_applications) const;
  Bytes InitialLockMemory() const {
    return RoundUpToBlocks(PagesToBytes(initial_locklist_pages));
  }

  // Rejects non-sensical combinations (fractions outside (0,1], inverted
  // free band, non-positive sizes...).
  [[nodiscard]] Status Validate() const;
};

}  // namespace locktune

#endif  // LOCKTUNE_CORE_CONFIG_H_
