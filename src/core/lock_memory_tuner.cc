#include "core/lock_memory_tuner.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace locktune {

namespace {

double FreeFraction(const LockTunerInputs& inputs) {
  const Bytes allocated = std::max<Bytes>(inputs.allocated, kLockBlockSize);
  const Bytes used = std::clamp<Bytes>(inputs.used, 0, allocated);
  return static_cast<double>(allocated - used) /
         static_cast<double>(allocated);
}

double ToMb(Bytes b) {
  return static_cast<double>(b) / (1024.0 * 1024.0);
}

}  // namespace

std::string ExplainDecision(const LockTunerInputs& inputs,
                            const LockTunerDecision& decision,
                            const TuningParams& params) {
  const double free_pct = 100.0 * FreeFraction(inputs);
  char buf[256];
  switch (decision.action) {
    case LockTunerAction::kDouble:
      std::snprintf(buf, sizeof(buf),
                    "%lld escalations this interval while growth was "
                    "constrained: double lock memory to %.2f MB",
                    static_cast<long long>(inputs.escalations_in_interval),
                    ToMb(decision.target));
      break;
    case LockTunerAction::kGrow:
      std::snprintf(buf, sizeof(buf),
                    "free %.1f%% below minFree %.0f%%: grow to %.2f MB so "
                    "minFree of the new size is free",
                    free_pct, 100.0 * params.min_free_fraction,
                    ToMb(decision.target));
      break;
    case LockTunerAction::kShrink:
      std::snprintf(buf, sizeof(buf),
                    "free %.1f%% above maxFree %.0f%%: shrink by "
                    "delta_reduce toward %.2f MB",
                    free_pct, 100.0 * params.max_free_fraction,
                    ToMb(decision.target));
      break;
    case LockTunerAction::kClamp:
      std::snprintf(buf, sizeof(buf),
                    "target clamped into [minLockMemory(%d apps) = %.2f MB, "
                    "maxLockMemory = %.2f MB]: %.2f MB",
                    inputs.num_applications,
                    ToMb(params.MinLockMemory(inputs.num_applications)),
                    ToMb(params.MaxLockMemory()), ToMb(decision.target));
      break;
    case LockTunerAction::kNone:
      // kNone also covers moves the [minLockMemory, maxLockMemory] clamp
      // cancelled, so check the band before claiming the dead band.
      if (FreeFraction(inputs) < params.min_free_fraction ||
          FreeFraction(inputs) > params.max_free_fraction) {
        std::snprintf(buf, sizeof(buf),
                      "free %.1f%% outside the [minFree %.0f%%, maxFree "
                      "%.0f%%] band, but the move was cancelled by the "
                      "[minLockMemory(%d apps) = %.2f MB, maxLockMemory = "
                      "%.2f MB] clamp: no change",
                      free_pct, 100.0 * params.min_free_fraction,
                      100.0 * params.max_free_fraction,
                      inputs.num_applications,
                      ToMb(params.MinLockMemory(inputs.num_applications)),
                      ToMb(params.MaxLockMemory()));
      } else {
        std::snprintf(buf, sizeof(buf),
                      "free %.1f%% inside the [minFree %.0f%%, maxFree "
                      "%.0f%%] dead band: no change",
                      free_pct, 100.0 * params.min_free_fraction,
                      100.0 * params.max_free_fraction);
      }
      break;
  }
  return buf;
}

LockMemoryTuner::LockMemoryTuner(const TuningParams& params)
    : params_(params), previous_target_(params.InitialLockMemory()) {
  LOCKTUNE_CHECK(params.Validate().ok());
}

LockTunerDecision LockMemoryTuner::Tune(const LockTunerInputs& inputs) {
  const Bytes allocated = std::max<Bytes>(inputs.allocated, kLockBlockSize);
  const Bytes used = std::clamp<Bytes>(inputs.used, 0, allocated);
  const double free_frac =
      static_cast<double>(allocated - used) / static_cast<double>(allocated);

  LockTunerDecision decision;
  if (inputs.escalations_in_interval > 0 && inputs.growth_was_constrained) {
    // §3.3: while escalations continue under constrained overflow, double
    // each interval, trending toward a well-tuned allocation despite the
    // temporary escalations.
    decision.target = RoundUpToBlocks(2 * allocated);
    decision.action = LockTunerAction::kDouble;
  } else if (free_frac < params_.min_free_fraction) {
    // Restore the minFree objective: used should be (1 − minFree) of the
    // new size.
    decision.target = RoundUpToBlocks(static_cast<Bytes>(
        static_cast<double>(used) / (1.0 - params_.min_free_fraction)));
    decision.action = LockTunerAction::kGrow;
  } else if (free_frac > params_.max_free_fraction) {
    // δ_reduce decay: 5 % of the current size, rounded to blocks, at least
    // one block — but never past the point where maxFree would be free.
    const Bytes step = std::max<Bytes>(
        RoundToBlocks(static_cast<Bytes>(params_.delta_reduce *
                                         static_cast<double>(allocated))),
        kLockBlockSize);
    const Bytes floor_at_max_free = RoundUpToBlocks(static_cast<Bytes>(
        static_cast<double>(used) / (1.0 - params_.max_free_fraction)));
    decision.target = std::max(allocated - step, floor_at_max_free);
    decision.action = LockTunerAction::kShrink;
  } else {
    // Dead band: "no change will be made in the lock memory allocation
    // levels" (§3.3). The current allocation becomes the target — NOT the
    // remembered previous target, which can be stale when synchronous
    // growth expanded the allocation between tuning passes.
    decision.target = allocated;
    decision.action = LockTunerAction::kNone;
  }

  bool clamped = false;
  decision.target = Clamp(decision.target, inputs.num_applications, &clamped);
  if (clamped && decision.action == LockTunerAction::kNone) {
    decision.action = LockTunerAction::kClamp;
  }
  // Shrink/grow decisions that the clamp cancelled degrade to no-ops.
  if (decision.target == allocated &&
      decision.action != LockTunerAction::kNone) {
    decision.action = LockTunerAction::kNone;
  }

  previous_target_ = decision.target;
  return decision;
}

Bytes LockMemoryTuner::Clamp(Bytes target, int num_applications,
                             bool* clamped) const {
  const Bytes lo = params_.MinLockMemory(num_applications);
  const Bytes hi = std::max(params_.MaxLockMemory(), lo);
  const Bytes out = std::clamp(target, lo, hi);
  *clamped = out != target;
  return out;
}

}  // namespace locktune
