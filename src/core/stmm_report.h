// Rendering of the STMM controller's tuning history — the equivalent of
// DB2's `db2pd -stmm` diagnostics. Benches and the CLI use it to show what
// the controller did and why.
#ifndef LOCKTUNE_CORE_STMM_REPORT_H_
#define LOCKTUNE_CORE_STMM_REPORT_H_

#include <string>
#include <vector>

#include "core/stmm_controller.h"

namespace locktune {

// Short name for a tuner action, e.g. "GROW".
std::string_view TunerActionName(LockTunerAction action);

// Aggregate view of a controller run.
struct StmmReportSummary {
  int total_passes = 0;
  int grow_passes = 0;
  int shrink_passes = 0;
  int double_passes = 0;
  int clamp_passes = 0;
  int quiet_passes = 0;
  Bytes peak_allocated = 0;
  Bytes final_allocated = 0;
  int64_t total_escalations = 0;
};

StmmReportSummary Summarize(const std::vector<StmmIntervalRecord>& history);

// Renders the history as an aligned text table, one row per tuning pass:
//
//   time_s  action  alloc_MB  used_MB  free%  lmoc_MB  overflow_MB  esc
//
// `max_rows` caps the output (0 = all); when capped, the most recent rows
// are kept.
std::string RenderHistoryTable(const std::vector<StmmIntervalRecord>& history,
                               size_t max_rows = 0);

// One-line rendering of the summary.
std::string RenderSummary(const StmmReportSummary& summary);

}  // namespace locktune

#endif  // LOCKTUNE_CORE_STMM_REPORT_H_
