#include "core/stmm_report.h"

#include <algorithm>
#include <cstdio>

namespace locktune {

namespace {
constexpr double kMb = 1024.0 * 1024.0;
}

std::string_view TunerActionName(LockTunerAction action) {
  switch (action) {
    case LockTunerAction::kNone:
      return "NONE";
    case LockTunerAction::kGrow:
      return "GROW";
    case LockTunerAction::kShrink:
      return "SHRINK";
    case LockTunerAction::kDouble:
      return "DOUBLE";
    case LockTunerAction::kClamp:
      return "CLAMP";
  }
  return "?";
}

StmmReportSummary Summarize(const std::vector<StmmIntervalRecord>& history) {
  StmmReportSummary s;
  s.total_passes = static_cast<int>(history.size());
  for (const StmmIntervalRecord& rec : history) {
    switch (rec.action) {
      case LockTunerAction::kNone:
        ++s.quiet_passes;
        break;
      case LockTunerAction::kGrow:
        ++s.grow_passes;
        break;
      case LockTunerAction::kShrink:
        ++s.shrink_passes;
        break;
      case LockTunerAction::kDouble:
        ++s.double_passes;
        break;
      case LockTunerAction::kClamp:
        ++s.clamp_passes;
        break;
    }
    s.peak_allocated = std::max(s.peak_allocated, rec.lock_allocated);
    s.total_escalations += rec.escalations_delta;
  }
  if (!history.empty()) s.final_allocated = history.back().lock_allocated;
  return s;
}

std::string RenderHistoryTable(const std::vector<StmmIntervalRecord>& history,
                               size_t max_rows) {
  std::string out =
      "time_s  action  alloc_MB  used_MB  free%  lmoc_MB  overflow_MB  esc\n";
  size_t start = 0;
  if (max_rows > 0 && history.size() > max_rows) {
    start = history.size() - max_rows;
    out += "... (" + std::to_string(start) + " earlier passes omitted)\n";
  }
  for (size_t i = start; i < history.size(); ++i) {
    const StmmIntervalRecord& rec = history[i];
    const double alloc_mb = static_cast<double>(rec.lock_allocated) / kMb;
    const double used_mb = static_cast<double>(rec.lock_used) / kMb;
    const double free_pct =
        rec.lock_allocated > 0
            ? 100.0 *
                  static_cast<double>(rec.lock_allocated - rec.lock_used) /
                  static_cast<double>(rec.lock_allocated)
            : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%6.0f  %-6s %9.2f %8.2f %6.1f %8.2f %12.2f %4lld\n",
                  static_cast<double>(rec.time) / 1000.0,
                  std::string(TunerActionName(rec.action)).c_str(), alloc_mb,
                  used_mb, free_pct,
                  static_cast<double>(rec.lmoc) / kMb,
                  static_cast<double>(rec.overflow) / kMb,
                  static_cast<long long>(rec.escalations_delta));
    out += line;
  }
  return out;
}

std::string RenderSummary(const StmmReportSummary& s) {
  char line[256];
  std::snprintf(line, sizeof(line),
                "passes=%d (grow=%d shrink=%d double=%d clamp=%d quiet=%d) "
                "peak=%.2fMB final=%.2fMB escalations=%lld",
                s.total_passes, s.grow_passes, s.shrink_passes,
                s.double_passes, s.clamp_passes, s.quiet_passes,
                static_cast<double>(s.peak_allocated) / kMb,
                static_cast<double>(s.final_allocated) / kMb,
                static_cast<long long>(s.total_escalations));
  return line;
}

}  // namespace locktune
