// The fuzzer's stacked oracles, in the order they veto a scenario:
//
//  1. per-run classification — CHECK failure ("invariant"), tick-watchdog
//     abort or harness kill timeout ("livelock"), any other fatal signal
//     ("crash"); a clean non-zero exit is an "error" (the scenario is
//     semantically invalid, e.g. a kill target beyond the population) and
//     deliberately NOT a failure: the generator must not emit those, but
//     the minimizer must not chase them either;
//  2. differential — the same scenario under --threads 1 and --threads N
//     must agree. Single-application scenarios are bit-deterministic
//     across thread counts, so they get a strict byte comparison of the
//     series CSV and the metrics export; contended scenarios are compared
//     on their invariant skeleton (docs/CONCURRENCY.md): sample-time
//     column, the `clients` series, the exported metric name set, and the
//     clients_change trace subsequence;
//  3. degradation — the docs/ROBUSTNESS.md ledger contract: a selftuning
//     run whose deny-heap denials were absorbed must show zero OOM aborts.
//
// EvaluateScenario is shared verbatim between the fuzz loop and the
// minimizer's still-fails callback, so a minimized repro provably fails
// the same oracle as its parent.
#ifndef LOCKTUNE_FUZZ_ORACLE_H_
#define LOCKTUNE_FUZZ_ORACLE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/sim_driver.h"

namespace locktune {

struct OracleReport {
  bool failed = false;
  // One of: "invariant", "livelock", "crash", "differential",
  // "degradation". Empty when !failed.
  std::string oracle;
  std::string detail;
};

struct OracleOptions {
  std::string sim_binary;
  // Scratch directory for the candidate .conf and its artifacts; contents
  // are overwritten on every evaluation.
  std::string work_dir;
  int threads = 4;  // the N of the t1-vs-tN differential
  int64_t timeout_ms = 30'000;
  int64_t tick_watchdog_ms = 2'000;
  // Extra child environment for every run (the oracle self-tests inject
  // LOCKTUNE_TEST_PLANT here).
  std::vector<std::pair<std::string, std::string>> extra_env;
};

// Classifies one finished run in isolation (oracle class 1 above).
OracleReport ClassifyRun(const SimRunResult& run);

// Runs the full stack on `conf_text`: --threads 1 and --threads N, both
// under LOCKTUNE_PARANOID=1 and the tick watchdog, then the differential
// and degradation checks. Deterministic for a deterministic simulator.
OracleReport EvaluateScenario(const std::string& conf_text,
                              const OracleOptions& options);

// Canonicalization helpers, exposed for unit tests.
//
// Column `index` (0-based) of a CSV text, header row skipped.
std::vector<std::string> CsvColumn(const std::string& csv, size_t index);
// Sorted unique metric names of a metric,value CSV export.
std::vector<std::string> MetricNames(const std::string& metrics_csv);
// The metric's value, or `fallback` when absent.
double MetricValue(const std::string& metrics_csv, const std::string& name,
                   double fallback);
// The clients_change records of a JSONL trace, one canonical line each.
std::vector<std::string> ClientsChangeRecords(const std::string& trace);

}  // namespace locktune

#endif  // LOCKTUNE_FUZZ_ORACLE_H_
