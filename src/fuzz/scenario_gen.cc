#include "fuzz/scenario_gen.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "workload/scenario_schema.h"

namespace locktune {

namespace {

// Sampling bounds come from the schema (so a re-ranged key re-ranges the
// generator), intersected with a per-key runtime budget below.
int64_t SampleInt(Rng& rng, const char* section, const char* key,
                  size_t value_index, int64_t budget_lo, int64_t budget_hi) {
  const KeySchema* ks = FindKeySchema(section, key);
  LOCKTUNE_CHECK(ks != nullptr && value_index < ks->values.size());
  const ValueSchema& vs = ks->values[value_index];
  LOCKTUNE_CHECK(vs.kind == ValueKind::kInt);
  const int64_t lo = std::max(vs.int_min, budget_lo);
  const int64_t hi = std::min(vs.int_max, budget_hi);
  LOCKTUNE_CHECK(lo <= hi);
  return rng.NextInRange(lo, hi);
}

const std::vector<std::string>& Choices(const char* section,
                                        const char* key,
                                        size_t value_index = 0) {
  const KeySchema* ks = FindKeySchema(section, key);
  LOCKTUNE_CHECK(ks != nullptr && value_index < ks->values.size());
  return ks->values[value_index].choices;
}

std::string Pick(Rng& rng, const std::vector<std::string>& choices) {
  LOCKTUNE_CHECK(!choices.empty());
  return choices[rng.NextBelow(choices.size())];
}

// Fixed-precision doubles so the emitted text is locale- and
// formatting-stable.
std::string Frac(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

struct Emitter {
  std::string text;

  void Line(const std::string& s) { text += s + "\n"; }
  void KV(const std::string& key, int64_t v) {
    Line(key + " " + std::to_string(v));
  }
  void KV(const std::string& key, const std::string& v) {
    Line(key + " " + v);
  }
};

// One workload section. Returns the section's maximum client count so the
// fault generator can aim kill_app at a real application slot.
int64_t EmitWorkloadSection(Rng& rng, int64_t duration_s, Emitter& out) {
  const char* kSections[] = {"oltp", "oltp", "dss", "batch", "hostile"};
  const char* section = kSections[rng.NextBelow(5)];  // oltp-biased
  out.Line(std::string("[") + section + "]");

  // Client timeline: 1–3 steps, first at t=0 with at least one client so
  // the section is never dead weight; later steps may surge or drop to 0.
  const int steps = static_cast<int>(1 + rng.NextBelow(3));
  int64_t max_clients = 0;
  int64_t prev_t = 0;
  for (int s = 0; s < steps; ++s) {
    const int64_t at =
        s == 0 ? 0 : rng.NextInRange(prev_t + 1, std::max<int64_t>(
                                                     prev_t + 1, duration_s));
    const int64_t lo = s == 0 ? 1 : 0;
    const int64_t count = SampleInt(rng, section, "clients", 1, lo, 8);
    out.Line("clients " + std::to_string(at) + " " + std::to_string(count));
    max_clients = std::max(max_clients, count);
    prev_t = at;
  }

  const auto section_is = [section](const char* s) {
    return std::string(section) == s;
  };
  if (section_is("oltp")) {
    if (rng.NextBool(0.8)) {
      out.KV("mean_locks_per_txn",
             SampleInt(rng, "oltp", "mean_locks_per_txn", 0, 2, 120));
    }
    if (rng.NextBool(0.6)) {
      out.KV("locks_per_tick",
             SampleInt(rng, "oltp", "locks_per_tick", 0, 1, 50));
    }
    if (rng.NextBool(0.6)) {
      out.KV("write_fraction", Frac(rng.NextDouble()));
    }
    if (rng.NextBool(0.5)) {
      out.KV("think_time_ms",
             SampleInt(rng, "oltp", "think_time_ms", 0, 0, 500));
    }
    if (rng.NextBool(0.7)) {
      // Hot-spot bias: Thomasian's high-contention regimes live at large
      // skew, so most draws land in [0.5, 0.95).
      const double zipf =
          rng.NextBool(0.8) ? 0.5 + 0.45 * rng.NextDouble()
                            : rng.NextDouble() * 0.5;
      out.KV("zipf", Frac(std::min(zipf, 0.999)));
    }
  } else if (section_is("dss")) {
    if (rng.NextBool(0.8)) {
      out.KV("scan_locks", SampleInt(rng, "dss", "scan_locks", 0, 50, 2000));
    }
    if (rng.NextBool(0.6)) {
      out.KV("locks_per_tick",
             SampleInt(rng, "dss", "locks_per_tick", 0, 10, 200));
    }
    if (rng.NextBool(0.5)) {
      out.KV("hold_time_s", SampleInt(rng, "dss", "hold_time_s", 0, 0, 5));
    }
    if (rng.NextBool(0.5)) {
      out.KV("think_time_s", SampleInt(rng, "dss", "think_time_s", 0, 0, 5));
    }
  } else if (section_is("batch")) {
    if (rng.NextBool(0.8)) {
      out.KV("rows_per_batch",
             SampleInt(rng, "batch", "rows_per_batch", 0, 100, 5000));
    }
    if (rng.NextBool(0.6)) {
      out.KV("locks_per_tick",
             SampleInt(rng, "batch", "locks_per_tick", 0, 20, 200));
    }
    if (rng.NextBool(0.5)) {
      out.KV("hold_time_s", SampleInt(rng, "batch", "hold_time_s", 0, 0, 5));
    }
    if (rng.NextBool(0.4)) {
      out.KV("think_time_s",
             SampleInt(rng, "batch", "think_time_s", 0, 0, 5));
    }
    if (rng.NextBool(0.7)) {
      out.KV("table", Pick(rng, Choices("batch", "table")));
    }
    if (rng.NextBool(0.5)) {
      out.KV("mode", Pick(rng, Choices("batch", "mode")));
    }
  } else {  // hostile
    out.KV("archetype", Pick(rng, Choices("hostile", "archetype")));
    if (rng.NextBool(0.6)) {
      out.KV("table", Pick(rng, Choices("hostile", "table")));
    }
    if (rng.NextBool(0.7)) {
      out.KV("locks_per_txn",
             SampleInt(rng, "hostile", "locks_per_txn", 0, 10, 500));
    }
    if (rng.NextBool(0.5)) {
      out.KV("locks_per_tick",
             SampleInt(rng, "hostile", "locks_per_tick", 0, 10, 100));
    }
    if (rng.NextBool(0.5)) {
      out.KV("hold_time_s",
             SampleInt(rng, "hostile", "hold_time_s", 0, 0, 10));
    }
    if (rng.NextBool(0.4)) {
      out.KV("think_time_s",
             SampleInt(rng, "hostile", "think_time_s", 0, 0, 5));
    }
    if (rng.NextBool(0.4)) {
      out.KV("mode", Pick(rng, Choices("hostile", "mode")));
    }
  }
  return max_clients;
}

void EmitFaultSection(Rng& rng, int64_t duration_s, int64_t total_clients,
                      Emitter& out) {
  out.Line("[fault]");
  if (rng.NextBool(0.5)) {
    out.KV("fault_seed", static_cast<int64_t>(rng.Next() >> 1));
  }
  const int windows = static_cast<int>(1 + rng.NextBelow(3));
  for (int w = 0; w < windows; ++w) {
    const int64_t from = rng.NextInRange(0, duration_s - 1);
    const int64_t until = rng.NextInRange(from + 1, duration_s);
    switch (rng.NextBelow(3)) {
      case 0: {
        // Locklist-biased: denying the tuned heap is the contract under
        // test (docs/ROBUSTNESS.md's degradation ledger).
        const std::vector<std::string>& heaps =
            Choices("fault", "deny_heap");
        const std::string heap =
            rng.NextBool(0.5) ? "locklist" : Pick(rng, heaps);
        std::string line = "deny_heap " + heap + " " +
                           std::to_string(from) + " " +
                           std::to_string(until);
        if (rng.NextBool(0.6)) {
          line += " " + Frac(0.3 + 0.7 * rng.NextDouble());
        }
        out.Line(line);
        break;
      }
      case 1: {
        const int64_t mb =
            SampleInt(rng, "fault", "squeeze_overflow_mb", 0, 8, 64);
        out.Line("squeeze_overflow_mb " + std::to_string(mb) + " " +
                 std::to_string(from) + " " + std::to_string(until));
        break;
      }
      default: {
        const int64_t app = rng.NextInRange(1, total_clients);
        const int64_t at = rng.NextInRange(0, duration_s);
        out.Line("kill_app " + std::to_string(app) + " " +
                 std::to_string(at));
        break;
      }
    }
  }
}

}  // namespace

std::string GenerateScenario(uint64_t seed, uint64_t index) {
  // Independent stream per (seed, index): splitmix-style mix so adjacent
  // indices do not produce correlated scenarios.
  Rng rng(seed ^ (index * 0x9e3779b97f4a7c15ULL) ^ 0x6c62272e07bb0142ULL);
  Emitter out;

  out.Line("# generated by locktune_fuzz (seed=" + std::to_string(seed) +
           " index=" + std::to_string(index) + ")");

  // Small memory + short tuning intervals: maximum tuning decisions per
  // simulated second.
  const int64_t duration_s = rng.NextInRange(8, 24);
  out.KV("database_memory_mb",
         SampleInt(rng, "", "database_memory_mb", 0, 32, 256));
  const uint64_t mode_draw = rng.NextBelow(10);
  const bool selftuning = mode_draw < 6;
  if (selftuning) {
    out.KV("mode", "selftuning");
  } else if (mode_draw < 8) {
    out.KV("mode", "static");
    out.KV("static_locklist_pages",
           SampleInt(rng, "", "static_locklist_pages", 0, 100, 2000));
    out.KV("static_maxlocks_percent", Frac(5 + 55 * rng.NextDouble()));
  } else {
    out.KV("mode", "sqlserver");
  }
  if (rng.NextBool(0.4)) {
    out.KV("initial_locklist_pages",
           SampleInt(rng, "", "initial_locklist_pages", 0, 32, 1000));
  }
  // The adaptive controller (TuningParams::Validate) requires the base
  // interval inside [tuning_interval_min, tuning_interval_max] = [30s,
  // 600s] when adaptive_interval is on; short intervals are only legal
  // with it off. Decide adaptivity first so the interval draw can respect
  // the cross-key constraint.
  std::string adaptive;
  if (rng.NextBool(0.3)) {
    adaptive = Pick(rng, Choices("", "adaptive_interval"));
  }
  if (rng.NextBool(0.6)) {
    out.KV("tuning_interval_s",
           adaptive == "on"
               ? SampleInt(rng, "", "tuning_interval_s", 0, 30, 600)
               : SampleInt(rng, "", "tuning_interval_s", 0, 2, 6));
  }
  if (!adaptive.empty()) out.KV("adaptive_interval", adaptive);
  if (rng.NextBool(0.4)) {
    out.KV("lock_timeout_ms",
           rng.NextBool(0.2)
               ? static_cast<int64_t>(-1)
               : SampleInt(rng, "", "lock_timeout_ms", 0, 200, 5000));
  }
  out.KV("duration_s", duration_s);
  out.KV("sample_period_s", 1);
  out.KV("seed", static_cast<int64_t>(rng.Next() >> 1));
  if (rng.NextBool(0.3)) {
    out.KV("delta_reduce_percent", Frac(5 + 90 * rng.NextDouble()));
  }

  const int sections = static_cast<int>(1 + rng.NextBelow(3));
  int64_t total_clients = 0;
  for (int s = 0; s < sections; ++s) {
    total_clients += EmitWorkloadSection(rng, duration_s, out);
  }
  if (rng.NextBool(0.5)) {
    EmitFaultSection(rng, duration_s, total_clients, out);
  }
  return out.text;
}

}  // namespace locktune
