// Delta-debugging minimizer for failing scenarios.
//
// Given a scenario text and a predicate that re-runs the oracle stack,
// shrinks the scenario while the failure reproduces, in three fixpointed
// passes: drop whole sections, drop individual lines (optional keys,
// surplus timeline steps, fault windows, comments), then bisect every
// integer value toward its schema minimum (durations, client counts,
// lock volumes, fault window edges).
//
// Deterministic by construction: the pass order is fixed, candidates are
// derived purely from the current text, and no randomness is involved —
// the same input and predicate behavior always produce the same minimized
// repro (pinned by tests/fuzz/minimizer_test.cc).
//
// Candidates that no longer parse are discarded without consulting the
// predicate, so `still_fails` only ever sees valid scenarios. The caller's
// predicate must return true only for the ORIGINAL failure signature
// (same oracle class), or minimization will happily walk to a different,
// smaller bug.
#ifndef LOCKTUNE_FUZZ_MINIMIZER_H_
#define LOCKTUNE_FUZZ_MINIMIZER_H_

#include <functional>
#include <string>

namespace locktune {

using StillFailsFn = std::function<bool(const std::string& conf_text)>;

struct MinimizeStats {
  int candidates_tried = 0;
  int candidates_failed = 0;  // predicate invocations that reproduced
  int rounds = 0;
};

// Returns the minimized text; `conf_text` itself if nothing smaller still
// fails. `stats` is optional.
std::string MinimizeScenario(const std::string& conf_text,
                             const StillFailsFn& still_fails,
                             MinimizeStats* stats = nullptr);

}  // namespace locktune

#endif  // LOCKTUNE_FUZZ_MINIMIZER_H_
