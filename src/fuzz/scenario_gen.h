// Seed-deterministic scenario generator for the fuzzer.
//
// Emits complete, parser-valid `.conf` texts by sampling the scenario
// input language from the machine-readable schema
// (workload/scenario_schema.h): global tuning keys, 1–3 workload sections
// across all four archetypes (with Zipf-skewed OLTP access and hostile
// archetypes), client step timelines, and — roughly half the time — a
// [fault] section mixing deny-heap windows, overflow squeezes, and
// kill/restart timelines.
//
// Determinism contract: GenerateScenario(seed, i) is a pure function of
// its arguments. All randomness flows through common/random.h's Rng, never
// the wall clock, so `locktune_fuzz --seed S --count N` reproduces the
// exact corpus byte-for-byte on every run (an acceptance criterion pinned
// by tests/fuzz/scenario_gen_test.cc).
//
// Values are sampled inside the schema's legal ranges but biased toward
// the paper's interesting regimes — small memory, short tuning intervals,
// hot-spot skew, contended tables — and capped so one scenario stays a
// sub-second simulation; the point is contention density per CPU-second,
// not range coverage for its own sake (the schema round-trip tests cover
// the ranges).
#ifndef LOCKTUNE_FUZZ_SCENARIO_GEN_H_
#define LOCKTUNE_FUZZ_SCENARIO_GEN_H_

#include <cstdint>
#include <string>

namespace locktune {

// Generates the `index`-th scenario of the corpus identified by `seed`.
// The result always parses (ParseScenario) and always instantiates
// (LoadedScenario::Create); generator bugs that break either are caught by
// tests/fuzz/scenario_gen_test.cc over a large sample.
std::string GenerateScenario(uint64_t seed, uint64_t index);

}  // namespace locktune

#endif  // LOCKTUNE_FUZZ_SCENARIO_GEN_H_
