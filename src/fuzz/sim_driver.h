// Subprocess harness: runs locktune_sim on a scenario file and captures
// everything an oracle needs — exit status, termination signal, wall-clock
// timeout, stdout (series CSV), stderr (summary + CHECK failures + flight
// recorder), and the --metrics-out / --trace-out artifacts.
//
// fork/exec rather than in-process: a fuzzer-provoked crash, sanitizer
// report, or livelock must never take the fuzzer down with it, the kill
// timeout needs a process to SIGKILL, and per-run environment (paranoid
// mode, planted bugs) must not leak between runs.
#ifndef LOCKTUNE_FUZZ_SIM_DRIVER_H_
#define LOCKTUNE_FUZZ_SIM_DRIVER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace locktune {

struct SimRunRequest {
  std::string sim_binary;
  std::string conf_path;
  int threads = 1;
  // Wall-clock kill budget. A run that exceeds it is SIGKILLed and
  // reported with timed_out = true — the backstop liveness oracle.
  int64_t timeout_ms = 30'000;
  // Forwarded as --tick-watchdog-ms when > 0 (in-process livelock oracle).
  int64_t tick_watchdog_ms = 0;
  // Sets LOCKTUNE_PARANOID=1 in the child (invariant oracle).
  bool paranoid = false;
  // Extra child environment, e.g. {"LOCKTUNE_TEST_PLANT", "thread_skew"}.
  std::vector<std::pair<std::string, std::string>> extra_env;
  // When non-empty, passed as --metrics-out / --trace-out and read back
  // into the result after the run.
  std::string metrics_path;
  std::string trace_path;
  // When non-empty, passed as --series (comma-joined) with --stride 1, so
  // the stdout CSV carries exactly the columns the oracles canonicalize.
  std::vector<std::string> series;
};

struct SimRunResult {
  bool started = false;    // false: exec failed (bad binary path)
  bool timed_out = false;  // killed by the harness deadline
  int exit_code = -1;      // valid when exited normally
  int term_signal = 0;     // non-zero when signal-terminated (6 = abort)
  std::string stdout_text;
  std::string stderr_text;
  std::string metrics_text;  // contents of metrics_path ("" if unused)
  std::string trace_text;    // contents of trace_path ("" if unused)

  bool ok() const {
    return started && !timed_out && term_signal == 0 && exit_code == 0;
  }
};

SimRunResult RunSim(const SimRunRequest& request);

}  // namespace locktune

#endif  // LOCKTUNE_FUZZ_SIM_DRIVER_H_
