#include "fuzz/oracle.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "workload/scenario.h"
#include "workload/scenario_config.h"

namespace locktune {

namespace {

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  out.flush();
  return out.good();
}

// Total application slots of a parsed scenario: max clients per workload
// group, summed. One slot total means one application ever runs, which is
// the bit-deterministic-across-threads case (docs/CONCURRENCY.md).
int64_t TotalClientSlots(const ScenarioSpec& spec) {
  int64_t total = 0;
  for (const WorkloadSpec& w : spec.workloads) {
    int64_t max_clients = 0;
    for (const auto& [at, count] : w.client_steps) {
      max_clients = std::max<int64_t>(max_clients, count);
    }
    total += max_clients;
  }
  return total;
}

// True when the scenario carries any deny-heap pressure. The degradation
// contract (docs/ROBUSTNESS.md) now covers cold-start windows too: this
// gate was originally scoped to steady-state windows (none opening before
// the tuner's first pass) because denial against the cold initial
// locklist could strand one-lock transactions behind an escalation
// convoy (see docs/FUZZING.md). That hole is closed — the victim scan
// widens to waiting applications and the cold locklist takes a bounded
// overflow borrow until the first pass — so the steady-state scoping is
// gone and the convoy repro in scenarios/regression/ keeps it honest.
bool HasDenyHeapFault(const ScenarioSpec& spec) {
  for (const FaultWindowSpec& w : spec.database.fault.windows) {
    if (w.kind == FaultKind::kDenyHeapGrowth) return true;
  }
  return false;
}

// Details must stay single-line: they are embedded in verdict lines and in
// `# Detail:` header comments of regression repro files.
std::string FirstLines(const std::string& text, int n) {
  std::istringstream is(text);
  std::string line;
  std::string out;
  for (int i = 0; i < n && std::getline(is, line); ++i) {
    if (line.empty()) continue;
    if (!out.empty()) out += " | ";
    out += line;
  }
  return out;
}

}  // namespace

std::vector<std::string> CsvColumn(const std::string& csv, size_t index) {
  std::vector<std::string> column;
  std::istringstream is(csv);
  std::string line;
  bool header = true;
  while (std::getline(is, line)) {
    if (header) {
      header = false;
      continue;
    }
    size_t start = 0;
    for (size_t col = 0; col < index; ++col) {
      const size_t comma = line.find(',', start);
      if (comma == std::string::npos) {
        start = std::string::npos;
        break;
      }
      start = comma + 1;
    }
    if (start == std::string::npos) continue;
    const size_t end = line.find(',', start);
    column.push_back(line.substr(
        start, end == std::string::npos ? std::string::npos : end - start));
  }
  return column;
}

std::vector<std::string> MetricNames(const std::string& metrics_csv) {
  std::vector<std::string> names;
  std::istringstream is(metrics_csv);
  std::string line;
  bool header = true;
  while (std::getline(is, line)) {
    if (header) {
      header = false;
      continue;
    }
    // Name column may be RFC 4180 quoted (labels); the quoted form is
    // itself canonical, so keep it verbatim up to the last comma — metric
    // names can contain commas only inside quotes, values never do.
    const size_t comma = line.rfind(',');
    if (comma == std::string::npos) continue;
    names.push_back(line.substr(0, comma));
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

double MetricValue(const std::string& metrics_csv, const std::string& name,
                   double fallback) {
  std::istringstream is(metrics_csv);
  std::string line;
  while (std::getline(is, line)) {
    const size_t comma = line.rfind(',');
    if (comma == std::string::npos) continue;
    if (line.substr(0, comma) != name) continue;
    return std::strtod(line.c_str() + comma + 1, nullptr);
  }
  return fallback;
}

std::vector<std::string> ClientsChangeRecords(const std::string& trace) {
  std::vector<std::string> records;
  std::istringstream is(trace);
  std::string line;
  while (std::getline(is, line)) {
    if (Contains(line, "\"kind\":\"clients_change\"")) {
      records.push_back(line);
    }
  }
  return records;
}

OracleReport ClassifyRun(const SimRunResult& run) {
  OracleReport report;
  if (!run.started) {
    report.failed = true;
    report.oracle = "crash";
    report.detail = "simulator failed to start: " +
                    FirstLines(run.stderr_text, 3);
    return report;
  }
  if (run.timed_out) {
    report.failed = true;
    report.oracle = "livelock";
    report.detail = "run exceeded the wall-clock kill budget";
    return report;
  }
  if (Contains(run.stderr_text, "tick watchdog exceeded")) {
    report.failed = true;
    report.oracle = "livelock";
    report.detail = "tick watchdog abort: " + FirstLines(run.stderr_text, 2);
    return report;
  }
  if (Contains(run.stderr_text, "CHECK failed")) {
    report.failed = true;
    report.oracle = "invariant";
    // Surface the CHECK line itself, not the flight-recorder dump.
    const size_t at = run.stderr_text.find("CHECK failed");
    const size_t eol = run.stderr_text.find('\n', at);
    report.detail = run.stderr_text.substr(
        at, eol == std::string::npos ? std::string::npos : eol - at);
    return report;
  }
  if (run.term_signal != 0) {
    report.failed = true;
    report.oracle = "crash";
    report.detail = "terminated by signal " +
                    std::to_string(run.term_signal);
    return report;
  }
  // Normal non-zero exit: a semantic config rejection (e.g. kill target
  // beyond the population). Not an oracle failure — see header.
  return report;
}

OracleReport EvaluateScenario(const std::string& conf_text,
                              const OracleOptions& options) {
  OracleReport report;

  // Reject texts the parser rejects before burning a subprocess; callers
  // (the minimizer especially) treat this as "candidate invalid".
  const Result<ScenarioSpec> spec = ParseScenario(conf_text, "candidate");
  if (!spec.ok()) {
    return report;  // not a failure: invalid candidates can't repro bugs
  }

  const std::string conf_path = options.work_dir + "/candidate.conf";
  if (!WriteFile(conf_path, conf_text)) {
    return report;
  }

  SimRunRequest base;
  base.sim_binary = options.sim_binary;
  base.conf_path = conf_path;
  base.timeout_ms = options.timeout_ms;
  base.tick_watchdog_ms = options.tick_watchdog_ms;
  base.paranoid = true;
  base.extra_env = options.extra_env;
  // The series under comparison. `clients` is last: the skeleton compare
  // needs it, and keeping the default four first leaves the strict
  // compare's CSV a superset of the tool's default output.
  base.series = {ScenarioRunner::kLockAllocatedMb,
                 ScenarioRunner::kLockUsedMb, ScenarioRunner::kThroughputTps,
                 ScenarioRunner::kEscalations, ScenarioRunner::kClients};
  const size_t clients_column = base.series.size();  // 0 is time_s

  SimRunRequest t1 = base;
  t1.threads = 1;
  t1.metrics_path = options.work_dir + "/t1.metrics.csv";
  t1.trace_path = options.work_dir + "/t1.trace.jsonl";
  const SimRunResult r1 = RunSim(t1);
  if (OracleReport r = ClassifyRun(r1); r.failed) {
    r.detail = "[--threads 1] " + r.detail;
    return r;
  }

  SimRunRequest tn = base;
  tn.threads = options.threads;
  tn.metrics_path = options.work_dir + "/tn.metrics.csv";
  tn.trace_path = options.work_dir + "/tn.trace.jsonl";
  const SimRunResult rn = RunSim(tn);
  if (OracleReport r = ClassifyRun(rn); r.failed) {
    r.detail = "[--threads " + std::to_string(options.threads) + "] " +
               r.detail;
    return r;
  }

  // Both runs either succeeded or were cleanly rejected; a rejection
  // must at least be the SAME rejection (a thread-count-dependent config
  // error would be its own bug).
  if (r1.exit_code != 0 || rn.exit_code != 0) {
    if (r1.exit_code != rn.exit_code ||
        r1.stderr_text != rn.stderr_text) {
      report.failed = true;
      report.oracle = "differential";
      report.detail = "thread-count-dependent rejection: exit " +
                      std::to_string(r1.exit_code) + " vs " +
                      std::to_string(rn.exit_code);
    }
    return report;
  }

  // Differential oracle.
  if (TotalClientSlots(spec.value()) <= 1) {
    // Single application: full bit-determinism across thread counts.
    if (r1.stdout_text != rn.stdout_text) {
      report.failed = true;
      report.oracle = "differential";
      report.detail = "single-app series CSV differs between --threads 1 "
                      "and --threads " + std::to_string(options.threads);
      return report;
    }
    if (r1.metrics_text != rn.metrics_text) {
      report.failed = true;
      report.oracle = "differential";
      report.detail = "single-app metrics export differs between thread "
                      "counts";
      return report;
    }
  } else {
    // Contended: compare the invariant skeleton.
    if (CsvColumn(r1.stdout_text, 0) != CsvColumn(rn.stdout_text, 0)) {
      report.failed = true;
      report.oracle = "differential";
      report.detail = "sample-time column differs between thread counts";
      return report;
    }
    // The clients series is pure timeline replay — virtual-time scripted,
    // thread-count-independent by contract.
    if (CsvColumn(r1.stdout_text, clients_column) !=
        CsvColumn(rn.stdout_text, clients_column)) {
      report.failed = true;
      report.oracle = "differential";
      report.detail = "clients series differs between thread counts";
      return report;
    }
    if (MetricNames(r1.metrics_text) != MetricNames(rn.metrics_text)) {
      report.failed = true;
      report.oracle = "differential";
      report.detail = "exported metric name set differs between thread "
                      "counts";
      return report;
    }
    if (ClientsChangeRecords(r1.trace_text) !=
        ClientsChangeRecords(rn.trace_text)) {
      report.failed = true;
      report.oracle = "differential";
      report.detail = "clients_change trace records differ between thread "
                      "counts";
      return report;
    }
  }

  // Degradation-ledger contract (docs/ROBUSTNESS.md): under selftuning,
  // absorbed deny-heap denials must never surface as OOM aborts —
  // including windows that open before the tuner's first pass.
  if (spec.value().database.mode == TuningMode::kSelfTuning &&
      HasDenyHeapFault(spec.value())) {
    const double absorbed =
        MetricValue(r1.metrics_text, "locktune_fault_absorbed_total", 0);
    const double oom = MetricValue(
        r1.metrics_text, "locktune_workload_oom_aborts_total", 0);
    if (absorbed > 0 && oom > 0) {
      char detail[160];
      std::snprintf(detail, sizeof(detail),
                    "ledger absorbed %.0f denials yet %.0f transactions "
                    "OOM-aborted (contract: absorbed => oom_aborts == 0)",
                    absorbed, oom);
      report.failed = true;
      report.oracle = "degradation";
      report.detail = detail;
      return report;
    }
  }

  return report;
}

}  // namespace locktune
