#include "fuzz/minimizer.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "workload/scenario_config.h"
#include "workload/scenario_schema.h"

namespace locktune {

namespace {

struct Line {
  std::string text;
  // Schema section of the keys on this line: "" before the first header,
  // the bracketed name after. Headers carry the section they open.
  std::string section;
  bool is_header = false;
};

std::vector<Line> SplitLines(const std::string& text) {
  std::vector<Line> lines;
  std::istringstream is(text);
  std::string raw;
  std::string section;
  while (std::getline(is, raw)) {
    Line line;
    line.text = raw;
    // Leading whitespace is legal before a header; the parser tokenizes.
    const size_t first = raw.find_first_not_of(" \t");
    if (first != std::string::npos && raw[first] == '[') {
      const size_t close = raw.find(']', first);
      if (close != std::string::npos) {
        line.is_header = true;
        section = raw.substr(first + 1, close - first - 1);
      }
    }
    line.section = section;
    lines.push_back(line);
  }
  return lines;
}

std::string JoinLines(const std::vector<Line>& lines) {
  std::string out;
  for (const Line& line : lines) out += line.text + "\n";
  return out;
}

bool Parses(const std::string& text) {
  return ParseScenario(text, "minimize").ok();
}

// Tries `candidate`; on reproduction commits it to `current` and returns
// true.
bool TryCandidate(const std::string& candidate, std::string* current,
                  const StillFailsFn& still_fails, MinimizeStats* stats) {
  if (candidate == *current) return false;
  if (!Parses(candidate)) return false;
  ++stats->candidates_tried;
  if (!still_fails(candidate)) return false;
  ++stats->candidates_failed;
  *current = candidate;
  return true;
}

// Pass 1: drop whole sections (header + body), last to first so index
// arithmetic stays valid across removals.
bool DropSections(std::string* current, const StillFailsFn& still_fails,
                  MinimizeStats* stats) {
  bool changed = false;
  for (;;) {
    const std::vector<Line> lines = SplitLines(*current);
    // Collect [start, end) ranges of each section block.
    std::vector<std::pair<size_t, size_t>> blocks;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (!lines[i].is_header) continue;
      size_t end = i + 1;
      while (end < lines.size() && !lines[end].is_header) ++end;
      blocks.emplace_back(i, end);
    }
    bool dropped = false;
    for (size_t b = blocks.size(); b-- > 0;) {
      std::vector<Line> candidate(lines.begin(),
                                  lines.begin() +
                                      static_cast<long>(blocks[b].first));
      candidate.insert(candidate.end(),
                       lines.begin() + static_cast<long>(blocks[b].second),
                       lines.end());
      if (TryCandidate(JoinLines(candidate), current, still_fails, stats)) {
        changed = true;
        dropped = true;
        break;  // ranges are stale; recompute
      }
    }
    if (!dropped) return changed;
  }
}

// Pass 2: drop individual non-header lines, last to first.
bool DropLines(std::string* current, const StillFailsFn& still_fails,
               MinimizeStats* stats) {
  bool changed = false;
  for (size_t i = SplitLines(*current).size(); i-- > 0;) {
    const std::vector<Line> lines = SplitLines(*current);
    if (i >= lines.size() || lines[i].is_header) continue;
    std::vector<Line> candidate = lines;
    candidate.erase(candidate.begin() + static_cast<long>(i));
    if (TryCandidate(JoinLines(candidate), current, still_fails, stats)) {
      changed = true;
    }
  }
  return changed;
}

bool IsInteger(const std::string& token, int64_t* value) {
  if (token.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') return false;
  *value = v;
  return true;
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (const std::string& t : tokens) {
    if (!out.empty()) out += " ";
    out += t;
  }
  return out;
}

// Pass 3: bisect every integer value toward its schema minimum. The
// schema tells us both where the floor is and which token positions are
// integers at all; values on unknown keys (should not exist in a parsing
// scenario) are left alone.
bool ShrinkIntegers(std::string* current, const StillFailsFn& still_fails,
                    MinimizeStats* stats) {
  bool changed = false;
  const size_t line_count = SplitLines(*current).size();
  for (size_t i = 0; i < line_count; ++i) {
    for (;;) {
      const std::vector<Line> lines = SplitLines(*current);
      if (i >= lines.size()) break;
      const Line& line = lines[i];
      if (line.is_header) break;
      std::vector<std::string> tokens = Tokenize(line.text);
      if (tokens.empty() || tokens[0][0] == '#') break;
      const KeySchema* ks = FindKeySchema(line.section, tokens[0]);
      if (ks == nullptr) break;

      bool shrunk_any = false;
      for (size_t v = 0; v + 1 < tokens.size() && v < ks->values.size();
           ++v) {
        const ValueSchema& vs = ks->values[v];
        if (vs.kind != ValueKind::kInt) continue;
        int64_t value = 0;
        if (!IsInteger(tokens[v + 1], &value)) continue;
        // Bisect in [floor, value): the smallest replacement that still
        // reproduces wins. The floor is the schema minimum, clamped to 0
        // so huge-negative ranges (seed) shrink to a readable 0.
        int64_t lo = std::max<int64_t>(vs.int_min, 0);
        int64_t hi = value;
        while (lo < hi) {
          const int64_t mid = lo + (hi - lo) / 2;
          std::vector<std::string> candidate_tokens = tokens;
          candidate_tokens[v + 1] = std::to_string(mid);
          std::vector<Line> candidate = lines;
          candidate[i].text = JoinTokens(candidate_tokens);
          if (TryCandidate(JoinLines(candidate), current, still_fails,
                           stats)) {
            hi = mid;
            shrunk_any = true;
            changed = true;
            // `current` changed; re-split on the next loop iteration.
            break;
          }
          lo = mid + 1;
        }
        if (shrunk_any) break;  // lines are stale; restart this line
      }
      if (!shrunk_any) break;
    }
  }
  return changed;
}

}  // namespace

std::string MinimizeScenario(const std::string& conf_text,
                             const StillFailsFn& still_fails,
                             MinimizeStats* stats) {
  MinimizeStats local;
  if (stats == nullptr) stats = &local;
  *stats = MinimizeStats{};

  std::string current = conf_text;
  // Normalize trailing newline so the line round-trip is stable.
  if (!current.empty() && current.back() != '\n') current += "\n";

  constexpr int kMaxRounds = 5;
  for (int round = 0; round < kMaxRounds; ++round) {
    ++stats->rounds;
    bool changed = false;
    changed |= DropSections(&current, still_fails, stats);
    changed |= DropLines(&current, still_fails, stats);
    changed |= ShrinkIntegers(&current, still_fails, stats);
    if (!changed) break;
  }
  return current;
}

}  // namespace locktune
