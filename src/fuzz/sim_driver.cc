#include "fuzz/sim_driver.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace locktune {

namespace {

// Wall-clock ms for the kill deadline. steady_clock: the harness measures
// real elapsed time, and must be immune to clock steps.
int64_t WallNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string ReadFileOrEmpty(const std::string& path) {
  if (path.empty()) return "";
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Drains one pipe end into `out` until EOF or EWOULDBLOCK.
// Returns false on EOF.
bool DrainPipe(int fd, std::string* out) {
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      out->append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // read error: treat as EOF
  }
}

}  // namespace

SimRunResult RunSim(const SimRunRequest& request) {
  SimRunResult result;

  int out_pipe[2] = {-1, -1};
  int err_pipe[2] = {-1, -1};
  if (pipe(out_pipe) != 0) return result;
  if (pipe(err_pipe) != 0) {
    close(out_pipe[0]);
    close(out_pipe[1]);
    return result;
  }

  std::vector<std::string> args;
  args.push_back(request.sim_binary);
  args.push_back(request.conf_path);
  args.push_back("--threads");
  args.push_back(std::to_string(request.threads));
  if (request.tick_watchdog_ms > 0) {
    args.push_back("--tick-watchdog-ms");
    args.push_back(std::to_string(request.tick_watchdog_ms));
  }
  if (!request.series.empty()) {
    std::string joined;
    for (const std::string& name : request.series) {
      if (!joined.empty()) joined += ",";
      joined += name;
    }
    args.push_back("--series");
    args.push_back(joined);
    args.push_back("--stride");
    args.push_back("1");
  }
  if (!request.metrics_path.empty()) {
    args.push_back("--metrics-out");
    args.push_back(request.metrics_path);
  }
  if (!request.trace_path.empty()) {
    args.push_back("--trace-out");
    args.push_back(request.trace_path);
  }

  const pid_t pid = fork();
  if (pid < 0) {
    close(out_pipe[0]);
    close(out_pipe[1]);
    close(err_pipe[0]);
    close(err_pipe[1]);
    return result;
  }

  if (pid == 0) {
    // Child. Route stdout/stderr through the pipes, apply the run
    // environment, exec the simulator. Only async-signal-safe calls plus
    // the unavoidable argv marshalling before exec.
    dup2(out_pipe[1], STDOUT_FILENO);
    dup2(err_pipe[1], STDERR_FILENO);
    close(out_pipe[0]);
    close(out_pipe[1]);
    close(err_pipe[0]);
    close(err_pipe[1]);
    if (request.paranoid) setenv("LOCKTUNE_PARANOID", "1", 1);
    for (const auto& [key, value] : request.extra_env) {
      setenv(key.c_str(), value.c_str(), 1);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    // exec failed: report on the (redirected) stderr and die with a
    // distinctive code the parent maps to started = false.
    std::fprintf(stderr, "locktune_fuzz: cannot exec %s: %s\n",
                 argv[0], std::strerror(errno));
    _exit(127);
  }

  // Parent: non-blocking drains of both pipes under a wall-clock deadline.
  close(out_pipe[1]);
  close(err_pipe[1]);
  fcntl(out_pipe[0], F_SETFL, O_NONBLOCK);
  fcntl(err_pipe[0], F_SETFL, O_NONBLOCK);

  const int64_t deadline_ms = WallNowMs() + request.timeout_ms;
  bool out_open = true;
  bool err_open = true;
  while (out_open || err_open) {
    struct pollfd fds[2];
    nfds_t nfds = 0;
    if (out_open) fds[nfds++] = {out_pipe[0], POLLIN, 0};
    if (err_open) fds[nfds++] = {err_pipe[0], POLLIN, 0};
    const int64_t budget = deadline_ms - WallNowMs();
    if (budget <= 0) {
      result.timed_out = true;
      kill(pid, SIGKILL);
      break;
    }
    const int rc =
        poll(fds, nfds, static_cast<int>(std::min<int64_t>(budget, 200)));
    if (rc < 0 && errno != EINTR) break;
    if (out_open) out_open = DrainPipe(out_pipe[0], &result.stdout_text);
    if (err_open) err_open = DrainPipe(err_pipe[0], &result.stderr_text);
  }
  // Final drain after kill/EOF so buffered output is not lost.
  DrainPipe(out_pipe[0], &result.stdout_text);
  DrainPipe(err_pipe[0], &result.stderr_text);
  close(out_pipe[0]);
  close(err_pipe[0]);

  int status = 0;
  while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
    result.started = result.exit_code != 127;
  } else if (WIFSIGNALED(status)) {
    result.started = true;
    result.term_signal = WTERMSIG(status);
  }

  result.metrics_text = ReadFileOrEmpty(request.metrics_path);
  result.trace_text = ReadFileOrEmpty(request.trace_path);
  return result;
}

}  // namespace locktune
