// OLTP workload: short update transactions over the TPC-C style tables.
//
// Each transaction acquires a few hundred row locks (a mix of S and X) at a
// steady per-tick rate, commits, then thinks briefly. Row selection is
// Zipf-skewed within each table, giving mild hot-spot contention like a real
// order-entry workload.
#ifndef LOCKTUNE_WORKLOAD_OLTP_WORKLOAD_H_
#define LOCKTUNE_WORKLOAD_OLTP_WORKLOAD_H_

#include <vector>

#include "engine/catalog.h"
#include "workload/workload.h"

namespace locktune {

struct OltpOptions {
  // Mean row locks per transaction; actual draws are uniform in
  // [0.5·mean, 1.5·mean].
  int64_t mean_locks_per_txn = 400;
  // Acquisition rate per 100 ms simulation tick.
  int locks_per_tick = 50;
  // Fraction of row locks taken in X (updates) vs S (reads).
  double write_fraction = 0.2;
  DurationMs think_time = 200;
  // Zipf skew of row selection within a table (0 = uniform).
  double row_zipf_theta = 0.2;
};

class OltpWorkload : public Workload {
 public:
  // Uses the catalog's "tpcc_" tables. `catalog` must outlive the workload.
  OltpWorkload(const Catalog& catalog, const OltpOptions& options);

  TransactionProfile NextTransaction(Rng& rng) override;
  RowAccess NextAccess(Rng& rng) override;

  const OltpOptions& options() const { return options_; }

 private:
  OltpOptions options_;
  std::vector<TableId> tables_;
  std::vector<int64_t> row_counts_;
  std::vector<ZipfGenerator> row_pickers_;
  // Row-count-weighted table selection (an order-entry transaction touches
  // mostly order-line and stock rows, rarely the 100-row warehouse table).
  std::vector<int64_t> cumulative_rows_;
  int64_t total_rows_ = 0;
};

}  // namespace locktune

#endif  // LOCKTUNE_WORKLOAD_OLTP_WORKLOAD_H_
