#include "workload/scenario.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/paranoid.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/lock_profiler.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace locktune {

const char ScenarioRunner::kLockAllocatedMb[] = "lock_allocated_mb";
const char ScenarioRunner::kLockUsedMb[] = "lock_used_mb";
const char ScenarioRunner::kLmocMb[] = "lmoc_mb";
const char ScenarioRunner::kThroughputTps[] = "throughput_tps";
const char ScenarioRunner::kEscalations[] = "escalations";
const char ScenarioRunner::kExclusiveEscalations[] = "exclusive_escalations";
const char ScenarioRunner::kLockWaits[] = "lock_waits";
const char ScenarioRunner::kMaxlocksPercent[] = "maxlocks_percent";
const char ScenarioRunner::kOverflowMb[] = "overflow_mb";
const char ScenarioRunner::kClients[] = "clients";
const char ScenarioRunner::kBlockedApps[] = "blocked_apps";

namespace {

constexpr double kBytesPerMb = 1024.0 * 1024.0;

// Wall-clock nanoseconds for the tick watchdog. steady_clock, never the
// wall calendar: immune to NTP steps, and legal under locklint LL001
// (virtual time still comes exclusively from SimClock).
int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int ClientTimeline::ActiveAt(TimeMs t) const {
  int active = 0;
  for (const auto& [from, count] : steps) {
    if (from > t) break;
    active = count;
  }
  return active;
}

int ClientTimeline::MaxClients() const {
  int max_clients = 0;
  for (const auto& [from, count] : steps) {
    max_clients = std::max(max_clients, count);
  }
  return max_clients;
}

ScenarioRunner::ScenarioRunner(Database* db, std::vector<ClientTimeline> groups,
                               const ScenarioOptions& options)
    : db_(db),
      groups_(std::move(groups)),
      options_(options),
      store_(db, options.tick) {
  LOCKTUNE_CHECK(db != nullptr);
  LOCKTUNE_CHECK(options.tick > 0);
  LOCKTUNE_CHECK(options.threads >= 1);
  LOCKTUNE_CHECK(options.tick_watchdog_ms >= 0);
  // Deliberate-defect plants for oracle self-tests (docs/FUZZING.md). The
  // variable is unset outside tests/fuzz_e2e, so this is a no-op in
  // production runs.
  if (const char* plant = std::getenv("LOCKTUNE_TEST_PLANT");
      plant != nullptr && *plant != '\0') {
    if (std::strcmp(plant, "thread_skew") == 0) {
      planted_ = PlantedBug::kThreadSkew;
    } else if (std::strcmp(plant, "invariant") == 0) {
      planted_ = PlantedBug::kInvariant;
    } else if (std::strcmp(plant, "livelock") == 0) {
      planted_ = PlantedBug::kLivelock;
    } else {
      LOCKTUNE_CHECK(false && "unknown LOCKTUNE_TEST_PLANT value");
    }
  }
  // First sample lands one full period in, so every sample window covers
  // the same span.
  next_sample_ = db->clock().now() + options_.sample_period;
  store_.set_stats_sink(&totals_);
  AppId next_id = 1;
  Rng seeder(options_.seed);
  for (const ClientTimeline& g : groups_) {
    LOCKTUNE_CHECK(g.workload != nullptr);
    group_start_.push_back(apps_.size());
    for (int i = 0; i < g.MaxClients(); ++i) {
      const uint32_t index =
          store_.Add(next_id++, g.workload, seeder.Next());
      apps_.emplace_back(&store_, index);
    }
  }
  group_start_.push_back(apps_.size());
  RegisterMetrics();
}

void ScenarioRunner::RegisterMetrics() {
  MetricsRegistry& registry = db_->metrics();
  registry.AddCallbackCounter(
      "locktune_workload_commits_total", "transactions committed",
      [this] { return total_commits(); });
  registry.AddCallbackCounter(
      "locktune_workload_deadlock_aborts_total",
      "transactions aborted as deadlock victims",
      [this] { return total_deadlock_aborts(); });
  registry.AddCallbackCounter(
      "locktune_workload_timeout_aborts_total",
      "transactions aborted past LOCKTIMEOUT",
      [this] { return total_timeout_aborts(); });
  registry.AddCallbackCounter(
      "locktune_workload_oom_aborts_total",
      "transactions failed for lack of lock memory",
      [this] { return total_oom_aborts(); });
  if (options_.robustness_metrics) {
    // Only for chaos scenarios: registering these unconditionally would
    // change every fault-free metric export.
    registry.AddCallbackCounter(
        "locktune_workload_user_aborts_total",
        "transactions rolled back by the client (abort storms)",
        [this] { return total_user_aborts(); });
    registry.AddCallbackCounter(
        "locktune_workload_kill_aborts_total",
        "transactions rolled back by mid-flight connection kills",
        [this] { return total_kill_aborts(); });
  }
  registry.AddCallbackCounter(
      "locktune_workload_locks_acquired_total", "row/table locks acquired",
      [this] { return totals_.locks_acquired.load(std::memory_order_relaxed); });
  registry.AddCallbackCounter(
      "locktune_workload_table_plan_txns_total",
      "transactions compiled to table locking",
      [this] { return totals_.table_plan_txns.load(std::memory_order_relaxed); });
  registry.AddCallbackGauge(
      "locktune_workload_clients", "connected applications",
      [this] { return static_cast<double>(db_->connected_applications()); });
  registry.AddCallbackGauge(
      "locktune_workload_throughput_tps",
      "commit rate over the last sample period",
      [this] { return last_sample_tps_; });
  registry.AddCallbackGauge(
      "locktune_workload_max_held_locks",
      "most lock structures held by any one application",
      [this] {
        // One aggregate pass under one manager guard; the former
        // per-application HeldStructures loop re-locked the manager once
        // per client, which at 10^6 applications stalled every export.
        return static_cast<double>(db_->locks().MaxHeldStructures());
      });
}

void ScenarioRunner::Run() { RunUntil(options_.duration); }

void ScenarioRunner::RunUntil(TimeMs until) {
  if (options_.threads > 1) {
    RunUntilParallel(until);
    return;
  }
  while (db_->clock().now() < until) {
    const TimeMs now = db_->clock().now();
    BeginTick(now);
    // Event-driven sweep: only this tick's runnable applications (running,
    // blocked, or woken by the deadline wheel) are touched; parked and
    // disconnected ones cost nothing. Ascending index order — the same
    // cross-application request order as the legacy all-apps loop.
    for (const uint32_t i : store_.CollectRunnable()) store_.Tick(i);
    FinishTick(now);
  }
}

// Parallel execution: every tick the coordinator collects the runnable
// work list serially, then fans it out over options_.threads persistent
// workers as contiguous, near-equal chunks. Chunking the *runnable* list —
// not striding application indices — is what balances the tick: with a
// partly-idle population, `i % threads` assigned workers whole swaths of
// parked applications while one worker inherited every active client of a
// dense group. Each index is ticked by exactly one worker, and workers
// join a barrier before the serial phase (scheduler reconciliation, STMM
// tuning inside db_->Tick, deadlock/timeout detection, sampling) so it
// observes a consistent epoch snapshot: no application mutates lock state
// while it runs. Lock-manager internals are protected separately (see
// docs/CONCURRENCY.md); this loop only guarantees the tick-grain phasing.
void ScenarioRunner::RunUntilParallel(TimeMs until) {
  const int workers = options_.threads;
  db_->locks().SetParallelMode(true);
  std::atomic<bool> stop{false};
  // +1: the coordinator (this thread) participates in both barriers.
  std::barrier start_barrier(workers + 1);
  std::barrier done_barrier(workers + 1);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([this, w, workers, &stop, &start_barrier,
                       &done_barrier] {
      for (;;) {
        {
          // Barrier waits are where load imbalance shows up: a worker that
          // finished early stalls here until the slowest one arrives.
          ProfileTimer barrier_wait(ProfileSite::kTickBarrier);
          start_barrier.arrive_and_wait();
        }
        if (stop.load(std::memory_order_acquire)) return;
        ChromeTraceCollector* trace = GlobalTraceCollector();
        const int64_t t0 = trace != nullptr ? trace->RealNowUs() : 0;
        // This tick's chunk: the work list was rebuilt by the coordinator
        // before the start barrier (which orders it before these reads).
        const std::vector<uint32_t>& work = store_.work();
        const size_t chunk =
            (work.size() + static_cast<size_t>(workers) - 1) /
            static_cast<size_t>(workers);
        const size_t begin =
            std::min(static_cast<size_t>(w) * chunk, work.size());
        const size_t end = std::min(begin + chunk, work.size());
        for (size_t k = begin; k < end; ++k) store_.Tick(work[k]);
        if (trace != nullptr) {
          // Real-clock span on the profiler process: one slice per worker
          // per tick, so Perfetto shows the actual parallel overlap.
          trace->Span("worker_tick", kTracePidReal, w, t0,
                      trace->RealNowUs() - t0);
        }
        {
          ProfileTimer barrier_wait(ProfileSite::kTickBarrier);
          done_barrier.arrive_and_wait();
        }
      }
    });
  }
  while (db_->clock().now() < until) {
    const TimeMs now = db_->clock().now();
    BeginTick(now);
    store_.CollectRunnable();
    start_barrier.arrive_and_wait();  // release workers into this tick
    done_barrier.arrive_and_wait();   // epoch barrier: all apps ticked
    FinishTick(now);
  }
  stop.store(true, std::memory_order_release);
  start_barrier.arrive_and_wait();  // release workers into the stop check
  for (std::thread& t : pool) t.join();
  db_->locks().SetParallelMode(false);
}

void ScenarioRunner::BeginTick(TimeMs now) {
  if (options_.tick_watchdog_ms > 0) tick_start_ns_ = WallNowNs();
  ApplyTimelines(now);

  // Fault-plan connection kills. A killed application rolls back and
  // disconnects this tick; the next ApplyTimelines reconnects it if its
  // timeline says it should be active (crash-and-restart).
  if (FaultPlan* fault = db_->fault_plan();
      fault != nullptr && fault->Armed()) {
    for (int32_t victim : fault->TakeDueKills()) {
      // Kill targets are 1-based application indices, like deadlock
      // victims below.
      const size_t idx = static_cast<size_t>(victim - 1);
      LOCKTUNE_CHECK(idx < apps_.size());
      store_.KillConnection(static_cast<uint32_t>(idx));
    }
  }
}

void ScenarioRunner::FinishTick(TimeMs now) {
  if (ChromeTraceCollector* trace = GlobalTraceCollector()) {
    // Virtual-time tick span: sim time advances exactly one tick per
    // iteration, so the spans tile the timeline.
    trace->Span("tick", kTracePidSim, kTraceTidTicks, SimTimeToTraceUs(now),
                options_.tick * 1000,
                "{\"clients\":" +
                    std::to_string(db_->connected_applications()) + "}");
  }

  // Scheduler reconciliation: applications that parked during the sweep
  // (committed, aborted, began holding) leave the runnable set and enter
  // the deadline wheel. Serial by contract — workers have joined.
  store_.FinishSweep();

  // Advance virtual time; due STMM tuning passes run inside.
  db_->Tick(options_.tick);

  if (now >= next_deadlock_check_) {
    next_deadlock_check_ = now + options_.deadlock_check_period;
    for (AppId victim : db_->locks().DetectDeadlocks()) {
      // Victim AppIds are 1-based application indices by construction.
      const size_t idx = static_cast<size_t>(victim - 1);
      LOCKTUNE_CHECK(idx < apps_.size());
      store_.AbortForDeadlock(static_cast<uint32_t>(idx));
    }
    for (AppId victim : db_->locks().ExpireTimedOutWaiters()) {
      const size_t idx = static_cast<size_t>(victim - 1);
      LOCKTUNE_CHECK(idx < apps_.size());
      store_.AbortForTimeout(static_cast<uint32_t>(idx));
    }
  }

  if (db_->clock().now() >= next_sample_) {
    next_sample_ += options_.sample_period;
    Sample(db_->clock().now());
  }

  // Planted defects for the fuzzer's oracle self-tests; `planted_` is
  // kNone unless LOCKTUNE_TEST_PLANT is set.
  if (planted_ == PlantedBug::kInvariant && ParanoidEnabled() &&
      now >= 5 * kSecond) {
    LOCKTUNE_CHECK(false && "planted invariant violation");
  }
  if (planted_ == PlantedBug::kLivelock && now >= 2 * kSecond) {
    // Finite but grossly over-budget ticks: the watchdog (not the outer
    // kill timeout) is what should catch this shape of livelock.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }

  if (options_.tick_watchdog_ms > 0) {
    const int64_t elapsed_ms = (WallNowNs() - tick_start_ns_) / 1'000'000;
    if (elapsed_ms > options_.tick_watchdog_ms) {
      std::fprintf(stderr,
                   "locktune: tick at t=%lld ms took %lld ms of wall time "
                   "(watchdog budget %lld ms)\n",
                   static_cast<long long>(now),
                   static_cast<long long>(elapsed_ms),
                   static_cast<long long>(options_.tick_watchdog_ms));
      LOCKTUNE_CHECK(false && "tick watchdog exceeded (livelock?)");
    }
  }
}

void ScenarioRunner::ApplyTimelines(TimeMs now) {
  int total_active = 0;
  for (size_t g = 0; g < groups_.size(); ++g) {
    const int want = groups_[g].ActiveAt(now);
    total_active += want;
    const size_t start = group_start_[g];
    const size_t end = group_start_[g + 1];
    LOCKTUNE_CHECK(static_cast<size_t>(want) <= end - start);
    for (size_t i = start; i < end; ++i) {
      const bool should_connect = i - start < static_cast<size_t>(want);
      const uint32_t index = static_cast<uint32_t>(i);
      if (should_connect && !store_.connected(index)) {
        store_.Connect(index);
      } else if (!should_connect && store_.connected(index)) {
        store_.Disconnect(index);
      }
    }
  }
  db_->set_connected_applications(total_active);
  if (total_active != last_total_active_) {
    if (TraceSink* sink = db_->trace_sink();
        sink != nullptr && last_total_active_ >= 0) {
      TraceRecord rec(now, "clients_change");
      rec.Int("from", last_total_active_).Int("to", total_active);
      sink->Append(rec);
    }
    last_total_active_ = total_active;
  }
}

void ScenarioRunner::Sample(TimeMs now) {
  const LockManagerStats& stats = db_->locks().stats();
  const double seconds =
      static_cast<double>(options_.sample_period) / 1000.0;
  const int64_t commits = total_commits();

  series_.Record(kLockAllocatedMb, now,
                 static_cast<double>(db_->locks().allocated_bytes()) /
                     kBytesPerMb);
  series_.Record(kLockUsedMb, now,
                 static_cast<double>(db_->locks().used_bytes()) / kBytesPerMb);
  series_.Record(kLmocMb, now,
                 db_->stmm() != nullptr
                     ? static_cast<double>(db_->stmm()->lmoc()) / kBytesPerMb
                     : static_cast<double>(db_->locks().allocated_bytes()) /
                           kBytesPerMb);
  last_sample_tps_ =
      static_cast<double>(commits - last_sample_commits_) / seconds;
  series_.Record(kThroughputTps, now, last_sample_tps_);
  last_sample_commits_ = commits;
  series_.Record(kEscalations, now, static_cast<double>(stats.escalations));
  series_.Record(kExclusiveEscalations, now,
                 static_cast<double>(stats.exclusive_escalations));
  series_.Record(kLockWaits, now, static_cast<double>(stats.lock_waits));
  series_.Record(kMaxlocksPercent, now,
                 db_->locks().CurrentMaxlocksPercent());
  series_.Record(kOverflowMb, now,
                 static_cast<double>(db_->memory().overflow_bytes()) /
                     kBytesPerMb);
  // The thread_skew plant is the canonical thread-count-dependent bug the
  // differential oracle must catch: the clients series silently gains
  // (threads - 1) under --threads N.
  const double skew = planted_ == PlantedBug::kThreadSkew
                          ? static_cast<double>(options_.threads - 1)
                          : 0.0;
  series_.Record(kClients, now,
                 static_cast<double>(db_->connected_applications()) + skew);
  series_.Record(kBlockedApps, now,
                 static_cast<double>(db_->locks().waiting_app_count()));
}

}  // namespace locktune
