#include "workload/dss_workload.h"

#include "common/check.h"

namespace locktune {

DssWorkload::DssWorkload(const Catalog& catalog, const DssOptions& options)
    : options_(options) {
  LOCKTUNE_CHECK(options.scan_locks > 0);
  LOCKTUNE_CHECK(options.locks_per_tick > 0);
  const TableInfo* lineitem = catalog.FindByName("tpch_lineitem");
  LOCKTUNE_CHECK(lineitem != nullptr && "catalog lacks tpch_lineitem");
  table_ = lineitem->id;
  row_count_ = lineitem->row_count;
}

TransactionProfile DssWorkload::NextTransaction(Rng&) {
  TransactionProfile p;
  p.total_locks = options_.scan_locks;
  p.locks_per_tick = options_.locks_per_tick;
  p.hold_time = options_.hold_time;
  p.think_time = options_.think_time;
  return p;
}

RowAccess DssWorkload::NextAccess(Rng&) {
  RowAccess a;
  a.table = table_;
  a.row = cursor_.fetch_add(1, std::memory_order_relaxed) % row_count_;
  a.mode = LockMode::kS;
  return a;
}

}  // namespace locktune
