#include "workload/scenario_schema.h"

namespace locktune {

ValueSchema ValueSchema::IntIn(int64_t min, int64_t max) {
  ValueSchema v;
  v.kind = ValueKind::kInt;
  v.int_min = min;
  v.int_max = max;
  return v;
}

ValueSchema ValueSchema::DoubleIn(double lo, bool lo_open, double hi,
                                  bool hi_open) {
  ValueSchema v;
  v.kind = ValueKind::kDouble;
  v.lo = lo;
  v.hi = hi;
  v.lo_open = lo_open;
  v.hi_open = hi_open;
  return v;
}

ValueSchema ValueSchema::EnumOf(std::vector<std::string> choices) {
  ValueSchema v;
  v.kind = ValueKind::kEnum;
  v.choices = std::move(choices);
  return v;
}

ValueSchema ValueSchema::NameOf(std::vector<std::string> choices) {
  ValueSchema v;
  v.kind = ValueKind::kName;
  v.choices = std::move(choices);
  return v;
}

namespace {

// Shorthand used only by the table below.
ValueSchema Seconds() { return ValueSchema::IntIn(0, kMaxScenarioSeconds); }
ValueSchema PositiveSeconds() {
  return ValueSchema::IntIn(1, kMaxScenarioSeconds);
}
ValueSchema LockMode() {
  return ValueSchema::EnumOf({"S", "U", "X"});
}
ValueSchema TableName() {
  // The built-in catalog's tables (engine/catalog.cc). kName: the parser
  // accepts any identifier and validates against the catalog at
  // instantiation time; these spellings are for generators.
  return ValueSchema::NameOf({"tpcc_warehouse", "tpcc_district",
                              "tpcc_customer", "tpcc_orders",
                              "tpcc_order_line", "tpcc_stock", "tpcc_item",
                              "tpcc_new_order", "tpcc_history",
                              "tpch_lineitem", "tpch_orders",
                              "tpch_customer", "tpch_part", "tpch_partsupp",
                              "tpch_supplier", "tpch_nation"});
}

std::vector<KeySchema> BuildSchema() {
  const auto key = [](std::string section, std::string name,
                      std::vector<ValueSchema> values, size_t min_values,
                      bool repeatable) {
    KeySchema k;
    k.section = std::move(section);
    k.key = std::move(name);
    k.values = std::move(values);
    k.min_values = min_values;
    k.repeatable = repeatable;
    return k;
  };
  const auto one = [&key](std::string section, std::string name,
                          ValueSchema value) {
    return key(std::move(section), std::move(name), {std::move(value)}, 1,
               false);
  };

  std::vector<KeySchema> schema;

  // Global section.
  schema.push_back(one("", "database_memory_mb",
                       ValueSchema::IntIn(1, kMaxScenarioMemoryMb)));
  schema.push_back(
      one("", "mode",
          ValueSchema::EnumOf({"selftuning", "static", "sqlserver"})));
  schema.push_back(one("", "static_locklist_pages",
                       ValueSchema::IntIn(1, kMaxScenarioPages)));
  schema.push_back(one("", "static_maxlocks_percent",
                       ValueSchema::DoubleIn(0, true, 100, false)));
  schema.push_back(one("", "initial_locklist_pages",
                       ValueSchema::IntIn(1, kMaxScenarioPages)));
  schema.push_back(one("", "tuning_interval_s", PositiveSeconds()));
  schema.push_back(
      one("", "adaptive_interval", ValueSchema::EnumOf({"on", "off"})));
  schema.push_back(one("", "lock_timeout_ms",
                       ValueSchema::IntIn(-kMaxScenarioTimeoutMs,
                                          kMaxScenarioTimeoutMs)));
  schema.push_back(one("", "duration_s", PositiveSeconds()));
  schema.push_back(one("", "sample_period_s", PositiveSeconds()));
  schema.push_back(one("", "seed",
                       ValueSchema::IntIn(INT64_MIN, INT64_MAX)));
  schema.push_back(one("", "delta_reduce_percent",
                       ValueSchema::DoubleIn(0, true, 100, true)));

  // Shared by every workload section.
  schema.push_back(key(kSharedWorkloadSection, "clients",
                       {Seconds(),
                        ValueSchema::IntIn(0, kMaxScenarioClients)},
                       2, true));

  // [oltp]
  schema.push_back(one("oltp", "mean_locks_per_txn",
                       ValueSchema::IntIn(1, kMaxScenarioLocks)));
  schema.push_back(one("oltp", "locks_per_tick",
                       ValueSchema::IntIn(1, kMaxScenarioLocksPerTick)));
  schema.push_back(one("oltp", "write_fraction",
                       ValueSchema::DoubleIn(0, false, 1, false)));
  schema.push_back(one("oltp", "think_time_ms",
                       ValueSchema::IntIn(0, kMaxScenarioThinkMs)));
  schema.push_back(one("oltp", "zipf",
                       ValueSchema::DoubleIn(0, false, 1, true)));

  // [dss]
  schema.push_back(one("dss", "scan_locks",
                       ValueSchema::IntIn(1, kMaxScenarioLocks)));
  schema.push_back(one("dss", "locks_per_tick",
                       ValueSchema::IntIn(1, kMaxScenarioLocksPerTick)));
  schema.push_back(one("dss", "hold_time_s", Seconds()));
  schema.push_back(one("dss", "think_time_s", Seconds()));

  // [batch]
  schema.push_back(one("batch", "rows_per_batch",
                       ValueSchema::IntIn(1, kMaxScenarioLocks)));
  schema.push_back(one("batch", "locks_per_tick",
                       ValueSchema::IntIn(1, kMaxScenarioLocksPerTick)));
  schema.push_back(one("batch", "hold_time_s", Seconds()));
  schema.push_back(one("batch", "think_time_s", Seconds()));
  schema.push_back(one("batch", "table", TableName()));
  schema.push_back(one("batch", "mode", LockMode()));

  // [hostile]
  schema.push_back(one("hostile", "archetype",
                       ValueSchema::EnumOf({"lock_hog", "idle_holder",
                                            "abort_storm",
                                            "request_storm"})));
  schema.push_back(one("hostile", "table", TableName()));
  schema.push_back(one("hostile", "locks_per_txn",
                       ValueSchema::IntIn(1, kMaxScenarioLocks)));
  schema.push_back(one("hostile", "locks_per_tick",
                       ValueSchema::IntIn(1, kMaxScenarioLocksPerTick)));
  schema.push_back(one("hostile", "hold_time_s", Seconds()));
  schema.push_back(one("hostile", "think_time_s", Seconds()));
  schema.push_back(one("hostile", "mode", LockMode()));

  // [fault]
  schema.push_back(one("fault", "fault_seed",
                       ValueSchema::IntIn(INT64_MIN, INT64_MAX)));
  schema.push_back(key("fault", "deny_heap",
                       {ValueSchema::NameOf({"locklist", "buffer_pool",
                                             "sort", "package_cache", "*"}),
                        Seconds(), Seconds(),
                        ValueSchema::DoubleIn(0, false, 1, false)},
                       3, true));
  schema.push_back(key("fault", "squeeze_overflow_mb",
                       {ValueSchema::IntIn(1, kMaxScenarioMemoryMb),
                        Seconds(), Seconds()},
                       3, true));
  schema.push_back(key("fault", "kill_app",
                       {ValueSchema::IntIn(1, kMaxScenarioClients),
                        Seconds()},
                       2, true));

  return schema;
}

}  // namespace

const std::vector<KeySchema>& ScenarioSchema() {
  static const std::vector<KeySchema>* schema =
      new std::vector<KeySchema>(BuildSchema());
  return *schema;
}

const std::vector<std::string>& ScenarioSectionNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "oltp", "dss", "batch", "hostile", "fault"};
  return *names;
}

const KeySchema* FindKeySchema(std::string_view section,
                               std::string_view key) {
  const bool workload_section = section == "oltp" || section == "dss" ||
                                section == "batch" || section == "hostile";
  for (const KeySchema& k : ScenarioSchema()) {
    if (k.key != key) continue;
    if (k.section == section) return &k;
    if (k.section == kSharedWorkloadSection &&
        (workload_section || section == kSharedWorkloadSection)) {
      return &k;
    }
  }
  return nullptr;
}

}  // namespace locktune
