// Workload abstraction: what lock demand a client application generates.
//
// A Workload produces transaction profiles (how many row locks, how fast,
// how long the result is held) and row accesses (which table/row/mode).
// The Application state machine in application.h turns these into lock
// manager traffic.
#ifndef LOCKTUNE_WORKLOAD_WORKLOAD_H_
#define LOCKTUNE_WORKLOAD_WORKLOAD_H_

#include <cstdint>

#include "common/random.h"
#include "common/sim_clock.h"
#include "lock/lock_mode.h"
#include "lock/resource.h"

namespace locktune {

struct RowAccess {
  TableId table = 0;
  int64_t row = 0;
  LockMode mode = LockMode::kS;
};

struct TransactionProfile {
  // Row locks the transaction acquires in total.
  int64_t total_locks = 0;
  // Acquisition rate: row locks requested per simulation tick.
  int locks_per_tick = 0;
  // Time locks are held after the last acquisition, before commit
  // (0 for OLTP; long for a reporting query that keeps scanning state).
  DurationMs hold_time = 0;
  // Client think time after commit, before the next transaction.
  DurationMs think_time = 0;
  // Misbehaving application (abort-storm archetype): the transaction does
  // all its work, then rolls back instead of committing.
  bool abort_at_end = false;
};

class Workload {
 public:
  virtual ~Workload() = default;

  // Profile for the next transaction of one client.
  virtual TransactionProfile NextTransaction(Rng& rng) = 0;

  // The next row this transaction touches.
  virtual RowAccess NextAccess(Rng& rng) = 0;
};

}  // namespace locktune

#endif  // LOCKTUNE_WORKLOAD_WORKLOAD_H_
