// Machine-readable schema of the scenario-file input language.
//
// One table describes every section, key, arity, value type, and numeric
// range the parser accepts. The parser (scenario_config.cc) enforces its
// integer/double ranges *from this table*, and the scenario fuzzer
// (src/fuzz/scenario_gen.h) samples values *from this table* — so the
// generator cannot drift from the parser: a key renamed, removed, or
// re-ranged in one place breaks the other's tests immediately
// (tests/workload/scenario_schema_test.cc round-trips every entry).
//
// Sections use their file spelling without brackets; two pseudo-sections
// exist: "" (the global key space before any section header) and
// kSharedWorkloadSection (keys accepted by every workload section, today
// just `clients`).
#ifndef LOCKTUNE_WORKLOAD_SCENARIO_SCHEMA_H_
#define LOCKTUNE_WORKLOAD_SCENARIO_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace locktune {

// Hard caps shared by the parser and the generator. Generous by design:
// they exist to reject values that overflow downstream unit conversions
// (e.g. `mb * kMiB`, `seconds * 1000`), not to police plausibility.
inline constexpr int64_t kMaxScenarioMemoryMb = 1'048'576;   // 1 TiB
inline constexpr int64_t kMaxScenarioPages = 1'000'000'000;
inline constexpr int64_t kMaxScenarioSeconds = 10'000'000;   // ~115 days
inline constexpr int64_t kMaxScenarioTimeoutMs = 1'000'000'000;
inline constexpr int64_t kMaxScenarioLocks = 1'000'000'000;
inline constexpr int64_t kMaxScenarioLocksPerTick = 10'000'000;
inline constexpr int64_t kMaxScenarioThinkMs = 100'000'000;
inline constexpr int64_t kMaxScenarioClients = 1'000'000;

// The pseudo-section for keys every workload section shares.
inline constexpr char kSharedWorkloadSection[] = "*workload*";

enum class ValueKind {
  kInt,     // integer in [int_min, int_max]
  kDouble,  // double in lo..hi with per-end openness
  kEnum,    // one of `choices`, exact spelling
  kName,    // free identifier (table / heap name); `choices` lists
            // known-valid spellings for generators, not a parser limit
};

// One positional value of a key.
struct ValueSchema {
  ValueKind kind = ValueKind::kInt;
  int64_t int_min = 0;
  int64_t int_max = 0;
  double lo = 0.0;
  double hi = 0.0;
  bool lo_open = false;
  bool hi_open = false;
  std::vector<std::string> choices;

  static ValueSchema IntIn(int64_t min, int64_t max);
  static ValueSchema DoubleIn(double lo, bool lo_open, double hi,
                              bool hi_open);
  static ValueSchema EnumOf(std::vector<std::string> choices);
  static ValueSchema NameOf(std::vector<std::string> choices);
};

// One key of the scenario language.
struct KeySchema {
  std::string section;  // "", kSharedWorkloadSection, or a section name
  std::string key;
  std::vector<ValueSchema> values;
  // Required prefix of `values`; trailing entries are optional (e.g.
  // deny_heap's probability).
  size_t min_values = 0;
  // May appear more than once per section (list-building keys).
  bool repeatable = false;
};

// The full key table, in deterministic declaration order.
const std::vector<KeySchema>& ScenarioSchema();

// Workload section names as they appear between brackets, plus "fault".
const std::vector<std::string>& ScenarioSectionNames();

// Lookup by (section, key); shared workload keys are found under their
// concrete section name too. Returns nullptr when the pair is unknown.
const KeySchema* FindKeySchema(std::string_view section,
                               std::string_view key);

}  // namespace locktune

#endif  // LOCKTUNE_WORKLOAD_SCENARIO_SCHEMA_H_
