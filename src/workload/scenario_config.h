// Text-file scenario descriptions for the locktune simulator CLI.
//
// A scenario file is line-based: global `key value` pairs first, then one
// or more workload sections. Example:
//
//     # Figure 11, scaled
//     database_memory_mb 1024
//     mode selftuning
//     duration_s 720
//     lock_timeout_ms -1
//
//     [oltp]
//     clients 0 60          # from t=0 s, 60 clients
//     mean_locks_per_txn 400
//     write_fraction 0.2
//
//     [dss]
//     clients 330 1         # the reporting query arrives at t=330 s
//     scan_locks 800000
//     locks_per_tick 3000
//     hold_time_s 600
//
// Chaos scenarios add a `[hostile]` workload section (misbehaving
// application archetypes: lock_hog, idle_holder, abort_storm,
// request_storm) and a `[fault]` section scheduling deterministic fault
// injection (see docs/ROBUSTNESS.md):
//
//     [fault]
//     deny_heap locklist 120 180      # refuse locklist growth, t=[120,180)s
//     squeeze_overflow_mb 64 60 90    # withhold 64 MB of overflow
//     kill_app 3 45                   # kill application #3 at t=45 s
//
// `#` starts a comment; blank lines are ignored. Parsing is strict:
// unknown keys, malformed numbers, or out-of-range values produce an error
// of the form `<file>:<line>: ...` naming the offending key and the
// expected form.
#ifndef LOCKTUNE_WORKLOAD_SCENARIO_CONFIG_H_
#define LOCKTUNE_WORKLOAD_SCENARIO_CONFIG_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "workload/batch_workload.h"
#include "workload/dss_workload.h"
#include "workload/hostile_workload.h"
#include "workload/oltp_workload.h"
#include "workload/scenario.h"

namespace locktune {

// One workload section from the file.
struct WorkloadSpec {
  enum class Kind { kOltp, kDss, kBatch, kHostile } kind = Kind::kOltp;
  OltpOptions oltp;
  DssOptions dss;
  BatchOptions batch;
  HostileOptions hostile;
  std::string batch_table = "tpch_orders";
  std::string hostile_table = "tpcc_stock";
  std::vector<std::pair<TimeMs, int>> client_steps;
};

// A fully parsed scenario: database options (including any fault plan) +
// workloads + runner options.
struct ScenarioSpec {
  DatabaseOptions database;
  ScenarioOptions runner;
  std::vector<WorkloadSpec> workloads;
};

// Parses scenario text. On error, the message is `source_name:line: ...`
// and names the offending key.
[[nodiscard]] Result<ScenarioSpec> ParseScenario(
    const std::string& text, const std::string& source_name = "<scenario>");

// Convenience: parse + reads the file (errors name the file path).
// NOT_FOUND if unreadable.
[[nodiscard]] Result<ScenarioSpec> LoadScenarioFile(const std::string& path);

// Instantiated, runnable scenario (owns the database and workloads).
class LoadedScenario {
 public:
  // Builds the database, workload objects, and runner from a spec.
  [[nodiscard]] static Result<std::unique_ptr<LoadedScenario>> Create(
      const ScenarioSpec& spec);

  Database& database() { return *database_; }
  ScenarioRunner& runner() { return *runner_; }

 private:
  LoadedScenario() = default;

  std::unique_ptr<Database> database_;
  std::vector<std::unique_ptr<Workload>> workloads_;
  std::unique_ptr<ScenarioRunner> runner_;
};

}  // namespace locktune

#endif  // LOCKTUNE_WORKLOAD_SCENARIO_CONFIG_H_
