// Scenario driver: scripted client timelines over a Database.
//
// A scenario is a set of client groups, each sharing a Workload and an
// active-client step function over virtual time (ramp, surge, reduction,
// injection). The runner advances the simulation tick by tick, drives every
// connected application, runs deadlock detection, and samples the metric
// series each experiment reports (lock memory allocated/used, throughput,
// escalations, ...).
#ifndef LOCKTUNE_WORKLOAD_SCENARIO_H_
#define LOCKTUNE_WORKLOAD_SCENARIO_H_

#include <memory>
#include <vector>

#include "common/time_series.h"
#include "engine/database.h"
#include "workload/application.h"
#include "workload/workload.h"

namespace locktune {

// Step function of active clients: `steps` are (from_time, client_count)
// pairs sorted by time; the count holds until the next step.
struct ClientTimeline {
  Workload* workload = nullptr;  // borrowed
  std::vector<std::pair<TimeMs, int>> steps;

  int ActiveAt(TimeMs t) const;
  int MaxClients() const;
};

struct ScenarioOptions {
  DurationMs tick = 100;
  DurationMs sample_period = 1 * kSecond;
  DurationMs deadlock_check_period = 1 * kSecond;
  DurationMs duration = 1 * kMinute;
  uint64_t seed = 42;
  // Registers the kill/user-abort metric counters. Chaos scenarios set
  // this (scenario_config does it whenever a [fault] or [hostile] section
  // is present); it stays off otherwise so fault-free metric exports are
  // byte-identical to earlier versions.
  bool robustness_metrics = false;
  // Worker threads driving runnable applications each tick. 1 (default)
  // is the deterministic single-threaded path — the golden contract. With
  // N > 1, each tick's runnable work list is partitioned into contiguous
  // chunks across N workers (idle/parked applications never reach a
  // worker), the lock manager's parallel fast path is enabled, and each
  // tick ends at a barrier so the serial phase (STMM tuning,
  // deadlock/timeout checks, sampling) observes a consistent snapshot.
  // See docs/CONCURRENCY.md and docs/SCALE.md.
  int threads = 1;
  // Livelock watchdog: wall-clock budget for one simulation tick, in real
  // milliseconds (0 = off). A tick that exceeds it aborts via
  // LOCKTUNE_CHECK, leaving the grep-stable "CHECK failed" marker plus
  // flight-recorder dump. This bounds *slow* ticks (convoys, livelock with
  // progress); a tick that never returns is the supervising harness's
  // problem (locktune_fuzz pairs this with a kill timeout). Wall-clock by
  // design, so it never perturbs virtual-time determinism.
  int64_t tick_watchdog_ms = 0;
};

class ScenarioRunner {
 public:
  // `db` and the workloads inside `groups` are borrowed.
  ScenarioRunner(Database* db, std::vector<ClientTimeline> groups,
                 const ScenarioOptions& options);

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  // Runs the scenario to options().duration.
  void Run();

  // Runs until the given virtual time (callable repeatedly for phased
  // assertions in tests).
  void RunUntil(TimeMs until);

  const TimeSeriesSet& series() const { return series_; }
  const ScenarioOptions& options() const { return options_; }
  Database* db() { return db_; }

  // Aggregates over all applications. O(1): every application mirrors its
  // counter bumps into `totals_`, so sample points and metric callbacks do
  // not re-sum the whole client population.
  int64_t total_commits() const { return totals_.commits; }
  int64_t total_deadlock_aborts() const { return totals_.deadlock_aborts; }
  int64_t total_timeout_aborts() const { return totals_.timeout_aborts; }
  int64_t total_oom_aborts() const { return totals_.oom_aborts; }
  int64_t total_user_aborts() const { return totals_.user_aborts; }
  int64_t total_kill_aborts() const { return totals_.kill_aborts; }

  const std::vector<Application>& applications() const { return apps_; }

  // The SoA store backing the applications — aggregate views (phase
  // histogram) for diagnostic tools. Serial contexts only.
  const AppStore& store() const { return store_; }

  // Series names sampled each sample_period.
  static const char kLockAllocatedMb[];
  static const char kLockUsedMb[];
  static const char kLmocMb[];
  static const char kThroughputTps[];
  static const char kEscalations[];
  static const char kExclusiveEscalations[];
  static const char kLockWaits[];
  static const char kMaxlocksPercent[];
  static const char kOverflowMb[];
  static const char kClients[];
  static const char kBlockedApps[];

 private:
  // Serial tick phases shared by both execution modes: BeginTick applies
  // timelines and due connection kills; FinishTick reconciles the
  // scheduler (FinishSweep), advances virtual time (STMM passes run
  // inside), and runs the periodic deadlock/timeout checks and sampling.
  // Between the two, the store's runnable work list is ticked — inline for
  // threads == 1, contiguous chunks fanned out over workers otherwise.
  void BeginTick(TimeMs now);
  void FinishTick(TimeMs now);
  void RunUntilParallel(TimeMs until);
  void ApplyTimelines(TimeMs now);
  void Sample(TimeMs now);
  // Registers the workload metric family (`locktune_workload_*`) with the
  // database's registry: commit/abort counters, throughput, client count,
  // and the heaviest per-app held-lock count.
  void RegisterMetrics();

  Database* db_;
  std::vector<ClientTimeline> groups_;
  ScenarioOptions options_;
  // SoA state + event-driven scheduler for every application; apps_ holds
  // one view handle per store slot (slot i is application id i + 1).
  AppStore store_;
  std::vector<Application> apps_;
  // store index range [group_start_[g], group_start_[g+1]) belongs to
  // group g.
  std::vector<size_t> group_start_;
  ApplicationStats totals_;  // shared stat sink for every application
  TimeSeriesSet series_;
  TimeMs next_sample_ = 0;
  TimeMs next_deadlock_check_ = 0;
  int64_t last_sample_commits_ = 0;
  double last_sample_tps_ = 0.0;
  int last_total_active_ = -1;
  // Wall-clock stamp of the current tick's start (steady_clock ns), valid
  // between BeginTick and FinishTick when the watchdog is armed.
  int64_t tick_start_ns_ = 0;
  // Deliberate-defect hooks for the fuzzer's oracle tests, selected by the
  // LOCKTUNE_TEST_PLANT environment variable (read once at construction;
  // empty — the production state — disables them all). See
  // docs/FUZZING.md.
  enum class PlantedBug { kNone, kThreadSkew, kInvariant, kLivelock };
  PlantedBug planted_ = PlantedBug::kNone;
};

}  // namespace locktune

#endif  // LOCKTUNE_WORKLOAD_SCENARIO_H_
