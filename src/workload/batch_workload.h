// Batch update workload: long transactions updating a contiguous key range
// of one table — §3.4's motivating case for reclaimable lock memory
// ("occasional batch processing of updates, inserts and deletes (rollout)
// ... can lead to a time limited need for a very large number of locks").
#ifndef LOCKTUNE_WORKLOAD_BATCH_WORKLOAD_H_
#define LOCKTUNE_WORKLOAD_BATCH_WORKLOAD_H_

#include <atomic>

#include "engine/catalog.h"
#include "workload/workload.h"

namespace locktune {

struct BatchOptions {
  // Rows each batch transaction updates.
  int64_t rows_per_batch = 500'000;
  // Acquisition rate per simulation tick.
  int locks_per_tick = 3000;
  // How long the batch holds its locks after the last update (commit
  // processing, constraint checking...).
  DurationMs hold_time = kMinute;
  // Pause between batches.
  DurationMs think_time = 2 * kMinute;
  // Lock mode for the updates (X by default; U for check-then-update).
  LockMode mode = LockMode::kX;
};

class BatchWorkload : public Workload {
 public:
  // Updates `table` sequentially, wrapping at its row count. `catalog`
  // must outlive the workload.
  BatchWorkload(const Catalog& catalog, const std::string& table,
                const BatchOptions& options);

  TransactionProfile NextTransaction(Rng& rng) override;
  RowAccess NextAccess(Rng& rng) override;

  const BatchOptions& options() const { return options_; }

 private:
  BatchOptions options_;
  TableId table_;
  int64_t row_count_;
  std::atomic<int64_t> cursor_{0};  // shared scan position; see dss_workload.h
};

}  // namespace locktune

#endif  // LOCKTUNE_WORKLOAD_BATCH_WORKLOAD_H_
