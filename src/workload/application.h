// Client application handle.
//
// The per-connection state machine itself lives in AppStore (app_store.h)
// as structure-of-arrays columns; Application is a value-type view of one
// slot — an (store, index) pair — kept so tests, benches, and tools read
// per-application state (`id()`, `phase()`, `stats()`) through the same
// narrow surface the one-object-per-client design exposed.
#ifndef LOCKTUNE_WORKLOAD_APPLICATION_H_
#define LOCKTUNE_WORKLOAD_APPLICATION_H_

#include <cstdint>

#include "workload/app_store.h"

namespace locktune {

class Application {
 public:
  Application(AppStore* store, uint32_t index)
      : store_(store), index_(index) {}

  AppId id() const { return store_->id(index_); }
  AppPhase phase() const { return store_->phase(index_); }
  bool connected() const { return store_->connected(index_); }
  const ApplicationStats& stats() const { return store_->stats(index_); }

  // Optional SQL compiler (§3.6): when set, each transaction's locking
  // granularity is chosen at start from the compiler's lock memory view; a
  // table-locking plan locks whole tables instead of rows. Const because
  // the handle is a view — the store, not the handle, holds the state.
  void set_compiler(const QueryCompiler* compiler) const {
    store_->set_compiler(index_, compiler);
  }

 private:
  AppStore* store_;  // borrowed
  uint32_t index_;
};

}  // namespace locktune

#endif  // LOCKTUNE_WORKLOAD_APPLICATION_H_
