// Client application state machine.
//
// Each Application models one database connection running transactions from
// a Workload: think → acquire row locks at the workload's rate → (optionally
// hold) → commit, blocking whenever the lock manager queues a request and
// aborting/retrying when chosen as a deadlock victim. Strict two-phase
// locking: all locks release at commit or abort.
#ifndef LOCKTUNE_WORKLOAD_APPLICATION_H_
#define LOCKTUNE_WORKLOAD_APPLICATION_H_

#include <atomic>
#include <cstdint>

#include "common/random.h"
#include "engine/database.h"
#include "engine/query_compiler.h"
#include "workload/workload.h"

namespace locktune {

enum class AppPhase {
  kDisconnected,
  kThinking,
  kRunning,
  kHolding,  // scan finished, locks retained until the hold timer expires
  kBlocked,
};

// Counters are atomics because several worker threads mirror bumps into one
// shared sink in parallel mode (reads convert implicitly, so `stats().x`
// keeps working; relaxed ordering — these are monotonic event counts).
struct ApplicationStats {
  std::atomic<int64_t> commits{0};
  std::atomic<int64_t> table_plan_txns{0};  // txns compiled to table locking
  std::atomic<int64_t> deadlock_aborts{0};
  std::atomic<int64_t> timeout_aborts{0};  // lock waits past LOCKTIMEOUT
  std::atomic<int64_t> oom_aborts{0};  // txns failed for lack of lock memory
  std::atomic<int64_t> user_aborts{0};  // client rollbacks (abort storms)
  std::atomic<int64_t> kill_aborts{0};  // mid-txn connection kills (faults)
  std::atomic<int64_t> locks_acquired{0};
  std::atomic<int64_t> blocked_ticks{0};
};

class Application {
 public:
  // `db` and `workload` are borrowed and must outlive the application.
  // `tick` is the simulation tick length the runner drives with.
  Application(AppId id, Database* db, Workload* workload, uint64_t seed,
              DurationMs tick);

  Application(const Application&) = delete;
  Application& operator=(const Application&) = delete;

  // Advances one simulation tick.
  void Tick();

  // Connection management (used by scenario timelines). Disconnecting
  // mid-transaction aborts it and releases all locks.
  void Connect();
  void Disconnect();
  bool connected() const { return phase_ != AppPhase::kDisconnected; }

  // Deadlock victim treatment: abort the transaction and retry after the
  // workload's think time.
  void AbortForDeadlock();

  // Lock-timeout treatment (DB2 SQL0911N RC 68): same rollback-and-retry.
  void AbortForTimeout();

  // Fault-plan treatment: the connection dies abruptly. Any in-flight
  // transaction is forced through rollback (all locks released, counted as
  // a kill abort); the scenario timeline reconnects the client on a later
  // tick, modeling crash-and-restart.
  void KillConnection();

  // Optional SQL compiler (§3.6): when set, each transaction's locking
  // granularity is chosen at start from the compiler's lock memory view; a
  // table-locking plan locks whole tables instead of rows.
  void set_compiler(const QueryCompiler* compiler) { compiler_ = compiler; }

  AppId id() const { return id_; }
  AppPhase phase() const { return phase_; }
  const ApplicationStats& stats() const { return stats_; }

  // Optional shared aggregate: every counter bump is mirrored into `sink`
  // (borrowed), so the owner reads totals in O(1) instead of re-summing
  // every application at each sample point.
  void set_stats_sink(ApplicationStats* sink) { sink_ = sink; }

 private:
  // Bumps `field` in this application's stats and in the aggregate sink.
  void Count(std::atomic<int64_t> ApplicationStats::* field) {
    (stats_.*field).fetch_add(1, std::memory_order_relaxed);
    if (sink_ != nullptr) {
      (sink_->*field).fetch_add(1, std::memory_order_relaxed);
    }
  }

  void StartTransaction();
  void RunAcquisition();
  void Commit();
  void AbortToThinking();

  AppId id_;
  Database* db_;
  Workload* workload_;
  Rng rng_;
  DurationMs tick_;

  AppPhase phase_ = AppPhase::kDisconnected;
  const QueryCompiler* compiler_ = nullptr;
  bool table_plan_ = false;  // current transaction uses table locking
  TransactionProfile profile_;
  int64_t acquired_ = 0;
  DurationMs timer_ = 0;  // think or hold countdown
  ApplicationStats stats_;
  ApplicationStats* sink_ = nullptr;  // borrowed aggregate, may be null
};

}  // namespace locktune

#endif  // LOCKTUNE_WORKLOAD_APPLICATION_H_
