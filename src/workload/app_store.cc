#include "workload/app_store.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace locktune {

const char* AppPhaseName(AppPhase phase) {
  switch (phase) {
    case AppPhase::kDisconnected:
      return "disconnected";
    case AppPhase::kThinking:
      return "thinking";
    case AppPhase::kRunning:
      return "running";
    case AppPhase::kHolding:
      return "holding";
    case AppPhase::kBlocked:
      return "blocked";
  }
  return "unknown";
}

AppStore::AppStore(Database* db, DurationMs tick) : db_(db), tick_(tick) {
  LOCKTUNE_DCHECK(db != nullptr);
  LOCKTUNE_DCHECK(tick > 0);
}

std::array<int64_t, kNumAppPhases> AppStore::PhaseCounts() const {
  std::array<int64_t, kNumAppPhases> counts{};
  for (const uint8_t p : phase_) ++counts[p];
  return counts;
}

uint32_t AppStore::Add(AppId id, Workload* workload, uint64_t seed) {
  LOCKTUNE_DCHECK(workload != nullptr);
  const uint32_t index = static_cast<uint32_t>(phase_.size());
  phase_.push_back(static_cast<uint8_t>(AppPhase::kDisconnected));
  timer_.push_back(0);
  acquired_.push_back(0);
  gen_.push_back(0);
  if ((index >> 6) >= runnable_.size()) runnable_.push_back(0);
  cold_.emplace_back(id, workload, seed);
  return index;
}

void AppStore::Connect(uint32_t i) {
  if (connected(i)) return;
  phase_[i] = static_cast<uint8_t>(AppPhase::kThinking);
  // Small random offset so simultaneous connects don't lockstep.
  timer_[i] = cold_[i].rng.NextInRange(0, 100);
  Park(i);
}

void AppStore::Disconnect(uint32_t i) {
  if (!connected(i)) return;
  db_->locks().ReleaseAll(cold_[i].id);
  phase_[i] = static_cast<uint8_t>(AppPhase::kDisconnected);
  acquired_[i] = 0;
  ++gen_[i];  // orphans any parked wheel entry
  ClearRunnable(i);
}

void AppStore::AbortForDeadlock(uint32_t i) {
  LOCKTUNE_DCHECK(phase(i) == AppPhase::kBlocked);
  Count(i, &ApplicationStats::deadlock_aborts);
  AbortToThinking(i);
  ClearRunnable(i);
  Park(i);
}

void AppStore::AbortForTimeout(uint32_t i) {
  LOCKTUNE_DCHECK(phase(i) == AppPhase::kBlocked);
  Count(i, &ApplicationStats::timeout_aborts);
  AbortToThinking(i);
  ClearRunnable(i);
  Park(i);
}

void AppStore::KillConnection(uint32_t i) {
  if (!connected(i)) return;
  const AppPhase p = phase(i);
  const bool mid_txn = p == AppPhase::kRunning || p == AppPhase::kBlocked ||
                       p == AppPhase::kHolding;
  db_->locks().ReleaseAll(cold_[i].id);
  if (mid_txn) Count(i, &ApplicationStats::kill_aborts);
  phase_[i] = static_cast<uint8_t>(AppPhase::kDisconnected);
  acquired_[i] = 0;
  ++gen_[i];
  ClearRunnable(i);
}

void AppStore::Park(uint32_t i) {
  // max(1, ...) so a zero connect offset still waits for the next sweep
  // (the legacy decrement-then-test also fired no earlier than that).
  const DurationMs timer = std::max<DurationMs>(timer_[i], 0);
  const int64_t periods = std::max<int64_t>(1, (timer + tick_ - 1) / tick_);
  const int64_t due = current_tick_ + periods;
  wheel_[due & (kWheelSlots - 1)].push_back({i, gen_[i], due});
}

const std::vector<uint32_t>& AppStore::CollectRunnable() {
  ++current_tick_;
  std::vector<WheelEntry>& slot = wheel_[current_tick_ & (kWheelSlots - 1)];
  if (!slot.empty()) {
    slot_scratch_.clear();
    for (const WheelEntry& e : slot) {
      if (e.gen != gen_[e.index]) continue;  // disconnected since parking
      if (e.due == current_tick_) {
        SetRunnable(e.index);
      } else {
        slot_scratch_.push_back(e);  // timer wraps the wheel; keep waiting
      }
    }
    slot.swap(slot_scratch_);
  }
  work_.clear();
  for (size_t w = 0; w < runnable_.size(); ++w) {
    uint64_t bits = runnable_[w];
    while (bits != 0) {
      work_.push_back(static_cast<uint32_t>((w << 6) +
                                            std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
  return work_;
}

void AppStore::FinishSweep() {
  for (uint32_t i : work_) {
    switch (phase(i)) {
      case AppPhase::kRunning:
      case AppPhase::kBlocked:
        break;  // stays runnable
      case AppPhase::kThinking:
      case AppPhase::kHolding:
        ClearRunnable(i);
        Park(i);
        break;
      case AppPhase::kDisconnected:
        // Disconnects are serial-context and clear their bit themselves;
        // nothing in the sweep disconnects, but stay defensive.
        ClearRunnable(i);
        break;
    }
  }
}

void AppStore::Tick(uint32_t i) {
  switch (phase(i)) {
    case AppPhase::kDisconnected:
      return;
    case AppPhase::kBlocked:
      if (db_->locks().IsBlocked(cold_[i].id)) {
        Count(i, &ApplicationStats::blocked_ticks);
        return;
      }
      // The queued request was granted while we slept.
      ++acquired_[i];
      Count(i, &ApplicationStats::locks_acquired);
      phase_[i] = static_cast<uint8_t>(AppPhase::kRunning);
      RunAcquisition(i);
      return;
    case AppPhase::kThinking:
      // Woken by the wheel: the think timer expired this tick (the legacy
      // loop decremented timer_ every tick and started the transaction on
      // the tick the countdown crossed zero — the wheel deadline is that
      // tick by construction, see Park).
      StartTransaction(i);
      return;
    case AppPhase::kRunning:
      RunAcquisition(i);
      return;
    case AppPhase::kHolding:
      // Woken by the wheel: the hold timer expired this tick.
      Commit(i);
      return;
  }
}

void AppStore::StartTransaction(uint32_t i) {
  ColdApp& app = cold_[i];
  app.profile = app.workload->NextTransaction(app.rng);
  LOCKTUNE_DCHECK(app.profile.total_locks > 0 &&
                  app.profile.locks_per_tick > 0);
  acquired_[i] = 0;
  app.table_plan =
      app.compiler != nullptr &&
      app.compiler->ChooseGranularity(app.profile.total_locks) ==
          LockGranularity::kTable;
  if (app.table_plan) Count(i, &ApplicationStats::table_plan_txns);
  phase_[i] = static_cast<uint8_t>(AppPhase::kRunning);
}

void AppStore::RunAcquisition(uint32_t i) {
  ColdApp& app = cold_[i];
  // Pull-source over this tick's share of the transaction: requests are
  // drawn from the workload RNG one at a time, and only while every
  // previous request was granted — the draw sequence is exactly the legacy
  // one-Lock()-per-request loop's, so goldens stay byte-identical. The
  // batch amortizes the manager's synchronization over the whole tick
  // (one exclusive acquire serial, one shared hold + shard lease parallel).
  struct TickSource final : public LockRequestSource {
    TickSource(ColdApp& app, int64_t start_acquired)
        : app(app), start_acquired(start_acquired) {}
    std::optional<BatchItem> Next() override {
      if (issued >= app.profile.locks_per_tick) return std::nullopt;
      if (start_acquired + issued >= app.profile.total_locks) {
        return std::nullopt;
      }
      ++issued;
      const RowAccess access = app.workload->NextAccess(app.rng);
      // A table-locking plan (§3.6) fixes the coarse granularity at
      // compile time: the self-tuning lock memory never gets a chance to
      // avoid it.
      BatchItem item;
      item.resource = app.table_plan ? TableResource(access.table)
                                     : RowResource(access.table, access.row);
      item.mode = app.table_plan && access.mode != LockMode::kS
                      ? LockMode::kX
                      : access.mode;
      return item;
    }
    ColdApp& app;
    const int64_t start_acquired;  // granted before this tick's batch
    int64_t issued = 0;            // drawn (== granted until the batch ends)
  } source(app, acquired_[i]);

  const BatchResult result = db_->locks().AcquireBatch(app.id, source);
  if (result.granted > 0) {
    acquired_[i] += result.granted;
    Count(i, &ApplicationStats::locks_acquired, result.granted);
  }
  switch (result.outcome) {
    case LockOutcome::kGranted:
      break;
    case LockOutcome::kWaiting:
      phase_[i] = static_cast<uint8_t>(AppPhase::kBlocked);
      return;
    case LockOutcome::kOutOfMemory:
      // The statement failed (DB2 would return SQL0912N); abort the
      // transaction and retry after thinking.
      Count(i, &ApplicationStats::oom_aborts);
      AbortToThinking(i);
      return;
  }
  if (acquired_[i] >= app.profile.total_locks) {
    if (app.profile.hold_time > 0) {
      phase_[i] = static_cast<uint8_t>(AppPhase::kHolding);
      timer_[i] = app.profile.hold_time;
    } else {
      Commit(i);
    }
  }
}

void AppStore::Commit(uint32_t i) {
  ColdApp& app = cold_[i];
  if (app.profile.abort_at_end) {
    // Abort-storm archetype: the client did all the locking work and rolls
    // back at the finish line.
    Count(i, &ApplicationStats::user_aborts);
    AbortToThinking(i);
    return;
  }
  db_->locks().ReleaseAll(app.id);
  Count(i, &ApplicationStats::commits);
  acquired_[i] = 0;
  phase_[i] = static_cast<uint8_t>(AppPhase::kThinking);
  timer_[i] = app.profile.think_time > 0 ? app.profile.think_time : tick_;
}

void AppStore::AbortToThinking(uint32_t i) {
  ColdApp& app = cold_[i];
  db_->locks().ReleaseAll(app.id);
  acquired_[i] = 0;
  phase_[i] = static_cast<uint8_t>(AppPhase::kThinking);
  timer_[i] = app.profile.think_time > 0 ? app.profile.think_time : tick_;
}

}  // namespace locktune
