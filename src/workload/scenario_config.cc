#include "workload/scenario_config.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "common/check.h"
#include "workload/scenario_schema.h"

namespace locktune {

namespace {

// Splits a line into whitespace-separated tokens.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

bool ParseRawInt(const std::string& s, int64_t* out) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  // ERANGE: strtoll clamps to LLONG_MIN/MAX, silently turning a fat-fingered
  // value into a huge one — reject it like any other malformed integer.
  if (errno == ERANGE || end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseRawDouble(const std::string& s, double* out) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  // Three rejection classes beyond plain syntax errors:
  //   * ERANGE overflow: strtod clamps to ±HUGE_VAL, silently turning a
  //     fat-fingered exponent into infinity (underflow to 0 also sets
  //     ERANGE — a value too small to represent is equally out of range);
  //   * "inf"/"nan" literals: strtod accepts them, but no scenario key has
  //     a meaningful infinite or not-a-number value, and NaN would poison
  //     every range check below (NaN compares false against any bound).
  if (errno == ERANGE || end == s.c_str() || *end != '\0' ||
      !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

std::string FmtNum(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

// One line of a scenario file. Every error it produces has the form
// `<source>:<line>: ...` and names the offending key and the expected
// value, so a typo in a 300-line chaos scenario is a one-glance fix.
class LineParser {
 public:
  LineParser(const std::string& source, int line_no,
             const std::vector<std::string>& tokens)
      : source_(source), line_no_(line_no), tokens_(tokens) {}

  const std::string& key() const { return tokens_[0]; }
  size_t values() const { return tokens_.size() - 1; }
  const std::string& token(size_t i) const { return tokens_[i]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(source_ + ":" + std::to_string(line_no_) +
                                   ": " + message);
  }
  Status UnknownKey(const std::string& where) const {
    return Error("unknown key '" + key() + "' in " + where);
  }
  Status WantValues(size_t n) const {
    if (values() == n) return Status::Ok();
    return Error("key '" + key() + "' wants " + std::to_string(n) +
                 " value(s), got " + std::to_string(values()));
  }

  // Value parsers. Index `i` is the token index (the key is token 0).
  [[nodiscard]] Status IntAt(size_t i, int64_t* out) const {
    if (!ParseRawInt(tokens_[i], out)) {
      return Error("key '" + key() + "' wants an integer, got '" +
                   tokens_[i] + "'");
    }
    return Status::Ok();
  }
  [[nodiscard]] Status DoubleAt(size_t i, double* out) const {
    if (!ParseRawDouble(tokens_[i], out)) {
      return Error("key '" + key() + "' wants a number, got '" + tokens_[i] +
                   "'");
    }
    return Status::Ok();
  }
  [[nodiscard]] Status DoubleIn(size_t i, double lo, bool lo_open, double hi,
                                bool hi_open, double* out) const {
    if (Status s = DoubleAt(i, out); !s.ok()) return s;
    const bool in_range = (lo_open ? *out > lo : *out >= lo) &&
                          (hi_open ? *out < hi : *out <= hi);
    if (!in_range) {
      return Error("key '" + key() + "' wants a number in " +
                   (lo_open ? "(" : "[") + FmtNum(lo) + ", " + FmtNum(hi) +
                   (hi_open ? ")" : "]") + ", got '" + tokens_[i] + "'");
    }
    return Status::Ok();
  }

  // Schema-driven value parsers: the range comes from the shared
  // ScenarioSchema() table, so the parser cannot drift from what the
  // generator samples. A missing or mistyped schema entry is a programmer
  // error (scenario_schema_test pins parity), hence CHECK not Status.
  [[nodiscard]] Status SchemaIntAt(const ValueSchema& vs, size_t i,
                                   int64_t* out) const {
    LOCKTUNE_CHECK(vs.kind == ValueKind::kInt);
    if (Status s = IntAt(i, out); !s.ok()) return s;
    if (*out < vs.int_min || *out > vs.int_max) {
      return Error("key '" + key() + "' wants an integer in [" +
                   std::to_string(vs.int_min) + ", " +
                   std::to_string(vs.int_max) + "], got '" + tokens_[i] +
                   "'");
    }
    return Status::Ok();
  }
  [[nodiscard]] Status SchemaDoubleAt(const ValueSchema& vs, size_t i,
                                      double* out) const {
    LOCKTUNE_CHECK(vs.kind == ValueKind::kDouble);
    return DoubleIn(i, vs.lo, vs.lo_open, vs.hi, vs.hi_open, out);
  }

  // Single-value conveniences (schema lookup + arity check + parse +
  // range). `section` is the schema section ("" for global keys).
  [[nodiscard]] Status OneSchemaInt(const char* section,
                                    int64_t* out) const {
    const KeySchema* ks = FindKeySchema(section, key());
    LOCKTUNE_CHECK(ks != nullptr && ks->values.size() == 1);
    if (Status s = WantValues(1); !s.ok()) return s;
    return SchemaIntAt(ks->values[0], 1, out);
  }
  [[nodiscard]] Status OneSchemaDouble(const char* section,
                                       double* out) const {
    const KeySchema* ks = FindKeySchema(section, key());
    LOCKTUNE_CHECK(ks != nullptr && ks->values.size() == 1);
    if (Status s = WantValues(1); !s.ok()) return s;
    return SchemaDoubleAt(ks->values[0], 1, out);
  }
  [[nodiscard]] Status OneLockMode(LockMode* out) const {
    if (Status s = WantValues(1); !s.ok()) return s;
    if (tokens_[1] == "X") {
      *out = LockMode::kX;
    } else if (tokens_[1] == "U") {
      *out = LockMode::kU;
    } else if (tokens_[1] == "S") {
      *out = LockMode::kS;
    } else {
      return Error("key '" + key() + "' wants S, U or X, got '" + tokens_[1] +
                   "'");
    }
    return Status::Ok();
  }

 private:
  const std::string& source_;
  int line_no_;
  const std::vector<std::string>& tokens_;
};

Status ParseGlobalLine(const LineParser& p, ScenarioSpec* spec) {
  const std::string& key = p.key();
  int64_t iv = 0;
  double dv = 0.0;

  if (key == "database_memory_mb") {
    if (Status s = p.OneSchemaInt("", &iv); !s.ok()) return s;
    spec->database.params.database_memory = iv * kMiB;
  } else if (key == "mode") {
    if (Status s = p.WantValues(1); !s.ok()) return s;
    if (p.token(1) == "selftuning") {
      spec->database.mode = TuningMode::kSelfTuning;
    } else if (p.token(1) == "static") {
      spec->database.mode = TuningMode::kStatic;
    } else if (p.token(1) == "sqlserver") {
      spec->database.mode = TuningMode::kSqlServer;
    } else {
      return p.Error(
          "key 'mode' wants one of: selftuning, static, sqlserver; got '" +
          p.token(1) + "'");
    }
  } else if (key == "static_locklist_pages") {
    if (Status s = p.OneSchemaInt("", &iv); !s.ok()) return s;
    spec->database.static_locklist_pages = iv;
  } else if (key == "static_maxlocks_percent") {
    if (Status s = p.OneSchemaDouble("", &dv); !s.ok()) return s;
    spec->database.static_maxlocks_percent = dv;
  } else if (key == "initial_locklist_pages") {
    if (Status s = p.OneSchemaInt("", &iv); !s.ok()) return s;
    spec->database.params.initial_locklist_pages = iv;
  } else if (key == "tuning_interval_s") {
    if (Status s = p.OneSchemaInt("", &iv); !s.ok()) return s;
    spec->database.params.tuning_interval = iv * kSecond;
  } else if (key == "adaptive_interval") {
    if (Status s = p.WantValues(1); !s.ok()) return s;
    if (p.token(1) != "on" && p.token(1) != "off") {
      return p.Error("key 'adaptive_interval' wants on or off, got '" +
                     p.token(1) + "'");
    }
    spec->database.params.adaptive_interval = p.token(1) == "on";
  } else if (key == "lock_timeout_ms") {
    if (Status s = p.OneSchemaInt("", &iv); !s.ok()) return s;
    spec->database.lock_timeout = iv;
  } else if (key == "duration_s") {
    if (Status s = p.OneSchemaInt("", &iv); !s.ok()) return s;
    spec->runner.duration = iv * kSecond;
  } else if (key == "sample_period_s") {
    if (Status s = p.OneSchemaInt("", &iv); !s.ok()) return s;
    spec->runner.sample_period = iv * kSecond;
  } else if (key == "seed") {
    if (Status s = p.OneSchemaInt("", &iv); !s.ok()) return s;
    spec->runner.seed = static_cast<uint64_t>(iv);
  } else if (key == "delta_reduce_percent") {
    if (Status s = p.OneSchemaDouble("", &dv); !s.ok()) return s;
    spec->database.params.delta_reduce = dv / 100.0;
  } else {
    return p.UnknownKey("the global section");
  }
  return Status::Ok();
}

Status ParseOltpLine(const LineParser& p, WorkloadSpec* section) {
  const std::string& key = p.key();
  int64_t iv = 0;
  double dv = 0.0;

  if (key == "mean_locks_per_txn") {
    if (Status s = p.OneSchemaInt("oltp", &iv); !s.ok()) return s;
    section->oltp.mean_locks_per_txn = iv;
  } else if (key == "locks_per_tick") {
    if (Status s = p.OneSchemaInt("oltp", &iv); !s.ok()) return s;
    section->oltp.locks_per_tick = static_cast<int>(iv);
  } else if (key == "write_fraction") {
    if (Status s = p.OneSchemaDouble("oltp", &dv); !s.ok()) return s;
    section->oltp.write_fraction = dv;
  } else if (key == "think_time_ms") {
    if (Status s = p.OneSchemaInt("oltp", &iv); !s.ok()) return s;
    section->oltp.think_time = iv;
  } else if (key == "zipf") {
    if (Status s = p.OneSchemaDouble("oltp", &dv); !s.ok()) return s;
    section->oltp.row_zipf_theta = dv;
  } else {
    return p.UnknownKey("[oltp]");
  }
  return Status::Ok();
}

Status ParseDssLine(const LineParser& p, WorkloadSpec* section) {
  const std::string& key = p.key();
  int64_t iv = 0;

  if (key == "scan_locks") {
    if (Status s = p.OneSchemaInt("dss", &iv); !s.ok()) return s;
    section->dss.scan_locks = iv;
  } else if (key == "locks_per_tick") {
    if (Status s = p.OneSchemaInt("dss", &iv); !s.ok()) return s;
    section->dss.locks_per_tick = static_cast<int>(iv);
  } else if (key == "hold_time_s") {
    if (Status s = p.OneSchemaInt("dss", &iv); !s.ok()) return s;
    section->dss.hold_time = iv * kSecond;
  } else if (key == "think_time_s") {
    if (Status s = p.OneSchemaInt("dss", &iv); !s.ok()) return s;
    section->dss.think_time = iv * kSecond;
  } else {
    return p.UnknownKey("[dss]");
  }
  return Status::Ok();
}

Status ParseBatchLine(const LineParser& p, WorkloadSpec* section) {
  const std::string& key = p.key();
  int64_t iv = 0;

  if (key == "rows_per_batch") {
    if (Status s = p.OneSchemaInt("batch", &iv); !s.ok()) return s;
    section->batch.rows_per_batch = iv;
  } else if (key == "locks_per_tick") {
    if (Status s = p.OneSchemaInt("batch", &iv); !s.ok()) return s;
    section->batch.locks_per_tick = static_cast<int>(iv);
  } else if (key == "hold_time_s") {
    if (Status s = p.OneSchemaInt("batch", &iv); !s.ok()) return s;
    section->batch.hold_time = iv * kSecond;
  } else if (key == "think_time_s") {
    if (Status s = p.OneSchemaInt("batch", &iv); !s.ok()) return s;
    section->batch.think_time = iv * kSecond;
  } else if (key == "table") {
    if (Status s = p.WantValues(1); !s.ok()) return s;
    section->batch_table = p.token(1);
  } else if (key == "mode") {
    if (Status s = p.OneLockMode(&section->batch.mode); !s.ok()) return s;
  } else {
    return p.UnknownKey("[batch]");
  }
  return Status::Ok();
}

Status ParseHostileLine(const LineParser& p, WorkloadSpec* section) {
  const std::string& key = p.key();
  int64_t iv = 0;

  if (key == "archetype") {
    if (Status s = p.WantValues(1); !s.ok()) return s;
    if (p.token(1) == "lock_hog") {
      section->hostile.archetype = HostileArchetype::kLockHog;
    } else if (p.token(1) == "idle_holder") {
      section->hostile.archetype = HostileArchetype::kIdleHolder;
    } else if (p.token(1) == "abort_storm") {
      section->hostile.archetype = HostileArchetype::kAbortStorm;
    } else if (p.token(1) == "request_storm") {
      section->hostile.archetype = HostileArchetype::kRequestStorm;
    } else {
      return p.Error(
          "key 'archetype' wants one of: lock_hog, idle_holder, "
          "abort_storm, request_storm; got '" +
          p.token(1) + "'");
    }
  } else if (key == "table") {
    if (Status s = p.WantValues(1); !s.ok()) return s;
    section->hostile_table = p.token(1);
  } else if (key == "locks_per_txn") {
    if (Status s = p.OneSchemaInt("hostile", &iv); !s.ok()) return s;
    section->hostile.locks_per_txn = iv;
  } else if (key == "locks_per_tick") {
    if (Status s = p.OneSchemaInt("hostile", &iv); !s.ok()) return s;
    section->hostile.locks_per_tick = static_cast<int>(iv);
  } else if (key == "hold_time_s") {
    if (Status s = p.OneSchemaInt("hostile", &iv); !s.ok()) return s;
    section->hostile.hold_time = iv * kSecond;
  } else if (key == "think_time_s") {
    if (Status s = p.OneSchemaInt("hostile", &iv); !s.ok()) return s;
    section->hostile.think_time = iv * kSecond;
  } else if (key == "mode") {
    if (Status s = p.OneLockMode(&section->hostile.mode); !s.ok()) return s;
  } else {
    return p.UnknownKey("[hostile]");
  }
  return Status::Ok();
}

Status ParseFaultLine(const LineParser& p, ScenarioSpec* spec,
                      bool* fault_seed_set) {
  const std::string& key = p.key();
  FaultPlanSpec& fault = spec->database.fault;
  int64_t iv = 0;

  if (key == "fault_seed") {
    if (Status s = p.OneSchemaInt("fault", &iv); !s.ok()) return s;
    fault.seed = static_cast<uint64_t>(iv);
    *fault_seed_set = true;
  } else if (key == "deny_heap") {
    if (p.values() != 3 && p.values() != 4) {
      return p.Error(
          "key 'deny_heap' wants: deny_heap <heap> <from_s> <until_s> "
          "[probability]");
    }
    const KeySchema* ks = FindKeySchema("fault", "deny_heap");
    LOCKTUNE_CHECK(ks != nullptr && ks->values.size() == 4);
    FaultWindowSpec w;
    w.kind = FaultKind::kDenyHeapGrowth;
    w.heap = p.token(1);
    int64_t from = 0, until = 0;
    if (Status s = p.SchemaIntAt(ks->values[1], 2, &from); !s.ok()) return s;
    if (Status s = p.SchemaIntAt(ks->values[2], 3, &until); !s.ok()) return s;
    if (until <= from) {
      return p.Error("key 'deny_heap' wants until_s > from_s (the window "
                     "[from, until) is empty)");
    }
    w.from = from * kSecond;
    w.until = until * kSecond;
    if (p.values() == 4) {
      if (Status s = p.SchemaDoubleAt(ks->values[3], 4, &w.probability);
          !s.ok()) {
        return s;
      }
    }
    fault.windows.push_back(w);
  } else if (key == "squeeze_overflow_mb") {
    const KeySchema* ks = FindKeySchema("fault", "squeeze_overflow_mb");
    LOCKTUNE_CHECK(ks != nullptr && ks->values.size() == 3);
    if (Status s = p.WantValues(3); !s.ok()) return s;
    int64_t mb = 0, from = 0, until = 0;
    if (Status s = p.SchemaIntAt(ks->values[0], 1, &mb); !s.ok()) return s;
    if (Status s = p.SchemaIntAt(ks->values[1], 2, &from); !s.ok()) return s;
    if (Status s = p.SchemaIntAt(ks->values[2], 3, &until); !s.ok()) return s;
    if (until <= from) {
      return p.Error(
          "key 'squeeze_overflow_mb' wants until_s > from_s (the window "
          "[from, until) is empty)");
    }
    FaultWindowSpec w;
    w.kind = FaultKind::kSqueezeOverflow;
    w.heap = "*";
    w.amount = mb * kMiB;
    w.from = from * kSecond;
    w.until = until * kSecond;
    fault.windows.push_back(w);
  } else if (key == "kill_app") {
    const KeySchema* ks = FindKeySchema("fault", "kill_app");
    LOCKTUNE_CHECK(ks != nullptr && ks->values.size() == 2);
    if (Status s = p.WantValues(2); !s.ok()) return s;
    int64_t app = 0, at = 0;
    if (Status s = p.SchemaIntAt(ks->values[0], 1, &app); !s.ok()) return s;
    if (Status s = p.SchemaIntAt(ks->values[1], 2, &at); !s.ok()) return s;
    FaultKillSpec k;
    k.at = at * kSecond;
    k.app = static_cast<int32_t>(app);
    fault.kills.push_back(k);
  } else {
    return p.UnknownKey("[fault]");
  }
  return Status::Ok();
}

}  // namespace

Result<ScenarioSpec> ParseScenario(const std::string& text,
                                   const std::string& source_name) {
  ScenarioSpec spec;
  spec.runner.duration = 60 * kSecond;
  WorkloadSpec* section = nullptr;
  bool in_fault_section = false;
  bool fault_seed_set = false;
  bool any_hostile = false;

  // Duplicate-key detection, scoped per section: a scalar key appearing
  // twice silently overwrote its first value and hid config typos. Keys
  // that genuinely build lists stay repeatable.
  const auto is_repeatable = [](const std::string& key) {
    return key == "clients" || key == "deny_heap" ||
           key == "squeeze_overflow_mb" || key == "kill_app";
  };
  std::map<std::string, int> seen_keys;  // key -> first line in this section

  std::istringstream is(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    // Strip comments.
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::vector<std::string> tokens = Tokenize(raw);
    if (tokens.empty()) continue;
    const LineParser p(source_name, line_no, tokens);

    // Section headers.
    if (tokens[0].front() == '[') {
      if (tokens.size() != 1) {
        return p.Error("trailing tokens after section header " + tokens[0]);
      }
      seen_keys.clear();
      if (tokens[0] == "[fault]") {
        in_fault_section = true;
        section = nullptr;
        continue;
      }
      if (tokens[0] != "[oltp]" && tokens[0] != "[dss]" &&
          tokens[0] != "[batch]" && tokens[0] != "[hostile]") {
        return p.Error("unknown section " + tokens[0] +
                       " (expected [oltp], [dss], [batch], [hostile] or "
                       "[fault])");
      }
      in_fault_section = false;
      spec.workloads.emplace_back();
      section = &spec.workloads.back();
      if (tokens[0] == "[oltp]") {
        section->kind = WorkloadSpec::Kind::kOltp;
      } else if (tokens[0] == "[dss]") {
        section->kind = WorkloadSpec::Kind::kDss;
      } else if (tokens[0] == "[batch]") {
        section->kind = WorkloadSpec::Kind::kBatch;
      } else {
        section->kind = WorkloadSpec::Kind::kHostile;
        any_hostile = true;
      }
      continue;
    }

    if (!is_repeatable(p.key())) {
      const auto [it, inserted] = seen_keys.emplace(p.key(), line_no);
      if (!inserted) {
        return p.Error("duplicate key '" + p.key() + "' (first set at " +
                       source_name + ":" + std::to_string(it->second) + ")");
      }
    }

    if (in_fault_section) {
      if (Status s = ParseFaultLine(p, &spec, &fault_seed_set); !s.ok()) {
        return s;
      }
      continue;
    }

    if (section == nullptr) {
      if (Status s = ParseGlobalLine(p, &spec); !s.ok()) return s;
      continue;
    }

    // Keys shared by all workload sections.
    if (p.key() == "clients") {
      const KeySchema* ks = FindKeySchema(kSharedWorkloadSection, "clients");
      LOCKTUNE_CHECK(ks != nullptr && ks->values.size() == 2);
      if (Status s = p.WantValues(2); !s.ok()) return s;
      int64_t at = 0, count = 0;
      if (Status s = p.SchemaIntAt(ks->values[0], 1, &at); !s.ok()) return s;
      if (Status s = p.SchemaIntAt(ks->values[1], 2, &count); !s.ok()) {
        return s;
      }
      section->client_steps.push_back(
          {at * kSecond, static_cast<int>(count)});
      continue;
    }
    Status s = Status::Ok();
    switch (section->kind) {
      case WorkloadSpec::Kind::kOltp:
        s = ParseOltpLine(p, section);
        break;
      case WorkloadSpec::Kind::kDss:
        s = ParseDssLine(p, section);
        break;
      case WorkloadSpec::Kind::kBatch:
        s = ParseBatchLine(p, section);
        break;
      case WorkloadSpec::Kind::kHostile:
        s = ParseHostileLine(p, section);
        break;
    }
    if (!s.ok()) return s;
  }

  if (spec.workloads.empty()) {
    return Status::InvalidArgument(
        source_name +
        ": no workload sections ([oltp] / [dss] / [batch] / [hostile])");
  }
  for (size_t i = 0; i < spec.workloads.size(); ++i) {
    WorkloadSpec& w = spec.workloads[i];
    if (w.client_steps.empty()) {
      return Status::InvalidArgument(source_name + ": workload section " +
                                     std::to_string(i + 1) +
                                     " has no clients lines");
    }
    std::sort(w.client_steps.begin(), w.client_steps.end());
  }
  if (Status s = spec.database.params.Validate(); !s.ok()) return s;

  // The fault plan draws from its own stream so arming faults never
  // perturbs workload randomness; absent an explicit fault_seed it is
  // still derived deterministically from the scenario seed.
  if (!fault_seed_set) {
    spec.database.fault.seed = spec.runner.seed ^ 0x9e3779b97f4a7c15ULL;
  }
  // Kill/user-abort counters only exist for chaos scenarios, keeping
  // fault-free metric exports byte-identical.
  spec.runner.robustness_metrics =
      !spec.database.fault.empty() || any_hostile;
  return spec;
}

Result<ScenarioSpec> LoadScenarioFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseScenario(buffer.str(), path);
}

Result<std::unique_ptr<LoadedScenario>> LoadedScenario::Create(
    const ScenarioSpec& spec) {
  std::unique_ptr<LoadedScenario> loaded(new LoadedScenario());
  Result<std::unique_ptr<Database>> db = Database::Open(spec.database);
  if (!db.ok()) return db.status();
  loaded->database_ = std::move(db).value();

  std::vector<ClientTimeline> timelines;
  int64_t total_app_slots = 0;
  for (const WorkloadSpec& w : spec.workloads) {
    std::unique_ptr<Workload> workload;
    if (w.kind == WorkloadSpec::Kind::kOltp) {
      workload = std::make_unique<OltpWorkload>(loaded->database_->catalog(),
                                                w.oltp);
    } else if (w.kind == WorkloadSpec::Kind::kDss) {
      workload = std::make_unique<DssWorkload>(loaded->database_->catalog(),
                                               w.dss);
    } else if (w.kind == WorkloadSpec::Kind::kBatch) {
      if (loaded->database_->catalog().FindByName(w.batch_table) == nullptr) {
        return Status::InvalidArgument("unknown batch table " +
                                       w.batch_table);
      }
      workload = std::make_unique<BatchWorkload>(
          loaded->database_->catalog(), w.batch_table, w.batch);
    } else {
      if (loaded->database_->catalog().FindByName(w.hostile_table) ==
          nullptr) {
        return Status::InvalidArgument("unknown hostile table " +
                                       w.hostile_table);
      }
      workload = std::make_unique<HostileWorkload>(
          loaded->database_->catalog(), w.hostile_table, w.hostile);
    }
    ClientTimeline tl;
    tl.workload = workload.get();
    tl.steps = w.client_steps;
    total_app_slots += tl.MaxClients();
    timelines.push_back(tl);
    loaded->workloads_.push_back(std::move(workload));
  }
  // kill_app targets are 1-based application indices; an index past the
  // scenario's population would trip the runner's bounds check at fire
  // time — reject it up front with a useful message instead.
  for (const FaultKillSpec& k : spec.database.fault.kills) {
    if (static_cast<int64_t>(k.app) > total_app_slots) {
      return Status::InvalidArgument(
          "kill_app target " + std::to_string(k.app) + " exceeds the " +
          std::to_string(total_app_slots) +
          " application slot(s) in this scenario");
    }
  }
  loaded->runner_ = std::make_unique<ScenarioRunner>(
      loaded->database_.get(), std::move(timelines), spec.runner);
  return loaded;
}

}  // namespace locktune
