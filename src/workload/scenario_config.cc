#include "workload/scenario_config.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace locktune {

namespace {

// Splits a line into whitespace-separated tokens.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

Status LineError(int line_no, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                 message);
}

bool ParseInt(const std::string& s, int64_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

Result<ScenarioSpec> ParseScenario(const std::string& text) {
  ScenarioSpec spec;
  spec.runner.duration = 60 * kSecond;
  WorkloadSpec* section = nullptr;

  std::istringstream is(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    // Strip comments.
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::vector<std::string> tokens = Tokenize(raw);
    if (tokens.empty()) continue;

    // Section headers.
    if (tokens[0] == "[oltp]" || tokens[0] == "[dss]" ||
        tokens[0] == "[batch]") {
      if (tokens.size() != 1) return LineError(line_no, "trailing tokens");
      spec.workloads.emplace_back();
      section = &spec.workloads.back();
      section->kind = tokens[0] == "[oltp]"  ? WorkloadSpec::Kind::kOltp
                      : tokens[0] == "[dss]" ? WorkloadSpec::Kind::kDss
                                             : WorkloadSpec::Kind::kBatch;
      continue;
    }
    if (tokens[0].front() == '[') {
      return LineError(line_no, "unknown section " + tokens[0]);
    }

    const std::string& key = tokens[0];
    const auto need = [&](size_t n) { return tokens.size() == n + 1; };
    int64_t iv = 0;
    double dv = 0.0;

    if (section == nullptr) {
      // Global keys.
      if (key == "database_memory_mb" && need(1) &&
          ParseInt(tokens[1], &iv) && iv > 0) {
        spec.database.params.database_memory = iv * kMiB;
      } else if (key == "mode" && need(1)) {
        if (tokens[1] == "selftuning") {
          spec.database.mode = TuningMode::kSelfTuning;
        } else if (tokens[1] == "static") {
          spec.database.mode = TuningMode::kStatic;
        } else if (tokens[1] == "sqlserver") {
          spec.database.mode = TuningMode::kSqlServer;
        } else {
          return LineError(line_no, "unknown mode " + tokens[1]);
        }
      } else if (key == "static_locklist_pages" && need(1) &&
                 ParseInt(tokens[1], &iv) && iv > 0) {
        spec.database.static_locklist_pages = iv;
      } else if (key == "static_maxlocks_percent" && need(1) &&
                 ParseDouble(tokens[1], &dv) && dv > 0 && dv <= 100) {
        spec.database.static_maxlocks_percent = dv;
      } else if (key == "initial_locklist_pages" && need(1) &&
                 ParseInt(tokens[1], &iv) && iv > 0) {
        spec.database.params.initial_locklist_pages = iv;
      } else if (key == "tuning_interval_s" && need(1) &&
                 ParseInt(tokens[1], &iv) && iv > 0) {
        spec.database.params.tuning_interval = iv * kSecond;
      } else if (key == "adaptive_interval" && need(1)) {
        spec.database.params.adaptive_interval = tokens[1] == "on";
      } else if (key == "lock_timeout_ms" && need(1) &&
                 ParseInt(tokens[1], &iv)) {
        spec.database.lock_timeout = iv;
      } else if (key == "duration_s" && need(1) && ParseInt(tokens[1], &iv) &&
                 iv > 0) {
        spec.runner.duration = iv * kSecond;
      } else if (key == "sample_period_s" && need(1) &&
                 ParseInt(tokens[1], &iv) && iv > 0) {
        spec.runner.sample_period = iv * kSecond;
      } else if (key == "seed" && need(1) && ParseInt(tokens[1], &iv)) {
        spec.runner.seed = static_cast<uint64_t>(iv);
      } else if (key == "delta_reduce_percent" && need(1) &&
                 ParseDouble(tokens[1], &dv) && dv > 0 && dv < 100) {
        spec.database.params.delta_reduce = dv / 100.0;
      } else {
        return LineError(line_no, "bad global setting: " + raw);
      }
      continue;
    }

    // Section keys.
    if (key == "clients" && need(2)) {
      int64_t at = 0, count = 0;
      if (!ParseInt(tokens[1], &at) || !ParseInt(tokens[2], &count) ||
          at < 0 || count < 0) {
        return LineError(line_no, "clients wants: clients <at_s> <count>");
      }
      section->client_steps.push_back({at * kSecond, static_cast<int>(count)});
    } else if (section->kind == WorkloadSpec::Kind::kOltp) {
      if (key == "mean_locks_per_txn" && need(1) && ParseInt(tokens[1], &iv) &&
          iv > 0) {
        section->oltp.mean_locks_per_txn = iv;
      } else if (key == "locks_per_tick" && need(1) &&
                 ParseInt(tokens[1], &iv) && iv > 0) {
        section->oltp.locks_per_tick = static_cast<int>(iv);
      } else if (key == "write_fraction" && need(1) &&
                 ParseDouble(tokens[1], &dv) && dv >= 0 && dv <= 1) {
        section->oltp.write_fraction = dv;
      } else if (key == "think_time_ms" && need(1) &&
                 ParseInt(tokens[1], &iv) && iv >= 0) {
        section->oltp.think_time = iv;
      } else if (key == "zipf" && need(1) && ParseDouble(tokens[1], &dv) &&
                 dv >= 0 && dv < 1) {
        section->oltp.row_zipf_theta = dv;
      } else {
        return LineError(line_no, "bad [oltp] setting: " + raw);
      }
    } else if (section->kind == WorkloadSpec::Kind::kDss) {
      if (key == "scan_locks" && need(1) && ParseInt(tokens[1], &iv) &&
          iv > 0) {
        section->dss.scan_locks = iv;
      } else if (key == "locks_per_tick" && need(1) &&
                 ParseInt(tokens[1], &iv) && iv > 0) {
        section->dss.locks_per_tick = static_cast<int>(iv);
      } else if (key == "hold_time_s" && need(1) && ParseInt(tokens[1], &iv) &&
                 iv >= 0) {
        section->dss.hold_time = iv * kSecond;
      } else if (key == "think_time_s" && need(1) &&
                 ParseInt(tokens[1], &iv) && iv >= 0) {
        section->dss.think_time = iv * kSecond;
      } else {
        return LineError(line_no, "bad [dss] setting: " + raw);
      }
    } else {  // kBatch
      if (key == "rows_per_batch" && need(1) && ParseInt(tokens[1], &iv) &&
          iv > 0) {
        section->batch.rows_per_batch = iv;
      } else if (key == "locks_per_tick" && need(1) &&
                 ParseInt(tokens[1], &iv) && iv > 0) {
        section->batch.locks_per_tick = static_cast<int>(iv);
      } else if (key == "hold_time_s" && need(1) && ParseInt(tokens[1], &iv) &&
                 iv >= 0) {
        section->batch.hold_time = iv * kSecond;
      } else if (key == "think_time_s" && need(1) &&
                 ParseInt(tokens[1], &iv) && iv >= 0) {
        section->batch.think_time = iv * kSecond;
      } else if (key == "table" && need(1)) {
        section->batch_table = tokens[1];
      } else if (key == "mode" && need(1)) {
        if (tokens[1] == "X") {
          section->batch.mode = LockMode::kX;
        } else if (tokens[1] == "U") {
          section->batch.mode = LockMode::kU;
        } else if (tokens[1] == "S") {
          section->batch.mode = LockMode::kS;
        } else {
          return LineError(line_no, "batch mode must be S, U or X");
        }
      } else {
        return LineError(line_no, "bad [batch] setting: " + raw);
      }
    }
  }

  if (spec.workloads.empty()) {
    return Status::InvalidArgument("no workload sections ([oltp] / [dss])");
  }
  for (size_t i = 0; i < spec.workloads.size(); ++i) {
    WorkloadSpec& w = spec.workloads[i];
    if (w.client_steps.empty()) {
      return Status::InvalidArgument("workload section " +
                                     std::to_string(i + 1) +
                                     " has no clients lines");
    }
    std::sort(w.client_steps.begin(), w.client_steps.end());
  }
  if (Status s = spec.database.params.Validate(); !s.ok()) return s;
  return spec;
}

Result<ScenarioSpec> LoadScenarioFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseScenario(buffer.str());
}

Result<std::unique_ptr<LoadedScenario>> LoadedScenario::Create(
    const ScenarioSpec& spec) {
  std::unique_ptr<LoadedScenario> loaded(new LoadedScenario());
  Result<std::unique_ptr<Database>> db = Database::Open(spec.database);
  if (!db.ok()) return db.status();
  loaded->database_ = std::move(db).value();

  std::vector<ClientTimeline> timelines;
  for (const WorkloadSpec& w : spec.workloads) {
    std::unique_ptr<Workload> workload;
    if (w.kind == WorkloadSpec::Kind::kOltp) {
      workload = std::make_unique<OltpWorkload>(loaded->database_->catalog(),
                                                w.oltp);
    } else if (w.kind == WorkloadSpec::Kind::kDss) {
      workload = std::make_unique<DssWorkload>(loaded->database_->catalog(),
                                               w.dss);
    } else {
      if (loaded->database_->catalog().FindByName(w.batch_table) == nullptr) {
        return Status::InvalidArgument("unknown batch table " +
                                       w.batch_table);
      }
      workload = std::make_unique<BatchWorkload>(
          loaded->database_->catalog(), w.batch_table, w.batch);
    }
    ClientTimeline tl;
    tl.workload = workload.get();
    tl.steps = w.client_steps;
    timelines.push_back(tl);
    loaded->workloads_.push_back(std::move(workload));
  }
  loaded->runner_ = std::make_unique<ScenarioRunner>(
      loaded->database_.get(), std::move(timelines), spec.runner);
  return loaded;
}

}  // namespace locktune
