// Structure-of-arrays application state plus the event-driven scheduler.
//
// The per-connection state machine (think → acquire row locks at the
// workload's rate → optionally hold → commit, strict two-phase locking)
// lives here as parallel columns instead of one heap object per client.
// The split is by temperature:
//
//  * hot columns — phase, think/hold countdown, locks acquired this
//    transaction, scheduler generation — are flat vectors the per-tick
//    sweep walks cache-line by cache-line;
//  * cold rows — RNG, transaction profile, workload/compiler pointers,
//    stat counters — are out of line and touched only when an
//    application actually runs.
//
// Scheduling is event-driven so a million mostly-idle connections cost
// nothing per tick: applications in a timed phase (kThinking, kHolding)
// park in a deadline wheel keyed by the tick their timer expires;
// kRunning and kBlocked applications stay in a runnable bitmap that is
// swept in ascending index order (the lock manager observes requests in
// the same cross-application order as the legacy all-apps loop, which is
// what keeps --threads 1 goldens byte-identical). See docs/SCALE.md.
#ifndef LOCKTUNE_WORKLOAD_APP_STORE_H_
#define LOCKTUNE_WORKLOAD_APP_STORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <type_traits>
#include <vector>

#include "common/random.h"
#include "engine/database.h"
#include "engine/query_compiler.h"
#include "workload/workload.h"

namespace locktune {

enum class AppPhase {
  kDisconnected,
  kThinking,
  kRunning,
  kHolding,  // scan finished, locks retained until the hold timer expires
  kBlocked,
};

inline constexpr int kNumAppPhases = 5;

// Stable short name, e.g. "thinking".
const char* AppPhaseName(AppPhase phase);

// Counters are atomics because several worker threads mirror bumps into one
// shared sink in parallel mode (reads convert implicitly, so `stats().x`
// keeps working; relaxed ordering — these are monotonic event counts).
struct ApplicationStats {
  std::atomic<int64_t> commits{0};
  std::atomic<int64_t> table_plan_txns{0};  // txns compiled to table locking
  std::atomic<int64_t> deadlock_aborts{0};
  std::atomic<int64_t> timeout_aborts{0};  // lock waits past LOCKTIMEOUT
  std::atomic<int64_t> oom_aborts{0};  // txns failed for lack of lock memory
  std::atomic<int64_t> user_aborts{0};  // client rollbacks (abort storms)
  std::atomic<int64_t> kill_aborts{0};  // mid-txn connection kills (faults)
  std::atomic<int64_t> locks_acquired{0};
  std::atomic<int64_t> blocked_ticks{0};
};

class AppStore {
 public:
  // `db` is borrowed and must outlive the store. `tick` is the simulation
  // tick length the runner drives with.
  AppStore(Database* db, DurationMs tick);

  AppStore(const AppStore&) = delete;
  AppStore& operator=(const AppStore&) = delete;

  // Appends one application slot; returns its index. All slots must be
  // added before the first CollectRunnable (the hot columns never move
  // after that).
  uint32_t Add(AppId id, Workload* workload, uint64_t seed);

  // Shared aggregate: every counter bump is mirrored into `sink`
  // (borrowed), so the owner reads totals in O(1). Set before any
  // application runs.
  void set_stats_sink(ApplicationStats* sink) { sink_ = sink; }

  // Optional SQL compiler (§3.6) for one application: when set, each
  // transaction's locking granularity is chosen at start from the
  // compiler's lock memory view.
  void set_compiler(uint32_t i, const QueryCompiler* compiler) {
    cold_[i].compiler = compiler;
  }

  size_t size() const { return phase_.size(); }
  AppId id(uint32_t i) const { return cold_[i].id; }
  AppPhase phase(uint32_t i) const {
    return static_cast<AppPhase>(phase_[i]);
  }
  bool connected(uint32_t i) const {
    return phase(i) != AppPhase::kDisconnected;
  }
  const ApplicationStats& stats(uint32_t i) const { return cold_[i].stats; }

  // --- lifecycle (serial contexts only: timeline application, fault
  // kills, deadlock/timeout treatment — never from the tick sweep) ---

  // Connection management (scenario timelines). Disconnecting
  // mid-transaction aborts it and releases all locks.
  void Connect(uint32_t i);
  void Disconnect(uint32_t i);

  // Deadlock victim treatment: abort the transaction and retry after the
  // workload's think time.
  void AbortForDeadlock(uint32_t i);

  // Lock-timeout treatment (DB2 SQL0911N RC 68): same rollback-and-retry.
  void AbortForTimeout(uint32_t i);

  // Fault-plan treatment: the connection dies abruptly; any in-flight
  // transaction is rolled back and counted as a kill abort.
  void KillConnection(uint32_t i);

  // --- the per-tick schedule/sweep/reconcile cycle ---
  //
  // Exactly once per simulation tick, in order:
  //   1. CollectRunnable() — advances the wheel one tick, wakes parked
  //      applications whose deadline arrived, and rebuilds the runnable
  //      work list (ascending application index).
  //   2. Tick(i) for every i in work() — inline for one thread, or
  //      partitioned into contiguous chunks of the work list across
  //      workers (each index is ticked by exactly one thread; Tick only
  //      mutates that application's own columns and row).
  //   3. FinishSweep() — serial again: applications that parked during
  //      the sweep (committed, aborted, began holding) leave the runnable
  //      set and enter the wheel.

  const std::vector<uint32_t>& CollectRunnable();
  const std::vector<uint32_t>& work() const { return work_; }
  void Tick(uint32_t i);
  void FinishSweep();

  // Applications per phase, from one sweep of the phase column (one byte
  // per application). The aggregate view diagnostic tools render instead
  // of per-application rows, which at 10^6 applications stalled the tick
  // watchdog (docs/SCALE.md). Serial contexts only.
  std::array<int64_t, kNumAppPhases> PhaseCounts() const;

 private:
  struct ColdApp {
    ColdApp(AppId id, Workload* workload, uint64_t seed)
        : id(id), workload(workload), rng(seed) {}
    AppId id;
    Workload* workload;  // borrowed
    Rng rng;
    const QueryCompiler* compiler = nullptr;  // borrowed, may be null
    TransactionProfile profile;
    bool table_plan = false;  // current transaction uses table locking
    ApplicationStats stats;
  };

  // Deadline-wheel entry. `gen` snapshots gen_[index] at park time; a
  // mismatch at pop time means the application disconnected (and possibly
  // reconnected) since, and the entry is dead.
  // locklint: hot-column
  struct WheelEntry {
    uint32_t index = 0;
    uint32_t gen = 0;
    int64_t due = 0;  // absolute tick the timer expires
  };
  static_assert(std::is_trivially_copyable_v<WheelEntry>,
                "wheel slots swap and re-file entries wholesale");

  // Slots in the deadline wheel (power of two). Timers longer than one
  // revolution wrap: their entries are re-filed into the same slot and
  // re-examined once per revolution, so a long hold costs one comparison
  // every kWheelSlots ticks rather than a decrement every tick.
  static constexpr int64_t kWheelSlots = 1024;

  // Bumps `field` in application `i`'s stats and in the aggregate sink.
  void Count(uint32_t i, std::atomic<int64_t> ApplicationStats::* field,
             int64_t n = 1) {
    (cold_[i].stats.*field).fetch_add(n, std::memory_order_relaxed);
    if (sink_ != nullptr) {
      (sink_->*field).fetch_add(n, std::memory_order_relaxed);
    }
  }

  void StartTransaction(uint32_t i);
  void RunAcquisition(uint32_t i);
  void Commit(uint32_t i);
  void AbortToThinking(uint32_t i);

  // Files `i` into the wheel at the tick its timer_ expires. The deadline
  // is relative to the last collected tick: a timer set during (or after)
  // the sweep of tick T first decrements at T+1 and fires at
  // T + max(1, ceil(timer/tick)); a Connect during BeginTick of T+1 sees
  // its first decrement that same tick T+1, and the identical formula
  // lands on the legacy fire tick because current_tick_ still reads T.
  void Park(uint32_t i);

  void SetRunnable(uint32_t i) {
    runnable_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void ClearRunnable(uint32_t i) {
    runnable_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  Database* db_;
  const DurationMs tick_;
  ApplicationStats* sink_ = nullptr;  // borrowed aggregate, may be null

  // Hot columns, indexed by application slot. phase_ is the raw AppPhase
  // byte; timer_ is the think/hold countdown the legacy per-tick decrement
  // maintained (still authoritative — the wheel deadline is derived from
  // it, never the reverse).
  std::vector<uint8_t> phase_;
  std::vector<DurationMs> timer_;
  std::vector<int64_t> acquired_;  // row locks acquired this transaction
  std::vector<uint32_t> gen_;      // bumped on disconnect; validates wheel

  // Runnable bitmap (kRunning and kBlocked applications, plus this tick's
  // wheel wake-ups), swept ascending to build work_.
  std::vector<uint64_t> runnable_;
  std::vector<uint32_t> work_;

  std::deque<ColdApp> cold_;  // pointer-stable; atomics never move

  std::vector<std::vector<WheelEntry>> wheel_{
      static_cast<size_t>(kWheelSlots)};
  std::vector<WheelEntry> slot_scratch_;
  // Tick counter; -1 until the first CollectRunnable so connects made
  // before tick 0 fire on it (see Park).
  int64_t current_tick_ = -1;
};

}  // namespace locktune

#endif  // LOCKTUNE_WORKLOAD_APP_STORE_H_
