// DSS workload: one reporting query with massive row locking (§5.3).
//
// The query scans a decision-support table sequentially, taking an S lock on
// every row at a high rate, then keeps its locking state for the duration of
// the report. This is the "single reporting query" of Figure 11 whose lock
// demand grows the lock memory ~60× within seconds.
#ifndef LOCKTUNE_WORKLOAD_DSS_WORKLOAD_H_
#define LOCKTUNE_WORKLOAD_DSS_WORKLOAD_H_

#include <atomic>

#include "engine/catalog.h"
#include "workload/workload.h"

namespace locktune {

struct DssOptions {
  // Row locks the reporting query acquires (its scan size).
  int64_t scan_locks = 800'000;
  // Acquisition rate per 100 ms tick (30 000/s at the default tick).
  int locks_per_tick = 3000;
  // How long the query keeps its locks after the scan completes.
  DurationMs hold_time = 10 * kMinute;
  // Pause between consecutive reports.
  DurationMs think_time = 5 * kMinute;
};

class DssWorkload : public Workload {
 public:
  // Scans the catalog's "tpch_lineitem" table. `catalog` must outlive the
  // workload.
  DssWorkload(const Catalog& catalog, const DssOptions& options);

  TransactionProfile NextTransaction(Rng& rng) override;
  RowAccess NextAccess(Rng& rng) override;

  const DssOptions& options() const { return options_; }

 private:
  DssOptions options_;
  TableId table_;
  int64_t row_count_;
  // Atomic: one DSS workload feeds every client in its group, and parallel
  // workers call NextAccess concurrently. fetch_add keeps the scan strictly
  // sequential in single-threaded mode (same values as before).
  std::atomic<int64_t> cursor_{0};  // sequential scan position
};

}  // namespace locktune

#endif  // LOCKTUNE_WORKLOAD_DSS_WORKLOAD_H_
