#include "workload/application.h"

#include "common/check.h"

namespace locktune {

Application::Application(AppId id, Database* db, Workload* workload,
                         uint64_t seed, DurationMs tick)
    : id_(id),
      db_(db),
      workload_(workload),
      rng_(seed),
      tick_(tick) {
  LOCKTUNE_DCHECK(db != nullptr && workload != nullptr);
  LOCKTUNE_DCHECK(tick > 0);
}

void Application::Connect() {
  if (phase_ != AppPhase::kDisconnected) return;
  phase_ = AppPhase::kThinking;
  // Small random offset so simultaneous connects don't lockstep.
  timer_ = rng_.NextInRange(0, 100);
}

void Application::Disconnect() {
  if (phase_ == AppPhase::kDisconnected) return;
  db_->locks().ReleaseAll(id_);
  phase_ = AppPhase::kDisconnected;
  acquired_ = 0;
}

void Application::AbortForDeadlock() {
  LOCKTUNE_DCHECK(phase_ == AppPhase::kBlocked);
  Count(&ApplicationStats::deadlock_aborts);
  AbortToThinking();
}

void Application::AbortForTimeout() {
  LOCKTUNE_DCHECK(phase_ == AppPhase::kBlocked);
  Count(&ApplicationStats::timeout_aborts);
  AbortToThinking();
}

void Application::KillConnection() {
  if (phase_ == AppPhase::kDisconnected) return;
  const bool mid_txn = phase_ == AppPhase::kRunning ||
                       phase_ == AppPhase::kBlocked ||
                       phase_ == AppPhase::kHolding;
  db_->locks().ReleaseAll(id_);
  if (mid_txn) Count(&ApplicationStats::kill_aborts);
  phase_ = AppPhase::kDisconnected;
  acquired_ = 0;
}

void Application::Tick() {
  switch (phase_) {
    case AppPhase::kDisconnected:
      return;
    case AppPhase::kBlocked:
      if (db_->locks().IsBlocked(id_)) {
        Count(&ApplicationStats::blocked_ticks);
        return;
      }
      // The queued request was granted while we slept.
      ++acquired_;
      Count(&ApplicationStats::locks_acquired);
      phase_ = AppPhase::kRunning;
      RunAcquisition();
      return;
    case AppPhase::kThinking:
      timer_ -= tick_;
      if (timer_ > 0) return;
      StartTransaction();
      return;
    case AppPhase::kRunning:
      RunAcquisition();
      return;
    case AppPhase::kHolding:
      timer_ -= tick_;
      if (timer_ <= 0) Commit();
      return;
  }
}

void Application::StartTransaction() {
  profile_ = workload_->NextTransaction(rng_);
  LOCKTUNE_DCHECK(profile_.total_locks > 0 && profile_.locks_per_tick > 0);
  acquired_ = 0;
  table_plan_ =
      compiler_ != nullptr &&
      compiler_->ChooseGranularity(profile_.total_locks) ==
          LockGranularity::kTable;
  if (table_plan_) Count(&ApplicationStats::table_plan_txns);
  phase_ = AppPhase::kRunning;
}

void Application::RunAcquisition() {
  for (int i = 0; i < profile_.locks_per_tick; ++i) {
    if (acquired_ >= profile_.total_locks) break;
    const RowAccess access = workload_->NextAccess(rng_);
    // A table-locking plan (§3.6) fixes the coarse granularity at compile
    // time: the self-tuning lock memory never gets a chance to avoid it.
    const ResourceId resource =
        table_plan_ ? TableResource(access.table)
                    : RowResource(access.table, access.row);
    const LockMode mode =
        table_plan_ && access.mode != LockMode::kS ? LockMode::kX
                                                   : access.mode;
    const LockResult result = db_->locks().Lock(id_, resource, mode);
    switch (result.outcome) {
      case LockOutcome::kGranted:
        ++acquired_;
        Count(&ApplicationStats::locks_acquired);
        break;
      case LockOutcome::kWaiting:
        phase_ = AppPhase::kBlocked;
        return;
      case LockOutcome::kOutOfMemory:
        // The statement failed (DB2 would return SQL0912N); abort the
        // transaction and retry after thinking.
        Count(&ApplicationStats::oom_aborts);
        AbortToThinking();
        return;
    }
  }
  if (acquired_ >= profile_.total_locks) {
    if (profile_.hold_time > 0) {
      phase_ = AppPhase::kHolding;
      timer_ = profile_.hold_time;
    } else {
      Commit();
    }
  }
}

void Application::Commit() {
  if (profile_.abort_at_end) {
    // Abort-storm archetype: the client did all the locking work and rolls
    // back at the finish line.
    Count(&ApplicationStats::user_aborts);
    AbortToThinking();
    return;
  }
  db_->locks().ReleaseAll(id_);
  Count(&ApplicationStats::commits);
  acquired_ = 0;
  phase_ = AppPhase::kThinking;
  timer_ = profile_.think_time > 0 ? profile_.think_time : tick_;
}

void Application::AbortToThinking() {
  db_->locks().ReleaseAll(id_);
  acquired_ = 0;
  phase_ = AppPhase::kThinking;
  timer_ = profile_.think_time > 0 ? profile_.think_time : tick_;
}

}  // namespace locktune
