// Misbehaving-application workloads for chaos scenarios.
//
// Each archetype models one way real applications abuse a lock manager:
//  * lock hog      — huge X transactions held for a long time, starving the
//    lock memory everyone shares;
//  * idle holder   — moderate lock counts parked behind an effectively
//    infinite hold time (the "connection left open over lunch" pattern);
//  * abort storm   — transactions that do all the locking work and then
//    roll back, paying acquisition cost for zero commits;
//  * request storm — maximal acquisition rate with no think time, a
//    tight-loop client hammering the lock request path.
//
// Like BatchWorkload, a hostile client scans one table sequentially, so two
// hostile clients on the same table collide and exercise the wait/deadlock
// machinery too.
#ifndef LOCKTUNE_WORKLOAD_HOSTILE_WORKLOAD_H_
#define LOCKTUNE_WORKLOAD_HOSTILE_WORKLOAD_H_

#include <atomic>
#include <string>

#include "engine/catalog.h"
#include "workload/workload.h"

namespace locktune {

enum class HostileArchetype {
  kLockHog,
  kIdleHolder,
  kAbortStorm,
  kRequestStorm,
};

const char* HostileArchetypeName(HostileArchetype archetype);

struct HostileOptions {
  HostileArchetype archetype = HostileArchetype::kLockHog;
  // Zero / negative values mean "use the archetype default" (resolved in
  // the constructor), so scenario files only override what they care about.
  int64_t locks_per_txn = 0;
  int locks_per_tick = 0;
  DurationMs hold_time = -1;
  DurationMs think_time = -1;
  LockMode mode = LockMode::kX;
};

class HostileWorkload : public Workload {
 public:
  // Scans `table` sequentially, wrapping at its row count. `catalog` must
  // outlive the workload.
  HostileWorkload(const Catalog& catalog, const std::string& table,
                  const HostileOptions& options);

  TransactionProfile NextTransaction(Rng& rng) override;
  RowAccess NextAccess(Rng& rng) override;

  // Options after archetype defaults were applied.
  const HostileOptions& options() const { return options_; }

 private:
  HostileOptions options_;
  TableId table_;
  int64_t row_count_;
  std::atomic<int64_t> cursor_{0};  // shared scan position; see dss_workload.h
};

}  // namespace locktune

#endif  // LOCKTUNE_WORKLOAD_HOSTILE_WORKLOAD_H_
