#include "workload/oltp_workload.h"

#include "common/check.h"

namespace locktune {

OltpWorkload::OltpWorkload(const Catalog& catalog, const OltpOptions& options)
    : options_(options) {
  LOCKTUNE_CHECK(options.mean_locks_per_txn > 0);
  LOCKTUNE_CHECK(options.locks_per_tick > 0);
  LOCKTUNE_CHECK(options.write_fraction >= 0.0 && options.write_fraction <= 1.0);
  tables_ = catalog.TablesWithPrefix("tpcc_");
  LOCKTUNE_CHECK(!tables_.empty());
  for (TableId t : tables_) {
    const int64_t rows = catalog.Get(t).row_count;
    row_counts_.push_back(rows);
    row_pickers_.emplace_back(static_cast<uint64_t>(rows),
                              options.row_zipf_theta);
    total_rows_ += rows;
    cumulative_rows_.push_back(total_rows_);
  }
}

TransactionProfile OltpWorkload::NextTransaction(Rng& rng) {
  TransactionProfile p;
  const int64_t mean = options_.mean_locks_per_txn;
  p.total_locks = rng.NextInRange(mean - mean / 2, mean + mean / 2);
  p.locks_per_tick = options_.locks_per_tick;
  p.hold_time = 0;
  p.think_time = options_.think_time;
  return p;
}

RowAccess OltpWorkload::NextAccess(Rng& rng) {
  // Weighted by table size: most row locks land on the big tables.
  const int64_t pick =
      rng.NextInRange(0, total_rows_ - 1);
  size_t i = 0;
  while (cumulative_rows_[i] <= pick) ++i;
  RowAccess a;
  a.table = tables_[i];
  a.row = static_cast<int64_t>(row_pickers_[i].Next(rng));
  a.mode = rng.NextBool(options_.write_fraction) ? LockMode::kX : LockMode::kS;
  return a;
}

}  // namespace locktune
