#include "workload/hostile_workload.h"

#include "common/check.h"

namespace locktune {

namespace {

// Archetype defaults, applied where HostileOptions left zero / negative
// values. Tuned against the default 100 ms tick: a lock hog needs tens of
// seconds to build its footprint; an idle holder parks for a virtual hour.
void ApplyDefaults(HostileOptions* o) {
  switch (o->archetype) {
    case HostileArchetype::kLockHog:
      if (o->locks_per_txn <= 0) o->locks_per_txn = 40'000;
      if (o->locks_per_tick <= 0) o->locks_per_tick = 1'500;
      if (o->hold_time < 0) o->hold_time = kMinute;
      if (o->think_time < 0) o->think_time = kSecond;
      break;
    case HostileArchetype::kIdleHolder:
      if (o->locks_per_txn <= 0) o->locks_per_txn = 2'000;
      if (o->locks_per_tick <= 0) o->locks_per_tick = 500;
      if (o->hold_time < 0) o->hold_time = 60 * kMinute;
      if (o->think_time < 0) o->think_time = kSecond;
      break;
    case HostileArchetype::kAbortStorm:
      if (o->locks_per_txn <= 0) o->locks_per_txn = 1'500;
      if (o->locks_per_tick <= 0) o->locks_per_tick = 750;
      if (o->hold_time < 0) o->hold_time = 0;
      if (o->think_time < 0) o->think_time = 100;
      break;
    case HostileArchetype::kRequestStorm:
      if (o->locks_per_txn <= 0) o->locks_per_txn = 4'000;
      if (o->locks_per_tick <= 0) o->locks_per_tick = 2'000;
      if (o->hold_time < 0) o->hold_time = 0;
      if (o->think_time < 0) o->think_time = 100;
      break;
  }
}

}  // namespace

const char* HostileArchetypeName(HostileArchetype archetype) {
  switch (archetype) {
    case HostileArchetype::kLockHog:
      return "lock_hog";
    case HostileArchetype::kIdleHolder:
      return "idle_holder";
    case HostileArchetype::kAbortStorm:
      return "abort_storm";
    case HostileArchetype::kRequestStorm:
      return "request_storm";
  }
  return "unknown";
}

HostileWorkload::HostileWorkload(const Catalog& catalog,
                                 const std::string& table,
                                 const HostileOptions& options)
    : options_(options) {
  ApplyDefaults(&options_);
  LOCKTUNE_CHECK(options_.locks_per_txn > 0);
  LOCKTUNE_CHECK(options_.locks_per_tick > 0);
  LOCKTUNE_CHECK(options_.mode == LockMode::kX ||
                 options_.mode == LockMode::kU ||
                 options_.mode == LockMode::kS);
  const TableInfo* info = catalog.FindByName(table);
  LOCKTUNE_CHECK(info != nullptr && "unknown hostile table");
  table_ = info->id;
  row_count_ = info->row_count;
}

TransactionProfile HostileWorkload::NextTransaction(Rng&) {
  TransactionProfile p;
  p.total_locks = options_.locks_per_txn;
  p.locks_per_tick = options_.locks_per_tick;
  p.hold_time = options_.hold_time;
  p.think_time = options_.think_time;
  p.abort_at_end = options_.archetype == HostileArchetype::kAbortStorm;
  return p;
}

RowAccess HostileWorkload::NextAccess(Rng&) {
  RowAccess a;
  a.table = table_;
  a.row = cursor_.fetch_add(1, std::memory_order_relaxed) % row_count_;
  a.mode = options_.mode;
  return a;
}

}  // namespace locktune
