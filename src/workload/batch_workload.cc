#include "workload/batch_workload.h"

#include "common/check.h"

namespace locktune {

BatchWorkload::BatchWorkload(const Catalog& catalog, const std::string& table,
                             const BatchOptions& options)
    : options_(options) {
  LOCKTUNE_CHECK(options.rows_per_batch > 0);
  LOCKTUNE_CHECK(options.locks_per_tick > 0);
  LOCKTUNE_CHECK(options.mode == LockMode::kX || options.mode == LockMode::kU ||
         options.mode == LockMode::kS);
  const TableInfo* info = catalog.FindByName(table);
  LOCKTUNE_CHECK(info != nullptr && "unknown batch table");
  table_ = info->id;
  row_count_ = info->row_count;
}

TransactionProfile BatchWorkload::NextTransaction(Rng&) {
  TransactionProfile p;
  p.total_locks = options_.rows_per_batch;
  p.locks_per_tick = options_.locks_per_tick;
  p.hold_time = options_.hold_time;
  p.think_time = options_.think_time;
  return p;
}

RowAccess BatchWorkload::NextAccess(Rng&) {
  RowAccess a;
  a.table = table_;
  a.row = cursor_.fetch_add(1, std::memory_order_relaxed) % row_count_;
  a.mode = options_.mode;
  return a;
}

}  // namespace locktune
