#include "engine/db_snapshot.h"

#include <algorithm>
#include <cstdio>

#include "core/stmm_report.h"
#include "telemetry/exporters.h"
#include "telemetry/lock_profiler.h"

namespace locktune {

namespace {
constexpr double kMb = 1024.0 * 1024.0;

double Mb(Bytes b) { return static_cast<double>(b) / kMb; }
}  // namespace

DatabaseSnapshot CaptureSnapshot(Database& db, int max_app_id, int top_n) {
  DatabaseSnapshot s;
  s.time = db.clock().now();
  s.database_memory = db.memory().total();
  s.overflow = db.memory().overflow_bytes();
  s.overflow_goal = db.memory().overflow_goal();
  for (const auto& heap : db.memory().heaps()) {
    s.heaps.push_back({heap->name(), heap->consumer_class(), heap->size(),
                       heap->min_size(), heap->max_size()});
  }

  s.lock_allocated = db.locks().allocated_bytes();
  s.lock_used = db.locks().used_bytes();
  if (db.stmm() != nullptr) {
    s.lmoc = db.stmm()->lmoc();
    s.lmo = db.stmm()->lmo();
  } else {
    s.lmoc = s.lock_allocated;
  }
  s.maxlocks_percent = db.locks().CurrentMaxlocksPercent();
  s.lock_stats = db.locks().stats();
  s.waiting_apps = db.locks().waiting_app_count();

  // One aggregate pass under one manager guard. The old probe called
  // HeldStructures + IsBlocked per app id in [1, max_app_id], re-locking
  // the manager two to three times per application — at 10^6 connected
  // applications a single snapshot stalled the whole lock path.
  for (const AppLockUsage& a : db.locks().TopLockHolders(max_app_id, top_n)) {
    s.top_lock_holders.push_back({a.app, a.held_structures, a.blocked});
  }
  return s;
}

std::string RenderSnapshot(const DatabaseSnapshot& s) {
  std::string out;
  char line[200];

  std::snprintf(line, sizeof(line),
                "database snapshot at t=%.1fs (memory %.0f MB)\n",
                static_cast<double>(s.time) / 1000.0, Mb(s.database_memory));
  out += line;

  out += "  heaps:\n";
  for (const HeapSnapshot& h : s.heaps) {
    std::snprintf(line, sizeof(line),
                  "    %-14s %8.2f MB  [%s]  (min %.2f, max %.2f)\n",
                  h.name.c_str(), Mb(h.size),
                  h.consumer_class == ConsumerClass::kPerformance ? "PMC"
                                                                  : "FMC",
                  Mb(h.min_size), Mb(h.max_size));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "    %-14s %8.2f MB  (goal %.2f MB)\n", "overflow",
                Mb(s.overflow), Mb(s.overflow_goal));
  out += line;

  const double free_pct =
      s.lock_allocated > 0
          ? 100.0 * static_cast<double>(s.lock_allocated - s.lock_used) /
                static_cast<double>(s.lock_allocated)
          : 0.0;
  std::snprintf(line, sizeof(line),
                "  lock memory: %.2f MB allocated (%.1f%% free), "
                "LMOC %.2f MB, LMO %.2f MB, maxlocks %.1f%%\n",
                Mb(s.lock_allocated), free_pct, Mb(s.lmoc), Mb(s.lmo),
                s.maxlocks_percent);
  out += line;

  std::snprintf(line, sizeof(line),
                "  lock activity: requests=%lld waits=%lld "
                "escalations=%lld (excl=%lld) timeouts=%lld deadlocks=%lld "
                "oom=%lld sync_growth_blocks=%lld waiting_apps=%lld\n",
                static_cast<long long>(s.lock_stats.lock_requests),
                static_cast<long long>(s.lock_stats.lock_waits),
                static_cast<long long>(s.lock_stats.escalations),
                static_cast<long long>(s.lock_stats.exclusive_escalations),
                static_cast<long long>(s.lock_stats.lock_timeouts),
                static_cast<long long>(s.lock_stats.deadlock_victims),
                static_cast<long long>(s.lock_stats.out_of_memory_failures),
                static_cast<long long>(s.lock_stats.sync_growth_blocks),
                static_cast<long long>(s.waiting_apps));
  out += line;

  if (!s.top_lock_holders.empty()) {
    out += "  top lock holders:\n";
    for (const AppLockSnapshot& a : s.top_lock_holders) {
      std::snprintf(line, sizeof(line),
                    "    app %-5d %8lld structures (%.2f MB)%s\n", a.app,
                    static_cast<long long>(a.held_structures),
                    Mb(a.held_structures * kLockStructSize),
                    a.blocked ? "  [BLOCKED]" : "");
      out += line;
    }
  }
  return out;
}

std::vector<ShardHeatRow> CaptureShardHeat(Database& db) {
  const std::vector<int64_t> sizes = db.locks().lock_table_shard_sizes();
  const ProfileSnapshot prof = CaptureProfile();
  std::vector<ShardHeatRow> rows;
  rows.reserve(sizes.size());
  for (size_t i = 0; i < sizes.size(); ++i) {
    ShardHeatRow row;
    row.shard = static_cast<int>(i);
    row.heads = sizes[i];
    if (i < prof.shards.size()) {
      // Shards past kMaxProfiledShards folded their attribution into the
      // last profiled slot; their rows show occupancy only.
      row.acquires = prof.shards[i].acquires;
      row.contended = prof.shards[i].contended;
      row.wait_ms = static_cast<double>(prof.shards[i].wait_ns) / 1e6;
    }
    rows.push_back(row);
  }
  return rows;
}

std::string RenderShardHeatmap(const std::vector<ShardHeatRow>& rows) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "shard contention heatmap (%zu shards):\n", rows.size());
  out += line;
  out += "  shard      heads   acquires  contended    wait_ms  heat\n";
  double max_wait = 0.0;
  for (const ShardHeatRow& r : rows) max_wait = std::max(max_wait, r.wait_ms);
  for (const ShardHeatRow& r : rows) {
    constexpr int kBarWidth = 20;
    const int bar =
        max_wait > 0.0
            ? static_cast<int>(r.wait_ms / max_wait * kBarWidth + 0.5)
            : 0;
    std::snprintf(line, sizeof(line),
                  "     %02d %10lld %10llu %10llu %10.3f  %s\n", r.shard,
                  static_cast<long long>(r.heads),
                  static_cast<unsigned long long>(r.acquires),
                  static_cast<unsigned long long>(r.contended), r.wait_ms,
                  std::string(static_cast<size_t>(bar), '#').c_str());
    out += line;
  }
  return out;
}

std::string RenderInspector(Database& db, int max_app_id,
                            const RingBufferEventMonitor* ring,
                            size_t ring_tail) {
  std::string out = RenderSnapshot(CaptureSnapshot(db, max_app_id));
  out += "\n";
  out += RenderRegistryTable(db.metrics());
  out += "\n";
  out += RenderShardHeatmap(CaptureShardHeat(db));
  if (db.stmm() != nullptr && !db.stmm()->history().empty()) {
    out += "\nSTMM tuning history (last 10 passes):\n";
    out += RenderHistoryTable(db.stmm()->history(), 10);
    out += RenderSummary(Summarize(db.stmm()->history()));
  }
  if (ring != nullptr) {
    const std::vector<LockEvent> events = ring->Events();
    const size_t shown = std::min(ring_tail, events.size());
    char line[120];
    std::snprintf(line, sizeof(line),
                  "\nlock event ring buffer (%lld total, last %zu):\n",
                  static_cast<long long>(ring->total_events()), shown);
    out += line;
    for (size_t i = events.size() - shown; i < events.size(); ++i) {
      out += "  " + events[i].ToString() + "\n";
    }
  }
  return out;
}

}  // namespace locktune
