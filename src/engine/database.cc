#include "engine/database.h"

#include "common/check.h"
#include "common/paranoid.h"

namespace locktune {

namespace {

// Initial PMC layout, as fractions of databaseMemory. The exact split does
// not matter: STMM redistributes from the first tuning pass on. What matters
// is that PMCs own most of memory (so lock growth must displace them) and
// that an overflow reserve exists.
constexpr double kBufferPoolInitial = 0.55;
constexpr double kSortInitial = 0.12;
constexpr double kPackageCacheInitial = 0.08;
constexpr double kBufferPoolMin = 0.10;
constexpr double kPmcMin = 0.01;

// SQL Server 2005 (§2.3): initial memory for 2500 locks, growth capped at
// 60 % of total server memory.
constexpr int64_t kSqlServerInitialLocks = 2500;
constexpr double kSqlServerMaxFraction = 0.60;

}  // namespace

Database::Database(const DatabaseOptions& opts) : options_(opts) {}

Result<std::unique_ptr<Database>> Database::Open(const DatabaseOptions& opts) {
  if (Status s = opts.params.Validate(); !s.ok()) return s;
  if (opts.static_locklist_pages <= 0) {
    return Status::InvalidArgument("static_locklist_pages must be positive");
  }
  if (opts.static_maxlocks_percent <= 0.0 ||
      opts.static_maxlocks_percent > 100.0) {
    return Status::InvalidArgument("static_maxlocks_percent outside (0,100]");
  }
  std::unique_ptr<Database> db(new Database(opts));
  if (Status s = db->Init(); !s.ok()) return s;
  return db;
}

Status Database::Init() {
  const TuningParams& p = options_.params;
  catalog_ = Catalog::TpccTpch(options_.catalog_scale);
  memory_ =
      std::make_unique<DatabaseMemory>(p.database_memory, p.OverflowGoal());

  if (!options_.fault.empty()) {
    ledger_ = std::make_unique<DegradationLedger>(&clock_);
    fault_ = std::make_unique<FaultPlan>(options_.fault, &clock_);
    fault_->set_ledger(ledger_.get());
    memory_->set_fault_plan(fault_.get());
  }

  const auto frac = [&](double f) {
    return RoundToBlocks(
        static_cast<Bytes>(f * static_cast<double>(p.database_memory)));
  };

  // Performance consumers.
  Result<MemoryHeap*> bp = memory_->RegisterHeap(
      "buffer_pool", ConsumerClass::kPerformance, frac(kBufferPoolInitial),
      frac(kBufferPoolMin), p.database_memory);
  if (!bp.ok()) return bp.status();
  buffer_pool_ = bp.value();
  Result<MemoryHeap*> sort = memory_->RegisterHeap(
      "sort", ConsumerClass::kPerformance, frac(kSortInitial), frac(kPmcMin),
      p.database_memory);
  if (!sort.ok()) return sort.status();
  sort_ = sort.value();
  Result<MemoryHeap*> pkg = memory_->RegisterHeap(
      "package_cache", ConsumerClass::kPerformance, frac(kPackageCacheInitial),
      frac(kPmcMin), p.database_memory);
  if (!pkg.ok()) return pkg.status();
  package_cache_ = pkg.value();
  // The buffer pool benefits most from extra memory, then sort, then the
  // package cache — enough structure for donor/recipient selection.
  pmcs_.AddConsumer(buffer_pool_, 3.0e18);
  pmcs_.AddConsumer(sort_, 6.0e17);
  pmcs_.AddConsumer(package_cache_, 2.0e17);

  // Lock memory heap + lock manager, per tuning mode.
  Bytes initial_lock = 0;
  Bytes lock_heap_max = 0;
  Bytes manager_max = 0;
  switch (options_.mode) {
    case TuningMode::kSelfTuning:
      initial_lock = p.InitialLockMemory();
      lock_heap_max = p.MaxLockMemory();
      manager_max = p.MaxLockMemory();
      policy_ = std::make_unique<AdaptiveMaxlocksPolicy>(MaxlocksCurve(
          p.maxlocks_p, p.maxlocks_exponent, p.maxlocks_refresh_period));
      break;
    case TuningMode::kStatic:
      initial_lock =
          RoundUpToBlocks(PagesToBytes(options_.static_locklist_pages));
      lock_heap_max = initial_lock;
      manager_max = initial_lock;
      policy_ = std::make_unique<FixedMaxlocksPolicy>(
          options_.static_maxlocks_percent);
      break;
    case TuningMode::kSqlServer:
      initial_lock = RoundUpToBlocks(kSqlServerInitialLocks * kLockStructSize);
      lock_heap_max = static_cast<Bytes>(
          kSqlServerMaxFraction * static_cast<double>(p.database_memory));
      manager_max = lock_heap_max;
      policy_ = std::make_unique<SqlServerLockPolicy>();
      break;
  }
  Result<MemoryHeap*> lock_heap =
      memory_->RegisterHeap("locklist", ConsumerClass::kFunctional,
                            initial_lock, kLockBlockSize, lock_heap_max);
  if (!lock_heap.ok()) return lock_heap.status();
  lock_heap_ = lock_heap.value();

  LockManagerOptions lmo;
  lmo.initial_blocks = BytesToBlocks(initial_lock);
  lmo.max_lock_memory = manager_max;
  lmo.database_memory = p.database_memory;
  lmo.policy = policy_.get();
  lmo.clock = &clock_;
  lmo.lock_timeout = options_.lock_timeout;
  // The trace bridge is always wired (no-op until a sink is installed);
  // a user-supplied monitor is fanned out alongside it.
  if (options_.lock_monitor != nullptr) {
    tee_monitor_ = std::make_unique<TeeEventMonitor>(
        std::vector<LockEventMonitor*>{options_.lock_monitor,
                                       &trace_monitor_});
    lmo.monitor = tee_monitor_.get();
  } else {
    lmo.monitor = &trace_monitor_;
  }
  switch (options_.mode) {
    case TuningMode::kSelfTuning:
      // Synchronous growth lands in the STMM controller (overflow memory,
      // LMOmax and maxLockMemory checks).
      lmo.grow_callback = [this](int64_t blocks) {
        return stmm_ != nullptr && stmm_->GrantSynchronousGrowth(blocks);
      };
      break;
    case TuningMode::kStatic:
      lmo.grow_callback = nullptr;  // fixed LOCKLIST never grows
      break;
    case TuningMode::kSqlServer:
      lmo.grow_callback = [this](int64_t blocks) {
        return GrowSqlServerStyle(blocks);
      };
      break;
  }
  locks_ = std::make_unique<LockManager>(std::move(lmo));

  if (options_.mode == TuningMode::kSelfTuning) {
    stmm_ = std::make_unique<StmmController>(
        p, &clock_, memory_.get(), lock_heap_, locks_.get(), &pmcs_,
        [this] { return connected_applications_; });
    if (ledger_ != nullptr) stmm_->set_degradation_ledger(ledger_.get());
  }

  locks_->RegisterMetrics(&metrics_);
  memory_->RegisterMetrics(&metrics_);
  if (stmm_ != nullptr) stmm_->RegisterMetrics(&metrics_);
  // Gated on the fault plan so fault-free metric exports are byte-identical.
  if (ledger_ != nullptr) ledger_->RegisterMetrics(&metrics_);
  return Status::Ok();
}

void Database::set_trace_sink(TraceSink* sink) {
  trace_monitor_.set_sink(sink);
  if (stmm_ != nullptr) stmm_->set_trace_sink(sink);
  if (ledger_ != nullptr) ledger_->set_trace_sink(sink);
}

bool Database::GrowSqlServerStyle(int64_t blocks) {
  const Bytes delta = BlocksToBytes(blocks);
  if (lock_heap_->size() + delta > lock_heap_->max_size()) return false;
  if (memory_->overflow_bytes() < delta) {
    pmcs_.TakeFrom(*memory_, delta - memory_->overflow_bytes());
  }
  return memory_->GrowHeap(lock_heap_, delta).ok();
}

void Database::Tick(DurationMs dt) {
  clock_.Advance(dt);
  if (stmm_ != nullptr) stmm_->Poll();
  if (ParanoidEnabled()) LOCKTUNE_CHECK_OK(ValidateInvariants());
}

Status Database::ValidateInvariants() const {
  if (Status s = locks_->CheckConsistency(); !s.ok()) return s;
  if (Status s = memory_->CheckConsistency(); !s.ok()) return s;
  if (stmm_ != nullptr) {
    if (Status s = stmm_->CheckConsistency(); !s.ok()) return s;
  }
  if (ledger_ != nullptr) {
    if (Status s = ledger_->CheckConsistency(); !s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace locktune
