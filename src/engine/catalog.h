// Table catalog for the simulated database.
//
// The paper's testbed used a combined TPC-C and TPC-H schema in a single
// database (§5). The catalog carries just what lock workloads need: table
// identities and row counts (lock resources are (table, row) pairs).
#ifndef LOCKTUNE_ENGINE_CATALOG_H_
#define LOCKTUNE_ENGINE_CATALOG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "lock/resource.h"

namespace locktune {

struct TableInfo {
  TableId id = 0;
  std::string name;
  int64_t row_count = 0;
};

class Catalog {
 public:
  // Registers a table; names must be unique. Returns its TableId.
  [[nodiscard]] Result<TableId> AddTable(const std::string& name,
                                         int64_t row_count);

  const TableInfo& Get(TableId id) const;
  const TableInfo* FindByName(const std::string& name) const;
  int table_count() const { return static_cast<int>(tables_.size()); }
  const std::vector<TableInfo>& tables() const { return tables_; }

  // The combined TPC-C + TPC-H style schema the paper's experiments ran
  // against, scaled by `scale` (1.0 ≈ hundreds of thousands of rows in the
  // large tables; lock workloads only need row-identifier ranges).
  static Catalog TpccTpch(double scale = 1.0);

  // Table-name groups for workload routing.
  std::vector<TableId> TablesWithPrefix(const std::string& prefix) const;

 private:
  std::vector<TableInfo> tables_;
};

}  // namespace locktune

#endif  // LOCKTUNE_ENGINE_CATALOG_H_
