// The SQL compiler's locking-granularity decision (paper §3.6).
//
// DB2's optimizer uses the available lock memory when choosing a query
// execution plan: a statement expected to touch more rows than the lock
// memory can hold is compiled with table-level locking baked into the plan.
// With self-tuning, the instantaneous lock memory fluctuates — a statement
// compiled during a dip would carry a coarse-locking plan that "pre-empts
// the self-tuning lock memory from having an opportunity at runtime to
// avoid escalation". The fix: expose a stable, reasonably large view,
// sqlCompilerLockMem = 10 % of databaseMemory, instead of the live value.
//
// QueryCompiler implements the decision; the view is injected as a
// function so both the stable view (StmmController::CompilerLockMemoryView)
// and the hazardous instantaneous view can be plugged in (the
// ablation_compiler_view bench contrasts them).
#ifndef LOCKTUNE_ENGINE_QUERY_COMPILER_H_
#define LOCKTUNE_ENGINE_QUERY_COMPILER_H_

#include <cstdint>
#include <functional>

#include "common/units.h"

namespace locktune {

enum class LockGranularity {
  kRow,    // one lock structure per row
  kTable,  // the plan takes a table lock up front
};

class QueryCompiler {
 public:
  // `lock_memory_view` reports how much lock memory the compiler may assume
  // a statement can use (bytes). `safety_factor` discounts the view — DB2
  // plans conservatively because other statements share the memory.
  explicit QueryCompiler(std::function<Bytes()> lock_memory_view,
                         double safety_factor = 1.0);

  // Chooses the plan's locking granularity for a statement estimated to
  // touch `estimated_rows` rows: row locking iff the estimated lock
  // structures fit in the (discounted) view.
  LockGranularity ChooseGranularity(int64_t estimated_rows) const;

  // Statements compiled so far, and how many got table-locking plans.
  int64_t compiled_statements() const { return compiled_; }
  int64_t table_lock_plans() const { return table_plans_; }

 private:
  std::function<Bytes()> lock_memory_view_;
  double safety_factor_;
  mutable int64_t compiled_ = 0;
  mutable int64_t table_plans_ = 0;
};

}  // namespace locktune

#endif  // LOCKTUNE_ENGINE_QUERY_COMPILER_H_
