// Point-in-time diagnostic snapshot of a Database — the analogue of
// `db2pd -memsets -locks -stmm`: heap sizes, lock memory state, lock
// manager counters, and the heaviest lock-holding applications, with a
// text rendering for operators.
#ifndef LOCKTUNE_ENGINE_DB_SNAPSHOT_H_
#define LOCKTUNE_ENGINE_DB_SNAPSHOT_H_

#include <string>
#include <vector>

#include "engine/database.h"

namespace locktune {

struct HeapSnapshot {
  std::string name;
  ConsumerClass consumer_class = ConsumerClass::kPerformance;
  Bytes size = 0;
  Bytes min_size = 0;
  Bytes max_size = 0;
};

struct AppLockSnapshot {
  AppId app = 0;
  int64_t held_structures = 0;
  bool blocked = false;
};

struct DatabaseSnapshot {
  TimeMs time = 0;
  Bytes database_memory = 0;
  Bytes overflow = 0;
  Bytes overflow_goal = 0;
  std::vector<HeapSnapshot> heaps;

  // Lock memory.
  Bytes lock_allocated = 0;
  Bytes lock_used = 0;
  Bytes lmoc = 0;       // externalized config (== allocated when static)
  Bytes lmo = 0;        // transient overflow borrowings (self-tuning only)
  double maxlocks_percent = 0.0;
  LockManagerStats lock_stats;
  int64_t waiting_apps = 0;

  // Applications holding the most lock structures, descending.
  std::vector<AppLockSnapshot> top_lock_holders;
};

// Captures the current state. `top_n` bounds top_lock_holders; the probe
// scans app ids [1, max_app_id] (the scenario runner assigns ids densely
// from 1).
DatabaseSnapshot CaptureSnapshot(Database& db, int max_app_id,
                                 int top_n = 5);

// Multi-line operator-facing rendering.
std::string RenderSnapshot(const DatabaseSnapshot& snapshot);

// One row of the per-shard contention heatmap: table occupancy from the
// lock table, contention attribution from the lock-path profiler (zeros in
// LOCKTUNE_PROFILE=OFF builds).
struct ShardHeatRow {
  int shard = 0;
  int64_t heads = 0;       // live lock heads resident in the shard
  uint64_t acquires = 0;   // profiled shard-mutex acquisitions
  uint64_t contended = 0;  // acquisitions that had to wait
  double wait_ms = 0.0;    // total contended wait on this shard's mutex
};

// Occupancy + profiler attribution for every lock-table shard.
std::vector<ShardHeatRow> CaptureShardHeat(Database& db);

// Aligned heatmap table with shard ids and a wait-weighted heat bar. Pure
// (layout is golden-tested); returns the full section including heading.
std::string RenderShardHeatmap(const std::vector<ShardHeatRow>& rows);

// The `locktune_pd` full inspection: the snapshot above, the telemetry
// registry table, the last STMM tuning passes, and (when a flight recorder
// is attached) the tail of the lock event ring buffer.
std::string RenderInspector(Database& db, int max_app_id,
                            const RingBufferEventMonitor* ring = nullptr,
                            size_t ring_tail = 20);

}  // namespace locktune

#endif  // LOCKTUNE_ENGINE_DB_SNAPSHOT_H_
