// The database facade: wires the shared memory set, the lock manager, the
// escalation policy, and (when self-tuning is on) the STMM controller.
//
// Three configurations are supported, matching the paper's comparisons:
//  * self-tuning DB2 9 (adaptive MAXLOCKS curve + STMM lock memory tuning);
//  * static pre-STMM DB2 (fixed LOCKLIST pages + fixed MAXLOCKS percent,
//    no growth — the Figure 7/8 baseline);
//  * SQL Server 2005-style (grow-only lock memory up to 60 % of engine
//    memory, escalation at 40 % used or 5000 locks per application).
#ifndef LOCKTUNE_ENGINE_DATABASE_H_
#define LOCKTUNE_ENGINE_DATABASE_H_

#include <memory>

#include "common/sim_clock.h"
#include "common/status.h"
#include "core/config.h"
#include "core/pmc_model.h"
#include "core/stmm_controller.h"
#include "engine/catalog.h"
#include "fault/degradation_ledger.h"
#include "fault/fault_plan.h"
#include "lock/escalation_policy.h"
#include "lock/lock_manager.h"
#include "lock/lock_trace_bridge.h"
#include "memory/database_memory.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace locktune {

enum class TuningMode {
  kSelfTuning,  // the paper's algorithm
  kStatic,      // fixed LOCKLIST + fixed MAXLOCKS, no growth
  kSqlServer,   // SQL Server 2005-style rules (§2.3)
};

struct DatabaseOptions {
  TuningParams params;
  TuningMode mode = TuningMode::kSelfTuning;

  // kStatic configuration.
  int64_t static_locklist_pages = 100;     // 0.4 MB, the Figure 7 value
  double static_maxlocks_percent = 10.0;   // the pre-STMM product default

  // DB2 LOCKTIMEOUT: negative waits forever (the product default).
  DurationMs lock_timeout = -1;

  // Optional lock event monitor (borrowed; must outlive the database).
  LockEventMonitor* lock_monitor = nullptr;

  // Catalog scale factor (row-count ranges).
  double catalog_scale = 1.0;

  // Chaos layer: a non-empty spec arms a deterministic FaultPlan
  // (memory-pressure windows, scheduled connection kills) and creates the
  // degradation ledger. The default empty spec builds neither, leaving
  // every code path and metric export byte-identical to a fault-free run.
  FaultPlanSpec fault;
};

class Database {
 public:
  // Builds and wires all subsystems; fails on invalid options.
  [[nodiscard]] static Result<std::unique_ptr<Database>> Open(
      const DatabaseOptions& opts);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Advances virtual time and runs any due tuning passes. In paranoid mode
  // (common/paranoid.h) every tick ends with ValidateInvariants(); a
  // violation aborts loudly instead of drifting into a wrong golden file.
  void Tick(DurationMs dt);

  // Full-structure validation across the wired subsystems: lock manager
  // accounting (block list, sharded table/pool conservation, per-app held
  // index), database memory budget conservation, and STMM lock-memory
  // accounting. Read-only; never changes observable output.
  [[nodiscard]] Status ValidateInvariants() const;

  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  DatabaseMemory& memory() { return *memory_; }
  LockManager& locks() { return *locks_; }
  Catalog& catalog() { return catalog_; }
  const DatabaseOptions& options() const { return options_; }
  // Null in kStatic and kSqlServer modes.
  StmmController* stmm() { return stmm_.get(); }
  // Null unless DatabaseOptions::fault was non-empty.
  FaultPlan* fault_plan() { return fault_.get(); }
  DegradationLedger* degradation_ledger() { return ledger_.get(); }
  const DegradationLedger* degradation_ledger() const { return ledger_.get(); }
  PmcModel& pmcs() { return pmcs_; }
  MemoryHeap* lock_heap() { return lock_heap_; }
  MemoryHeap* buffer_pool_heap() { return buffer_pool_; }
  MemoryHeap* sort_heap() { return sort_; }

  // Connected application count, reported to the tuner (minLockMemory).
  int connected_applications() const { return connected_applications_; }
  void set_connected_applications(int n) { connected_applications_ = n; }

  // The unified telemetry registry. All subsystems register their metric
  // families at Open(); scenario runners add the workload family when they
  // attach. Exporters (telemetry/exporters.h) walk it.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // Installs the structured decision-trace sink: STMM tuning passes and
  // bridged lock events are appended to it. Borrowed; null disables.
  void set_trace_sink(TraceSink* sink);
  TraceSink* trace_sink() const { return trace_monitor_.sink(); }

 private:
  explicit Database(const DatabaseOptions& opts);

  [[nodiscard]] Status Init();

  DatabaseOptions options_;
  SimClock clock_;
  Catalog catalog_;
  MetricsRegistry metrics_;
  TraceEventMonitor trace_monitor_;
  // Fans lock events out to the user's monitor and the trace bridge when
  // both are present.
  std::unique_ptr<TeeEventMonitor> tee_monitor_;
  std::unique_ptr<DatabaseMemory> memory_;
  // Built before the subsystems they hook into; both null for a fault-free
  // run.
  std::unique_ptr<DegradationLedger> ledger_;
  std::unique_ptr<FaultPlan> fault_;
  std::unique_ptr<EscalationPolicy> policy_;
  std::unique_ptr<LockManager> locks_;
  PmcModel pmcs_;
  std::unique_ptr<StmmController> stmm_;
  MemoryHeap* lock_heap_ = nullptr;
  MemoryHeap* buffer_pool_ = nullptr;
  MemoryHeap* sort_ = nullptr;
  MemoryHeap* package_cache_ = nullptr;
  int connected_applications_ = 0;
  // SQL Server mode: lock memory grows on demand up to 60 % of engine
  // memory but is never returned (§2.3).
  bool GrowSqlServerStyle(int64_t blocks);
};

}  // namespace locktune

#endif  // LOCKTUNE_ENGINE_DATABASE_H_
