#include "engine/catalog.h"

#include "common/check.h"

namespace locktune {

Result<TableId> Catalog::AddTable(const std::string& name,
                                  int64_t row_count) {
  if (name.empty()) return Status::InvalidArgument("empty table name");
  if (row_count <= 0) {
    return Status::InvalidArgument("row_count must be positive");
  }
  if (FindByName(name) != nullptr) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  const TableId id = static_cast<TableId>(tables_.size());
  tables_.push_back({id, name, row_count});
  return id;
}

const TableInfo& Catalog::Get(TableId id) const {
  LOCKTUNE_DCHECK(id >= 0 && id < static_cast<TableId>(tables_.size()));
  return tables_[static_cast<size_t>(id)];
}

const TableInfo* Catalog::FindByName(const std::string& name) const {
  for (const TableInfo& t : tables_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

std::vector<TableId> Catalog::TablesWithPrefix(
    const std::string& prefix) const {
  std::vector<TableId> out;
  for (const TableInfo& t : tables_) {
    if (t.name.rfind(prefix, 0) == 0) out.push_back(t.id);
  }
  return out;
}

Catalog Catalog::TpccTpch(double scale) {
  LOCKTUNE_DCHECK(scale > 0.0);
  const auto rows = [scale](int64_t base) {
    const auto n = static_cast<int64_t>(static_cast<double>(base) * scale);
    return n < 1 ? 1 : n;
  };
  Catalog c;
  // TPC-C style OLTP tables.
  (void)c.AddTable("tpcc_warehouse", rows(100));
  (void)c.AddTable("tpcc_district", rows(1000));
  (void)c.AddTable("tpcc_customer", rows(300'000));
  (void)c.AddTable("tpcc_orders", rows(300'000));
  (void)c.AddTable("tpcc_order_line", rows(3'000'000));
  (void)c.AddTable("tpcc_stock", rows(1'000'000));
  (void)c.AddTable("tpcc_item", rows(100'000));
  (void)c.AddTable("tpcc_new_order", rows(90'000));
  (void)c.AddTable("tpcc_history", rows(300'000));
  // TPC-H style decision-support tables.
  (void)c.AddTable("tpch_lineitem", rows(6'000'000));
  (void)c.AddTable("tpch_orders", rows(1'500'000));
  (void)c.AddTable("tpch_customer", rows(150'000));
  (void)c.AddTable("tpch_part", rows(200'000));
  (void)c.AddTable("tpch_partsupp", rows(800'000));
  (void)c.AddTable("tpch_supplier", rows(10'000));
  (void)c.AddTable("tpch_nation", rows(25));
  (void)c.AddTable("tpch_region", rows(5));
  return c;
}

}  // namespace locktune
