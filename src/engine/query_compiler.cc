#include "engine/query_compiler.h"

#include "common/check.h"

namespace locktune {

QueryCompiler::QueryCompiler(std::function<Bytes()> lock_memory_view,
                             double safety_factor)
    : lock_memory_view_(std::move(lock_memory_view)),
      safety_factor_(safety_factor) {
  LOCKTUNE_CHECK(lock_memory_view_ != nullptr);
  LOCKTUNE_CHECK(safety_factor > 0.0 && safety_factor <= 1.0);
}

LockGranularity QueryCompiler::ChooseGranularity(
    int64_t estimated_rows) const {
  ++compiled_;
  const Bytes needed = estimated_rows * kLockStructSize;
  const Bytes budget = static_cast<Bytes>(
      safety_factor_ * static_cast<double>(lock_memory_view_()));
  if (needed > budget) {
    ++table_plans_;
    return LockGranularity::kTable;
  }
  return LockGranularity::kRow;
}

}  // namespace locktune
