#include "baseline/oracle_itl.h"
#include "common/check.h"

namespace locktune {

OracleItlSimulator::OracleItlSimulator(const OracleItlOptions& options)
    : options_(options) {
  LOCKTUNE_CHECK(options.rows_per_page > 0);
  LOCKTUNE_CHECK(options.initial_itl_slots > 0);
  LOCKTUNE_CHECK(options.max_itl_slots >= options.initial_itl_slots);
}

OracleItlSimulator::RowLockOutcome OracleItlSimulator::LockRow(TxnId txn,
                                                               TableId table,
                                                               int64_t row) {
  txn_active_[txn] = true;
  const int64_t page_no = row / options_.rows_per_page;
  const int row_in_page = static_cast<int>(row % options_.rows_per_page);
  PageState& page = GetPage(table, page_no);

  // Check the lock byte.
  const auto lb = page.lock_bytes.find(row_in_page);
  if (lb != page.lock_bytes.end()) {
    const TxnId owner = page.slots[static_cast<size_t>(lb->second)].txn;
    if (owner == txn) return RowLockOutcome::kGranted;  // re-lock, no-op
    if (TxnActive(owner)) {
      // Row busy: the caller goes into sleep-wake-check. Remember the first
      // waiter so later grants can be recognized as queue jumps.
      page.first_waiter.emplace(row_in_page, txn);
      ++stats_.row_waits;
      return RowLockOutcome::kWaitRow;
    }
    // Stale lock byte from a committed transaction: the visitor pays the
    // cleanout, then takes the row.
    ++stats_.cleanouts;
    page.lock_bytes.erase(lb);
  }

  const int slot = AcquireSlot(page, txn);
  if (slot < 0) {
    // ITL exhausted: page-level blocking even though the row is free.
    page.first_waiter.emplace(row_in_page, txn);
    ++stats_.itl_waits;
    return RowLockOutcome::kWaitItl;
  }

  // Queue jump: some other transaction started waiting on this row first
  // and is still asleep, but we grab it now.
  const auto fw = page.first_waiter.find(row_in_page);
  if (fw != page.first_waiter.end()) {
    if (fw->second != txn) ++stats_.queue_jumps;
    page.first_waiter.erase(fw);
  }

  page.lock_bytes[row_in_page] = slot;
  ++stats_.grants;
  return RowLockOutcome::kGranted;
}

void OracleItlSimulator::Commit(TxnId txn) {
  // Lock bytes stay set (deferred cleanout); marking the transaction
  // inactive makes its ITL slots reusable and its lock bytes stale.
  txn_active_[txn] = false;
}

Bytes OracleItlSimulator::ExtraItlBytes() const {
  return extra_slots_ * options_.itl_entry_bytes;
}

OracleItlSimulator::PageState& OracleItlSimulator::GetPage(TableId table,
                                                           int64_t page) {
  PageState& state = pages_[PageKey{table, page}];
  if (state.slots.empty()) {
    state.slots.resize(static_cast<size_t>(options_.initial_itl_slots));
  }
  return state;
}

bool OracleItlSimulator::TxnActive(TxnId txn) const {
  const auto it = txn_active_.find(txn);
  return it != txn_active_.end() && it->second;
}

int OracleItlSimulator::AcquireSlot(PageState& page, TxnId txn) {
  int reusable = -1;
  for (size_t i = 0; i < page.slots.size(); ++i) {
    if (page.slots[i].txn == txn) return static_cast<int>(i);
    if (reusable < 0 && !TxnActive(page.slots[i].txn)) {
      reusable = static_cast<int>(i);
    }
  }
  if (reusable >= 0) {
    // Reusing a committed transaction's slot. Lock bytes still pointing at
    // it are stale (their owner committed); clear them now — this is the
    // cleanout work Oracle defers to whichever transaction reuses the slot.
    // locklint: ordered-ok(erase-scan removes every matching entry; the
    // visit order is not observable)
    for (auto it = page.lock_bytes.begin(); it != page.lock_bytes.end();) {
      if (it->second == reusable) {
        ++stats_.cleanouts;
        it = page.lock_bytes.erase(it);
      } else {
        ++it;
      }
    }
    page.slots[static_cast<size_t>(reusable)].txn = txn;
    return reusable;
  }
  if (static_cast<int>(page.slots.size()) < options_.max_itl_slots) {
    // ITL growth consumes page space permanently.
    page.slots.push_back({txn});
    ++extra_slots_;
    ++stats_.itl_slots_added;
    return static_cast<int>(page.slots.size()) - 1;
  }
  return -1;
}

}  // namespace locktune
