// Client driver for the Oracle-style ITL model — the counterpart of
// workload/Application for the on-page locking baseline, so §2.3
// comparisons can use equivalent client populations and report comparable
// time series.
//
// Clients follow the sleep-wake-check discipline the paper criticizes: a
// blocked client retries its row on every tick instead of queueing, so a
// later arrival can grab the row first (queue jumping).
#ifndef LOCKTUNE_BASELINE_ORACLE_DRIVER_H_
#define LOCKTUNE_BASELINE_ORACLE_DRIVER_H_

#include <memory>
#include <vector>

#include "baseline/oracle_itl.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "common/time_series.h"

namespace locktune {

struct OracleClientOptions {
  // Row updates per transaction.
  int updates_per_txn = 20;
  // Update attempts per simulation tick.
  int updates_per_tick = 10;
  DurationMs think_time = 200;
  // Rows in the updated table and the Zipf skew of row selection.
  int64_t table_rows = 100'000;
  double row_zipf_theta = 0.2;
  // Wakeups on the same busy row before the transaction is rolled back —
  // the stand-in for Oracle's deadlock detection (the polled model can
  // otherwise livelock).
  int max_wakeups = 50;
};

// Aggregate counters across all clients.
struct OracleDriverStats {
  int64_t commits = 0;
  int64_t retries = 0;  // sleep-wake-check wakeups that found the row busy
  int64_t aborts = 0;   // transactions killed after too many wakeups
};

class OracleScenarioRunner {
 public:
  // Drives `clients` concurrent writers against `itl` (borrowed). One
  // transaction id per (client, transaction) pair.
  OracleScenarioRunner(OracleItlSimulator* itl, int clients,
                       const OracleClientOptions& options, uint64_t seed,
                       DurationMs tick = 100);

  OracleScenarioRunner(const OracleScenarioRunner&) = delete;
  OracleScenarioRunner& operator=(const OracleScenarioRunner&) = delete;

  // Runs for `duration` of virtual time, sampling each second.
  void Run(DurationMs duration);

  const OracleDriverStats& stats() const { return stats_; }
  const TimeSeriesSet& series() const { return series_; }

  static const char kThroughputTps[];
  static const char kRetries[];
  static const char kItlWaits[];
  static const char kQueueJumps[];
  static const char kItlBytes[];

 private:
  struct Client {
    Rng rng;
    TxnId txn = 0;
    int updates_done = 0;
    DurationMs think_left = 0;
    // Row the client is currently sleeping on (-1 when none).
    int64_t blocked_row = -1;
    int wakeups = 0;  // consecutive failed re-checks
    explicit Client(uint64_t seed) : rng(seed) {}
  };

  void TickClient(Client& client);

  OracleItlSimulator* itl_;
  OracleClientOptions options_;
  DurationMs tick_;
  SimClock clock_;
  ZipfGenerator row_picker_;
  std::vector<Client> clients_;
  TxnId next_txn_ = 1;
  OracleDriverStats stats_;
  TimeSeriesSet series_;
};

}  // namespace locktune

#endif  // LOCKTUNE_BASELINE_ORACLE_DRIVER_H_
