#include "baseline/oracle_driver.h"
#include "common/check.h"

namespace locktune {

const char OracleScenarioRunner::kThroughputTps[] = "throughput_tps";
const char OracleScenarioRunner::kRetries[] = "retries";
const char OracleScenarioRunner::kItlWaits[] = "itl_waits";
const char OracleScenarioRunner::kQueueJumps[] = "queue_jumps";
const char OracleScenarioRunner::kItlBytes[] = "itl_bytes";

OracleScenarioRunner::OracleScenarioRunner(OracleItlSimulator* itl,
                                           int clients,
                                           const OracleClientOptions& options,
                                           uint64_t seed, DurationMs tick)
    : itl_(itl),
      options_(options),
      tick_(tick),
      row_picker_(static_cast<uint64_t>(options.table_rows),
                  options.row_zipf_theta) {
  LOCKTUNE_CHECK(itl != nullptr);
  LOCKTUNE_CHECK(clients > 0);
  LOCKTUNE_CHECK(options.updates_per_txn > 0 && options.updates_per_tick > 0);
  Rng seeder(seed);
  clients_.reserve(static_cast<size_t>(clients));
  for (int i = 0; i < clients; ++i) clients_.emplace_back(seeder.Next());
  for (Client& c : clients_) {
    c.txn = next_txn_++;
    c.think_left = c.rng.NextInRange(0, options.think_time);
  }
}

void OracleScenarioRunner::Run(DurationMs duration) {
  const TimeMs until = clock_.now() + duration;
  TimeMs next_sample = clock_.now() + kSecond;
  int64_t last_commits = 0;
  while (clock_.now() < until) {
    for (Client& client : clients_) TickClient(client);
    clock_.Advance(tick_);
    if (clock_.now() >= next_sample) {
      next_sample += kSecond;
      series_.Record(kThroughputTps, clock_.now(),
                     static_cast<double>(stats_.commits - last_commits));
      last_commits = stats_.commits;
      series_.Record(kRetries, clock_.now(),
                     static_cast<double>(stats_.retries));
      series_.Record(kItlWaits, clock_.now(),
                     static_cast<double>(itl_->stats().itl_waits));
      series_.Record(kQueueJumps, clock_.now(),
                     static_cast<double>(itl_->stats().queue_jumps));
      series_.Record(kItlBytes, clock_.now(),
                     static_cast<double>(itl_->ExtraItlBytes()));
    }
  }
}

void OracleScenarioRunner::TickClient(Client& client) {
  if (client.think_left > 0) {
    client.think_left -= tick_;
    return;
  }
  for (int i = 0; i < options_.updates_per_tick; ++i) {
    // Sleep-wake-check: a blocked client re-checks the same row; otherwise
    // pick the next row of the transaction.
    const int64_t row = client.blocked_row >= 0
                            ? client.blocked_row
                            : static_cast<int64_t>(
                                  row_picker_.Next(client.rng));
    const auto outcome = itl_->LockRow(client.txn, /*table=*/0, row);
    if (outcome == OracleItlSimulator::RowLockOutcome::kGranted) {
      client.blocked_row = -1;
      client.wakeups = 0;
      if (++client.updates_done >= options_.updates_per_txn) {
        itl_->Commit(client.txn);
        ++stats_.commits;
        client.txn = next_txn_++;
        client.updates_done = 0;
        client.think_left = options_.think_time;
        return;
      }
    } else {
      // Back to sleep until the next tick; remember the row so the wake-up
      // checks it again (and may find someone else jumped the queue).
      ++stats_.retries;
      client.blocked_row = row;
      if (++client.wakeups >= options_.max_wakeups) {
        // Oracle's deadlock detection would kill one session's statement;
        // roll this transaction back and retry after thinking.
        itl_->Commit(client.txn);  // releases its slots; bytes stay stale
        ++stats_.aborts;
        client.txn = next_txn_++;
        client.updates_done = 0;
        client.blocked_row = -1;
        client.wakeups = 0;
        client.think_left = options_.think_time;
      }
      return;
    }
  }
}

}  // namespace locktune
