// Oracle-style on-page lock management (paper §2.3, Figure 4).
//
// Instead of a central lock memory, each data page stores a lock byte per
// row and an Interested Transaction List (ITL). A transaction that updates a
// row must own an ITL slot on the row's page; slots are added on demand but
// the space they consume is permanent until the table is reorganized. The
// model reproduces the paper's three criticisms:
//
//  * when a page's ITL cannot grow, new writers wait for a slot even if
//    their target row is unlocked (page-level blocking);
//  * waiters poll (sleep-wake-check) instead of queueing, so a later
//    transaction can "jump the queue";
//  * commits do not clear lock bytes — the next visitor pays a cleanout.
//
// Readers take no locks (Oracle reads through undo), so only exclusive row
// access goes through the simulator.
#ifndef LOCKTUNE_BASELINE_ORACLE_ITL_H_
#define LOCKTUNE_BASELINE_ORACLE_ITL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "lock/resource.h"

namespace locktune {

using TxnId = int64_t;

struct OracleItlOptions {
  int rows_per_page = 100;
  int initial_itl_slots = 2;
  // Page space bounds ITL growth; past this, slot requests wait.
  int max_itl_slots = 24;
  Bytes itl_entry_bytes = 24;
};

struct OracleItlStats {
  int64_t grants = 0;
  int64_t row_waits = 0;      // row locked by an active transaction
  int64_t itl_waits = 0;      // page ITL exhausted (row itself was free)
  int64_t cleanouts = 0;      // stale lock bytes cleared by later visitors
  int64_t itl_slots_added = 0;
  int64_t queue_jumps = 0;    // a grant that overtook an earlier waiter
};

class OracleItlSimulator {
 public:
  enum class RowLockOutcome {
    kGranted,
    kWaitRow,  // the row is locked by an active transaction
    kWaitItl,  // no ITL slot available on the page
  };

  explicit OracleItlSimulator(const OracleItlOptions& options);

  // Attempts an exclusive row lock for `txn`. Callers retry on kWait*
  // (the sleep-wake-check cycle); there is no queue, so the simulator
  // counts a queue jump when a grant overtakes a transaction that started
  // waiting on the same row earlier.
  RowLockOutcome LockRow(TxnId txn, TableId table, int64_t row);

  // Commits `txn`. Its lock bytes are NOT cleared — they stay until a later
  // visitor cleans them out — but its ITL slots become reusable.
  void Commit(TxnId txn);

  // Permanent page space consumed by ITL entries beyond the initial
  // allocation (never shrinks; Oracle reclaims it only on reorg).
  Bytes ExtraItlBytes() const;

  const OracleItlStats& stats() const { return stats_; }
  const OracleItlOptions& options() const { return options_; }

 private:
  struct ItlEntry {
    TxnId txn = 0;
  };

  struct PageState {
    std::vector<ItlEntry> slots;
    // row-in-page → index into slots: the "lock byte" pointing at the ITL.
    std::unordered_map<int, int> lock_bytes;
    // Earliest still-waiting transaction per row (for queue-jump counting).
    std::unordered_map<int, TxnId> first_waiter;
  };

  struct PageKey {
    TableId table;
    int64_t page;
    friend bool operator==(const PageKey& a, const PageKey& b) {
      return a.table == b.table && a.page == b.page;
    }
  };
  struct PageKeyHash {
    size_t operator()(const PageKey& k) const {
      return ResourceIdHash()(RowResource(k.table, k.page));
    }
  };

  PageState& GetPage(TableId table, int64_t page);
  bool TxnActive(TxnId txn) const;
  // Finds txn's slot on the page, or a reusable/new one; -1 when the ITL is
  // exhausted.
  int AcquireSlot(PageState& page, TxnId txn);

  OracleItlOptions options_;
  std::unordered_map<PageKey, PageState, PageKeyHash> pages_;
  std::unordered_map<TxnId, bool> txn_active_;
  OracleItlStats stats_;
  int64_t extra_slots_ = 0;
};

}  // namespace locktune

#endif  // LOCKTUNE_BASELINE_ORACLE_ITL_H_
