// Invariant-check macros (the repo's replacement for raw assert()).
//
// Two tiers:
//
//  * LOCKTUNE_CHECK(cond)            — always on, in every build type.
//    Use for configuration validation and cold-path contract checks whose
//    cost is irrelevant (constructors, tuning passes, shrink/grow).
//
//  * LOCKTUNE_DCHECK(cond)           — hot-path checks. Compiled in unless
//    NDEBUG is defined; the project build keeps NDEBUG stripped in all
//    standard build types, so these are active everywhere today, exactly
//    like the assert() calls they replace. A future "checks off" build can
//    define NDEBUG without touching call sites.
//
// Both print `locktune: CHECK failed: <expr> (file:line)` to stderr and
// abort, so a violated invariant is loud and localizable rather than a
// silently-wrong golden file. Keep the `cond && "message"` idiom for
// context; the whole expression is printed.
//
// LOCKTUNE_CHECK_OK(status) is a convenience for Status-returning
// validators: it prints the status message on failure.
//
// Unlike assert(), these stay active under -DNDEBUG=OFF regardless of the
// compiler's NDEBUG handling, and the failure text is grep-stable for the
// paranoid-mode tests ("CHECK failed").
#ifndef LOCKTUNE_COMMON_CHECK_H_
#define LOCKTUNE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace locktune {

// Post-mortem hooks, run after a CHECK prints its message and before the
// process aborts. The flight recorder (telemetry/flight_recorder.h)
// registers one so every CHECK failure comes with the recent lock/tuner
// event history. Hooks must be async-signal-tolerant in spirit: no locks
// that the failing thread might already hold, no allocation-heavy work.
// Re-entrant failures (a hook tripping a CHECK) skip straight to abort.
using CheckFailureHook = void (*)();
void AddCheckFailureHook(CheckFailureHook hook);
void InvokeCheckFailureHooks();

}  // namespace locktune

#define LOCKTUNE_CHECK(cond)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "locktune: CHECK failed: %s (%s:%d)\n",    \
                   #cond, __FILE__, __LINE__);                        \
      ::locktune::InvokeCheckFailureHooks();                          \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

// Hot-path tier: same behavior as LOCKTUNE_CHECK while NDEBUG is off
// (the default in every project build type). A paranoid build keeps them
// on even under NDEBUG.
#if defined(NDEBUG) && !defined(LOCKTUNE_PARANOID)
#define LOCKTUNE_DCHECK(cond) \
  do {                        \
  } while (0)
#else
#define LOCKTUNE_DCHECK(cond) LOCKTUNE_CHECK(cond)
#endif

// For Status-returning validators: aborts with the status message.
// `status` must be an expression convertible to locktune::Status (evaluated
// once).
#define LOCKTUNE_CHECK_OK(status)                                      \
  do {                                                                 \
    const auto& locktune_check_ok_s = (status);                        \
    if (!locktune_check_ok_s.ok()) {                                   \
      std::fprintf(stderr, "locktune: CHECK failed: %s (%s:%d)\n",     \
                   locktune_check_ok_s.ToString().c_str(), __FILE__,   \
                   __LINE__);                                          \
      ::locktune::InvokeCheckFailureHooks();                           \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

#endif  // LOCKTUNE_COMMON_CHECK_H_
