#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace locktune {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  LOCKTUNE_DCHECK(bound > 0);
  // Debiased modulo via rejection on the top of the range.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  LOCKTUNE_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

namespace {

// Exact summation up to this many terms; beyond it the tail is a midpoint
// integral. The threshold sits above every fixed catalog's largest table
// (order_line at scale 1.0 is 3 M rows), so draw sequences for the golden
// scenarios are bit-for-bit unchanged — only billion-row catalogs (the
// population-scaled scale_sweep points, docs/SCALE.md) take the
// approximate tail, which a sampler cannot tell apart (midpoint-rule
// error is O(theta / M) relative, ~1e-8 here).
constexpr uint64_t kZetaExactTerms = uint64_t{1} << 24;

double Zeta(uint64_t n, double theta) {
  const uint64_t exact = n < kZetaExactTerms ? n : kZetaExactTerms;
  double sum = 0.0;
  for (uint64_t i = 1; i <= exact; ++i)
    sum += 1.0 / std::pow(double(i), theta);
  if (exact < n) {
    // Midpoint rule: sum_{i=M+1..n} i^-theta ≈ ∫ x^-theta dx over
    // [M+1/2, n+1/2]; exact for theta = 0.
    const double lo = static_cast<double>(exact) + 0.5;
    const double hi = static_cast<double>(n) + 0.5;
    sum += (std::pow(hi, 1.0 - theta) - std::pow(lo, 1.0 - theta)) /
           (1.0 - theta);
  }
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  LOCKTUNE_DCHECK(n > 0);
  LOCKTUNE_DCHECK(theta >= 0.0 && theta < 1.0);
  zetan_ = Zeta(n, theta);
  zeta2_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfGenerator::Next(Rng& rng) const {
  if (theta_ == 0.0) return rng.NextBelow(n_);
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace locktune
