// The repo-wide lock hierarchy, as data.
//
// This header is the single source of truth for which lock may be taken
// while which other lock is held. It is deliberately self-contained
// (standard library only, no project includes) because it is compiled
// into two very different consumers that must never disagree:
//
//   * tools/locklint/locklint.cc — the static analyzer builds the
//     whole-repo lock-order graph and checks every edge against these
//     ranks (rule LL011), including cycle detection;
//   * src/common/lock_rank.cc — the paranoid-mode runtime assertion
//     keeps a per-thread stack of held ranks and aborts on an
//     out-of-order acquisition the static pass missed (callbacks,
//     function pointers, code locklint cannot see through).
//
// The rule: a thread may acquire a lock only while every lock it already
// holds has a STRICTLY SMALLER rank. Strict ordering at equal rank is
// intentional — it is what enforces "never hold two shard latches at
// once" (docs/LATCHES.md) without a dedicated rule.
//
// The hierarchy (outermost first; see docs/STATIC_ANALYSIS.md §2 for the
// prose version and the evidence for each edge):
//
//   rank 0   MetricsRegistry::mu_   Collect() holds it while running
//                                   registered callbacks, and the lock
//                                   manager's gauge callbacks take the
//                                   manager lock — so the registry lock
//                                   is OUTERMOST, nothing may be held
//                                   when calling Collect().
//   rank 10  LockManager::mu_       the two-level outer lock: exclusive
//                                   for the classic path, shared for the
//                                   parallel fast path.
//   rank 20  LockManager::apps_mu_  fast-path app-state map; never
//            LockTable shard latch  nested with a shard latch, and two
//                                   shard latches never nest (equal
//                                   rank ⇒ both are illegal).
//   rank 30  LockManager::alloc_mu_ pool/block allocation under the
//                                   fast path: "shard latch, then
//                                   alloc_mu_ — never the reverse".
//   rank 40  leaf telemetry locks   trace writers, chrome trace, flight
//                                   recorder + profiler registries,
//                                   histogram buckets. Take nothing
//                                   underneath.
//
// Adding a lock: give it a rank here, name it in the table below with
// the same canonical `Class::member` spelling locklint derives, and add
// a row to the docs table. locklint's golden lock-order-graph test
// (tests/golden/lock_order_graph.dot) will fail until the graph, the
// table, and the docs agree.
#ifndef LOCKTUNE_COMMON_LOCK_RANK_TABLE_H_
#define LOCKTUNE_COMMON_LOCK_RANK_TABLE_H_

#include <cstddef>

namespace locktune {

// Ranks are sparse so a future lock can slot between existing levels
// without renumbering. kLockRankUnranked opts a lock out of runtime
// checking (locklint still sees it as a graph node).
inline constexpr int kLockRankUnranked = -1;
inline constexpr int kLockRankMetricsRegistry = 0;
inline constexpr int kLockRankManagerOuter = 10;
inline constexpr int kLockRankAppsMap = 20;
inline constexpr int kLockRankShardLatch = 20;
inline constexpr int kLockRankAlloc = 30;
inline constexpr int kLockRankLeaf = 40;

struct LockRankEntry {
  const char* name;  // canonical `Class::member` (locklint's spelling)
  int rank;
};

// Every named lock in the tree. Locks absent from this table are treated
// as leaves by the runtime checker's callers (they should still be added
// here when they participate in any nesting).
inline constexpr LockRankEntry kLockRankTable[] = {
    {"MetricsRegistry::mu_", kLockRankMetricsRegistry},
    {"LockManager::mu_", kLockRankManagerOuter},
    {"LockManager::apps_mu_", kLockRankAppsMap},
    {"LockTable::shard_latch", kLockRankShardLatch},
    {"LockManager::alloc_mu_", kLockRankAlloc},
    // Leaves: telemetry sinks and registries. Code holding one of these
    // must not call back into anything above.
    {"HistogramMetric::mu_", kLockRankLeaf},
    {"JsonlTraceWriter::mu_", kLockRankLeaf},
    {"MemoryTraceSink::mu_", kLockRankLeaf},
    {"ChromeTraceCollector::mu_", kLockRankLeaf},
    {"flight_recorder::mu", kLockRankLeaf},
    {"lock_profiler::mu", kLockRankLeaf},
};

inline constexpr std::size_t kLockRankTableSize =
    sizeof(kLockRankTable) / sizeof(kLockRankTable[0]);

// Rank lookup by canonical name; kLockRankUnranked when absent. Linear
// scan — both consumers call this at startup / analysis time, never on a
// hot path.
inline int LockRankForName(const char* name) {
  for (std::size_t i = 0; i < kLockRankTableSize; ++i) {
    const char* a = kLockRankTable[i].name;
    const char* b = name;
    while (*a != '\0' && *a == *b) {
      ++a;
      ++b;
    }
    if (*a == '\0' && *b == '\0') return kLockRankTable[i].rank;
  }
  return kLockRankUnranked;
}

}  // namespace locktune

#endif  // LOCKTUNE_COMMON_LOCK_RANK_TABLE_H_
