// Memory unit conventions shared across locktune.
//
// DB2 sizes lock memory (LOCKLIST) in 4 KB pages and allocates it in 128 KB
// blocks — one allocation per 32 pages — where each block stores
// approximately 2000 lock structures (paper §2.2). We fix the lock structure
// at 64 bytes, giving exactly 2048 locks per block.
#ifndef LOCKTUNE_COMMON_UNITS_H_
#define LOCKTUNE_COMMON_UNITS_H_

#include <cstdint>

namespace locktune {

// Quantities of memory are plain byte counts. They are accounting values;
// the library never allocates backing store for them.
using Bytes = int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

// DB2 configuration page (LOCKLIST is expressed in these).
inline constexpr Bytes kPageSize = 4 * kKiB;
// Lock memory allocation unit: 32 pages.
inline constexpr Bytes kLockBlockSize = 128 * kKiB;
inline constexpr int kPagesPerBlock =
    static_cast<int>(kLockBlockSize / kPageSize);
// Size of one lock structure; 128 KiB / 64 B = 2048 ≈ the paper's "~2000".
inline constexpr Bytes kLockStructSize = 64;
inline constexpr int kLocksPerBlock =
    static_cast<int>(kLockBlockSize / kLockStructSize);

// Converts between the units used by the paper.
constexpr Bytes PagesToBytes(int64_t pages) { return pages * kPageSize; }
constexpr int64_t BytesToPages(Bytes bytes) { return bytes / kPageSize; }
constexpr int64_t BytesToBlocks(Bytes bytes) { return bytes / kLockBlockSize; }
constexpr Bytes BlocksToBytes(int64_t blocks) {
  return blocks * kLockBlockSize;
}

// Rounds `bytes` to the nearest whole number of 128 KB lock blocks
// (paper §3.2: "all increments and decrements to the lock memory will be
// performed in integral units of lock memory blocks").
constexpr Bytes RoundToBlocks(Bytes bytes) {
  const Bytes half = kLockBlockSize / 2;
  return ((bytes + half) / kLockBlockSize) * kLockBlockSize;
}

// Rounds up to a whole number of blocks (used for growth, which must cover
// the requested demand).
constexpr Bytes RoundUpToBlocks(Bytes bytes) {
  return ((bytes + kLockBlockSize - 1) / kLockBlockSize) * kLockBlockSize;
}

}  // namespace locktune

#endif  // LOCKTUNE_COMMON_UNITS_H_
