// Virtual time for deterministic simulation.
//
// The paper's experiments run for minutes to hours of wall-clock time with a
// 30-second STMM tuning interval. locktune replaces wall-clock time with a
// virtual millisecond counter so that the same feedback dynamics replay in
// milliseconds of real time, deterministically.
#ifndef LOCKTUNE_COMMON_SIM_CLOCK_H_
#define LOCKTUNE_COMMON_SIM_CLOCK_H_

#include <cstdint>

namespace locktune {

// Virtual durations and instants, in milliseconds.
using DurationMs = int64_t;
using TimeMs = int64_t;

inline constexpr DurationMs kMillisecond = 1;
inline constexpr DurationMs kSecond = 1000 * kMillisecond;
inline constexpr DurationMs kMinute = 60 * kSecond;

// A monotonically advancing virtual clock. Components that need the current
// time hold a `const SimClock*`; only the simulation driver advances it.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(TimeMs start) : now_(start) {}

  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  TimeMs now() const { return now_; }

  // Advances the clock by `delta` (must be non-negative).
  void Advance(DurationMs delta) {
    if (delta > 0) now_ += delta;
  }

 private:
  TimeMs now_ = 0;
};

// Fires at a fixed period against a SimClock. Used for the STMM tuning
// interval: the controller polls DuePeriods() once per simulation tick and
// runs one tuning pass per elapsed period.
class PeriodicTimer {
 public:
  // `period` must be positive. The first firing is at `start + period`.
  PeriodicTimer(const SimClock* clock, DurationMs period)
      : clock_(clock), period_(period), last_fire_(clock->now()) {}

  DurationMs period() const { return period_; }

  // Changes the period; the next firing is measured from the last one.
  void set_period(DurationMs period) { period_ = period; }

  // Returns the number of whole periods elapsed since the last call that
  // reported any, and consumes them.
  int DuePeriods() {
    if (period_ <= 0) return 0;
    const TimeMs now = clock_->now();
    const int due = static_cast<int>((now - last_fire_) / period_);
    last_fire_ += static_cast<DurationMs>(due) * period_;
    return due;
  }

 private:
  const SimClock* clock_;
  DurationMs period_;
  TimeMs last_fire_;
};

}  // namespace locktune

#endif  // LOCKTUNE_COMMON_SIM_CLOCK_H_
