// Error-handling primitives for locktune.
//
// The library does not use C++ exceptions. Operations that can fail return
// Status, or Result<T> when they also produce a value. Conditions that are a
// normal part of lock processing (waiting, escalation, deadlock victim
// selection) are NOT errors; they are modelled as enum outcomes by the lock
// manager. Status is reserved for contract violations and resource
// exhaustion that the caller must handle.
#ifndef LOCKTUNE_COMMON_STATUS_H_
#define LOCKTUNE_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"

namespace locktune {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
};

// Returns a stable human-readable name, e.g. "RESOURCE_EXHAUSTED".
std::string_view StatusCodeName(StatusCode code);

// A cheap value type describing the result of an operation. Ok statuses
// carry no allocation; error statuses carry a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status. Accessing the value of
// an error result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    LOCKTUNE_DCHECK(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    LOCKTUNE_DCHECK(ok());
    return *value_;
  }
  T& value() & {
    LOCKTUNE_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    LOCKTUNE_DCHECK(ok());
    return *std::move(value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace locktune

#endif  // LOCKTUNE_COMMON_STATUS_H_
