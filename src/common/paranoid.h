// Paranoid mode: full-structure invariant validation every simulation tick.
//
// Three ways to turn it on, strongest first:
//   * build with -DLOCKTUNE_PARANOID=ON (cmake option; defines the
//     LOCKTUNE_PARANOID macro so the default below is true);
//   * set LOCKTUNE_PARANOID=1 (or "on") in the environment — works in any
//     build, which is how the paranoid ctest runs against the stock binary;
//   * SetParanoidForTesting(true) from a test.
//
// Paranoid validation is read-only and must never change observable output:
// the golden determinism suite runs with it on and must stay byte-identical.
#ifndef LOCKTUNE_COMMON_PARANOID_H_
#define LOCKTUNE_COMMON_PARANOID_H_

namespace locktune {

// True when every-tick validators (Database::ValidateInvariants) should run.
bool ParanoidEnabled();

// Test override; passing the compiled/environment default back is not
// possible — tests should restore the previous value themselves.
void SetParanoidForTesting(bool on);

}  // namespace locktune

#endif  // LOCKTUNE_COMMON_PARANOID_H_
