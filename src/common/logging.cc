#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace locktune {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Strips the directory portion so log lines stay short.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  (void)level_;
}

}  // namespace internal_logging

}  // namespace locktune
