#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/sim_clock.h"

namespace locktune {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
std::atomic<const SimClock*> g_clock{nullptr};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Strips the directory portion so log lines stay short.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetLogClock(const SimClock* clock) {
  g_clock.store(clock, std::memory_order_relaxed);
}

const SimClock* GetLogClock() {
  return g_clock.load(std::memory_order_relaxed);
}

namespace internal_logging {

std::string LogPrefix(LogLevel level, const char* file, int line) {
  std::ostringstream os;
  os << "[";
  if (const SimClock* clock = GetLogClock()) {
    char t[32];
    std::snprintf(t, sizeof(t), "t=%.3fs ",
                  static_cast<double>(clock->now()) / 1000.0);
    os << t;
  }
  os << LevelTag(level) << " " << Basename(file) << ":" << line << "] ";
  return os.str();
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << LogPrefix(level, file, line);
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  (void)level_;
}

}  // namespace internal_logging

}  // namespace locktune
