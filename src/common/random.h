// Deterministic pseudo-random utilities for workload generation.
//
// All scenario randomness flows through Rng seeded explicitly, so every
// experiment is reproducible bit-for-bit.
#ifndef LOCKTUNE_COMMON_RANDOM_H_
#define LOCKTUNE_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace locktune {

// xoshiro256** with a splitmix64-seeded state. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  // Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBelow(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability `p` (clamped to [0, 1]).
  bool NextBool(double p);

 private:
  uint64_t state_[4];
};

// Zipf-distributed integers over [0, n). Skew `theta` in [0, 1); theta = 0 is
// uniform, larger values concentrate probability on small ranks. Uses the
// standard Gray/Jim CLH rejection-free inversion approximation, the same
// sampler TPC-C implementations use for NURand-like hot-spot access.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  // Draws one rank in [0, n).
  uint64_t Next(Rng& rng) const;

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

}  // namespace locktune

#endif  // LOCKTUNE_COMMON_RANDOM_H_
