#include "common/paranoid.h"

#include <cstdlib>
#include <cstring>

namespace locktune {

namespace {

enum class Override { kUnset, kOn, kOff };
Override g_override = Override::kUnset;

bool EnvDefault() {
  // Environment is configuration, not simulation input: reading it does not
  // affect determinism of a given run. getenv is mt-unsafe only against a
  // concurrent setenv, and this process never writes its environment; the
  // magic-static in ParanoidEnabled() serializes the one read anyway.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("LOCKTUNE_PARANOID");
  if (env != nullptr) {
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
        std::strcmp(env, "ON") == 0) {
      return true;
    }
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
        std::strcmp(env, "OFF") == 0) {
      return false;
    }
  }
#ifdef LOCKTUNE_PARANOID
  return true;
#else
  return false;
#endif
}

}  // namespace

bool ParanoidEnabled() {
  if (g_override != Override::kUnset) return g_override == Override::kOn;
  static const bool kDefault = EnvDefault();
  return kDefault;
}

void SetParanoidForTesting(bool on) {
  g_override = on ? Override::kOn : Override::kOff;
}

}  // namespace locktune
