// Named time-series collection for experiment output.
//
// Scenario runners sample metrics (lock memory allocated/used, throughput,
// escalations, ...) into a TimeSeriesSet; benches print them as aligned CSV
// so each figure's series can be regenerated and plotted.
#ifndef LOCKTUNE_COMMON_TIME_SERIES_H_
#define LOCKTUNE_COMMON_TIME_SERIES_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/sim_clock.h"

namespace locktune {

// One (time, value) series.
class TimeSeries {
 public:
  struct Point {
    TimeMs time_ms;
    double value;
  };

  void Add(TimeMs t, double v) { points_.push_back({t, v}); }

  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }

  double MinValue() const;
  double MaxValue() const;
  // Value of the last point (0 if empty).
  double Last() const;
  // First point whose value is >= threshold; returns -1 if none.
  TimeMs FirstTimeAtLeast(double threshold) const;

 private:
  std::vector<Point> points_;
};

// A set of equally-sampled series keyed by name. Series are created lazily on
// first Record().
class TimeSeriesSet {
 public:
  void Record(const std::string& name, TimeMs t, double v);

  bool Has(const std::string& name) const;
  const TimeSeries& Get(const std::string& name) const;

  std::vector<std::string> Names() const;

  // Writes CSV with a time_s column followed by one column per requested
  // series name, aligned on sample index. All requested series must exist
  // and have equal length.
  void WriteCsv(std::ostream& os,
                const std::vector<std::string>& names) const;

 private:
  std::map<std::string, TimeSeries> series_;
};

}  // namespace locktune

#endif  // LOCKTUNE_COMMON_TIME_SERIES_H_
