#include "common/time_series.h"

#include <algorithm>

#include "common/check.h"

namespace locktune {

double TimeSeries::MinValue() const {
  double m = points_.empty() ? 0.0 : points_[0].value;
  for (const Point& p : points_) m = std::min(m, p.value);
  return m;
}

double TimeSeries::MaxValue() const {
  double m = points_.empty() ? 0.0 : points_[0].value;
  for (const Point& p : points_) m = std::max(m, p.value);
  return m;
}

double TimeSeries::Last() const {
  return points_.empty() ? 0.0 : points_.back().value;
}

TimeMs TimeSeries::FirstTimeAtLeast(double threshold) const {
  for (const Point& p : points_) {
    if (p.value >= threshold) return p.time_ms;
  }
  return -1;
}

void TimeSeriesSet::Record(const std::string& name, TimeMs t, double v) {
  series_[name].Add(t, v);
}

bool TimeSeriesSet::Has(const std::string& name) const {
  return series_.count(name) > 0;
}

const TimeSeries& TimeSeriesSet::Get(const std::string& name) const {
  const auto it = series_.find(name);
  LOCKTUNE_CHECK(it != series_.end() && "unknown series");
  return it->second;
}

std::vector<std::string> TimeSeriesSet::Names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, unused] : series_) names.push_back(name);
  return names;
}

void TimeSeriesSet::WriteCsv(std::ostream& os,
                             const std::vector<std::string>& names) const {
  os << "time_s";
  for (const auto& name : names) os << "," << name;
  os << "\n";
  if (names.empty()) return;
  const size_t n = Get(names[0]).size();
  for (const auto& name : names) {
    const bool aligned = Get(name).size() == n;
    LOCKTUNE_CHECK(aligned && "series must be equally sampled");
    (void)aligned;
  }
  for (size_t i = 0; i < n; ++i) {
    os << static_cast<double>(Get(names[0]).points()[i].time_ms) / 1000.0;
    for (const auto& name : names) {
      os << "," << Get(name).points()[i].value;
    }
    os << "\n";
  }
}

}  // namespace locktune
