// Lightweight descriptive statistics used by metrics and benches.
#ifndef LOCKTUNE_COMMON_STATS_H_
#define LOCKTUNE_COMMON_STATS_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace locktune {

// Streaming min / max / mean / variance (Welford). Accepts doubles.
class SummaryStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  // Population variance / standard deviation.
  double variance() const;
  double stddev() const;

 private:
  int64_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

// Fixed-boundary histogram for latency-like values. Buckets are
// caller-supplied upper bounds; values above the last bound land in an
// overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Add(double x);

  int64_t total_count() const { return total_; }
  // counts() has upper_bounds().size() + 1 entries (last is overflow).
  const std::vector<int64_t>& counts() const { return counts_; }
  const std::vector<double>& upper_bounds() const { return bounds_; }

  // Linear-interpolated quantile estimate, q in [0, 1].
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace locktune

#endif  // LOCKTUNE_COMMON_STATS_H_
