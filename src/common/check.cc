#include "common/check.h"

#include <atomic>

namespace locktune {

namespace {

// Fixed-capacity lock-free hook table. Registration is rare (once per
// subsystem per process); invocation happens on the abort path, where
// taking a mutex could deadlock against whatever the failing thread holds.
constexpr int kMaxHooks = 8;
std::atomic<CheckFailureHook> g_hooks[kMaxHooks];
std::atomic<int> g_hook_count{0};
std::atomic<bool> g_invoking{false};

}  // namespace

void AddCheckFailureHook(CheckFailureHook hook) {
  if (hook == nullptr) return;
  const int slot = g_hook_count.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kMaxHooks) return;  // silently drop past capacity
  g_hooks[slot].store(hook, std::memory_order_release);
}

void InvokeCheckFailureHooks() {
  // A hook that itself fails a CHECK must not recurse forever; the second
  // entry falls through to abort with whatever was already printed.
  if (g_invoking.exchange(true, std::memory_order_acq_rel)) return;
  const int count = g_hook_count.load(std::memory_order_relaxed);
  for (int i = 0; i < count && i < kMaxHooks; ++i) {
    if (CheckFailureHook hook = g_hooks[i].load(std::memory_order_acquire)) {
      hook();
    }
  }
  g_invoking.store(false, std::memory_order_release);
}

}  // namespace locktune
