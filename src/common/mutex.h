// Annotated mutex wrappers: the capability types clang's -Wthread-safety
// analysis reasons about.
//
// libstdc++'s std::mutex / std::shared_mutex carry no capability
// attributes, so a member can be LT_GUARDED_BY a lock only if the lock's
// type is annotated. These wrappers are that type: zero-overhead
// forwarding to the std primitive, plus
//
//   * the capability attributes (LT_CAPABILITY / LT_ACQUIRE / ...), and
//   * an optional lock rank wired into the paranoid-mode runtime
//     hierarchy assertion (common/lock_rank.h). Ranked construction is
//     `Mutex(kLockRankAlloc, "LockManager::alloc_mu_")`; the name must
//     match the canonical spelling in common/lock_rank_table.h so the
//     runtime checker, locklint's graph, and the docs stay in sync.
//
// Scoped guards (MutexLock / ReaderLock / WriterLock) replace
// std::lock_guard / std::shared_lock on these types; the profiled
// variants on the lock hot path live in telemetry/lock_profiler.h and
// carry the same annotations.
#ifndef LOCKTUNE_COMMON_MUTEX_H_
#define LOCKTUNE_COMMON_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace locktune {

class LT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(int rank, const char* name) : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LT_ACQUIRE() {
    mu_.lock();
    LockRankOnAcquire(rank_, name_);
  }
  void Unlock() LT_RELEASE() {
    LockRankOnRelease(rank_);
    mu_.unlock();
  }
  bool TryLock() LT_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    LockRankOnAcquire(rank_, name_);
    return true;
  }

 private:
  std::mutex mu_;
  int rank_ = kLockRankUnranked;
  const char* name_ = "Mutex";
};

class LT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(int rank, const char* name) : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() LT_ACQUIRE() {
    mu_.lock();
    LockRankOnAcquire(rank_, name_);
  }
  void Unlock() LT_RELEASE() {
    LockRankOnRelease(rank_);
    mu_.unlock();
  }
  bool TryLock() LT_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    LockRankOnAcquire(rank_, name_);
    return true;
  }
  // Shared holders participate in the rank order too: the fast path
  // holds this shared while taking shard latches underneath.
  void LockShared() LT_ACQUIRE_SHARED() {
    mu_.lock_shared();
    LockRankOnAcquire(rank_, name_);
  }
  void UnlockShared() LT_RELEASE_SHARED() {
    LockRankOnRelease(rank_);
    mu_.unlock_shared();
  }
  bool TryLockShared() LT_TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    LockRankOnAcquire(rank_, name_);
    return true;
  }

 private:
  std::shared_mutex mu_;
  int rank_ = kLockRankUnranked;
  const char* name_ = "SharedMutex";
};

class LT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LT_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() LT_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Shared (reader) hold on a SharedMutex.
class LT_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) LT_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() LT_RELEASE_GENERIC() { mu_.UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Exclusive (writer) hold on a SharedMutex.
class LT_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) LT_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterLock() LT_RELEASE() { mu_.Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace locktune

#endif  // LOCKTUNE_COMMON_MUTEX_H_
