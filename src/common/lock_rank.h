// Paranoid-mode runtime lock-rank assertion.
//
// The dynamic third leg of the concurrency-discipline tripod (clang
// -Wthread-safety annotations, locklint LL011, and this): every ranked
// lock acquisition is checked against a per-thread stack of held ranks,
// seeded from the same table (src/common/lock_rank_table.h) locklint
// builds its lock-order graph from. A thread may only acquire a lock
// whose rank is strictly greater than every rank it already holds;
// violating that aborts with both lock names, the same way a
// LOCKTUNE_CHECK failure does. This catches out-of-order acquisitions
// that flow through callbacks or function pointers the static passes
// cannot see.
//
// Cost model: the checks are dead weight unless paranoid mode is on
// (LOCKTUNE_PARANOID env / build flag / SetParanoidForTesting — see
// common/paranoid.h). Disabled, an acquisition pays one predictable
// branch; never benchmark with it enabled (docs/PERFORMANCE.md).
#ifndef LOCKTUNE_COMMON_LOCK_RANK_H_
#define LOCKTUNE_COMMON_LOCK_RANK_H_

#include "common/lock_rank_table.h"
#include "common/paranoid.h"

namespace locktune {

// Aborts (after running the CHECK-failure hooks, so the flight recorder
// dumps) if the calling thread already holds a lock of rank >= `rank`.
// Otherwise pushes `rank` onto the thread's held stack. `name` is only
// used in the failure message. No-op for kLockRankUnranked.
void LockRankOnAcquireSlow(int rank, const char* name);

// Pops the most recent occurrence of `rank` from the thread's held
// stack. Tolerates non-LIFO release orders and enable-flips mid-hold
// (the pop simply misses). No-op for kLockRankUnranked.
void LockRankOnReleaseSlow(int rank);

inline void LockRankOnAcquire(int rank, const char* name) {
  if (rank != kLockRankUnranked && ParanoidEnabled()) {
    LockRankOnAcquireSlow(rank, name);
  }
}

inline void LockRankOnRelease(int rank) {
  if (rank != kLockRankUnranked && ParanoidEnabled()) {
    LockRankOnReleaseSlow(rank);
  }
}

}  // namespace locktune

#endif  // LOCKTUNE_COMMON_LOCK_RANK_H_
