// Clang -Wthread-safety capability annotations, LT_-prefixed.
//
// These macros expand to clang's thread-safety attributes when the
// compiler supports them and to nothing everywhere else (gcc builds are
// unaffected). They let the compiler prove, per translation unit, that
//
//   * a member declared LT_GUARDED_BY(mu_) is only touched while mu_ is
//     held (exclusively for writes, at least shared for reads);
//   * a function declared LT_REQUIRES(mu_) is only called with mu_ held,
//     and one declared LT_EXCLUDES(mu_) is never called with it held
//     (re-entrancy guard);
//   * scoped guards (LT_SCOPED_CAPABILITY types) release everything they
//     acquire.
//
// The annotated capability types live in src/common/mutex.h (clang's
// analysis does not know libstdc++'s std::mutex, so guarded members must
// hang off locktune::Mutex / locktune::SharedMutex / OptLatch instead).
// The whole-repo locking discipline — which lock may be taken under
// which — is documented in src/common/lock_rank_table.h and checked three
// ways: by these annotations under clang, by tools/locklint rule LL011
// statically, and by the paranoid-mode runtime rank assertion
// (src/common/lock_rank.h). docs/STATIC_ANALYSIS.md has the conventions.
#ifndef LOCKTUNE_COMMON_THREAD_ANNOTATIONS_H_
#define LOCKTUNE_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define LT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LT_THREAD_ANNOTATION(x)  // no-op off clang
#endif

// On a class: instances are capabilities (lockable things).
#define LT_CAPABILITY(x) LT_THREAD_ANNOTATION(capability(x))

// On a class: RAII object that acquires a capability in its constructor
// and releases it in its destructor.
#define LT_SCOPED_CAPABILITY LT_THREAD_ANNOTATION(scoped_lockable)

// On a data member: only accessible with the given capability held.
#define LT_GUARDED_BY(x) LT_THREAD_ANNOTATION(guarded_by(x))

// On a pointer member: the pointed-to data (not the pointer itself) is
// protected by the capability.
#define LT_PT_GUARDED_BY(x) LT_THREAD_ANNOTATION(pt_guarded_by(x))

// On a function: callers must hold the capability (exclusively / at
// least shared). Exclusive satisfies shared.
#define LT_REQUIRES(...) LT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define LT_REQUIRES_SHARED(...) \
  LT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// On a function: acquires / releases the capability itself.
#define LT_ACQUIRE(...) LT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LT_ACQUIRE_SHARED(...) \
  LT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define LT_RELEASE(...) LT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define LT_RELEASE_SHARED(...) \
  LT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define LT_RELEASE_GENERIC(...) \
  LT_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

// On a bool-returning function: acquires the capability iff the return
// value equals the first argument.
#define LT_TRY_ACQUIRE(...) \
  LT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define LT_TRY_ACQUIRE_SHARED(...) \
  LT_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// On a function: callers must NOT hold the capability (deadlock /
// re-entrancy guard, e.g. MetricsRegistry callbacks must not re-enter
// the registry).
#define LT_EXCLUDES(...) LT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// On a function: returns a reference to the capability guarding the
// object (lets ShardLatch(h)-style accessors participate in analysis).
#define LT_RETURN_CAPABILITY(x) LT_THREAD_ANNOTATION(lock_returned(x))

// On a function: opt out of analysis. Reserved for code that is
// correct for reasons the analysis cannot represent — each use carries a
// comment saying which reason (see docs/STATIC_ANALYSIS.md §2).
#define LT_NO_THREAD_SAFETY_ANALYSIS \
  LT_THREAD_ANNOTATION(no_thread_safety_analysis)

// On a declaration: assert the capability is held without acquiring it
// (trusted entry points from annotated-blind code).
#define LT_ASSERT_CAPABILITY(x) LT_THREAD_ANNOTATION(assert_capability(x))
#define LT_ASSERT_SHARED_CAPABILITY(x) \
  LT_THREAD_ANNOTATION(assert_shared_capability(x))

#endif  // LOCKTUNE_COMMON_THREAD_ANNOTATIONS_H_
