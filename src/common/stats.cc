#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace locktune {

void SummaryStats::Add(double x) {
  ++count_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double SummaryStats::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  LOCKTUNE_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Add(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<size_t>(it - bounds_.begin())] += 1;
  ++total_;
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const int64_t next = cumulative + counts_[i];
    if (static_cast<double>(next) >= target && counts_[i] > 0) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i] : lo * 2.0 + 1.0;
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(counts_[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

}  // namespace locktune
