// Minimal leveled logging.
//
// The library is quiet by default (kWarning); scenario drivers can raise the
// level to trace tuning decisions. Logging writes to stderr so bench series
// output on stdout stays machine-readable.
#ifndef LOCKTUNE_COMMON_LOGGING_H_
#define LOCKTUNE_COMMON_LOGGING_H_

#include <sstream>
#include <string_view>

namespace locktune {

class SimClock;

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
};

// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Optional process-wide virtual clock. When installed (non-null), every log
// line is prefixed with the current virtual time so stderr logs correlate
// with trace records and sampled series. The clock is borrowed; uninstall
// (pass nullptr) before it is destroyed.
void SetLogClock(const SimClock* clock);
const SimClock* GetLogClock();

namespace internal_logging {

// Renders the line prefix, e.g. "[t=12.300s I logging.cc:42] " (the time
// field appears only when a log clock is installed).
std::string LogPrefix(LogLevel level, const char* file, int line);

// Stream collector that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Null sink used when the level is disabled; swallows the stream cheaply.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define LOCKTUNE_LOG(level)                                          \
  if (::locktune::LogLevel::level < ::locktune::GetLogLevel()) {     \
  } else                                                             \
    ::locktune::internal_logging::LogMessage(                        \
        ::locktune::LogLevel::level, __FILE__, __LINE__)             \
        .stream()

}  // namespace locktune

#endif  // LOCKTUNE_COMMON_LOGGING_H_
