#include "common/lock_rank.h"

#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace locktune {

namespace {

// Deepest legal nesting today is four (MetricsRegistry → manager →
// shard/apps → alloc → leaf); 16 leaves headroom for future levels and
// for shared holds stacked across re-entrant telemetry.
constexpr int kMaxHeldRanks = 16;

struct HeldStack {
  int rank[kMaxHeldRanks];
  const char* name[kMaxHeldRanks];
  int depth = 0;
};

thread_local HeldStack tls_held;

}  // namespace

void LockRankOnAcquireSlow(int rank, const char* name) {
  HeldStack& held = tls_held;
  for (int i = 0; i < held.depth && i < kMaxHeldRanks; ++i) {
    if (held.rank[i] >= rank) {
      std::fprintf(stderr,
                   "locktune: CHECK failed: lock-rank order violation: "
                   "acquiring %s (rank %d) while holding %s (rank %d) "
                   "(%s:%d)\n",
                   name, rank, held.name[i], held.rank[i], __FILE__, __LINE__);
      InvokeCheckFailureHooks();
      std::abort();
    }
  }
  if (held.depth < kMaxHeldRanks) {
    held.rank[held.depth] = rank;
    held.name[held.depth] = name;
  }
  // Depth beyond the fixed stack is itself a hierarchy bug: the table
  // only permits a handful of nesting levels.
  LOCKTUNE_CHECK(held.depth < kMaxHeldRanks &&
                 "lock-rank stack overflow: nesting deeper than the "
                 "documented hierarchy allows");
  ++held.depth;
}

void LockRankOnReleaseSlow(int rank) {
  HeldStack& held = tls_held;
  // Releases are usually LIFO (RAII guards), but the fast path drops the
  // shard latch and the outer shared hold in explicit non-nested scopes,
  // and paranoid mode can be flipped on while locks are held — so scan
  // for the most recent matching rank and tolerate a miss.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.rank[i] == rank) {
      for (int j = i; j + 1 < held.depth; ++j) {
        held.rank[j] = held.rank[j + 1];
        held.name[j] = held.name[j + 1];
      }
      --held.depth;
      return;
    }
  }
}

}  // namespace locktune
