# Empty dependencies file for oracle_driver_test.
# This may be replaced when dependencies are built.
