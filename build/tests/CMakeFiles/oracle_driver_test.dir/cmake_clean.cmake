file(REMOVE_RECURSE
  "CMakeFiles/oracle_driver_test.dir/baseline/oracle_driver_test.cc.o"
  "CMakeFiles/oracle_driver_test.dir/baseline/oracle_driver_test.cc.o.d"
  "oracle_driver_test"
  "oracle_driver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
