file(REMOVE_RECURSE
  "CMakeFiles/oracle_itl_test.dir/baseline/oracle_itl_test.cc.o"
  "CMakeFiles/oracle_itl_test.dir/baseline/oracle_itl_test.cc.o.d"
  "oracle_itl_test"
  "oracle_itl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_itl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
