file(REMOVE_RECURSE
  "CMakeFiles/lock_timeout_test.dir/lock/lock_timeout_test.cc.o"
  "CMakeFiles/lock_timeout_test.dir/lock/lock_timeout_test.cc.o.d"
  "lock_timeout_test"
  "lock_timeout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_timeout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
