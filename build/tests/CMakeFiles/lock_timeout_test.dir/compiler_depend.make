# Empty compiler generated dependencies file for lock_timeout_test.
# This may be replaced when dependencies are built.
