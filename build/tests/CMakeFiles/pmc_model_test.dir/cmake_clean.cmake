file(REMOVE_RECURSE
  "CMakeFiles/pmc_model_test.dir/core/pmc_model_test.cc.o"
  "CMakeFiles/pmc_model_test.dir/core/pmc_model_test.cc.o.d"
  "pmc_model_test"
  "pmc_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmc_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
