# Empty compiler generated dependencies file for pmc_model_test.
# This may be replaced when dependencies are built.
