file(REMOVE_RECURSE
  "CMakeFiles/stmm_controller_test.dir/core/stmm_controller_test.cc.o"
  "CMakeFiles/stmm_controller_test.dir/core/stmm_controller_test.cc.o.d"
  "stmm_controller_test"
  "stmm_controller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stmm_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
