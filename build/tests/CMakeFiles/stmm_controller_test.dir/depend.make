# Empty dependencies file for stmm_controller_test.
# This may be replaced when dependencies are built.
