file(REMOVE_RECURSE
  "CMakeFiles/escalation_policy_test.dir/lock/escalation_policy_test.cc.o"
  "CMakeFiles/escalation_policy_test.dir/lock/escalation_policy_test.cc.o.d"
  "escalation_policy_test"
  "escalation_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escalation_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
