# Empty dependencies file for escalation_policy_test.
# This may be replaced when dependencies are built.
