file(REMOVE_RECURSE
  "CMakeFiles/lock_semantics_test.dir/lock/lock_semantics_test.cc.o"
  "CMakeFiles/lock_semantics_test.dir/lock/lock_semantics_test.cc.o.d"
  "lock_semantics_test"
  "lock_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
