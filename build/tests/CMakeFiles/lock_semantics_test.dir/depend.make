# Empty dependencies file for lock_semantics_test.
# This may be replaced when dependencies are built.
