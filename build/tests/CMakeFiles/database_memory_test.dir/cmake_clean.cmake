file(REMOVE_RECURSE
  "CMakeFiles/database_memory_test.dir/memory/database_memory_test.cc.o"
  "CMakeFiles/database_memory_test.dir/memory/database_memory_test.cc.o.d"
  "database_memory_test"
  "database_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
