# Empty compiler generated dependencies file for database_memory_test.
# This may be replaced when dependencies are built.
