file(REMOVE_RECURSE
  "CMakeFiles/db_snapshot_test.dir/engine/db_snapshot_test.cc.o"
  "CMakeFiles/db_snapshot_test.dir/engine/db_snapshot_test.cc.o.d"
  "db_snapshot_test"
  "db_snapshot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
