# Empty dependencies file for db_snapshot_test.
# This may be replaced when dependencies are built.
