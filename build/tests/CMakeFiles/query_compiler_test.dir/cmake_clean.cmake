file(REMOVE_RECURSE
  "CMakeFiles/query_compiler_test.dir/engine/query_compiler_test.cc.o"
  "CMakeFiles/query_compiler_test.dir/engine/query_compiler_test.cc.o.d"
  "query_compiler_test"
  "query_compiler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_compiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
