# Empty compiler generated dependencies file for query_compiler_test.
# This may be replaced when dependencies are built.
