file(REMOVE_RECURSE
  "CMakeFiles/scenario_config_test.dir/workload/scenario_config_test.cc.o"
  "CMakeFiles/scenario_config_test.dir/workload/scenario_config_test.cc.o.d"
  "scenario_config_test"
  "scenario_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
