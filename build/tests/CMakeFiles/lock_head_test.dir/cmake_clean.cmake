file(REMOVE_RECURSE
  "CMakeFiles/lock_head_test.dir/lock/lock_head_test.cc.o"
  "CMakeFiles/lock_head_test.dir/lock/lock_head_test.cc.o.d"
  "lock_head_test"
  "lock_head_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_head_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
