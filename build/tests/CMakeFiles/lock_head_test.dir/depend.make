# Empty dependencies file for lock_head_test.
# This may be replaced when dependencies are built.
