# Empty compiler generated dependencies file for lock_memory_tuner_test.
# This may be replaced when dependencies are built.
