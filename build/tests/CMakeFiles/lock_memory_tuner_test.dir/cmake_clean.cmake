file(REMOVE_RECURSE
  "CMakeFiles/lock_memory_tuner_test.dir/core/lock_memory_tuner_test.cc.o"
  "CMakeFiles/lock_memory_tuner_test.dir/core/lock_memory_tuner_test.cc.o.d"
  "lock_memory_tuner_test"
  "lock_memory_tuner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_memory_tuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
