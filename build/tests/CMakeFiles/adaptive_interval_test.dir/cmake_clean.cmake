file(REMOVE_RECURSE
  "CMakeFiles/adaptive_interval_test.dir/core/adaptive_interval_test.cc.o"
  "CMakeFiles/adaptive_interval_test.dir/core/adaptive_interval_test.cc.o.d"
  "adaptive_interval_test"
  "adaptive_interval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_interval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
