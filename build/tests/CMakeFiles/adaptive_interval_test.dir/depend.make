# Empty dependencies file for adaptive_interval_test.
# This may be replaced when dependencies are built.
