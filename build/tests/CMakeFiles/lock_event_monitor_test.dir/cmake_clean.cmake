file(REMOVE_RECURSE
  "CMakeFiles/lock_event_monitor_test.dir/lock/lock_event_monitor_test.cc.o"
  "CMakeFiles/lock_event_monitor_test.dir/lock/lock_event_monitor_test.cc.o.d"
  "lock_event_monitor_test"
  "lock_event_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_event_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
