# Empty dependencies file for lock_event_monitor_test.
# This may be replaced when dependencies are built.
