file(REMOVE_RECURSE
  "CMakeFiles/lock_mode_test.dir/lock/lock_mode_test.cc.o"
  "CMakeFiles/lock_mode_test.dir/lock/lock_mode_test.cc.o.d"
  "lock_mode_test"
  "lock_mode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
