# Empty dependencies file for tuner_convergence_test.
# This may be replaced when dependencies are built.
