file(REMOVE_RECURSE
  "CMakeFiles/tuner_convergence_test.dir/core/tuner_convergence_test.cc.o"
  "CMakeFiles/tuner_convergence_test.dir/core/tuner_convergence_test.cc.o.d"
  "tuner_convergence_test"
  "tuner_convergence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuner_convergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
