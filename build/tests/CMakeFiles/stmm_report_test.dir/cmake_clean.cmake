file(REMOVE_RECURSE
  "CMakeFiles/stmm_report_test.dir/core/stmm_report_test.cc.o"
  "CMakeFiles/stmm_report_test.dir/core/stmm_report_test.cc.o.d"
  "stmm_report_test"
  "stmm_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stmm_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
