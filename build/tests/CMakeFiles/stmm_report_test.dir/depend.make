# Empty dependencies file for stmm_report_test.
# This may be replaced when dependencies are built.
