file(REMOVE_RECURSE
  "CMakeFiles/lock_block_test.dir/memory/lock_block_test.cc.o"
  "CMakeFiles/lock_block_test.dir/memory/lock_block_test.cc.o.d"
  "lock_block_test"
  "lock_block_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
