# Empty dependencies file for block_list_test.
# This may be replaced when dependencies are built.
