file(REMOVE_RECURSE
  "CMakeFiles/block_list_test.dir/memory/block_list_test.cc.o"
  "CMakeFiles/block_list_test.dir/memory/block_list_test.cc.o.d"
  "block_list_test"
  "block_list_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
