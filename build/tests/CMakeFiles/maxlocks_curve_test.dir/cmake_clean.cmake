file(REMOVE_RECURSE
  "CMakeFiles/maxlocks_curve_test.dir/lock/maxlocks_curve_test.cc.o"
  "CMakeFiles/maxlocks_curve_test.dir/lock/maxlocks_curve_test.cc.o.d"
  "maxlocks_curve_test"
  "maxlocks_curve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxlocks_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
