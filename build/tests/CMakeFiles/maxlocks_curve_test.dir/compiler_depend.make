# Empty compiler generated dependencies file for maxlocks_curve_test.
# This may be replaced when dependencies are built.
