
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/invariants_test.cc" "tests/CMakeFiles/invariants_test.dir/integration/invariants_test.cc.o" "gcc" "tests/CMakeFiles/invariants_test.dir/integration/invariants_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/locktune_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/locktune_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/locktune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/locktune_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/locktune_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/locktune_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/locktune_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
