file(REMOVE_RECURSE
  "liblocktune_memory.a"
)
