# Empty compiler generated dependencies file for locktune_memory.
# This may be replaced when dependencies are built.
