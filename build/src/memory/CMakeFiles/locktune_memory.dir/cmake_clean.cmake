file(REMOVE_RECURSE
  "CMakeFiles/locktune_memory.dir/block_list.cc.o"
  "CMakeFiles/locktune_memory.dir/block_list.cc.o.d"
  "CMakeFiles/locktune_memory.dir/database_memory.cc.o"
  "CMakeFiles/locktune_memory.dir/database_memory.cc.o.d"
  "CMakeFiles/locktune_memory.dir/lock_block.cc.o"
  "CMakeFiles/locktune_memory.dir/lock_block.cc.o.d"
  "liblocktune_memory.a"
  "liblocktune_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locktune_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
