file(REMOVE_RECURSE
  "CMakeFiles/locktune_common.dir/logging.cc.o"
  "CMakeFiles/locktune_common.dir/logging.cc.o.d"
  "CMakeFiles/locktune_common.dir/random.cc.o"
  "CMakeFiles/locktune_common.dir/random.cc.o.d"
  "CMakeFiles/locktune_common.dir/stats.cc.o"
  "CMakeFiles/locktune_common.dir/stats.cc.o.d"
  "CMakeFiles/locktune_common.dir/status.cc.o"
  "CMakeFiles/locktune_common.dir/status.cc.o.d"
  "CMakeFiles/locktune_common.dir/time_series.cc.o"
  "CMakeFiles/locktune_common.dir/time_series.cc.o.d"
  "liblocktune_common.a"
  "liblocktune_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locktune_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
