# Empty compiler generated dependencies file for locktune_common.
# This may be replaced when dependencies are built.
