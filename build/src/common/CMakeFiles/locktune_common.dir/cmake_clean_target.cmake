file(REMOVE_RECURSE
  "liblocktune_common.a"
)
