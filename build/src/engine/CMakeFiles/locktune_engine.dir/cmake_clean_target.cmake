file(REMOVE_RECURSE
  "liblocktune_engine.a"
)
