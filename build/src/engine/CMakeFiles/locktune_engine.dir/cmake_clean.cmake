file(REMOVE_RECURSE
  "CMakeFiles/locktune_engine.dir/catalog.cc.o"
  "CMakeFiles/locktune_engine.dir/catalog.cc.o.d"
  "CMakeFiles/locktune_engine.dir/database.cc.o"
  "CMakeFiles/locktune_engine.dir/database.cc.o.d"
  "CMakeFiles/locktune_engine.dir/db_snapshot.cc.o"
  "CMakeFiles/locktune_engine.dir/db_snapshot.cc.o.d"
  "CMakeFiles/locktune_engine.dir/query_compiler.cc.o"
  "CMakeFiles/locktune_engine.dir/query_compiler.cc.o.d"
  "liblocktune_engine.a"
  "liblocktune_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locktune_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
