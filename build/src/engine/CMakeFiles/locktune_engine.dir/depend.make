# Empty dependencies file for locktune_engine.
# This may be replaced when dependencies are built.
