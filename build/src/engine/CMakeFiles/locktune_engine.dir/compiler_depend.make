# Empty compiler generated dependencies file for locktune_engine.
# This may be replaced when dependencies are built.
