
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/catalog.cc" "src/engine/CMakeFiles/locktune_engine.dir/catalog.cc.o" "gcc" "src/engine/CMakeFiles/locktune_engine.dir/catalog.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/locktune_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/locktune_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/db_snapshot.cc" "src/engine/CMakeFiles/locktune_engine.dir/db_snapshot.cc.o" "gcc" "src/engine/CMakeFiles/locktune_engine.dir/db_snapshot.cc.o.d"
  "/root/repo/src/engine/query_compiler.cc" "src/engine/CMakeFiles/locktune_engine.dir/query_compiler.cc.o" "gcc" "src/engine/CMakeFiles/locktune_engine.dir/query_compiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/locktune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/locktune_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/locktune_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/locktune_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
