file(REMOVE_RECURSE
  "liblocktune_lock.a"
)
