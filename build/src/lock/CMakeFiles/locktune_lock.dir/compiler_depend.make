# Empty compiler generated dependencies file for locktune_lock.
# This may be replaced when dependencies are built.
