file(REMOVE_RECURSE
  "CMakeFiles/locktune_lock.dir/escalation_policy.cc.o"
  "CMakeFiles/locktune_lock.dir/escalation_policy.cc.o.d"
  "CMakeFiles/locktune_lock.dir/lock_event_monitor.cc.o"
  "CMakeFiles/locktune_lock.dir/lock_event_monitor.cc.o.d"
  "CMakeFiles/locktune_lock.dir/lock_head.cc.o"
  "CMakeFiles/locktune_lock.dir/lock_head.cc.o.d"
  "CMakeFiles/locktune_lock.dir/lock_manager.cc.o"
  "CMakeFiles/locktune_lock.dir/lock_manager.cc.o.d"
  "CMakeFiles/locktune_lock.dir/lock_mode.cc.o"
  "CMakeFiles/locktune_lock.dir/lock_mode.cc.o.d"
  "CMakeFiles/locktune_lock.dir/maxlocks_curve.cc.o"
  "CMakeFiles/locktune_lock.dir/maxlocks_curve.cc.o.d"
  "CMakeFiles/locktune_lock.dir/resource.cc.o"
  "CMakeFiles/locktune_lock.dir/resource.cc.o.d"
  "liblocktune_lock.a"
  "liblocktune_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locktune_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
