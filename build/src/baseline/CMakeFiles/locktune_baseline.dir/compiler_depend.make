# Empty compiler generated dependencies file for locktune_baseline.
# This may be replaced when dependencies are built.
