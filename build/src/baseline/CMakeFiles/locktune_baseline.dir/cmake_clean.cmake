file(REMOVE_RECURSE
  "CMakeFiles/locktune_baseline.dir/oracle_driver.cc.o"
  "CMakeFiles/locktune_baseline.dir/oracle_driver.cc.o.d"
  "CMakeFiles/locktune_baseline.dir/oracle_itl.cc.o"
  "CMakeFiles/locktune_baseline.dir/oracle_itl.cc.o.d"
  "liblocktune_baseline.a"
  "liblocktune_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locktune_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
