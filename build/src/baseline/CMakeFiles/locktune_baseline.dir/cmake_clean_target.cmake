file(REMOVE_RECURSE
  "liblocktune_baseline.a"
)
