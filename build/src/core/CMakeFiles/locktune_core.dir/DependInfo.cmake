
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/locktune_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/locktune_core.dir/config.cc.o.d"
  "/root/repo/src/core/lock_memory_tuner.cc" "src/core/CMakeFiles/locktune_core.dir/lock_memory_tuner.cc.o" "gcc" "src/core/CMakeFiles/locktune_core.dir/lock_memory_tuner.cc.o.d"
  "/root/repo/src/core/pmc_model.cc" "src/core/CMakeFiles/locktune_core.dir/pmc_model.cc.o" "gcc" "src/core/CMakeFiles/locktune_core.dir/pmc_model.cc.o.d"
  "/root/repo/src/core/stmm_controller.cc" "src/core/CMakeFiles/locktune_core.dir/stmm_controller.cc.o" "gcc" "src/core/CMakeFiles/locktune_core.dir/stmm_controller.cc.o.d"
  "/root/repo/src/core/stmm_report.cc" "src/core/CMakeFiles/locktune_core.dir/stmm_report.cc.o" "gcc" "src/core/CMakeFiles/locktune_core.dir/stmm_report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/locktune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/locktune_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/locktune_lock.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
