# Empty compiler generated dependencies file for locktune_core.
# This may be replaced when dependencies are built.
