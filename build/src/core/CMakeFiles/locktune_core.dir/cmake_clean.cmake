file(REMOVE_RECURSE
  "CMakeFiles/locktune_core.dir/config.cc.o"
  "CMakeFiles/locktune_core.dir/config.cc.o.d"
  "CMakeFiles/locktune_core.dir/lock_memory_tuner.cc.o"
  "CMakeFiles/locktune_core.dir/lock_memory_tuner.cc.o.d"
  "CMakeFiles/locktune_core.dir/pmc_model.cc.o"
  "CMakeFiles/locktune_core.dir/pmc_model.cc.o.d"
  "CMakeFiles/locktune_core.dir/stmm_controller.cc.o"
  "CMakeFiles/locktune_core.dir/stmm_controller.cc.o.d"
  "CMakeFiles/locktune_core.dir/stmm_report.cc.o"
  "CMakeFiles/locktune_core.dir/stmm_report.cc.o.d"
  "liblocktune_core.a"
  "liblocktune_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locktune_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
