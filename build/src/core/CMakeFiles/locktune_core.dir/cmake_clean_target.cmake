file(REMOVE_RECURSE
  "liblocktune_core.a"
)
