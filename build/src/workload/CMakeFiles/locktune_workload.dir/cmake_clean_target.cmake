file(REMOVE_RECURSE
  "liblocktune_workload.a"
)
