# Empty dependencies file for locktune_workload.
# This may be replaced when dependencies are built.
