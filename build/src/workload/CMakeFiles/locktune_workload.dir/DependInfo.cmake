
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/application.cc" "src/workload/CMakeFiles/locktune_workload.dir/application.cc.o" "gcc" "src/workload/CMakeFiles/locktune_workload.dir/application.cc.o.d"
  "/root/repo/src/workload/batch_workload.cc" "src/workload/CMakeFiles/locktune_workload.dir/batch_workload.cc.o" "gcc" "src/workload/CMakeFiles/locktune_workload.dir/batch_workload.cc.o.d"
  "/root/repo/src/workload/dss_workload.cc" "src/workload/CMakeFiles/locktune_workload.dir/dss_workload.cc.o" "gcc" "src/workload/CMakeFiles/locktune_workload.dir/dss_workload.cc.o.d"
  "/root/repo/src/workload/oltp_workload.cc" "src/workload/CMakeFiles/locktune_workload.dir/oltp_workload.cc.o" "gcc" "src/workload/CMakeFiles/locktune_workload.dir/oltp_workload.cc.o.d"
  "/root/repo/src/workload/scenario.cc" "src/workload/CMakeFiles/locktune_workload.dir/scenario.cc.o" "gcc" "src/workload/CMakeFiles/locktune_workload.dir/scenario.cc.o.d"
  "/root/repo/src/workload/scenario_config.cc" "src/workload/CMakeFiles/locktune_workload.dir/scenario_config.cc.o" "gcc" "src/workload/CMakeFiles/locktune_workload.dir/scenario_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/locktune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/locktune_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/locktune_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/locktune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/locktune_memory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
