file(REMOVE_RECURSE
  "CMakeFiles/locktune_workload.dir/application.cc.o"
  "CMakeFiles/locktune_workload.dir/application.cc.o.d"
  "CMakeFiles/locktune_workload.dir/batch_workload.cc.o"
  "CMakeFiles/locktune_workload.dir/batch_workload.cc.o.d"
  "CMakeFiles/locktune_workload.dir/dss_workload.cc.o"
  "CMakeFiles/locktune_workload.dir/dss_workload.cc.o.d"
  "CMakeFiles/locktune_workload.dir/oltp_workload.cc.o"
  "CMakeFiles/locktune_workload.dir/oltp_workload.cc.o.d"
  "CMakeFiles/locktune_workload.dir/scenario.cc.o"
  "CMakeFiles/locktune_workload.dir/scenario.cc.o.d"
  "CMakeFiles/locktune_workload.dir/scenario_config.cc.o"
  "CMakeFiles/locktune_workload.dir/scenario_config.cc.o.d"
  "liblocktune_workload.a"
  "liblocktune_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locktune_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
