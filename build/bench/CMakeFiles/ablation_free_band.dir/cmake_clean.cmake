file(REMOVE_RECURSE
  "CMakeFiles/ablation_free_band.dir/ablation_free_band.cc.o"
  "CMakeFiles/ablation_free_band.dir/ablation_free_band.cc.o.d"
  "ablation_free_band"
  "ablation_free_band.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_free_band.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
