# Empty compiler generated dependencies file for ablation_overflow_cap.
# This may be replaced when dependencies are built.
