file(REMOVE_RECURSE
  "CMakeFiles/ablation_overflow_cap.dir/ablation_overflow_cap.cc.o"
  "CMakeFiles/ablation_overflow_cap.dir/ablation_overflow_cap.cc.o.d"
  "ablation_overflow_cap"
  "ablation_overflow_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overflow_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
