# Empty dependencies file for fig10_surge.
# This may be replaced when dependencies are built.
