file(REMOVE_RECURSE
  "CMakeFiles/fig10_surge.dir/fig10_surge.cc.o"
  "CMakeFiles/fig10_surge.dir/fig10_surge.cc.o.d"
  "fig10_surge"
  "fig10_surge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_surge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
