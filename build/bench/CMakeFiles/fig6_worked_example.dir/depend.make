# Empty dependencies file for fig6_worked_example.
# This may be replaced when dependencies are built.
