file(REMOVE_RECURSE
  "CMakeFiles/ablation_delta_reduce.dir/ablation_delta_reduce.cc.o"
  "CMakeFiles/ablation_delta_reduce.dir/ablation_delta_reduce.cc.o.d"
  "ablation_delta_reduce"
  "ablation_delta_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delta_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
