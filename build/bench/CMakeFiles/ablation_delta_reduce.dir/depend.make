# Empty dependencies file for ablation_delta_reduce.
# This may be replaced when dependencies are built.
