file(REMOVE_RECURSE
  "CMakeFiles/ablation_tuning_interval.dir/ablation_tuning_interval.cc.o"
  "CMakeFiles/ablation_tuning_interval.dir/ablation_tuning_interval.cc.o.d"
  "ablation_tuning_interval"
  "ablation_tuning_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tuning_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
