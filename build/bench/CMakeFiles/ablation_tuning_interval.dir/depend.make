# Empty dependencies file for ablation_tuning_interval.
# This may be replaced when dependencies are built.
