# Empty compiler generated dependencies file for fig3_4_lock_structures.
# This may be replaced when dependencies are built.
