file(REMOVE_RECURSE
  "CMakeFiles/fig3_4_lock_structures.dir/fig3_4_lock_structures.cc.o"
  "CMakeFiles/fig3_4_lock_structures.dir/fig3_4_lock_structures.cc.o.d"
  "fig3_4_lock_structures"
  "fig3_4_lock_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_4_lock_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
