file(REMOVE_RECURSE
  "CMakeFiles/micro_lock_manager.dir/micro_lock_manager.cc.o"
  "CMakeFiles/micro_lock_manager.dir/micro_lock_manager.cc.o.d"
  "micro_lock_manager"
  "micro_lock_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lock_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
