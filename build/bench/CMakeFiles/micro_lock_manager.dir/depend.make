# Empty dependencies file for micro_lock_manager.
# This may be replaced when dependencies are built.
