# Empty compiler generated dependencies file for fig9_ramp.
# This may be replaced when dependencies are built.
