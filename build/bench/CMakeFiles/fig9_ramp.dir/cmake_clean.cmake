file(REMOVE_RECURSE
  "CMakeFiles/fig9_ramp.dir/fig9_ramp.cc.o"
  "CMakeFiles/fig9_ramp.dir/fig9_ramp.cc.o.d"
  "fig9_ramp"
  "fig9_ramp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_ramp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
