file(REMOVE_RECURSE
  "liblocktune_bench_util.a"
)
