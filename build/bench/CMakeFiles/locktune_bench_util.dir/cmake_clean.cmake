file(REMOVE_RECURSE
  "CMakeFiles/locktune_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/locktune_bench_util.dir/bench_util.cc.o.d"
  "liblocktune_bench_util.a"
  "liblocktune_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locktune_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
