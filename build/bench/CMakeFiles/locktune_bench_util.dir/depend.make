# Empty dependencies file for locktune_bench_util.
# This may be replaced when dependencies are built.
