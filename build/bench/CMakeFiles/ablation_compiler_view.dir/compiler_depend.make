# Empty compiler generated dependencies file for ablation_compiler_view.
# This may be replaced when dependencies are built.
