file(REMOVE_RECURSE
  "CMakeFiles/ablation_compiler_view.dir/ablation_compiler_view.cc.o"
  "CMakeFiles/ablation_compiler_view.dir/ablation_compiler_view.cc.o.d"
  "ablation_compiler_view"
  "ablation_compiler_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compiler_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
