file(REMOVE_RECURSE
  "CMakeFiles/fig11_dss_injection.dir/fig11_dss_injection.cc.o"
  "CMakeFiles/fig11_dss_injection.dir/fig11_dss_injection.cc.o.d"
  "fig11_dss_injection"
  "fig11_dss_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_dss_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
