# Empty compiler generated dependencies file for ablation_selective_escalation.
# This may be replaced when dependencies are built.
