file(REMOVE_RECURSE
  "CMakeFiles/ablation_selective_escalation.dir/ablation_selective_escalation.cc.o"
  "CMakeFiles/ablation_selective_escalation.dir/ablation_selective_escalation.cc.o.d"
  "ablation_selective_escalation"
  "ablation_selective_escalation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selective_escalation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
