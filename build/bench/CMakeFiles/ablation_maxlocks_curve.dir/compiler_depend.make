# Empty compiler generated dependencies file for ablation_maxlocks_curve.
# This may be replaced when dependencies are built.
