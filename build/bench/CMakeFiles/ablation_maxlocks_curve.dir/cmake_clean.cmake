file(REMOVE_RECURSE
  "CMakeFiles/ablation_maxlocks_curve.dir/ablation_maxlocks_curve.cc.o"
  "CMakeFiles/ablation_maxlocks_curve.dir/ablation_maxlocks_curve.cc.o.d"
  "ablation_maxlocks_curve"
  "ablation_maxlocks_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_maxlocks_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
