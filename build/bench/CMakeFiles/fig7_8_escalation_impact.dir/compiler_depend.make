# Empty compiler generated dependencies file for fig7_8_escalation_impact.
# This may be replaced when dependencies are built.
