file(REMOVE_RECURSE
  "CMakeFiles/fig7_8_escalation_impact.dir/fig7_8_escalation_impact.cc.o"
  "CMakeFiles/fig7_8_escalation_impact.dir/fig7_8_escalation_impact.cc.o.d"
  "fig7_8_escalation_impact"
  "fig7_8_escalation_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_8_escalation_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
