# Empty compiler generated dependencies file for ablation_policy_comparison.
# This may be replaced when dependencies are built.
