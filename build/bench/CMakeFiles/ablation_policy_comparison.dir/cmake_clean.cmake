file(REMOVE_RECURSE
  "CMakeFiles/ablation_policy_comparison.dir/ablation_policy_comparison.cc.o"
  "CMakeFiles/ablation_policy_comparison.dir/ablation_policy_comparison.cc.o.d"
  "ablation_policy_comparison"
  "ablation_policy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_policy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
