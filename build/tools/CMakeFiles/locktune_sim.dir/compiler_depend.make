# Empty compiler generated dependencies file for locktune_sim.
# This may be replaced when dependencies are built.
