file(REMOVE_RECURSE
  "CMakeFiles/locktune_sim.dir/locktune_sim.cc.o"
  "CMakeFiles/locktune_sim.dir/locktune_sim.cc.o.d"
  "locktune_sim"
  "locktune_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locktune_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
