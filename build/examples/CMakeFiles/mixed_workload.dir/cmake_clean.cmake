file(REMOVE_RECURSE
  "CMakeFiles/mixed_workload.dir/mixed_workload.cpp.o"
  "CMakeFiles/mixed_workload.dir/mixed_workload.cpp.o.d"
  "mixed_workload"
  "mixed_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
