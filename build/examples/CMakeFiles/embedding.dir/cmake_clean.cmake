file(REMOVE_RECURSE
  "CMakeFiles/embedding.dir/embedding.cpp.o"
  "CMakeFiles/embedding.dir/embedding.cpp.o.d"
  "embedding"
  "embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
