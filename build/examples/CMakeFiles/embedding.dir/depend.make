# Empty dependencies file for embedding.
# This may be replaced when dependencies are built.
