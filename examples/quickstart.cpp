// Quickstart: open a self-tuning database, run an OLTP ramp, and watch lock
// memory adapt.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "engine/database.h"
#include "workload/oltp_workload.h"
#include "workload/scenario.h"

using namespace locktune;

int main() {
  // 1. Configure the database: 512 MB of shared memory, STMM lock tuning on,
  //    30 s tuning interval (all the paper's Table 1 defaults).
  DatabaseOptions options;
  options.params.database_memory = 512 * kMiB;
  options.mode = TuningMode::kSelfTuning;

  Result<std::unique_ptr<Database>> db = Database::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  Database& database = *db.value();

  // 2. An OLTP workload over the TPC-C style tables, ramping 1 → 40 clients.
  OltpWorkload oltp(database.catalog(), OltpOptions{});
  ClientTimeline timeline;
  timeline.workload = &oltp;
  timeline.steps = {{0, 1}, {30 * kSecond, 10}, {60 * kSecond, 40}};

  ScenarioOptions scenario;
  scenario.duration = 5 * kMinute;
  ScenarioRunner runner(&database, {timeline}, scenario);

  // 3. Run 5 minutes of virtual time (sub-second real time).
  runner.Run();

  // 4. Inspect what the tuner did.
  const LockManagerStats& stats = database.locks().stats();
  std::printf("commits:              %lld\n",
              static_cast<long long>(runner.total_commits()));
  std::printf("lock escalations:     %lld\n",
              static_cast<long long>(stats.escalations));
  std::printf("lock memory now:      %.2f MB (%.2f MB in use)\n",
              static_cast<double>(database.locks().allocated_bytes()) /
                  (1024.0 * 1024.0),
              static_cast<double>(database.locks().used_bytes()) /
                  (1024.0 * 1024.0));
  std::printf("configured (LMOC):    %.2f MB\n",
              static_cast<double>(database.stmm()->lmoc()) / (1024.0 * 1024.0));
  std::printf("maxlocks percent:     %.1f%%\n",
              database.locks().CurrentMaxlocksPercent());
  std::printf("tuning passes:        %zu\n",
              database.stmm()->history().size());

  std::printf("\nlock memory over time (sampled every 30 s):\n");
  const TimeSeries& alloc =
      runner.series().Get(ScenarioRunner::kLockAllocatedMb);
  for (size_t i = 0; i < alloc.size(); i += 30) {
    std::printf("  t=%4llds  %.2f MB\n",
                static_cast<long long>(alloc.points()[i].time_ms / 1000),
                alloc.points()[i].value);
  }
  return 0;
}
