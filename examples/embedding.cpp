// Embedding locktune's components directly — for users who want the lock
// manager and tuner without the scenario machinery: a custom escalation
// policy, a hand-driven LockManager, and a custom Workload plugged into an
// Application.
#include <cstdio>
#include <memory>

#include "engine/database.h"
#include "lock/lock_manager.h"
#include "workload/app_store.h"

using namespace locktune;

namespace {

// A custom policy: a hard per-application lock count, like a hosting
// provider quota. Anything beyond `limit` locks escalates.
class QuotaPolicy : public EscalationPolicy {
 public:
  explicit QuotaPolicy(int64_t limit) : limit_(limit) {}
  int64_t MaxStructuresPerApp(const LockMemoryState&) override {
    return limit_;
  }
  double CurrentPercent(const LockMemoryState& state) override {
    if (state.capacity_slots == 0) return 0.0;
    return 100.0 * static_cast<double>(limit_) /
           static_cast<double>(state.capacity_slots);
  }

 private:
  int64_t limit_;
};

// A custom workload: a batch job updating a contiguous key range — the
// "occasional batch processing of updates" §3.4 cites as a reason lock
// memory must be reclaimable.
class BatchUpdate : public Workload {
 public:
  TransactionProfile NextTransaction(Rng&) override {
    TransactionProfile p;
    p.total_locks = 5000;
    p.locks_per_tick = 500;
    p.think_time = 10 * kSecond;
    return p;
  }
  RowAccess NextAccess(Rng&) override {
    return {/*table=*/3, next_key_++, LockMode::kX};
  }

 private:
  int64_t next_key_ = 0;
};

}  // namespace

int main() {
  // --- 1. a stand-alone LockManager with the custom policy ---
  QuotaPolicy quota(/*limit=*/1000);
  LockManagerOptions lm_options;
  lm_options.initial_blocks = 8;  // 1 MB lock list
  lm_options.max_lock_memory = 16 * kMiB;
  lm_options.database_memory = 256 * kMiB;
  lm_options.policy = &quota;
  LockManager locks(std::move(lm_options));

  // Acquire row locks until the quota escalates us to a table lock.
  int64_t row = 0;
  LockResult result;
  do {
    result = locks.Lock(/*app=*/1, RowResource(7, row++), LockMode::kX);
  } while (result.outcome == LockOutcome::kGranted && !result.escalated);
  std::printf("quota policy escalated after %lld row locks; table mode=%s, "
              "structures now held=%lld\n",
              static_cast<long long>(row - 1),
              std::string(ModeName(locks.HeldMode(1, TableResource(7))))
                  .c_str(),
              static_cast<long long>(locks.HeldStructures(1)));
  locks.ReleaseAll(1);

  // --- 2. a custom workload driving the full self-tuning database ---
  DatabaseOptions options;
  options.params.database_memory = 256 * kMiB;
  std::unique_ptr<Database> db = Database::Open(options).value();
  db->set_connected_applications(1);

  BatchUpdate batch;
  AppStore store(db.get(), /*tick=*/100);
  const uint32_t app = store.Add(/*id=*/1, &batch, /*seed=*/1);
  store.Connect(app);
  for (int tick = 0; tick < 3000; ++tick) {  // 5 virtual minutes
    // The scheduler cycle ScenarioRunner runs each tick: wake parked
    // applications whose timers expired, tick the runnable ones, park
    // the ones that went idle.
    for (const uint32_t i : store.CollectRunnable()) store.Tick(i);
    store.FinishSweep();
    db->Tick(100);
  }
  std::printf("batch job: %lld commits, lock memory tuned to %.2f MB "
              "(LMOC %.2f MB), escalations=%lld\n",
              static_cast<long long>(store.stats(app).commits),
              static_cast<double>(db->locks().allocated_bytes()) /
                  (1024.0 * 1024.0),
              static_cast<double>(db->stmm()->lmoc()) / (1024.0 * 1024.0),
              static_cast<long long>(db->locks().stats().escalations));

  // The compiler-facing view stays stable regardless (§3.6).
  std::printf("compiler's lock memory view: %.2f MB (constant)\n",
              static_cast<double>(db->stmm()->CompilerLockMemoryView()) /
                  (1024.0 * 1024.0));
  return 0;
}
