// A tour of the three built-in lock management configurations on the same
// workload: DB2 9 self-tuning, a static pre-STMM configuration, and
// SQL Server 2005-style rules — plus a direct look at the Oracle-style
// on-page (ITL) model from the baseline library.
#include <cstdio>

#include "baseline/oracle_itl.h"
#include "common/random.h"
#include "engine/database.h"
#include "workload/oltp_workload.h"
#include "workload/scenario.h"

using namespace locktune;

namespace {

void RunMode(const char* label, TuningMode mode) {
  DatabaseOptions options;
  options.params.database_memory = 256 * kMiB;
  options.mode = mode;
  options.static_locklist_pages = 100;  // deliberately tight for kStatic
  Result<std::unique_ptr<Database>> db = Database::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return;
  }
  Database& database = *db.value();
  OltpWorkload oltp(database.catalog(), OltpOptions{});
  ClientTimeline clients;
  clients.workload = &oltp;
  clients.steps = {{0, 80}};
  ScenarioOptions scenario;
  scenario.duration = 2 * kMinute;
  ScenarioRunner runner(&database, {clients}, scenario);
  runner.Run();

  const LockManagerStats& stats = database.locks().stats();
  std::printf("%-28s commits=%-6lld escalations=%-4lld lock_mem=%5.2f MB "
              "waits=%lld\n",
              label, static_cast<long long>(runner.total_commits()),
              static_cast<long long>(stats.escalations),
              static_cast<double>(database.locks().allocated_bytes()) /
                  (1024.0 * 1024.0),
              static_cast<long long>(stats.lock_waits));
}

}  // namespace

int main() {
  std::printf("same 80-client OLTP workload, three lock-memory policies:\n\n");
  RunMode("DB2 9 self-tuning", TuningMode::kSelfTuning);
  RunMode("static 0.4 MB LOCKLIST", TuningMode::kStatic);
  RunMode("SQL Server 2005-style", TuningMode::kSqlServer);

  // The Oracle-style model keeps locks on data pages instead of a central
  // lock memory; drive it directly with a small update stream.
  std::printf("\nOracle-style on-page locking (ITL), 5000 update txns:\n");
  OracleItlSimulator itl(OracleItlOptions{});
  Rng rng(1);
  for (TxnId txn = 1; txn <= 5000; ++txn) {
    for (int i = 0; i < 10; ++i) {
      (void)itl.LockRow(txn, 0, static_cast<int64_t>(rng.NextBelow(5000)));
    }
    if (txn > 20) itl.Commit(txn - 20);  // ~20 concurrent writers
  }
  const OracleItlStats& s = itl.stats();
  std::printf("  grants=%lld row_waits=%lld itl_waits=%lld queue_jumps=%lld "
              "cleanouts=%lld permanent_itl_bytes=%lld\n",
              static_cast<long long>(s.grants),
              static_cast<long long>(s.row_waits),
              static_cast<long long>(s.itl_waits),
              static_cast<long long>(s.queue_jumps),
              static_cast<long long>(s.cleanouts),
              static_cast<long long>(itl.ExtraItlBytes()));
  return 0;
}
