// Mixed OLTP + decision-support workload (the situation the paper's
// introduction motivates): a reporting query with massive row-locking
// requirements lands in the middle of a steady transactional load.
//
// The self-tuning lock memory absorbs the surge — watch the allocation
// climb within seconds of the injection, the adaptive
// lockPercentPerApplication stay permissive, and the OLTP side keep
// committing with zero exclusive escalations.
#include <cstdio>

#include "engine/database.h"
#include "workload/dss_workload.h"
#include "workload/oltp_workload.h"
#include "workload/scenario.h"

using namespace locktune;

int main() {
  DatabaseOptions options;
  options.params.database_memory = 512 * kMiB;
  Result<std::unique_ptr<Database>> db = Database::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  Database& database = *db.value();

  // 40 OLTP clients from the start; one reporting query at t = 2 min.
  OltpWorkload oltp(database.catalog(), OltpOptions{});
  DssOptions dss_options;
  dss_options.scan_locks = 400'000;        // 25 MB of lock structures
  dss_options.locks_per_tick = 2500;       // 25 000 locks/s
  dss_options.hold_time = 3 * kMinute;     // the report keeps running
  DssWorkload dss(database.catalog(), dss_options);

  ClientTimeline oltp_clients, report;
  oltp_clients.workload = &oltp;
  oltp_clients.steps = {{0, 40}};
  report.workload = &dss;
  report.steps = {{2 * kMinute, 1}};

  ScenarioOptions scenario;
  scenario.duration = 8 * kMinute;
  ScenarioRunner runner(&database, {oltp_clients, report}, scenario);
  runner.Run();

  std::printf("t(s)  lock_alloc(MB)  lock_used(MB)  tps  maxlocks%%\n");
  const TimeSeriesSet& s = runner.series();
  for (size_t i = 0; i < s.Get(ScenarioRunner::kLockAllocatedMb).size();
       i += 20) {
    std::printf(
        "%4lld %13.2f %14.2f %5.0f %8.1f\n",
        static_cast<long long>(
            s.Get(ScenarioRunner::kLockAllocatedMb).points()[i].time_ms /
            1000),
        s.Get(ScenarioRunner::kLockAllocatedMb).points()[i].value,
        s.Get(ScenarioRunner::kLockUsedMb).points()[i].value,
        s.Get(ScenarioRunner::kThroughputTps).points()[i].value,
        s.Get(ScenarioRunner::kMaxlocksPercent).points()[i].value);
  }

  const LockManagerStats& stats = database.locks().stats();
  std::printf("\nexclusive escalations: %lld (the report was absorbed)\n",
              static_cast<long long>(stats.exclusive_escalations));
  std::printf("lock memory errors:    %lld\n",
              static_cast<long long>(runner.total_oom_aborts()));
  std::printf("OLTP commits:          %lld\n",
              static_cast<long long>(runner.total_commits()));
  return 0;
}
