#include "core/pmc_model.h"

#include <gtest/gtest.h>

namespace locktune {
namespace {

class PmcModelTest : public ::testing::Test {
 protected:
  PmcModelTest() : mem_(kGiB, 64 * kMiB) {
    bp_ = mem_.RegisterHeap("bp", ConsumerClass::kPerformance, 512 * kMiB,
                            64 * kMiB, kGiB)
              .value();
    sort_ = mem_.RegisterHeap("sort", ConsumerClass::kPerformance, 128 * kMiB,
                              8 * kMiB, kGiB)
                .value();
    model_.AddConsumer(bp_, 3.0e18);
    model_.AddConsumer(sort_, 6.0e17);
  }

  DatabaseMemory mem_;
  PmcModel model_;
  MemoryHeap* bp_;
  MemoryHeap* sort_;
};

TEST_F(PmcModelTest, ConsumerCount) {
  EXPECT_EQ(model_.consumer_count(), 2);
}

TEST_F(PmcModelTest, MarginalBenefitDecreasingInSize) {
  const double before = model_.MarginalBenefit(bp_);
  ASSERT_TRUE(mem_.GrowHeap(bp_, 64 * kMiB).ok());
  EXPECT_LT(model_.MarginalBenefit(bp_), before);
}

TEST_F(PmcModelTest, MarginalBenefitUnknownHeapIsZero) {
  MemoryHeap* other = mem_.RegisterHeap("x", ConsumerClass::kPerformance,
                                        kMiB, 0, kGiB)
                          .value();
  EXPECT_EQ(model_.MarginalBenefit(other), 0.0);
}

TEST_F(PmcModelTest, TakeFromShrinksLeastNeedyFirst) {
  // At these sizes the buffer pool's marginal benefit (3e18/512Mi²) is
  // lower than sort's (6e17/128Mi²)? 3e18/2.9e17 vs 6e17/1.8e16 — compute:
  // bp: 3e18 / (5.4e8)² ≈ 10.4; sort: 6e17 / (1.3e8)² ≈ 33.3. The buffer
  // pool donates first.
  const Bytes bp_before = bp_->size();
  const Bytes sort_before = sort_->size();
  const Bytes taken = model_.TakeFrom(mem_, 16 * kMiB);
  EXPECT_EQ(taken, 16 * kMiB);
  EXPECT_EQ(bp_->size(), bp_before - 16 * kMiB);
  EXPECT_EQ(sort_->size(), sort_before);
}

TEST_F(PmcModelTest, TakeFromRespectsMinimums) {
  // Demand more than both heaps can give: stops at their minimums.
  const Bytes max_available =
      (bp_->size() - bp_->min_size()) + (sort_->size() - sort_->min_size());
  const Bytes taken = model_.TakeFrom(mem_, 2 * kGiB);
  EXPECT_EQ(taken, max_available);
  EXPECT_EQ(bp_->size(), bp_->min_size());
  EXPECT_EQ(sort_->size(), sort_->min_size());
}

TEST_F(PmcModelTest, TakeFromZeroIsNoop) {
  EXPECT_EQ(model_.TakeFrom(mem_, 0), 0);
}

TEST_F(PmcModelTest, GiveToGrowsMostNeedyFirst) {
  const Bytes sort_before = sort_->size();
  const Bytes bp_before = bp_->size();
  // Sort has the higher marginal benefit at these sizes (see above).
  const Bytes given = model_.GiveTo(mem_, 16 * kMiB);
  EXPECT_EQ(given, 16 * kMiB);
  EXPECT_GT(sort_->size(), sort_before);
  EXPECT_EQ(bp_->size(), bp_before);
}

TEST_F(PmcModelTest, GiveToBoundedByOverflow) {
  const Bytes overflow = mem_.overflow_bytes();
  const Bytes given = model_.GiveTo(mem_, overflow + 64 * kMiB);
  EXPECT_LE(given, overflow);
  EXPECT_EQ(mem_.overflow_bytes(), overflow - given);
}

TEST_F(PmcModelTest, GiveThenTakeRoundTrips) {
  const Bytes bp0 = bp_->size(), sort0 = sort_->size();
  const Bytes given = model_.GiveTo(mem_, 32 * kMiB);
  const Bytes taken = model_.TakeFrom(mem_, given);
  EXPECT_EQ(taken, given);
  // Memory conservation: totals return.
  EXPECT_EQ(bp_->size() + sort_->size(), bp0 + sort0);
}

TEST_F(PmcModelTest, EqualizesMarginalBenefitOverManyChunks) {
  // Greedy chunk allocation approximately equalizes marginal benefits.
  (void)model_.GiveTo(mem_, 256 * kMiB);
  const double bp_mb = model_.MarginalBenefit(bp_);
  const double sort_mb = model_.MarginalBenefit(sort_);
  EXPECT_LT(std::abs(bp_mb - sort_mb) / std::max(bp_mb, sort_mb), 0.2);
}

}  // namespace
}  // namespace locktune
