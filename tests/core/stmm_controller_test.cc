#include "core/stmm_controller.h"

#include <memory>

#include <gtest/gtest.h>

namespace locktune {
namespace {

constexpr TableId kTable = 1;

// Wires a miniature STMM stack: 256 MB database, buffer pool + sort PMCs,
// a lock heap and lock manager, and the controller under test.
class StmmControllerTest : public ::testing::Test {
 protected:
  void Build(TuningParams params) {
    params_ = params;
    ASSERT_TRUE(params_.Validate().ok());
    memory_ = std::make_unique<DatabaseMemory>(params_.database_memory,
                                               params_.OverflowGoal());
    bp_ = memory_
              ->RegisterHeap("bp", ConsumerClass::kPerformance,
                             params_.database_memory / 2,
                             params_.database_memory / 16,
                             params_.database_memory)
              .value();
    sort_ = memory_
                ->RegisterHeap("sort", ConsumerClass::kPerformance,
                               params_.database_memory / 8,
                               params_.database_memory / 64,
                               params_.database_memory)
                .value();
    pmcs_.AddConsumer(bp_, 3.0e18);
    pmcs_.AddConsumer(sort_, 6.0e17);
    lock_heap_ = memory_
                     ->RegisterHeap("locklist", ConsumerClass::kFunctional,
                                    params_.InitialLockMemory(),
                                    kLockBlockSize, params_.MaxLockMemory())
                     .value();
    policy_ = std::make_unique<AdaptiveMaxlocksPolicy>();
    LockManagerOptions lmo;
    lmo.initial_blocks = BytesToBlocks(params_.InitialLockMemory());
    lmo.max_lock_memory = params_.MaxLockMemory();
    lmo.database_memory = params_.database_memory;
    lmo.policy = policy_.get();
    lmo.grow_callback = [this](int64_t blocks) {
      return stmm_->GrantSynchronousGrowth(blocks);
    };
    locks_ = std::make_unique<LockManager>(std::move(lmo));
    stmm_ = std::make_unique<StmmController>(
        params_, &clock_, memory_.get(), lock_heap_, locks_.get(), &pmcs_,
        [this] { return napps_; });
  }

  // Occupies `n` lock structures via row locks from one app.
  void HoldRows(AppId app, int64_t n, int64_t offset = 0) {
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(
          locks_->Lock(app, RowResource(kTable, offset + i), LockMode::kS)
              .outcome,
          LockOutcome::kGranted);
    }
  }

  TuningParams params_;
  SimClock clock_;
  std::unique_ptr<DatabaseMemory> memory_;
  MemoryHeap* bp_ = nullptr;
  MemoryHeap* sort_ = nullptr;
  MemoryHeap* lock_heap_ = nullptr;
  PmcModel pmcs_;
  std::unique_ptr<AdaptiveMaxlocksPolicy> policy_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<StmmController> stmm_;
  int napps_ = 1;
};

TuningParams SmallParams() {
  TuningParams p;
  p.database_memory = 256 * kMiB;
  return p;
}

TEST_F(StmmControllerTest, LmocStartsAtInitialLockList) {
  Build(SmallParams());
  EXPECT_EQ(stmm_->lmoc(), params_.InitialLockMemory());
  EXPECT_EQ(stmm_->lmo(), 0);
}

TEST_F(StmmControllerTest, CompilerViewIsTenPercentAndStable) {
  Build(SmallParams());
  const Bytes view = stmm_->CompilerLockMemoryView();
  EXPECT_EQ(view, params_.database_memory / 10);
  // Stays fixed across growth (§3.6: a stable estimate, not instantaneous).
  HoldRows(1, 5000);
  stmm_->RunTuningPass();
  EXPECT_EQ(stmm_->CompilerLockMemoryView(), view);
}

TEST_F(StmmControllerTest, PollRunsOnePassPerInterval) {
  Build(SmallParams());
  clock_.Advance(params_.tuning_interval - 1);
  stmm_->Poll();
  EXPECT_TRUE(stmm_->history().empty());
  clock_.Advance(1);
  stmm_->Poll();
  EXPECT_EQ(stmm_->history().size(), 1u);
  clock_.Advance(3 * params_.tuning_interval);
  stmm_->Poll();
  EXPECT_EQ(stmm_->history().size(), 4u);
}

TEST_F(StmmControllerTest, SynchronousGrowthTakesOverflowAndRecordsLmo) {
  Build(SmallParams());
  const Bytes overflow_before = memory_->overflow_bytes();
  EXPECT_TRUE(stmm_->GrantSynchronousGrowth(2));
  EXPECT_EQ(stmm_->lmo(), 2 * kLockBlockSize);
  EXPECT_EQ(lock_heap_->size(),
            params_.InitialLockMemory() + 2 * kLockBlockSize);
  EXPECT_EQ(memory_->overflow_bytes(),
            overflow_before - 2 * kLockBlockSize);
}

TEST_F(StmmControllerTest, SynchronousGrowthDeniedAtMaxLockMemory) {
  Build(SmallParams());
  const int64_t blocks_to_max =
      BytesToBlocks(params_.MaxLockMemory() - lock_heap_->size());
  EXPECT_FALSE(stmm_->GrantSynchronousGrowth(blocks_to_max + 1));
  EXPECT_TRUE(stmm_->growth_was_constrained());
}

TEST_F(StmmControllerTest, SynchronousGrowthDeniedAtLmoMax) {
  Build(SmallParams());
  // LMOmax = C1·(overflow + LMO): a request for more than C1 of the entire
  // overflow must be denied even though overflow could cover it.
  const Bytes overflow = memory_->overflow_bytes();
  const int64_t too_many =
      BytesToBlocks(static_cast<Bytes>(0.70 * static_cast<double>(overflow)));
  EXPECT_FALSE(stmm_->GrantSynchronousGrowth(too_many));
  EXPECT_TRUE(stmm_->growth_was_constrained());
  // But a request inside the cap is fine.
  EXPECT_TRUE(stmm_->GrantSynchronousGrowth(1));
}

TEST_F(StmmControllerTest, TuningPassGrowsTowardMinFree) {
  Build(SmallParams());
  // Use ~90 % of the initial allocation.
  const int64_t slots = BytesToBlocks(params_.InitialLockMemory()) *
                        kLocksPerBlock * 9 / 10;
  HoldRows(1, slots - 1);
  stmm_->RunTuningPass();
  // After the pass at least half the lock memory is free.
  const Bytes allocated = locks_->allocated_bytes();
  const Bytes used = locks_->used_bytes();
  EXPECT_GE(allocated - used, allocated / 2 - kLockBlockSize);
  EXPECT_EQ(stmm_->lmoc(), allocated);
  EXPECT_EQ(stmm_->history().back().action, LockTunerAction::kGrow);
}

TEST_F(StmmControllerTest, TuningPassShrinksWhenOverFree) {
  Build(SmallParams());
  locks_->AddBlocks(64);
  ASSERT_TRUE(memory_->GrowHeap(lock_heap_, 64 * kLockBlockSize).ok());
  const Bytes before = locks_->allocated_bytes();
  stmm_->RunTuningPass();
  EXPECT_LT(locks_->allocated_bytes(), before);
  EXPECT_EQ(stmm_->history().back().action, LockTunerAction::kShrink);
  // Shrink proceeds ~5 % per interval, not all at once.
  EXPECT_GT(locks_->allocated_bytes(), before / 2);
}

TEST_F(StmmControllerTest, RepeatedPassesSettleIntoDeadBand) {
  Build(SmallParams());
  // Enough demand that the settled target exceeds minLockMemory (otherwise
  // the minimum clamp, not the free band, decides the size).
  HoldRows(1, 20'000);
  for (int i = 0; i < 60; ++i) stmm_->RunTuningPass();
  const Bytes allocated = locks_->allocated_bytes();
  const Bytes used = locks_->used_bytes();
  const double free_frac = static_cast<double>(allocated - used) /
                           static_cast<double>(allocated);
  // Inside (or at the block-rounded edge of) the [minFree, maxFree] band.
  EXPECT_GE(free_frac, params_.min_free_fraction - 0.05);
  EXPECT_LE(free_frac, params_.max_free_fraction + 0.05);
  // And the last passes did nothing (stable).
  EXPECT_EQ(stmm_->history().back().action, LockTunerAction::kNone);
}

TEST_F(StmmControllerTest, PassRegularizesLmoIntoLmoc) {
  Build(SmallParams());
  HoldRows(1, 10000);  // forces synchronous growth past the initial 4 blocks
  EXPECT_GT(stmm_->lmo(), 0);
  stmm_->RunTuningPass();
  EXPECT_EQ(stmm_->lmo(), 0);
  EXPECT_EQ(stmm_->lmoc(), lock_heap_->size());
}

TEST_F(StmmControllerTest, PassRestoresOverflowGoal) {
  Build(SmallParams());
  HoldRows(1, 3000);
  stmm_->RunTuningPass();
  EXPECT_NEAR(static_cast<double>(memory_->overflow_bytes()),
              static_cast<double>(params_.OverflowGoal()),
              static_cast<double>(2 * kLockBlockSize));
}

TEST_F(StmmControllerTest, SurplusOverflowGoesToPmcs) {
  Build(SmallParams());
  // Free a lot of lock memory: after shrink the surplus lands in PMCs, not
  // in overflow.
  locks_->AddBlocks(128);
  ASSERT_TRUE(memory_->GrowHeap(lock_heap_, 128 * kLockBlockSize).ok());
  const Bytes pmc_before = bp_->size() + sort_->size();
  for (int i = 0; i < 80; ++i) stmm_->RunTuningPass();
  EXPECT_GT(bp_->size() + sort_->size(), pmc_before);
  EXPECT_NEAR(static_cast<double>(memory_->overflow_bytes()),
              static_cast<double>(params_.OverflowGoal()),
              static_cast<double>(2 * kLockBlockSize));
}

TEST_F(StmmControllerTest, PmcsShrinkToFeedLockGrowth) {
  Build(SmallParams());
  // Drain overflow into the buffer pool so lock growth must displace PMCs.
  const Bytes overflow = memory_->overflow_bytes();
  ASSERT_TRUE(memory_->GrowHeap(bp_, overflow).ok());
  ASSERT_EQ(memory_->overflow_bytes(), 0);
  const Bytes bp_before = bp_->size();
  HoldRows(1, 6000);  // demand beyond the initial blocks
  stmm_->RunTuningPass();
  EXPECT_LT(bp_->size(), bp_before);
  EXPECT_GT(locks_->allocated_bytes(), params_.InitialLockMemory());
}

TEST_F(StmmControllerTest, EscalationUnderConstraintDoublesNextPass) {
  TuningParams p = SmallParams();
  Build(p);
  // Exhaust overflow so synchronous growth is denied.
  ASSERT_TRUE(memory_->GrowHeap(bp_, memory_->overflow_bytes()).ok());
  // Make PMCs unable to donate (min = current size is not settable, so
  // instead verify the doubling signal path directly).
  const int64_t capacity = BytesToBlocks(params_.InitialLockMemory()) *
                           kLocksPerBlock;
  HoldRows(1, capacity + 10);  // forces escalation (growth denied)
  EXPECT_GE(locks_->stats().escalations, 1);
  EXPECT_TRUE(stmm_->growth_was_constrained());
  const Bytes before = locks_->allocated_bytes();
  stmm_->RunTuningPass();
  const StmmIntervalRecord& rec = stmm_->history().back();
  EXPECT_EQ(rec.action, LockTunerAction::kDouble);
  // The pass displaced PMC memory to fund the doubling.
  EXPECT_GE(locks_->allocated_bytes(), before);
}

TEST_F(StmmControllerTest, HistoryRecordsFields) {
  Build(SmallParams());
  napps_ = 42;
  HoldRows(1, 100);
  clock_.Advance(params_.tuning_interval);
  stmm_->Poll();
  ASSERT_EQ(stmm_->history().size(), 1u);
  const StmmIntervalRecord& rec = stmm_->history().front();
  EXPECT_EQ(rec.time, clock_.now());
  EXPECT_EQ(rec.lock_allocated, locks_->allocated_bytes());
  EXPECT_EQ(rec.lock_used, locks_->used_bytes());
  EXPECT_EQ(rec.lmoc, stmm_->lmoc());
  EXPECT_GT(rec.maxlocks_percent, 0.0);
}

TEST_F(StmmControllerTest, MinLockMemoryReevaluatedWithConnections) {
  Build(SmallParams());
  napps_ = 130;
  stmm_->RunTuningPass();
  // minLockMemory(130) ≈ 4 MiB: the clamp grows the allocation.
  EXPECT_GE(locks_->allocated_bytes(), params_.MinLockMemory(130));
}

}  // namespace
}  // namespace locktune
