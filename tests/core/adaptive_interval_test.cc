// Adaptive tuning interval: STMM shortens the interval while the lock
// memory is being resized and relaxes it when the system is quiet.
#include <memory>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "workload/oltp_workload.h"
#include "workload/scenario.h"

namespace locktune {
namespace {

DatabaseOptions AdaptiveOptions() {
  DatabaseOptions o;
  o.params.database_memory = 256 * kMiB;
  o.params.adaptive_interval = true;
  o.params.tuning_interval = kMinute;
  o.params.tuning_interval_min = 30 * kSecond;
  o.params.tuning_interval_max = 4 * kMinute;
  o.params.quiet_passes_to_lengthen = 2;
  return o;
}

TEST(AdaptiveIntervalTest, OptionsValidated) {
  DatabaseOptions o = AdaptiveOptions();
  o.params.tuning_interval = 10 * kSecond;  // below the minimum
  EXPECT_FALSE(Database::Open(o).ok());
  o = AdaptiveOptions();
  o.params.tuning_interval_max = 10 * kSecond;  // below the minimum
  EXPECT_FALSE(Database::Open(o).ok());
  o = AdaptiveOptions();
  o.params.quiet_passes_to_lengthen = 0;
  EXPECT_FALSE(Database::Open(o).ok());
}

TEST(AdaptiveIntervalTest, QuietSystemLengthensInterval) {
  std::unique_ptr<Database> db = Database::Open(AdaptiveOptions()).value();
  db->set_connected_applications(1);
  // No lock traffic at all: every pass is a no-op (after the initial clamp
  // settles) and the interval climbs to its maximum.
  for (int i = 0; i < 40; ++i) db->Tick(kMinute);
  EXPECT_EQ(db->stmm()->tuning_interval(), 4 * kMinute);
}

TEST(AdaptiveIntervalTest, ResizeShortensInterval) {
  std::unique_ptr<Database> db = Database::Open(AdaptiveOptions()).value();
  db->set_connected_applications(1);
  // Demand that forces a growth pass.
  for (int64_t r = 0; r < 6000; ++r) {
    ASSERT_EQ(db->locks().Lock(1, RowResource(1, r), LockMode::kS).outcome,
              LockOutcome::kGranted);
  }
  db->Tick(kMinute);  // a grow pass runs
  EXPECT_LT(db->stmm()->tuning_interval(), kMinute);
  EXPECT_GE(db->stmm()->tuning_interval(), 30 * kSecond);
}

TEST(AdaptiveIntervalTest, IntervalStaysInsideBounds) {
  std::unique_ptr<Database> db = Database::Open(AdaptiveOptions()).value();
  OltpWorkload oltp(db->catalog(), OltpOptions{});
  ClientTimeline tl;
  tl.workload = &oltp;
  tl.steps = {{0, 10}, {2 * kMinute, 60}, {5 * kMinute, 5}};
  ScenarioOptions so;
  so.duration = 12 * kMinute;
  ScenarioRunner runner(db.get(), {tl}, so);
  runner.Run();
  for (const StmmIntervalRecord& rec : db->stmm()->history()) {
    EXPECT_GE(rec.next_interval, 30 * kSecond);
    EXPECT_LE(rec.next_interval, 4 * kMinute);
  }
}

TEST(AdaptiveIntervalTest, FixedIntervalByDefault) {
  DatabaseOptions o;
  o.params.database_memory = 256 * kMiB;
  std::unique_ptr<Database> db = Database::Open(o).value();
  db->set_connected_applications(1);
  for (int i = 0; i < 20; ++i) db->Tick(kMinute);
  EXPECT_EQ(db->stmm()->tuning_interval(), o.params.tuning_interval);
}

}  // namespace
}  // namespace locktune
