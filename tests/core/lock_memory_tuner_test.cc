#include "core/lock_memory_tuner.h"

#include <gtest/gtest.h>

namespace locktune {
namespace {

TuningParams BigParams() {
  TuningParams p;
  p.database_memory = kGiB;  // maxLockMemory = 204.8 MB
  return p;
}

LockTunerInputs In(Bytes allocated, Bytes used, int napps = 10,
                   int64_t escalations = 0, bool constrained = false) {
  LockTunerInputs in;
  in.allocated = allocated;
  in.used = used;
  in.num_applications = napps;
  in.escalations_in_interval = escalations;
  in.growth_was_constrained = constrained;
  return in;
}

TEST(LockMemoryTunerTest, GrowRestoresMinFreeObjective) {
  LockMemoryTuner tuner(BigParams());
  // 100 MB allocated, 80 MB used: only 20 % free < minFree (50 %).
  const LockTunerDecision d = tuner.Tune(In(100 * kMiB, 80 * kMiB));
  EXPECT_EQ(d.action, LockTunerAction::kGrow);
  // Target makes used exactly (1 − 0.5) of the new size: 160 MB.
  EXPECT_EQ(d.target, RoundUpToBlocks(160 * kMiB));
}

TEST(LockMemoryTunerTest, DeadBandKeepsCurrentAllocation) {
  LockMemoryTuner tuner(BigParams());
  // A stale remembered target must NOT pull the allocation back: §3.3's
  // dead band means "no change", even after synchronous growth moved the
  // allocation past the previous target.
  tuner.set_previous_target(64 * kMiB);
  // 55 % free: inside the [50 %, 60 %] band.
  const LockTunerDecision d = tuner.Tune(In(100 * kMiB, 45 * kMiB));
  EXPECT_EQ(d.action, LockTunerAction::kNone);
  EXPECT_EQ(d.target, 100 * kMiB);
  EXPECT_EQ(tuner.previous_target(), 100 * kMiB);
}

TEST(LockMemoryTunerTest, ShrinkByDeltaReduce) {
  LockMemoryTuner tuner(BigParams());
  // 100 MB allocated, 10 MB used: 90 % free > maxFree (60 %).
  const LockTunerDecision d = tuner.Tune(In(100 * kMiB, 10 * kMiB));
  EXPECT_EQ(d.action, LockTunerAction::kShrink);
  // δ_reduce = 5 % of 100 MB = 5 MB (block-rounded).
  EXPECT_EQ(d.target, 100 * kMiB - RoundToBlocks(5 * kMiB));
}

TEST(LockMemoryTunerTest, ShrinkStopsAtMaxFreeFloor) {
  LockMemoryTuner tuner(BigParams());
  tuner.set_previous_target(100 * kMiB);
  // 100 MB allocated, 41 MB used: 59 % free is inside the band → none.
  EXPECT_EQ(tuner.Tune(In(100 * kMiB, 41 * kMiB)).action,
            LockTunerAction::kNone);
  // 100 MB allocated, 39.9 MB used → 60.1 % free, shrink, but the floor
  // used/(1−0.6) ≈ 99.75 MB limits the step to less than δ_reduce.
  const LockTunerDecision d = tuner.Tune(In(100 * kMiB, 39'900 * kKiB));
  EXPECT_EQ(d.action, LockTunerAction::kShrink);
  EXPECT_GE(d.target, RoundToBlocks(Bytes(39'900 * kKiB / 0.4)) -
                          kLockBlockSize);
  EXPECT_LT(d.target, 100 * kMiB);
}

TEST(LockMemoryTunerTest, RepeatedShrinkDecaysGeometrically) {
  LockMemoryTuner tuner(BigParams());
  Bytes allocated = 100 * kMiB;
  for (int i = 0; i < 10; ++i) {
    const LockTunerDecision d = tuner.Tune(In(allocated, 0, /*napps=*/0));
    EXPECT_LE(d.target, allocated);
    allocated = d.target;
  }
  // 0.95^10 ≈ 0.6 of the original, down to the 2 MB floor eventually.
  EXPECT_NEAR(static_cast<double>(allocated) / (100.0 * kMiB), 0.6, 0.05);
}

TEST(LockMemoryTunerTest, EscalationsUnderConstraintDouble) {
  LockMemoryTuner tuner(BigParams());
  const LockTunerDecision d =
      tuner.Tune(In(10 * kMiB, 10 * kMiB, 10, /*escalations=*/3,
                    /*constrained=*/true));
  EXPECT_EQ(d.action, LockTunerAction::kDouble);
  EXPECT_EQ(d.target, 20 * kMiB);
}

TEST(LockMemoryTunerTest, EscalationsWithoutConstraintDoNotDouble) {
  // A quota escalation under ample memory must not inflate the heap.
  LockMemoryTuner tuner(BigParams());
  const LockTunerDecision d =
      tuner.Tune(In(10 * kMiB, 2 * kMiB, 10, /*escalations=*/3,
                    /*constrained=*/false));
  EXPECT_NE(d.action, LockTunerAction::kDouble);
}

TEST(LockMemoryTunerTest, DoublingClampsAtMaxLockMemory) {
  TuningParams p = BigParams();
  LockMemoryTuner tuner(p);
  const Bytes near_max = p.MaxLockMemory() - kLockBlockSize;
  const LockTunerDecision d =
      tuner.Tune(In(near_max, near_max, 10, 5, true));
  EXPECT_EQ(d.target, p.MaxLockMemory());
}

TEST(LockMemoryTunerTest, GrowthClampsAtMaxLockMemory) {
  TuningParams p = BigParams();
  LockMemoryTuner tuner(p);
  const LockTunerDecision d =
      tuner.Tune(In(p.MaxLockMemory(), p.MaxLockMemory()));
  EXPECT_LE(d.target, p.MaxLockMemory());
}

TEST(LockMemoryTunerTest, ShrinkClampsAtMinLockMemory) {
  TuningParams p = BigParams();
  LockMemoryTuner tuner(p);
  // Empty lock memory with 130 connections: min = ~4 MiB, not 2 MB.
  Bytes allocated = 8 * kMiB;
  for (int i = 0; i < 50; ++i) {
    allocated = tuner.Tune(In(allocated, 0, /*napps=*/130)).target;
  }
  EXPECT_EQ(allocated, p.MinLockMemory(130));
}

TEST(LockMemoryTunerTest, MinimumTracksApplicationCount) {
  TuningParams p = BigParams();
  LockMemoryTuner tuner(p);
  // Few apps: decays to the 2 MB floor.
  Bytes allocated = 8 * kMiB;
  for (int i = 0; i < 60; ++i) {
    allocated = tuner.Tune(In(allocated, 0, /*napps=*/1)).target;
  }
  EXPECT_EQ(allocated, 2 * kMiB);
  // Connection surge to 500 apps: the clamp alone forces growth.
  const LockTunerDecision d = tuner.Tune(In(allocated, 0, /*napps=*/500));
  EXPECT_EQ(d.target, p.MinLockMemory(500));
}

TEST(LockMemoryTunerTest, TargetsAreBlockMultiples) {
  LockMemoryTuner tuner(BigParams());
  for (Bytes used : {0L, 1000L, 777'777L, 5'000'000L, 50'000'000L}) {
    const LockTunerDecision d = tuner.Tune(In(64 * kMiB, used));
    EXPECT_EQ(d.target % kLockBlockSize, 0) << used;
  }
}

TEST(LockMemoryTunerTest, PreviousTargetFollowsDecisions) {
  LockMemoryTuner tuner(BigParams());
  const LockTunerDecision d = tuner.Tune(In(100 * kMiB, 80 * kMiB));
  EXPECT_EQ(tuner.previous_target(), d.target);
}

TEST(LockMemoryTunerTest, InitialPreviousTargetIsInitialLockList) {
  TuningParams p = BigParams();
  p.initial_locklist_pages = 256;  // 1 MiB
  LockMemoryTuner tuner(p);
  EXPECT_EQ(tuner.previous_target(), kMiB);
}

TEST(LockMemoryTunerTest, ZeroAllocationTreatedAsOneBlock) {
  LockMemoryTuner tuner(BigParams());
  const LockTunerDecision d = tuner.Tune(In(0, 0));
  EXPECT_GE(d.target, 2 * kMiB);  // clamped to the floor
}

// Property sweep: for any (allocated, used) state the decision target stays
// inside [minLockMemory, maxLockMemory] and is a block multiple.
class TunerPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TunerPropertyTest, TargetAlwaysBoundedAndAligned) {
  const auto [alloc_mb, used_permille] = GetParam();
  TuningParams p = BigParams();
  LockMemoryTuner tuner(p);
  const Bytes allocated = static_cast<Bytes>(alloc_mb) * kMiB;
  const Bytes used = allocated * used_permille / 1000;
  for (int napps : {0, 1, 50, 130, 1000}) {
    const LockTunerDecision d = tuner.Tune(In(allocated, used, napps));
    EXPECT_GE(d.target, p.MinLockMemory(napps));
    EXPECT_LE(d.target, std::max(p.MaxLockMemory(), p.MinLockMemory(napps)));
    EXPECT_EQ(d.target % kLockBlockSize, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    States, TunerPropertyTest,
    ::testing::Combine(::testing::Values(1, 4, 16, 64, 128, 200),
                       ::testing::Values(0, 100, 400, 500, 600, 900, 1000)));

}  // namespace
}  // namespace locktune
