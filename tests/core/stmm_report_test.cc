#include "core/stmm_report.h"

#include <gtest/gtest.h>

namespace locktune {
namespace {

StmmIntervalRecord Rec(TimeMs t, LockTunerAction action, Bytes alloc,
                       Bytes used, int64_t esc = 0) {
  StmmIntervalRecord r;
  r.time = t;
  r.action = action;
  r.lock_allocated = alloc;
  r.lock_used = used;
  r.lmoc = alloc;
  r.overflow = 10 * kMiB;
  r.escalations_delta = esc;
  return r;
}

TEST(StmmReportTest, ActionNames) {
  EXPECT_EQ(TunerActionName(LockTunerAction::kNone), "NONE");
  EXPECT_EQ(TunerActionName(LockTunerAction::kGrow), "GROW");
  EXPECT_EQ(TunerActionName(LockTunerAction::kShrink), "SHRINK");
  EXPECT_EQ(TunerActionName(LockTunerAction::kDouble), "DOUBLE");
  EXPECT_EQ(TunerActionName(LockTunerAction::kClamp), "CLAMP");
}

TEST(StmmReportTest, SummarizeEmpty) {
  const StmmReportSummary s = Summarize({});
  EXPECT_EQ(s.total_passes, 0);
  EXPECT_EQ(s.peak_allocated, 0);
  EXPECT_EQ(s.final_allocated, 0);
}

TEST(StmmReportTest, SummarizeCountsActions) {
  std::vector<StmmIntervalRecord> h = {
      Rec(30'000, LockTunerAction::kGrow, 4 * kMiB, 2 * kMiB),
      Rec(60'000, LockTunerAction::kGrow, 8 * kMiB, 4 * kMiB),
      Rec(90'000, LockTunerAction::kNone, 8 * kMiB, 4 * kMiB),
      Rec(120'000, LockTunerAction::kDouble, 16 * kMiB, 8 * kMiB, 3),
      Rec(150'000, LockTunerAction::kShrink, 14 * kMiB, 2 * kMiB),
      Rec(180'000, LockTunerAction::kClamp, 12 * kMiB, 2 * kMiB),
  };
  const StmmReportSummary s = Summarize(h);
  EXPECT_EQ(s.total_passes, 6);
  EXPECT_EQ(s.grow_passes, 2);
  EXPECT_EQ(s.shrink_passes, 1);
  EXPECT_EQ(s.double_passes, 1);
  EXPECT_EQ(s.clamp_passes, 1);
  EXPECT_EQ(s.quiet_passes, 1);
  EXPECT_EQ(s.peak_allocated, 16 * kMiB);
  EXPECT_EQ(s.final_allocated, 12 * kMiB);
  EXPECT_EQ(s.total_escalations, 3);
}

TEST(StmmReportTest, RenderTableContainsRows) {
  std::vector<StmmIntervalRecord> h = {
      Rec(30'000, LockTunerAction::kGrow, 4 * kMiB, 2 * kMiB),
      Rec(60'000, LockTunerAction::kNone, 4 * kMiB, 2 * kMiB),
  };
  const std::string table = RenderHistoryTable(h);
  EXPECT_NE(table.find("GROW"), std::string::npos);
  EXPECT_NE(table.find("NONE"), std::string::npos);
  EXPECT_NE(table.find("50.0"), std::string::npos);  // free %
  EXPECT_NE(table.find("time_s"), std::string::npos);
}

TEST(StmmReportTest, RenderTableCapsRows) {
  std::vector<StmmIntervalRecord> h;
  for (int i = 0; i < 100; ++i) {
    h.push_back(Rec(i * 30'000, LockTunerAction::kNone, kMiB, 0));
  }
  const std::string table = RenderHistoryTable(h, /*max_rows=*/5);
  EXPECT_NE(table.find("95 earlier passes omitted"), std::string::npos);
  // Header + omission line + 5 rows.
  EXPECT_EQ(static_cast<int>(std::count(table.begin(), table.end(), '\n')),
            7);
}

TEST(StmmReportTest, RenderSummaryLine) {
  StmmReportSummary s;
  s.total_passes = 7;
  s.grow_passes = 2;
  s.peak_allocated = 8 * kMiB;
  s.final_allocated = 4 * kMiB;
  s.total_escalations = 1;
  const std::string line = RenderSummary(s);
  EXPECT_NE(line.find("passes=7"), std::string::npos);
  EXPECT_NE(line.find("grow=2"), std::string::npos);
  EXPECT_NE(line.find("peak=8.00MB"), std::string::npos);
  EXPECT_NE(line.find("escalations=1"), std::string::npos);
}

}  // namespace
}  // namespace locktune
