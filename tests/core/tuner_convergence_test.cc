// Control-theoretic properties of the lock memory tuner as a closed loop:
// convergence from any initial state, monotone tracking of monotone demand,
// and absence of limit cycles under constant demand. The loop simulated
// here is the tuner alone (allocation follows the decision exactly), which
// isolates the controller mathematics from the memory-availability effects
// the StmmController tests cover.
#include <gtest/gtest.h>

#include "core/lock_memory_tuner.h"

namespace locktune {
namespace {

TuningParams Params() {
  TuningParams p;
  p.database_memory = kGiB;  // max = 204.8 MB
  return p;
}

LockTunerInputs In(Bytes allocated, Bytes used, int napps = 10) {
  LockTunerInputs in;
  in.allocated = allocated;
  in.used = used;
  in.num_applications = napps;
  return in;
}

// Runs the closed loop with constant demand until the target stops moving;
// returns (final_allocated, steps_taken).
std::pair<Bytes, int> RunToFixpoint(LockMemoryTuner& tuner, Bytes demand,
                                    Bytes start, int napps = 10,
                                    int max_steps = 200) {
  Bytes allocated = start;
  for (int step = 0; step < max_steps; ++step) {
    const Bytes target = tuner.Tune(In(allocated, demand, napps)).target;
    if (target == allocated) return {allocated, step};
    allocated = target;
  }
  return {allocated, max_steps};
}

class ConvergenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ConvergenceTest, AnyStartConvergesToTheBand) {
  const auto [start_mb, demand_mb] = GetParam();
  TuningParams p = Params();
  LockMemoryTuner tuner(p);
  const Bytes demand = static_cast<Bytes>(demand_mb) * kMiB;
  const auto [final_alloc, steps] =
      RunToFixpoint(tuner, demand, static_cast<Bytes>(start_mb) * kMiB);
  // Converged (no limit cycle) well before the step cap.
  EXPECT_LT(steps, 200);
  // The fixpoint keeps demand within bounds...
  EXPECT_GE(final_alloc, p.MinLockMemory(10));
  EXPECT_LE(final_alloc, p.MaxLockMemory());
  // ...and, when the bounds are not binding, inside the free band
  // (allowing one block of rounding slack).
  if (final_alloc > p.MinLockMemory(10) && final_alloc < p.MaxLockMemory()) {
    const double free_frac =
        static_cast<double>(final_alloc - demand) /
        static_cast<double>(final_alloc);
    EXPECT_GE(free_frac, p.min_free_fraction -
                             static_cast<double>(kLockBlockSize) /
                                 static_cast<double>(final_alloc));
    EXPECT_LE(free_frac, p.max_free_fraction +
                             static_cast<double>(kLockBlockSize) /
                                 static_cast<double>(final_alloc));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvergenceTest,
    ::testing::Combine(/*start_mb=*/::testing::Values(1, 2, 8, 64, 200),
                       /*demand_mb=*/::testing::Values(0, 1, 5, 20, 60, 90)));

TEST(TunerConvergenceTest, FixpointIsStableUnderRepetition) {
  TuningParams p = Params();
  LockMemoryTuner tuner(p);
  const Bytes demand = 20 * kMiB;
  auto [fixpoint, unused] = RunToFixpoint(tuner, demand, 4 * kMiB);
  (void)unused;
  // 50 more passes with identical inputs: the target never moves again.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(tuner.Tune(In(fixpoint, demand)).target, fixpoint);
  }
}

TEST(TunerConvergenceTest, MonotoneDemandGivesMonotoneTargets) {
  TuningParams p = Params();
  LockMemoryTuner tuner(p);
  Bytes allocated = 4 * kMiB;
  Bytes prev_alloc = 0;
  for (Bytes demand = kMiB; demand <= 80 * kMiB; demand += 4 * kMiB) {
    allocated = RunToFixpoint(tuner, demand, allocated).first;
    EXPECT_GE(allocated, prev_alloc) << "demand " << demand;
    prev_alloc = allocated;
  }
}

TEST(TunerConvergenceTest, GrowthIsOneShotShrinkIsGradual) {
  // The asymmetry the paper designs for: growth to the minFree objective
  // happens in a single pass; decay takes many.
  TuningParams p = Params();
  LockMemoryTuner tuner(p);
  // Demand above the allocation is clamped per pass (a real system grows
  // synchronously first), so the tuner doubles toward the goal: log2(20)
  // passes, still far faster than the 5 %/pass decay.
  const auto [grown, grow_steps] =
      RunToFixpoint(tuner, 40 * kMiB, 4 * kMiB);
  EXPECT_LE(grow_steps, 6);
  EXPECT_GE(grown, 80 * kMiB - kLockBlockSize);
  const auto [shrunk, shrink_steps] = RunToFixpoint(tuner, kMiB, grown);
  EXPECT_GE(shrink_steps, 10);
  EXPECT_LE(shrunk, 4 * kMiB);
}

TEST(TunerConvergenceTest, OscillatingDemandStaysBounded) {
  // Demand flapping across the band edge must not ratchet the allocation
  // upward or downward without bound.
  TuningParams p = Params();
  LockMemoryTuner tuner(p);
  Bytes allocated = 16 * kMiB;
  Bytes lo = allocated, hi = allocated;
  for (int i = 0; i < 200; ++i) {
    const Bytes demand = (i % 2 == 0) ? 7 * kMiB : 9 * kMiB;
    allocated = tuner.Tune(In(allocated, demand)).target;
    lo = std::min(lo, allocated);
    hi = std::max(hi, allocated);
  }
  EXPECT_GE(lo, 14 * kMiB);  // never collapses below the demand's needs
  EXPECT_LE(hi, 24 * kMiB);  // never ratchets far above 2x the peak demand
}

}  // namespace
}  // namespace locktune
