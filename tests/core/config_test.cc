#include "core/config.h"

#include <gtest/gtest.h>

namespace locktune {
namespace {

TEST(ConfigTest, DefaultsAreValid) {
  TuningParams p;
  EXPECT_TRUE(p.Validate().ok());
}

TEST(ConfigTest, Table1Defaults) {
  // The parameter values of Table 1.
  TuningParams p;
  EXPECT_DOUBLE_EQ(p.max_lock_memory_fraction, 0.20);
  EXPECT_DOUBLE_EQ(p.compiler_view_fraction, 0.10);
  EXPECT_DOUBLE_EQ(p.overflow_cap_c1, 0.65);
  EXPECT_DOUBLE_EQ(p.min_free_fraction, 0.50);
  EXPECT_DOUBLE_EQ(p.max_free_fraction, 0.60);
  EXPECT_DOUBLE_EQ(p.delta_reduce, 0.05);
  EXPECT_EQ(p.min_lock_memory_floor, 2 * kMiB);
  EXPECT_EQ(p.min_structures_per_app, 500);
  EXPECT_DOUBLE_EQ(p.maxlocks_p, 98.0);
  EXPECT_DOUBLE_EQ(p.maxlocks_exponent, 3.0);
  EXPECT_EQ(p.maxlocks_refresh_period, 0x80);
  EXPECT_EQ(p.tuning_interval, 30 * kSecond);
}

TEST(ConfigTest, DerivedMaxLockMemory) {
  TuningParams p;
  p.database_memory = kGiB;
  EXPECT_EQ(p.MaxLockMemory(), RoundToBlocks(kGiB / 5));
}

TEST(ConfigTest, DerivedCompilerView) {
  // §3.6: sqlCompilerLockMem = 10 % of databaseMemory.
  TuningParams p;
  p.database_memory = kGiB;
  EXPECT_EQ(p.CompilerLockMemory(), kGiB / 10);
}

TEST(ConfigTest, DerivedOverflowGoal) {
  TuningParams p;
  p.database_memory = kGiB;
  p.overflow_goal_fraction = 0.10;
  EXPECT_EQ(p.OverflowGoal(), kGiB / 10);
}

TEST(ConfigTest, MinLockMemoryFloorDominatesFewApps) {
  // MAX(2 MB, 500 · locksize · num_applications): with few connections the
  // 2 MB floor wins.
  TuningParams p;
  EXPECT_EQ(p.MinLockMemory(0), 2 * kMiB);
  EXPECT_EQ(p.MinLockMemory(1), 2 * kMiB);
  EXPECT_EQ(p.MinLockMemory(60), 2 * kMiB);  // 60·500·64 B = 1.83 MB < 2 MB
}

TEST(ConfigTest, MinLockMemoryScalesWithApps) {
  TuningParams p;
  // 130 apps: 130 · 500 · 64 B ≈ 3.97 MiB, block-rounded up to 4 MiB.
  EXPECT_EQ(p.MinLockMemory(130), RoundUpToBlocks(130 * 500 * 64));
  EXPECT_GT(p.MinLockMemory(130), 2 * kMiB);
  // Monotone in the number of applications.
  EXPECT_LE(p.MinLockMemory(130), p.MinLockMemory(200));
}

TEST(ConfigTest, InitialLockMemoryBlockRounded) {
  TuningParams p;
  p.initial_locklist_pages = 100;  // 0.4 MB → rounds up to 4 blocks
  EXPECT_EQ(p.InitialLockMemory(), 4 * kLockBlockSize);
  p.initial_locklist_pages = 128;  // exactly 4 blocks
  EXPECT_EQ(p.InitialLockMemory(), 4 * kLockBlockSize);
}

TEST(ConfigTest, ValidateRejectsBadFractions) {
  TuningParams p;
  p.max_lock_memory_fraction = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p = TuningParams();
  p.overflow_cap_c1 = 1.5;
  EXPECT_FALSE(p.Validate().ok());
  p = TuningParams();
  p.overflow_goal_fraction = 1.0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ConfigTest, ValidateRejectsInvertedFreeBand) {
  TuningParams p;
  p.min_free_fraction = 0.60;
  p.max_free_fraction = 0.50;
  EXPECT_FALSE(p.Validate().ok());
  p = TuningParams();
  p.max_free_fraction = p.min_free_fraction;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ConfigTest, ValidateRejectsBadSizes) {
  TuningParams p;
  p.database_memory = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = TuningParams();
  p.tuning_interval = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = TuningParams();
  p.initial_locklist_pages = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = TuningParams();
  p.min_lock_memory_floor = kLockBlockSize - 1;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ConfigTest, ValidateRejectsBadCurve) {
  TuningParams p;
  p.maxlocks_p = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p = TuningParams();
  p.maxlocks_exponent = -1.0;
  EXPECT_FALSE(p.Validate().ok());
  p = TuningParams();
  p.maxlocks_refresh_period = 0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ConfigTest, ValidateRejectsBadDeltaReduce) {
  TuningParams p;
  p.delta_reduce = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p.delta_reduce = 1.0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ConfigTest, ValidateRejectsMaxBelowMinFloor) {
  TuningParams p;
  p.database_memory = 4 * kMiB;  // 20 % = 0.8 MB < 2 MB floor
  EXPECT_FALSE(p.Validate().ok());
}

}  // namespace
}  // namespace locktune
