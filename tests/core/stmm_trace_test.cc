// The STMM controller's observability surface: one structured trace record
// per tuning pass (matching the history), and the metric families it
// registers.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/stmm_controller.h"
#include "core/stmm_report.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace locktune {
namespace {

constexpr TableId kTable = 1;

class StmmTraceTest : public ::testing::Test {
 protected:
  void Build() {
    params_.database_memory = 256 * kMiB;
    ASSERT_TRUE(params_.Validate().ok());
    memory_ = std::make_unique<DatabaseMemory>(params_.database_memory,
                                               params_.OverflowGoal());
    bp_ = memory_
              ->RegisterHeap("bp", ConsumerClass::kPerformance,
                             params_.database_memory / 2,
                             params_.database_memory / 16,
                             params_.database_memory)
              .value();
    pmcs_.AddConsumer(bp_, 3.0e18);
    lock_heap_ = memory_
                     ->RegisterHeap("locklist", ConsumerClass::kFunctional,
                                    params_.InitialLockMemory(),
                                    kLockBlockSize, params_.MaxLockMemory())
                     .value();
    policy_ = std::make_unique<AdaptiveMaxlocksPolicy>();
    LockManagerOptions lmo;
    lmo.initial_blocks = BytesToBlocks(params_.InitialLockMemory());
    lmo.max_lock_memory = params_.MaxLockMemory();
    lmo.database_memory = params_.database_memory;
    lmo.policy = policy_.get();
    lmo.grow_callback = [this](int64_t blocks) {
      return stmm_->GrantSynchronousGrowth(blocks);
    };
    locks_ = std::make_unique<LockManager>(std::move(lmo));
    stmm_ = std::make_unique<StmmController>(
        params_, &clock_, memory_.get(), lock_heap_, locks_.get(), &pmcs_,
        [] { return 1; });
  }

  void HoldRows(AppId app, int64_t n) {
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(locks_->Lock(app, RowResource(kTable, i), LockMode::kS)
                    .outcome,
                LockOutcome::kGranted);
    }
  }

  TuningParams params_;
  SimClock clock_;
  std::unique_ptr<DatabaseMemory> memory_;
  MemoryHeap* bp_ = nullptr;
  MemoryHeap* lock_heap_ = nullptr;
  PmcModel pmcs_;
  std::unique_ptr<AdaptiveMaxlocksPolicy> policy_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<StmmController> stmm_;
};

TEST_F(StmmTraceTest, OneRecordPerPassMatchingHistory) {
  Build();
  MemoryTraceSink sink;
  stmm_->set_trace_sink(&sink);
  HoldRows(1, 4000);  // drives some GROW decisions
  for (int i = 0; i < 8; ++i) {
    clock_.Advance(params_.tuning_interval);
    stmm_->RunTuningPass();
  }
  ASSERT_EQ(stmm_->history().size(), 8u);
  ASSERT_EQ(sink.records().size(), 8u);
  for (size_t i = 0; i < sink.records().size(); ++i) {
    const TraceRecord& rec = sink.records()[i];
    const StmmIntervalRecord& hist = stmm_->history()[i];
    EXPECT_EQ(rec.kind(), "tuning_pass");
    EXPECT_EQ(rec.time_ms(), hist.time);
    ASSERT_NE(rec.Find("pass"), nullptr);
    EXPECT_EQ(*rec.Find("pass"), std::to_string(i + 1));
    // The traced action sequence is exactly the --stmm-report sequence.
    ASSERT_NE(rec.Find("action"), nullptr);
    EXPECT_EQ(*rec.Find("action"),
              "\"" + std::string(TunerActionName(hist.action)) + "\"");
    EXPECT_EQ(*rec.Find("allocated_after_bytes"),
              std::to_string(hist.lock_allocated));
    EXPECT_EQ(*rec.Find("lmoc_bytes"), std::to_string(hist.lmoc));
    // Every decision carries a non-trivial narrative.
    ASSERT_NE(rec.Find("why"), nullptr);
    EXPECT_GT(rec.Find("why")->size(), 10u);
  }
}

TEST_F(StmmTraceTest, NoSinkMeansNoTracing) {
  Build();
  stmm_->RunTuningPass();  // must not crash without a sink
  EXPECT_EQ(stmm_->history().size(), 1u);
}

TEST_F(StmmTraceTest, RegisterMetricsExposesTunerState) {
  Build();
  MetricsRegistry reg;
  stmm_->RegisterMetrics(&reg);
  HoldRows(1, 4000);
  for (int i = 0; i < 5; ++i) stmm_->RunTuningPass();

  double passes = 0.0;
  double action_sum = 0.0;
  double resize_count = 0.0;
  double lmoc = -1.0;
  bool saw_free_fraction = false;
  for (const MetricSample& s : reg.Collect()) {
    if (s.name == "locktune_stmm_passes_total") passes = s.value;
    if (MetricFamily(s.name) == "locktune_stmm_pass_actions_total") {
      action_sum += s.value;
    }
    if (s.name == "locktune_stmm_resize_bytes") {
      resize_count = static_cast<double>(s.histogram.total);
    }
    if (s.name == "locktune_stmm_lmoc_bytes") lmoc = s.value;
    if (s.name == "locktune_stmm_free_fraction") saw_free_fraction = true;
  }
  EXPECT_DOUBLE_EQ(passes, 5.0);
  // Every pass increments exactly one per-action counter and observes one
  // resize magnitude.
  EXPECT_DOUBLE_EQ(action_sum, 5.0);
  EXPECT_DOUBLE_EQ(resize_count, 5.0);
  EXPECT_DOUBLE_EQ(lmoc, static_cast<double>(stmm_->lmoc()));
  EXPECT_TRUE(saw_free_fraction);
}

}  // namespace
}  // namespace locktune
