// End-to-end smoke test for the locktune_sim binary: runs the Figure 9 ramp
// scenario with --metrics-out / --trace-out and checks both outputs parse
// (strict JSONL validation, Prometheus line shape), that the decision trace
// matches the run summary, and that bad flags are rejected.
//
// The binary path comes from the LOCKTUNE_SIM_BINARY compile definition
// (see tests/CMakeLists.txt).
#include <sys/wait.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace locktune {
namespace {

// --- a minimal strict JSON value parser (objects/arrays/strings/numbers) ---

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool ParseValue() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseObject() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseString()) return false;  // key
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      if (!ParseValue()) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!ParseValue()) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_];
        if (esc == 'u') {
          if (pos_ + 4 >= s_.size()) return false;
          for (int i = 1; i <= 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

bool IsValidJsonObject(const std::string& line) {
  if (line.empty() || line[0] != '{') return false;
  JsonParser p(line);
  return p.ParseValue() && p.AtEnd();
}

// --- subprocess helpers ---

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "sim_smoke_" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

int RunSim(const std::string& args, const std::string& stdout_path,
           const std::string& stderr_path) {
  const std::string cmd = std::string(LOCKTUNE_SIM_BINARY) + " " +
                          LOCKTUNE_SOURCE_DIR "/scenarios/fig9_ramp.conf " +
                          args + " > " + stdout_path + " 2> " + stderr_path;
  const int status = std::system(cmd.c_str());
  return status < 0 ? status : WEXITSTATUS(status);
}

TEST(SimSmokeTest, MetricsAndTraceFilesParse) {
  const std::string trace_path = TempPath("trace.jsonl");
  const std::string prom_path = TempPath("metrics.prom");
  ASSERT_EQ(RunSim("--trace-out " + trace_path + " --metrics-out " +
                       prom_path + " --stmm-report",
                   TempPath("out.txt"), TempPath("err.txt")),
            0);

  // Every trace line is a complete JSON object; tuning passes are present.
  const std::vector<std::string> trace_lines = Lines(ReadFile(trace_path));
  ASSERT_GT(trace_lines.size(), 0u);
  int tuning_passes = 0;
  for (const std::string& line : trace_lines) {
    ASSERT_TRUE(IsValidJsonObject(line)) << "bad JSONL line: " << line;
    EXPECT_NE(line.find("\"t_ms\":"), std::string::npos);
    EXPECT_NE(line.find("\"kind\":"), std::string::npos);
    if (line.find("\"kind\":\"tuning_pass\"") != std::string::npos) {
      ++tuning_passes;
      EXPECT_NE(line.find("\"action\":"), std::string::npos);
      EXPECT_NE(line.find("\"why\":"), std::string::npos);
    }
  }
  EXPECT_GT(tuning_passes, 0);

  // One decision record per tuning pass: the trace count matches the
  // `tuning_passes=N` run summary on stderr.
  const std::string err = ReadFile(TempPath("err.txt"));
  const size_t at = err.find("tuning_passes=");
  ASSERT_NE(at, std::string::npos);
  EXPECT_EQ(tuning_passes,
            std::atoi(err.c_str() + at + std::string("tuning_passes=").size()));

  // The Prometheus dump has well-formed lines and all four subsystem
  // families.
  const std::string prom = ReadFile(prom_path);
  for (const std::string& line : Lines(prom)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
    } else {
      // `name{labels} value` or `name value`.
      const size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      EXPECT_GT(space, 0u) << line;
      char* end = nullptr;
      std::strtod(line.c_str() + space + 1, &end);
      EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;
    }
  }
  EXPECT_NE(prom.find("locktune_lock_requests_total"), std::string::npos);
  EXPECT_NE(prom.find("locktune_memory_total_bytes"), std::string::npos);
  EXPECT_NE(prom.find("locktune_stmm_passes_total"), std::string::npos);
  EXPECT_NE(prom.find("locktune_workload_commits_total"), std::string::npos);
  EXPECT_NE(prom.find("locktune_lock_wait_time_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);
}

TEST(SimSmokeTest, DashWritesBothStreamsToStdout) {
  const std::string out_path = TempPath("dash_out.txt");
  ASSERT_EQ(RunSim("--metrics-out - --trace-out -", out_path,
                   TempPath("dash_err.txt")),
            0);
  const std::string out = ReadFile(out_path);
  EXPECT_NE(out.find("\"kind\":\"tuning_pass\""), std::string::npos);
  EXPECT_NE(out.find("# TYPE locktune_stmm_passes_total counter"),
            std::string::npos);
}

TEST(SimSmokeTest, CsvExtensionSelectsCsvExporter) {
  const std::string csv_path = TempPath("metrics.csv");
  ASSERT_EQ(RunSim("--metrics-out " + csv_path, TempPath("csv_out.txt"),
                   TempPath("csv_err.txt")),
            0);
  const std::vector<std::string> lines = Lines(ReadFile(csv_path));
  ASSERT_GT(lines.size(), 1u);
  EXPECT_EQ(lines[0], "metric,value");
  for (size_t i = 1; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find(','), std::string::npos) << lines[i];
  }
}

TEST(SimSmokeTest, RejectsNonPositiveOrGarbageStride) {
  EXPECT_NE(RunSim("--stride 0", TempPath("s0_out.txt"),
                   TempPath("s0_err.txt")),
            0);
  EXPECT_NE(ReadFile(TempPath("s0_err.txt")).find("positive integer"),
            std::string::npos);
  EXPECT_NE(RunSim("--stride banana", TempPath("sb_out.txt"),
                   TempPath("sb_err.txt")),
            0);
  EXPECT_NE(RunSim("--stride 15x", TempPath("sx_out.txt"),
                   TempPath("sx_err.txt")),
            0);
}

}  // namespace
}  // namespace locktune
