// Drives the locklint binary over the fixture tree and asserts exact rule
// ids and line numbers — one fixture per rule plus a clean file proving
// that comments, strings, and reasoned suppressions do not trip the linter.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

std::string FixtureRoot() {
  return std::string(LOCKTUNE_SOURCE_DIR) + "/tests/tools/locklint/fixtures";
}

LintRun RunLocklint(const std::string& args) {
  const std::string cmd = std::string(LOCKLINT_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  LintRun run;
  char buf[4096];
  while (pipe != nullptr && fgets(buf, sizeof(buf), pipe) != nullptr) {
    run.output += buf;
  }
  if (pipe != nullptr) {
    const int rc = pclose(pipe);
    run.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  }
  return run;
}

// Asserts a violation at exactly <fixture-relative file>:<line> with <rule>.
void ExpectViolation(const LintRun& run, const std::string& rel_file,
                     int line, const std::string& rule) {
  const std::string needle =
      rel_file + ":" + std::to_string(line) + ": " + rule + ":";
  EXPECT_NE(run.output.find(needle), std::string::npos)
      << "missing '" << needle << "' in:\n"
      << run.output;
}

TEST(LocklintTest, WallclockRule) {
  const LintRun run = RunLocklint(FixtureRoot() + "/wallclock.cc");
  EXPECT_EQ(run.exit_code, 1);
  ExpectViolation(run, "wallclock.cc", 7, "LL001");
  ExpectViolation(run, "wallclock.cc", 11, "LL001");
  ExpectViolation(run, "wallclock.cc", 15, "LL001");
  EXPECT_NE(run.output.find("3 violation(s)"), std::string::npos)
      << run.output;
}

TEST(LocklintTest, UnorderedIterationRule) {
  const LintRun run = RunLocklint(FixtureRoot() + "/unordered_iter.cc");
  EXPECT_EQ(run.exit_code, 1);
  ExpectViolation(run, "unordered_iter.cc", 9, "LL002");
  EXPECT_NE(run.output.find("1 violation(s)"), std::string::npos)
      << run.output;
}

TEST(LocklintTest, FloatAccountingRule) {
  const LintRun run =
      RunLocklint(FixtureRoot() + "/src/memory/block_list.h");
  EXPECT_EQ(run.exit_code, 1);
  ExpectViolation(run, "block_list.h", 8, "LL003");
  EXPECT_NE(run.output.find("1 violation(s)"), std::string::npos)
      << run.output;
}

TEST(LocklintTest, RawAllocRule) {
  const LintRun run = RunLocklint(FixtureRoot() + "/src/lock/raw_alloc.cc");
  EXPECT_EQ(run.exit_code, 1);
  ExpectViolation(run, "raw_alloc.cc", 5, "LL004");
  ExpectViolation(run, "raw_alloc.cc", 9, "LL004");
  EXPECT_NE(run.output.find("2 violation(s)"), std::string::npos)
      << run.output;
}

TEST(LocklintTest, NodiscardRule) {
  const LintRun run = RunLocklint(FixtureRoot() + "/nodiscard.h");
  EXPECT_EQ(run.exit_code, 1);
  ExpectViolation(run, "nodiscard.h", 7, "LL005");
  // The [[nodiscard]]-annotated declaration on line 9 must not be flagged.
  EXPECT_NE(run.output.find("1 violation(s)"), std::string::npos)
      << run.output;
}

TEST(LocklintTest, RawAssertRule) {
  const LintRun run = RunLocklint(FixtureRoot() + "/raw_assert.cc");
  EXPECT_EQ(run.exit_code, 1);
  ExpectViolation(run, "raw_assert.cc", 5, "LL006");
  EXPECT_NE(run.output.find("1 violation(s)"), std::string::npos)
      << run.output;
}

TEST(LocklintTest, AddressOrderRule) {
  const LintRun run = RunLocklint(FixtureRoot() + "/addr_order.cc");
  EXPECT_EQ(run.exit_code, 1);
  ExpectViolation(run, "addr_order.cc", 8, "LL007");
  ExpectViolation(run, "addr_order.cc", 11, "LL007");
  EXPECT_NE(run.output.find("2 violation(s)"), std::string::npos)
      << run.output;
}

TEST(LocklintTest, FaultGateRule) {
  const LintRun run =
      RunLocklint(FixtureRoot() + "/src/memory/fault_gate.cc");
  EXPECT_EQ(run.exit_code, 1);
  ExpectViolation(run, "fault_gate.cc", 5, "LL008");
  // The Armed()-gated hook on line 10 and the suppressed hook on line 16
  // must not be flagged.
  EXPECT_NE(run.output.find("1 violation(s)"), std::string::npos)
      << run.output;
}

TEST(LocklintTest, ProfileTimingRule) {
  const LintRun run =
      RunLocklint(FixtureRoot() + "/src/lock/profile_timing.cc");
  EXPECT_EQ(run.exit_code, 1);
  ExpectViolation(run, "profile_timing.cc", 5, "LL009");
  // The LOCKTUNE_PROFILE-gated call on line 10 and the suppressed call on
  // line 16 must not be flagged.
  EXPECT_NE(run.output.find("1 violation(s)"), std::string::npos)
      << run.output;
}

TEST(LocklintTest, ShardLatchRule) {
  const LintRun run =
      RunLocklint(FixtureRoot() + "/src/lock/shard_latch.cc");
  EXPECT_EQ(run.exit_code, 1);
  ExpectViolation(run, "shard_latch.cc", 8, "LL010");   // raw mutex member
  ExpectViolation(run, "shard_latch.cc", 12, "LL010");  // std::lock_guard
  ExpectViolation(run, "shard_latch.cc", 16, "LL010");  // raw .lock() call
  // The .unlock() on line 17, the OptLatchGuard use on line 21, and the
  // suppressed acquisition on line 25 must not be flagged.
  EXPECT_NE(run.output.find("3 violation(s)"), std::string::npos)
      << run.output;
}

TEST(LocklintTest, LockOrderRule) {
  const LintRun run = RunLocklint(FixtureRoot() + "/src/lock/lock_cycle.cc");
  EXPECT_EQ(run.exit_code, 1);
  // The forward path (a_ rank 10, then b_ rank 30) is legal on its own;
  // the backward path's second acquisition violates the hierarchy, and the
  // pair of edges closes a cycle, reported at the smallest edge site.
  ExpectViolation(run, "lock_cycle.cc", 16, "LL011");  // cycle {a_, b_}
  ExpectViolation(run, "lock_cycle.cc", 22, "LL011");  // rank 30 -> 10
  EXPECT_NE(run.output.find("static deadlock"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("2 violation(s)"), std::string::npos)
      << run.output;
}

TEST(LocklintTest, RelaxedAtomicsRule) {
  const LintRun run = RunLocklint(FixtureRoot() + "/src/lock/lock_table.cc");
  EXPECT_EQ(run.exit_code, 1);
  ExpectViolation(run, "lock_table.cc", 13, "LL012");  // stray relaxed load
  ExpectViolation(run, "lock_table.cc", 19, "LL012");  // write in section
  // Line 18 (relaxed LOAD inside the ReadBegin/ReadValidate section) and
  // line 25 (reasoned order: relaxed-ok) must not be flagged; the unused
  // suppression on line 29 is stale.
  ExpectViolation(run, "lock_table.cc", 29, "LL000");
  EXPECT_NE(run.output.find("stale suppression"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("3 violation(s)"), std::string::npos)
      << run.output;
}

TEST(LocklintTest, HotColumnRule) {
  const LintRun run = RunLocklint(FixtureRoot() + "/hot_column.cc");
  EXPECT_EQ(run.exit_code, 1);
  ExpectViolation(run, "hot_column.cc", 10, "LL013");  // std::string member
  ExpectViolation(run, "hot_column.cc", 11, "LL013");  // virtual method
  // GoodEntry (POD) and the unannotated ColdRow must not be flagged; the
  // reasoned hotcolumn-ok suppression holds; the orphan marker at the end
  // is its own finding.
  ExpectViolation(run, "hot_column.cc", 33, "LL000");
  EXPECT_NE(run.output.find("3 violation(s)"), std::string::npos)
      << run.output;
}

TEST(LocklintTest, JsonOutput) {
  const LintRun clean = RunLocklint("--json " + FixtureRoot() + "/clean.cc");
  EXPECT_EQ(clean.exit_code, 0);
  EXPECT_NE(clean.output.find("\"violations\": []"), std::string::npos)
      << clean.output;
  EXPECT_NE(clean.output.find("\"files_scanned\": 1"), std::string::npos)
      << clean.output;

  const LintRun bad =
      RunLocklint("--json " + FixtureRoot() + "/raw_assert.cc");
  EXPECT_EQ(bad.exit_code, 1);  // exit codes match the text mode
  EXPECT_NE(bad.output.find("\"rule\": \"LL006\""), std::string::npos)
      << bad.output;
  EXPECT_NE(bad.output.find("\"line\": 5"), std::string::npos) << bad.output;
}

TEST(LocklintTest, LockOrderGraphMatchesGolden) {
  const std::string src = std::string(LOCKTUNE_SOURCE_DIR);
  const std::string out = ::testing::TempDir() + "locklint_graph.dot";
  const LintRun run =
      RunLocklint("--lock-graph " + out + " " + src + "/src");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  std::ifstream got_file(out);
  std::ifstream want_file(src + "/tests/golden/lock_order_graph.dot");
  ASSERT_TRUE(got_file.good());
  ASSERT_TRUE(want_file.good());
  std::stringstream got, want;
  got << got_file.rdbuf();
  want << want_file.rdbuf();
  EXPECT_EQ(got.str(), want.str())
      << "the src/ lock-order graph drifted from the golden; inspect the "
         "new edges, then regenerate with:\n  locklint --lock-graph "
         "tests/golden/lock_order_graph.dot src";
}

TEST(LocklintTest, EmptyReasonIsItsOwnViolation) {
  const LintRun run = RunLocklint(FixtureRoot() + "/bad_annotation.cc");
  EXPECT_EQ(run.exit_code, 1);
  ExpectViolation(run, "bad_annotation.cc", 5, "LL000");
  // The empty suppression must not double-report the underlying LL006.
  EXPECT_EQ(run.output.find("LL006"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("1 violation(s)"), std::string::npos)
      << run.output;
}

TEST(LocklintTest, CleanFilePasses) {
  const LintRun run = RunLocklint(FixtureRoot() + "/clean.cc");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.output.find("0 violation(s)"), std::string::npos)
      << run.output;
}

TEST(LocklintTest, WholeFixtureTreeIsDeterministicallySorted) {
  const LintRun run = RunLocklint(FixtureRoot());
  EXPECT_EQ(run.exit_code, 1);
  // 3 wallclock + 1 unordered + 1 float + 2 alloc + 1 nodiscard + 1 assert
  // + 2 addr + 1 faultgate + 1 profile + 3 shardlatch + 1 bad-annotation
  // + 2 lockorder + 2 relaxed + 1 stale-suppression + 2 hotcolumn
  // + 1 orphan hot-column marker = 25, and a second run must be identical.
  EXPECT_NE(run.output.find("25 violation(s)"), std::string::npos)
      << run.output;
  const LintRun again = RunLocklint(FixtureRoot());
  EXPECT_EQ(run.output, again.output);
}

TEST(LocklintTest, ListRules) {
  const LintRun run = RunLocklint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* id : {"LL000", "LL001", "LL002", "LL003", "LL004",
                         "LL005", "LL006", "LL007", "LL008", "LL009",
                         "LL010", "LL011", "LL012", "LL013"}) {
    EXPECT_NE(run.output.find(id), std::string::npos) << run.output;
  }
}

TEST(LocklintTest, UsageErrors) {
  EXPECT_EQ(RunLocklint("").exit_code, 2);
  EXPECT_EQ(RunLocklint("/nonexistent/path/locklint-fixture").exit_code, 2);
  EXPECT_EQ(RunLocklint("--bogus-flag").exit_code, 2);
}

TEST(LocklintTest, RepoLintsClean) {
  const std::string src = std::string(LOCKTUNE_SOURCE_DIR);
  const LintRun run =
      RunLocklint(src + "/src " + src + "/tools " + src + "/bench");
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

}  // namespace
