// LL001 fixture: wall-clock and libc randomness sources.
#include <chrono>
#include <cstdlib>
#include <ctime>

long Now() {
  return time(nullptr);  // locklint_test expects LL001 on line 7
}

int Noise() {
  return rand();  // locklint_test expects LL001 on line 11
}

long NowNs() {
  auto t = std::chrono::system_clock::now();  // LL001 on line 15
  return t.time_since_epoch().count();
}
