// LL010 fixture: raw mutex acquisition on shard state. The sanctioned
// OptLatch forms and a reasoned suppression must stay clean.
#include <mutex>

struct OptLatchGuard {};  // stand-in for the real guard

struct Shard {
  std::mutex shard_mu;
};

void BadGuard(Shard& s) {
  std::lock_guard<std::mutex> guard(s.shard_mu);
}

void BadCall(Shard& s) {
  s.shard_mu.lock();
  s.shard_mu.unlock();
}

void Good() {
  OptLatchGuard shard_guard;  // capitalized API: not a raw acquisition
}

// locklint: shardlatch-ok(drain path; runs after all readers have exited)
void Suppressed(Shard& s) { s.shard_mu.lock(); }
