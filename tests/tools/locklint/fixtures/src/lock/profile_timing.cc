// LL009 fixture: timing calls in a src/lock/ path must be profile-gated.
#include <chrono>

uint64_t Ungated() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

#if defined(LOCKTUNE_PROFILE)
uint64_t Gated() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
#endif

uint64_t Suppressed() {
  // locklint: profile-ok(cold snapshot path, not per-request)
  return std::chrono::high_resolution_clock::now().time_since_epoch().count();
}
