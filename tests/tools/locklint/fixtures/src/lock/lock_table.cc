// locklint LL012 fixture: memory_order_relaxed on shard state.
//
//  * StrayRead      — relaxed load outside any recognized discipline: LL012.
//  * SectionRead    — the relaxed LOAD inside the ReadBegin/ReadValidate
//                     section is fine; the relaxed STORE on the next line is
//                     not (writes are never excused by a read section): LL012.
//  * ExcusedRead    — same stray load, carrying a reasoned
//                     order: relaxed-ok annotation: clean.
//  * Plain          — carries a suppression that gates nothing: LL000 stale.
namespace fixture {

uint64_t StrayRead(const State& s) {
  return s.word.load(std::memory_order_relaxed);
}

bool SectionRead(State& s) {
  const uint64_t v = s.gate.ReadBegin();
  const uint64_t meta = s.word.load(std::memory_order_relaxed);
  s.scratch.store(meta, std::memory_order_relaxed);
  return s.gate.ReadValidate(v);
}

uint64_t ExcusedRead(const State& s) {
  // order: relaxed-ok(fixture: monotonic statistic read after join)
  return s.word.load(std::memory_order_relaxed);
}

uint64_t Plain(const State& s) {
  // locklint: wallclock-ok(stale: the next line reads no clock)
  return s.counter;
}

}  // namespace fixture
