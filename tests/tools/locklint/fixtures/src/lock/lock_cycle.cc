// locklint LL011 fixture: two ranked locks acquired in both orders. The
// forward path respects the hierarchy; the backward path violates it and,
// together with the forward path, closes a lock-order cycle (a static
// deadlock: one thread in Forward() and one in Backward() can each hold
// the lock the other wants).
//
// The ranks come from src/common/lock_rank_table.h's constants, but the
// canonical names are fixture-local, so this file cannot collide with the
// real repo graph.
namespace fixture {

class Widget {
 public:
  void Forward() {
    MutexLock outer(a_);
    MutexLock inner(b_);
    Touch();
  }

  void Backward() {
    MutexLock inner(b_);
    MutexLock outer(a_);
    Touch();
  }

 private:
  void Touch() {}

  Mutex a_{kLockRankManagerOuter, "Widget::a_"};
  Mutex b_{kLockRankAlloc, "Widget::b_"};
};

}  // namespace fixture
