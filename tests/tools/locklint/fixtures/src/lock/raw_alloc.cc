// LL004 fixture: raw allocation in a file under a src/lock/ path.
struct LockNode {};

LockNode* Make() {
  return new LockNode();  // locklint_test expects LL004 on line 5
}

void Destroy(LockNode* n) {
  delete n;  // locklint_test expects LL004 on line 9
}
