// LL003 fixture: floating point in an accounting-scoped basename
// (block_list.h) under a src/memory/ path.
#ifndef FIXTURE_BLOCK_LIST_H_
#define FIXTURE_BLOCK_LIST_H_

struct BlockStats {
  long used_bytes = 0;
  double fill_ratio = 0.0;  // locklint_test expects LL003 on line 8
};

#endif  // FIXTURE_BLOCK_LIST_H_
