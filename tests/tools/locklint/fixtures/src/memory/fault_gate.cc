// LL008 fixture: a fault hook without an Armed() fast-path guard nearby.
namespace locktune {

void UngatedHook(FaultPlan* fault_plan) {
  fault_plan->OnHeapGrow(1, 2, 3);
}

void GatedHook(FaultPlan* fault_plan) {
  if (fault_plan != nullptr && fault_plan->Armed()) {
    fault_plan->OnHeapGrow(1, 2, 3);
  }
}

void SuppressedHook(FaultPlan* fault_plan) {
  // locklint: faultgate-ok(cold shutdown path, armed checked by the caller)
  fault_plan->OnKill(7);
}

}  // namespace locktune
