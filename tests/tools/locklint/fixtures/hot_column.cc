// LL013 fixture: hot-column structs must stay trivially copyable.
#include <memory>
#include <string>

namespace fixture {

// locklint: hot-column
struct BadEntry {
  int index = 0;
  std::string label;  // flagged: owning member in a hot row
  virtual void Tick();  // flagged: vtable pointer breaks memcpy moves
};

// locklint: hot-column
struct GoodEntry {
  unsigned index = 0;
  long due = 0;
};

// Unannotated structs may own whatever they like.
struct ColdRow {
  std::string name;
  std::unique_ptr<int> state;
};

// locklint: hot-column
struct SuppressedEntry {
  int index = 0;
  // locklint: hotcolumn-ok(cold side pointer, excluded from the sweep)
  std::shared_ptr<int> side;
};

// locklint: hot-column
// (no struct follows: the marker itself is the finding)
int orphan_marker = 0;

}  // namespace fixture
