// Clean fixture: banned tokens in comments or strings do not count, and a
// properly-annotated suppression (with a reason) silences its rule.
// Comment mentions of rand() and system_clock are fine here.
#include <cassert>
#include <unordered_map>

const char* kDoc = "call time(nullptr) and rand() at your peril";

std::unordered_map<int, int> lookup;

int Sum() {
  int s = 0;
  // locklint: ordered-ok(test fixture; commutative sum, order-insensitive)
  for (const auto& [k, v] : lookup) s += v;
  return s;
}

void Check(int n) {
  assert(n >= 0);  // locklint: assert-ok(fixture exercising suppression)
}
