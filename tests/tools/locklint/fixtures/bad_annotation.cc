// LL000 fixture: a suppression with an empty reason is itself a violation.
#include <cassert>

void Validate(int n) {
  assert(n > 0);  // locklint: assert-ok()
}
// locklint_test expects LL000 on line 5
