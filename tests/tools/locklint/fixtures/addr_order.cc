// LL007 fixture: address-ordered behavior.
#include <cstdint>
#include <set>

struct Node {};

uintptr_t Key(Node* n) {
  return reinterpret_cast<uintptr_t>(n);  // locklint_test expects LL007 line 8
}

std::set<Node*> live_nodes;  // locklint_test expects LL007 on line 11
