// LL005 fixture: Status-returning declarations without [[nodiscard]].
#ifndef FIXTURE_NODISCARD_H_
#define FIXTURE_NODISCARD_H_

struct Status {};

Status Leaky();  // locklint_test expects LL005 on line 7

[[nodiscard]] Status Fine();

#endif  // FIXTURE_NODISCARD_H_
