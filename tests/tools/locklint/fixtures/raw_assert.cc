// LL006 fixture: raw assert instead of LOCKTUNE_CHECK/LOCKTUNE_DCHECK.
#include <cassert>

void Validate(int n) {
  assert(n > 0);  // locklint_test expects LL006 on line 5
}
