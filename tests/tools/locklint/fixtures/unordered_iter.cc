// LL002 fixture: iteration over an unordered container without an
// ordered-ok annotation.
#include <unordered_map>

std::unordered_map<int, long> counts;

long Total() {
  long total = 0;
  for (const auto& [k, v] : counts) {  // locklint_test expects LL002 line 9
    total += v;
  }
  return total;
}
