#include "baseline/oracle_itl.h"

#include <gtest/gtest.h>

namespace locktune {
namespace {

using RowLockOutcome = OracleItlSimulator::RowLockOutcome;

OracleItlOptions SmallPages() {
  OracleItlOptions o;
  o.rows_per_page = 10;
  o.initial_itl_slots = 2;
  o.max_itl_slots = 3;
  return o;
}

TEST(OracleItlTest, GrantsExclusiveRowLock) {
  OracleItlSimulator sim(SmallPages());
  EXPECT_EQ(sim.LockRow(1, 0, 5), RowLockOutcome::kGranted);
  EXPECT_EQ(sim.stats().grants, 1);
}

TEST(OracleItlTest, RelockByOwnerIsNoop) {
  OracleItlSimulator sim(SmallPages());
  ASSERT_EQ(sim.LockRow(1, 0, 5), RowLockOutcome::kGranted);
  EXPECT_EQ(sim.LockRow(1, 0, 5), RowLockOutcome::kGranted);
  EXPECT_EQ(sim.stats().grants, 1);  // no second grant recorded
}

TEST(OracleItlTest, ConflictOnActiveOwnerWaits) {
  OracleItlSimulator sim(SmallPages());
  ASSERT_EQ(sim.LockRow(1, 0, 5), RowLockOutcome::kGranted);
  EXPECT_EQ(sim.LockRow(2, 0, 5), RowLockOutcome::kWaitRow);
  EXPECT_EQ(sim.stats().row_waits, 1);
}

TEST(OracleItlTest, CommittedOwnerLeavesStaleLockByte) {
  OracleItlSimulator sim(SmallPages());
  ASSERT_EQ(sim.LockRow(1, 0, 5), RowLockOutcome::kGranted);
  sim.Commit(1);
  // The lock byte is still set; the next visitor pays the cleanout.
  EXPECT_EQ(sim.LockRow(2, 0, 5), RowLockOutcome::kGranted);
  EXPECT_GE(sim.stats().cleanouts, 1);
}

TEST(OracleItlTest, ItlExhaustionBlocksEvenFreeRows) {
  // 3 max slots: transactions 1-3 occupy them; txn 4 must wait for an ITL
  // slot even though its target row is completely unlocked.
  OracleItlSimulator sim(SmallPages());
  ASSERT_EQ(sim.LockRow(1, 0, 0), RowLockOutcome::kGranted);
  ASSERT_EQ(sim.LockRow(2, 0, 1), RowLockOutcome::kGranted);
  ASSERT_EQ(sim.LockRow(3, 0, 2), RowLockOutcome::kGranted);
  EXPECT_EQ(sim.LockRow(4, 0, 3), RowLockOutcome::kWaitItl);
  EXPECT_EQ(sim.stats().itl_waits, 1);
  // A commit frees a reusable slot.
  sim.Commit(1);
  EXPECT_EQ(sim.LockRow(4, 0, 3), RowLockOutcome::kGranted);
}

TEST(OracleItlTest, ItlGrowthConsumesPermanentPageSpace) {
  OracleItlOptions o = SmallPages();
  OracleItlSimulator sim(o);
  ASSERT_EQ(sim.LockRow(1, 0, 0), RowLockOutcome::kGranted);
  ASSERT_EQ(sim.LockRow(2, 0, 1), RowLockOutcome::kGranted);
  EXPECT_EQ(sim.ExtraItlBytes(), 0);
  // Third transaction forces an ITL slot to be added (2 initial → 3).
  ASSERT_EQ(sim.LockRow(3, 0, 2), RowLockOutcome::kGranted);
  EXPECT_EQ(sim.ExtraItlBytes(), o.itl_entry_bytes);
  EXPECT_EQ(sim.stats().itl_slots_added, 1);
  // Commits do NOT reclaim the space (only a reorg would).
  sim.Commit(1);
  sim.Commit(2);
  sim.Commit(3);
  EXPECT_EQ(sim.ExtraItlBytes(), o.itl_entry_bytes);
}

TEST(OracleItlTest, QueueJumpingOnPolledWaits) {
  OracleItlSimulator sim(SmallPages());
  ASSERT_EQ(sim.LockRow(1, 0, 5), RowLockOutcome::kGranted);
  // Txn 2 starts waiting (sleep-wake-check).
  ASSERT_EQ(sim.LockRow(2, 0, 5), RowLockOutcome::kWaitRow);
  sim.Commit(1);
  // Txn 3 arrives after txn 2 but grabs the row first: queue jump.
  EXPECT_EQ(sim.LockRow(3, 0, 5), RowLockOutcome::kGranted);
  EXPECT_EQ(sim.stats().queue_jumps, 1);
  // Txn 2 wakes up, checks, and must keep waiting.
  EXPECT_EQ(sim.LockRow(2, 0, 5), RowLockOutcome::kWaitRow);
}

TEST(OracleItlTest, NoQueueJumpWhenFirstWaiterWins) {
  OracleItlSimulator sim(SmallPages());
  ASSERT_EQ(sim.LockRow(1, 0, 5), RowLockOutcome::kGranted);
  ASSERT_EQ(sim.LockRow(2, 0, 5), RowLockOutcome::kWaitRow);
  sim.Commit(1);
  EXPECT_EQ(sim.LockRow(2, 0, 5), RowLockOutcome::kGranted);
  EXPECT_EQ(sim.stats().queue_jumps, 0);
}

TEST(OracleItlTest, RowsOnDifferentPagesIndependent) {
  OracleItlOptions o = SmallPages();  // 10 rows per page
  OracleItlSimulator sim(o);
  // Rows 0..9 on page 0, rows 10..19 on page 1.
  ASSERT_EQ(sim.LockRow(1, 0, 0), RowLockOutcome::kGranted);
  ASSERT_EQ(sim.LockRow(2, 0, 1), RowLockOutcome::kGranted);
  ASSERT_EQ(sim.LockRow(3, 0, 2), RowLockOutcome::kGranted);
  // Page 0's ITL is full; page 1 is unaffected.
  EXPECT_EQ(sim.LockRow(4, 0, 3), RowLockOutcome::kWaitItl);
  EXPECT_EQ(sim.LockRow(4, 0, 15), RowLockOutcome::kGranted);
}

TEST(OracleItlTest, SlotReuseCleansStaleBytes) {
  OracleItlSimulator sim(SmallPages());
  ASSERT_EQ(sim.LockRow(1, 0, 0), RowLockOutcome::kGranted);
  ASSERT_EQ(sim.LockRow(1, 0, 1), RowLockOutcome::kGranted);
  sim.Commit(1);
  // Txn 2 reuses txn 1's slot; txn 1's stale bytes are cleaned then.
  ASSERT_EQ(sim.LockRow(2, 0, 5), RowLockOutcome::kGranted);
  EXPECT_GE(sim.stats().cleanouts, 2);
  // Rows 0 and 1 are lockable with no further cleanout cost.
  const int64_t cleanouts = sim.stats().cleanouts;
  EXPECT_EQ(sim.LockRow(2, 0, 0), RowLockOutcome::kGranted);
  EXPECT_EQ(sim.stats().cleanouts, cleanouts);
}

TEST(OracleItlTest, ManyTablesManyPages) {
  OracleItlSimulator sim(OracleItlOptions{});
  for (TableId t = 0; t < 5; ++t) {
    for (int64_t r = 0; r < 1000; ++r) {
      ASSERT_EQ(sim.LockRow(t + 1, t, r), RowLockOutcome::kGranted);
    }
  }
  EXPECT_EQ(sim.stats().grants, 5000);
  EXPECT_EQ(sim.stats().itl_waits, 0);
}

}  // namespace
}  // namespace locktune
