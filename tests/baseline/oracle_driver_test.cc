#include "baseline/oracle_driver.h"

#include <gtest/gtest.h>

namespace locktune {
namespace {

OracleClientOptions SmallTable() {
  OracleClientOptions o;
  o.table_rows = 2000;
  o.updates_per_txn = 10;
  o.updates_per_tick = 5;
  o.think_time = 200;
  return o;
}

TEST(OracleDriverTest, ClientsCommitTransactions) {
  OracleItlSimulator itl(OracleItlOptions{});
  OracleScenarioRunner runner(&itl, /*clients=*/8, SmallTable(), /*seed=*/1);
  runner.Run(kMinute);
  EXPECT_GT(runner.stats().commits, 100);
  // ~10 updates per commit (re-locking an already-owned row counts as an
  // update for the client but not as a new grant in the simulator).
  EXPECT_GE(itl.stats().grants, runner.stats().commits * 9);
}

TEST(OracleDriverTest, DeterministicPerSeed) {
  const auto run = [](uint64_t seed) {
    OracleItlSimulator itl(OracleItlOptions{});
    OracleScenarioRunner runner(&itl, 8, SmallTable(), seed);
    runner.Run(30 * kSecond);
    return runner.stats().commits;
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(OracleDriverTest, HotRowsProduceRetriesAndQueueJumps) {
  OracleClientOptions hot = SmallTable();
  hot.table_rows = 40;  // brutal contention
  hot.row_zipf_theta = 0.9;
  OracleItlSimulator itl(OracleItlOptions{});
  OracleScenarioRunner runner(&itl, 16, hot, /*seed=*/3);
  runner.Run(kMinute);
  EXPECT_GT(runner.stats().retries, 0);
  // The polled discipline lets later arrivals overtake sleepers.
  EXPECT_GT(itl.stats().queue_jumps, 0);
  EXPECT_GT(runner.stats().commits, 0);  // forward progress regardless
}

TEST(OracleDriverTest, TinyPagesExhaustItl) {
  OracleItlOptions page_opts;
  page_opts.rows_per_page = 50;
  page_opts.initial_itl_slots = 1;
  page_opts.max_itl_slots = 2;
  OracleItlSimulator itl(page_opts);
  OracleClientOptions o = SmallTable();
  o.table_rows = 200;  // 4 pages, 2 slots each, 16 writers
  OracleScenarioRunner runner(&itl, 16, o, /*seed=*/5);
  runner.Run(kMinute);
  // Free rows blocked behind full ITLs: the paper's second criticism.
  EXPECT_GT(itl.stats().itl_waits, 0);
}

TEST(OracleDriverTest, SamplesSeries) {
  OracleItlSimulator itl(OracleItlOptions{});
  OracleScenarioRunner runner(&itl, 4, SmallTable(), /*seed=*/9);
  runner.Run(10 * kSecond);
  for (const char* name :
       {OracleScenarioRunner::kThroughputTps, OracleScenarioRunner::kRetries,
        OracleScenarioRunner::kItlWaits, OracleScenarioRunner::kQueueJumps,
        OracleScenarioRunner::kItlBytes}) {
    ASSERT_TRUE(runner.series().Has(name)) << name;
    EXPECT_EQ(runner.series().Get(name).size(), 10u) << name;
  }
}

TEST(OracleDriverTest, ItlBytesNeverShrink) {
  OracleItlSimulator itl(OracleItlOptions{});
  OracleClientOptions hot = SmallTable();
  hot.table_rows = 500;
  OracleScenarioRunner runner(&itl, 16, hot, /*seed=*/11);
  runner.Run(kMinute);
  const TimeSeries& bytes =
      runner.series().Get(OracleScenarioRunner::kItlBytes);
  double prev = 0.0;
  for (const auto& pt : bytes.points()) {
    EXPECT_GE(pt.value, prev);  // permanent page-space consumption
    prev = pt.value;
  }
}

}  // namespace
}  // namespace locktune
