#include "telemetry/flight_recorder.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/check.h"
#include "telemetry/lock_profiler.h"

namespace locktune {
namespace {

#define SKIP_UNLESS_PROFILING() \
  if (!ProfileCompiledIn()) GTEST_SKIP() << "LOCKTUNE_PROFILE is off"

// Reads a FILE* produced by dumping into a tmpfile.
std::string Slurp(std::FILE* f) {
  std::string out;
  std::rewind(f);
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  return out;
}

TEST(FlightRecorderTest, RecordsInOrder) {
  SKIP_UNLESS_PROFILING();
  ResetFlightRecorderForTesting();
  FlightRecord(FlightEventKind::kEscalation, 10, 1, 7, 0);
  FlightRecord(FlightEventKind::kTimeout, 20, 2, 8, 1);
  FlightRecord(FlightEventKind::kTunerPass, 30, 0, 2, 4096);
  const std::vector<FlightEvent> events = FlightEventsForTesting();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kEscalation);
  EXPECT_EQ(events[0].time_ms, 10);
  EXPECT_EQ(events[0].app, 1);
  EXPECT_EQ(events[1].kind, FlightEventKind::kTimeout);
  EXPECT_EQ(events[2].kind, FlightEventKind::kTunerPass);
  EXPECT_EQ(events[2].b, 4096);
  EXPECT_EQ(FlightTotalForTesting(), 3u);
}

TEST(FlightRecorderTest, WraparoundKeepsLastCapacityEvents) {
  SKIP_UNLESS_PROFILING();
  ResetFlightRecorderForTesting();
  const int kRecorded = 300;  // > kFlightRingCapacity (256)
  for (int i = 0; i < kRecorded; ++i) {
    FlightRecord(FlightEventKind::kWaitBegin, i, i, 0, 0);
  }
  const std::vector<FlightEvent> events = FlightEventsForTesting();
  ASSERT_EQ(events.size(), static_cast<size_t>(kFlightRingCapacity));
  // Events 44..299 survive, oldest first, with no gaps.
  EXPECT_EQ(events.front().time_ms, kRecorded - kFlightRingCapacity);
  EXPECT_EQ(events.back().time_ms, kRecorded - 1);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].time_ms, events[i - 1].time_ms + 1);
  }
  // The total keeps counting past the ring capacity.
  EXPECT_EQ(FlightTotalForTesting(), static_cast<uint64_t>(kRecorded));
}

TEST(FlightRecorderTest, EventToStringNamesTheKind) {
  const FlightEvent event{42, FlightEventKind::kDeadlockVictim, 3, 17, 9};
  const std::string s = event.ToString();
  EXPECT_NE(s.find("t=42ms"), std::string::npos) << s;
  EXPECT_NE(s.find("deadlock_victim"), std::string::npos) << s;
  EXPECT_NE(s.find("app=3"), std::string::npos) << s;
}

TEST(FlightRecorderTest, DumpListsRingsAndEvents) {
  SKIP_UNLESS_PROFILING();
  ResetFlightRecorderForTesting();
  FlightRecord(FlightEventKind::kOutOfLockMemory, 99, 4, 0, 123);
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  DumpFlightRecorder(f);
  const std::string dump = Slurp(f);
  std::fclose(f);
  EXPECT_NE(dump.find("flight recorder dump"), std::string::npos) << dump;
  EXPECT_NE(dump.find("out_of_lock_memory"), std::string::npos) << dump;
  EXPECT_NE(dump.find("t=99ms"), std::string::npos) << dump;
}

TEST(FlightRecorderTest, VictimDumpBudgetIsOncePerProcessWhenArmed) {
  SKIP_UNLESS_PROFILING();
  ResetFlightRecorderForTesting();  // also restores the budget
  ArmFlightDumpOnVictim(false);
  EXPECT_FALSE(FlightDumpOnVictimArmed());
  EXPECT_FALSE(TakeVictimDumpBudget());  // unarmed: never spends
  ArmFlightDumpOnVictim(true);
  EXPECT_TRUE(FlightDumpOnVictimArmed());
  EXPECT_TRUE(TakeVictimDumpBudget());
  EXPECT_FALSE(TakeVictimDumpBudget());  // budget spent
  ArmFlightDumpOnVictim(false);
}

// A failed LOCKTUNE_CHECK must come with the flight-recorder post-mortem.
// This is the tentpole's core debugging promise; the ctest registration
// also runs this binary under LOCKTUNE_PARANOID=1 to cover the paranoid
// invariant path, which funnels through the same macro.
TEST(FlightRecorderDeathTest, CheckFailureDumpsRecorder) {
  SKIP_UNLESS_PROFILING();
  EXPECT_DEATH(
      {
        FlightRecord(FlightEventKind::kEscalation, 7, 1, 2, 3);
        LOCKTUNE_CHECK(1 == 2);
      },
      "CHECK failed(.|\n)*flight recorder dump(.|\n)*escalation");
}

}  // namespace
}  // namespace locktune
