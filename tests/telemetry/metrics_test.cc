#include "telemetry/metrics.h"

#include <gtest/gtest.h>

namespace locktune {
namespace {

TEST(MetricsRegistryTest, OwnedCounterRoundTrips) {
  MetricsRegistry reg;
  Counter* c = reg.AddCounter("locktune_test_events_total", "test events");
  c->Increment();
  c->Increment(41);
  ASSERT_TRUE(reg.Has("locktune_test_events_total"));
  const std::vector<MetricSample> samples = reg.Collect();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "locktune_test_events_total");
  EXPECT_EQ(samples[0].help, "test events");
  EXPECT_EQ(samples[0].kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(samples[0].value, 42.0);
}

TEST(MetricsRegistryTest, OwnedGaugeMovesBothWays) {
  MetricsRegistry reg;
  Gauge* g = reg.AddGauge("locktune_test_level", "test level");
  g->Set(10.0);
  g->Add(-2.5);
  EXPECT_DOUBLE_EQ(reg.Collect()[0].value, 7.5);
}

TEST(MetricsRegistryTest, CallbackMetricsEvaluateAtCollect) {
  MetricsRegistry reg;
  int64_t events = 0;
  double level = 0.0;
  reg.AddCallbackCounter("locktune_test_events_total", "events",
                         [&] { return events; });
  reg.AddCallbackGauge("locktune_test_level", "level", [&] { return level; });
  events = 7;
  level = 1.5;
  const std::vector<MetricSample> samples = reg.Collect();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].value, 7.0);
  EXPECT_DOUBLE_EQ(samples[1].value, 1.5);
  events = 9;  // a later Collect sees the new value
  EXPECT_DOUBLE_EQ(reg.Collect()[0].value, 9.0);
}

TEST(MetricsRegistryTest, CollectIsSortedByName) {
  MetricsRegistry reg;
  reg.AddCounter("locktune_z_total", "z");
  reg.AddCounter("locktune_a_total", "a");
  reg.AddGauge("locktune_m", "m");
  const std::vector<MetricSample> samples = reg.Collect();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "locktune_a_total");
  EXPECT_EQ(samples[1].name, "locktune_m");
  EXPECT_EQ(samples[2].name, "locktune_z_total");
}

TEST(MetricsRegistryTest, ReRegistrationReplacesLastWins) {
  MetricsRegistry reg;
  Counter* first = reg.AddCounter("locktune_test_total", "v1");
  first->Increment(5);
  reg.AddCallbackCounter("locktune_test_total", "v2", [] { return 99; });
  const std::vector<MetricSample> samples = reg.Collect();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].help, "v2");
  EXPECT_DOUBLE_EQ(samples[0].value, 99.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistryTest, OwnedHistogramSnapshot) {
  MetricsRegistry reg;
  HistogramMetric* h = reg.AddHistogram("locktune_test_latency_ms", "latency",
                                        {1.0, 10.0, 100.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(5.0);
  h->Observe(500.0);  // overflow
  const std::vector<MetricSample> samples = reg.Collect();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].kind, MetricKind::kHistogram);
  const HistogramSnapshot& snap = samples[0].histogram;
  ASSERT_EQ(snap.upper_bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1);
  EXPECT_EQ(snap.counts[1], 2);
  EXPECT_EQ(snap.counts[2], 0);
  EXPECT_EQ(snap.counts[3], 1);
  EXPECT_EQ(snap.total, 4);
  EXPECT_DOUBLE_EQ(snap.sum, 510.5);
}

TEST(MetricsRegistryTest, CallbackHistogram) {
  MetricsRegistry reg;
  Histogram live({2.0, 4.0});
  reg.AddCallbackHistogram("locktune_test_dist", "dist",
                           [&] { return SnapshotOf(live); });
  live.Add(1.0);
  live.Add(3.0);
  const HistogramSnapshot snap = reg.Collect()[0].histogram;
  EXPECT_EQ(snap.total, 2);
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 1);
  EXPECT_EQ(snap.counts[1], 1);
}

TEST(SnapshotQuantileTest, MatchesHistogramQuantile) {
  Histogram h({1, 2, 4, 8, 16, 32});
  for (int i = 0; i < 1000; ++i) h.Add(static_cast<double>(i % 30));
  const HistogramSnapshot snap = SnapshotOf(h);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(SnapshotQuantile(snap, q), h.Quantile(q)) << "q=" << q;
  }
}

TEST(SnapshotQuantileTest, EmptyAndClamped) {
  HistogramSnapshot empty;
  empty.upper_bounds = {1.0, 2.0};
  empty.counts = {0, 0, 0};
  EXPECT_EQ(SnapshotQuantile(empty, 0.5), 0.0);

  Histogram h({10.0});
  h.Add(5.0);
  const HistogramSnapshot snap = SnapshotOf(h);
  EXPECT_GE(SnapshotQuantile(snap, -1.0), 0.0);
  EXPECT_LE(SnapshotQuantile(snap, 2.0), 10.0);
}

TEST(MetricFamilyTest, StripsLabelSuffix) {
  EXPECT_EQ(MetricFamily("locktune_memory_heap_bytes{heap=\"sort\"}"),
            "locktune_memory_heap_bytes");
  EXPECT_EQ(MetricFamily("locktune_lock_waits_total"),
            "locktune_lock_waits_total");
  EXPECT_EQ(MetricFamily(""), "");
}

}  // namespace
}  // namespace locktune
