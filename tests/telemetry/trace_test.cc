#include "telemetry/trace.h"

#include <limits>
#include <sstream>

#include <gtest/gtest.h>

namespace locktune {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("grow to 8 MB"), "grow to 8 MB");
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(TraceRecordTest, RendersAllFieldTypes) {
  TraceRecord rec(12'300, "tuning_pass");
  rec.Str("action", "GROW")
      .Int("pass", 3)
      .Real("free_fraction", 0.25)
      .Bool("growth_constrained", false);
  EXPECT_EQ(rec.ToJson(),
            "{\"t_ms\":12300,\"kind\":\"tuning_pass\",\"action\":\"GROW\","
            "\"pass\":3,\"free_fraction\":0.25,"
            "\"growth_constrained\":false}");
}

TEST(TraceRecordTest, FindReturnsRenderedValue) {
  TraceRecord rec(0, "x");
  rec.Str("action", "NONE").Int("pass", 7);
  ASSERT_NE(rec.Find("action"), nullptr);
  EXPECT_EQ(*rec.Find("action"), "\"NONE\"");
  ASSERT_NE(rec.Find("pass"), nullptr);
  EXPECT_EQ(*rec.Find("pass"), "7");
  EXPECT_EQ(rec.Find("absent"), nullptr);
}

TEST(TraceRecordTest, NonFiniteRealsRenderAsNull) {
  TraceRecord rec(0, "x");
  rec.Real("bad", std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(*rec.Find("bad"), "null");
}

TEST(TraceRecordTest, KeysAndKindAreEscaped) {
  TraceRecord rec(5, "odd\"kind");
  rec.Str("msg", "say \"hi\"");
  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"kind\":\"odd\\\"kind\""), std::string::npos);
  EXPECT_NE(json.find("\"msg\":\"say \\\"hi\\\"\""), std::string::npos);
}

TEST(JsonlTraceWriterTest, OneObjectPerLine) {
  std::ostringstream os;
  JsonlTraceWriter writer(&os);
  TraceRecord a(100, "tuning_pass");
  a.Str("action", "GROW");
  TraceRecord b(200, "lock_event");
  b.Int("app", 4);
  writer.Append(a);
  writer.Append(b);
  writer.Flush();
  EXPECT_EQ(writer.records_written(), 2);
  EXPECT_EQ(os.str(),
            "{\"t_ms\":100,\"kind\":\"tuning_pass\",\"action\":\"GROW\"}\n"
            "{\"t_ms\":200,\"kind\":\"lock_event\",\"app\":4}\n");
}

TEST(MemoryTraceSinkTest, BuffersRecords) {
  MemoryTraceSink sink;
  TraceRecord rec(42, "milestone");
  rec.Int("clients", 20);
  sink.Append(rec);
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].time_ms(), 42);
  EXPECT_EQ(sink.records()[0].kind(), "milestone");
  EXPECT_EQ(*sink.records()[0].Find("clients"), "20");
}

}  // namespace
}  // namespace locktune
