#include "telemetry/chrome_trace.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace locktune {
namespace {

// Minimal structural validation: balanced braces/brackets outside strings.
// The CI profile-smoke job runs the real check (jq over a full sim trace);
// this keeps the unit feedback loop fast.
bool BalancedJson(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

std::string Render(const ChromeTraceCollector& collector) {
  std::ostringstream os;
  collector.WriteJson(os);
  return os.str();
}

TEST(ChromeTraceTest, EmptyCollectorStillWritesMetadata) {
  ChromeTraceCollector collector;
  EXPECT_EQ(collector.event_count(), 0u);
  const std::string json = Render(collector);
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("sim (virtual time)"), std::string::npos);
  EXPECT_NE(json.find("profiler (real time)"), std::string::npos);
  for (const char* thread : {"ticks", "stmm", "lock events"}) {
    EXPECT_NE(json.find(thread), std::string::npos) << thread;
  }
}

TEST(ChromeTraceTest, SpanAndInstantRoundTrip) {
  ChromeTraceCollector collector;
  collector.Span("tick", kTracePidSim, kTraceTidTicks,
                 SimTimeToTraceUs(100), 1000, "{\"clients\":8}");
  collector.Instant("DEADLOCK_VICTIM", kTracePidSim, kTraceTidLockEvents,
                    SimTimeToTraceUs(150));
  EXPECT_EQ(collector.event_count(), 2u);
  const std::string json = Render(collector);
  EXPECT_TRUE(BalancedJson(json)) << json;
  // The span keeps its duration and args; sim ms 100 is trace us 100000.
  EXPECT_NE(json.find("{\"name\":\"tick\",\"ph\":\"X\",\"ts\":100000,"
                      "\"dur\":1000,\"pid\":1,\"tid\":0,"
                      "\"args\":{\"clients\":8}}"),
            std::string::npos)
      << json;
  // The instant carries the scope field and no duration.
  EXPECT_NE(json.find("{\"name\":\"DEADLOCK_VICTIM\",\"ph\":\"i\","
                      "\"ts\":150000,\"s\":\"t\",\"pid\":1,\"tid\":2}"),
            std::string::npos)
      << json;
}

TEST(ChromeTraceTest, EventNamesAreJsonEscaped) {
  ChromeTraceCollector collector;
  collector.Instant("quote\" backslash\\ newline\n", kTracePidSim, 0, 0);
  const std::string json = Render(collector);
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("quote\\\" backslash\\\\ newline\\u000a"),
            std::string::npos)
      << json;
}

TEST(ChromeTraceTest, RealClockIsMonotonicSinceConstruction) {
  ChromeTraceCollector collector;
  const int64_t a = collector.RealNowUs();
  const int64_t b = collector.RealNowUs();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(ChromeTraceTest, GlobalArmingRoundTrips) {
  EXPECT_EQ(GlobalTraceCollector(), nullptr);
  ChromeTraceCollector collector;
  SetGlobalTraceCollector(&collector);
  EXPECT_EQ(GlobalTraceCollector(), &collector);
  SetGlobalTraceCollector(nullptr);
  EXPECT_EQ(GlobalTraceCollector(), nullptr);
}

TEST(ChromeTraceTest, SimTimeConversion) {
  EXPECT_EQ(SimTimeToTraceUs(0), 0);
  EXPECT_EQ(SimTimeToTraceUs(1), 1000);
  EXPECT_EQ(SimTimeToTraceUs(2500), 2'500'000);
}

}  // namespace
}  // namespace locktune
