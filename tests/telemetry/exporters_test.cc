#include "telemetry/exporters.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.h"

namespace locktune {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(WritePrometheusTest, CountersAndGauges) {
  MetricsRegistry reg;
  reg.AddCounter("locktune_lock_waits_total", "lock waits")->Increment(3);
  reg.AddGauge("locktune_memory_total_bytes", "database memory")->Set(1024);
  std::ostringstream os;
  WritePrometheus(reg, os);
  const std::vector<std::string> lines = Lines(os.str());
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_EQ(lines[0], "# HELP locktune_lock_waits_total lock waits");
  EXPECT_EQ(lines[1], "# TYPE locktune_lock_waits_total counter");
  EXPECT_EQ(lines[2], "locktune_lock_waits_total 3");
  EXPECT_EQ(lines[3], "# HELP locktune_memory_total_bytes database memory");
  EXPECT_EQ(lines[4], "# TYPE locktune_memory_total_bytes gauge");
  EXPECT_EQ(lines[5], "locktune_memory_total_bytes 1024");
}

TEST(WritePrometheusTest, LabeledVariantsShareOneFamilyHeader) {
  MetricsRegistry reg;
  reg.AddGauge("locktune_memory_heap_bytes{heap=\"locklist\"}", "heap size")
      ->Set(4);
  reg.AddGauge("locktune_memory_heap_bytes{heap=\"sort\"}", "heap size")
      ->Set(8);
  std::ostringstream os;
  WritePrometheus(reg, os);
  const std::string text = os.str();
  // One # HELP / # TYPE pair for the family, two sample lines.
  EXPECT_EQ(Lines(text).size(), 4u);
  size_t first = text.find("# TYPE locktune_memory_heap_bytes gauge");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE", first + 1), std::string::npos);
  EXPECT_NE(text.find("locktune_memory_heap_bytes{heap=\"locklist\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("locktune_memory_heap_bytes{heap=\"sort\"} 8"),
            std::string::npos);
}

TEST(WritePrometheusTest, HistogramExpandsToCumulativeBuckets) {
  MetricsRegistry reg;
  HistogramMetric* h =
      reg.AddHistogram("locktune_lock_wait_time_ms", "wait time", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);  // overflow
  std::ostringstream os;
  WritePrometheus(reg, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE locktune_lock_wait_time_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("locktune_lock_wait_time_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("locktune_lock_wait_time_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("locktune_lock_wait_time_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("locktune_lock_wait_time_ms_sum 55.5"),
            std::string::npos);
  EXPECT_NE(text.find("locktune_lock_wait_time_ms_count 3"),
            std::string::npos);
}

TEST(WritePrometheusTest, LabeledHistogramSplicesLeIntoLabels) {
  MetricsRegistry reg;
  HistogramMetric* h = reg.AddHistogram(
      "locktune_profile_wait_ms{site=\"shard\"}", "wait", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);  // overflow
  std::ostringstream os;
  WritePrometheus(reg, os);
  const std::string text = os.str();
  // The family header names the bare family; every series keeps the
  // existing label set, with `le` appended on bucket lines.
  EXPECT_NE(text.find("# TYPE locktune_profile_wait_ms histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find(
                "locktune_profile_wait_ms_bucket{site=\"shard\",le=\"1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find(
          "locktune_profile_wait_ms_bucket{site=\"shard\",le=\"10\"} 2"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find(
          "locktune_profile_wait_ms_bucket{site=\"shard\",le=\"+Inf\"} 3"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("locktune_profile_wait_ms_sum{site=\"shard\"} 55.5"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("locktune_profile_wait_ms_count{site=\"shard\"} 3"),
            std::string::npos)
      << text;
  // No malformed double-brace series anywhere.
  EXPECT_EQ(text.find("}{"), std::string::npos) << text;
  EXPECT_EQ(text.find("\"}_"), std::string::npos) << text;
}

TEST(WritePrometheusTest, LabeledHistogramVariantsShareOneFamilyHeader) {
  MetricsRegistry reg;
  reg.AddHistogram("locktune_profile_wait_ms{site=\"alloc\"}", "wait",
                   {1.0})
      ->Observe(0.5);
  reg.AddHistogram("locktune_profile_wait_ms{site=\"shard\"}", "wait",
                   {1.0})
      ->Observe(0.5);
  std::ostringstream os;
  WritePrometheus(reg, os);
  const std::string text = os.str();
  const size_t first =
      text.find("# TYPE locktune_profile_wait_ms histogram");
  ASSERT_NE(first, std::string::npos) << text;
  EXPECT_EQ(text.find("# TYPE", first + 1), std::string::npos) << text;
  EXPECT_NE(text.find("{site=\"alloc\",le=\"1\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("{site=\"shard\",le=\"1\"} 1"), std::string::npos)
      << text;
}

TEST(WriteMetricsCsvTest, HeaderAndRows) {
  MetricsRegistry reg;
  reg.AddCounter("locktune_lock_waits_total", "waits")->Increment(2);
  reg.AddGauge("locktune_workload_throughput_tps", "tps")->Set(120.5);
  std::ostringstream os;
  WriteMetricsCsv(reg, os);
  const std::vector<std::string> lines = Lines(os.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "metric,value");
  EXPECT_EQ(lines[1], "locktune_lock_waits_total,2");
  EXPECT_EQ(lines[2], "locktune_workload_throughput_tps,120.5");
}

TEST(WriteMetricsCsvTest, HistogramExpandsToDigestRows) {
  MetricsRegistry reg;
  HistogramMetric* h =
      reg.AddHistogram("locktune_test_ms", "t", {1.0, 10.0, 100.0});
  for (int i = 0; i < 100; ++i) h->Observe(5.0);
  std::ostringstream os;
  WriteMetricsCsv(reg, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("locktune_test_ms_count,100"), std::string::npos);
  EXPECT_NE(text.find("locktune_test_ms_sum,500"), std::string::npos);
  EXPECT_NE(text.find("locktune_test_ms_p50,"), std::string::npos);
  EXPECT_NE(text.find("locktune_test_ms_p95,"), std::string::npos);
  EXPECT_NE(text.find("locktune_test_ms_p99,"), std::string::npos);
}

// Minimal RFC 4180 row parser for the round-trip tests: splits one line
// into fields, honoring quoted fields with doubled internal quotes.
std::vector<std::string> ParseCsvRow(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  bool at_field_start = true;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && at_field_start) {
      // Quotes only open an escaped field at its start; a quote later in an
      // unquoted field is literal (lenient RFC 4180 reading).
      quoted = true;
      at_field_start = false;
    } else if (c == ',') {
      fields.push_back(field);
      field.clear();
      at_field_start = true;
    } else {
      field += c;
      at_field_start = false;
    }
  }
  fields.push_back(field);
  return fields;
}

TEST(CsvFieldTest, QuotesOnlyWhenStructureIsAtRisk) {
  // Historical outputs must stay byte-identical: no gratuitous quoting, and
  // label-suffixed names (embedded quotes, no delimiter) pass through raw.
  EXPECT_EQ(CsvField("locktune_lock_waits_total"),
            "locktune_lock_waits_total");
  EXPECT_EQ(CsvField("heap_bytes{heap=\"lock\"}"),
            "heap_bytes{heap=\"lock\"}");
  EXPECT_EQ(CsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvField("a,\"b\""), "\"a,\"\"b\"\"\"");
  EXPECT_EQ(CsvField("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvField(""), "");
}

TEST(WriteMetricsCsvTest, SpecialCharactersRoundTrip) {
  MetricsRegistry reg;
  const std::string hostile = "locktune_odd{note=\"a,b\"}";
  reg.AddGauge(hostile, "gauge with a comma and quotes in its name")
      ->Set(7);
  std::ostringstream os;
  WriteMetricsCsv(reg, os);
  const std::vector<std::string> lines = Lines(os.str());
  ASSERT_EQ(lines.size(), 2u);
  const std::vector<std::string> row = ParseCsvRow(lines[1]);
  // The quoted name parses back to exactly the registered string, and the
  // row still has exactly two columns despite the embedded comma.
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], hostile);
  EXPECT_EQ(row[1], "7");
}

TEST(PrometheusLabelValueTest, EscapesBackslashQuoteAndNewline) {
  EXPECT_EQ(PrometheusLabelValue("plain"), "plain");
  EXPECT_EQ(PrometheusLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PrometheusLabelValue("two\nlines"), "two\\nlines");
}

TEST(WritePrometheusTest, HostileLabelValueStaysOneWellFormedLine) {
  MetricsRegistry reg;
  // A producer following the documented pattern: splice a free-form string
  // through PrometheusLabelValue when building the labeled name.
  const std::string name = "locktune_memory_heap_bytes{heap=\"" +
                           PrometheusLabelValue("odd\"heap\\name\n") + "\"}";
  reg.AddGauge(name, "per-heap size")->Set(2);
  std::ostringstream os;
  WritePrometheus(reg, os);
  const std::vector<std::string> lines = Lines(os.str());
  // HELP + TYPE + one sample: the newline in the label did not split the
  // sample across lines.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2],
            "locktune_memory_heap_bytes{heap=\"odd\\\"heap\\\\name\\n\"} 2");
}

TEST(WritePrometheusTest, HelpTextEscapesBackslashAndNewline) {
  MetricsRegistry reg;
  reg.AddCounter("locktune_odd_total", "first\nsecond \\ third")
      ->Increment(1);
  std::ostringstream os;
  WritePrometheus(reg, os);
  const std::vector<std::string> lines = Lines(os.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0],
            "# HELP locktune_odd_total first\\nsecond \\\\ third");
}

TEST(RenderRegistryTableTest, AlignsNamesAndDigestsHistograms) {
  MetricsRegistry reg;
  reg.AddCounter("locktune_lock_waits_total", "waits")->Increment(7);
  HistogramMetric* h = reg.AddHistogram("locktune_wait_ms", "w", {1.0, 10.0});
  h->Observe(2.0);
  const std::string table = RenderRegistryTable(reg);
  EXPECT_NE(table.find("locktune_lock_waits_total"), std::string::npos);
  EXPECT_NE(table.find("7"), std::string::npos);
  EXPECT_NE(table.find("count=1"), std::string::npos);
  EXPECT_NE(table.find("p50="), std::string::npos);
}

}  // namespace
}  // namespace locktune
