#include "telemetry/lock_profiler.h"

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "telemetry/metrics.h"

namespace locktune {
namespace {

// The aggregated-view tests below need the profiler compiled in; the
// snapshot/percentile tests at the bottom run in every build (the read-side
// shapes are unconditional).
#define SKIP_UNLESS_PROFILING() \
  if (!ProfileCompiledIn()) GTEST_SKIP() << "LOCKTUNE_PROFILE is off"

constexpr int SiteIdx(ProfileSite site) { return static_cast<int>(site); }

TEST(LockProfilerTest, UncontendedGuardCountsAcquireOnly) {
  SKIP_UNLESS_PROFILING();
  ResetProfileForTesting();
  Mutex mu;
  // A fresh thread's sampling wheel starts at tick 0, so one full period
  // of uncontended acquires yields exactly one observation, recorded at
  // population weight — the estimate equals the true count.
  std::thread worker([&] {
    for (uint64_t i = 0; i < kProfileSamplePeriod; ++i) {
      ProfiledMutexGuard guard(mu, ProfileSite::kQueuedWrite, /*shard=*/3);
    }
  });
  worker.join();
  const ProfileSnapshot snap = CaptureProfile();
  EXPECT_TRUE(snap.compiled_in);
  EXPECT_EQ(snap.sites[SiteIdx(ProfileSite::kQueuedWrite)].acquires,
            kProfileSamplePeriod);
  EXPECT_EQ(snap.sites[SiteIdx(ProfileSite::kQueuedWrite)].contended, 0u);
  EXPECT_EQ(snap.sites[SiteIdx(ProfileSite::kQueuedWrite)].wait.total, 0u);
  ASSERT_EQ(snap.shards.size(), static_cast<size_t>(kMaxProfiledShards));
  EXPECT_EQ(snap.shards[3].acquires, kProfileSamplePeriod);
  EXPECT_EQ(snap.shards[3].contended, 0u);
  EXPECT_EQ(snap.shards[2].acquires, 0u);
}

TEST(LockProfilerTest, ContendedGuardRecordsWaitAndShardAttribution) {
  SKIP_UNLESS_PROFILING();
  ResetProfileForTesting();
  Mutex mu;
  std::atomic<bool> started{false};
  mu.Lock();
  std::thread waiter([&] {
    started.store(true);
    ProfiledMutexGuard guard(mu, ProfileSite::kQueuedWrite, /*shard=*/5);
  });
  while (!started.load()) std::this_thread::yield();
  // Hold long enough that the waiter is past its failed try_lock and
  // blocked in lock() before we release.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  mu.Unlock();
  waiter.join();
  const ProfileSnapshot snap = CaptureProfile();
  const SiteProfile& site = snap.sites[SiteIdx(ProfileSite::kQueuedWrite)];
  // The waiter is a fresh thread, so its first acquire is the sampled
  // one: the acquire count, the failed try_lock, and the timed wait are
  // all recorded at population weight.
  EXPECT_EQ(site.acquires, kProfileSamplePeriod);
  EXPECT_EQ(site.contended, kProfileSamplePeriod);
  EXPECT_EQ(site.wait.total, kProfileSamplePeriod);
  EXPECT_GT(site.wait.sum_ns, 0u);
  EXPECT_EQ(snap.shards[5].acquires, kProfileSamplePeriod);
  EXPECT_EQ(snap.shards[5].contended, kProfileSamplePeriod);
  EXPECT_GT(snap.shards[5].wait_ns, 0u);
}

TEST(LockProfilerTest, SharedAndExclusiveGuardsHitTheirSites) {
  SKIP_UNLESS_PROFILING();
  ResetProfileForTesting();
  SharedMutex mu;
  // One full wheel period per guard kind: each window holds exactly one
  // sampled tick, so each site's estimate equals its true count.
  std::thread worker([&] {
    for (uint64_t i = 0; i < kProfileSamplePeriod; ++i) {
      ProfiledSharedGuard guard(mu, ProfileSite::kFastShared);
    }
    for (uint64_t i = 0; i < kProfileSamplePeriod; ++i) {
      ProfiledExclusiveGuard guard(mu, ProfileSite::kExclusive);
    }
  });
  worker.join();
  const ProfileSnapshot snap = CaptureProfile();
  EXPECT_EQ(snap.sites[SiteIdx(ProfileSite::kFastShared)].acquires,
            kProfileSamplePeriod);
  EXPECT_EQ(snap.sites[SiteIdx(ProfileSite::kExclusive)].acquires,
            kProfileSamplePeriod);
  EXPECT_EQ(snap.sites[SiteIdx(ProfileSite::kQueuedWrite)].acquires, 0u);
}

TEST(LockProfilerTest, ProfileTimerAlwaysRecordsWait) {
  SKIP_UNLESS_PROFILING();
  ResetProfileForTesting();
  { ProfileTimer timer(ProfileSite::kTickBarrier); }
  const ProfileSnapshot snap = CaptureProfile();
  const SiteProfile& site = snap.sites[SiteIdx(ProfileSite::kTickBarrier)];
  EXPECT_EQ(site.acquires, 1u);
  EXPECT_EQ(site.contended, 1u);
  EXPECT_EQ(site.wait.total, 1u);
}

TEST(LockProfilerTest, FastPathNotesAccumulate) {
  SKIP_UNLESS_PROFILING();
  ResetProfileForTesting();
  ProfileNoteFastGrant();
  ProfileNoteFastGrant();
  ProfileNoteFastBail();
  ProfileNoteReleaseBail();
  const ProfileSnapshot snap = CaptureProfile();
  EXPECT_EQ(snap.fast_grants, 2u);
  EXPECT_EQ(snap.fast_bails, 1u);
  EXPECT_EQ(snap.release_bails, 1u);
}

TEST(LockProfilerTest, OptReadNotesAreExact) {
  SKIP_UNLESS_PROFILING();
  ResetProfileForTesting();
  ProfileNoteOptRead();
  ProfileNoteOptRead();
  ProfileNoteOptRead();
  ProfileNoteOptValidationFail();
  ProfileNoteOptValidationFail();
  ProfileNoteOptPessimize();
  const ProfileSnapshot snap = CaptureProfile();
  // Notes are exact (weight 1), unlike the sampled guard sites: a probe is
  // one kOptRead acquire; a validation failure is a contended kOptRead.
  EXPECT_EQ(snap.sites[SiteIdx(ProfileSite::kOptRead)].acquires, 3u);
  EXPECT_EQ(snap.sites[SiteIdx(ProfileSite::kOptRead)].contended, 2u);
  EXPECT_EQ(snap.opt_validation_fails, 2u);
  EXPECT_EQ(snap.opt_pessimizes, 1u);
}

TEST(LockProfilerTest, HoldTimingIsSampled) {
  SKIP_UNLESS_PROFILING();
  ResetProfileForTesting();
  Mutex mu;
  // Two full wheel periods: wherever this thread's tick currently
  // stands, the window holds exactly two sampled acquires and two
  // sampled holds (the offset phase).
  for (uint64_t i = 0; i < 2 * kProfileSamplePeriod; ++i) {
    ProfiledMutexGuard guard(mu, ProfileSite::kAlloc);
  }
  const ProfileSnapshot snap = CaptureProfile();
  const SiteProfile& site = snap.sites[SiteIdx(ProfileSite::kAlloc)];
  EXPECT_EQ(site.acquires, 2 * kProfileSamplePeriod);
  EXPECT_GE(site.hold.total, 1u);
  EXPECT_LE(site.hold.total, 2u);
}

TEST(LockProfilerTest, ResetClearsEverything) {
  SKIP_UNLESS_PROFILING();
  Mutex mu;
  for (uint64_t i = 0; i < kProfileSamplePeriod; ++i) {
    ProfiledMutexGuard guard(mu, ProfileSite::kQueuedWrite, 1);
  }
  ProfileNoteFastGrant();
  ResetProfileForTesting();
  const ProfileSnapshot snap = CaptureProfile();
  for (int s = 0; s < kProfileSiteCount; ++s) {
    EXPECT_EQ(snap.sites[s].acquires, 0u) << ProfileSiteName(
        static_cast<ProfileSite>(s));
  }
  EXPECT_EQ(snap.fast_grants, 0u);
  EXPECT_EQ(snap.shards[1].acquires, 0u);
}

TEST(LockProfilerTest, SiteNamesAreStable) {
  EXPECT_STREQ(ProfileSiteName(ProfileSite::kFastShared), "fast_shared");
  EXPECT_STREQ(ProfileSiteName(ProfileSite::kOptRead), "opt_read");
  EXPECT_STREQ(ProfileSiteName(ProfileSite::kQueuedWrite), "queued_write");
  EXPECT_STREQ(ProfileSiteName(ProfileSite::kExclusive), "exclusive");
  EXPECT_STREQ(ProfileSiteName(ProfileSite::kAlloc), "alloc");
  EXPECT_STREQ(ProfileSiteName(ProfileSite::kAppsMap), "apps_map");
  EXPECT_STREQ(ProfileSiteName(ProfileSite::kTickBarrier), "tick_barrier");
}

#if defined(LOCKTUNE_PROFILE)
TEST(LockProfilerTest, HistogramBucketEdges) {
  // Bucket 0 is < 256 ns; bucket i covers [256·2^(i-1), 256·2^i); the last
  // bucket absorbs overflow. Probe each edge exactly.
  profile_internal::ProfileHistogramSlab slab{};
  slab.Record(0, 1);
  slab.Record(255, 1);                // last value of bucket 0
  slab.Record(256, 1);                // first value of bucket 1
  slab.Record(511, 1);                // last value of bucket 1
  slab.Record(512, 1);                // first value of bucket 2
  slab.Record(uint64_t{1} << 62, 1);  // far past the last bound: overflow
  EXPECT_EQ(slab.counts[0].load(), 2u);
  EXPECT_EQ(slab.counts[1].load(), 2u);
  EXPECT_EQ(slab.counts[2].load(), 1u);
  EXPECT_EQ(slab.counts[kProfileHistBuckets - 1].load(), 1u);
  EXPECT_EQ(slab.total.load(), 6u);
  EXPECT_EQ(slab.sum_ns.load(),
            0u + 255 + 256 + 511 + 512 + (uint64_t{1} << 62));
  // A weighted (sampled) observation scales counts and sum by the weight.
  slab.Record(300, kProfileSamplePeriod);
  EXPECT_EQ(slab.counts[1].load(), 2u + kProfileSamplePeriod);
  EXPECT_EQ(slab.total.load(), 6u + kProfileSamplePeriod);
}
#endif  // LOCKTUNE_PROFILE

TEST(LockProfilerTest, ToHistogramSnapshotShapeAndUnits) {
  ProfileHistogramData h;
  h.counts[0] = 4;
  h.counts[1] = 2;
  h.total = 6;
  h.sum_ns = 3'000'000;  // 3 ms
  const HistogramSnapshot snap = ToHistogramSnapshot(h);
  ASSERT_EQ(snap.upper_bounds.size(),
            static_cast<size_t>(kProfileHistBuckets - 1));
  ASSERT_EQ(snap.counts.size(), static_cast<size_t>(kProfileHistBuckets));
  // Bounds are ns-to-ms conversions of 256·2^i.
  EXPECT_DOUBLE_EQ(snap.upper_bounds[0], 0.000256);
  EXPECT_DOUBLE_EQ(snap.upper_bounds[1], 0.000512);
  EXPECT_DOUBLE_EQ(snap.upper_bounds[2], 0.001024);
  EXPECT_EQ(snap.total, 6);
  EXPECT_DOUBLE_EQ(snap.sum, 3.0);
}

TEST(LockProfilerTest, PercentilesAtBucketEdges) {
  // 50 events in bucket 0, 50 in bucket 1: p50 must land exactly on the
  // shared bucket edge, and p95/p99 interpolate inside bucket 1.
  ProfileHistogramData h;
  h.counts[0] = 50;
  h.counts[1] = 50;
  h.total = 100;
  const HistogramSnapshot snap = ToHistogramSnapshot(h);
  const double edge = 0.000256;
  EXPECT_DOUBLE_EQ(SnapshotQuantile(snap, 0.50), edge);
  EXPECT_DOUBLE_EQ(SnapshotQuantile(snap, 0.95), edge + 0.9 * edge);
  EXPECT_DOUBLE_EQ(SnapshotQuantile(snap, 0.99), edge + 0.98 * edge);
  EXPECT_DOUBLE_EQ(SnapshotQuantile(snap, 1.0), 0.000512);
}

TEST(LockProfilerTest, RegisterProfileMetricsExportsFamilies) {
  SKIP_UNLESS_PROFILING();
  ResetProfileForTesting();
  Mutex mu;
  std::thread worker([&] {
    for (uint64_t i = 0; i < kProfileSamplePeriod; ++i) {
      ProfiledMutexGuard guard(mu, ProfileSite::kQueuedWrite, 0);
    }
  });
  worker.join();
  MetricsRegistry registry;
  RegisterProfileMetrics(&registry, /*shards=*/16);
  bool saw_site_counter = false, saw_wait_hist = false, saw_shard = false;
  for (const MetricSample& s : registry.Collect()) {
    if (s.name == "locktune_profile_acquires_total{site=\"queued_write\"}") {
      saw_site_counter = true;
      EXPECT_EQ(s.value, static_cast<double>(kProfileSamplePeriod));
    }
    if (s.name == "locktune_profile_wait_ms{site=\"queued_write\"}") {
      saw_wait_hist = true;
      EXPECT_EQ(s.kind, MetricKind::kHistogram);
    }
    if (s.name.rfind("locktune_profile_shard_acquires_total{shard=\"00\"}",
                     0) == 0) {
      saw_shard = true;
      EXPECT_EQ(s.value, static_cast<double>(kProfileSamplePeriod));
    }
  }
  EXPECT_TRUE(saw_site_counter);
  EXPECT_TRUE(saw_wait_hist);
  EXPECT_TRUE(saw_shard);
}

}  // namespace
}  // namespace locktune
