// AcquireBatch contract tests: a batch must be observationally identical
// to the equivalent one-Lock()-per-item loop (conservation), must consume
// its source lazily (no draws past a blocked item), must carry escalation
// through and keep going, and the parallel fast path must survive
// concurrent batches from many threads (run under TSan via the chaos
// label).
#include "lock/lock_manager.h"

#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"

namespace locktune {
namespace {

constexpr TableId kOrders = 1;

// Source backed by a fixed vector, instrumented to count how many items
// the batch actually drew.
class VectorSource final : public LockRequestSource {
 public:
  explicit VectorSource(std::vector<BatchItem> items)
      : items_(std::move(items)) {}

  std::optional<BatchItem> Next() override {
    if (pos_ >= items_.size()) return std::nullopt;
    return items_[pos_++];
  }

  int64_t consumed() const { return static_cast<int64_t>(pos_); }

 private:
  std::vector<BatchItem> items_;
  size_t pos_ = 0;
};

std::vector<BatchItem> RowRange(TableId table, int64_t first, int64_t count,
                                LockMode mode = LockMode::kS) {
  std::vector<BatchItem> items;
  items.reserve(static_cast<size_t>(count));
  for (int64_t r = first; r < first + count; ++r) {
    items.push_back({RowResource(table, r), mode});
  }
  return items;
}

class BatchAcquireTest : public ::testing::Test {
 protected:
  struct Manager {
    std::unique_ptr<EscalationPolicy> policy;
    std::unique_ptr<LockManager> lm;
  };

  // Same configuration shape as lock_manager_test.cc's Make().
  static Manager Make(int64_t blocks, double maxlocks_percent) {
    Manager m;
    m.policy = std::make_unique<FixedMaxlocksPolicy>(maxlocks_percent);
    LockManagerOptions opts;
    opts.initial_blocks = blocks;
    opts.max_lock_memory = 64 * kMiB;
    opts.database_memory = kGiB;
    opts.policy = m.policy.get();
    m.lm = std::make_unique<LockManager>(std::move(opts));
    return m;
  }
};

// Conservation: one AcquireBatch leaves the manager in exactly the state
// the per-item Lock() loop does — same structures, same modes, same
// counters.
TEST_F(BatchAcquireTest, SerialBatchMatchesPerItemLoop) {
  Manager batched = Make(4, 90.0);
  Manager looped = Make(4, 90.0);
  const std::vector<BatchItem> items = RowRange(kOrders, 0, 50);

  VectorSource source(items);
  const BatchResult r = batched.lm->AcquireBatch(1, source);
  EXPECT_EQ(r.outcome, LockOutcome::kGranted);
  EXPECT_EQ(r.granted, 50);
  EXPECT_FALSE(r.escalated);

  for (const BatchItem& item : items) {
    ASSERT_EQ(looped.lm->Lock(1, item.resource, item.mode).outcome,
              LockOutcome::kGranted);
  }

  EXPECT_EQ(batched.lm->HeldStructures(1), looped.lm->HeldStructures(1));
  for (const BatchItem& item : items) {
    EXPECT_EQ(batched.lm->HeldMode(1, item.resource),
              looped.lm->HeldMode(1, item.resource));
  }
  EXPECT_EQ(batched.lm->HeldMode(1, TableResource(kOrders)),
            looped.lm->HeldMode(1, TableResource(kOrders)));
  const LockManagerStats bs = batched.lm->stats();
  const LockManagerStats ls = looped.lm->stats();
  EXPECT_EQ(bs.lock_requests, ls.lock_requests);
  EXPECT_EQ(bs.grants, ls.grants);
  EXPECT_EQ(bs.escalations, ls.escalations);
  EXPECT_EQ(bs.lock_waits, ls.lock_waits);
}

// A blocked item ends the batch: earlier grants stick, the blocked request
// queues, and the source is never drawn past the blocked item (the lazy
// contract that keeps RNG-backed sources replayable).
TEST_F(BatchAcquireTest, BatchStopsAtConflictWithoutDrawingFurther) {
  Manager m = Make(4, 90.0);
  ASSERT_EQ(m.lm->Lock(1, RowResource(kOrders, 5), LockMode::kX).outcome,
            LockOutcome::kGranted);

  VectorSource source(RowRange(kOrders, 4, 3));  // rows 4, 5, 6
  const BatchResult r = m.lm->AcquireBatch(2, source);
  EXPECT_EQ(r.outcome, LockOutcome::kWaiting);
  EXPECT_EQ(r.granted, 1);  // row 4 only
  EXPECT_TRUE(m.lm->IsBlocked(2));
  EXPECT_EQ(source.consumed(), 2);  // row 6 never drawn
  EXPECT_EQ(m.lm->HeldMode(2, RowResource(kOrders, 4)), LockMode::kS);

  // The queued request resumes like any Lock() wait.
  m.lm->ReleaseAll(1);
  EXPECT_FALSE(m.lm->IsBlocked(2));
  EXPECT_EQ(m.lm->HeldMode(2, RowResource(kOrders, 5)), LockMode::kS);
}

// Escalation mid-batch is not an error: the batch reports it and keeps
// granting (post-escalation row locks are covered by the table lock).
TEST_F(BatchAcquireTest, SerialBatchEscalatesAndContinues) {
  Manager m = Make(1, 10.0);  // quota: 204 structures, like the unit tests
  VectorSource source(RowRange(kOrders, 0, 250));
  const BatchResult r = m.lm->AcquireBatch(1, source);
  EXPECT_EQ(r.outcome, LockOutcome::kGranted);
  EXPECT_EQ(r.granted, 250);
  EXPECT_TRUE(r.escalated);
  EXPECT_EQ(m.lm->stats().escalations, 1);
  EXPECT_EQ(m.lm->HeldMode(1, TableResource(kOrders)), LockMode::kS);
  EXPECT_EQ(m.lm->HeldStructures(1), 1);  // just the table lock
}

TEST_F(BatchAcquireTest, EmptyBatchGrantsNothing) {
  Manager m = Make(4, 90.0);
  VectorSource source({});
  const BatchResult r = m.lm->AcquireBatch(1, source);
  EXPECT_EQ(r.outcome, LockOutcome::kGranted);
  EXPECT_EQ(r.granted, 0);
  EXPECT_EQ(m.lm->HeldStructures(1), 0);
}

// Parallel mode, single caller: an item the fast path cannot grant
// (escalation needs the exclusive path) bails, retries exclusively, and
// the batch resumes on the fast path — same end state as serial.
TEST_F(BatchAcquireTest, ParallelBatchEscalatesViaExclusiveRetry) {
  Manager m = Make(1, 10.0);
  m.lm->SetParallelMode(true);
  VectorSource source(RowRange(kOrders, 0, 250));
  const BatchResult r = m.lm->AcquireBatch(1, source);
  EXPECT_EQ(r.outcome, LockOutcome::kGranted);
  EXPECT_EQ(r.granted, 250);
  EXPECT_TRUE(r.escalated);
  EXPECT_EQ(m.lm->HeldMode(1, TableResource(kOrders)), LockMode::kS);
  EXPECT_EQ(m.lm->HeldStructures(1), 1);
}

// Parallel mode conflict: the fast path bails to the exclusive path, which
// queues the wait; the batch ends there with the same result as serial.
TEST_F(BatchAcquireTest, ParallelBatchConflictWaits) {
  Manager m = Make(4, 90.0);
  m.lm->SetParallelMode(true);
  ASSERT_EQ(m.lm->Lock(1, RowResource(kOrders, 5), LockMode::kX).outcome,
            LockOutcome::kGranted);
  VectorSource source(RowRange(kOrders, 4, 3));
  const BatchResult r = m.lm->AcquireBatch(2, source);
  EXPECT_EQ(r.outcome, LockOutcome::kWaiting);
  EXPECT_EQ(r.granted, 1);
  EXPECT_EQ(source.consumed(), 2);
  EXPECT_TRUE(m.lm->IsBlocked(2));
}

// Many threads batching disjoint row ranges on one table: every batch
// grants fully, per-application footprints are exact, and TSan (chaos
// label) sees no races on the shared shard lease / allocator paths.
TEST_F(BatchAcquireTest, ConcurrentDisjointBatchesAllGrant) {
  constexpr int kThreads = 4;
  constexpr int64_t kRowsPerApp = 200;
  Manager m = Make(8, 90.0);
  m.lm->SetParallelMode(true);

  std::vector<BatchResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      VectorSource source(RowRange(kOrders, t * 100'000, kRowsPerApp));
      results[static_cast<size_t>(t)] =
          m.lm->AcquireBatch(static_cast<AppId>(t + 1), source);
    });
  }
  for (std::thread& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(results[static_cast<size_t>(t)].outcome, LockOutcome::kGranted);
    EXPECT_EQ(results[static_cast<size_t>(t)].granted, kRowsPerApp);
    // Row locks plus the shared intent lock on the table.
    EXPECT_EQ(m.lm->HeldStructures(t + 1), kRowsPerApp + 1);
  }
  EXPECT_EQ(m.lm->stats().lock_waits, 0);
  for (int t = 0; t < kThreads; ++t) m.lm->ReleaseAll(t + 1);
  EXPECT_EQ(m.lm->used_bytes(), 0);
}

}  // namespace
}  // namespace locktune
