#include "lock/escalation_policy.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace locktune {
namespace {

LockMemoryState MakeState(Bytes used, Bytes max_lock, Bytes db_mem,
                          int64_t capacity_slots) {
  LockMemoryState s;
  s.used = used;
  s.slots_in_use = used / kLockStructSize;
  s.allocated = RoundUpToBlocks(used);
  s.capacity_slots = capacity_slots;
  s.max_lock_memory = max_lock;
  s.database_memory = db_mem;
  return s;
}

TEST(LockMemoryStateTest, UsedPercentOfMax) {
  LockMemoryState s = MakeState(50 * kMiB, 100 * kMiB, kGiB, 1 << 20);
  EXPECT_DOUBLE_EQ(s.used_percent_of_max(), 50.0);
  s.max_lock_memory = 0;
  EXPECT_DOUBLE_EQ(s.used_percent_of_max(), 100.0);  // degenerate: saturated
}

TEST(AdaptivePolicyTest, AmpleMemoryAllowsNearAllOfMax) {
  AdaptiveMaxlocksPolicy policy;
  const LockMemoryState s = MakeState(kMiB, 100 * kMiB, kGiB, 16 * 2048);
  const int64_t max_slots = (100 * kMiB) / kLockStructSize;
  // ~98 % of the slots maxLockMemory could hold.
  EXPECT_NEAR(static_cast<double>(policy.MaxStructuresPerApp(s)),
              0.98 * static_cast<double>(max_slots),
              0.01 * static_cast<double>(max_slots));
}

TEST(AdaptivePolicyTest, ThrottlesNearMax) {
  AdaptiveMaxlocksPolicy policy;
  const Bytes max_lock = 100 * kMiB;
  const LockMemoryState near_full =
      MakeState(99 * kMiB, max_lock, kGiB, 1 << 20);
  policy.OnResize();  // force recompute
  const int64_t limit = policy.MaxStructuresPerApp(near_full);
  const int64_t max_slots = max_lock / kLockStructSize;
  // 98·(1−0.99³) ≈ 2.9 % of max at 99 % used.
  EXPECT_LE(limit, max_slots * 3 / 100);
  EXPECT_GE(limit, 1);
  // At 100 % used the 1 % floor applies exactly.
  const LockMemoryState full = MakeState(max_lock, max_lock, kGiB, 1 << 20);
  policy.OnResize();
  EXPECT_EQ(policy.MaxStructuresPerApp(full), max_slots / 100);
}

TEST(AdaptivePolicyTest, SingleConsumerMayDominateFarFromMax) {
  // §5.3: one DSS query holding ~50 % of maxLockMemory must stay below the
  // limit while total lock memory is far from the allowable maximum.
  AdaptiveMaxlocksPolicy policy;
  const Bytes max_lock = 100 * kMiB;
  const LockMemoryState s = MakeState(50 * kMiB, max_lock, kGiB, 1 << 20);
  policy.OnResize();
  const int64_t held_by_dss = (50 * kMiB) / kLockStructSize;
  EXPECT_GT(policy.MaxStructuresPerApp(s), held_by_dss);
}

TEST(AdaptivePolicyTest, RefreshPeriodDelaysRecompute) {
  AdaptiveMaxlocksPolicy policy(MaxlocksCurve(98.0, 3.0, 8));
  const LockMemoryState ample = MakeState(0, 100 * kMiB, kGiB, 2048);
  EXPECT_NEAR(policy.CurrentPercent(ample), 98.0, 1e-9);
  const LockMemoryState busy = MakeState(90 * kMiB, 100 * kMiB, kGiB, 2048);
  // Value is cached until the refresh period elapses.
  EXPECT_NEAR(policy.CurrentPercent(busy), 98.0, 1e-9);
  for (int i = 0; i < 8; ++i) policy.OnLockRequest();
  EXPECT_LT(policy.CurrentPercent(busy), 30.0);
}

TEST(AdaptivePolicyTest, ResizeForcesRecompute) {
  AdaptiveMaxlocksPolicy policy;
  const LockMemoryState ample = MakeState(0, 100 * kMiB, kGiB, 2048);
  EXPECT_NEAR(policy.CurrentPercent(ample), 98.0, 1e-9);
  const LockMemoryState busy = MakeState(90 * kMiB, 100 * kMiB, kGiB, 2048);
  policy.OnResize();
  EXPECT_LT(policy.CurrentPercent(busy), 30.0);
}

TEST(AdaptivePolicyTest, NeverForcesMemoryEscalation) {
  AdaptiveMaxlocksPolicy policy;
  const LockMemoryState s = MakeState(400 * kMiB, 500 * kMiB, kGiB, 1 << 20);
  EXPECT_FALSE(policy.ForcesMemoryEscalation(s));
}

TEST(FixedPolicyTest, PercentOfLockList) {
  FixedMaxlocksPolicy policy(10.0);
  // 10 % of an 8192-slot lock list.
  const LockMemoryState s = MakeState(0, 100 * kMiB, kGiB, 8192);
  EXPECT_EQ(policy.MaxStructuresPerApp(s), 819);
  EXPECT_DOUBLE_EQ(policy.CurrentPercent(s), 10.0);
}

TEST(FixedPolicyTest, LimitAtLeastOne) {
  FixedMaxlocksPolicy policy(1.0);
  const LockMemoryState s = MakeState(0, kMiB, kGiB, 10);
  EXPECT_GE(policy.MaxStructuresPerApp(s), 1);
}

TEST(SqlServerPolicyTest, FlatRowLockLimit) {
  SqlServerLockPolicy policy;
  const LockMemoryState small = MakeState(0, kGiB, kGiB, 2048);
  const LockMemoryState big = MakeState(0, kGiB, kGiB, 1 << 22);
  // 5000 regardless of lock memory (the paper: "if a single application
  // acquires 5000 row level locks an automatic lock escalation is
  // triggered regardless of the amount of memory available").
  EXPECT_EQ(policy.MaxStructuresPerApp(small), 5000);
  EXPECT_EQ(policy.MaxStructuresPerApp(big), 5000);
}

TEST(SqlServerPolicyTest, MemoryEscalationAtFortyPercent) {
  SqlServerLockPolicy policy;
  const Bytes db = kGiB;
  EXPECT_FALSE(policy.ForcesMemoryEscalation(
      MakeState(db * 39 / 100, db, db, 1 << 22)));
  EXPECT_TRUE(policy.ForcesMemoryEscalation(
      MakeState(db * 41 / 100, db, db, 1 << 22)));
}

}  // namespace
}  // namespace locktune
