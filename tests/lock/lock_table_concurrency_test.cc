// Parallel-mode stress: the sharded LockTable under its striped OptLatches
// and the LockManager fast path under real thread interleavings. These tests
// assert structural invariants after the dust settles (and data-race freedom
// under the TSan CI leg); they intentionally run with overlapping resource
// sets so shard latches, optimistic probes, the shared/exclusive manager
// lock, and the bail path all get exercised. Run with LOCKTUNE_PARANOID=1
// for every-operation validation (the `paranoid_lock_table_concurrency`
// ctest entry).
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/units.h"
#include "lock/lock_manager.h"
#include "lock/lock_table.h"

namespace locktune {
namespace {

LockRequest Granted(AppId app, LockMode mode) {
  LockRequest r;
  r.app = app;
  r.mode = mode;
  return r;
}

// Raw table discipline: every mutating touch of a resource's shard happens
// under ShardLatch(hash)'s write side, exactly as the lock manager's fast
// path does. Threads share a small resource universe so shards see genuine
// contention (MCS queueing on the latch).
TEST(LockTableConcurrencyTest, ShardedChurnKeepsConservation) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20'000;
  constexpr int64_t kRows = 512;  // spans all 16 shards, heavily shared
  LockTable table;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const AppId app = t + 1;
      Rng rng(static_cast<uint64_t>(t) * 977 + 1);
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const ResourceId res =
            RowResource(1, static_cast<int64_t>(rng.NextBelow(kRows)));
        const uint64_t hash = ResourceIdHash{}(res);
        OptLatchGuard shard_guard(table.ShardLatch(hash));
        LockHead& head = table.GetOrCreate(res, hash);
        // S locks are compatible, so holders from several apps coexist on
        // one head; each thread only ever adds/removes its own.
        head.AddHolder(Granted(app, LockMode::kS));
        head.RemoveHolder(app);
        table.EraseIfEmpty(res, hash);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Everything was removed symmetrically: the table drained, and every
  // pooled node is back on some shard's free list.
  EXPECT_EQ(table.size(), 0);
  EXPECT_EQ(table.pool_free_nodes(), table.pool_total_nodes());
  EXPECT_TRUE(table.CheckConsistency().ok());
}

// Optimistic probes racing latched writers: reader threads hammer OptProbe
// on the same rows writer threads churn (create/insert/erase, forcing
// rehashes through occupancy growth). Every valid=true result must be
// self-consistent; invalid results are the expected outcome of racing a
// writer and carry no information.
TEST(LockTableConcurrencyTest, OptProbeRacesLatchedWriters) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kOpsPerThread = 20'000;
  constexpr int64_t kRows = 64;  // hot: maximizes probe/write overlap
  LockTable table;
  std::atomic<int> ready{0};
  std::atomic<bool> done{false};
  std::atomic<int64_t> valid_probes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      const AppId app = t + 1;
      Rng rng(static_cast<uint64_t>(t) * 31 + 7);
      ready.fetch_add(1);
      while (ready.load() < kWriters + kReaders) std::this_thread::yield();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const ResourceId res =
            RowResource(1, static_cast<int64_t>(rng.NextBelow(kRows)));
        const uint64_t hash = ResourceIdHash{}(res);
        OptLatchGuard shard_guard(table.ShardLatch(hash));
        LockHead& head = table.GetOrCreate(res, hash);
        head.AddHolder(Granted(app, LockMode::kS));
        head.RemoveHolder(app);
        table.EraseIfEmpty(res, hash);
      }
      done.store(true);
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 53 + 11);
      ready.fetch_add(1);
      while (ready.load() < kWriters + kReaders) std::this_thread::yield();
      while (!done.load(std::memory_order_relaxed)) {
        const ResourceId res =
            RowResource(1, static_cast<int64_t>(rng.NextBelow(kRows)));
        const uint64_t hash = ResourceIdHash{}(res);
        const LockTable::OptProbeResult probe = table.OptProbe(res, hash);
        if (!probe.valid) continue;
        valid_probes.fetch_add(1, std::memory_order_relaxed);
        if (probe.found) {
          // A validated snapshot of a found head must decode sanely: the
          // writers only ever install S holders with no waiters.
          EXPECT_FALSE(LockHead::SummaryHasWaiters(probe.summary));
          EXPECT_LE(LockHead::SummaryHolderCount(probe.summary), 1u);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(valid_probes.load(), 0);
  EXPECT_EQ(table.size(), 0);
  EXPECT_TRUE(table.CheckConsistency().ok());
}

class ParallelModeTest : public ::testing::Test {
 protected:
  void Make(double maxlocks_percent, int64_t initial_blocks,
            bool allow_growth) {
    policy_ = std::make_unique<FixedMaxlocksPolicy>(maxlocks_percent);
    LockManagerOptions opts;
    opts.initial_blocks = initial_blocks;
    opts.max_lock_memory = 64 * kMiB;
    opts.database_memory = kGiB;
    opts.policy = policy_.get();
    if (allow_growth) {
      opts.grow_callback = [](int64_t) { return true; };
    }
    lm_ = std::make_unique<LockManager>(std::move(opts));
    lm_->SetParallelMode(true);
  }

  std::unique_ptr<EscalationPolicy> policy_;
  std::unique_ptr<LockManager> lm_;
};

// Uncontended-fast-path mix: disjoint tables per thread, so nearly every
// request takes the shared-lock fast path end to end.
TEST_F(ParallelModeTest, DisjointFastPathDrainsClean) {
  Make(/*maxlocks_percent=*/90.0, /*initial_blocks=*/64,
       /*allow_growth=*/true);
  constexpr int kThreads = 8;
  constexpr int kTxns = 300;
  constexpr int64_t kLocksPerTxn = 40;
  std::atomic<int64_t> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const AppId app = t + 1;
      for (int txn = 0; txn < kTxns; ++txn) {
        for (int64_t r = 0; r < kLocksPerTxn; ++r) {
          const LockResult res = lm_->Lock(
              app, RowResource(t, txn * kLocksPerTxn + r), LockMode::kX);
          if (res.outcome == LockOutcome::kGranted) {
            granted.fetch_add(1, std::memory_order_relaxed);
          }
        }
        lm_->ReleaseAll(app);
      }
    });
  }
  for (auto& th : threads) th.join();
  lm_->SetParallelMode(false);
  EXPECT_EQ(granted.load(), kThreads * kTxns * kLocksPerTxn);
  EXPECT_EQ(lm_->used_bytes(), 0);
  EXPECT_EQ(lm_->lock_table_size(), 0);
  EXPECT_TRUE(lm_->CheckConsistency().ok());
}

// Hot-shard mix: every thread hammers the same 64 rows, forcing shard-mutex
// contention, conversion attempts, waits (which bail to the exclusive
// classic path), and the two-pass fast release against heads other threads
// are probing.
TEST_F(ParallelModeTest, HotShardContentionStaysConsistent) {
  Make(/*maxlocks_percent=*/90.0, /*initial_blocks=*/64,
       /*allow_growth=*/true);
  constexpr int kThreads = 8;
  constexpr int kOps = 30'000;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const AppId app = t + 1;
      Rng rng(static_cast<uint64_t>(t) + 17);
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kOps; ++i) {
        const int64_t row = static_cast<int64_t>(rng.NextBelow(64));
        const LockResult res =
            lm_->Lock(app, RowResource(9, row),
                      rng.NextBool(0.5) ? LockMode::kX : LockMode::kS);
        if (res.outcome == LockOutcome::kWaiting) {
          // A waiting app cannot issue further requests; roll back like an
          // impatient client. Exercises FastReleaseAll's waiting bail.
          lm_->ReleaseAll(app);
        } else if (rng.NextBool(0.3)) {
          lm_->ReleaseAll(app);
        }
      }
      lm_->ReleaseAll(app);
    });
  }
  for (auto& th : threads) th.join();
  lm_->SetParallelMode(false);
  EXPECT_EQ(lm_->used_bytes(), 0);
  EXPECT_EQ(lm_->waiting_app_count(), 0);
  EXPECT_TRUE(lm_->CheckConsistency().ok());
}

// Escalation churn: a 1% quota with no growth forces constant escalation,
// which always bails from the fast path into the exclusive classic path —
// the highest-traffic crossing between the two locking regimes.
TEST_F(ParallelModeTest, EscalationBailPathUnderThreads) {
  Make(/*maxlocks_percent=*/1.0, /*initial_blocks=*/1,
       /*allow_growth=*/false);
  constexpr int kThreads = 4;
  constexpr int kTxns = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const AppId app = t + 1;
      for (int txn = 0; txn < kTxns; ++txn) {
        for (int64_t r = 0; r < 64; ++r) {
          (void)lm_->Lock(app, RowResource(t, r), LockMode::kX);
        }
        lm_->ReleaseAll(app);
      }
    });
  }
  for (auto& th : threads) th.join();
  lm_->SetParallelMode(false);
  EXPECT_GT(lm_->stats().escalations, 0);
  EXPECT_EQ(lm_->used_bytes(), 0);
  EXPECT_TRUE(lm_->CheckConsistency().ok());
}

}  // namespace
}  // namespace locktune
