#include "lock/lock_trace_bridge.h"

#include <gtest/gtest.h>

#include "telemetry/trace.h"

namespace locktune {
namespace {

LockEvent MakeEvent(LockEventKind kind, AppId app, TimeMs t) {
  LockEvent e;
  e.kind = kind;
  e.app = app;
  e.time = t;
  return e;
}

TEST(TraceEventMonitorTest, NoSinkIsNoOp) {
  TraceEventMonitor bridge;
  bridge.OnLockEvent(MakeEvent(LockEventKind::kWaitBegin, 1, 0));  // no crash
  EXPECT_EQ(bridge.sink(), nullptr);
}

TEST(TraceEventMonitorTest, RendersLockEventRecord) {
  MemoryTraceSink sink;
  TraceEventMonitor bridge(&sink);
  LockEvent e = MakeEvent(LockEventKind::kWaitBegin, 7, 12'300);
  e.resource = RowResource(4, 99);
  e.mode = LockMode::kS;
  bridge.OnLockEvent(e);
  ASSERT_EQ(sink.records().size(), 1u);
  const TraceRecord& rec = sink.records()[0];
  EXPECT_EQ(rec.kind(), "lock_event");
  EXPECT_EQ(rec.time_ms(), 12'300);
  EXPECT_EQ(*rec.Find("event"), "\"WAIT_BEGIN\"");
  EXPECT_EQ(*rec.Find("app"), "7");
  EXPECT_EQ(*rec.Find("resource"), "\"row(4,99)\"");
  EXPECT_EQ(*rec.Find("mode"), "\"S\"");
}

TEST(TraceEventMonitorTest, WaitEndCarriesWaitMs) {
  MemoryTraceSink sink;
  TraceEventMonitor bridge(&sink);
  LockEvent e = MakeEvent(LockEventKind::kWaitEnd, 3, 500);
  e.value = 250;
  bridge.OnLockEvent(e);
  EXPECT_EQ(*sink.records()[0].Find("wait_ms"), "250");
}

TEST(TraceEventMonitorTest, EscalationCarriesRowsReleased) {
  MemoryTraceSink sink;
  TraceEventMonitor bridge(&sink);
  LockEvent e = MakeEvent(LockEventKind::kEscalation, 3, 500);
  e.value = 1024;
  bridge.OnLockEvent(e);
  EXPECT_EQ(*sink.records()[0].Find("rows_released"), "1024");
  EXPECT_EQ(sink.records()[0].Find("wait_ms"), nullptr);
}

TEST(TraceEventMonitorTest, SinkSettableAfterConstruction) {
  MemoryTraceSink sink;
  TraceEventMonitor bridge;
  bridge.OnLockEvent(MakeEvent(LockEventKind::kTimeout, 1, 0));  // dropped
  bridge.set_sink(&sink);
  bridge.OnLockEvent(MakeEvent(LockEventKind::kTimeout, 1, 0));
  bridge.set_sink(nullptr);
  bridge.OnLockEvent(MakeEvent(LockEventKind::kTimeout, 1, 0));  // dropped
  EXPECT_EQ(sink.records().size(), 1u);
}

}  // namespace
}  // namespace locktune
