#include "lock/lock_head.h"

#include <gtest/gtest.h>

namespace locktune {
namespace {

LockRequest Granted(AppId app, LockMode mode) {
  LockRequest r;
  r.app = app;
  r.mode = mode;
  return r;
}

WaitingRequest Waiting(AppId app, LockMode mode, bool conversion = false) {
  WaitingRequest w;
  w.app = app;
  w.mode = mode;
  w.is_conversion = conversion;
  return w;
}

TEST(LockHeadTest, EmptyHead) {
  LockHead head;
  EXPECT_TRUE(head.empty());
  EXPECT_EQ(head.GrantedGroupMode(), LockMode::kNone);
  EXPECT_TRUE(head.CanGrantNew(LockMode::kX));
}

TEST(LockHeadTest, FindHolder) {
  LockHead head;
  head.AddHolder(Granted(1, LockMode::kS));
  EXPECT_NE(head.FindHolder(1), nullptr);
  EXPECT_EQ(head.FindHolder(1)->mode, LockMode::kS);
  EXPECT_EQ(head.FindHolder(2), nullptr);
}

TEST(LockHeadTest, GrantedGroupModeIsSupremum) {
  LockHead head;
  head.AddHolder(Granted(1, LockMode::kIS));
  head.AddHolder(Granted(2, LockMode::kIX));
  EXPECT_EQ(head.GrantedGroupMode(), LockMode::kIX);
  head.AddHolder(Granted(3, LockMode::kIS));
  EXPECT_EQ(head.GrantedGroupMode(), LockMode::kIX);
}

TEST(LockHeadTest, GrantedGroupModeExcludesApp) {
  LockHead head;
  head.AddHolder(Granted(1, LockMode::kIX));
  head.AddHolder(Granted(2, LockMode::kIS));
  EXPECT_EQ(head.GrantedGroupMode(1), LockMode::kIS);
}

// Figure 3 of the paper: two compatible share requests join the granted
// group; an incompatible exclusive request chains behind them; a later
// share request queues behind the exclusive (no overtaking).
TEST(LockHeadTest, Figure3LockQueuing) {
  LockHead head;
  // app_1 reads the row: share lock granted.
  ASSERT_TRUE(head.CanGrantNew(LockMode::kS));
  head.AddHolder(Granted(1, LockMode::kS));
  // app_2 asks for share: compatible, shares the lock object.
  ASSERT_TRUE(head.CanGrantNew(LockMode::kS));
  head.AddHolder(Granted(2, LockMode::kS));
  // app_3 asks for exclusive: incompatible, chains.
  ASSERT_FALSE(head.CanGrantNew(LockMode::kX));
  head.EnqueueNew(Waiting(3, LockMode::kX));
  // app_4 asks for share: compatible with the granted group but must queue
  // up behind application 3 (FIFO post discipline).
  EXPECT_FALSE(head.CanGrantNew(LockMode::kS));
  head.EnqueueNew(Waiting(4, LockMode::kS));

  // Both readers release: app_3 is serviced first, then app_4 behind it.
  head.RemoveHolder(1);
  head.RemoveHolder(2);
  EXPECT_EQ(head.FrontWaiter().app, 3);
  EXPECT_TRUE(Compatible(head.GrantedGroupMode(), LockMode::kX));
}

TEST(LockHeadTest, ConversionQueuesAheadOfNewRequests) {
  LockHead head;
  head.AddHolder(Granted(1, LockMode::kS));
  head.AddHolder(Granted(2, LockMode::kS));
  head.EnqueueNew(Waiting(3, LockMode::kX));
  // App 2 converts S → X: must go ahead of app 3's new request.
  head.EnqueueConversion(Waiting(2, LockMode::kX, /*conversion=*/true));
  EXPECT_EQ(head.FrontWaiter().app, 2);
  EXPECT_TRUE(head.FrontWaiter().is_conversion);
}

TEST(LockHeadTest, ConversionsKeepRelativeOrder) {
  LockHead head;
  head.AddHolder(Granted(1, LockMode::kS));
  head.AddHolder(Granted(2, LockMode::kS));
  head.AddHolder(Granted(3, LockMode::kS));
  head.EnqueueConversion(Waiting(2, LockMode::kX, true));
  head.EnqueueConversion(Waiting(3, LockMode::kX, true));
  EXPECT_EQ(head.waiters()[0].app, 2);
  EXPECT_EQ(head.waiters()[1].app, 3);
}

TEST(LockHeadTest, CanGrantConversionIgnoresSelf) {
  LockHead head;
  head.AddHolder(Granted(1, LockMode::kS));
  // Sole holder can always strengthen its own lock.
  EXPECT_TRUE(head.CanGrantConversion(1, LockMode::kX));
  head.AddHolder(Granted(2, LockMode::kS));
  // With another S holder, S→X must wait.
  EXPECT_FALSE(head.CanGrantConversion(1, LockMode::kX));
  // But S→U is compatible with the other S.
  EXPECT_TRUE(head.CanGrantConversion(1, LockMode::kU));
}

TEST(LockHeadTest, RemoveHolderReturnsSlot) {
  LockHead head;
  auto* fake_slot = reinterpret_cast<LockBlock*>(0x1234);
  LockRequest r = Granted(1, LockMode::kS);
  r.slot = fake_slot;
  head.AddHolder(r);
  EXPECT_EQ(head.RemoveHolder(1), fake_slot);
  EXPECT_EQ(head.RemoveHolder(1), nullptr);  // already gone
  EXPECT_TRUE(head.empty());
}

TEST(LockHeadTest, RemoveWaiter) {
  LockHead head;
  head.AddHolder(Granted(1, LockMode::kX));
  head.EnqueueNew(Waiting(2, LockMode::kS));
  head.EnqueueNew(Waiting(3, LockMode::kS));
  bool removed = false;
  head.RemoveWaiter(2, &removed);
  EXPECT_TRUE(removed);
  EXPECT_EQ(head.waiters().size(), 1u);
  EXPECT_EQ(head.FrontWaiter().app, 3);
  head.RemoveWaiter(9, &removed);
  EXPECT_FALSE(removed);
}

TEST(LockHeadTest, HasWaiter) {
  LockHead head;
  head.EnqueueNew(Waiting(5, LockMode::kS));
  EXPECT_TRUE(head.HasWaiter(5));
  EXPECT_FALSE(head.HasWaiter(6));
}

// A conversion goes ahead of every new waiter but behind conversions that
// arrived before it — mixing both kinds in one queue.
TEST(LockHeadTest, ConversionOrderingWithMixedQueue) {
  LockHead head;
  head.AddHolder(Granted(1, LockMode::kS));
  head.AddHolder(Granted(2, LockMode::kS));
  head.AddHolder(Granted(3, LockMode::kS));
  head.EnqueueNew(Waiting(4, LockMode::kX));
  head.EnqueueConversion(Waiting(2, LockMode::kX, true));
  head.EnqueueNew(Waiting(5, LockMode::kS));
  head.EnqueueConversion(Waiting(3, LockMode::kU, true));
  ASSERT_EQ(head.waiters().size(), 4u);
  EXPECT_EQ(head.waiters()[0].app, 2);  // first conversion
  EXPECT_EQ(head.waiters()[1].app, 3);  // second conversion, behind the first
  EXPECT_EQ(head.waiters()[2].app, 4);  // new requests keep arrival order
  EXPECT_EQ(head.waiters()[3].app, 5);
}

// Aborting a mid-queue waiter must not reorder the survivors.
TEST(LockHeadTest, FifoPreservedAfterMidQueueRemoval) {
  LockHead head;
  head.AddHolder(Granted(1, LockMode::kX));
  head.EnqueueNew(Waiting(2, LockMode::kS));
  head.EnqueueNew(Waiting(3, LockMode::kX));
  head.EnqueueNew(Waiting(4, LockMode::kS));
  bool removed = false;
  head.RemoveWaiter(3, &removed);
  ASSERT_TRUE(removed);
  ASSERT_EQ(head.waiters().size(), 2u);
  EXPECT_EQ(head.waiters()[0].app, 2);
  EXPECT_EQ(head.waiters()[1].app, 4);
}

// Clear() empties the head but keeps the vectors' capacity: recycled pool
// nodes must re-enter service without reallocating.
TEST(LockHeadTest, ClearKeepsCapacity) {
  LockHead head;
  for (AppId a = 1; a <= 16; ++a) head.AddHolder(Granted(a, LockMode::kIS));
  head.AddHolder(Granted(17, LockMode::kIX));
  head.EnqueueNew(Waiting(18, LockMode::kX));
  head.EnqueueNew(Waiting(19, LockMode::kS));
  const size_t holder_cap = head.holders().capacity();
  ASSERT_GE(holder_cap, 17u);
  head.Clear();
  EXPECT_TRUE(head.empty());
  EXPECT_EQ(head.GrantedGroupMode(), LockMode::kNone);
  EXPECT_EQ(head.holders().capacity(), holder_cap);
  // The cleared head behaves like a brand-new one.
  EXPECT_TRUE(head.CanGrantNew(LockMode::kX));
  head.AddHolder(Granted(1, LockMode::kS));
  EXPECT_EQ(head.GrantedGroupMode(), LockMode::kS);
}

// Conversions being granted via the queue must pop in conversion-first
// order even when a new waiter arrived earlier in wall-clock time.
TEST(LockHeadTest, PopServicesConversionsFirst) {
  LockHead head;
  head.AddHolder(Granted(1, LockMode::kS));
  head.EnqueueNew(Waiting(2, LockMode::kX));
  head.EnqueueConversion(Waiting(1, LockMode::kX, true));
  EXPECT_EQ(head.PopFrontWaiter().app, 1);
  EXPECT_EQ(head.PopFrontWaiter().app, 2);
}

TEST(LockHeadTest, PopFrontWaiterFifo) {
  LockHead head;
  head.EnqueueNew(Waiting(1, LockMode::kX));
  head.EnqueueNew(Waiting(2, LockMode::kS));
  EXPECT_EQ(head.PopFrontWaiter().app, 1);
  EXPECT_EQ(head.PopFrontWaiter().app, 2);
  EXPECT_TRUE(head.empty());
}

}  // namespace
}  // namespace locktune
