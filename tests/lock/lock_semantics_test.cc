// Protocol-level semantics of the lock manager: update (U) locks, SIX
// interplay, mixed-mode escalations, queue processing during conversions,
// and multigranularity corner cases.
#include <memory>

#include <gtest/gtest.h>

#include "common/units.h"
#include "lock/lock_manager.h"

namespace locktune {
namespace {

constexpr TableId kOrders = 1;
constexpr TableId kStock = 2;

class LockSemanticsTest : public ::testing::Test {
 protected:
  LockSemanticsTest() { Make(90.0); }

  void Make(double maxlocks_percent) {
    policy_ = std::make_unique<FixedMaxlocksPolicy>(maxlocks_percent);
    LockManagerOptions opts;
    opts.initial_blocks = 8;
    opts.max_lock_memory = 64 * kMiB;
    opts.database_memory = kGiB;
    opts.policy = policy_.get();
    lm_ = std::make_unique<LockManager>(std::move(opts));
  }

  LockResult Lock(AppId app, int64_t row, LockMode mode,
                  TableId table = kOrders) {
    return lm_->Lock(app, RowResource(table, row), mode);
  }

  std::unique_ptr<EscalationPolicy> policy_;
  std::unique_ptr<LockManager> lm_;
};

// --- update (U) locks: the lost-update protocol ---

TEST_F(LockSemanticsTest, ULockCoexistsWithReaders) {
  ASSERT_EQ(Lock(1, 5, LockMode::kS).outcome, LockOutcome::kGranted);
  EXPECT_EQ(Lock(2, 5, LockMode::kU).outcome, LockOutcome::kGranted);
  // A later reader may still join.
  EXPECT_EQ(Lock(3, 5, LockMode::kS).outcome, LockOutcome::kGranted);
}

TEST_F(LockSemanticsTest, SecondULockWaits) {
  ASSERT_EQ(Lock(1, 5, LockMode::kU).outcome, LockOutcome::kGranted);
  EXPECT_EQ(Lock(2, 5, LockMode::kU).outcome, LockOutcome::kWaiting);
}

TEST_F(LockSemanticsTest, ULockTakesIXIntent) {
  // U signals intent to update, so the table intent is IX, not IS.
  ASSERT_EQ(Lock(1, 5, LockMode::kU).outcome, LockOutcome::kGranted);
  EXPECT_EQ(lm_->HeldMode(1, TableResource(kOrders)), LockMode::kIX);
}

TEST_F(LockSemanticsTest, UUpgradesToXWaitingOutReaders) {
  ASSERT_EQ(Lock(1, 5, LockMode::kU).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(2, 5, LockMode::kS).outcome, LockOutcome::kGranted);
  // The updater decides to write: U → X must wait for the reader only.
  EXPECT_EQ(Lock(1, 5, LockMode::kX).outcome, LockOutcome::kWaiting);
  lm_->ReleaseAll(2);
  EXPECT_FALSE(lm_->IsBlocked(1));
  EXPECT_EQ(lm_->HeldMode(1, RowResource(kOrders, 5)), LockMode::kX);
}

TEST_F(LockSemanticsTest, ULockPreventsUpgradeRace) {
  // The classic deadlock U locks exist to prevent: two S holders upgrading
  // to X deadlock; with U, the second updater is stopped at acquisition.
  ASSERT_EQ(Lock(1, 5, LockMode::kU).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(2, 5, LockMode::kU).outcome, LockOutcome::kWaiting);
  // App 1 upgrades and commits; no deadlock is possible.
  EXPECT_EQ(Lock(1, 5, LockMode::kX).outcome, LockOutcome::kGranted);
  EXPECT_TRUE(lm_->DetectDeadlocks().empty());
  lm_->ReleaseAll(1);
  EXPECT_FALSE(lm_->IsBlocked(2));
  EXPECT_EQ(lm_->HeldMode(2, RowResource(kOrders, 5)), LockMode::kU);
}

// --- SIX and table-level interplay ---

TEST_F(LockSemanticsTest, SIXFromTableSPlusRowWrite) {
  // A table-scanning reader that updates selected rows: table S, then a
  // row X forces the table to SIX (S + IX).
  ASSERT_EQ(lm_->Lock(1, TableResource(kOrders), LockMode::kS).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(Lock(1, 5, LockMode::kX).outcome, LockOutcome::kGranted);
  EXPECT_EQ(lm_->HeldMode(1, TableResource(kOrders)), LockMode::kSIX);
}

TEST_F(LockSemanticsTest, SIXBlocksOtherReadersRows) {
  ASSERT_EQ(lm_->Lock(1, TableResource(kOrders), LockMode::kS).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(Lock(1, 5, LockMode::kX).outcome, LockOutcome::kGranted);
  // Another app's row S needs IS on the table: compatible with SIX.
  EXPECT_EQ(Lock(2, 6, LockMode::kS).outcome, LockOutcome::kGranted);
  // But a row write (IX intent) is not.
  EXPECT_EQ(Lock(3, 7, LockMode::kX).outcome, LockOutcome::kWaiting);
}

TEST_F(LockSemanticsTest, TableSLockCoversRowReads) {
  ASSERT_EQ(lm_->Lock(1, TableResource(kOrders), LockMode::kS).outcome,
            LockOutcome::kGranted);
  const int64_t before = lm_->HeldStructures(1);
  for (int64_t r = 0; r < 100; ++r) {
    ASSERT_EQ(Lock(1, r, LockMode::kS).outcome, LockOutcome::kGranted);
  }
  EXPECT_EQ(lm_->HeldStructures(1), before);  // all covered
}

TEST_F(LockSemanticsTest, TableXCoversEverything) {
  ASSERT_EQ(lm_->Lock(1, TableResource(kOrders), LockMode::kX).outcome,
            LockOutcome::kGranted);
  const int64_t before = lm_->HeldStructures(1);
  ASSERT_EQ(Lock(1, 1, LockMode::kS).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(1, 2, LockMode::kU).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(1, 3, LockMode::kX).outcome, LockOutcome::kGranted);
  EXPECT_EQ(lm_->HeldStructures(1), before);
}

TEST_F(LockSemanticsTest, IntentLocksDoNotCoverRows) {
  // IS on the table does not grant any row: a row lock is still required
  // (and counted).
  ASSERT_EQ(lm_->Lock(1, TableResource(kOrders), LockMode::kIS).outcome,
            LockOutcome::kGranted);
  const int64_t before = lm_->HeldStructures(1);
  ASSERT_EQ(Lock(1, 1, LockMode::kS).outcome, LockOutcome::kGranted);
  EXPECT_EQ(lm_->HeldStructures(1), before + 1);
}

// --- escalation with mixed modes ---

TEST_F(LockSemanticsTest, MixedRowModesEscalateToX) {
  Make(10.0);  // 8 blocks → limit = 1638 structures
  // Mostly reads plus a single U lock: the escalated table lock must be X
  // (U counts as a write intent).
  ASSERT_EQ(Lock(1, 999'999, LockMode::kU).outcome, LockOutcome::kGranted);
  LockResult last;
  for (int64_t r = 0; r < 2000; ++r) {
    last = Lock(1, r, LockMode::kS);
    ASSERT_EQ(last.outcome, LockOutcome::kGranted);
    if (last.escalated) break;
  }
  ASSERT_TRUE(last.escalated);
  EXPECT_EQ(lm_->HeldMode(1, TableResource(kOrders)), LockMode::kX);
  EXPECT_EQ(lm_->stats().exclusive_escalations, 1);
}

TEST_F(LockSemanticsTest, EscalationLeavesOtherTablesIntact) {
  Make(10.0);
  for (int64_t r = 0; r < 100; ++r) {
    ASSERT_EQ(Lock(1, r, LockMode::kS, kStock).outcome,
              LockOutcome::kGranted);
  }
  LockResult last;
  for (int64_t r = 0; r < 3000; ++r) {
    last = Lock(1, r, LockMode::kS, kOrders);
    ASSERT_EQ(last.outcome, LockOutcome::kGranted);
    if (last.escalated) break;
  }
  ASSERT_TRUE(last.escalated);
  // kOrders escalated; kStock's row locks and IS intent are untouched.
  EXPECT_EQ(lm_->HeldMode(1, RowResource(kStock, 0)), LockMode::kS);
  EXPECT_EQ(lm_->HeldMode(1, TableResource(kStock)), LockMode::kIS);
  EXPECT_TRUE(lm_->CheckConsistency().ok());
}

TEST_F(LockSemanticsTest, RepeatEscalationMovesToNextTable) {
  Make(10.0);
  // Escalate kOrders first.
  LockResult last;
  for (int64_t r = 0; r < 3000; ++r) {
    last = Lock(1, r, LockMode::kS, kOrders);
    if (last.escalated) break;
  }
  ASSERT_TRUE(last.escalated);
  // Continue on kStock until the quota bites again: the second escalation
  // must pick kStock (kOrders has no row locks anymore).
  for (int64_t r = 0; r < 3000; ++r) {
    last = Lock(1, r, LockMode::kS, kStock);
    ASSERT_EQ(last.outcome, LockOutcome::kGranted);
    if (last.escalated) break;
  }
  ASSERT_TRUE(last.escalated);
  EXPECT_EQ(lm_->HeldMode(1, TableResource(kStock)), LockMode::kS);
  EXPECT_EQ(lm_->stats().escalations, 2);
}

// --- queue processing corners ---

TEST_F(LockSemanticsTest, ConversionGrantCascadesToCompatibleWaiters) {
  ASSERT_EQ(Lock(1, 5, LockMode::kS).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(2, 5, LockMode::kS).outcome, LockOutcome::kGranted);
  // App 1 wants U (compatible with app 2's S): immediate.
  ASSERT_EQ(Lock(1, 5, LockMode::kU).outcome, LockOutcome::kGranted);
  // App 3's S joins (S is compatible with S+U).
  EXPECT_EQ(Lock(3, 5, LockMode::kS).outcome, LockOutcome::kGranted);
}

TEST_F(LockSemanticsTest, AbortedWaiterUnblocksThoseBehindIt) {
  ASSERT_EQ(Lock(1, 5, LockMode::kS).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(2, 5, LockMode::kX).outcome, LockOutcome::kWaiting);
  ASSERT_EQ(Lock(3, 5, LockMode::kS).outcome, LockOutcome::kWaiting);
  // App 2 (the X waiter at the head of the queue) rolls back: app 3's S is
  // compatible with app 1's S and must be granted right away.
  lm_->ReleaseAll(2);
  EXPECT_FALSE(lm_->IsBlocked(3));
  EXPECT_EQ(lm_->HeldMode(3, RowResource(kOrders, 5)), LockMode::kS);
}

TEST_F(LockSemanticsTest, WaiterChainDrainsInOrder) {
  ASSERT_EQ(Lock(1, 5, LockMode::kX).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(2, 5, LockMode::kX).outcome, LockOutcome::kWaiting);
  ASSERT_EQ(Lock(3, 5, LockMode::kX).outcome, LockOutcome::kWaiting);
  ASSERT_EQ(Lock(4, 5, LockMode::kX).outcome, LockOutcome::kWaiting);
  for (AppId app : {1, 2, 3}) {
    lm_->ReleaseAll(app);
    // Exactly the next waiter got the lock.
    const AppId next = app + 1;
    EXPECT_FALSE(lm_->IsBlocked(next));
    EXPECT_EQ(lm_->HeldMode(next, RowResource(kOrders, 5)), LockMode::kX);
    if (next < 4) {
      EXPECT_TRUE(lm_->IsBlocked(next + 1));
    }
  }
}

TEST_F(LockSemanticsTest, IntentConversionContinuationAcquiresRow) {
  // App 1 holds table S (blocking IX intents). App 2 requests a row X: its
  // intent conversion waits; when app 1 releases, the whole chain (intent
  // then row) completes without another call.
  ASSERT_EQ(lm_->Lock(1, TableResource(kOrders), LockMode::kS).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(Lock(2, 5, LockMode::kX).outcome, LockOutcome::kWaiting);
  lm_->ReleaseAll(1);
  EXPECT_FALSE(lm_->IsBlocked(2));
  EXPECT_EQ(lm_->HeldMode(2, TableResource(kOrders)), LockMode::kIX);
  EXPECT_EQ(lm_->HeldMode(2, RowResource(kOrders, 5)), LockMode::kX);
  EXPECT_TRUE(lm_->CheckConsistency().ok());
}

TEST_F(LockSemanticsTest, HeldModeOfUnknownResourceIsNone) {
  EXPECT_EQ(lm_->HeldMode(1, RowResource(kOrders, 42)), LockMode::kNone);
  EXPECT_EQ(lm_->HeldStructures(99), 0);
  EXPECT_FALSE(lm_->IsBlocked(99));
}

}  // namespace
}  // namespace locktune
