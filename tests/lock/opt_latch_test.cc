// OptLatch semantics: the seqlock-style version protocol, MCS queue
// handoff, and the retry-then-pessimize contract the lock manager's fast
// path builds on (docs/LATCHES.md). The threaded tests double as the TSan
// CI leg's witnesses that the optimistic-read protocol is annotated
// race-free.
#include "lock/opt_latch.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "lock/lock_manager.h"
#include "lock/resource.h"

namespace locktune {
namespace {

TEST(OptLatchTest, VersionIsEvenWhenFreeOddWhenHeld) {
  OptLatch latch;
  EXPECT_EQ(latch.version(), 0u);
  McsNode node;
  latch.Lock(node);
  EXPECT_EQ(latch.version() & 1, 1u) << "held latch must read odd";
  latch.Unlock(node);
  EXPECT_EQ(latch.version() & 1, 0u) << "free latch must read even";
}

TEST(OptLatchTest, VersionIsMonotoneAcrossWriteSections) {
  OptLatch latch;
  uint64_t last = latch.version();
  for (int i = 0; i < 100; ++i) {
    OptLatchGuard guard(latch);
    (void)guard;
    const uint64_t inside = latch.version();
    EXPECT_GT(inside, last);
    last = inside;
  }
  EXPECT_EQ(latch.version(), 200u);  // two bumps per write section
}

TEST(OptLatchTest, ReadValidateSucceedsWhenNoWriterRan) {
  OptLatch latch;
  const uint64_t v = latch.ReadBegin();
  EXPECT_EQ(v & 1, 0u);
  EXPECT_TRUE(latch.ReadValidate(v));
}

TEST(OptLatchTest, ReadValidateFailsAcrossAWriteSection) {
  OptLatch latch;
  const uint64_t v = latch.ReadBegin();
  {
    OptLatchGuard guard(latch);
    (void)guard;
  }
  EXPECT_FALSE(latch.ReadValidate(v));
}

TEST(OptLatchTest, ReadBeginReportsBusyWhileWriterHolds) {
  OptLatch latch;
  McsNode node;
  latch.Lock(node);
  // ReadBegin spins briefly, then gives up and reports the odd version —
  // the caller's signal to pessimize without a full retry loop.
  EXPECT_EQ(latch.ReadBegin() & 1, 1u);
  EXPECT_TRUE(latch.Busy());
  latch.Unlock(node);
  EXPECT_FALSE(latch.Busy());
}

TEST(OptLatchTest, TryLockOnlySucceedsWhenFree) {
  OptLatch latch;
  McsNode a;
  McsNode b;
  EXPECT_TRUE(latch.TryLock(a));
  EXPECT_FALSE(latch.TryLock(b));
  latch.Unlock(a);
  EXPECT_TRUE(latch.TryLock(b));
  latch.Unlock(b);
}

// A reader that samples the version, reads a multi-word payload mutated
// under the latch, and validates, must never observe a torn payload in a
// validated snapshot — the seqlock guarantee.
TEST(OptLatchTest, ValidatedReadsNeverObserveTornWrites) {
  OptLatch latch;
  // Payload words are relaxed atomics, as the protocol requires of all
  // optimistically-read state.
  std::atomic<uint64_t> a{0};
  std::atomic<uint64_t> b{0};
  std::atomic<bool> stop{false};
  std::atomic<int64_t> validated{0};
  std::atomic<int64_t> failures{0};
  std::thread writer([&] {
    for (uint64_t i = 1; i <= 200'000; ++i) {
      OptLatchGuard guard(latch);
      (void)guard;
      a.store(i, std::memory_order_relaxed);
      b.store(2 * i, std::memory_order_relaxed);
    }
    stop.store(true);
  });
  std::thread reader([&] {
    // On a 1-CPU host the reader may not get a timeslice until the writer
    // is done; keep going until at least one snapshot validated (trivial
    // once the latch is quiescent), so the final assertion is scheduling-
    // independent.
    while (!stop.load(std::memory_order_relaxed) ||
           validated.load(std::memory_order_relaxed) == 0) {
      const uint64_t v = latch.ReadBegin();
      if ((v & 1) != 0) continue;
      const uint64_t ra = a.load(std::memory_order_relaxed);
      const uint64_t rb = b.load(std::memory_order_relaxed);
      if (!latch.ReadValidate(v)) {
        failures.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      validated.fetch_add(1, std::memory_order_relaxed);
      ASSERT_EQ(rb, 2 * ra) << "validated snapshot was torn";
    }
  });
  writer.join();
  reader.join();
  EXPECT_GT(validated.load(), 0) << "reader never validated a snapshot";
  // Failures are expected (the writer runs hot) but not asserted: timing.
}

// FIFO handoff: per-thread critical sections must interleave one at a
// time, and the enqueue counter must see the contention.
TEST(OptLatchTest, QueuedWritersAreMutuallyExclusive) {
  OptLatch latch;
  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  int64_t counter = 0;  // plain int: only mutated inside the latch
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kIters; ++i) {
        OptLatchGuard guard(latch);
        (void)guard;
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIters);
  // Version: two bumps per critical section, all sections counted.
  EXPECT_EQ(latch.version(), 2u * kThreads * kIters);
}

TEST(OptLatchTest, EnqueueCountTracksContendedAcquisitions) {
  OptLatch latch;
  EXPECT_EQ(latch.enqueue_count(), 0u);
  {
    // Uncontended: no enqueue.
    OptLatchGuard guard(latch);
    (void)guard;
  }
  EXPECT_EQ(latch.enqueue_count(), 0u);
  // Force one genuine queue: a thread blocks while we hold the latch.
  McsNode holder;
  latch.Lock(holder);
  std::atomic<bool> queued_started{false};
  std::thread waiter([&] {
    queued_started.store(true);
    OptLatchGuard guard(latch);
    (void)guard;
  });
  while (!queued_started.load()) std::this_thread::yield();
  // Wait until the waiter has actually swapped itself into the tail.
  while (latch.enqueue_count() == 0) OptLatch::CpuRelax();
  latch.Unlock(holder);
  waiter.join();
  EXPECT_EQ(latch.enqueue_count(), 1u);
}

// The retry-then-pessimize ladder: a reader that keeps losing validation
// races must exhaust OptLatch::kOptReadRetries and fall back to the write
// latch, which always succeeds. Modeled exactly like the lock manager's
// FastAcquireOne loop.
TEST(OptLatchTest, PessimizeAfterRetriesAlwaysMakesProgress) {
  OptLatch latch;
  std::atomic<uint64_t> payload{0};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      OptLatchGuard guard(latch);
      (void)guard;
      payload.fetch_add(1, std::memory_order_relaxed);
    }
  });
  int64_t optimistic = 0;
  int64_t pessimized = 0;
  for (int i = 0; i < 50'000; ++i) {
    bool read_ok = false;
    for (int attempt = 0; attempt < OptLatch::kOptReadRetries; ++attempt) {
      if (latch.Busy()) continue;
      const uint64_t v = latch.ReadBegin();
      if ((v & 1) != 0) continue;
      (void)payload.load(std::memory_order_relaxed);
      if (latch.ReadValidate(v)) {
        read_ok = true;
        break;
      }
    }
    if (read_ok) {
      ++optimistic;
    } else {
      // Pessimize: the write latch cannot lose races, only wait its turn.
      OptLatchGuard guard(latch);
      (void)guard;
      (void)payload.load(std::memory_order_relaxed);
      ++pessimized;
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(optimistic + pessimized, 50'000);
}

// TSan-leg stress against the real lock manager: optimistic probes (inside
// FastAcquireOne) race latched grants, fast releases, and the escalation
// bail into the exclusive classic path — the full bail ladder of
// docs/LATCHES.md in one workload. The tight 4% quota forces frequent
// escalation crossings.
TEST(OptLatchTest, ManagerStressMixesOptimisticProbesWithEscalationBails) {
  FixedMaxlocksPolicy policy(4.0);
  LockManagerOptions opts;
  opts.initial_blocks = 4;
  opts.max_lock_memory = 16 * kMiB;
  opts.database_memory = kGiB;
  opts.policy = &policy;
  opts.grow_callback = [](int64_t) { return true; };
  LockManager lm(std::move(opts));
  lm.SetParallelMode(true);
  constexpr int kThreads = 8;
  constexpr int kTxns = 150;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const AppId app = t + 1;
      for (int txn = 0; txn < kTxns; ++txn) {
        // Half the rows land on a shared hot table (probe/bail traffic),
        // half on a private table (latched grants, escalation fodder).
        for (int64_t r = 0; r < 48; ++r) {
          const ResourceId res = (r % 2 == 0)
                                     ? RowResource(99, r)
                                     : RowResource(t, txn * 48 + r);
          const LockResult result = lm.Lock(app, res, LockMode::kS);
          if (result.outcome == LockOutcome::kWaiting) break;
        }
        lm.ReleaseAll(app);
      }
    });
  }
  for (auto& th : threads) th.join();
  lm.SetParallelMode(false);
  EXPECT_EQ(lm.used_bytes(), 0);
  EXPECT_EQ(lm.lock_table_size(), 0);
  EXPECT_TRUE(lm.CheckConsistency().ok());
}

}  // namespace
}  // namespace locktune
