// LockTable unit tests: shard routing, pooled node recycling, pointer
// stability, and the precomputed-hash fast paths the lock manager relies on.
#include "lock/lock_table.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "lock/escalation_policy.h"
#include "lock/lock_manager.h"
#include "lock/resource.h"

namespace locktune {
namespace {

LockRequest Granted(AppId app, LockMode mode) {
  LockRequest r;
  r.app = app;
  r.mode = mode;
  return r;
}

TEST(LockTableTest, FindMissesWhenEmpty) {
  LockTable table;
  EXPECT_EQ(table.Find(RowResource(1, 1)), nullptr);
  EXPECT_EQ(table.size(), 0);
}

TEST(LockTableTest, GetOrCreateInsertsOnceAndFinds) {
  LockTable table;
  LockHead& head = table.GetOrCreate(RowResource(3, 7));
  EXPECT_TRUE(head.empty());
  EXPECT_EQ(table.size(), 1);
  // Same key: same head, no second insert.
  EXPECT_EQ(&table.GetOrCreate(RowResource(3, 7)), &head);
  EXPECT_EQ(table.size(), 1);
  EXPECT_EQ(table.Find(RowResource(3, 7)), &head);
  // Row and table resources with the same ids are distinct keys.
  EXPECT_EQ(table.Find(TableResource(3)), nullptr);
}

TEST(LockTableTest, HashOverloadsAgreeWithConvenienceForms) {
  LockTable table;
  const ResourceId res = RowResource(5, 42);
  const uint64_t hash = ResourceIdHash{}(res);
  LockHead& head = table.GetOrCreate(res, hash);
  EXPECT_EQ(table.Find(res, hash), &head);
  EXPECT_EQ(table.Find(res), &head);
  EXPECT_TRUE(table.EraseIfEmpty(res, hash));
  EXPECT_EQ(table.Find(res), nullptr);
}

TEST(LockTableTest, CreateSkipsTheFind) {
  LockTable table;
  const ResourceId res = RowResource(2, 9);
  const uint64_t hash = ResourceIdHash{}(res);
  ASSERT_EQ(table.Find(res, hash), nullptr);
  LockHead& head = table.Create(res, hash);
  EXPECT_EQ(table.Find(res, hash), &head);
  EXPECT_EQ(table.size(), 1);
}

TEST(LockTableTest, EraseIfEmptyRespectsOccupancy) {
  LockTable table;
  const ResourceId res = RowResource(1, 1);
  // Absent key: nothing to erase.
  EXPECT_FALSE(table.EraseIfEmpty(res));
  LockHead& head = table.GetOrCreate(res);
  head.AddHolder(Granted(1, LockMode::kS));
  // Occupied head stays.
  EXPECT_FALSE(table.EraseIfEmpty(res));
  EXPECT_EQ(table.size(), 1);
  head.RemoveHolder(1);
  EXPECT_TRUE(table.EraseIfEmpty(res));
  EXPECT_EQ(table.size(), 0);
  EXPECT_EQ(table.Find(res), nullptr);
}

// Head addresses must survive arbitrary further inserts: the lock manager
// stores head pointers in per-application held lists and across grant
// cascades.
TEST(LockTableTest, HeadPointersAreStableAcrossInserts) {
  LockTable table;
  std::vector<LockHead*> heads;
  for (int i = 0; i < 100; ++i) {
    heads.push_back(&table.GetOrCreate(RowResource(1, i)));
  }
  for (int i = 100; i < 1000; ++i) {
    table.GetOrCreate(RowResource(1, i));  // force shard-map rehashes
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(table.Find(RowResource(1, i)), heads[i]) << "row " << i;
  }
}

TEST(LockTableTest, ShardCountAndOccupancy) {
  LockTable table(/*shard_count=*/4);
  EXPECT_EQ(table.shard_count(), 4);
  for (int i = 0; i < 64; ++i) table.GetOrCreate(RowResource(1, i));
  EXPECT_EQ(table.size(), 64);
  // The fullest shard holds at least the mean and no more than everything.
  EXPECT_GE(table.MaxShardSize(), 16);
  EXPECT_LE(table.MaxShardSize(), 64);
  // A single-shard table degenerates to one flat map and still works.
  LockTable one(/*shard_count=*/1);
  for (int i = 0; i < 32; ++i) one.GetOrCreate(RowResource(1, i));
  EXPECT_EQ(one.size(), 32);
  EXPECT_EQ(one.MaxShardSize(), 32);
}

TEST(LockTableTest, PoolRecyclesNodesWithoutNewSlabs) {
  // Pools are shard-local (a shard's mutex covers its own allocator), so
  // slab counts scale with the number of shards touched, not globally.
  LockTable table(/*shard_count=*/1);
  ASSERT_EQ(table.slab_count(), 0);
  for (int i = 0; i < 100; ++i) table.GetOrCreate(RowResource(1, i));
  EXPECT_EQ(table.slab_count(), 1);
  EXPECT_EQ(table.pool_free_nodes(), LockTable::kSlabNodes - 100);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.EraseIfEmpty(RowResource(1, i)));
  }
  EXPECT_EQ(table.pool_free_nodes(), LockTable::kSlabNodes);
  // Steady-state churn reuses recycled nodes: no slab growth.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 200; ++i) table.GetOrCreate(RowResource(2, i));
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(table.EraseIfEmpty(RowResource(2, i)));
    }
  }
  EXPECT_EQ(table.slab_count(), 1);
  EXPECT_EQ(table.pool_total_nodes(), LockTable::kSlabNodes);
}

TEST(LockTableTest, PoolGrowsByWholeSlabs) {
  LockTable table(/*shard_count=*/1);
  const int n = LockTable::kSlabNodes + 1;
  for (int i = 0; i < n; ++i) table.GetOrCreate(RowResource(1, i));
  EXPECT_EQ(table.slab_count(), 2);
  EXPECT_EQ(table.pool_total_nodes(), 2 * LockTable::kSlabNodes);
  EXPECT_EQ(table.pool_free_nodes(), 2 * LockTable::kSlabNodes - n);
}

TEST(LockTableTest, ShardedPoolsAreIndependent) {
  // A default (16-shard) table allocates one slab per shard it touches;
  // conservation (live + free == slabs * kSlabNodes) holds per shard and in
  // the summed gauges.
  LockTable table;
  for (int i = 0; i < 100; ++i) table.GetOrCreate(RowResource(1, i));
  EXPECT_GE(table.slab_count(), 1);
  EXPECT_LE(table.slab_count(), table.shard_count());
  EXPECT_EQ(table.pool_total_nodes(),
            table.slab_count() * LockTable::kSlabNodes);
  EXPECT_EQ(table.pool_free_nodes(), table.pool_total_nodes() - 100);
  ASSERT_TRUE(table.CheckConsistency().ok());
}

TEST(LockTableTest, RecycledHeadComesBackEmpty) {
  LockTable table;
  const ResourceId res = RowResource(1, 1);
  LockHead& head = table.GetOrCreate(res);
  head.AddHolder(Granted(1, LockMode::kX));
  head.RemoveHolder(1);
  ASSERT_TRUE(table.EraseIfEmpty(res));
  // The recycled node backs the next insert and must present a clean head.
  LockHead& reused = table.GetOrCreate(RowResource(9, 9));
  EXPECT_TRUE(reused.empty());
  EXPECT_EQ(reused.GrantedGroupMode(), LockMode::kNone);
}

TEST(LockTableTest, ForEachVisitsEveryHead) {
  LockTable table;
  for (int i = 0; i < 10; ++i) {
    table.GetOrCreate(RowResource(1, i)).AddHolder(Granted(1, LockMode::kS));
  }
  int visited = 0;
  table.ForEach([&visited](const ResourceId& res, const LockHead& head) {
    EXPECT_EQ(res.table, 1);
    EXPECT_FALSE(head.empty());
    ++visited;
  });
  EXPECT_EQ(visited, 10);
}

// End-to-end pool behavior through the lock manager: repeated escalation
// bursts (grant many row locks, escalate, release) must reach a steady
// state where the head pool stops growing — the regression this guards is
// per-transaction heap churn of lock heads.
TEST(LockTableTest, SlabCountStabilizesAcrossEscalationBursts) {
  FixedMaxlocksPolicy policy(/*percent=*/1.0);
  LockManagerOptions opts;
  opts.initial_blocks = 1;  // 2048 slots, 1% quota => escalates at ~20 rows
  opts.max_lock_memory = 32 * kMiB;
  opts.policy = &policy;
  LockManager lm(std::move(opts));

  for (int warmup = 0; warmup < 3; ++warmup) {
    for (int r = 0; r < 64; ++r) {
      lm.Lock(1, RowResource(1, r), LockMode::kX);
    }
    lm.ReleaseAll(1);
  }
  ASSERT_GT(lm.stats().escalations, 0) << "quota mis-sized for the test";
  const int64_t slabs_after_warmup = lm.head_pool_slab_count();
  const int64_t table_after_warmup = lm.lock_table_size();

  for (int burst = 0; burst < 50; ++burst) {
    for (int r = 0; r < 64; ++r) {
      lm.Lock(1, RowResource(1, r), LockMode::kX);
    }
    lm.ReleaseAll(1);
  }
  EXPECT_EQ(lm.head_pool_slab_count(), slabs_after_warmup)
      << "escalation bursts must recycle heads, not allocate new slabs";
  EXPECT_EQ(lm.lock_table_size(), table_after_warmup);
  EXPECT_EQ(lm.CheckConsistency(), Status::Ok());
}

}  // namespace
}  // namespace locktune
