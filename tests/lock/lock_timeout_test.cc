// Lock wait timeouts (LOCKTIMEOUT), the wait-time histogram, and §6.1
// selective escalation.
#include <memory>

#include <gtest/gtest.h>

#include "common/units.h"
#include "lock/lock_manager.h"

namespace locktune {
namespace {

constexpr TableId kT = 1;

class LockTimeoutTest : public ::testing::Test {
 protected:
  void Make(DurationMs timeout, bool with_clock = true) {
    policy_ = std::make_unique<FixedMaxlocksPolicy>(90.0);
    LockManagerOptions opts;
    opts.initial_blocks = 8;
    opts.max_lock_memory = 64 * kMiB;
    opts.database_memory = kGiB;
    opts.policy = policy_.get();
    opts.clock = with_clock ? &clock_ : nullptr;
    opts.lock_timeout = timeout;
    lm_ = std::make_unique<LockManager>(std::move(opts));
  }

  SimClock clock_;
  std::unique_ptr<EscalationPolicy> policy_;
  std::unique_ptr<LockManager> lm_;
};

TEST_F(LockTimeoutTest, NoTimeoutsBeforeDeadline) {
  Make(10 * kSecond);
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  clock_.Advance(9 * kSecond);
  EXPECT_TRUE(lm_->ExpireTimedOutWaiters().empty());
}

TEST_F(LockTimeoutTest, WaiterExpiresAtDeadline) {
  Make(10 * kSecond);
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  clock_.Advance(10 * kSecond);
  const std::vector<AppId> expired = lm_->ExpireTimedOutWaiters();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 2);
  EXPECT_EQ(lm_->stats().lock_timeouts, 1);
  // The caller rolls the victim back; afterwards nothing waits.
  lm_->ReleaseAll(2);
  EXPECT_EQ(lm_->waiting_app_count(), 0);
  EXPECT_TRUE(lm_->CheckConsistency().ok());
}

TEST_F(LockTimeoutTest, InfiniteTimeoutNeverExpires) {
  Make(-1);
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  clock_.Advance(100 * kMinute);
  EXPECT_TRUE(lm_->ExpireTimedOutWaiters().empty());
}

TEST_F(LockTimeoutTest, NoClockDisablesTimeouts) {
  Make(kSecond, /*with_clock=*/false);
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  clock_.Advance(kMinute);
  EXPECT_TRUE(lm_->ExpireTimedOutWaiters().empty());
}

TEST_F(LockTimeoutTest, GrantedWaiterIsNotExpired) {
  Make(10 * kSecond);
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  clock_.Advance(5 * kSecond);
  lm_->ReleaseAll(1);  // grants app 2 within the deadline
  clock_.Advance(20 * kSecond);
  EXPECT_TRUE(lm_->ExpireTimedOutWaiters().empty());
}

TEST_F(LockTimeoutTest, SeparateWaitersExpireIndependently) {
  Make(10 * kSecond);
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  clock_.Advance(6 * kSecond);
  ASSERT_EQ(lm_->Lock(3, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  clock_.Advance(5 * kSecond);  // app 2 at 11 s, app 3 at 5 s
  const std::vector<AppId> expired = lm_->ExpireTimedOutWaiters();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 2);
}

// A connection kill mid-wait (ReleaseAll on a waiting app) must neutralize
// the app's queued timeout entry: no expiry fires for it, and the queue
// invariants hold afterwards.
TEST_F(LockTimeoutTest, KilledWaiterLeavesNoStaleTimeout) {
  Make(10 * kSecond);
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  lm_->ReleaseAll(2);  // kill mid-wait
  EXPECT_EQ(lm_->waiting_app_count(), 0);
  clock_.Advance(20 * kSecond);
  EXPECT_TRUE(lm_->ExpireTimedOutWaiters().empty());
  EXPECT_EQ(lm_->stats().lock_timeouts, 0);
  EXPECT_TRUE(lm_->CheckConsistency().ok());
}

// After a kill, the same app's next wait must get a fresh deadline; the
// dead entry from the first wait must not expire it early.
TEST_F(LockTimeoutTest, ReWaitAfterKillGetsFreshDeadline) {
  Make(10 * kSecond);
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kWaiting);  // deadline 10 s
  lm_->ReleaseAll(2);
  clock_.Advance(5 * kSecond);
  ASSERT_EQ(lm_->Lock(2, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kWaiting);  // deadline 15 s
  clock_.Advance(5 * kSecond);       // now 10 s: only the dead entry is due
  EXPECT_TRUE(lm_->ExpireTimedOutWaiters().empty());
  clock_.Advance(5 * kSecond);  // now 15 s: the live entry expires
  const std::vector<AppId> expired = lm_->ExpireTimedOutWaiters();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 2);
  lm_->ReleaseAll(2);
  EXPECT_TRUE(lm_->CheckConsistency().ok());
}

// Heavy churn of killed waits exercises the compaction path (the queue
// rebuilds once stale entries dominate); a live waiter threaded through the
// churn must still expire exactly on time.
TEST_F(LockTimeoutTest, CompactionSurvivesKillChurn) {
  Make(10 * kSecond);
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kGranted);
  for (int i = 0; i < 40; ++i) {
    ASSERT_EQ(lm_->Lock(2, RowResource(kT, 1), LockMode::kX).outcome,
              LockOutcome::kWaiting);
    lm_->ReleaseAll(2);  // each round strands one dead entry
    ASSERT_TRUE(lm_->CheckConsistency().ok()) << "round " << i;
  }
  clock_.Advance(5 * kSecond);
  ASSERT_EQ(lm_->Lock(3, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kWaiting);  // deadline 15 s
  clock_.Advance(5 * kSecond);       // 10 s: all dead deadlines due, not 3's
  EXPECT_TRUE(lm_->ExpireTimedOutWaiters().empty());
  clock_.Advance(5 * kSecond);  // 15 s
  const std::vector<AppId> expired = lm_->ExpireTimedOutWaiters();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 3);
  lm_->ReleaseAll(3);
  EXPECT_TRUE(lm_->CheckConsistency().ok());
}

// A wait that ends by grant also retires its timeout entry (NoteWaitEnded
// from the grant path), so a later wait by the same app expires on its own
// deadline, not the first one's.
TEST_F(LockTimeoutTest, GrantRetiresEntryBeforeNextWait) {
  Make(10 * kSecond);
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kWaiting);  // deadline 10 s
  clock_.Advance(2 * kSecond);
  lm_->ReleaseAll(1);  // grants app 2 at 2 s
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 2), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kT, 2), LockMode::kX).outcome,
            LockOutcome::kWaiting);  // app 2 still holds row 1; deadline 12 s
  clock_.Advance(8 * kSecond);       // 10 s: only the retired entry is due
  EXPECT_TRUE(lm_->ExpireTimedOutWaiters().empty());
  clock_.Advance(2 * kSecond);  // 12 s
  const std::vector<AppId> expired = lm_->ExpireTimedOutWaiters();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 2);
  lm_->ReleaseAll(2);
  EXPECT_TRUE(lm_->CheckConsistency().ok());
}

TEST_F(LockTimeoutTest, WaitHistogramRecordsDurations) {
  Make(-1);
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  clock_.Advance(700);
  lm_->ReleaseAll(1);
  EXPECT_EQ(lm_->wait_time_histogram().total_count(), 1);
  // 700 ms lands in the (100, 1000] bucket (bounds 1,10,100,1000,...).
  EXPECT_EQ(lm_->wait_time_histogram().counts()[3], 1);
}

TEST_F(LockTimeoutTest, WaitHistogramEmptyWithoutWaits) {
  Make(-1);
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 1), LockMode::kS).outcome,
            LockOutcome::kGranted);
  EXPECT_EQ(lm_->wait_time_histogram().total_count(), 0);
}

// --- §6.1 selective escalation ---

class SelectiveEscalationTest : public ::testing::Test {
 protected:
  SelectiveEscalationTest() {
    // Adaptive policy: the per-app limit tracks maxLockMemory (~1M
    // structures), far above the single block's 2048 slots, so only the
    // memory-exhaustion path can trigger escalation here.
    policy_ = std::make_unique<AdaptiveMaxlocksPolicy>();
    LockManagerOptions opts;
    opts.initial_blocks = 1;  // 2048 slots
    opts.max_lock_memory = 64 * kMiB;
    opts.database_memory = kGiB;
    opts.policy = policy_.get();
    opts.grow_callback = [this](int64_t n) {
      grow_calls_ += n;
      return true;
    };
    lm_ = std::make_unique<LockManager>(std::move(opts));
  }

  std::unique_ptr<EscalationPolicy> policy_;
  std::unique_ptr<LockManager> lm_;
  int64_t grow_calls_ = 0;
};

TEST_F(SelectiveEscalationTest, PreferredAppEscalatesInsteadOfGrowing) {
  lm_->SetEscalationPreferred(1, true);
  EXPECT_TRUE(lm_->IsEscalationPreferred(1));
  LockResult last;
  for (int64_t r = 0; r < kLocksPerBlock + 100; ++r) {
    last = lm_->Lock(1, RowResource(kT, r), LockMode::kS);
    ASSERT_EQ(last.outcome, LockOutcome::kGranted);
    if (last.escalated) break;
  }
  EXPECT_TRUE(last.escalated);
  EXPECT_EQ(grow_calls_, 0);  // no memory was consumed
  EXPECT_EQ(lm_->block_count(), 1);
  EXPECT_EQ(lm_->stats().preferred_escalations, 1);
  EXPECT_EQ(lm_->HeldMode(1, TableResource(kT)), LockMode::kS);
}

TEST_F(SelectiveEscalationTest, UnmarkedAppGrowsAsUsual) {
  LockResult last;
  for (int64_t r = 0; r < kLocksPerBlock + 100; ++r) {
    last = lm_->Lock(1, RowResource(kT, r), LockMode::kS);
    ASSERT_EQ(last.outcome, LockOutcome::kGranted);
    ASSERT_FALSE(last.escalated);
  }
  EXPECT_GE(grow_calls_, 1);
  EXPECT_EQ(lm_->stats().preferred_escalations, 0);
}

TEST_F(SelectiveEscalationTest, PreferenceCanBeCleared) {
  lm_->SetEscalationPreferred(1, true);
  lm_->SetEscalationPreferred(1, false);
  EXPECT_FALSE(lm_->IsEscalationPreferred(1));
  for (int64_t r = 0; r < kLocksPerBlock + 100; ++r) {
    ASSERT_FALSE(lm_->Lock(1, RowResource(kT, r), LockMode::kS).escalated);
  }
  EXPECT_GE(grow_calls_, 1);
}

TEST_F(SelectiveEscalationTest, PreferenceOnlyAffectsMarkedApp) {
  lm_->SetEscalationPreferred(1, true);
  // App 2 (unmarked) exhausts the block; growth serves it even though the
  // preferred app also holds locks.
  for (int64_t r = 0; r < 100; ++r) {
    ASSERT_EQ(lm_->Lock(1, RowResource(kT, r), LockMode::kS).outcome,
              LockOutcome::kGranted);
  }
  for (int64_t r = 0; r < kLocksPerBlock; ++r) {
    ASSERT_EQ(lm_->Lock(2, RowResource(kT + 1, r), LockMode::kS).outcome,
              LockOutcome::kGranted);
  }
  EXPECT_GE(grow_calls_, 1);
  // App 1 kept its row locks (no preferred escalation fired for app 2).
  EXPECT_EQ(lm_->HeldMode(1, RowResource(kT, 0)), LockMode::kS);
}

}  // namespace
}  // namespace locktune
