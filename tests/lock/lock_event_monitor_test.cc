#include "lock/lock_event_monitor.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "lock/lock_manager.h"

namespace locktune {
namespace {

constexpr TableId kT = 1;

LockEvent MakeEvent(LockEventKind kind, AppId app = 1, TimeMs t = 0) {
  LockEvent e;
  e.kind = kind;
  e.app = app;
  e.time = t;
  return e;
}

TEST(RingBufferMonitorTest, KeepsEventsInOrder) {
  RingBufferEventMonitor ring(8);
  for (int i = 0; i < 5; ++i) {
    ring.OnLockEvent(MakeEvent(LockEventKind::kWaitBegin, i));
  }
  const std::vector<LockEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(events[static_cast<size_t>(i)].app, i);
  EXPECT_EQ(ring.total_events(), 5);
}

TEST(RingBufferMonitorTest, WrapsKeepingNewest) {
  RingBufferEventMonitor ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.OnLockEvent(MakeEvent(LockEventKind::kWaitBegin, i));
  }
  const std::vector<LockEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().app, 6);  // oldest retained
  EXPECT_EQ(events.back().app, 9);   // newest
  EXPECT_EQ(ring.total_events(), 10);
}

TEST(RingBufferMonitorTest, DumpRendersLines) {
  RingBufferEventMonitor ring(4);
  LockEvent e = MakeEvent(LockEventKind::kEscalation, 7, 12'300);
  e.resource = TableResource(3);
  e.mode = LockMode::kX;
  e.value = 2048;
  ring.OnLockEvent(e);
  const std::string dump = ring.Dump();
  EXPECT_NE(dump.find("ESCALATION"), std::string::npos);
  EXPECT_NE(dump.find("app=7"), std::string::npos);
  EXPECT_NE(dump.find("tab(3)"), std::string::npos);
  EXPECT_NE(dump.find("value=2048"), std::string::npos);
  EXPECT_NE(dump.find("t=12.3s"), std::string::npos);
}

TEST(CountingMonitorTest, CountsByKind) {
  CountingEventMonitor counter;
  counter.OnLockEvent(MakeEvent(LockEventKind::kWaitBegin));
  counter.OnLockEvent(MakeEvent(LockEventKind::kWaitBegin));
  counter.OnLockEvent(MakeEvent(LockEventKind::kTimeout));
  EXPECT_EQ(counter.count(LockEventKind::kWaitBegin), 2);
  EXPECT_EQ(counter.count(LockEventKind::kTimeout), 1);
  EXPECT_EQ(counter.count(LockEventKind::kEscalation), 0);
  EXPECT_EQ(counter.total(), 3);
}

TEST(TeeMonitorTest, FansOut) {
  CountingEventMonitor a, b;
  TeeEventMonitor tee({&a, &b});
  tee.OnLockEvent(MakeEvent(LockEventKind::kDeadlockVictim));
  EXPECT_EQ(a.count(LockEventKind::kDeadlockVictim), 1);
  EXPECT_EQ(b.count(LockEventKind::kDeadlockVictim), 1);
}

// Appends "<tag>:<app>" to a shared log so fan-out order is observable.
class OrderRecordingMonitor : public LockEventMonitor {
 public:
  OrderRecordingMonitor(std::string tag, std::vector<std::string>* log)
      : tag_(std::move(tag)), log_(log) {}

  void OnLockEvent(const LockEvent& event) override {
    log_->push_back(tag_ + ":" + std::to_string(event.app));
  }

 private:
  std::string tag_;
  std::vector<std::string>* log_;
};

TEST(TeeMonitorTest, DeliversEachEventToSinksInConstructionOrder) {
  std::vector<std::string> log;
  OrderRecordingMonitor a("a", &log);
  OrderRecordingMonitor b("b", &log);
  OrderRecordingMonitor c("c", &log);
  TeeEventMonitor tee({&a, &b, &c});
  tee.OnLockEvent(MakeEvent(LockEventKind::kWaitBegin, 1));
  tee.OnLockEvent(MakeEvent(LockEventKind::kWaitBegin, 2));
  // Each event is fully delivered to every sink, in construction order,
  // before the next event starts — downstream sinks (e.g. the trace
  // bridge) see the same event order as the primary monitor.
  EXPECT_EQ(log, (std::vector<std::string>{"a:1", "b:1", "c:1", "a:2", "b:2",
                                           "c:2"}));
}

TEST(LockEventKindTest, NamesAreStable) {
  EXPECT_EQ(LockEventKindName(LockEventKind::kWaitBegin), "WAIT_BEGIN");
  EXPECT_EQ(LockEventKindName(LockEventKind::kEscalation), "ESCALATION");
  EXPECT_EQ(LockEventKindName(LockEventKind::kSynchronousGrowth),
            "SYNC_GROWTH");
}

// --- integration: the LockManager emits the right events ---

class MonitoredManagerTest : public ::testing::Test {
 protected:
  void Make(double maxlocks_percent, bool allow_growth,
            DurationMs timeout = -1) {
    policy_ = std::make_unique<FixedMaxlocksPolicy>(maxlocks_percent);
    LockManagerOptions opts;
    opts.initial_blocks = 1;
    opts.max_lock_memory = 8 * kMiB;
    opts.database_memory = 64 * kMiB;
    opts.policy = policy_.get();
    opts.clock = &clock_;
    opts.lock_timeout = timeout;
    opts.monitor = &events_;
    if (allow_growth) {
      opts.grow_callback = [](int64_t) { return true; };
    }
    lm_ = std::make_unique<LockManager>(std::move(opts));
  }

  SimClock clock_;
  CountingEventMonitor events_;
  std::unique_ptr<EscalationPolicy> policy_;
  std::unique_ptr<LockManager> lm_;
};

TEST_F(MonitoredManagerTest, WaitBeginAndEnd) {
  Make(90.0, false);
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  EXPECT_EQ(events_.count(LockEventKind::kWaitBegin), 1);
  EXPECT_EQ(events_.count(LockEventKind::kWaitEnd), 0);
  lm_->ReleaseAll(1);
  EXPECT_EQ(events_.count(LockEventKind::kWaitEnd), 1);
}

TEST_F(MonitoredManagerTest, EscalationEventCarriesRowCount) {
  RingBufferEventMonitor ring(64);
  policy_ = std::make_unique<FixedMaxlocksPolicy>(10.0);
  LockManagerOptions opts;
  opts.initial_blocks = 1;
  opts.max_lock_memory = 8 * kMiB;
  opts.database_memory = 64 * kMiB;
  opts.policy = policy_.get();
  opts.monitor = &ring;
  LockManager lm(std::move(opts));
  for (int64_t r = 0; r < 300; ++r) {
    if (lm.Lock(1, RowResource(kT, r), LockMode::kS).escalated) break;
  }
  bool saw_escalation = false;
  for (const LockEvent& e : ring.Events()) {
    if (e.kind == LockEventKind::kEscalation) {
      saw_escalation = true;
      EXPECT_EQ(e.resource, TableResource(kT));
      EXPECT_EQ(e.mode, LockMode::kS);
      EXPECT_GT(e.value, 100);  // the released row locks
    }
  }
  EXPECT_TRUE(saw_escalation);
}

TEST_F(MonitoredManagerTest, SynchronousGrowthEvent) {
  Make(100.0, /*allow_growth=*/true);
  for (int64_t r = 0; r < kLocksPerBlock + 10; ++r) {
    // Two apps so the per-app quota never fires first.
    (void)lm_->Lock(1 + static_cast<AppId>(r % 2),
                    RowResource(static_cast<TableId>(r % 2), r),
                    LockMode::kS);
  }
  EXPECT_GE(events_.count(LockEventKind::kSynchronousGrowth), 1);
}

TEST_F(MonitoredManagerTest, TimeoutEvent) {
  Make(90.0, false, /*timeout=*/kSecond);
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  clock_.Advance(2 * kSecond);
  (void)lm_->ExpireTimedOutWaiters();
  EXPECT_EQ(events_.count(LockEventKind::kTimeout), 1);
}

TEST_F(MonitoredManagerTest, DeadlockVictimEvent) {
  Make(90.0, false);
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kT, 2), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(1, RowResource(kT, 2), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  ASSERT_EQ(lm_->Lock(2, RowResource(kT, 1), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  (void)lm_->DetectDeadlocks();
  EXPECT_EQ(events_.count(LockEventKind::kDeadlockVictim), 1);
}

TEST_F(MonitoredManagerTest, OutOfMemoryEvent) {
  Make(98.0, false);
  // Intent table locks only: nothing to escalate, so exhaustion is final.
  for (int64_t t = 0; t < kLocksPerBlock + 1; ++t) {
    const LockResult res =
        lm_->Lock(1, TableResource(static_cast<TableId>(t)), LockMode::kIS);
    if (res.outcome == LockOutcome::kOutOfMemory) break;
  }
  EXPECT_GE(events_.count(LockEventKind::kOutOfLockMemory), 1);
}

}  // namespace
}  // namespace locktune
