#include <memory>

#include <gtest/gtest.h>

#include "common/units.h"
#include "lock/lock_manager.h"

namespace locktune {
namespace {

constexpr TableId kT1 = 1;
constexpr TableId kT2 = 2;

class DeadlockTest : public ::testing::Test {
 protected:
  DeadlockTest() {
    policy_ = std::make_unique<FixedMaxlocksPolicy>(90.0);
    LockManagerOptions opts;
    opts.initial_blocks = 8;
    opts.max_lock_memory = 64 * kMiB;
    opts.database_memory = kGiB;
    opts.policy = policy_.get();
    lm_ = std::make_unique<LockManager>(std::move(opts));
  }

  LockResult Lock(AppId app, int64_t row, LockMode mode, TableId t = kT1) {
    return lm_->Lock(app, RowResource(t, row), mode);
  }

  std::unique_ptr<EscalationPolicy> policy_;
  std::unique_ptr<LockManager> lm_;
};

TEST_F(DeadlockTest, NoFalsePositivesOnPlainWaits) {
  ASSERT_EQ(Lock(1, 1, LockMode::kX).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(2, 1, LockMode::kX).outcome, LockOutcome::kWaiting);
  EXPECT_TRUE(lm_->DetectDeadlocks().empty());
}

TEST_F(DeadlockTest, ClassicTwoAppCycle) {
  // A holds row 1, B holds row 2; A wants row 2, B wants row 1.
  ASSERT_EQ(Lock(1, 1, LockMode::kX).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(2, 2, LockMode::kX).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(1, 2, LockMode::kX).outcome, LockOutcome::kWaiting);
  ASSERT_EQ(Lock(2, 1, LockMode::kX).outcome, LockOutcome::kWaiting);
  const std::vector<AppId> victims = lm_->DetectDeadlocks();
  ASSERT_EQ(victims.size(), 1u);
  // Victim chosen by fewest held structures; both hold the same count, so
  // either is acceptable — what matters is breaking the cycle.
  const AppId victim = victims[0];
  EXPECT_TRUE(victim == 1 || victim == 2);
  lm_->ReleaseAll(victim);
  const AppId survivor = victim == 1 ? 2 : 1;
  EXPECT_FALSE(lm_->IsBlocked(survivor));
}

TEST_F(DeadlockTest, VictimIsCheapestToRedo) {
  // App 1 holds many locks; app 2 holds few: app 2 should be the victim.
  for (int64_t r = 10; r < 60; ++r) {
    ASSERT_EQ(Lock(1, r, LockMode::kS).outcome, LockOutcome::kGranted);
  }
  ASSERT_EQ(Lock(1, 1, LockMode::kX).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(2, 2, LockMode::kX).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(1, 2, LockMode::kX).outcome, LockOutcome::kWaiting);
  ASSERT_EQ(Lock(2, 1, LockMode::kX).outcome, LockOutcome::kWaiting);
  const std::vector<AppId> victims = lm_->DetectDeadlocks();
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 2);
}

TEST_F(DeadlockTest, ThreeAppCycle) {
  ASSERT_EQ(Lock(1, 1, LockMode::kX).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(2, 2, LockMode::kX).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(3, 3, LockMode::kX).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(1, 2, LockMode::kX).outcome, LockOutcome::kWaiting);
  ASSERT_EQ(Lock(2, 3, LockMode::kX).outcome, LockOutcome::kWaiting);
  ASSERT_EQ(Lock(3, 1, LockMode::kX).outcome, LockOutcome::kWaiting);
  const std::vector<AppId> victims = lm_->DetectDeadlocks();
  ASSERT_EQ(victims.size(), 1u);
  lm_->ReleaseAll(victims[0]);
  // The remaining two form a chain, not a cycle.
  EXPECT_TRUE(lm_->DetectDeadlocks().empty());
}

TEST_F(DeadlockTest, ConversionDeadlock) {
  // Both apps hold S on the same row, both convert to X: each waits for the
  // other's S — a conversion deadlock.
  ASSERT_EQ(Lock(1, 1, LockMode::kS).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(2, 1, LockMode::kS).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(1, 1, LockMode::kX).outcome, LockOutcome::kWaiting);
  ASSERT_EQ(Lock(2, 1, LockMode::kX).outcome, LockOutcome::kWaiting);
  const std::vector<AppId> victims = lm_->DetectDeadlocks();
  ASSERT_EQ(victims.size(), 1u);
  lm_->ReleaseAll(victims[0]);
  const AppId survivor = victims[0] == 1 ? 2 : 1;
  EXPECT_FALSE(lm_->IsBlocked(survivor));
  EXPECT_EQ(lm_->HeldMode(survivor, RowResource(kT1, 1)), LockMode::kX);
}

TEST_F(DeadlockTest, QueueOrderCycleDetected) {
  // App 3 waits behind app 2's X in the queue; app 2 waits on app 3's lock
  // on another row: a cycle through queue order, not just holders.
  ASSERT_EQ(Lock(1, 1, LockMode::kX).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(3, 2, LockMode::kX, kT2).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(2, 1, LockMode::kX).outcome, LockOutcome::kWaiting);
  ASSERT_EQ(Lock(3, 1, LockMode::kS).outcome, LockOutcome::kWaiting);
  lm_->ReleaseAll(1);
  // Now app 2 holds row 1 X; app 3 waits behind nothing... re-build:
  ASSERT_FALSE(lm_->IsBlocked(2));
  ASSERT_TRUE(lm_->IsBlocked(3));
  // App 2 requests app 3's row: cycle (2 → 3 via kT2 row, 3 → 2 via row 1).
  ASSERT_EQ(Lock(2, 2, LockMode::kX, kT2).outcome, LockOutcome::kWaiting);
  const std::vector<AppId> victims = lm_->DetectDeadlocks();
  EXPECT_EQ(victims.size(), 1u);
}

TEST_F(DeadlockTest, TwoIndependentCyclesBothGetVictims) {
  ASSERT_EQ(Lock(1, 1, LockMode::kX).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(2, 2, LockMode::kX).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(1, 2, LockMode::kX).outcome, LockOutcome::kWaiting);
  ASSERT_EQ(Lock(2, 1, LockMode::kX).outcome, LockOutcome::kWaiting);
  ASSERT_EQ(Lock(3, 3, LockMode::kX, kT2).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(4, 4, LockMode::kX, kT2).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(3, 4, LockMode::kX, kT2).outcome, LockOutcome::kWaiting);
  ASSERT_EQ(Lock(4, 3, LockMode::kX, kT2).outcome, LockOutcome::kWaiting);
  const std::vector<AppId> victims = lm_->DetectDeadlocks();
  EXPECT_EQ(victims.size(), 2u);
}

TEST_F(DeadlockTest, StatsCountVictims) {
  ASSERT_EQ(Lock(1, 1, LockMode::kX).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(2, 2, LockMode::kX).outcome, LockOutcome::kGranted);
  ASSERT_EQ(Lock(1, 2, LockMode::kX).outcome, LockOutcome::kWaiting);
  ASSERT_EQ(Lock(2, 1, LockMode::kX).outcome, LockOutcome::kWaiting);
  (void)lm_->DetectDeadlocks();
  EXPECT_EQ(lm_->stats().deadlock_victims, 1);
}

TEST_F(DeadlockTest, NoDeadlockAmongReaders) {
  for (AppId app = 1; app <= 5; ++app) {
    for (int64_t r = 0; r < 10; ++r) {
      ASSERT_EQ(Lock(app, r, LockMode::kS).outcome, LockOutcome::kGranted);
    }
  }
  EXPECT_TRUE(lm_->DetectDeadlocks().empty());
}

}  // namespace
}  // namespace locktune
