#include "lock/maxlocks_curve.h"

#include <gtest/gtest.h>

namespace locktune {
namespace {

TEST(MaxlocksCurveTest, PaperDefaults) {
  MaxlocksCurve curve;
  EXPECT_DOUBLE_EQ(curve.p_max(), 98.0);
  EXPECT_DOUBLE_EQ(curve.exponent(), 3.0);
  EXPECT_EQ(curve.refresh_period(), 0x80);
}

TEST(MaxlocksCurveTest, NearlyUnconstrainedWhenAmple) {
  MaxlocksCurve curve;
  EXPECT_DOUBLE_EQ(curve.Evaluate(0.0), 98.0);
  // At 10 % used the attenuation is negligible: 98·(1−0.001) ≈ 97.9.
  EXPECT_NEAR(curve.Evaluate(10.0), 97.9, 0.01);
}

TEST(MaxlocksCurveTest, Table1Formula) {
  MaxlocksCurve curve;
  // 98·(1−(x/100)³) at a few points.
  EXPECT_NEAR(curve.Evaluate(50.0), 98.0 * (1 - 0.125), 1e-9);
  EXPECT_NEAR(curve.Evaluate(75.0), 98.0 * (1 - 0.421875), 1e-9);
  EXPECT_NEAR(curve.Evaluate(90.0), 98.0 * (1 - 0.729), 1e-9);
}

TEST(MaxlocksCurveTest, FloorOfOnePercentAtMax) {
  MaxlocksCurve curve;
  // "dropping down to 1 when lock memory is 100% of its maximum size".
  EXPECT_DOUBLE_EQ(curve.Evaluate(100.0), 1.0);
  EXPECT_DOUBLE_EQ(curve.Evaluate(99.9), 1.0);  // formula < 1 → clamped
  EXPECT_DOUBLE_EQ(curve.Evaluate(150.0), 1.0);  // clamped input
}

TEST(MaxlocksCurveTest, NegativeInputClamped) {
  MaxlocksCurve curve;
  EXPECT_DOUBLE_EQ(curve.Evaluate(-5.0), 98.0);
}

TEST(MaxlocksCurveTest, MonotoneDecreasing) {
  MaxlocksCurve curve;
  double prev = curve.Evaluate(0.0);
  for (double x = 1.0; x <= 100.0; x += 1.0) {
    const double v = curve.Evaluate(x);
    EXPECT_LE(v, prev) << "x=" << x;
    prev = v;
  }
}

TEST(MaxlocksCurveTest, AggressiveAttenuationPast75) {
  // §3.5: "aggressive attenuation when lock memory is more than 75 % used".
  MaxlocksCurve curve;
  const double drop_before = curve.Evaluate(0.0) - curve.Evaluate(75.0);
  const double drop_after = curve.Evaluate(75.0) - curve.Evaluate(100.0);
  EXPECT_GT(drop_after, drop_before);
}

TEST(MaxlocksCurveTest, RefreshPeriodBatching) {
  MaxlocksCurve curve(98.0, 3.0, 4);
  // Initial read computes.
  EXPECT_DOUBLE_EQ(curve.Current(0.0), 98.0);
  // Usage changes but the cached value persists until 4 requests pass.
  for (int i = 0; i < 3; ++i) {
    curve.OnLockRequest();
    EXPECT_DOUBLE_EQ(curve.Current(90.0), 98.0);
  }
  curve.OnLockRequest();  // 4th request: refresh due
  EXPECT_NEAR(curve.Current(90.0), curve.Evaluate(90.0), 1e-12);
}

TEST(MaxlocksCurveTest, InvalidateForcesRecompute) {
  MaxlocksCurve curve;
  EXPECT_DOUBLE_EQ(curve.Current(0.0), 98.0);
  curve.Invalidate();  // what a lock memory resize does
  EXPECT_NEAR(curve.Current(50.0), curve.Evaluate(50.0), 1e-12);
}

// Exact 0x80 cadence with the paper defaults: after a recomputation the
// cached value survives exactly 127 further requests and refreshes on the
// 128th — not the 129th, and not earlier.
TEST(MaxlocksCurveTest, ExactDefaultCadence) {
  MaxlocksCurve curve;
  ASSERT_EQ(curve.refresh_period(), 128);
  EXPECT_DOUBLE_EQ(curve.Current(0.0), 98.0);  // initial compute
  for (int i = 0; i < 127; ++i) {
    EXPECT_FALSE(curve.OnLockRequest()) << "request " << (i + 1);
    EXPECT_DOUBLE_EQ(curve.Current(90.0), 98.0) << "request " << (i + 1);
  }
  EXPECT_TRUE(curve.OnLockRequest());  // 128th request since recompute
  EXPECT_NEAR(curve.Current(90.0), curve.Evaluate(90.0), 1e-12);
}

// A resize-triggered Invalidate() restarts the request cadence: the next
// periodic refresh comes a full refresh_period after the resize recompute,
// not at the old boundary. (Regression: the counter used to be reset at the
// period boundary instead of at recompute time, so a mid-interval resize
// left a partial count behind and the next refresh fired early.)
TEST(MaxlocksCurveTest, InvalidateRestartsCadence) {
  MaxlocksCurve curve(98.0, 3.0, 8);
  EXPECT_DOUBLE_EQ(curve.Current(0.0), 98.0);
  for (int i = 0; i < 5; ++i) curve.OnLockRequest();  // mid-interval
  curve.Invalidate();  // lock memory resized
  EXPECT_NEAR(curve.Current(50.0), curve.Evaluate(50.0), 1e-12);
  EXPECT_EQ(curve.requests_since_refresh(), 0);
  // Usage changes again; the stale-value window is a full 8 requests.
  for (int i = 0; i < 7; ++i) {
    curve.OnLockRequest();
    EXPECT_NEAR(curve.Current(90.0), curve.Evaluate(50.0), 1e-12)
        << "request " << (i + 1) << " after resize";
  }
  curve.OnLockRequest();  // 8th request after the resize recompute
  EXPECT_NEAR(curve.Current(90.0), curve.Evaluate(90.0), 1e-12);
}

// The initial computation also anchors the cadence: a fresh curve that first
// reads at request 1 refreshes 128 requests later, not at request 128.
TEST(MaxlocksCurveTest, InitialComputeRestartsCadence) {
  MaxlocksCurve curve(98.0, 3.0, 4);
  curve.OnLockRequest();                       // request 1
  EXPECT_DOUBLE_EQ(curve.Current(0.0), 98.0);  // initial compute
  EXPECT_EQ(curve.requests_since_refresh(), 0);
  for (int i = 0; i < 3; ++i) {
    curve.OnLockRequest();  // requests 2..4 — only 3 since the recompute
    EXPECT_DOUBLE_EQ(curve.Current(90.0), 98.0);
  }
  curve.OnLockRequest();  // 4th request since the recompute
  EXPECT_NEAR(curve.Current(90.0), curve.Evaluate(90.0), 1e-12);
}

// A refresh that becomes due stays due until the next Current() read, even
// if more requests arrive in between.
TEST(MaxlocksCurveTest, DueRefreshStaysDueUntilRead) {
  MaxlocksCurve curve(98.0, 3.0, 4);
  EXPECT_DOUBLE_EQ(curve.Current(0.0), 98.0);
  for (int i = 0; i < 6; ++i) curve.OnLockRequest();  // past the boundary
  EXPECT_TRUE(curve.OnLockRequest());
  EXPECT_NEAR(curve.Current(90.0), curve.Evaluate(90.0), 1e-12);
}

TEST(MaxlocksCurveTest, CustomExponentShapesCurve) {
  MaxlocksCurve linear(98.0, 1.0, 0x80);
  MaxlocksCurve cubic(98.0, 3.0, 0x80);
  // A linear curve throttles earlier than the cubic at mid usage.
  EXPECT_LT(linear.Evaluate(50.0), cubic.Evaluate(50.0));
}

// Property sweep over exponents: the curve stays inside [1, P] and is
// monotone for any exponent.
class CurveExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(CurveExponentTest, BoundedAndMonotone) {
  MaxlocksCurve curve(98.0, GetParam(), 0x80);
  double prev = 1e9;
  for (double x = 0.0; x <= 100.0; x += 0.5) {
    const double v = curve.Evaluate(x);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 98.0);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, CurveExponentTest,
                         ::testing::Values(0.5, 1.0, 2.0, 3.0, 6.0, 10.0));

}  // namespace
}  // namespace locktune
