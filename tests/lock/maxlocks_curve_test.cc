#include "lock/maxlocks_curve.h"

#include <gtest/gtest.h>

namespace locktune {
namespace {

TEST(MaxlocksCurveTest, PaperDefaults) {
  MaxlocksCurve curve;
  EXPECT_DOUBLE_EQ(curve.p_max(), 98.0);
  EXPECT_DOUBLE_EQ(curve.exponent(), 3.0);
  EXPECT_EQ(curve.refresh_period(), 0x80);
}

TEST(MaxlocksCurveTest, NearlyUnconstrainedWhenAmple) {
  MaxlocksCurve curve;
  EXPECT_DOUBLE_EQ(curve.Evaluate(0.0), 98.0);
  // At 10 % used the attenuation is negligible: 98·(1−0.001) ≈ 97.9.
  EXPECT_NEAR(curve.Evaluate(10.0), 97.9, 0.01);
}

TEST(MaxlocksCurveTest, Table1Formula) {
  MaxlocksCurve curve;
  // 98·(1−(x/100)³) at a few points.
  EXPECT_NEAR(curve.Evaluate(50.0), 98.0 * (1 - 0.125), 1e-9);
  EXPECT_NEAR(curve.Evaluate(75.0), 98.0 * (1 - 0.421875), 1e-9);
  EXPECT_NEAR(curve.Evaluate(90.0), 98.0 * (1 - 0.729), 1e-9);
}

TEST(MaxlocksCurveTest, FloorOfOnePercentAtMax) {
  MaxlocksCurve curve;
  // "dropping down to 1 when lock memory is 100% of its maximum size".
  EXPECT_DOUBLE_EQ(curve.Evaluate(100.0), 1.0);
  EXPECT_DOUBLE_EQ(curve.Evaluate(99.9), 1.0);  // formula < 1 → clamped
  EXPECT_DOUBLE_EQ(curve.Evaluate(150.0), 1.0);  // clamped input
}

TEST(MaxlocksCurveTest, NegativeInputClamped) {
  MaxlocksCurve curve;
  EXPECT_DOUBLE_EQ(curve.Evaluate(-5.0), 98.0);
}

TEST(MaxlocksCurveTest, MonotoneDecreasing) {
  MaxlocksCurve curve;
  double prev = curve.Evaluate(0.0);
  for (double x = 1.0; x <= 100.0; x += 1.0) {
    const double v = curve.Evaluate(x);
    EXPECT_LE(v, prev) << "x=" << x;
    prev = v;
  }
}

TEST(MaxlocksCurveTest, AggressiveAttenuationPast75) {
  // §3.5: "aggressive attenuation when lock memory is more than 75 % used".
  MaxlocksCurve curve;
  const double drop_before = curve.Evaluate(0.0) - curve.Evaluate(75.0);
  const double drop_after = curve.Evaluate(75.0) - curve.Evaluate(100.0);
  EXPECT_GT(drop_after, drop_before);
}

TEST(MaxlocksCurveTest, RefreshPeriodBatching) {
  MaxlocksCurve curve(98.0, 3.0, 4);
  // Initial read computes.
  EXPECT_DOUBLE_EQ(curve.Current(0.0), 98.0);
  // Usage changes but the cached value persists until 4 requests pass.
  for (int i = 0; i < 3; ++i) {
    curve.OnLockRequest();
    EXPECT_DOUBLE_EQ(curve.Current(90.0), 98.0);
  }
  curve.OnLockRequest();  // 4th request: refresh due
  EXPECT_NEAR(curve.Current(90.0), curve.Evaluate(90.0), 1e-12);
}

TEST(MaxlocksCurveTest, InvalidateForcesRecompute) {
  MaxlocksCurve curve;
  EXPECT_DOUBLE_EQ(curve.Current(0.0), 98.0);
  curve.Invalidate();  // what a lock memory resize does
  EXPECT_NEAR(curve.Current(50.0), curve.Evaluate(50.0), 1e-12);
}

TEST(MaxlocksCurveTest, CustomExponentShapesCurve) {
  MaxlocksCurve linear(98.0, 1.0, 0x80);
  MaxlocksCurve cubic(98.0, 3.0, 0x80);
  // A linear curve throttles earlier than the cubic at mid usage.
  EXPECT_LT(linear.Evaluate(50.0), cubic.Evaluate(50.0));
}

// Property sweep over exponents: the curve stays inside [1, P] and is
// monotone for any exponent.
class CurveExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(CurveExponentTest, BoundedAndMonotone) {
  MaxlocksCurve curve(98.0, GetParam(), 0x80);
  double prev = 1e9;
  for (double x = 0.0; x <= 100.0; x += 0.5) {
    const double v = curve.Evaluate(x);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 98.0);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, CurveExponentTest,
                         ::testing::Values(0.5, 1.0, 2.0, 3.0, 6.0, 10.0));

}  // namespace
}  // namespace locktune
