// Randomized operation fuzzing of the LockManager.
//
// A pool of applications performs random operations — row/table locks in
// every mode, single releases, commits, deadlock sweeps, timeout sweeps,
// block growth and shrink, quota changes — against managers configured with
// each escalation policy. After every batch the full accounting invariants
// must hold; at the end the system must drain to empty. This is the
// adversarial counterpart to the scenario-level invariants_test.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/units.h"
#include "lock/lock_manager.h"

namespace locktune {
namespace {

struct FuzzCase {
  uint64_t seed;
  int policy;  // 0 adaptive, 1 fixed 10 %, 2 fixed 90 %, 3 sql-server
  bool allow_growth;
  DurationMs timeout;  // -1 = none
};

class LockManagerFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

std::unique_ptr<EscalationPolicy> MakePolicy(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<AdaptiveMaxlocksPolicy>();
    case 1:
      return std::make_unique<FixedMaxlocksPolicy>(10.0);
    case 2:
      return std::make_unique<FixedMaxlocksPolicy>(90.0);
    default:
      return std::make_unique<SqlServerLockPolicy>();
  }
}

TEST_P(LockManagerFuzzTest, RandomOperationsPreserveInvariants) {
  const FuzzCase& c = GetParam();
  SimClock clock;
  std::unique_ptr<EscalationPolicy> policy = MakePolicy(c.policy);
  LockManagerOptions opts;
  opts.initial_blocks = 2;
  opts.max_lock_memory = 8 * kMiB;
  opts.database_memory = 64 * kMiB;
  opts.policy = policy.get();
  opts.clock = &clock;
  opts.lock_timeout = c.timeout;
  bool grow_enabled = c.allow_growth;
  Bytes granted_growth = 0;
  if (c.allow_growth) {
    opts.grow_callback = [&](int64_t blocks) {
      if (!grow_enabled) return false;
      granted_growth += BlocksToBytes(blocks);
      // Cap growth like an overflow area would.
      return granted_growth <= 4 * kMiB;
    };
  }
  LockManager lm(std::move(opts));

  constexpr int kApps = 12;
  constexpr int kTables = 4;
  constexpr int64_t kRowsPerTable = 400;  // small: heavy contention
  Rng rng(c.seed);
  std::vector<std::vector<ResourceId>> held(kApps + 1);

  for (int step = 0; step < 30'000; ++step) {
    const AppId app = static_cast<AppId>(rng.NextInRange(1, kApps));
    const int op = static_cast<int>(rng.NextBelow(100));
    if (lm.IsBlocked(app)) {
      // A blocked application can only be rolled back (or left waiting).
      if (op < 30) {
        lm.ReleaseAll(app);
        held[app].clear();
      }
    } else if (op < 55) {
      // Row lock in a random mode.
      const TableId table = static_cast<TableId>(rng.NextBelow(kTables));
      const int64_t row = rng.NextInRange(0, kRowsPerTable - 1);
      static constexpr LockMode kRowModes[] = {LockMode::kS, LockMode::kU,
                                               LockMode::kX};
      const LockMode mode = kRowModes[rng.NextBelow(3)];
      const LockResult res = lm.Lock(app, RowResource(table, row), mode);
      if (res.outcome == LockOutcome::kGranted) {
        held[app].push_back(RowResource(table, row));
      }
    } else if (op < 65) {
      // Table lock in a random mode.
      const TableId table = static_cast<TableId>(rng.NextBelow(kTables));
      static constexpr LockMode kTableModes[] = {
          LockMode::kIS, LockMode::kIX, LockMode::kS, LockMode::kSIX,
          LockMode::kX};
      (void)lm.Lock(app, TableResource(table), kTableModes[rng.NextBelow(5)]);
    } else if (op < 72 && !held[app].empty()) {
      // Release one (possibly already escalated-away) resource.
      const size_t i = rng.NextBelow(held[app].size());
      (void)lm.Release(app, held[app][i]);
      held[app][i] = held[app].back();
      held[app].pop_back();
    } else if (op < 82) {
      lm.ReleaseAll(app);
      held[app].clear();
    } else if (op < 88) {
      // Deadlock sweep, rolling back every victim.
      for (AppId victim : lm.DetectDeadlocks()) {
        lm.ReleaseAll(victim);
        held[static_cast<size_t>(victim)].clear();
      }
    } else if (op < 92) {
      clock.Advance(rng.NextInRange(1, 2000));
      for (AppId victim : lm.ExpireTimedOutWaiters()) {
        lm.ReleaseAll(victim);
        held[static_cast<size_t>(victim)].clear();
      }
    } else if (op < 95) {
      lm.AddBlocks(1);
    } else if (op < 98) {
      (void)lm.TryRemoveBlocks(rng.NextInRange(1, 3));
    } else {
      lm.SetEscalationPreferred(app, rng.NextBool(0.5));
    }

    if (step % 2'000 == 0) {
      ASSERT_TRUE(lm.CheckConsistency().ok()) << "step " << step;
    }
  }

  ASSERT_TRUE(lm.CheckConsistency().ok());

  // Drain: roll every application back; everything must return to zero.
  for (AppId app = 1; app <= kApps; ++app) lm.ReleaseAll(app);
  EXPECT_EQ(lm.used_bytes(), 0);
  EXPECT_EQ(lm.waiting_app_count(), 0);
  EXPECT_TRUE(lm.CheckConsistency().ok());
  // Every allocated block is now entirely free and removable.
  EXPECT_TRUE(lm.TryRemoveBlocks(lm.block_count()).ok());
  EXPECT_EQ(lm.block_count(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, LockManagerFuzzTest,
    ::testing::Values(FuzzCase{101, 0, true, -1},
                      FuzzCase{102, 0, true, 500},
                      FuzzCase{103, 0, false, -1},
                      FuzzCase{104, 1, false, -1},
                      FuzzCase{105, 1, true, 1000},
                      FuzzCase{106, 2, true, -1},
                      FuzzCase{107, 2, false, 200},
                      FuzzCase{108, 3, true, -1},
                      FuzzCase{109, 3, false, 500},
                      FuzzCase{110, 0, true, 100},
                      FuzzCase{111, 1, true, -1},
                      FuzzCase{112, 3, true, 2000}));

}  // namespace
}  // namespace locktune
