// Thread-safety stress for LockManager: concurrent clients from real
// threads, each running acquire/release transactions, with invariants
// verified afterwards. (The simulation machinery is single-threaded; the
// lock manager itself is mutex-guarded for real embedders.)
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/units.h"
#include "lock/lock_manager.h"

namespace locktune {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  ConcurrencyTest() {
    policy_ = std::make_unique<FixedMaxlocksPolicy>(90.0);
    LockManagerOptions opts;
    opts.initial_blocks = 64;
    opts.max_lock_memory = 64 * kMiB;
    opts.database_memory = kGiB;
    opts.policy = policy_.get();
    opts.grow_callback = [](int64_t) { return true; };
    lm_ = std::make_unique<LockManager>(std::move(opts));
  }

  std::unique_ptr<EscalationPolicy> policy_;
  std::unique_ptr<LockManager> lm_;
};

TEST_F(ConcurrencyTest, ParallelDisjointTransactions) {
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 200;
  constexpr int kLocksPerTxn = 50;
  std::vector<std::thread> threads;
  std::atomic<int64_t> granted{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const AppId app = t + 1;
      // Disjoint tables per thread: no waits, pure throughput.
      for (int txn = 0; txn < kTxnsPerThread; ++txn) {
        for (int64_t r = 0; r < kLocksPerTxn; ++r) {
          const LockResult res = lm_->Lock(
              app, RowResource(t, txn * kLocksPerTxn + r), LockMode::kX);
          if (res.outcome == LockOutcome::kGranted) {
            granted.fetch_add(1, std::memory_order_relaxed);
          }
        }
        lm_->ReleaseAll(app);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(granted.load(), kThreads * kTxnsPerThread * kLocksPerTxn);
  EXPECT_EQ(lm_->used_bytes(), 0);
  EXPECT_TRUE(lm_->CheckConsistency().ok());
}

TEST_F(ConcurrencyTest, ParallelContendedRows) {
  constexpr int kThreads = 4;
  constexpr int kOps = 50'000;
  std::vector<std::thread> threads;
  std::atomic<int64_t> waits{0};
  std::atomic<int> ready{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const AppId app = t + 1;
      Rng rng(static_cast<uint64_t>(t) + 1);
      // Start barrier: all threads begin the contended phase together.
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kOps; ++i) {
        // Shared 64-row hot set: real contention across threads.
        const int64_t row = static_cast<int64_t>(rng.NextBelow(64));
        const LockResult res =
            lm_->Lock(app, RowResource(9, row),
                      rng.NextBool(0.5) ? LockMode::kX : LockMode::kS);
        if (res.outcome == LockOutcome::kWaiting) {
          waits.fetch_add(1, std::memory_order_relaxed);
          // A waiting thread cannot issue more requests; roll back, as an
          // impatient application would.
          lm_->ReleaseAll(app);
        } else if (rng.NextBool(0.3)) {
          lm_->ReleaseAll(app);
        }
      }
      lm_->ReleaseAll(app);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(lm_->used_bytes(), 0);
  EXPECT_EQ(lm_->waiting_app_count(), 0);
  EXPECT_TRUE(lm_->CheckConsistency().ok());
  // The accounting invariants above are the assertion; on a single-core
  // machine the scheduler may serialize the threads so coarsely that no
  // conflict materializes, so `waits` is informational only.
}

TEST_F(ConcurrencyTest, StatsReadableWhileRunning) {
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    AppId app = 1;
    int64_t row = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)lm_->Lock(app, RowResource(1, row++ % 10'000), LockMode::kS);
      if (row % 100 == 0) lm_->ReleaseAll(app);
    }
    lm_->ReleaseAll(app);
  });
  // Concurrent introspection must not crash or deadlock.
  for (int i = 0; i < 1000; ++i) {
    (void)lm_->MemoryState();
    (void)lm_->allocated_bytes();
    (void)lm_->waiting_app_count();
    (void)lm_->CurrentMaxlocksPercent();
  }
  stop.store(true);
  worker.join();
  EXPECT_TRUE(lm_->CheckConsistency().ok());
}

}  // namespace
}  // namespace locktune
