#include "lock/lock_manager.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/units.h"

namespace locktune {
namespace {

constexpr TableId kOrders = 1;
constexpr TableId kStock = 2;

class LockManagerTest : public ::testing::Test {
 protected:
  // Builds a manager with `blocks` blocks, a fixed `maxlocks_percent`, and
  // optionally a growth callback that always grants.
  void Make(int64_t blocks, double maxlocks_percent, bool allow_growth) {
    policy_ = std::make_unique<FixedMaxlocksPolicy>(maxlocks_percent);
    LockManagerOptions opts;
    opts.initial_blocks = blocks;
    opts.max_lock_memory = 64 * kMiB;
    opts.database_memory = kGiB;
    opts.policy = policy_.get();
    if (allow_growth) {
      opts.grow_callback = [this](int64_t n) {
        grow_calls_ += n;
        return true;
      };
    }
    lm_ = std::make_unique<LockManager>(std::move(opts));
  }

  std::unique_ptr<EscalationPolicy> policy_;
  std::unique_ptr<LockManager> lm_;
  int64_t grow_calls_ = 0;
};

TEST_F(LockManagerTest, RowLockTakesIntentTableLock) {
  Make(4, 90.0, false);
  const LockResult r = lm_->Lock(1, RowResource(kOrders, 10), LockMode::kS);
  EXPECT_EQ(r.outcome, LockOutcome::kGranted);
  EXPECT_EQ(lm_->HeldMode(1, RowResource(kOrders, 10)), LockMode::kS);
  EXPECT_EQ(lm_->HeldMode(1, TableResource(kOrders)), LockMode::kIS);
  // Two structures: the row lock and the intent lock.
  EXPECT_EQ(lm_->HeldStructures(1), 2);
}

TEST_F(LockManagerTest, ExclusiveRowTakesIXIntent) {
  Make(4, 90.0, false);
  ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, 1), LockMode::kX).outcome,
            LockOutcome::kGranted);
  EXPECT_EQ(lm_->HeldMode(1, TableResource(kOrders)), LockMode::kIX);
}

TEST_F(LockManagerTest, SharedRowLockJoinsGroup) {
  Make(4, 90.0, false);
  EXPECT_EQ(lm_->Lock(1, RowResource(kOrders, 5), LockMode::kS).outcome,
            LockOutcome::kGranted);
  EXPECT_EQ(lm_->Lock(2, RowResource(kOrders, 5), LockMode::kS).outcome,
            LockOutcome::kGranted);
  EXPECT_EQ(lm_->HeldMode(2, RowResource(kOrders, 5)), LockMode::kS);
}

TEST_F(LockManagerTest, ConflictingRequestWaits) {
  Make(4, 90.0, false);
  ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, 5), LockMode::kX).outcome,
            LockOutcome::kGranted);
  EXPECT_EQ(lm_->Lock(2, RowResource(kOrders, 5), LockMode::kS).outcome,
            LockOutcome::kWaiting);
  EXPECT_TRUE(lm_->IsBlocked(2));
  EXPECT_EQ(lm_->waiting_app_count(), 1);
  EXPECT_EQ(lm_->stats().lock_waits, 1);
}

TEST_F(LockManagerTest, ReleaseGrantsWaiterFifo) {
  Make(4, 90.0, false);
  ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, 5), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kOrders, 5), LockMode::kS).outcome,
            LockOutcome::kWaiting);
  ASSERT_EQ(lm_->Lock(3, RowResource(kOrders, 5), LockMode::kS).outcome,
            LockOutcome::kWaiting);
  lm_->ReleaseAll(1);
  // Both compatible share waiters drain in order.
  EXPECT_FALSE(lm_->IsBlocked(2));
  EXPECT_FALSE(lm_->IsBlocked(3));
  EXPECT_EQ(lm_->HeldMode(2, RowResource(kOrders, 5)), LockMode::kS);
  EXPECT_EQ(lm_->HeldMode(3, RowResource(kOrders, 5)), LockMode::kS);
}

TEST_F(LockManagerTest, NewRequestCannotOvertakeQueue) {
  Make(4, 90.0, false);
  ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, 5), LockMode::kS).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kOrders, 5), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  // S would be compatible with the S holder, but app 2 queued first.
  EXPECT_EQ(lm_->Lock(3, RowResource(kOrders, 5), LockMode::kS).outcome,
            LockOutcome::kWaiting);
  lm_->ReleaseAll(1);
  // App 2 (X) goes first; app 3 still waits behind it.
  EXPECT_FALSE(lm_->IsBlocked(2));
  EXPECT_TRUE(lm_->IsBlocked(3));
  lm_->ReleaseAll(2);
  EXPECT_FALSE(lm_->IsBlocked(3));
}

TEST_F(LockManagerTest, ReacquireIsIdempotent) {
  Make(4, 90.0, false);
  ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, 5), LockMode::kS).outcome,
            LockOutcome::kGranted);
  const int64_t before = lm_->HeldStructures(1);
  EXPECT_EQ(lm_->Lock(1, RowResource(kOrders, 5), LockMode::kS).outcome,
            LockOutcome::kGranted);
  EXPECT_EQ(lm_->HeldStructures(1), before);  // no extra structure
}

TEST_F(LockManagerTest, SoleHolderConvertsImmediately) {
  Make(4, 90.0, false);
  ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, 5), LockMode::kS).outcome,
            LockOutcome::kGranted);
  EXPECT_EQ(lm_->Lock(1, RowResource(kOrders, 5), LockMode::kX).outcome,
            LockOutcome::kGranted);
  EXPECT_EQ(lm_->HeldMode(1, RowResource(kOrders, 5)), LockMode::kX);
  // Intent strengthened to IX as well.
  EXPECT_EQ(lm_->HeldMode(1, TableResource(kOrders)), LockMode::kIX);
}

TEST_F(LockManagerTest, ConversionWaitsForOtherHolder) {
  Make(4, 90.0, false);
  ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, 5), LockMode::kS).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kOrders, 5), LockMode::kS).outcome,
            LockOutcome::kGranted);
  EXPECT_EQ(lm_->Lock(1, RowResource(kOrders, 5), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  lm_->ReleaseAll(2);
  EXPECT_FALSE(lm_->IsBlocked(1));
  EXPECT_EQ(lm_->HeldMode(1, RowResource(kOrders, 5)), LockMode::kX);
}

TEST_F(LockManagerTest, ConversionJumpsAheadOfNewWaiters) {
  Make(4, 90.0, false);
  ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, 5), LockMode::kS).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kOrders, 5), LockMode::kS).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(3, RowResource(kOrders, 5), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  // App 1's conversion queues ahead of app 3's new X request.
  ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, 5), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  lm_->ReleaseAll(2);
  EXPECT_FALSE(lm_->IsBlocked(1));
  EXPECT_EQ(lm_->HeldMode(1, RowResource(kOrders, 5)), LockMode::kX);
  EXPECT_TRUE(lm_->IsBlocked(3));
}

TEST_F(LockManagerTest, ReleaseAllFreesEverything) {
  Make(4, 90.0, false);
  for (int64_t row = 0; row < 50; ++row) {
    ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, row), LockMode::kS).outcome,
              LockOutcome::kGranted);
  }
  EXPECT_EQ(lm_->HeldStructures(1), 51);
  EXPECT_EQ(lm_->used_bytes(), 51 * kLockStructSize);
  lm_->ReleaseAll(1);
  EXPECT_EQ(lm_->HeldStructures(1), 0);
  EXPECT_EQ(lm_->used_bytes(), 0);
  EXPECT_TRUE(lm_->CheckConsistency().ok());
}

TEST_F(LockManagerTest, ReleaseSingleResource) {
  Make(4, 90.0, false);
  ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, 1), LockMode::kS).outcome,
            LockOutcome::kGranted);
  EXPECT_TRUE(lm_->Release(1, RowResource(kOrders, 1)).ok());
  EXPECT_EQ(lm_->HeldMode(1, RowResource(kOrders, 1)), LockMode::kNone);
  // Releasing again reports NOT_FOUND.
  EXPECT_EQ(lm_->Release(1, RowResource(kOrders, 1)).code(),
            StatusCode::kNotFound);
}

TEST_F(LockManagerTest, ReleaseAllOfWaiterRemovesQueueEntry) {
  Make(4, 90.0, false);
  ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, 5), LockMode::kX).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(2, RowResource(kOrders, 5), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  ASSERT_EQ(lm_->Lock(3, RowResource(kOrders, 5), LockMode::kX).outcome,
            LockOutcome::kWaiting);
  lm_->ReleaseAll(2);  // abort the first waiter
  EXPECT_FALSE(lm_->IsBlocked(2));
  lm_->ReleaseAll(1);
  // App 3 moves up and gets the lock.
  EXPECT_FALSE(lm_->IsBlocked(3));
  EXPECT_EQ(lm_->HeldMode(3, RowResource(kOrders, 5)), LockMode::kX);
}

// --- escalation ---

TEST_F(LockManagerTest, QuotaEscalationToShareTableLock) {
  // 1 block = 2048 slots; 10 % quota = 204 structures.
  Make(1, 10.0, false);
  LockResult last;
  int64_t rows = 0;
  for (; rows < 300; ++rows) {
    last = lm_->Lock(1, RowResource(kOrders, rows), LockMode::kS);
    ASSERT_EQ(last.outcome, LockOutcome::kGranted);
    if (last.escalated) break;
  }
  ASSERT_TRUE(last.escalated) << "quota escalation never triggered";
  EXPECT_EQ(rows, 203);  // 203 rows + 1 intent = 204 structures held
  EXPECT_EQ(lm_->stats().escalations, 1);
  EXPECT_EQ(lm_->stats().exclusive_escalations, 0);
  // The table lock is S; the row locks are gone.
  EXPECT_EQ(lm_->HeldMode(1, TableResource(kOrders)), LockMode::kS);
  EXPECT_EQ(lm_->HeldMode(1, RowResource(kOrders, 0)), LockMode::kNone);
  // Only the table lock remains (the escalating request is covered by it).
  EXPECT_EQ(lm_->HeldStructures(1), 1);
}

TEST_F(LockManagerTest, EscalationWithWritesTakesXTableLock) {
  Make(1, 10.0, false);
  LockResult last;
  for (int64_t rows = 0; rows < 300; ++rows) {
    last = lm_->Lock(1, RowResource(kOrders, rows), LockMode::kX);
    ASSERT_EQ(last.outcome, LockOutcome::kGranted);
    if (last.escalated) break;
  }
  ASSERT_TRUE(last.escalated);
  EXPECT_EQ(lm_->stats().exclusive_escalations, 1);
  EXPECT_EQ(lm_->HeldMode(1, TableResource(kOrders)), LockMode::kX);
}

TEST_F(LockManagerTest, PostEscalationRowLocksAreFree) {
  Make(1, 10.0, false);
  LockResult last;
  int64_t rows = 0;
  for (; rows < 300; ++rows) {
    last = lm_->Lock(1, RowResource(kOrders, rows), LockMode::kS);
    if (last.escalated) break;
  }
  ASSERT_TRUE(last.escalated);
  const int64_t structures = lm_->HeldStructures(1);
  // Further row reads on the escalated table consume no lock memory.
  for (int64_t more = 0; more < 1000; ++more) {
    ASSERT_EQ(
        lm_->Lock(1, RowResource(kOrders, 10'000 + more), LockMode::kS)
            .outcome,
        LockOutcome::kGranted);
  }
  EXPECT_EQ(lm_->HeldStructures(1), structures);
}

TEST_F(LockManagerTest, EscalationPicksMostLockedTable) {
  Make(1, 10.0, false);
  // 150 rows on kStock, then push past the quota on kOrders rows; kStock
  // has more rows at escalation time... build the opposite: more on kStock.
  for (int64_t r = 0; r < 150; ++r) {
    ASSERT_EQ(lm_->Lock(1, RowResource(kStock, r), LockMode::kS).outcome,
              LockOutcome::kGranted);
  }
  LockResult last;
  for (int64_t r = 0; r < 100; ++r) {
    last = lm_->Lock(1, RowResource(kOrders, r), LockMode::kS);
    ASSERT_EQ(last.outcome, LockOutcome::kGranted);
    if (last.escalated) break;
  }
  ASSERT_TRUE(last.escalated);
  // kStock had 150 row locks vs ~52 on kOrders: kStock escalates.
  EXPECT_EQ(lm_->HeldMode(1, TableResource(kStock)), LockMode::kS);
  EXPECT_EQ(lm_->HeldMode(1, RowResource(kStock, 0)), LockMode::kNone);
  // kOrders row locks survive.
  EXPECT_EQ(lm_->HeldMode(1, RowResource(kOrders, 0)), LockMode::kS);
}

TEST_F(LockManagerTest, EscalationConversionWaitsForConflicts) {
  Make(1, 10.0, false);
  // App 2 holds a row X on kOrders (hence IX on the table): app 1's S
  // escalation on kOrders must wait for it.
  ASSERT_EQ(lm_->Lock(2, RowResource(kOrders, 9999), LockMode::kX).outcome,
            LockOutcome::kGranted);
  LockResult last;
  int64_t rows = 0;
  for (; rows < 300; ++rows) {
    last = lm_->Lock(1, RowResource(kOrders, rows), LockMode::kS);
    if (last.outcome != LockOutcome::kGranted) break;
  }
  EXPECT_EQ(last.outcome, LockOutcome::kWaiting);
  EXPECT_TRUE(last.escalated);
  EXPECT_TRUE(lm_->IsBlocked(1));
  // Row locks are still held while the escalation waits.
  EXPECT_EQ(lm_->HeldMode(1, RowResource(kOrders, 0)), LockMode::kS);
  // App 2 commits: escalation completes and the pending request resumes.
  lm_->ReleaseAll(2);
  EXPECT_FALSE(lm_->IsBlocked(1));
  EXPECT_EQ(lm_->HeldMode(1, TableResource(kOrders)), LockMode::kS);
  EXPECT_EQ(lm_->HeldMode(1, RowResource(kOrders, 0)), LockMode::kNone);
  EXPECT_EQ(lm_->stats().escalations, 1);
  EXPECT_TRUE(lm_->CheckConsistency().ok());
}

// --- memory growth ---

TEST_F(LockManagerTest, SynchronousGrowthOnExhaustion) {
  // Split the demand across two applications so neither hits the per-app
  // quota (which always trails the capacity) before the block exhausts.
  Make(1, 100.0, /*allow_growth=*/true);
  for (int64_t r = 0; r < (kLocksPerBlock + 100) / 2; ++r) {
    ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, r), LockMode::kS).outcome,
              LockOutcome::kGranted);
    ASSERT_EQ(lm_->Lock(2, RowResource(kStock, r), LockMode::kS).outcome,
              LockOutcome::kGranted);
  }
  EXPECT_GE(grow_calls_, 1);
  EXPECT_EQ(lm_->stats().sync_growth_blocks, grow_calls_);
  EXPECT_EQ(lm_->block_count(), 1 + grow_calls_);
  EXPECT_TRUE(lm_->CheckConsistency().ok());
}

TEST_F(LockManagerTest, GrowthDeniedSelfEscalates) {
  // 100 % quota: only genuine slot exhaustion can force escalation.
  Make(1, 100.0, /*allow_growth=*/false);
  LockResult last;
  int64_t granted_rows = 0;
  for (int64_t r = 0; r < kLocksPerBlock + 100; ++r) {
    last = lm_->Lock(1, RowResource(kOrders, r), LockMode::kS);
    if (last.outcome != LockOutcome::kGranted || last.escalated) break;
    ++granted_rows;
  }
  // The sole application escalates itself rather than failing.
  EXPECT_TRUE(last.escalated);
  EXPECT_EQ(last.outcome, LockOutcome::kGranted);
  EXPECT_EQ(lm_->HeldMode(1, TableResource(kOrders)), LockMode::kS);
  EXPECT_GT(granted_rows, 2000);
  EXPECT_EQ(lm_->stats().out_of_memory_failures, 0);
}

TEST_F(LockManagerTest, MemoryEscalationPrefersImmediateVictim) {
  Make(1, 100.0, false);
  // App 1 fills most of the block with S row locks on kStock (escalatable
  // immediately since nobody conflicts with S on that table).
  for (int64_t r = 0; r < kLocksPerBlock - 10; ++r) {
    ASSERT_EQ(lm_->Lock(1, RowResource(kStock, r), LockMode::kS).outcome,
              LockOutcome::kGranted);
  }
  // App 2 needs structures; app 1 is the victim with the most row locks.
  LockResult last;
  for (int64_t r = 0; r < 100; ++r) {
    last = lm_->Lock(2, RowResource(kOrders, r), LockMode::kS);
    ASSERT_EQ(last.outcome, LockOutcome::kGranted);
    if (last.escalated) break;
  }
  EXPECT_TRUE(last.escalated);
  EXPECT_EQ(lm_->HeldMode(1, TableResource(kStock)), LockMode::kS);
  EXPECT_GE(lm_->stats().escalations, 1);
  EXPECT_TRUE(lm_->CheckConsistency().ok());
}

TEST_F(LockManagerTest, OutOfMemoryWhenNothingEscalatable) {
  // Table locks only (no row locks anywhere): nothing to escalate.
  Make(1, 98.0, false);
  for (int64_t t = 0; t < kLocksPerBlock; ++t) {
    ASSERT_EQ(
        lm_->Lock(1, TableResource(static_cast<TableId>(t)), LockMode::kIS)
            .outcome,
        LockOutcome::kGranted);
  }
  const LockResult r =
      lm_->Lock(1, TableResource(99'999), LockMode::kIS);
  EXPECT_EQ(r.outcome, LockOutcome::kOutOfMemory);
  EXPECT_GE(lm_->stats().out_of_memory_failures, 1);
}

// --- tuning interface ---

TEST_F(LockManagerTest, AddAndRemoveBlocks) {
  Make(2, 90.0, false);
  lm_->AddBlocks(3);
  EXPECT_EQ(lm_->block_count(), 5);
  EXPECT_EQ(lm_->allocated_bytes(), 5 * kLockBlockSize);
  EXPECT_TRUE(lm_->TryRemoveBlocks(4).ok());
  EXPECT_EQ(lm_->block_count(), 1);
  // The remaining block is entirely free; removing it is legal too.
  EXPECT_TRUE(lm_->TryRemoveBlocks(1).ok());
  EXPECT_EQ(lm_->block_count(), 0);
}

TEST_F(LockManagerTest, RemoveBlocksFailsWhenInUse) {
  Make(2, 90.0, false);
  for (int64_t r = 0; r < kLocksPerBlock + 10; ++r) {
    ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, r), LockMode::kS).outcome,
              LockOutcome::kGranted);
  }
  EXPECT_FALSE(lm_->TryRemoveBlocks(1).ok());
  lm_->ReleaseAll(1);
  EXPECT_TRUE(lm_->TryRemoveBlocks(1).ok());
}

TEST_F(LockManagerTest, MemoryStateSnapshot) {
  Make(2, 90.0, false);
  ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, 1), LockMode::kS).outcome,
            LockOutcome::kGranted);
  const LockMemoryState s = lm_->MemoryState();
  EXPECT_EQ(s.allocated, 2 * kLockBlockSize);
  EXPECT_EQ(s.used, 2 * kLockStructSize);
  EXPECT_EQ(s.capacity_slots, 2 * kLocksPerBlock);
  EXPECT_EQ(s.slots_in_use, 2);
  EXPECT_EQ(s.max_lock_memory, 64 * kMiB);
  EXPECT_EQ(s.database_memory, kGiB);
}

TEST_F(LockManagerTest, SetMaxLockMemory) {
  Make(2, 90.0, false);
  lm_->set_max_lock_memory(128 * kMiB);
  EXPECT_EQ(lm_->MemoryState().max_lock_memory, 128 * kMiB);
}

TEST_F(LockManagerTest, StatsCountRequestsAndGrants) {
  Make(4, 90.0, false);
  ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, 1), LockMode::kS).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(lm_->Lock(1, RowResource(kOrders, 2), LockMode::kS).outcome,
            LockOutcome::kGranted);
  EXPECT_EQ(lm_->stats().lock_requests, 2);
  // Grants include the implicit intent lock: 1 intent + 2 rows.
  EXPECT_EQ(lm_->stats().grants, 3);
}

}  // namespace
}  // namespace locktune
